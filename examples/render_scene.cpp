/**
 * @file
 * Rendering example: produce images with all three graphics programs
 * in native mode -- a ray-traced reflective-spheres scene, a volume-
 * rendered head phantom, and a radiosity-lit room report.
 *
 *   $ ./render_scene [size]
 *
 * Writes raytrace.ppm and volrend.ppm to the working directory.
 */
#include <cstdio>
#include <cstdlib>

#include "apps/radiosity/radiosity.h"
#include "apps/raytrace/raytrace.h"
#include "apps/volrend/volrend.h"
#include "rt/env.h"

using namespace splash;

int
main(int argc, char** argv)
{
    int size = argc > 1 ? std::atoi(argv[1]) : 128;

    {
        std::printf("== Raytrace: %dx%d, 4 threads ==\n", size, size);
        rt::Env env({rt::Mode::Native, 4});
        apps::raytrace::Config cfg;
        cfg.width = cfg.height = size;
        apps::raytrace::Raytrace rtr(env, cfg);
        auto r = rtr.run();
        rtr.writePpm("raytrace.ppm");
        std::printf("  %llu rays cast over %d primitives -> "
                    "raytrace.ppm\n",
                    static_cast<unsigned long long>(r.raysCast),
                    rtr.primCount());
    }
    {
        std::printf("== Volrend: %dx%d image of a 64^3 head phantom "
                    "==\n",
                    size, size);
        rt::Env env({rt::Mode::Native, 4});
        apps::volrend::Config cfg;
        cfg.size = 64;
        cfg.width = size;
        cfg.frames = 1;
        apps::volrend::Volrend vr(env, cfg);
        auto r = vr.run();
        vr.writePpm("volrend.ppm");
        std::printf("  %llu trilinear samples -> volrend.ppm\n",
                    static_cast<unsigned long long>(r.samples));
    }
    {
        std::printf("== Radiosity: room with an area light ==\n");
        rt::Env env({rt::Mode::Native, 4});
        apps::radiosity::Config cfg;
        cfg.iterations = 6;
        apps::radiosity::Radiosity rad(env, cfg);
        auto r = rad.run();
        std::printf("  %d patches, %d interactions, total flux %.3f\n",
                    r.patches, r.interactions, r.totalFlux);
        const char* names[] = {"floor", "ceiling-l", "ceiling-r",
                               "light", "left", "right", "front",
                               "back"};
        for (int i = 0; i < 8 && i < rad.rootCount(); ++i)
            std::printf("  %-10s avg radiosity %.4f\n", names[i],
                        rad.avgRadiosity(i));
    }
    return 0;
}
