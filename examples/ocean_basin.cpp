/**
 * @file
 * Ocean example: use the red-black Gauss-Seidel multigrid solver as a
 * standalone Poisson solver (convergence study), then run a short
 * Ocean simulation, both in native mode.
 *
 *   $ ./ocean_basin [n] [steps]
 */
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "apps/ocean/ocean.h"
#include "rt/env.h"

using namespace splash;
using namespace splash::apps::ocean;

int
main(int argc, char** argv)
{
    int n = argc > 1 ? std::atoi(argv[1]) : 128;
    int steps = argc > 2 ? std::atoi(argv[2]) : 4;
    const double kPi = 3.14159265358979323846;

    std::printf("== Multigrid convergence on a %dx%d Poisson problem "
                "(4 threads) ==\n",
                n, n);
    rt::Env env({rt::Mode::Native, 4});
    ProcGrid pg = ProcGrid::forProcs(4);
    Grid u(env, n + 1, pg), f(env, n + 1, pg);
    for (int i = 1; i < n; ++i) {
        for (int j = 1; j < n; ++j) {
            double x = double(i) / n, y = double(j) / n;
            f.poke(i, j, -2.0 * kPi * kPi * std::sin(kPi * x) *
                             std::sin(kPi * y));
        }
    }
    Multigrid mg(env, n, pg);
    env.run([&](rt::ProcCtx& c) {
        for (int cycle = 1; cycle <= 6; ++cycle) {
            mg.solve(c, u, f, 0.0, 1);
            double res = mg.residualNorm(c, u, f);
            if (c.id() == 0)
                std::printf("  V-cycle %d: residual %.3e\n", cycle,
                            res);
        }
    });
    double max_err = 0;
    for (int i = 1; i < n; ++i) {
        for (int j = 1; j < n; ++j) {
            double x = double(i) / n, y = double(j) / n;
            double exact = std::sin(kPi * x) * std::sin(kPi * y);
            max_err = std::max(max_err, std::abs(u.peek(i, j) - exact));
        }
    }
    std::printf("  max error vs analytic solution: %.3e "
                "(discretization limit ~%.1e)\n",
                max_err, 1.0 / (n * double(n)));

    std::printf("\n== Ocean: %d steps on a (%d+1)^2 basin ==\n", steps,
                n);
    rt::Env env2({rt::Mode::Native, 4});
    Config cfg;
    cfg.n = n;
    cfg.steps = steps;
    cfg.tol = 1e-6;
    Ocean ocean(env2, cfg);
    Result r = ocean.run();
    std::printf("  V-cycles used: %d, checksum %.6f, %s\n",
                r.totalCycles, r.checksum,
                r.valid ? "stable" : "DIVERGED");
    return 0;
}
