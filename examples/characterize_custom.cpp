/**
 * @file
 * Characterize-your-own-kernel example: the methodology half of the
 * paper applied to code that is *not* in SPLASH-2.
 *
 * We write a tiny parallel histogram kernel against the runtime API,
 * then reproduce the paper's methodology on it: miss rate vs. cache
 * size (working sets), traffic decomposition, and the false-sharing
 * effect of a deliberately bad data layout -- exactly the workflow an
 * architect would use to vet a new workload before a study.
 *
 *   $ ./characterize_custom
 */
#include <cstdio>

#include "rt/env.h"
#include "rt/shared.h"
#include "rt/sync.h"
#include "sim/memsys.h"
#include "sim/sweep.h"

using namespace splash;

namespace {

/** Deterministic filler for the example's input values. */
void
fillValues(rt::SharedArray<std::uint32_t>& a, long n)
{
    std::uint64_t x = 88172645463325252ull;
    for (long i = 0; i < n; ++i) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        a.raw()[i] = static_cast<std::uint32_t>(x);
    }
}

/** Parallel histogram with per-processor sub-histograms merged at the
 *  end (the standard scalable formulation). `padded` gives each
 *  processor's counters their own cache lines; the packed layout
 *  interleaves different processors' counters in the same line, the
 *  textbook false-sharing bug. */
void
histogramKernel(rt::Env& env, int bins, long nvalues, bool padded)
{
    const int procs = env.nprocs();
    // Layout: padded   -> proc-major, line-aligned per processor;
    //         packed   -> bin-major: counters of all processors for a
    //                     bin sit adjacent in one line.
    rt::SharedArray<std::uint64_t> counts(
        env, std::size_t(bins) * (padded ? bins : procs) + 8 * procs *
                 bins);
    rt::SharedArray<std::uint32_t> values(env, nvalues);
    rt::SharedArray<std::uint64_t> merged(env, bins);
    fillValues(values, nvalues);
    rt::Barrier bar(env);

    auto slot = [&](int p, int bin) {
        // padded: one widely-spaced band per processor (no line ever
        // holds two processors' counters); packed: processors'
        // counters for a bin sit adjacent within one line.
        return padded ? std::size_t(p) * bins * 8 + std::size_t(bin)
                      : std::size_t(bin) * procs + p;
    };

    env.run([&](rt::ProcCtx& c) {
        long per = nvalues / c.nprocs();
        long first = c.id() * per;
        for (long i = first; i < first + per; ++i) {
            std::uint32_t v = values.ld(i);
            int bin = static_cast<int>(v % bins);
            counts[slot(c.id(), bin)] += 1;  // private counter...
            c.work(3);                       // ...maybe shared line
        }
        bar.arrive(c);
        // Merge: each processor reduces a band of bins.
        for (int b = c.id(); b < bins; b += c.nprocs()) {
            std::uint64_t total = 0;
            for (int p = 0; p < c.nprocs(); ++p)
                total += counts[slot(p, b)];
            merged[b] = total;
            c.work(2);
        }
    });
}

} // namespace

int
main()
{
    const int procs = 8;
    const int bins = 64;
    const long nvalues = 100000;

    // 1. Working sets: one pass, all cache sizes.
    {
        rt::Env env({rt::Mode::Sim, procs});
        sim::SweepConfig sc;
        sc.nprocs = procs;
        sim::CacheSweep sweep(sc);
        env.attachSweep(&sweep);
        histogramKernel(env, bins, nvalues, true);
        std::printf("histogram kernel: miss rate vs cache size "
                    "(4-way)\n");
        for (std::uint64_t size = 1024; size <= (1u << 20); size *= 4)
            std::printf("  %4llu KB: %.3f%%\n",
                        static_cast<unsigned long long>(size >> 10),
                        100.0 * sweep.missRate(size, 4));
    }

    // 2. False sharing: packed vs. padded counters.
    for (bool padded : {true, false}) {
        rt::Env env({rt::Mode::Sim, procs});
        sim::MachineConfig mc;
        mc.nprocs = procs;
        sim::MemSystem mem(mc, &env.heap());
        env.attachMemSystem(&mem);
        histogramKernel(env, bins, nvalues, padded);
        auto m = mem.total();
        std::printf("\n%s counters:\n", padded ? "padded" : "packed");
        std::printf("  miss rate %.3f%%, false-sharing misses %llu, "
                    "true-sharing %llu\n",
                    100.0 * m.missRate(),
                    static_cast<unsigned long long>(
                        m.misses[int(sim::MissType::FalseSharing)]),
                    static_cast<unsigned long long>(
                        m.misses[int(sim::MissType::TrueSharing)]));
        std::printf("  remote traffic %.4f bytes/ref\n",
                    double(m.remoteData() + m.remoteOverhead) /
                        double(m.accesses()));
    }
    std::printf("\n(the packed layout shows the classic false-sharing "
                "blowup the paper warns about)\n");
    return 0;
}
