/**
 * @file
 * N-body example: evolve a small galaxy with both hierarchical methods
 * (Barnes-Hut octree and the 2-D FMM) in *native* mode -- real
 * std::thread parallelism, no simulator -- demonstrating that the
 * SPLASH-2 programs are usable as ordinary parallel libraries.
 *
 *   $ ./nbody_galaxy [nbodies] [steps]
 */
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "apps/barnes/barnes.h"
#include "apps/fmm/fmm.h"
#include "rt/env.h"

using namespace splash;

int
main(int argc, char** argv)
{
    int nbodies = argc > 1 ? std::atoi(argv[1]) : 4096;
    int steps = argc > 2 ? std::atoi(argv[2]) : 4;

    std::printf("== Barnes-Hut: %d bodies, %d steps, 4 threads ==\n",
                nbodies, steps);
    rt::Env env({rt::Mode::Native, 4});
    apps::barnes::Config cfg;
    cfg.nbodies = nbodies;
    cfg.steps = steps;
    cfg.theta = 0.8;
    apps::barnes::Barnes galaxy(env, cfg);
    apps::barnes::Result r = galaxy.run();
    std::printf("  kinetic energy  %.6f\n", r.kinetic);
    std::printf("  checksum        %.6f\n", r.checksum);

    // Radial mass profile after evolution.
    auto pos = galaxy.positions();
    int shells[5] = {0, 0, 0, 0, 0};
    for (int b = 0; b < nbodies; ++b) {
        double r2 = 0;
        for (int d = 0; d < 3; ++d)
            r2 += pos[3 * b + d] * pos[3 * b + d];
        double rad = std::sqrt(r2);
        int shell = rad < 0.5 ? 0 : rad < 1 ? 1 : rad < 2 ? 2
                    : rad < 4 ? 3 : 4;
        ++shells[shell];
    }
    const char* labels[5] = {"r<0.5", "0.5-1", "1-2", "2-4", ">4"};
    for (int s = 0; s < 5; ++s)
        std::printf("  %-6s %5d bodies (%4.1f%%)\n", labels[s],
                    shells[s], 100.0 * shells[s] / nbodies);

    std::printf("\n== 2-D FMM: %d charges, accuracy check ==\n",
                std::min(nbodies, 1024));
    rt::Env env2({rt::Mode::Native, 4});
    apps::fmm::Config fc;
    fc.nbodies = std::min(nbodies, 1024);
    fc.terms = 12;
    apps::fmm::Fmm fmm(env2, fc);
    fmm.run();
    auto got = fmm.particles();
    auto ref = fmm.directReference();
    double num = 0, den = 0;
    for (std::size_t i = 0; i < got.size(); ++i) {
        num += (got[i].pot - ref[i].pot) * (got[i].pot - ref[i].pot);
        den += ref[i].pot * ref[i].pot;
    }
    std::printf("  relative potential error vs direct O(n^2): %.2e\n",
                std::sqrt(num / den));
    return 0;
}
