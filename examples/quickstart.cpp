/**
 * @file
 * Quickstart: run one SPLASH-2 kernel (FFT) under the memory-system
 * simulator and print the characterization every bench builds on.
 *
 *   $ ./quickstart
 *
 * Shows the three layers of the library:
 *  1. an application with a typed Config/Result API,
 *  2. the execution environment (deterministic PRAM interleaving),
 *  3. the directory-MESI memory simulator and its traffic breakdown.
 */
#include <cstdio>

#include "apps/fft/fft.h"
#include "rt/env.h"
#include "sim/memsys.h"

using namespace splash;

int
main()
{
    const int procs = 8;

    // 1. Execution environment: 8 simulated processors, deterministic
    //    cooperative interleaving, PRAM timing.
    rt::Env env({rt::Mode::Sim, procs});

    // 2. Memory system: 1 MB 4-way 64 B-line caches, directory MESI.
    sim::MachineConfig mc;
    mc.nprocs = procs;
    sim::MemSystem mem(mc, &env.heap());
    env.attachMemSystem(&mem);

    // 3. The application: a 4K-point FFT.
    apps::fft::Config cfg;
    cfg.log2n = 12;
    apps::fft::Fft fft(env, cfg);
    env.startMeasurement();
    apps::fft::Result r = fft.run();

    std::printf("FFT of %ld points on %d processors\n", fft.n(), procs);
    std::printf("  checksum            %.6f\n", r.checksum);
    std::printf("  PRAM cycles         %llu\n",
                static_cast<unsigned long long>(env.elapsed()));
    auto exec = env.totalStats();
    std::printf("  instructions        %llu (%llu flops)\n",
                static_cast<unsigned long long>(exec.instructions()),
                static_cast<unsigned long long>(exec.flops));
    std::printf("  PRAM speedup        %.2f / %d\n",
                double(exec.instructions()) / double(env.elapsed()),
                procs);

    sim::MemStats m = mem.total();
    std::printf("  shared references   %llu, miss rate %.2f%%\n",
                static_cast<unsigned long long>(m.accesses()),
                100.0 * m.missRate());
    std::printf("  traffic: remote %llu B (overhead %llu B), "
                "local %llu B, true-sharing %llu B\n",
                static_cast<unsigned long long>(m.remoteData()),
                static_cast<unsigned long long>(m.remoteOverhead),
                static_cast<unsigned long long>(m.localData),
                static_cast<unsigned long long>(m.trueSharedData));
    std::printf("  misses: cold %llu, capacity %llu, true-share %llu, "
                "false-share %llu\n",
                static_cast<unsigned long long>(
                    m.misses[int(sim::MissType::Cold)]),
                static_cast<unsigned long long>(
                    m.misses[int(sim::MissType::Capacity)]),
                static_cast<unsigned long long>(
                    m.misses[int(sim::MissType::TrueSharing)]),
                static_cast<unsigned long long>(
                    m.misses[int(sim::MissType::FalseSharing)]));
    return 0;
}
