/**
 * @file
 * LU kernel: dense blocked LU factorization without pivoting, as in
 * SPLASH-2.
 *
 * The n x n matrix is divided into an N x N array of B x B blocks
 * (n = N*B) to exploit temporal locality on submatrix elements.  Block
 * ownership uses a 2-D scatter decomposition over a pr x pc processor
 * grid, blocks are updated by their owners, elements within a block
 * are contiguous, and blocks are allocated in their owner's local
 * memory.  B should be large enough for low miss rates yet small
 * enough for load balance (B = 16 by default, as in the paper).
 *
 * Paper default: 512 x 512; suite sim-scaled default: 192 x 192.
 */
#ifndef SPLASH2_APPS_LU_LU_H
#define SPLASH2_APPS_LU_LU_H

#include <memory>
#include <vector>

#include "rt/env.h"
#include "rt/shared.h"
#include "rt/sync.h"

namespace splash::apps::lu {

struct Config
{
    int n = 192;     ///< matrix dimension (multiple of block)
    int block = 16;  ///< block edge B
    unsigned seed = 1234;
};

struct Result
{
    bool valid = true;
    double checksum = 0.0;
};

class Lu
{
  public:
    /** Allocate the block-major matrix, fill it with a deterministic
     *  diagonally-dominant matrix, and place each block at its owner. */
    Lu(rt::Env& env, const Config& cfg);

    /** Factor A = L*U in place (unit lower / upper). */
    Result run();

    int n() const { return cfg_.n; }
    int nBlocks() const { return nb_; }

    /** Element accessors in natural (i, j) indexing; uninstrumented. */
    double elem(int i, int j) const;
    double originalElem(int i, int j) const { return orig_[idx(i, j)]; }

    /** Owner of block (bi, bj) in the 2-D scatter decomposition. */
    int ownerOf(int bi, int bj) const;

  private:
    void body(rt::ProcCtx& c);
    void factorDiagonal(rt::ProcCtx& c, int k);
    void solveRowBlock(rt::ProcCtx& c, int k, int j);
    void solveColBlock(rt::ProcCtx& c, int k, int i);
    void updateInterior(rt::ProcCtx& c, int k, int i, int j);

    std::size_t blockBase(int bi, int bj) const;
    std::size_t idx(int i, int j) const;

    rt::Env& env_;
    Config cfg_;
    int nb_;           ///< blocks per dimension
    int pr_, pc_;      ///< processor grid
    rt::SharedArray<double> a_;
    std::vector<double> orig_;
    std::unique_ptr<rt::Barrier> bar_;
};

} // namespace splash::apps::lu

#endif // SPLASH2_APPS_LU_LU_H
