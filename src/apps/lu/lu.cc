#include "apps/lu/lu.h"

#include "base/log.h"
#include "base/rng.h"

namespace splash::apps::lu {

Lu::Lu(rt::Env& env, const Config& cfg) : env_(env), cfg_(cfg)
{
    if (cfg_.n % cfg_.block != 0)
        fatal("LU: n must be a multiple of the block size");
    nb_ = cfg_.n / cfg_.block;

    // Processor grid: pr x pc with pr <= pc, pr * pc = p.
    int p = env.nprocs();
    pr_ = 1;
    while (pr_ * pr_ * 4 <= p * 2)  // largest pr with pr <= sqrt(p)
        pr_ *= 2;
    while (p % pr_ != 0)
        pr_ /= 2;
    pc_ = p / pr_;

    const int b = cfg_.block;
    a_ = rt::SharedArray<double>(env,
                                 std::size_t(cfg_.n) * cfg_.n);
    // Home each block at its owner.
    for (int bi = 0; bi < nb_; ++bi) {
        for (int bj = 0; bj < nb_; ++bj) {
            a_.setHome(blockBase(bi, bj), std::size_t(b) * b,
                       ownerOf(bi, bj));
        }
    }

    // Deterministic diagonally-dominant matrix (LU without pivoting is
    // then numerically stable).
    Rng rng(cfg_.seed);
    orig_.resize(std::size_t(cfg_.n) * cfg_.n);
    for (int i = 0; i < cfg_.n; ++i) {
        for (int j = 0; j < cfg_.n; ++j) {
            double v = rng.uniform(-1.0, 1.0);
            if (i == j)
                v += cfg_.n;
            orig_[idx(i, j)] = v;
            a_.raw()[idx(i, j)] = v;
        }
    }
    bar_ = std::make_unique<rt::Barrier>(env);
}

int
Lu::ownerOf(int bi, int bj) const
{
    return (bi % pr_) * pc_ + (bj % pc_);
}

std::size_t
Lu::blockBase(int bi, int bj) const
{
    return (std::size_t(bi) * nb_ + bj) * cfg_.block * cfg_.block;
}

std::size_t
Lu::idx(int i, int j) const
{
    const int b = cfg_.block;
    return blockBase(i / b, j / b) + std::size_t(i % b) * b + (j % b);
}

double
Lu::elem(int i, int j) const
{
    return a_.raw()[idx(i, j)];
}

Result
Lu::run()
{
    env_.run([this](rt::ProcCtx& c) { body(c); });
    Result r;
    double sum = 0.0;
    for (int i = 0; i < cfg_.n; ++i)
        sum += elem(i, i);
    r.checksum = sum;
    return r;
}

void
Lu::body(rt::ProcCtx& c)
{
    const int me = c.id();
    for (int k = 0; k < nb_; ++k) {
        if (ownerOf(k, k) == me)
            factorDiagonal(c, k);
        bar_->arrive(c);
        for (int j = k + 1; j < nb_; ++j) {
            if (ownerOf(k, j) == me)
                solveRowBlock(c, k, j);
        }
        for (int i = k + 1; i < nb_; ++i) {
            if (ownerOf(i, k) == me)
                solveColBlock(c, k, i);
        }
        bar_->arrive(c);
        for (int i = k + 1; i < nb_; ++i) {
            for (int j = k + 1; j < nb_; ++j) {
                if (ownerOf(i, j) == me)
                    updateInterior(c, k, i, j);
            }
        }
        bar_->arrive(c);
    }
}

void
Lu::factorDiagonal(rt::ProcCtx& c, int k)
{
    const int b = cfg_.block;
    std::size_t d = blockBase(k, k);
    // In-place unit-lower / upper factorization of the B x B block.
    for (int j = 0; j < b; ++j) {
        double piv = a_.ld(d + std::size_t(j) * b + j);
        for (int i = j + 1; i < b; ++i) {
            double lij = a_.ld(d + std::size_t(i) * b + j) / piv;
            a_.st(d + std::size_t(i) * b + j, lij);
            c.flops(1);
            for (int m = j + 1; m < b; ++m) {
                double v = a_.ld(d + std::size_t(i) * b + m) -
                           lij * a_.ld(d + std::size_t(j) * b + m);
                a_.st(d + std::size_t(i) * b + m, v);
                c.flops(2);
            }
        }
    }
}

void
Lu::solveRowBlock(rt::ProcCtx& c, int k, int j)
{
    // A[k][j] := L_kk^{-1} A[k][j] (unit lower triangular solve).
    const int b = cfg_.block;
    std::size_t d = blockBase(k, k);
    std::size_t t = blockBase(k, j);
    for (int row = 1; row < b; ++row) {
        for (int m = 0; m < row; ++m) {
            double l = a_.ld(d + std::size_t(row) * b + m);
            for (int col = 0; col < b; ++col) {
                double v = a_.ld(t + std::size_t(row) * b + col) -
                           l * a_.ld(t + std::size_t(m) * b + col);
                a_.st(t + std::size_t(row) * b + col, v);
                c.flops(2);
            }
        }
    }
}

void
Lu::solveColBlock(rt::ProcCtx& c, int k, int i)
{
    // A[i][k] := A[i][k] U_kk^{-1}.
    const int b = cfg_.block;
    std::size_t d = blockBase(k, k);
    std::size_t t = blockBase(i, k);
    for (int col = 0; col < b; ++col) {
        double piv = a_.ld(d + std::size_t(col) * b + col);
        for (int row = 0; row < b; ++row) {
            double v = a_.ld(t + std::size_t(row) * b + col);
            for (int m = 0; m < col; ++m) {
                v -= a_.ld(t + std::size_t(row) * b + m) *
                     a_.ld(d + std::size_t(m) * b + col);
                c.flops(2);
            }
            a_.st(t + std::size_t(row) * b + col, v / piv);
            c.flops(1);
        }
    }
}

void
Lu::updateInterior(rt::ProcCtx& c, int k, int i, int j)
{
    // A[i][j] -= A[i][k] * A[k][j].
    const int b = cfg_.block;
    std::size_t l = blockBase(i, k);
    std::size_t u = blockBase(k, j);
    std::size_t t = blockBase(i, j);
    for (int row = 0; row < b; ++row) {
        for (int m = 0; m < b; ++m) {
            double lv = a_.ld(l + std::size_t(row) * b + m);
            for (int col = 0; col < b; ++col) {
                double v = a_.ld(t + std::size_t(row) * b + col) -
                           lv * a_.ld(u + std::size_t(m) * b + col);
                a_.st(t + std::size_t(row) * b + col, v);
                c.flops(2);
            }
        }
    }
}

} // namespace splash::apps::lu
