#include "apps/barnes/barnes.h"

#include <algorithm>
#include <cmath>

#include "base/log.h"
#include "base/rng.h"

namespace splash::apps::barnes {

Barnes::Barnes(rt::Env& env, const Config& cfg)
    : env_(env), cfg_(cfg), bodies_(env, cfg.nbodies),
      cells_(env, std::size_t(4) * cfg.nbodies / cfg.leafCap + 64),
      cellCount_(env, 0)
{
    ensure(cfg_.leafCap >= 1 && cfg_.leafCap <= 16,
           "Barnes: leafCap must be in [1, 16]");
    for (std::size_t i = 0; i < cells_.size(); ++i)
        cellLock_.push_back(std::make_unique<rt::Lock>(env));
    poolLock_ = std::make_unique<rt::Lock>(env);
    boundsLock_ = std::make_unique<rt::Lock>(env);
    bar_ = std::make_unique<rt::Barrier>(env);

    // Plummer-ish spherical cloud with deterministic randomness.
    Rng rng(cfg_.seed);
    for (int b = 0; b < cfg_.nbodies; ++b) {
        Body bb{};
        double r = 1.0 / std::sqrt(std::pow(rng.uniform(0.1, 0.999),
                                            -2.0 / 3.0) -
                                   1.0);
        double ctheta = rng.uniform(-1.0, 1.0);
        double phi = rng.uniform(0.0, 6.28318530717958648);
        double stheta = std::sqrt(1.0 - ctheta * ctheta);
        bb.pos[0] = r * stheta * std::cos(phi);
        bb.pos[1] = r * stheta * std::sin(phi);
        bb.pos[2] = r * ctheta;
        for (int d = 0; d < 3; ++d)
            bb.vel[d] = rng.uniform(-0.1, 0.1);
        bb.mass = 1.0 / cfg_.nbodies;
        bb.cost = 1.0;
        bodies_.raw()[b] = bb;
    }
    assignStart_.assign(env.nprocs() + 1, 0);
    for (int q = 0; q <= env.nprocs(); ++q)
        assignStart_[q] = long(cfg_.nbodies) * q / env.nprocs();
}

int
Barnes::octantOf(int cell, const double p[3]) const
{
    const Cell& c = cells_.raw()[cell];
    int o = 0;
    for (int d = 0; d < 3; ++d)
        if (p[d] >= c.center[d])
            o |= (1 << d);
    return o;
}

int
Barnes::newCell(rt::ProcCtx& c, const double center[3], double half,
                int level)
{
    int idx;
    {
        rt::Lock::Guard g(*poolLock_, c);
        idx = cellCount_.get();
        if (idx >= static_cast<int>(cells_.size()))
            fatal("Barnes: cell pool exhausted");
        cellCount_.set(idx + 1);
    }
    Cell fresh{};
    for (int d = 0; d < 3; ++d)
        fresh.center[d] = center[d];
    fresh.half = half;
    fresh.level = level;
    fresh.isLeaf = true;
    fresh.nleaf = 0;
    for (int o = 0; o < 8; ++o)
        fresh.child[o] = -1;
    cells_.st(idx, fresh);
    return idx;
}

void
Barnes::computeBounds(rt::ProcCtx& c)
{
    if (c.id() == 0) {
        for (int d = 0; d < 3; ++d) {
            boundsMin_[d] = 1e30;
            boundsMax_[d] = -1e30;
        }
    }
    bar_->arrive(c);
    double mn[3] = {1e30, 1e30, 1e30}, mx[3] = {-1e30, -1e30, -1e30};
    const Body* raw = bodies_.raw();
    for (long b = assignStart_[c.id()]; b < assignStart_[c.id() + 1];
         ++b) {
        for (int d = 0; d < 3; ++d) {
            rt::touchRead(&raw[b].pos[d], sizeof(double));
            mn[d] = std::min(mn[d], raw[b].pos[d]);
            mx[d] = std::max(mx[d], raw[b].pos[d]);
        }
        c.flops(6);
    }
    {
        rt::Lock::Guard g(*boundsLock_, c);
        for (int d = 0; d < 3; ++d) {
            boundsMin_[d] = std::min(boundsMin_[d], mn[d]);
            boundsMax_[d] = std::max(boundsMax_[d], mx[d]);
        }
        c.flops(6);
    }
    bar_->arrive(c);
    if (c.id() == 0) {
        double half = 0.0;
        for (int d = 0; d < 3; ++d) {
            rootCenter_[d] = 0.5 * (boundsMin_[d] + boundsMax_[d]);
            half = std::max(half,
                            0.5 * (boundsMax_[d] - boundsMin_[d]));
        }
        rootHalf_ = half * 1.00001 + 1e-9;
        cellCount_.set(0);
        newCell(c, rootCenter_, rootHalf_, 0);
    }
    bar_->arrive(c);
}

void
Barnes::splitLeaf(rt::ProcCtx& c, int cell)
{
    // Caller holds cell's lock. Convert to internal and redistribute.
    Cell cur = cells_.ld(cell);
    int moved[16];
    int nmoved = cur.nleaf;
    for (int k = 0; k < nmoved; ++k)
        moved[k] = cur.leafBodies[k];
    cur.isLeaf = false;
    cur.nleaf = 0;
    cells_.st(cell, cur);
    const Body* raw = bodies_.raw();
    for (int k = 0; k < nmoved; ++k) {
        int b = moved[k];
        double p[3];
        for (int d = 0; d < 3; ++d) {
            rt::touchRead(&raw[b].pos[d], sizeof(double));
            p[d] = raw[b].pos[d];
        }
        int o = octantOf(cell, p);
        Cell now = cells_.ld(cell);
        int ch = now.child[o];
        if (ch < 0) {
            double ctr[3];
            for (int d = 0; d < 3; ++d)
                ctr[d] = now.center[d] +
                         ((o >> d) & 1 ? 0.5 : -0.5) * now.half;
            ch = newCell(c, ctr, now.half * 0.5, now.level + 1);
            now.child[o] = ch;
            cells_.st(cell, now);
        }
        // Children are freshly created under our lock: insert directly
        // (they can overflow only if every body shares an octant; that
        // recursion is handled by the caller's descent loop re-trying).
        Cell leaf = cells_.ld(ch);
        if (leaf.nleaf < cfg_.leafCap) {
            leaf.leafBodies[leaf.nleaf++] = b;
            cells_.st(ch, leaf);
        } else {
            // Extremely clustered: split the child and retry once.
            splitLeaf(c, ch);
            // After splitting, descend within this subtree.
            int cur2 = ch;
            for (;;) {
                Cell cc = cells_.ld(cur2);
                int oo = octantOf(cur2, p);
                int ch2 = cc.child[oo];
                if (ch2 < 0) {
                    double ctr[3];
                    for (int d = 0; d < 3; ++d)
                        ctr[d] = cc.center[d] +
                                 ((oo >> d) & 1 ? 0.5 : -0.5) * cc.half;
                    ch2 = newCell(c, ctr, cc.half * 0.5, cc.level + 1);
                    cc.child[oo] = ch2;
                    cells_.st(cur2, cc);
                }
                Cell l2 = cells_.ld(ch2);
                if (l2.isLeaf && l2.nleaf < cfg_.leafCap) {
                    l2.leafBodies[l2.nleaf++] = b;
                    cells_.st(ch2, l2);
                    break;
                }
                if (l2.isLeaf)
                    splitLeaf(c, ch2);
                cur2 = ch2;
            }
        }
    }
}

void
Barnes::insertBody(rt::ProcCtx& c, int b)
{
    const Body* raw = bodies_.raw();
    double p[3];
    for (int d = 0; d < 3; ++d) {
        rt::touchRead(&raw[b].pos[d], sizeof(double));
        p[d] = raw[b].pos[d];
    }
    int cur = 0;
    for (;;) {
        rt::Lock::Guard g(*cellLock_[cur], c);
        Cell cc = cells_.ld(cur);
        if (cc.isLeaf) {
            if (cc.nleaf < cfg_.leafCap) {
                cc.leafBodies[cc.nleaf++] = b;
                cells_.st(cur, cc);
                return;
            }
            splitLeaf(c, cur);
            // fall through: cell is now internal; continue descent
            cc = cells_.ld(cur);
        }
        int o = octantOf(cur, p);
        int ch = cc.child[o];
        if (ch < 0) {
            double ctr[3];
            for (int d = 0; d < 3; ++d)
                ctr[d] = cc.center[d] +
                         ((o >> d) & 1 ? 0.5 : -0.5) * cc.half;
            ch = newCell(c, ctr, cc.half * 0.5, cc.level + 1);
            Cell leaf = cells_.ld(ch);
            leaf.leafBodies[leaf.nleaf++] = b;
            cells_.st(ch, leaf);
            cc.child[o] = ch;
            cells_.st(cur, cc);
            return;
        }
        cur = ch;  // release lock and descend
    }
}

void
Barnes::buildTree(rt::ProcCtx& c)
{
    for (long b = assignStart_[c.id()]; b < assignStart_[c.id() + 1];
         ++b)
        insertBody(c, static_cast<int>(b));
    bar_->arrive(c);
}

void
Barnes::levelize(rt::ProcCtx& c)
{
    if (c.id() == 0) {
        levels_.clear();
        int ncells = cellCount_.get();
        for (int i = 0; i < ncells; ++i) {
            int lv = cells_.raw()[i].level;
            if (lv >= static_cast<int>(levels_.size()))
                levels_.resize(lv + 1);
            levels_[lv].push_back(i);
        }
        c.work(std::uint64_t(ncells));
    }
    bar_->arrive(c);
}

void
Barnes::computeCoM(rt::ProcCtx& c)
{
    const int p = c.nprocs();
    for (int lv = static_cast<int>(levels_.size()) - 1; lv >= 0; --lv) {
        const auto& cl = levels_[lv];
        std::size_t per = (cl.size() + p - 1) / p;
        std::size_t first = per * c.id();
        std::size_t last = std::min(cl.size(), first + per);
        const Body* raw = bodies_.raw();
        for (std::size_t k = first; k < last; ++k) {
            Cell cc = cells_.ld(cl[k]);
            double m = 0, com[3] = {0, 0, 0};
            if (cc.isLeaf) {
                for (int i = 0; i < cc.nleaf; ++i) {
                    int b = cc.leafBodies[i];
                    rt::touchRead(&raw[b].mass, sizeof(double));
                    double bm = raw[b].mass;
                    m += bm;
                    for (int d = 0; d < 3; ++d) {
                        rt::touchRead(&raw[b].pos[d], sizeof(double));
                        com[d] += bm * raw[b].pos[d];
                    }
                    c.flops(7);
                }
            } else {
                for (int o = 0; o < 8; ++o) {
                    if (cc.child[o] < 0)
                        continue;
                    Cell ch = cells_.ld(cc.child[o]);
                    m += ch.mass;
                    for (int d = 0; d < 3; ++d)
                        com[d] += ch.mass * ch.com[d];
                    c.flops(7);
                }
            }
            cc.mass = m;
            for (int d = 0; d < 3; ++d)
                cc.com[d] = m > 0 ? com[d] / m : cc.center[d];
            c.flops(3);
            cells_.st(cl[k], cc);
        }
        bar_->arrive(c);
    }
}

void
Barnes::forceOnBody(rt::ProcCtx& c, int b)
{
    Body* raw = bodies_.raw();
    double p[3];
    for (int d = 0; d < 3; ++d) {
        rt::touchRead(&raw[b].pos[d], sizeof(double));
        p[d] = raw[b].pos[d];
    }
    double acc[3] = {0, 0, 0};
    double interactions = 0;
    const double eps2 = cfg_.eps * cfg_.eps;
    const double theta2 = cfg_.theta * cfg_.theta;

    int stack[256];
    int sp = 0;
    stack[sp++] = 0;
    while (sp > 0) {
        int ci = stack[--sp];
        Cell cc = cells_.ld(ci);
        if (cc.isLeaf) {
            for (int k = 0; k < cc.nleaf; ++k) {
                int j = cc.leafBodies[k];
                if (j == b)
                    continue;
                double dr[3];
                for (int d = 0; d < 3; ++d) {
                    rt::touchRead(&raw[j].pos[d], sizeof(double));
                    dr[d] = raw[j].pos[d] - p[d];
                }
                rt::touchRead(&raw[j].mass, sizeof(double));
                double r2 = dr[0] * dr[0] + dr[1] * dr[1] +
                            dr[2] * dr[2] + eps2;
                double inv = 1.0 / std::sqrt(r2);
                double f = raw[j].mass * inv * inv * inv;
                for (int d = 0; d < 3; ++d)
                    acc[d] += f * dr[d];
                c.flops(20);
                interactions += 1;
            }
            continue;
        }
        double dr[3];
        for (int d = 0; d < 3; ++d)
            dr[d] = cc.com[d] - p[d];
        double r2 = dr[0] * dr[0] + dr[1] * dr[1] + dr[2] * dr[2];
        double size = 2.0 * cc.half;
        c.flops(9);
        if (size * size < theta2 * r2) {
            // Well separated: use the cell's center of mass.
            r2 += eps2;
            double inv = 1.0 / std::sqrt(r2);
            double f = cc.mass * inv * inv * inv;
            for (int d = 0; d < 3; ++d)
                acc[d] += f * dr[d];
            c.flops(12);
            interactions += 1;
        } else {
            for (int o = 0; o < 8; ++o) {
                if (cc.child[o] >= 0) {
                    ensure(sp < 256, "Barnes: traversal stack overflow");
                    stack[sp++] = cc.child[o];
                }
            }
        }
    }
    for (int d = 0; d < 3; ++d) {
        rt::touchWrite(&raw[b].acc[d], sizeof(double));
        raw[b].acc[d] = acc[d];
    }
    rt::touchWrite(&raw[b].cost, sizeof(double));
    raw[b].cost = interactions;
}

void
Barnes::forcePhase(rt::ProcCtx& c)
{
    for (long b = assignStart_[c.id()]; b < assignStart_[c.id() + 1];
         ++b)
        forceOnBody(c, static_cast<int>(b));
    bar_->arrive(c);
}

void
Barnes::advance(rt::ProcCtx& c)
{
    Body* raw = bodies_.raw();
    double kin = 0.0;
    for (long b = assignStart_[c.id()]; b < assignStart_[c.id() + 1];
         ++b) {
        for (int d = 0; d < 3; ++d) {
            rt::touchRead(&raw[b].vel[d], sizeof(double));
            rt::touchRead(&raw[b].acc[d], sizeof(double));
            double v = raw[b].vel[d] + raw[b].acc[d] * cfg_.dt;
            rt::touchWrite(&raw[b].vel[d], sizeof(double));
            raw[b].vel[d] = v;
            rt::touchRead(&raw[b].pos[d], sizeof(double));
            rt::touchWrite(&raw[b].pos[d], sizeof(double));
            raw[b].pos[d] += v * cfg_.dt;
            kin += 0.5 * raw[b].mass * v * v;
            c.flops(7);
        }
    }
    {
        rt::Lock::Guard g(*boundsLock_, c);
        kinetic_ += kin;
    }
    bar_->arrive(c);
}

void
Barnes::partitionByCost(rt::ProcCtx& c)
{
    if (c.id() == 0) {
        const Body* raw = bodies_.raw();
        double total = 0;
        for (int b = 0; b < cfg_.nbodies; ++b)
            total += raw[b].cost;
        c.work(std::uint64_t(cfg_.nbodies));
        int p = c.nprocs();
        double per = total / p;
        double acc = 0;
        int q = 1;
        for (int b = 0; b < cfg_.nbodies && q < p; ++b) {
            acc += raw[b].cost;
            if (acc >= per * q)
                assignStart_[q++] = b + 1;
        }
        while (q < p)
            assignStart_[q++] = cfg_.nbodies;
        assignStart_[p] = cfg_.nbodies;
        c.work(std::uint64_t(cfg_.nbodies));
    }
    bar_->arrive(c);
}

void
Barnes::body(rt::ProcCtx& c)
{
    for (int s = 0; s < cfg_.steps; ++s) {
        if (s == cfg_.warmupSteps && s > 0) {
            bar_->arrive(c);
            if (c.id() == 0)
                env_.startMeasurement();
            bar_->arrive(c);
        }
        computeBounds(c);
        buildTree(c);
        levelize(c);
        computeCoM(c);
        forcePhase(c);
        if (c.id() == 0)
            kinetic_ = 0.0;
        bar_->arrive(c);
        advance(c);
        partitionByCost(c);
    }
}

Result
Barnes::run()
{
    env_.run([this](rt::ProcCtx& c) { body(c); });
    Result r;
    r.kinetic = kinetic_;
    double sum = 0;
    for (int b = 0; b < cfg_.nbodies; ++b)
        for (int d = 0; d < 3; ++d)
            sum += bodies_.raw()[b].pos[d] * (d + 1);
    r.checksum = sum;
    r.valid = std::isfinite(sum);
    return r;
}

std::vector<double>
Barnes::accelerations() const
{
    std::vector<double> out(std::size_t(3) * cfg_.nbodies);
    for (int b = 0; b < cfg_.nbodies; ++b)
        for (int d = 0; d < 3; ++d)
            out[3 * b + d] = bodies_.raw()[b].acc[d];
    return out;
}

std::vector<double>
Barnes::positions() const
{
    std::vector<double> out(std::size_t(3) * cfg_.nbodies);
    for (int b = 0; b < cfg_.nbodies; ++b)
        for (int d = 0; d < 3; ++d)
            out[3 * b + d] = bodies_.raw()[b].pos[d];
    return out;
}

std::vector<double>
Barnes::directAccelerations() const
{
    const Body* raw = bodies_.raw();
    std::vector<double> out(std::size_t(3) * cfg_.nbodies, 0.0);
    const double eps2 = cfg_.eps * cfg_.eps;
    for (int i = 0; i < cfg_.nbodies; ++i) {
        for (int j = 0; j < cfg_.nbodies; ++j) {
            if (i == j)
                continue;
            double dr[3];
            for (int d = 0; d < 3; ++d)
                dr[d] = raw[j].pos[d] - raw[i].pos[d];
            double r2 = dr[0] * dr[0] + dr[1] * dr[1] + dr[2] * dr[2] +
                        eps2;
            double inv = 1.0 / std::sqrt(r2);
            double f = raw[j].mass * inv * inv * inv;
            for (int d = 0; d < 3; ++d)
                out[3 * i + d] += f * dr[d];
        }
    }
    return out;
}

int
Barnes::bodiesInTree() const
{
    int total = 0;
    int ncells = cellCount_.get();
    for (int i = 0; i < ncells; ++i)
        if (cells_.raw()[i].isLeaf)
            total += cells_.raw()[i].nleaf;
    return total;
}

} // namespace splash::apps::barnes
