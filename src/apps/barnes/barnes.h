/**
 * @file
 * Barnes: 3-D hierarchical N-body simulation (Barnes-Hut), as in
 * SPLASH-2:
 *
 *  - the computational domain is an octree with leaves holding
 *    multiple bodies (the [HoS95] improvement over SPLASH-1),
 *  - the tree is built in parallel, processors inserting their own
 *    bodies under per-cell locks,
 *  - centers of mass propagate upward level by level,
 *  - most time is spent in per-body partial traversals of the octree
 *    using the opening criterion size/distance < theta,
 *  - work is partitioned by per-body cost from the previous time-step
 *    (a simplified costzones scheme),
 *  - no attempt is made at intelligent data distribution of body data
 *    (the paper notes this is unimportant at page granularity).
 *
 * Paper default: 16 K bodies; sim-scaled default: 2 K bodies.
 */
#ifndef SPLASH2_APPS_BARNES_BARNES_H
#define SPLASH2_APPS_BARNES_BARNES_H

#include <memory>
#include <vector>

#include "rt/env.h"
#include "rt/shared.h"
#include "rt/sync.h"

namespace splash::apps::barnes {

struct Config
{
    int nbodies = 2048;
    int steps = 3;
    /** Steps before measurement starts (paper: skip cold start). */
    int warmupSteps = 0;
    double theta = 1.0;   ///< opening criterion
    double dt = 0.025;
    double eps = 0.05;    ///< Plummer softening
    int leafCap = 8;      ///< max bodies per leaf
    unsigned seed = 1234;
};

struct Body
{
    double pos[3];
    double vel[3];
    double acc[3];
    double mass;
    double cost;  ///< interactions in the previous force phase
};

/** Octree node: internal (children) or leaf (body list). */
struct Cell
{
    double center[3];
    double half = 0.0;       ///< half edge length
    double com[3];           ///< center of mass (after upward pass)
    double mass = 0.0;
    int child[8];            ///< cell indices; -1 = empty
    int leafBodies[16];
    int nleaf = 0;
    int level = 0;
    bool isLeaf = true;
};

struct Result
{
    bool valid = true;
    double checksum = 0.0;
    double kinetic = 0.0;
};

class Barnes
{
  public:
    Barnes(rt::Env& env, const Config& cfg);

    Result run();

    /** Accelerations after the last force phase (uninstrumented). */
    std::vector<double> accelerations() const;
    std::vector<double> positions() const;

    /** Direct O(n^2) reference accelerations on current positions. */
    std::vector<double> directAccelerations() const;

    /** Tree introspection for tests (valid after run()). */
    int bodiesInTree() const;

  private:
    void body(rt::ProcCtx& c);
    void computeBounds(rt::ProcCtx& c);
    void buildTree(rt::ProcCtx& c);
    void insertBody(rt::ProcCtx& c, int b);
    int newCell(rt::ProcCtx& c, const double center[3], double half,
                int level);
    void splitLeaf(rt::ProcCtx& c, int cell);
    void levelize(rt::ProcCtx& c);
    void computeCoM(rt::ProcCtx& c);
    void forcePhase(rt::ProcCtx& c);
    void forceOnBody(rt::ProcCtx& c, int b);
    void advance(rt::ProcCtx& c);
    void partitionByCost(rt::ProcCtx& c);

    int octantOf(int cell, const double p[3]) const;

    rt::Env& env_;
    Config cfg_;
    rt::SharedArray<Body> bodies_;
    rt::SharedArray<Cell> cells_;
    rt::SharedVar<int> cellCount_;
    std::vector<std::unique_ptr<rt::Lock>> cellLock_;
    std::unique_ptr<rt::Lock> poolLock_;
    std::unique_ptr<rt::Lock> boundsLock_;
    std::unique_ptr<rt::Barrier> bar_;

    // Host-side coordination state written by processor 0 between
    // barriers (read-only for the others).
    double rootCenter_[3] = {0, 0, 0};
    double rootHalf_ = 0.0;
    double boundsMin_[3], boundsMax_[3];
    std::vector<std::vector<int>> levels_;
    std::vector<long> assignStart_;  ///< cost-balanced body ranges
    double kinetic_ = 0.0;
};

} // namespace splash::apps::barnes

#endif // SPLASH2_APPS_BARNES_BARNES_H
