#include "apps/radix/radix.h"

#include <algorithm>

#include "base/log.h"
#include "base/rng.h"

namespace splash::apps::radix {

Radix::Radix(rt::Env& env, const Config& cfg) : env_(env), cfg_(cfg)
{
    const int p = env.nprocs();
    if (!isPow2(p))
        fatal("Radix: processor count must be a power of two");
    if (!isPow2(cfg_.radix))
        fatal("Radix: radix must be a power of two");
    if (cfg_.nkeys % p != 0)
        fatal("Radix: key count must be a multiple of the proc count");
    keysPerProc_ = cfg_.nkeys / p;

    int bits_per_digit = log2i(cfg_.radix);
    digits_ = (cfg_.maxKeyLog2 + bits_per_digit - 1) / bits_per_digit;

    keys0_ = rt::SharedArray<std::uint32_t>(env, cfg_.nkeys);
    keys1_ = rt::SharedArray<std::uint32_t>(env, cfg_.nkeys);
    rank_ = rt::SharedArray<std::uint32_t>(
        env, std::size_t(p) * cfg_.radix);
    nodeSum_ = rt::SharedArray<std::uint32_t>(
        env, std::size_t(2 * p) * cfg_.radix);
    nodePrefix_ = rt::SharedArray<std::uint32_t>(
        env, std::size_t(2 * p) * cfg_.radix);
    digitPrefix_ = rt::SharedArray<std::uint32_t>(env, cfg_.radix);

    for (int q = 0; q < p; ++q) {
        keys0_.setHome(q * keysPerProc_, keysPerProc_, q);
        keys1_.setHome(q * keysPerProc_, keysPerProc_, q);
        rank_.setHome(std::size_t(q) * cfg_.radix, cfg_.radix, q);
        // Leaf tree rows live at their processor; internal rows at the
        // processor that computes them (leftmost leaf).
        nodeSum_.setHome(std::size_t(p + q) * cfg_.radix, cfg_.radix, q);
        nodePrefix_.setHome(std::size_t(p + q) * cfg_.radix, cfg_.radix,
                            q);
    }
    for (int v = 1; v < p; ++v) {
        int leftmost = v;
        while (leftmost < p)
            leftmost *= 2;
        int owner = leftmost - p;
        nodeSum_.setHome(std::size_t(v) * cfg_.radix, cfg_.radix, owner);
        nodePrefix_.setHome(std::size_t(v) * cfg_.radix, cfg_.radix,
                            owner);
    }

    for (int v = 0; v < 2 * p; ++v) {
        upFlag_.push_back(std::make_unique<rt::Flag>(env));
        downFlag_.push_back(std::make_unique<rt::Flag>(env));
    }
    bar_ = std::make_unique<rt::Barrier>(env);

    Rng rng(cfg_.seed);
    std::uint32_t mask = (cfg_.maxKeyLog2 >= 32)
                             ? 0xffffffffu
                             : ((1u << cfg_.maxKeyLog2) - 1);
    inputCopy_.resize(cfg_.nkeys);
    for (long i = 0; i < cfg_.nkeys; ++i) {
        std::uint32_t k = static_cast<std::uint32_t>(rng.next()) & mask;
        keys0_.raw()[i] = k;
        inputCopy_[i] = k;
    }
    src_ = &keys0_;
    dst_ = &keys1_;
}

Result
Radix::run()
{
    env_.run([this](rt::ProcCtx& c) { body(c); });
    Result r;
    const std::uint32_t* out = src_->raw();
    std::vector<std::uint32_t> sorted = inputCopy_;
    std::sort(sorted.begin(), sorted.end());
    r.valid = true;
    double sum = 0.0;
    for (long i = 0; i < cfg_.nkeys; ++i) {
        if (out[i] != sorted[i])
            r.valid = false;
        sum += double(out[i]) * double((i % 64) + 1) * 1e-6;
    }
    r.checksum = sum;
    return r;
}

std::vector<std::uint32_t>
Radix::output() const
{
    const std::uint32_t* out = src_->raw();
    return std::vector<std::uint32_t>(out, out + cfg_.nkeys);
}

void
Radix::body(rt::ProcCtx& c)
{
    const int p = c.nprocs();
    int bits = log2i(cfg_.radix);
    for (int pass = 0; pass < digits_; ++pass) {
        int shift = pass * bits;
        histogram(c, *src_, shift);
        bar_->arrive(c);
        prefixTree(c);
        permute(c, *src_, *dst_, shift);
        bar_->arrive(c);
        if (c.id() == 0) {
            std::swap(src_, dst_);
            // Reset tree flags for the next pass.
            for (int v = 0; v < 2 * p; ++v) {
                upFlag_[v]->clear(c);
                downFlag_[v]->clear(c);
            }
        }
        bar_->arrive(c);
    }
}

void
Radix::histogram(rt::ProcCtx& c, rt::SharedArray<std::uint32_t>& keys,
                 int shift)
{
    const int q = c.id();
    const int r = cfg_.radix;
    const std::uint32_t dmask = r - 1;
    std::vector<std::uint32_t> local(r, 0);
    long base = q * keysPerProc_;
    for (long i = 0; i < keysPerProc_; ++i) {
        std::uint32_t k = keys.ld(base + i);
        ++local[(k >> shift) & dmask];
        c.work(2);
    }
    // Publish into this processor's leaf row of the prefix tree.
    std::size_t leaf = std::size_t(c.nprocs() + q) * r;
    for (int d = 0; d < r; ++d)
        nodeSum_.st(leaf + d, local[d]);
}

void
Radix::prefixTree(rt::ProcCtx& c)
{
    const int p = c.nprocs();
    const int q = c.id();
    const int r = cfg_.radix;

    // Up-sweep: walk up while we are a left child, combining sums.
    std::vector<int> path;
    int v = p + q;
    path.push_back(v);
    while (v > 1 && v % 2 == 0) {
        int u = v / 2;
        upFlag_[v + 1]->wait(c);  // right sibling's subtree done
        std::size_t su = std::size_t(u) * r;
        std::size_t sl = std::size_t(v) * r;
        std::size_t sr = std::size_t(v + 1) * r;
        for (int d = 0; d < r; ++d) {
            nodeSum_.st(su + d, nodeSum_.ld(sl + d) +
                                    nodeSum_.ld(sr + d));
            c.work(1);
        }
        v = u;
        path.push_back(v);
    }
    upFlag_[v]->set(c);

    // Root: global per-digit exclusive prefix (the serial O(r) step).
    if (v == 1) {
        std::uint32_t acc = 0;
        for (int d = 0; d < r; ++d) {
            digitPrefix_.st(d, acc);
            acc += nodeSum_.ld(std::size_t(1) * r + d);
            c.work(1);
        }
        for (int d = 0; d < r; ++d)
            nodePrefix_.st(std::size_t(1) * r + d, 0);
        downFlag_[1]->set(c);
    }

    // Down-sweep along the same path, top to leaf.
    int top = path.back();
    downFlag_[top]->wait(c);
    for (int i = static_cast<int>(path.size()) - 1; i > 0; --i) {
        int node = path[i];  // internal; its left child is path[i-1]
        int l = 2 * node, rr = 2 * node + 1;
        std::size_t sn = std::size_t(node) * r;
        std::size_t slp = std::size_t(l) * r;
        std::size_t srp = std::size_t(rr) * r;
        std::size_t sls = std::size_t(l) * r;
        for (int d = 0; d < r; ++d) {
            std::uint32_t pre = nodePrefix_.ld(sn + d);
            nodePrefix_.st(slp + d, pre);
            nodePrefix_.st(srp + d, pre + nodeSum_.ld(sls + d));
            c.work(2);
        }
        downFlag_[rr]->set(c);
    }

    // Leaf rank: rank[q][d] = digitPrefix[d] + cross-processor prefix.
    std::size_t leaf = std::size_t(p + q) * r;
    std::size_t myrank = std::size_t(q) * r;
    for (int d = 0; d < r; ++d) {
        rank_.st(myrank + d,
                 digitPrefix_.ld(d) + nodePrefix_.ld(leaf + d));
        c.work(1);
    }
}

void
Radix::permute(rt::ProcCtx& c, rt::SharedArray<std::uint32_t>& src,
               rt::SharedArray<std::uint32_t>& dst, int shift)
{
    const int q = c.id();
    const int r = cfg_.radix;
    const std::uint32_t dmask = r - 1;
    // Private copy of this processor's rank row.
    std::vector<std::uint32_t> offset(r);
    std::size_t myrank = std::size_t(q) * r;
    for (int d = 0; d < r; ++d)
        offset[d] = rank_.ld(myrank + d);
    long base = q * keysPerProc_;
    for (long i = 0; i < keysPerProc_; ++i) {
        std::uint32_t k = src.ld(base + i);
        std::uint32_t d = (k >> shift) & dmask;
        dst.st(offset[d]++, k);  // sender-determined write
        c.work(3);
    }
}

} // namespace splash::apps::radix
