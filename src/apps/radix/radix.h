/**
 * @file
 * Radix kernel: iterative integer radix sort (Blelloch et al.), as in
 * SPLASH-2.
 *
 * One iteration per radix-r digit.  In each iteration a processor (1)
 * histograms its contiguous band of keys, (2) participates in a
 * binary-tree parallel prefix that turns the per-processor histograms
 * into global ranks (this is the O(r log p) phase whose imperfect
 * parallelism limits Radix's speedup -- and the source of the suite's
 * flag-based "pause" synchronizations), and (3) permutes its keys into
 * the destination array.  The permutation is sender-determined: keys
 * are communicated through writes, causing heavy all-to-all write
 * traffic.
 *
 * Paper default: 1 M keys, radix 1024; sim-scaled default: 256 K keys.
 */
#ifndef SPLASH2_APPS_RADIX_RADIX_H
#define SPLASH2_APPS_RADIX_RADIX_H

#include <cstdint>
#include <memory>
#include <vector>

#include "rt/env.h"
#include "rt/shared.h"
#include "rt/sync.h"

namespace splash::apps::radix {

struct Config
{
    long nkeys = 256 * 1024;
    int radix = 1024;          ///< power of two
    int maxKeyLog2 = 20;       ///< keys uniform in [0, 2^maxKeyLog2)
    unsigned seed = 1234;
};

struct Result
{
    bool valid = true;      ///< output sorted and a permutation
    double checksum = 0.0;  ///< sum digest of the sorted keys
};

class Radix
{
  public:
    Radix(rt::Env& env, const Config& cfg);

    Result run();

    /** The sorted keys after run() (uninstrumented copy). */
    std::vector<std::uint32_t> output() const;
    /** The generated input keys (uninstrumented copy). */
    std::vector<std::uint32_t> input() const { return inputCopy_; }

  private:
    void body(rt::ProcCtx& c);
    void histogram(rt::ProcCtx& c, rt::SharedArray<std::uint32_t>& keys,
                   int shift);
    void prefixTree(rt::ProcCtx& c);
    void permute(rt::ProcCtx& c, rt::SharedArray<std::uint32_t>& src,
                 rt::SharedArray<std::uint32_t>& dst, int shift);

    rt::Env& env_;
    Config cfg_;
    int digits_;         ///< number of radix passes
    long keysPerProc_;
    rt::SharedArray<std::uint32_t> keys0_, keys1_;
    rt::SharedArray<std::uint32_t>* src_ = nullptr;
    rt::SharedArray<std::uint32_t>* dst_ = nullptr;
    /** density_[p * radix + d]: per-processor digit histogram. */
    rt::SharedArray<std::uint32_t> density_;
    /** rank_[p * radix + d]: global start index for proc p, digit d. */
    rt::SharedArray<std::uint32_t> rank_;
    /** Binary-tree node sums: (2p-1) vectors of radix counters. */
    rt::SharedArray<std::uint32_t> nodeSum_;
    /** Down-sweep exclusive prefixes per tree node. */
    rt::SharedArray<std::uint32_t> nodePrefix_;
    /** Per-digit global exclusive prefix (root of the tree). */
    rt::SharedArray<std::uint32_t> digitPrefix_;
    std::vector<std::unique_ptr<rt::Flag>> upFlag_, downFlag_;
    std::unique_ptr<rt::Barrier> bar_;
    std::vector<std::uint32_t> inputCopy_;
};

} // namespace splash::apps::radix

#endif // SPLASH2_APPS_RADIX_RADIX_H
