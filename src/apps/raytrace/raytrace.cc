#include "apps/raytrace/raytrace.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "base/log.h"
#include "base/rng.h"

namespace splash::apps::raytrace {

namespace {

inline Vec
operator+(const Vec& a, const Vec& b)
{
    return {a.x + b.x, a.y + b.y, a.z + b.z};
}

inline Vec
operator-(const Vec& a, const Vec& b)
{
    return {a.x - b.x, a.y - b.y, a.z - b.z};
}

inline Vec
operator*(const Vec& a, double s)
{
    return {a.x * s, a.y * s, a.z * s};
}

inline Vec
mul(const Vec& a, const Vec& b)
{
    return {a.x * b.x, a.y * b.y, a.z * b.z};
}

inline double
dot(const Vec& a, const Vec& b)
{
    return a.x * b.x + a.y * b.y + a.z * b.z;
}

inline Vec
cross(const Vec& a, const Vec& b)
{
    return {a.y * b.z - a.z * b.y, a.z * b.x - a.x * b.z,
            a.x * b.y - a.y * b.x};
}

inline Vec
norm(const Vec& a)
{
    double inv = 1.0 / std::sqrt(dot(a, a));
    return a * inv;
}

inline double
axis(const Vec& v, int d)
{
    return d == 0 ? v.x : (d == 1 ? v.y : v.z);
}

inline void
setAxis(Vec& v, int d, double val)
{
    (d == 0 ? v.x : (d == 1 ? v.y : v.z)) = val;
}

/** Axis-aligned bounding box of a bounded primitive. */
void
primBounds(const Prim& p, Vec& lo, Vec& hi)
{
    if (p.type == 0) {
        double r = p.b.x;
        lo = p.a - Vec{r, r, r};
        hi = p.a + Vec{r, r, r};
    } else {
        lo = hi = p.a;
        for (const Vec* v : {&p.b, &p.c}) {
            lo.x = std::min(lo.x, v->x);
            lo.y = std::min(lo.y, v->y);
            lo.z = std::min(lo.z, v->z);
            hi.x = std::max(hi.x, v->x);
            hi.y = std::max(hi.y, v->y);
            hi.z = std::max(hi.z, v->z);
        }
    }
}

/** Ray / axis-aligned box intersection; returns [t0, t1] or false. */
bool
rayBox(const Vec& org, const Vec& dir, const Vec& lo, const Vec& hi,
       double& t0, double& t1)
{
    t0 = 0.0;
    t1 = 1e30;
    for (int d = 0; d < 3; ++d) {
        double o = axis(org, d), v = axis(dir, d);
        double l = axis(lo, d), h = axis(hi, d);
        if (std::abs(v) < 1e-12) {
            if (o < l || o > h)
                return false;
            continue;
        }
        double ta = (l - o) / v, tb = (h - o) / v;
        if (ta > tb)
            std::swap(ta, tb);
        t0 = std::max(t0, ta);
        t1 = std::min(t1, tb);
        if (t0 > t1)
            return false;
    }
    return true;
}

} // namespace

Raytrace::Raytrace(rt::Env& env, const Config& cfg)
    : env_(env), cfg_(cfg)
{
    buildScene();
    buildGrid();
    fb_ = rt::SharedArray<double>(env,
                                  std::size_t(3) * cfg_.width *
                                      cfg_.height);
    tq_ = std::make_unique<rt::TaskQueues>(env, env.nprocs());
    bar_ = std::make_unique<rt::Barrier>(env);
    statLock_ = std::make_unique<rt::Lock>(env);
}

void
Raytrace::buildScene()
{
    std::vector<Prim> prims;
    Rng rng(cfg_.seed);

    // Checkered ground plane.
    Prim ground;
    ground.type = 1;
    ground.a = {0, 0, 0};
    ground.b = {0, 1, 0};
    ground.mat.color = {0.9, 0.9, 0.9};
    ground.mat.kd = 0.9;
    ground.mat.kr = 0.15;
    ground.mat.checker = 1;
    prims.push_back(ground);

    // Grid of reflective spheres.
    int g = cfg_.sphereGrid;
    for (int i = 0; i < g; ++i) {
        for (int j = 0; j < g; ++j) {
            Prim s;
            s.type = 0;
            s.a = {i * 1.6 - (g - 1) * 0.8, 0.5, j * 1.6 - (g - 1) * 0.8};
            s.b = {0.5, 0, 0};
            s.mat.color = {0.3 + 0.7 * rng.uniform(), 0.4,
                           0.3 + 0.7 * rng.uniform()};
            s.mat.kd = 0.5;
            s.mat.kr = 0.4;
            prims.push_back(s);
        }
    }

    // Large mirror sphere above the center.
    Prim big;
    big.type = 0;
    big.a = {0, 2.2, 0};
    big.b = {0.9, 0, 0};
    big.mat.color = {0.9, 0.9, 0.95};
    big.mat.kd = 0.2;
    big.mat.kr = 0.7;
    prims.push_back(big);

    // A tetrahedron of triangles off to one side.
    Vec t0{2.5, 0.0, -2.5}, t1{3.5, 0.0, -2.0}, t2{2.8, 0.0, -1.4},
        apex{3.0, 1.4, -2.0};
    auto tri = [&](Vec a, Vec b, Vec c) {
        Prim t;
        t.type = 2;
        t.a = a;
        t.b = b;
        t.c = c;
        t.mat.color = {0.95, 0.8, 0.25};
        t.mat.kd = 0.85;
        t.mat.kr = 0.05;
        return t;
    };
    prims.push_back(tri(t0, t1, apex));
    prims.push_back(tri(t1, t2, apex));
    prims.push_back(tri(t2, t0, apex));
    prims.push_back(tri(t0, t2, t1));

    nprims_ = prims.size();
    prims_ = rt::SharedArray<Prim>(env_, nprims_);
    for (std::size_t i = 0; i < nprims_; ++i) {
        prims_.raw()[i] = prims[i];
        if (prims[i].type == 1)
            planeIds_.push_back(static_cast<int>(i));
    }

    lights_ = {{-4.0, 6.0, -3.0}, {5.0, 5.0, 4.0}};
    eye_ = {0.0, 2.4, -7.0};
    lookAt_ = {0.0, 0.8, 0.0};
}

void
Raytrace::buildGrid()
{
    const int n = cfg_.gridDim;
    const int s = cfg_.subDim;
    // Bounds over bounded primitives only.
    gridLo_ = {1e30, 1e30, 1e30};
    gridHi_ = {-1e30, -1e30, -1e30};
    for (std::size_t i = 0; i < nprims_; ++i) {
        const Prim& p = prims_.raw()[i];
        if (p.type == 1)
            continue;
        Vec lo, hi;
        primBounds(p, lo, hi);
        gridLo_.x = std::min(gridLo_.x, lo.x);
        gridLo_.y = std::min(gridLo_.y, lo.y);
        gridLo_.z = std::min(gridLo_.z, lo.z);
        gridHi_.x = std::max(gridHi_.x, hi.x);
        gridHi_.y = std::max(gridHi_.y, hi.y);
        gridHi_.z = std::max(gridHi_.z, hi.z);
    }
    Vec pad = (gridHi_ - gridLo_) * 0.01 + Vec{1e-4, 1e-4, 1e-4};
    gridLo_ = gridLo_ - pad;
    gridHi_ = gridHi_ + pad;
    cellSize_ = {(gridHi_.x - gridLo_.x) / n,
                 (gridHi_.y - gridLo_.y) / n,
                 (gridHi_.z - gridLo_.z) / n};

    // Conservative AABB binning of primitives into top cells.
    std::vector<std::vector<int>> cells(std::size_t(n) * n * n);
    for (std::size_t i = 0; i < nprims_; ++i) {
        const Prim& p = prims_.raw()[i];
        if (p.type == 1)
            continue;
        Vec lo, hi;
        primBounds(p, lo, hi);
        int c0[3], c1[3];
        for (int d = 0; d < 3; ++d) {
            double csz = axis(cellSize_, d);
            c0[d] = std::clamp(
                int((axis(lo, d) - axis(gridLo_, d)) / csz), 0, n - 1);
            c1[d] = std::clamp(
                int((axis(hi, d) - axis(gridLo_, d)) / csz), 0, n - 1);
        }
        for (int z = c0[2]; z <= c1[2]; ++z)
            for (int y = c0[1]; y <= c1[1]; ++y)
                for (int x = c0[0]; x <= c1[0]; ++x)
                    cells[(std::size_t(z) * n + y) * n + x].push_back(
                        static_cast<int>(i));
    }

    // Promote dense cells to subgrids.
    std::vector<int> top_start, top_list, sub_of, sub_start, sub_list;
    top_start.push_back(0);
    sub_of.assign(cells.size(), -1);
    for (std::size_t ci = 0; ci < cells.size(); ++ci) {
        if (static_cast<int>(cells[ci].size()) <= cfg_.subThreshold) {
            for (int id : cells[ci])
                top_list.push_back(id);
        } else {
            sub_of[ci] = nsub_++;
            // Bin this cell's prims into s^3 subcells.
            int cx = static_cast<int>(ci) % n;
            int cy = (static_cast<int>(ci) / n) % n;
            int cz = static_cast<int>(ci) / (n * n);
            Vec clo = gridLo_ + Vec{cx * cellSize_.x, cy * cellSize_.y,
                                    cz * cellSize_.z};
            std::vector<std::vector<int>> sub(std::size_t(s) * s * s);
            for (int id : cells[ci]) {
                const Prim& p = prims_.raw()[id];
                Vec lo, hi;
                primBounds(p, lo, hi);
                int c0[3], c1[3];
                for (int d = 0; d < 3; ++d) {
                    double csz = axis(cellSize_, d) / s;
                    c0[d] = std::clamp(
                        int((axis(lo, d) - axis(clo, d)) / csz), 0,
                        s - 1);
                    c1[d] = std::clamp(
                        int((axis(hi, d) - axis(clo, d)) / csz), 0,
                        s - 1);
                }
                for (int z = c0[2]; z <= c1[2]; ++z)
                    for (int y = c0[1]; y <= c1[1]; ++y)
                        for (int x = c0[0]; x <= c1[0]; ++x)
                            sub[(std::size_t(z) * s + y) * s + x]
                                .push_back(id);
            }
            for (const auto& sc : sub) {
                sub_start.push_back(static_cast<int>(sub_list.size()));
                for (int id : sc)
                    sub_list.push_back(id);
            }
            sub_start.push_back(static_cast<int>(sub_list.size()));
            // Re-base this subgrid's offsets at upload time (they are
            // absolute in sub_list already).
        }
        top_start.push_back(static_cast<int>(top_list.size()));
    }

    auto upload = [&](rt::SharedArray<int>& dst,
                      const std::vector<int>& src) {
        dst = rt::SharedArray<int>(env_, std::max<std::size_t>(
                                             src.size(), 1));
        for (std::size_t i = 0; i < src.size(); ++i)
            dst.raw()[i] = src[i];
    };
    upload(topStart_, top_start);
    upload(topList_, top_list);
    upload(subOf_, sub_of);
    upload(subStart_, sub_start);
    upload(subList_, sub_list);
}

bool
Raytrace::intersectPrim(rt::ProcCtx& c, int id, const Vec& org,
                        const Vec& dir, Hit& hit)
{
    Prim p = prims_.ld(id);
    c.flops(20);
    if (p.type == 0) {
        Vec oc = org - p.a;
        double r = p.b.x;
        double bq = dot(oc, dir);
        double cq = dot(oc, oc) - r * r;
        double disc = bq * bq - cq;
        if (disc < 0)
            return false;
        double sq = std::sqrt(disc);
        double t = -bq - sq;
        if (t < 1e-6)
            t = -bq + sq;
        if (t < 1e-6 || t >= hit.t)
            return false;
        hit.t = t;
        hit.prim = id;
        hit.point = org + dir * t;
        hit.normal = norm(hit.point - p.a);
        return true;
    }
    if (p.type == 1) {
        double denom = dot(p.b, dir);
        if (std::abs(denom) < 1e-12)
            return false;
        double t = dot(p.b, p.a - org) / denom;
        if (t < 1e-6 || t >= hit.t)
            return false;
        hit.t = t;
        hit.prim = id;
        hit.point = org + dir * t;
        hit.normal = denom < 0 ? p.b : p.b * -1.0;
        return true;
    }
    // Moeller-Trumbore triangle test.
    Vec e1 = p.b - p.a, e2 = p.c - p.a;
    Vec pv = cross(dir, e2);
    double det = dot(e1, pv);
    if (std::abs(det) < 1e-12)
        return false;
    double inv = 1.0 / det;
    Vec tv = org - p.a;
    double u = dot(tv, pv) * inv;
    if (u < 0 || u > 1)
        return false;
    Vec qv = cross(tv, e1);
    double v = dot(dir, qv) * inv;
    if (v < 0 || u + v > 1)
        return false;
    double t = dot(e2, qv) * inv;
    if (t < 1e-6 || t >= hit.t)
        return false;
    hit.t = t;
    hit.prim = id;
    hit.point = org + dir * t;
    Vec nrm = norm(cross(e1, e2));
    hit.normal = dot(nrm, dir) < 0 ? nrm : nrm * -1.0;
    return true;
}

bool
Raytrace::intersectCellList(rt::ProcCtx& c, long start, long end,
                            const Vec& org, const Vec& dir, Hit& hit)
{
    bool any = false;
    for (long k = start; k < end; ++k) {
        int id = topList_.ld(k);
        any |= intersectPrim(c, id, org, dir, hit);
    }
    return any;
}

bool
Raytrace::intersect(rt::ProcCtx& c, const Vec& org, const Vec& dir,
                    Hit& hit, double tmax)
{
    hit.t = tmax;
    hit.prim = -1;

    // Unbounded primitives first.
    for (int id : planeIds_)
        intersectPrim(c, id, org, dir, hit);

    // 3-D DDA through the top grid.
    double t0, t1;
    if (rayBox(org, dir, gridLo_, gridHi_, t0, t1) && t0 < hit.t) {
        const int n = cfg_.gridDim;
        const int s = cfg_.subDim;
        double t = t0 + 1e-9;
        Vec p = org + dir * t;
        int cell[3];
        double tMax[3], tDelta[3];
        int step[3];
        for (int d = 0; d < 3; ++d) {
            double csz = axis(cellSize_, d);
            cell[d] = std::clamp(
                int((axis(p, d) - axis(gridLo_, d)) / csz), 0, n - 1);
            double v = axis(dir, d);
            step[d] = v > 0 ? 1 : -1;
            if (std::abs(v) < 1e-12) {
                tMax[d] = 1e30;
                tDelta[d] = 1e30;
            } else {
                double edge = axis(gridLo_, d) +
                              (cell[d] + (v > 0 ? 1 : 0)) * csz;
                tMax[d] = (edge - axis(org, d)) / v;
                tDelta[d] = csz / std::abs(v);
            }
        }
        while (t < t1 && t < hit.t) {
            long ci = (long(cell[2]) * n + cell[1]) * n + cell[0];
            double texit =
                std::min({tMax[0], tMax[1], tMax[2], t1, 1e30});
            int sub = subOf_.ld(ci);
            c.work(4);
            if (sub < 0) {
                intersectCellList(c, topStart_.ld(ci),
                                  topStart_.ld(ci + 1), org, dir, hit);
            } else {
                // Nested subgrid: simple parametric march through the
                // s^3 subcells along the ray inside this cell.
                long base = long(sub) * (long(s) * s * s + 1);
                Vec clo = gridLo_ +
                          Vec{cell[0] * cellSize_.x,
                              cell[1] * cellSize_.y,
                              cell[2] * cellSize_.z};
                double tt = std::max(t, 0.0) + 1e-9;
                double sub_step =
                    std::min({cellSize_.x, cellSize_.y, cellSize_.z}) /
                    (2.0 * s);
                long prev = -1;
                while (tt < texit) {
                    Vec q = org + dir * tt;
                    int sc[3];
                    bool inside = true;
                    for (int d = 0; d < 3; ++d) {
                        double csz = axis(cellSize_, d) / s;
                        int v = int((axis(q, d) - axis(clo, d)) / csz);
                        if (v < 0 || v >= s) {
                            inside = false;
                            break;
                        }
                        sc[d] = v;
                    }
                    if (inside) {
                        long si = (long(sc[2]) * s + sc[1]) * s + sc[0];
                        if (si != prev) {
                            prev = si;
                            long st = subStart_.ld(base + si);
                            long en = subStart_.ld(base + si + 1);
                            for (long k = st; k < en; ++k)
                                intersectPrim(c, subList_.ld(k), org,
                                              dir, hit);
                        }
                    }
                    tt += sub_step;
                    c.work(4);
                }
            }
            if (hit.t <= texit)
                break;  // nearest hit lies within the visited cells
            // Step to the next top cell.
            int d = 0;
            if (tMax[1] < tMax[d])
                d = 1;
            if (tMax[2] < tMax[d])
                d = 2;
            t = tMax[d];
            tMax[d] += tDelta[d];
            cell[d] += step[d];
            if (cell[d] < 0 || cell[d] >= n)
                break;
        }
    }
    return hit.prim >= 0;
}

Vec
Raytrace::trace(rt::ProcCtx& c, const Vec& org, const Vec& dir,
                int depth, double weight, std::uint64_t& rays)
{
    ++rays;
    Hit hit;
    if (!intersect(c, org, dir, hit, 1e30)) {
        double f = 0.5 * (dir.y + 1.0);
        return {0.25 + 0.3 * f, 0.35 + 0.3 * f, 0.55 + 0.4 * f};
    }
    Prim p = prims_.ld(hit.prim);
    Vec base = p.mat.color;
    if (p.mat.checker) {
        int par = (int(std::floor(hit.point.x)) +
                   int(std::floor(hit.point.z))) &
                  1;
        base = par ? Vec{0.15, 0.15, 0.15} : Vec{0.9, 0.9, 0.9};
    }
    Vec color = base * 0.1;  // ambient

    for (const Vec& lp : lights_) {
        Vec ld = lp - hit.point;
        double dist = std::sqrt(dot(ld, ld));
        ld = ld * (1.0 / dist);
        double ndotl = dot(hit.normal, ld);
        c.flops(12);
        if (ndotl <= 0)
            continue;
        Hit shadow;
        ++rays;
        if (intersect(c, hit.point + ld * 1e-5, ld, shadow,
                      dist - 1e-4))
            continue;
        color = color + base * (p.mat.kd * ndotl * 0.7);
        Vec h = norm(ld - dir);
        double spec = std::pow(std::max(0.0, dot(hit.normal, h)),
                               p.mat.shine);
        color = color + Vec{1, 1, 1} * (p.mat.ks * spec * 0.6);
        c.flops(20);
    }

    // Reflection with early ray termination.
    double rw = weight * p.mat.kr;
    if (p.mat.kr > 0 && depth + 1 < cfg_.maxDepth &&
        rw > cfg_.minWeight) {
        Vec rdir = dir - hit.normal * (2.0 * dot(dir, hit.normal));
        Vec rc = trace(c, hit.point + rdir * 1e-5, rdir, depth + 1, rw,
                       rays);
        color = color + rc * p.mat.kr;
        c.flops(12);
    }
    return color;
}

Vec
Raytrace::primaryDir(double px, double py) const
{
    Vec fwd = norm(lookAt_ - eye_);
    Vec right = norm(cross(fwd, Vec{0, 1, 0}));
    Vec up = cross(right, fwd);
    double aspect = double(cfg_.width) / cfg_.height;
    double fov = 1.0;  // ~53 degrees
    double u = (px / cfg_.width - 0.5) * 2.0 * fov * aspect;
    double v = (0.5 - py / cfg_.height) * 2.0 * fov;
    return norm(fwd + right * u + up * v);
}

Vec
Raytrace::tracePixel(rt::ProcCtx& c, int px, int py)
{
    std::uint64_t rays = 0;
    return trace(c, eye_, primaryDir(px + 0.5, py + 0.5), 0, 1.0,
                 rays);
}

void
Raytrace::renderTile(rt::ProcCtx& c, int tileIdx)
{
    int tilesX = (cfg_.width + cfg_.tile - 1) / cfg_.tile;
    int tx = (tileIdx % tilesX) * cfg_.tile;
    int ty = (tileIdx / tilesX) * cfg_.tile;
    std::uint64_t rays = 0;
    for (int y = ty; y < std::min(ty + cfg_.tile, cfg_.height); ++y) {
        for (int x = tx; x < std::min(tx + cfg_.tile, cfg_.width);
             ++x) {
            Vec col;
            if (cfg_.antialias) {
                // 2x2 supersampling.
                for (double oy : {0.25, 0.75})
                    for (double ox : {0.25, 0.75})
                        col = col + trace(c, eye_,
                                          primaryDir(x + ox, y + oy),
                                          0, 1.0, rays) *
                                        0.25;
            } else {
                col = trace(c, eye_, primaryDir(x + 0.5, y + 0.5), 0,
                            1.0, rays);
            }
            std::size_t o = (std::size_t(y) * cfg_.width + x) * 3;
            fb_[o + 0] = std::min(1.0, col.x);
            fb_[o + 1] = std::min(1.0, col.y);
            fb_[o + 2] = std::min(1.0, col.z);
        }
    }
    rt::Lock::Guard g(*statLock_, c);
    raysCast_ += rays;
}

void
Raytrace::body(rt::ProcCtx& c)
{
    // Contiguous blocks of pixel tiles seed each processor's queue.
    int tilesX = (cfg_.width + cfg_.tile - 1) / cfg_.tile;
    int tilesY = (cfg_.height + cfg_.tile - 1) / cfg_.tile;
    int ntiles = tilesX * tilesY;
    for (int t = c.id(); t < ntiles; t += c.nprocs())
        tq_->push(c, c.id(), static_cast<std::uint64_t>(t));
    bar_->arrive(c);
    std::uint64_t task;
    while (tq_->get(c, c.id(), task)) {
        renderTile(c, static_cast<int>(task));
        tq_->done(c);
    }
}

Result
Raytrace::run()
{
    raysCast_ = 0;
    env_.run([this](rt::ProcCtx& c) { body(c); });
    Result r;
    r.raysCast = raysCast_;
    double sum = 0;
    const double* fb = fb_.raw();
    for (std::size_t i = 0; i < std::size_t(3) * cfg_.width * cfg_.height;
         ++i)
        sum += fb[i] * ((i % 17) + 1);
    r.checksum = sum;
    r.valid = std::isfinite(sum) && r.raysCast > 0;
    return r;
}

std::vector<double>
Raytrace::framebuffer() const
{
    const double* fb = fb_.raw();
    return std::vector<double>(
        fb, fb + std::size_t(3) * cfg_.width * cfg_.height);
}

void
Raytrace::writePpm(const std::string& path) const
{
    std::FILE* f = std::fopen(path.c_str(), "wb");
    if (!f)
        fatal("cannot open " + path);
    std::fprintf(f, "P6\n%d %d\n255\n", cfg_.width, cfg_.height);
    const double* fb = fb_.raw();
    for (std::size_t i = 0;
         i < std::size_t(3) * cfg_.width * cfg_.height; ++i) {
        unsigned char b =
            static_cast<unsigned char>(std::min(255.0, fb[i] * 255.0));
        std::fputc(b, f);
    }
    std::fclose(f);
}

} // namespace splash::apps::raytrace
