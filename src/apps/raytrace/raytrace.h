/**
 * @file
 * Raytrace: 3-D scene rendering by recursive (Whitted) ray tracing,
 * as in SPLASH-2:
 *
 *  - the scene is indexed by a hierarchical uniform grid (a top-level
 *    uniform grid whose dense cells carry nested subgrids),
 *  - rays reflect off specular surfaces producing a ray tree per
 *    pixel, with early termination of low-contribution branches,
 *  - the image plane is partitioned into contiguous blocks of pixel
 *    tiles managed by distributed task queues with stealing,
 *  - data access patterns are highly unpredictable.
 *
 * The paper renders the `car` input; we render a procedurally
 * generated reflective-spheres scene of comparable composition (see
 * DESIGN.md substitutions).
 */
#ifndef SPLASH2_APPS_RAYTRACE_RAYTRACE_H
#define SPLASH2_APPS_RAYTRACE_RAYTRACE_H

#include <cstdint>
#include <memory>
#include <vector>

#include "rt/env.h"
#include "rt/shared.h"
#include "rt/sync.h"
#include "rt/taskq.h"

namespace splash::apps::raytrace {

struct Vec
{
    double x = 0, y = 0, z = 0;
};

struct Material
{
    Vec color;
    double kd = 0.8;    ///< diffuse
    double ks = 0.2;    ///< specular highlight
    double kr = 0.0;    ///< reflectivity
    double shine = 32;
    int checker = 0;    ///< checkerboard modulation (planes)
};

/** One primitive (POD union by `type`). */
struct Prim
{
    int type = 0;  ///< 0: sphere, 1: plane, 2: triangle
    Vec a, b, c;   ///< sphere: a=center, b.x=radius; plane: a=point,
                   ///< b=normal; triangle: vertices a, b, c
    Material mat;
};

struct Config
{
    int width = 64;
    int height = 64;
    int tile = 8;         ///< task tile edge
    int maxDepth = 4;     ///< reflection recursion bound
    /** 2x2 supersampling per pixel (implemented but, as in the paper's
     *  study, off by default). */
    bool antialias = false;
    double minWeight = 0.01;  ///< early-ray-termination threshold
    int gridDim = 8;      ///< top-level grid resolution per axis
    int subDim = 4;       ///< nested subgrid resolution per axis
    int subThreshold = 8; ///< primitives per cell that trigger nesting
    int sphereGrid = 3;   ///< procedural scene: sphereGrid^2 spheres
    unsigned seed = 1234;
};

struct Result
{
    bool valid = true;
    double checksum = 0.0;
    std::uint64_t raysCast = 0;
};

class Raytrace
{
  public:
    Raytrace(rt::Env& env, const Config& cfg);

    Result run();

    /** Rendered framebuffer (RGB triples in [0,1]); uninstrumented. */
    std::vector<double> framebuffer() const;
    /** Write a PPM image (examples use this). */
    void writePpm(const std::string& path) const;

    int primCount() const { return static_cast<int>(nprims_); }

    /** Trace a single primary ray (test hook; call inside a team). */
    Vec tracePixel(rt::ProcCtx& c, int px, int py);

  private:
    struct Hit
    {
        double t = 1e30;
        int prim = -1;
        Vec point, normal;
    };

    void buildScene();
    void buildGrid();
    void body(rt::ProcCtx& c);
    void renderTile(rt::ProcCtx& c, int tileIdx);
    Vec trace(rt::ProcCtx& c, const Vec& org, const Vec& dir, int depth,
              double weight, std::uint64_t& rays);
    bool intersect(rt::ProcCtx& c, const Vec& org, const Vec& dir,
                   Hit& hit, double tmax);
    bool intersectCellList(rt::ProcCtx& c, long start, long end,
                           const Vec& org, const Vec& dir, Hit& hit);
    bool intersectPrim(rt::ProcCtx& c, int id, const Vec& org,
                       const Vec& dir, Hit& hit);
    Vec primaryDir(double px, double py) const;

    rt::Env& env_;
    Config cfg_;

    // Scene (host-built, stored shared, read instrumented).
    std::size_t nprims_ = 0;
    rt::SharedArray<Prim> prims_;
    std::vector<int> planeIds_;  ///< unbounded prims, tested directly

    // Hierarchical uniform grid.
    Vec gridLo_, gridHi_, cellSize_;
    rt::SharedArray<int> topStart_;   ///< N^3+1 offsets
    rt::SharedArray<int> topList_;    ///< prim ids
    rt::SharedArray<int> subOf_;      ///< N^3: subgrid id or -1
    rt::SharedArray<int> subStart_;   ///< nsub*(S^3+1) offsets
    rt::SharedArray<int> subList_;
    int nsub_ = 0;

    // Lights and camera (host constants).
    std::vector<Vec> lights_;
    Vec eye_, lookAt_;

    rt::SharedArray<double> fb_;  ///< framebuffer RGB
    std::unique_ptr<rt::TaskQueues> tq_;
    std::unique_ptr<rt::Barrier> bar_;
    std::unique_ptr<rt::Lock> statLock_;
    std::uint64_t raysCast_ = 0;
};

} // namespace splash::apps::raytrace

#endif // SPLASH2_APPS_RAYTRACE_RAYTRACE_H
