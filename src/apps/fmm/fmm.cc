#include "apps/fmm/fmm.h"

#include <algorithm>
#include <cmath>

#include "base/log.h"
#include "base/rng.h"

namespace splash::apps::fmm {

namespace {

/** Contiguous range [first, last) of `total` items owned by proc q. */
inline std::pair<long, long>
ownedRange(long total, int q, int p)
{
    return {total * q / p, total * (q + 1) / p};
}

} // namespace

Fmm::Fmm(rt::Env& env, const Config& cfg) : env_(env), cfg_(cfg)
{
    ensure(cfg_.terms >= 2 && cfg_.terms <= 30, "FMM: bad term count");
    depth_ = 2;
    while ((1L << (2 * depth_)) * cfg_.bodiesPerLeaf < cfg_.nbodies)
        ++depth_;

    levelOffset_.resize(depth_ + 2);
    levelOffset_[0] = 0;
    for (int l = 0; l <= depth_; ++l)
        levelOffset_[l + 1] = levelOffset_[l] + (1L << (2 * l));
    totalCells_ = levelOffset_[depth_ + 1];

    bodies_ = rt::SharedArray<Particle>(env, cfg_.nbodies);
    mpole_ = rt::SharedArray<double>(env,
                                     std::size_t(totalCells_) *
                                         cfg_.terms * 2);
    local_ = rt::SharedArray<double>(env,
                                     std::size_t(totalCells_) *
                                         cfg_.terms * 2);
    long nleaves = 1L << (2 * depth_);
    head_ = rt::SharedArray<int>(env, nleaves);
    next_ = rt::SharedArray<int>(env, cfg_.nbodies);
    for (long i = 0; i < nleaves; ++i)
        leafLock_.push_back(std::make_unique<rt::Lock>(env));
    bar_ = std::make_unique<rt::Barrier>(env);

    binom_.assign(64 * 64, 0.0);
    for (int n = 0; n < 64; ++n) {
        binom_[n * 64 + 0] = 1.0;
        for (int k = 1; k <= n; ++k)
            binom_[n * 64 + k] = binom_[(n - 1) * 64 + k - 1] +
                                 ((k <= n - 1)
                                      ? binom_[(n - 1) * 64 + k]
                                      : 0.0);
    }

    Rng rng(cfg_.seed);
    for (int i = 0; i < cfg_.nbodies; ++i) {
        Particle pp{};
        pp.x = rng.uniform(0.02, 0.98);
        pp.y = rng.uniform(0.02, 0.98);
        pp.q = rng.below(2) ? 1.0 : -1.0;
        bodies_.raw()[i] = pp;
    }
}

long
Fmm::cellIndex(int level, int ix, int iy) const
{
    return levelOffset_[level] + (long(iy) << level) + ix;
}

int
Fmm::leafOf(double x, double y) const
{
    int side = 1 << depth_;
    int ix = std::min(side - 1, std::max(0, int(x * side)));
    int iy = std::min(side - 1, std::max(0, int(y * side)));
    return (iy << depth_) + ix;
}

Cx
Fmm::ldMpole(rt::ProcCtx& c, long cell, int k)
{
    (void)c;
    std::size_t i = (std::size_t(cell) * cfg_.terms + k) * 2;
    rt::touchRead(&mpole_.raw()[i], 16);
    return {mpole_.raw()[i], mpole_.raw()[i + 1]};
}

void
Fmm::stMpole(rt::ProcCtx& c, long cell, int k, Cx v)
{
    (void)c;
    std::size_t i = (std::size_t(cell) * cfg_.terms + k) * 2;
    rt::touchWrite(&mpole_.raw()[i], 16);
    mpole_.raw()[i] = v.real();
    mpole_.raw()[i + 1] = v.imag();
}

Cx
Fmm::ldLocal(rt::ProcCtx& c, long cell, int k)
{
    (void)c;
    std::size_t i = (std::size_t(cell) * cfg_.terms + k) * 2;
    rt::touchRead(&local_.raw()[i], 16);
    return {local_.raw()[i], local_.raw()[i + 1]};
}

void
Fmm::stLocal(rt::ProcCtx& c, long cell, int k, Cx v)
{
    (void)c;
    std::size_t i = (std::size_t(cell) * cfg_.terms + k) * 2;
    rt::touchWrite(&local_.raw()[i], 16);
    local_.raw()[i] = v.real();
    local_.raw()[i + 1] = v.imag();
}

void
Fmm::bucketBodies(rt::ProcCtx& c)
{
    long nleaves = 1L << (2 * depth_);
    auto [f, l] = ownedRange(nleaves, c.id(), c.nprocs());
    for (long k = f; k < l; ++k)
        head_.st(k, -1);
    bar_->arrive(c);
    auto [bf, bl] = ownedRange(cfg_.nbodies, c.id(), c.nprocs());
    const Particle* raw = bodies_.raw();
    for (long b = bf; b < bl; ++b) {
        rt::touchRead(&raw[b].x, 16);
        int leaf = leafOf(raw[b].x, raw[b].y);
        rt::Lock::Guard g(*leafLock_[leaf], c);
        next_.st(b, head_.ld(leaf));
        head_.st(leaf, static_cast<int>(b));
        c.work(4);
    }
    bar_->arrive(c);
}

void
Fmm::upwardPass(rt::ProcCtx& c)
{
    const int p = cfg_.terms;
    // P2M at the leaf level.
    int side = 1 << depth_;
    double h = 1.0 / side;
    long nleaves = 1L << (2 * depth_);
    auto [f, l] = ownedRange(nleaves, c.id(), c.nprocs());
    const Particle* raw = bodies_.raw();
    for (long leaf = f; leaf < l; ++leaf) {
        int ix = static_cast<int>(leaf) & (side - 1);
        int iy = static_cast<int>(leaf) >> depth_;
        Cx zc((ix + 0.5) * h, (iy + 0.5) * h);
        std::vector<Cx> a(p, Cx{});
        for (int b = head_.ld(leaf); b >= 0; b = next_.ld(b)) {
            rt::touchRead(&raw[b].x, 16);
            rt::touchRead(&raw[b].q, 8);
            Cx z(raw[b].x, raw[b].y);
            Cx dz = z - zc;
            a[0] += raw[b].q;
            Cx pw = dz;
            for (int k = 1; k < p; ++k) {
                a[k] -= raw[b].q * pw / double(k);
                pw *= dz;
                c.flops(8);
            }
        }
        long cell = cellBase(depth_) + leaf;
        for (int k = 0; k < p; ++k)
            stMpole(c, cell, k, a[k]);
    }
    bar_->arrive(c);

    // M2M up the levels.
    for (int level = depth_ - 1; level >= 0; --level) {
        long ncells = 1L << (2 * level);
        int ls = 1 << level;
        double lh = 1.0 / ls;
        auto [cf, cl] = ownedRange(ncells, c.id(), c.nprocs());
        for (long idx = cf; idx < cl; ++idx) {
            int ix = static_cast<int>(idx) % ls;
            int iy = static_cast<int>(idx) / ls;
            Cx zp((ix + 0.5) * lh, (iy + 0.5) * lh);
            std::vector<Cx> b(p, Cx{});
            for (int cyo = 0; cyo < 2; ++cyo) {
                for (int cxo = 0; cxo < 2; ++cxo) {
                    int cx2 = 2 * ix + cxo, cy2 = 2 * iy + cyo;
                    long child = cellIndex(level + 1, cx2, cy2);
                    Cx zc((cx2 + 0.5) * lh * 0.5,
                          (cy2 + 0.5) * lh * 0.5);
                    Cx z0 = zc - zp;
                    std::vector<Cx> a(p);
                    for (int k = 0; k < p; ++k)
                        a[k] = ldMpole(c, child, k);
                    b[0] += a[0];
                    std::vector<Cx> z0pow(p + 1, Cx(1, 0));
                    for (int k = 1; k <= p; ++k)
                        z0pow[k] = z0pow[k - 1] * z0;
                    for (int lq = 1; lq < p; ++lq) {
                        Cx s = -a[0] * z0pow[lq] / double(lq);
                        for (int k = 1; k <= lq; ++k)
                            s += a[k] * z0pow[lq - k] *
                                 binom(lq - 1, k - 1);
                        b[lq] += s;
                        c.flops(10 * lq);
                    }
                }
            }
            long cell = cellBase(level) + idx;
            for (int k = 0; k < p; ++k)
                stMpole(c, cell, k, b[k]);
        }
        bar_->arrive(c);
    }
}

void
Fmm::downwardPass(rt::ProcCtx& c)
{
    const int p = cfg_.terms;
    // Levels 0 and 1 have no well-separated cells: zero locals.
    for (int level = 0; level <= std::min(1, depth_); ++level) {
        long ncells = 1L << (2 * level);
        auto [cf, cl] = ownedRange(ncells, c.id(), c.nprocs());
        for (long idx = cf; idx < cl; ++idx)
            for (int k = 0; k < p; ++k)
                stLocal(c, cellBase(level) + idx, k, Cx{});
    }
    bar_->arrive(c);

    for (int level = 2; level <= depth_; ++level) {
        long ncells = 1L << (2 * level);
        int ls = 1 << level;
        double lh = 1.0 / ls;
        auto [cf, cl] = ownedRange(ncells, c.id(), c.nprocs());
        for (long idx = cf; idx < cl; ++idx) {
            int ix = static_cast<int>(idx) % ls;
            int iy = static_cast<int>(idx) / ls;
            Cx zt((ix + 0.5) * lh, (iy + 0.5) * lh);
            std::vector<Cx> b(p, Cx{});

            // L2L from the parent.
            {
                int px = ix / 2, py = iy / 2;
                long parent = cellIndex(level - 1, px, py);
                Cx zp((px + 0.5) * lh * 2.0, (py + 0.5) * lh * 2.0);
                Cx t0 = zt - zp;
                std::vector<Cx> pb(p);
                for (int k = 0; k < p; ++k)
                    pb[k] = ldLocal(c, parent, k);
                std::vector<Cx> t0pow(p, Cx(1, 0));
                for (int k = 1; k < p; ++k)
                    t0pow[k] = t0pow[k - 1] * t0;
                for (int lq = 0; lq < p; ++lq) {
                    Cx s{};
                    for (int k = lq; k < p; ++k)
                        s += pb[k] * binom(k, lq) * t0pow[k - lq];
                    b[lq] += s;
                    c.flops(8 * (p - lq));
                }
            }

            // M2L over the interaction list: children of the parent's
            // neighbors that are not adjacent to this cell.
            int px = ix / 2, py = iy / 2, pls = ls / 2;
            for (int ny = py - 1; ny <= py + 1; ++ny) {
                for (int nx = px - 1; nx <= px + 1; ++nx) {
                    if (nx < 0 || ny < 0 || nx >= pls || ny >= pls)
                        continue;
                    for (int cy = 2 * ny; cy <= 2 * ny + 1; ++cy) {
                        for (int cx = 2 * nx; cx <= 2 * nx + 1; ++cx) {
                            if (std::abs(cx - ix) <= 1 &&
                                std::abs(cy - iy) <= 1)
                                continue;  // adjacent or self
                            long src = cellIndex(level, cx, cy);
                            Cx zs((cx + 0.5) * lh, (cy + 0.5) * lh);
                            Cx z0 = zs - zt;
                            std::vector<Cx> a(p);
                            for (int k = 0; k < p; ++k)
                                a[k] = ldMpole(c, src, k);
                            std::vector<Cx> iz0(p + p + 1);
                            iz0[0] = Cx(1, 0);
                            Cx inv = Cx(1, 0) / z0;
                            for (std::size_t k = 1; k < iz0.size(); ++k)
                                iz0[k] = iz0[k - 1] * inv;
                            // b0
                            Cx s0 = a[0] * std::log(-z0);
                            double sgn = -1.0;
                            for (int k = 1; k < p; ++k) {
                                s0 += a[k] * iz0[k] * sgn;
                                sgn = -sgn;
                            }
                            b[0] += s0;
                            // b_l, l >= 1
                            for (int lq = 1; lq < p; ++lq) {
                                Cx s = -a[0] * iz0[lq] / double(lq);
                                double sg = -1.0;
                                for (int k = 1; k < p; ++k) {
                                    s += a[k] * iz0[lq + k] * sg *
                                         binom(lq + k - 1, k - 1);
                                    sg = -sg;
                                }
                                b[lq] += s;
                            }
                            c.flops(10 * p * p / 2);
                        }
                    }
                }
            }
            long cell = cellBase(level) + idx;
            for (int k = 0; k < p; ++k)
                stLocal(c, cell, k, b[k]);
        }
        bar_->arrive(c);
    }
}

void
Fmm::evaluateLeaves(rt::ProcCtx& c)
{
    const int p = cfg_.terms;
    int side = 1 << depth_;
    double h = 1.0 / side;
    long nleaves = 1L << (2 * depth_);
    auto [f, l] = ownedRange(nleaves, c.id(), c.nprocs());
    Particle* raw = bodies_.raw();
    for (long leaf = f; leaf < l; ++leaf) {
        int ix = static_cast<int>(leaf) & (side - 1);
        int iy = static_cast<int>(leaf) >> depth_;
        Cx zc((ix + 0.5) * h, (iy + 0.5) * h);
        long cell = cellBase(depth_) + leaf;
        std::vector<Cx> b(p);
        for (int k = 0; k < p; ++k)
            b[k] = ldLocal(c, cell, k);

        for (int i = head_.ld(leaf); i >= 0; i = next_.ld(i)) {
            rt::touchRead(&raw[i].x, 16);
            Cx z(raw[i].x, raw[i].y);
            Cx t = z - zc;
            // Far field: evaluate the local expansion and derivative.
            Cx w{}, dw{};
            for (int k = p - 1; k >= 1; --k) {
                w = w * t + b[k];
                dw = dw * t + double(k) * b[k];
                c.flops(12);
            }
            w = w * t + b[0];
            double pot = w.real();
            Cx g = std::conj(dw);

            // Near field: direct over the 9 adjacent leaves.
            for (int ny = iy - 1; ny <= iy + 1; ++ny) {
                for (int nx = ix - 1; nx <= ix + 1; ++nx) {
                    if (nx < 0 || ny < 0 || nx >= side || ny >= side)
                        continue;
                    int nl = (ny << depth_) + nx;
                    for (int j = head_.ld(nl); j >= 0;
                         j = next_.ld(j)) {
                        if (j == i)
                            continue;
                        rt::touchRead(&raw[j].x, 16);
                        rt::touchRead(&raw[j].q, 8);
                        Cx dz = z - Cx(raw[j].x, raw[j].y);
                        double r2 = std::norm(dz);
                        pot += raw[j].q * 0.5 * std::log(r2);
                        g += raw[j].q * dz / r2;
                        c.flops(14);
                    }
                }
            }
            rt::touchWrite(&raw[i].pot, 8);
            rt::touchWrite(&raw[i].gx, 16);
            raw[i].pot = pot;
            raw[i].gx = g.real();
            raw[i].gy = g.imag();
        }
    }
    bar_->arrive(c);
}

void
Fmm::advance(rt::ProcCtx& c)
{
    auto [bf, bl] = ownedRange(cfg_.nbodies, c.id(), c.nprocs());
    Particle* raw = bodies_.raw();
    for (long b = bf; b < bl; ++b) {
        rt::touchRead(&raw[b].gx, 16);
        rt::touchRead(&raw[b].q, 8);
        rt::touchRead(&raw[b].x, 16);
        rt::touchWrite(&raw[b].x, 16);
        // Gradient descent of like charges (repulsion dynamics).
        raw[b].x = std::clamp(raw[b].x - cfg_.dt * raw[b].q * raw[b].gx,
                              0.001, 0.999);
        raw[b].y = std::clamp(raw[b].y - cfg_.dt * raw[b].q * raw[b].gy,
                              0.001, 0.999);
        c.flops(8);
    }
    bar_->arrive(c);
}

void
Fmm::body(rt::ProcCtx& c)
{
    for (int s = 0; s < cfg_.steps; ++s) {
        bucketBodies(c);
        upwardPass(c);
        downwardPass(c);
        evaluateLeaves(c);
        if (s + 1 < cfg_.steps)
            advance(c);
    }
}

Result
Fmm::run()
{
    env_.run([this](rt::ProcCtx& c) { body(c); });
    Result r;
    double sum = 0;
    for (int i = 0; i < cfg_.nbodies; ++i)
        sum += bodies_.raw()[i].pot * 1e-3 + bodies_.raw()[i].gx * 1e-4;
    r.checksum = sum;
    r.valid = std::isfinite(sum);
    return r;
}

std::vector<Particle>
Fmm::particles() const
{
    return std::vector<Particle>(bodies_.raw(),
                                 bodies_.raw() + cfg_.nbodies);
}

std::vector<Particle>
Fmm::directReference() const
{
    std::vector<Particle> out(bodies_.raw(),
                              bodies_.raw() + cfg_.nbodies);
    for (int i = 0; i < cfg_.nbodies; ++i) {
        Cx z(out[i].x, out[i].y);
        double pot = 0;
        Cx g{};
        for (int j = 0; j < cfg_.nbodies; ++j) {
            if (j == i)
                continue;
            Cx dz = z - Cx(out[j].x, out[j].y);
            double r2 = std::norm(dz);
            pot += out[j].q * 0.5 * std::log(r2);
            g += out[j].q * dz / r2;
        }
        out[i].pot = pot;
        out[i].gx = g.real();
        out[i].gy = g.imag();
    }
    return out;
}

} // namespace splash::apps::fmm
