/**
 * @file
 * FMM: 2-D N-body simulation with the Fast Multipole Method
 * (Greengard-Rokhlin), as in SPLASH-2.
 *
 * Unlike Barnes, the tree is not traversed once per body: a single
 * upward pass forms multipole expansions (P2M, M2M) and a single
 * downward pass converts well-separated interactions to local (Taylor)
 * expansions (M2L along interaction lists, L2L to children), with
 * direct evaluation only between adjacent leaves.  Accuracy is
 * controlled by the number of expansion terms, not by an opening
 * criterion.
 *
 * SPLASH-2's FMM is adaptive; with the (uniform) particle
 * distributions used here a uniform tree of the same depth gives the
 * same interaction structure, so this implementation uses a uniform
 * quadtree (see DESIGN.md substitutions).
 *
 * Paper default: 64 K particles; sim-scaled default: 2 K particles.
 */
#ifndef SPLASH2_APPS_FMM_FMM_H
#define SPLASH2_APPS_FMM_FMM_H

#include <complex>
#include <memory>
#include <vector>

#include "rt/env.h"
#include "rt/shared.h"
#include "rt/sync.h"

namespace splash::apps::fmm {

using Cx = std::complex<double>;

struct Config
{
    int nbodies = 2048;
    int terms = 12;      ///< expansion terms (accuracy control)
    int bodiesPerLeaf = 16;
    int steps = 1;
    double dt = 0.001;
    unsigned seed = 1234;
};

struct Particle
{
    double x, y;
    double q;        ///< charge
    double pot;      ///< Re(sum q_j log(z - z_j))
    double gx, gy;   ///< gradient of the potential
};

struct Result
{
    bool valid = true;
    double checksum = 0.0;
};

class Fmm
{
  public:
    Fmm(rt::Env& env, const Config& cfg);

    Result run();

    /** Uninstrumented state access for verification. */
    std::vector<Particle> particles() const;
    /** Direct O(n^2) reference potentials and gradients. */
    std::vector<Particle> directReference() const;

    int depth() const { return depth_; }

  private:
    void body(rt::ProcCtx& c);
    void bucketBodies(rt::ProcCtx& c);
    void upwardPass(rt::ProcCtx& c);
    void downwardPass(rt::ProcCtx& c);
    void evaluateLeaves(rt::ProcCtx& c);
    void advance(rt::ProcCtx& c);

    long cellBase(int level) const { return levelOffset_[level]; }
    long cellIndex(int level, int ix, int iy) const;
    /** Leaf cell of a position. */
    int leafOf(double x, double y) const;

    // Coefficient accessors (instrumented).
    Cx ldMpole(rt::ProcCtx& c, long cell, int k);
    void stMpole(rt::ProcCtx& c, long cell, int k, Cx v);
    Cx ldLocal(rt::ProcCtx& c, long cell, int k);
    void stLocal(rt::ProcCtx& c, long cell, int k, Cx v);

    rt::Env& env_;
    Config cfg_;
    int depth_;            ///< leaf level (root = 0)
    long totalCells_;
    std::vector<long> levelOffset_;
    rt::SharedArray<Particle> bodies_;
    /** Expansion coefficients: totalCells * terms complex pairs. */
    rt::SharedArray<double> mpole_;  // interleaved re, im
    rt::SharedArray<double> local_;
    rt::SharedArray<int> head_, next_;  ///< leaf body lists
    std::vector<std::unique_ptr<rt::Lock>> leafLock_;
    std::unique_ptr<rt::Barrier> bar_;
    std::vector<double> binom_;  ///< C(n, k) table
    double binom(int n, int k) const { return binom_[n * 64 + k]; }
};

} // namespace splash::apps::fmm

#endif // SPLASH2_APPS_FMM_FMM_H
