/**
 * @file
 * Radiosity: equilibrium distribution of light by the iterative
 * hierarchical diffuse radiosity method [HSA91], as in SPLASH-2:
 *
 *  - the scene starts as a number of large input polygons; light
 *    transport interactions are computed among them, and polygons are
 *    hierarchically subdivided into patch quadtrees as necessary for
 *    accuracy,
 *  - every step iterates over the current interaction lists, refines
 *    (subdivides) patches whose estimated form factors are too large,
 *    gathers radiosity across the remaining interactions, and combines
 *    patch radiosities in an upward/downward (push-pull) pass through
 *    the quadtrees,
 *  - a BSP tree over the input polygons accelerates the visibility
 *    (occlusion) tests between patch pairs,
 *  - parallelism is managed by distributed task queues with task
 *    stealing; computation and access patterns are highly irregular,
 *  - no attempt is made at intelligent data distribution.
 *
 * The paper's `room` model is replaced by a procedurally generated
 * room (six walls, an area light, boxes) -- see DESIGN.md.
 */
#ifndef SPLASH2_APPS_RADIOSITY_RADIOSITY_H
#define SPLASH2_APPS_RADIOSITY_RADIOSITY_H

#include <memory>
#include <vector>

#include "rt/env.h"
#include "rt/shared.h"
#include "rt/sync.h"
#include "rt/taskq.h"

namespace splash::apps::radiosity {

struct V3
{
    double x = 0, y = 0, z = 0;
};

/** A quadrilateral patch in a quadtree of patches. */
struct Patch
{
    V3 v[4];          ///< corners (CCW as seen from the front)
    V3 center, normal;
    double area = 0;
    double emission = 0;
    double rho = 0;     ///< diffuse reflectance
    double rad = 0;     ///< current radiosity B
    double gather = 0;  ///< rho * sum(F * V * B_src) this iteration
    int child[4] = {-1, -1, -1, -1};
    int parent = -1;
    int root = -1;      ///< input polygon this patch descends from
    int interHead = -1; ///< head of the interaction list
    bool isLeaf = true;
};

/** One interaction-list node. */
struct Interaction
{
    int src = -1;       ///< source patch
    double ff = 0;      ///< form-factor estimate
    double vis = 1;     ///< fractional visibility
    int next = -1;
};

struct Config
{
    /** Scene: white-furnace box when true (all faces emissive,
     *  reflectance rho; analytic equilibrium B = E / (1 - rho)). */
    bool furnace = false;
    double rho = 0.5;
    int iterations = 6;
    double ffEps = 0.02;    ///< refine interactions above this estimate
    double areaEps = 0.08;  ///< minimum subdividable patch area
    int visRays = 4;        ///< visibility sample segments per pair
    int maxPatches = 20000;
    int maxInteractions = 200000;
    unsigned seed = 1234;
};

struct Result
{
    bool valid = true;
    double checksum = 0.0;
    double totalFlux = 0.0;   ///< sum over leaves of B * A
    int patches = 0;
    int interactions = 0;     ///< live interactions after refinement
};

class Radiosity
{
  public:
    Radiosity(rt::Env& env, const Config& cfg);

    Result run();

    /** Area-weighted average radiosity over the leaves of one input
     *  polygon (uninstrumented; for verification). */
    double avgRadiosity(int rootPolygon) const;
    int rootCount() const { return static_cast<int>(roots_.size()); }

    /** Analytic-ish form-factor probe used by tests: estimated F
     *  between two patches (unoccluded). */
    static double formFactor(const Patch& to, const Patch& from);

  private:
    struct BspNode
    {
        int poly = -1;        ///< splitting polygon (index into roots_)
        int front = -1, back = -1;
        std::vector<int> coplanar;
    };

    void buildScene();
    void buildBsp();
    int buildBspRec(std::vector<int> polys);
    bool segmentOccluded(rt::ProcCtx& c, const V3& a, const V3& b,
                         int skipRootA, int skipRootB) const;
    double visibility(rt::ProcCtx& c, int pa, int pb);

    int newPatch(rt::ProcCtx* c, const Patch& p);
    int newInteraction(rt::ProcCtx& c, const Interaction& in);
    void subdivide(rt::ProcCtx& c, int p);
    void processPatch(rt::ProcCtx& c, int p);
    double pushPull(rt::ProcCtx& c, int p, double down);
    void body(rt::ProcCtx& c);

    rt::Env& env_;
    Config cfg_;
    std::vector<int> roots_;  ///< root patch ids (input polygons)
    rt::SharedArray<Patch> patches_;
    rt::SharedArray<Interaction> inter_;
    rt::SharedVar<int> patchCount_;
    rt::SharedVar<int> interCount_;
    rt::SharedVar<double> fluxAcc_;
    std::vector<std::unique_ptr<rt::Lock>> patchLock_;
    std::unique_ptr<rt::Lock> poolLock_, fluxLock_;
    std::unique_ptr<rt::Barrier> bar_;
    std::unique_ptr<rt::TaskQueues> tq_;
    std::vector<BspNode> bsp_;
    int bspRoot_ = -1;
    double lastFlux_ = 0.0;
};

} // namespace splash::apps::radiosity

#endif // SPLASH2_APPS_RADIOSITY_RADIOSITY_H
