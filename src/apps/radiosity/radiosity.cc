#include "apps/radiosity/radiosity.h"

#include <algorithm>
#include <cmath>

#include "base/log.h"
#include "base/rng.h"

namespace splash::apps::radiosity {

namespace {

constexpr double kPi = 3.14159265358979323846;

inline V3
operator+(const V3& a, const V3& b)
{
    return {a.x + b.x, a.y + b.y, a.z + b.z};
}

inline V3
operator-(const V3& a, const V3& b)
{
    return {a.x - b.x, a.y - b.y, a.z - b.z};
}

inline V3
operator*(const V3& a, double s)
{
    return {a.x * s, a.y * s, a.z * s};
}

inline double
dot(const V3& a, const V3& b)
{
    return a.x * b.x + a.y * b.y + a.z * b.z;
}

inline V3
cross(const V3& a, const V3& b)
{
    return {a.y * b.z - a.z * b.y, a.z * b.x - a.x * b.z,
            a.x * b.y - a.y * b.x};
}

inline V3
normalize(const V3& a)
{
    return a * (1.0 / std::sqrt(dot(a, a)));
}

/** Fill center/normal/area of a (planar convex) quad patch. */
void
finishPatch(Patch& p)
{
    p.center = (p.v[0] + p.v[1] + p.v[2] + p.v[3]) * 0.25;
    V3 n = cross(p.v[3] - p.v[0], p.v[1] - p.v[0]);
    double a1 = 0.5 * std::sqrt(dot(n, n));
    V3 n2 = cross(p.v[1] - p.v[2], p.v[3] - p.v[2]);
    double a2 = 0.5 * std::sqrt(dot(n2, n2));
    p.normal = normalize(n);
    p.area = a1 + a2;
}

/** Segment/triangle intersection strictly inside (t in (eps, 1-eps)). */
bool
segTriangle(const V3& a, const V3& b, const V3& t0, const V3& t1,
            const V3& t2)
{
    V3 dir = b - a;
    V3 e1 = t1 - t0, e2 = t2 - t0;
    V3 pv = cross(dir, e2);
    double det = dot(e1, pv);
    if (std::abs(det) < 1e-12)
        return false;
    double inv = 1.0 / det;
    V3 tv = a - t0;
    double u = dot(tv, pv) * inv;
    if (u < 0 || u > 1)
        return false;
    V3 qv = cross(tv, e1);
    double v = dot(dir, qv) * inv;
    if (v < 0 || u + v > 1)
        return false;
    double t = dot(e2, qv) * inv;
    return t > 1e-4 && t < 1.0 - 1e-4;
}

} // namespace

Radiosity::Radiosity(rt::Env& env, const Config& cfg)
    : env_(env), cfg_(cfg),
      patches_(env, cfg.maxPatches),
      inter_(env, cfg.maxInteractions),
      patchCount_(env, 0), interCount_(env, 0), fluxAcc_(env, 0.0)
{
    for (int i = 0; i < cfg_.maxPatches; ++i)
        patchLock_.push_back(std::make_unique<rt::Lock>(env));
    poolLock_ = std::make_unique<rt::Lock>(env);
    fluxLock_ = std::make_unique<rt::Lock>(env);
    bar_ = std::make_unique<rt::Barrier>(env);
    tq_ = std::make_unique<rt::TaskQueues>(env, env.nprocs(),
                                           1u << 16);
    buildScene();
    buildBsp();
}

int
Radiosity::newPatch(rt::ProcCtx* c, const Patch& p)
{
    int idx;
    if (c) {
        rt::Lock::Guard g(*poolLock_, *c);
        idx = patchCount_.get();
        if (idx >= cfg_.maxPatches)
            fatal("Radiosity: patch pool exhausted");
        patchCount_.set(idx + 1);
    } else {
        idx = *patchCount_.raw();
        if (idx >= cfg_.maxPatches)
            fatal("Radiosity: patch pool exhausted");
        *patchCount_.raw() = idx + 1;
    }
    if (c)
        patches_.st(idx, p);
    else
        patches_.raw()[idx] = p;
    return idx;
}

int
Radiosity::newInteraction(rt::ProcCtx& c, const Interaction& in)
{
    int idx;
    {
        rt::Lock::Guard g(*poolLock_, c);
        idx = interCount_.get();
        if (idx >= cfg_.maxInteractions)
            fatal("Radiosity: interaction pool exhausted");
        interCount_.set(idx + 1);
    }
    inter_.st(idx, in);
    return idx;
}

void
Radiosity::buildScene()
{
    auto quad = [&](V3 a, V3 b, V3 c, V3 d, double rho, double e) {
        Patch p{};
        p.v[0] = a;
        p.v[1] = b;
        p.v[2] = c;
        p.v[3] = d;
        p.rho = rho;
        p.emission = e;
        finishPatch(p);
        int id = newPatch(nullptr, p);
        patches_.raw()[id].root = id;
        roots_.push_back(id);
    };

    const double W = 4, H = 3, D = 4;
    if (cfg_.furnace) {
        double e = 1.0, r = cfg_.rho;
        // All faces of a closed box, normals inward.
        quad({0, 0, 0}, {W, 0, 0}, {W, 0, D}, {0, 0, D}, r, e); // floor
        quad({0, H, 0}, {0, H, D}, {W, H, D}, {W, H, 0}, r, e); // ceil
        quad({0, 0, 0}, {0, 0, D}, {0, H, D}, {0, H, 0}, r, e); // left
        quad({W, 0, 0}, {W, H, 0}, {W, H, D}, {W, 0, D}, r, e); // right
        quad({0, 0, 0}, {0, H, 0}, {W, H, 0}, {W, 0, 0}, r, e); // front
        quad({0, 0, D}, {W, 0, D}, {W, H, D}, {0, H, D}, r, e); // back
        return;
    }

    // Room: six walls, a bright light panel on the ceiling, one box.
    quad({0, 0, 0}, {W, 0, 0}, {W, 0, D}, {0, 0, D}, 0.7, 0);  // floor
    // Ceiling split into light panel and surround (two L pieces kept
    // as one big quad + panel overlay for simplicity: use 3 strips).
    quad({0, H, 0}, {0, H, D}, {1.2, H, D}, {1.2, H, 0}, 0.75, 0);
    quad({2.8, H, 0}, {2.8, H, D}, {W, H, D}, {W, H, 0}, 0.75, 0);
    quad({1.2, H, 0}, {1.2, H, D}, {2.8, H, D}, {2.8, H, 0}, 0.8,
         8.0);  // light strip
    quad({0, 0, 0}, {0, 0, D}, {0, H, D}, {0, H, 0}, 0.65, 0);  // left
    quad({W, 0, 0}, {W, H, 0}, {W, H, D}, {W, 0, D}, 0.65, 0);  // right
    quad({0, 0, 0}, {0, H, 0}, {W, H, 0}, {W, 0, 0}, 0.6, 0);   // front
    quad({0, 0, D}, {W, 0, D}, {W, H, D}, {0, H, D}, 0.6, 0);   // back

    // A box on the floor (five faces, wound so normals point outward
    // under the cross(v3-v0, v1-v0) convention).
    double x0 = 2.4, x1 = 3.4, z0 = 1.0, z1 = 2.0, h = 1.0;
    quad({x0, h, z0}, {x1, h, z0}, {x1, h, z1}, {x0, h, z1}, 0.5, 0);
    quad({x0, 0, z0}, {x1, 0, z0}, {x1, h, z0}, {x0, h, z0}, 0.5, 0);
    quad({x0, 0, z1}, {x0, h, z1}, {x1, h, z1}, {x1, 0, z1}, 0.5, 0);
    quad({x0, 0, z0}, {x0, h, z0}, {x0, h, z1}, {x0, 0, z1}, 0.5, 0);
    quad({x1, 0, z0}, {x1, 0, z1}, {x1, h, z1}, {x1, h, z0}, 0.5, 0);
}

void
Radiosity::buildBsp()
{
    std::vector<int> all(roots_.size());
    for (std::size_t i = 0; i < all.size(); ++i)
        all[i] = static_cast<int>(i);
    bspRoot_ = buildBspRec(std::move(all));
}

int
Radiosity::buildBspRec(std::vector<int> polys)
{
    if (polys.empty())
        return -1;
    BspNode node;
    int splitter = polys[0];
    node.poly = splitter;
    node.coplanar.push_back(splitter);
    const Patch& sp = patches_.raw()[roots_[splitter]];
    std::vector<int> front, back;
    for (std::size_t k = 1; k < polys.size(); ++k) {
        const Patch& p = patches_.raw()[roots_[polys[k]]];
        int pos = 0, neg = 0;
        for (int i = 0; i < 4; ++i) {
            double d = dot(sp.normal, p.v[i] - sp.center);
            if (d > 1e-9)
                ++pos;
            else if (d < -1e-9)
                ++neg;
        }
        if (pos && neg) {  // straddler: reference in both subtrees
            front.push_back(polys[k]);
            back.push_back(polys[k]);
        } else if (pos) {
            front.push_back(polys[k]);
        } else if (neg) {
            back.push_back(polys[k]);
        } else {
            node.coplanar.push_back(polys[k]);
        }
    }
    int idx = static_cast<int>(bsp_.size());
    bsp_.push_back(node);
    int f = buildBspRec(std::move(front));
    int b = buildBspRec(std::move(back));
    bsp_[idx].front = f;
    bsp_[idx].back = b;
    return idx;
}

bool
Radiosity::segmentOccluded(rt::ProcCtx& c, const V3& a, const V3& b,
                           int skipRootA, int skipRootB) const
{
    // Traverse the BSP, visiting only subtrees the segment touches.
    int stack[64];
    int sp = 0;
    if (bspRoot_ >= 0)
        stack[sp++] = bspRoot_;
    while (sp > 0) {
        const BspNode& node = bsp_[stack[--sp]];
        for (int poly : node.coplanar) {
            int root = roots_[poly];
            if (root == skipRootA || root == skipRootB)
                continue;
            // Intentional unsynchronized read: another processor may
            // be subdividing this patch; only its (immutable) geometry
            // matters here.  See SharedArray::ldRacy.
            Patch p = patches_.ldRacy(root);
            c.flops(30);
            if (segTriangle(a, b, p.v[0], p.v[1], p.v[2]) ||
                segTriangle(a, b, p.v[0], p.v[2], p.v[3]))
                return true;
        }
        const Patch& sp2 = patches_.raw()[roots_[node.poly]];
        double da = dot(sp2.normal, a - sp2.center);
        double db = dot(sp2.normal, b - sp2.center);
        c.flops(12);
        if ((da >= 0 || db >= 0) && node.front >= 0)
            stack[sp++] = node.front;
        if ((da <= 0 || db <= 0) && node.back >= 0)
            stack[sp++] = node.back;
        ensure(sp < 62, "Radiosity: BSP stack overflow");
    }
    return false;
}

double
Radiosity::visibility(rt::ProcCtx& c, int pa, int pb)
{
    // Unsynchronized by design (see ldRacy): visibility only needs
    // the endpoint geometry, which subdivision never rewrites.
    Patch a = patches_.ldRacy(pa);
    Patch b = patches_.ldRacy(pb);
    int unblocked = 0;
    int rays = std::max(1, cfg_.visRays);
    for (int k = 0; k < rays; ++k) {
        // Deterministic sample points: center and corner midpoints.
        V3 sa = k == 0 ? a.center : (a.center + a.v[k % 4]) * 0.5;
        V3 sb = k == 0 ? b.center : (b.center + b.v[(k + 2) % 4]) * 0.5;
        if (!segmentOccluded(c, sa, sb, a.root, b.root))
            ++unblocked;
    }
    return double(unblocked) / rays;
}

double
Radiosity::formFactor(const Patch& to, const Patch& from)
{
    V3 d = from.center - to.center;
    double r2 = dot(d, d);
    if (r2 < 1e-12)
        return 0;
    double rl = std::sqrt(r2);
    double cp = dot(to.normal, d) / rl;
    double cq = -dot(from.normal, d) / rl;
    if (cp <= 0 || cq <= 0)
        return 0;
    return cp * cq * from.area / (kPi * r2 + from.area);
}

void
Radiosity::subdivide(rt::ProcCtx& c, int p)
{
    rt::Lock::Guard g(*patchLock_[p], c);
    Patch pp = patches_.ld(p);
    if (!pp.isLeaf)
        return;  // somebody else already split it
    V3 m01 = (pp.v[0] + pp.v[1]) * 0.5;
    V3 m12 = (pp.v[1] + pp.v[2]) * 0.5;
    V3 m23 = (pp.v[2] + pp.v[3]) * 0.5;
    V3 m30 = (pp.v[3] + pp.v[0]) * 0.5;
    V3 mc = pp.center;
    V3 quads[4][4] = {
        {pp.v[0], m01, mc, m30},
        {m01, pp.v[1], m12, mc},
        {mc, m12, pp.v[2], m23},
        {m30, mc, m23, pp.v[3]},
    };
    for (int k = 0; k < 4; ++k) {
        Patch ch{};
        for (int i = 0; i < 4; ++i)
            ch.v[i] = quads[k][i];
        ch.rho = pp.rho;
        ch.emission = pp.emission;
        ch.parent = p;
        ch.root = pp.root;
        finishPatch(ch);
        pp.child[k] = newPatch(&c, ch);
    }
    pp.isLeaf = false;
    patches_.st(p, pp);
    c.flops(60);
}

void
Radiosity::processPatch(rt::ProcCtx& c, int p)
{
    // Detach the interaction list under the patch lock: other
    // processors may concurrently append to it (when they refine a
    // receiver whose child interacts with p).
    int node;
    Patch pp;
    {
        rt::Lock::Guard g(*patchLock_[p], c);
        pp = patches_.ld(p);
        node = pp.interHead;
        pp.interHead = -1;
        patches_.st(p, pp);
    }
    double gather = 0.0;
    // Rebuild the list, refining or gathering each interaction. Old
    // nodes are recycled for the kept interactions.
    std::vector<Interaction> keep;
    std::vector<int> freeNodes;
    while (node >= 0) {
        Interaction in = inter_.ld(node);
        freeNodes.push_back(node);
        node = in.next;
        // The source patch may be under concurrent refinement; stale
        // area/radiosity values only defer refinement one iteration.
        Patch q = patches_.ldRacy(in.src);
        bool can_refine = in.ff > cfg_.ffEps &&
                          std::max(pp.area, q.area) > cfg_.areaEps;
        if (!can_refine) {
            gather += pp.rho * in.ff * in.vis * q.rad;
            c.flops(4);
            keep.push_back(in);
            continue;
        }
        if (q.area >= pp.area) {
            // Refine the source: interact with its four children.
            subdivide(c, in.src);
            Patch qq = patches_.ldRacy(in.src);
            for (int k = 0; k < 4; ++k) {
                int chId = qq.child[k];
                Patch ch = patches_.ldRacy(chId);
                Interaction ni;
                ni.src = chId;
                ni.ff = formFactor(pp, ch);
                c.flops(20);
                if (ni.ff <= 0)
                    continue;
                ni.vis = visibility(c, p, chId);
                if (ni.vis > 0)
                    keep.push_back(ni);
            }
        } else {
            // Refine the receiver: push the interaction to children.
            subdivide(c, p);
            Patch me = patches_.ldRacy(p);
            pp.area = me.area;  // refresh refinement inputs
            for (int k = 0; k < 4; ++k) {
                int chId = me.child[k];
                rt::Lock::Guard g(*patchLock_[chId], c);
                Patch ch = patches_.ld(chId);
                Interaction ni;
                ni.src = in.src;
                ni.ff = formFactor(ch, q);
                c.flops(20);
                if (ni.ff <= 0)
                    continue;
                ni.vis = visibility(c, chId, in.src);
                if (ni.vis <= 0)
                    continue;
                ni.next = ch.interHead;
                ch.interHead = newInteraction(c, ni);
                patches_.st(chId, ch);
            }
        }
    }
    // Merge the kept interactions back, preserving any nodes other
    // processors appended meanwhile.
    rt::Lock::Guard g(*patchLock_[p], c);
    Patch cur = patches_.ld(p);
    for (const Interaction& in : keep) {
        Interaction ni = in;
        ni.next = cur.interHead;
        int id;
        if (!freeNodes.empty()) {
            id = freeNodes.back();
            freeNodes.pop_back();
        } else {
            id = newInteraction(c, ni);
        }
        inter_.st(id, ni);
        cur.interHead = id;
    }
    cur.gather = gather;
    patches_.st(p, cur);
}

double
Radiosity::pushPull(rt::ProcCtx& c, int p, double down)
{
    Patch pp = patches_.ld(p);
    double d2 = down + pp.gather;
    double up;
    if (pp.isLeaf) {
        up = pp.emission + d2;
    } else {
        up = 0;
        for (int k = 0; k < 4; ++k) {
            Patch ch = patches_.ld(pp.child[k]);
            up += pushPull(c, pp.child[k], d2) * (ch.area / pp.area);
            c.flops(2);
        }
    }
    pp.rad = up;
    patches_.st(p, pp);
    return up;
}

void
Radiosity::body(rt::ProcCtx& c)
{
    const int p = c.nprocs();
    const int me = c.id();
    const int nroots = static_cast<int>(roots_.size());

    // Initial interactions among input polygons.
    for (int a = me; a < nroots; a += p) {
        Patch pa = patches_.ld(roots_[a]);
        int head = -1;
        for (int b = 0; b < nroots; ++b) {
            if (a == b)
                continue;
            // Another processor may be storing its own root's
            // interHead concurrently (geometry fields are setup-time
            // constants); tolerated as in the original.
            Patch pb = patches_.ldRacy(roots_[b]);
            Interaction in;
            in.src = roots_[b];
            in.ff = formFactor(pa, pb);
            c.flops(20);
            if (in.ff <= 0)
                continue;
            in.vis = visibility(c, roots_[a], roots_[b]);
            if (in.vis <= 0)
                continue;
            in.next = head;
            head = newInteraction(c, in);
        }
        pa.interHead = head;
        patches_.st(roots_[a], pa);
    }
    bar_->arrive(c);

    for (int it = 0; it < cfg_.iterations; ++it) {
        // Process every patch with its interaction list via the task
        // queues (stealing balances the irregular refinement work).
        int count = patchCount_.get();
        for (int t = me; t < count; t += p)
            tq_->push(c, me, static_cast<std::uint64_t>(t));
        bar_->arrive(c);
        std::uint64_t task;
        while (tq_->get(c, me, task)) {
            processPatch(c, static_cast<int>(task));
            tq_->done(c);
        }
        bar_->arrive(c);

        // Push-pull through each input polygon's quadtree, and reduce
        // total flux for the convergence view.
        if (me == 0)
            fluxAcc_.set(0.0);
        bar_->arrive(c);
        double flux = 0;
        for (int r = me; r < nroots; r += p) {
            double up = pushPull(c, roots_[r], 0.0);
            Patch root = patches_.ld(roots_[r]);
            flux += up * root.area;
            c.flops(2);
        }
        {
            rt::Lock::Guard g(*fluxLock_, c);
            *fluxAcc_ += flux;
        }
        bar_->arrive(c);
        if (me == 0)
            lastFlux_ = fluxAcc_.get();
        bar_->arrive(c);
    }
}

Result
Radiosity::run()
{
    env_.run([this](rt::ProcCtx& c) { body(c); });
    Result r;
    r.totalFlux = lastFlux_;
    r.patches = *patchCount_.raw();
    r.interactions = *interCount_.raw();
    double sum = 0;
    for (int i = 0; i < r.patches; ++i)
        sum += patches_.raw()[i].rad * patches_.raw()[i].area;
    r.checksum = sum;
    r.valid = std::isfinite(sum) && r.totalFlux > 0;
    return r;
}

double
Radiosity::avgRadiosity(int rootPolygon) const
{
    // Area-weighted average over the leaves of this polygon's tree.
    double num = 0, den = 0;
    std::vector<int> stack{roots_[rootPolygon]};
    while (!stack.empty()) {
        int p = stack.back();
        stack.pop_back();
        const Patch& pp = patches_.raw()[p];
        if (pp.isLeaf) {
            num += pp.rad * pp.area;
            den += pp.area;
        } else {
            for (int k = 0; k < 4; ++k)
                stack.push_back(pp.child[k]);
        }
    }
    return den > 0 ? num / den : 0.0;
}

} // namespace splash::apps::radiosity
