#include "apps/cholesky/cholesky.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "base/log.h"

namespace splash::apps::cholesky {

Cholesky::Cholesky(rt::Env& env, const Config& cfg)
    : env_(env), cfg_(cfg), n_(cfg.grid * cfg.grid)
{
    buildMatrix();
    symbolicFactorization();

    val_ = rt::SharedArray<double>(env, colPtr_.back());
    remaining_ = rt::SharedArray<int>(env, n_);
    for (int j = 0; j < n_; ++j)
        colLock_.push_back(std::make_unique<rt::Lock>(env));
    tq_ = std::make_unique<rt::TaskQueues>(env, env.nprocs());
    bar_ = std::make_unique<rt::Barrier>(env);

    // Scatter A's values into L's structure (fill entries start 0).
    for (int j = 0; j < n_; ++j) {
        long lp = colPtr_[j];
        for (long ap = aColPtr_[j]; ap < aColPtr_[j + 1]; ++ap) {
            int row = aRowIdx_[ap];
            while (rowIdx_[lp] != row)
                ++lp;
            val_.raw()[lp] = aVal_[ap];
        }
        remaining_.raw()[j] = updatesNeeded_[j];
    }
}

void
Cholesky::buildMatrix()
{
    // 5-point 2-D grid Laplacian, lower triangle, CSC by columns.
    const int k = cfg_.grid;
    aColPtr_.assign(n_ + 1, 0);
    for (int col = 0; col < n_; ++col) {
        int x = col % k, y = col / k;
        aColPtr_[col + 1] = aColPtr_[col] + 1;   // diagonal
        if (x + 1 < k)
            ++aColPtr_[col + 1];
        if (y + 1 < k)
            ++aColPtr_[col + 1];
    }
    aRowIdx_.resize(aColPtr_[n_]);
    aVal_.resize(aColPtr_[n_]);
    for (int col = 0; col < n_; ++col) {
        int x = col % k, y = col / k;
        long p = aColPtr_[col];
        aRowIdx_[p] = col;
        aVal_[p] = 4.0 + cfg_.shift;
        ++p;
        if (x + 1 < k) {
            aRowIdx_[p] = col + 1;
            aVal_[p] = -1.0;
            ++p;
        }
        if (y + 1 < k) {
            aRowIdx_[p] = col + k;
            aVal_[p] = -1.0;
            ++p;
        }
    }
}

void
Cholesky::symbolicFactorization()
{
    // Column structures of L via the classic union algorithm:
    // struct(L_j) = struct(A_j)  U  union over children k of the
    // elimination tree of (struct(L_k) \ {k}).
    parent_.assign(n_, -1);
    std::vector<std::set<int>> cols(n_);
    std::vector<std::vector<int>> children(n_);
    for (int j = 0; j < n_; ++j) {
        for (long p = aColPtr_[j]; p < aColPtr_[j + 1]; ++p)
            cols[j].insert(aRowIdx_[p]);
        for (int k : children[j]) {
            auto it = cols[k].upper_bound(k);
            for (; it != cols[k].end(); ++it)
                cols[j].insert(*it);
        }
        auto it = cols[j].upper_bound(j);
        if (it != cols[j].end()) {
            parent_[j] = *it;
            children[*it].push_back(j);
        }
    }

    colPtr_.assign(n_ + 1, 0);
    for (int j = 0; j < n_; ++j)
        colPtr_[j + 1] = colPtr_[j] + static_cast<long>(cols[j].size());
    rowIdx_.resize(colPtr_[n_]);
    for (int j = 0; j < n_; ++j) {
        long p = colPtr_[j];
        for (int r : cols[j])
            rowIdx_[p++] = r;
    }

    // updatesNeeded[i] = # of columns j < i with L(i, j) != 0
    //                  = nonzeros in row i strictly left of the diagonal.
    updatesNeeded_.assign(n_, 0);
    for (int j = 0; j < n_; ++j)
        for (long p = colPtr_[j] + 1; p < colPtr_[j + 1]; ++p)
            ++updatesNeeded_[rowIdx_[p]];
}

void
Cholesky::cdiv(rt::ProcCtx& c, int j)
{
    long d = colPtr_[j];
    double ljj = std::sqrt(val_.ld(d));
    val_.st(d, ljj);
    c.flops(1);
    double inv = 1.0 / ljj;
    for (long p = d + 1; p < colPtr_[j + 1]; ++p) {
        val_.st(p, val_.ld(p) * inv);
        c.flops(1);
    }
}

void
Cholesky::cmod(rt::ProcCtx& c, int target, int j,
               std::vector<int>& posMap)
{
    // Apply the rank-1 update of column j to column `target`:
    // L(r, target) -= L(r, j) * L(target, j)  for r in struct(L_j),
    // r >= target. Serialized by target's column lock.
    long jp = colPtr_[j];
    long jend = colPtr_[j + 1];
    // Find L(target, j).
    long tp = jp + 1;
    while (rowIdx_[tp] != target)
        ++tp;
    double ltj = val_.ld(tp);

    // Build the scatter map for the target column.
    for (long p = colPtr_[target]; p < colPtr_[target + 1]; ++p)
        posMap[rowIdx_[p]] = static_cast<int>(p - colPtr_[target]);
    c.work(colPtr_[target + 1] - colPtr_[target]);

    rt::Lock::Guard g(*colLock_[target], c);
    for (long p = tp; p < jend; ++p) {
        int r = rowIdx_[p];
        long pos = colPtr_[target] + posMap[r];
        val_.st(pos, val_.ld(pos) - val_.ld(p) * ltj);
        c.flops(2);
    }
    int left = remaining_.ld(target) - 1;
    remaining_.st(target, left);
    if (left == 0)
        tq_->push(c, c.id(), static_cast<std::uint64_t>(target));
}

void
Cholesky::body(rt::ProcCtx& c)
{
    // Seed ready columns (no pending updates) from this proc's slice.
    for (int j = c.id(); j < n_; j += c.nprocs()) {
        if (updatesNeeded_[j] == 0)
            tq_->push(c, c.id(), static_cast<std::uint64_t>(j));
    }
    // One startup barrier so no processor sees an empty system before
    // seeding finishes; the numeric phase itself is barrier-free.
    bar_->arrive(c);
    std::vector<int> posMap(n_, -1);
    std::uint64_t task;
    while (tq_->get(c, c.id(), task)) {
        int j = static_cast<int>(task);
        cdiv(c, j);
        for (long p = colPtr_[j] + 1; p < colPtr_[j + 1]; ++p)
            cmod(c, rowIdx_[p], j, posMap);
        tq_->done(c);
    }
}

Result
Cholesky::run()
{
    env_.run([this](rt::ProcCtx& c) { body(c); });
    Result r;
    r.fillNonzeros = colPtr_.back();
    double sum = 0.0;
    for (int j = 0; j < n_; ++j)
        sum += val_.raw()[colPtr_[j]];  // trace of L
    r.checksum = sum;
    r.valid = std::isfinite(sum) && sum > 0;
    return r;
}

std::vector<double>
Cholesky::reconstructDense() const
{
    std::vector<double> dense(std::size_t(n_) * n_, 0.0);
    // L in dense form.
    std::vector<double> L(std::size_t(n_) * n_, 0.0);
    for (int j = 0; j < n_; ++j)
        for (long p = colPtr_[j]; p < colPtr_[j + 1]; ++p)
            L[std::size_t(rowIdx_[p]) * n_ + j] = val_.raw()[p];
    for (int i = 0; i < n_; ++i)
        for (int j = 0; j <= i; ++j) {
            double s = 0;
            for (int k = 0; k <= j; ++k)
                s += L[std::size_t(i) * n_ + k] *
                     L[std::size_t(j) * n_ + k];
            dense[std::size_t(i) * n_ + j] = s;
            dense[std::size_t(j) * n_ + i] = s;
        }
    return dense;
}

std::vector<double>
Cholesky::denseA() const
{
    std::vector<double> dense(std::size_t(n_) * n_, 0.0);
    for (int j = 0; j < n_; ++j)
        for (long p = aColPtr_[j]; p < aColPtr_[j + 1]; ++p) {
            dense[std::size_t(aRowIdx_[p]) * n_ + j] = aVal_[p];
            dense[std::size_t(j) * n_ + aRowIdx_[p]] = aVal_[p];
        }
    return dense;
}

} // namespace splash::apps::cholesky
