/**
 * @file
 * Cholesky kernel: sparse Cholesky factorization A = L * L^t, as in
 * SPLASH-2 in structure and partitioning:
 *
 *  - operates on sparse SPD matrices (generated 2-D grid Laplacians,
 *    the same family as the paper's tk inputs -- see DESIGN.md),
 *  - performs a genuine symbolic factorization (elimination tree +
 *    fill-in) before the numeric phase,
 *  - the numeric phase is *self-scheduled*: column tasks flow through
 *    distributed task queues with stealing, and -- unlike LU -- there
 *    is no global synchronization between steps; a column becomes
 *    ready when its last left-looking update arrives (per-column
 *    dependency counters under per-column locks).
 *
 * Paper input: tk15.O; default here: 24 x 24 grid Laplacian (n = 576).
 */
#ifndef SPLASH2_APPS_CHOLESKY_CHOLESKY_H
#define SPLASH2_APPS_CHOLESKY_CHOLESKY_H

#include <memory>
#include <vector>

#include "rt/env.h"
#include "rt/shared.h"
#include "rt/sync.h"
#include "rt/taskq.h"

namespace splash::apps::cholesky {

struct Config
{
    int grid = 24;       ///< k: factor the k^2 x k^2 grid Laplacian
    double shift = 0.01; ///< diagonal shift added for conditioning
    unsigned seed = 1234;
};

struct Result
{
    bool valid = true;
    double checksum = 0.0;
    long fillNonzeros = 0;  ///< |L| including the diagonal
};

class Cholesky
{
  public:
    Cholesky(rt::Env& env, const Config& cfg);

    Result run();

    int n() const { return n_; }
    long nnzL() const { return colPtr_.back(); }

    /** Dense reconstruction of L*L^t (for small-n verification). */
    std::vector<double> reconstructDense() const;
    /** Dense copy of the input A. */
    std::vector<double> denseA() const;

  private:
    void buildMatrix();
    void symbolicFactorization();
    void body(rt::ProcCtx& c);
    void cdiv(rt::ProcCtx& c, int j);
    void cmod(rt::ProcCtx& c, int target, int j,
              std::vector<int>& posMap);

    rt::Env& env_;
    Config cfg_;
    int n_;

    // Input matrix in CSC lower-triangular form (host, read-only).
    std::vector<long> aColPtr_;
    std::vector<int> aRowIdx_;
    std::vector<double> aVal_;

    // Factor structure (host, read-only after symbolic phase).
    std::vector<long> colPtr_;
    std::vector<int> rowIdx_;
    std::vector<int> parent_;       ///< elimination tree
    std::vector<int> updatesNeeded_;

    // Numeric state (shared).
    rt::SharedArray<double> val_;
    rt::SharedArray<int> remaining_;  ///< pending updates per column
    std::vector<std::unique_ptr<rt::Lock>> colLock_;
    std::unique_ptr<rt::TaskQueues> tq_;
    std::unique_ptr<rt::Barrier> bar_;
};

} // namespace splash::apps::cholesky

#endif // SPLASH2_APPS_CHOLESKY_CHOLESKY_H
