#include "apps/water/water_nsq.h"

namespace splash::apps::water {

double
WaterNsq::forceSweep(rt::ProcCtx& c, std::vector<double>& local)
{
    const int n = cfg_.nmol;
    const int half = n / 2;
    double pot = 0.0;
    for (long i = molFirst(c.id()); i < molLast(c.id()); ++i) {
        // Half-shell: partners i+1 .. i+n/2 (mod n); when n is even the
        // diametric pair is computed only from the lower index.
        for (int s = 1; s <= half; ++s) {
            if (n % 2 == 0 && s == half && i >= half)
                break;
            int j = static_cast<int>((i + s) % n);
            double fij[3];
            pot += pairInteraction(c, static_cast<int>(i), j, fij);
            for (int d = 0; d < 3; ++d) {
                local[3 * i + d] += fij[d];
                local[3 * j + d] -= fij[d];
            }
            c.flops(6);
        }
    }
    return pot;
}

} // namespace splash::apps::water
