#include "apps/water/base.h"

#include <cmath>

#include "base/log.h"
#include "base/rng.h"

namespace splash::apps::water {

namespace {

/** Gear corrector coefficients for a 2nd-order ODE, 6 values
 *  (Gear 1971): applied to the scaled-derivative (Nordsieck) vector. */
constexpr double kGear[kOrder] = {3.0 / 16.0,  251.0 / 360.0, 1.0,
                                  11.0 / 18.0, 1.0 / 6.0,     1.0 / 60.0};

/** Pascal-triangle predictor: q_k += sum_{j>k} C(j, k) q_j. */
constexpr double kPascal[kOrder][kOrder] = {
    {1, 1, 1, 1, 1, 1},  {0, 1, 2, 3, 4, 5},   {0, 0, 1, 3, 6, 10},
    {0, 0, 0, 1, 4, 10}, {0, 0, 0, 0, 1, 5},   {0, 0, 0, 0, 0, 1},
};

} // namespace

MdBase::MdBase(rt::Env& env, const MdConfig& cfg)
    : env_(env), cfg_(cfg), mol_(env, cfg.nmol),
      potAcc_(env, 0.0), kinAcc_(env, 0.0)
{
    box_ = std::cbrt(double(cfg_.nmol) / cfg_.density);
    if (box_ < 2.0 * cfg_.cutoff)
        warn("Water: box smaller than twice the cutoff; minimum image "
             "may double-count");

    // Initial FCC-ish lattice with small deterministic jitter and
    // small random velocities (zero net momentum).
    int side = 1;
    while (side * side * side < cfg_.nmol)
        ++side;
    Rng rng(cfg_.seed);
    double cell = box_ / side;
    double mom[3] = {0, 0, 0};
    for (int m = 0; m < cfg_.nmol; ++m) {
        Molecule mm{};
        int ix = m % side, iy = (m / side) % side, iz = m / (side * side);
        double pos[3] = {(ix + 0.5) * cell, (iy + 0.5) * cell,
                         (iz + 0.5) * cell};
        for (int d = 0; d < 3; ++d) {
            mm.q[0][d] = pos[d] + rng.uniform(-0.05, 0.05) * cell;
            double v = rng.uniform(-0.1, 0.1);
            mm.q[1][d] = v * cfg_.dt;  // h * v
            mom[d] += v;
        }
        mol_.raw()[m] = mm;
    }
    // Remove net momentum.
    for (int m = 0; m < cfg_.nmol; ++m)
        for (int d = 0; d < 3; ++d)
            mol_.raw()[m].q[1][d] -= mom[d] / cfg_.nmol * cfg_.dt;

    for (int m = 0; m < cfg_.nmol; ++m)
        molLock_.push_back(std::make_unique<rt::Lock>(env));
    energyLock_ = std::make_unique<rt::Lock>(env);
    bar_ = std::make_unique<rt::Barrier>(env);

    // Distribute molecule records across nodes in owner bands.
    for (int q = 0; q < env.nprocs(); ++q) {
        long f = molFirst(q), l = molLast(q);
        if (l > f)
            mol_.setHome(f, l - f, q);
    }
}

long
MdBase::molFirst(int q) const
{
    return long(cfg_.nmol) * q / env_.nprocs();
}

long
MdBase::molLast(int q) const
{
    return long(cfg_.nmol) * (q + 1) / env_.nprocs();
}

double
MdBase::pairInteraction(rt::ProcCtx& c, int i, int j, double fij[3])
{
    double dr[3];
    // Positions are read field-by-field to reference only the bytes
    // actually used (q[0][*]).
    const Molecule* raw = mol_.raw();
    for (int d = 0; d < 3; ++d) {
        rt::touchRead(&raw[i].q[0][d], sizeof(double));
        rt::touchRead(&raw[j].q[0][d], sizeof(double));
        double diff = raw[i].q[0][d] - raw[j].q[0][d];
        diff -= box_ * std::nearbyint(diff / box_);
        dr[d] = diff;
    }
    double r2 = dr[0] * dr[0] + dr[1] * dr[1] + dr[2] * dr[2];
    c.flops(14);
    if (r2 >= cfg_.cutoff * cfg_.cutoff || r2 == 0.0) {
        fij[0] = fij[1] = fij[2] = 0.0;
        return 0.0;
    }
    double inv2 = 1.0 / r2;
    double inv6 = inv2 * inv2 * inv2;
    double inv12 = inv6 * inv6;
    double fr = (48.0 * inv12 - 24.0 * inv6) * inv2;
    for (int d = 0; d < 3; ++d)
        fij[d] = fr * dr[d];
    c.flops(14);
    return 4.0 * (inv12 - inv6);
}

void
MdBase::predict(rt::ProcCtx& c)
{
    for (long m = molFirst(c.id()); m < molLast(c.id()); ++m) {
        Molecule mm = mol_.ld(m);
        for (int d = 0; d < 3; ++d) {
            double next[kOrder];
            for (int k = 0; k < kOrder; ++k) {
                double acc = 0;
                for (int j = k; j < kOrder; ++j)
                    acc += kPascal[k][j] * mm.q[j][d];
                next[k] = acc;
            }
            for (int k = 0; k < kOrder; ++k)
                mm.q[k][d] = next[k];
            // Wrap into the box.
            mm.q[0][d] -= box_ * std::floor(mm.q[0][d] / box_);
            mm.f[d] = 0.0;
        }
        mol_.st(m, mm);
        c.flops(3 * kOrder * kOrder);
    }
}

void
MdBase::mergeForces(rt::ProcCtx& c, const std::vector<double>& local)
{
    for (int m = 0; m < cfg_.nmol; ++m) {
        const double* lf = &local[3 * m];
        if (lf[0] == 0.0 && lf[1] == 0.0 && lf[2] == 0.0)
            continue;
        rt::Lock::Guard g(*molLock_[m], c);
        Molecule* raw = mol_.raw();
        for (int d = 0; d < 3; ++d) {
            rt::touchRead(&raw[m].f[d], sizeof(double));
            rt::touchWrite(&raw[m].f[d], sizeof(double));
            raw[m].f[d] += lf[d];
        }
        c.flops(3);
    }
}

void
MdBase::correctAndKinetic(rt::ProcCtx& c)
{
    const double h2_2 = cfg_.dt * cfg_.dt * 0.5;
    double kin = 0.0;
    for (long m = molFirst(c.id()); m < molLast(c.id()); ++m) {
        Molecule mm = mol_.ld(m);
        for (int d = 0; d < 3; ++d) {
            double delta = h2_2 * mm.f[d] - mm.q[2][d];
            for (int k = 0; k < kOrder; ++k)
                mm.q[k][d] += kGear[k] * delta;
            double v = mm.q[1][d] / cfg_.dt;
            kin += 0.5 * v * v;
        }
        mol_.st(m, mm);
        c.flops(10 * kOrder);
    }
    rt::Lock::Guard g(*energyLock_, c);
    *kinAcc_ += kin;
    c.flops(1);
}

void
MdBase::body(rt::ProcCtx& c)
{
    for (int s = 0; s < cfg_.steps; ++s) {
        if (s == cfg_.warmupSteps && s > 0) {
            bar_->arrive(c);
            if (c.id() == 0)
                env_.startMeasurement();
            bar_->arrive(c);
        }
        predict(c);
        bar_->arrive(c);
        prepareStep(c);
        if (c.id() == 0) {
            potAcc_.set(0.0);
            kinAcc_.set(0.0);
        }
        bar_->arrive(c);

        std::vector<double> local(std::size_t(3) * cfg_.nmol, 0.0);
        double pot = forceSweep(c, local);
        mergeForces(c, local);
        {
            rt::Lock::Guard g(*energyLock_, c);
            *potAcc_ += pot;
            c.flops(1);
        }
        bar_->arrive(c);

        correctAndKinetic(c);
        bar_->arrive(c);
        if (c.id() == 0) {
            lastPot_ = potAcc_.get();
            lastKin_ = kinAcc_.get();
        }
        bar_->arrive(c);
    }
}

MdResult
MdBase::run()
{
    env_.run([this](rt::ProcCtx& c) { body(c); });
    MdResult r;
    r.kinetic = lastKin_;
    r.potential = lastPot_;
    double sum = 0.0;
    for (int m = 0; m < cfg_.nmol; ++m)
        for (int d = 0; d < 3; ++d)
            sum += mol_.raw()[m].q[0][d] * ((d + 1) * 0.25);
    r.checksum = sum;
    r.valid = std::isfinite(sum) && std::isfinite(lastPot_) &&
              std::isfinite(lastKin_);
    return r;
}

std::vector<double>
MdBase::positions() const
{
    std::vector<double> out(std::size_t(3) * cfg_.nmol);
    for (int m = 0; m < cfg_.nmol; ++m)
        for (int d = 0; d < 3; ++d)
            out[3 * m + d] = mol_.raw()[m].q[0][d];
    return out;
}

std::vector<double>
MdBase::forces() const
{
    std::vector<double> out(std::size_t(3) * cfg_.nmol);
    for (int m = 0; m < cfg_.nmol; ++m)
        for (int d = 0; d < 3; ++d)
            out[3 * m + d] = mol_.raw()[m].f[d];
    return out;
}

} // namespace splash::apps::water
