/**
 * @file
 * Shared substrate of the two Water applications.
 *
 * Both Water-Nsquared and Water-Spatial evaluate forces and potentials
 * over time in a system of water molecules using a predictor-corrector
 * (Gear) method; they differ only in how interaction partners are
 * found (O(n^2) half-shell enumeration vs. an O(n) spatial cell grid).
 * This header holds everything they share: the molecule state layout
 * (a Nordsieck vector per coordinate), the pair potential, the Gear
 * predictor/corrector sweeps, and the locked force-merge protocol
 * (each processor accumulates forces into a private copy and merges
 * into the shared copy once, under per-molecule locks -- the SPLASH-2
 * improvement over the original SPLASH Water).
 *
 * The potential is a Lennard-Jones site model with minimum-image
 * periodic boundaries (the paper's intra-molecular terms are not
 * architecturally significant; see DESIGN.md substitutions).
 */
#ifndef SPLASH2_APPS_WATER_BASE_H
#define SPLASH2_APPS_WATER_BASE_H

#include <memory>
#include <vector>

#include "rt/env.h"
#include "rt/shared.h"
#include "rt/sync.h"

namespace splash::apps::water {

/** Gear predictor-corrector order (Nordsieck values per coordinate).
 *  Six values, as in SPLASH-2 Water's high-order Gear scheme; this
 *  also sizes the per-molecule record the paper's working-set analysis
 *  sees (6 orders x 3 coordinates + forces = 168 bytes). */
constexpr int kOrder = 6;

/** One molecule: Nordsieck vectors for x/y/z plus the shared force. */
struct Molecule
{
    /** q[k][d]: k-th scaled derivative of coordinate d. */
    double q[kOrder][3];
    /** Shared force accumulator, merged under the molecule's lock. */
    double f[3];
};

struct MdConfig
{
    int nmol = 216;
    int steps = 3;
    /** Steps before measurement starts (paper: skip cold start). */
    int warmupSteps = 0;
    double density = 0.8;   ///< reduced density
    double cutoff = 2.5;    ///< reduced LJ cutoff radius
    double dt = 0.004;      ///< reduced time-step
    unsigned seed = 1234;
};

struct MdResult
{
    bool valid = true;
    double checksum = 0.0;
    double kinetic = 0.0;    ///< final-step kinetic energy
    double potential = 0.0;  ///< final-step potential energy
};

/** Common state and phases; the two apps provide the force sweep. */
class MdBase
{
  public:
    MdBase(rt::Env& env, const MdConfig& cfg);
    virtual ~MdBase() = default;

    MdResult run();

    double boxLength() const { return box_; }
    int nmol() const { return cfg_.nmol; }

    /** Current positions/forces (uninstrumented; for verification). */
    std::vector<double> positions() const;
    std::vector<double> forces() const;

  protected:
    /** Subclass: accumulate LJ forces for this processor's share of
     *  pair interactions into @p local (3*nmol doubles) and return the
     *  local potential-energy contribution. */
    virtual double forceSweep(rt::ProcCtx& c,
                              std::vector<double>& local) = 0;

    /** Optional per-step structure rebuild hook (cell lists). */
    virtual void prepareStep(rt::ProcCtx& c) { (void)c; }

    /** Pair force/potential with minimum-image convention. Adds the
     *  force on @p i (reaction subtracted on j by the caller). Returns
     *  potential or 0 beyond the cutoff. Reads positions through the
     *  instrumented array. */
    double pairInteraction(rt::ProcCtx& c, int i, int j, double fij[3]);

    /** Molecule index range owned by processor @p q. */
    long molFirst(int q) const;
    long molLast(int q) const;

    rt::Env& env_;
    MdConfig cfg_;
    double box_;
    rt::SharedArray<Molecule> mol_;
    std::vector<std::unique_ptr<rt::Lock>> molLock_;
    std::unique_ptr<rt::Lock> energyLock_;
    std::unique_ptr<rt::Barrier> bar_;
    rt::SharedVar<double> potAcc_, kinAcc_;

  private:
    void body(rt::ProcCtx& c);
    void predict(rt::ProcCtx& c);
    void correctAndKinetic(rt::ProcCtx& c);
    void mergeForces(rt::ProcCtx& c, const std::vector<double>& local);

    double lastPot_ = 0.0, lastKin_ = 0.0;
};

} // namespace splash::apps::water

#endif // SPLASH2_APPS_WATER_BASE_H
