/**
 * @file
 * Water-Spatial: O(n) molecular-dynamics water simulation.
 *
 * Solves the same problem as Water-Nsquared but imposes a uniform 3-D
 * grid of cells (edge >= the cutoff radius) on the domain: a processor
 * owning a cell need only examine the 26 neighboring cells for
 * interaction partners (13 half-neighbors with Newton's third law).
 * Molecules move between cells as they travel, so the shared cell
 * lists are (re)built each step under per-cell locks -- the
 * list-update communication the paper describes.
 *
 * Default: 512 molecules (the cell method needs >= 3 cells per axis).
 */
#ifndef SPLASH2_APPS_WATER_WATER_SP_H
#define SPLASH2_APPS_WATER_WATER_SP_H

#include "apps/water/base.h"

namespace splash::apps::water {

class WaterSp : public MdBase
{
  public:
    WaterSp(rt::Env& env, const MdConfig& cfg);

    int cellsPerAxis() const { return ncell_; }

  protected:
    void prepareStep(rt::ProcCtx& c) override;
    double forceSweep(rt::ProcCtx& c, std::vector<double>& local) override;

  private:
    int cellOf(rt::ProcCtx& c, int m);
    long cellFirst(int q) const;
    long cellLast(int q) const;

    int ncell_;        ///< cells per axis
    int ncells_;       ///< total cells
    double cellLen_;
    rt::SharedArray<int> head_;  ///< first molecule per cell (-1: none)
    rt::SharedArray<int> next_;  ///< linked list through molecules
    std::vector<std::unique_ptr<rt::Lock>> cellLock_;
    std::vector<int> halfNeighbors_;  ///< 13 wrapped offsets per cell
};

} // namespace splash::apps::water

#endif // SPLASH2_APPS_WATER_WATER_SP_H
