#include "apps/water/water_sp.h"

#include <cmath>

#include "base/log.h"

namespace splash::apps::water {

WaterSp::WaterSp(rt::Env& env, const MdConfig& cfg) : MdBase(env, cfg)
{
    ncell_ = static_cast<int>(box_ / cfg_.cutoff);
    if (ncell_ < 3)
        fatal("Water-Sp: fewer than 3 cells per axis; enlarge the box "
              "(more molecules or lower density)");
    ncells_ = ncell_ * ncell_ * ncell_;
    cellLen_ = box_ / ncell_;

    head_ = rt::SharedArray<int>(env, ncells_);
    next_ = rt::SharedArray<int>(env, cfg_.nmol);
    for (int q = 0; q < env.nprocs(); ++q) {
        long f = cellFirst(q), l = cellLast(q);
        if (l > f)
            head_.setHome(f, l - f, q);
    }
    for (int cidx = 0; cidx < ncells_; ++cidx)
        cellLock_.push_back(std::make_unique<rt::Lock>(env));

    // 13 half neighbors: lexicographically positive offsets.
    for (int dz = -1; dz <= 1; ++dz) {
        for (int dy = -1; dy <= 1; ++dy) {
            for (int dx = -1; dx <= 1; ++dx) {
                if (dz > 0 || (dz == 0 && dy > 0) ||
                    (dz == 0 && dy == 0 && dx > 0)) {
                    halfNeighbors_.push_back(dx);
                    halfNeighbors_.push_back(dy);
                    halfNeighbors_.push_back(dz);
                }
            }
        }
    }
}

long
WaterSp::cellFirst(int q) const
{
    return long(ncells_) * q / env_.nprocs();
}

long
WaterSp::cellLast(int q) const
{
    return long(ncells_) * (q + 1) / env_.nprocs();
}

int
WaterSp::cellOf(rt::ProcCtx& c, int m)
{
    const Molecule* raw = mol_.raw();
    int ix[3];
    for (int d = 0; d < 3; ++d) {
        rt::touchRead(&raw[m].q[0][d], sizeof(double));
        int v = static_cast<int>(raw[m].q[0][d] / cellLen_);
        ix[d] = std::min(std::max(v, 0), ncell_ - 1);
    }
    c.work(6);
    return (ix[2] * ncell_ + ix[1]) * ncell_ + ix[0];
}

void
WaterSp::prepareStep(rt::ProcCtx& c)
{
    // Clear owned cells, then insert owned molecules under cell locks.
    for (long cell = cellFirst(c.id()); cell < cellLast(c.id()); ++cell)
        head_.st(cell, -1);
    bar_->arrive(c);
    for (long m = molFirst(c.id()); m < molLast(c.id()); ++m) {
        int cell = cellOf(c, static_cast<int>(m));
        rt::Lock::Guard g(*cellLock_[cell], c);
        int old = head_.ld(cell);
        next_.st(m, old);
        head_.st(cell, static_cast<int>(m));
    }
    bar_->arrive(c);
}

double
WaterSp::forceSweep(rt::ProcCtx& c, std::vector<double>& local)
{
    // Partitioned by molecule (not by cell) for load balance when the
    // scaled-down box has few cells; each pair is computed once, from
    // its lower-indexed molecule, with Newton's third law applied.
    double pot = 0.0;
    auto interact = [&](int i, int j) {
        double fij[3];
        pot += pairInteraction(c, i, j, fij);
        for (int d = 0; d < 3; ++d) {
            local[3 * i + d] += fij[d];
            local[3 * j + d] -= fij[d];
        }
        c.flops(6);
    };

    // Cyclic assignment: the j > m rule gives low-index molecules more
    // partners, so contiguous bands would be triangularly imbalanced.
    for (long m = c.id(); m < cfg_.nmol; m += c.nprocs()) {
        int cell = cellOf(c, static_cast<int>(m));
        int cz = cell / (ncell_ * ncell_);
        int cy = (cell / ncell_) % ncell_;
        int cx = cell % ncell_;
        for (int dz = -1; dz <= 1; ++dz) {
            for (int dy = -1; dy <= 1; ++dy) {
                for (int dx = -1; dx <= 1; ++dx) {
                    int nx = (cx + dx + ncell_) % ncell_;
                    int ny = (cy + dy + ncell_) % ncell_;
                    int nz = (cz + dz + ncell_) % ncell_;
                    int nc = (nz * ncell_ + ny) * ncell_ + nx;
                    for (int j = head_.ld(nc); j >= 0; j = next_.ld(j))
                        if (j > m)
                            interact(static_cast<int>(m), j);
                }
            }
        }
    }
    return pot;
}

} // namespace splash::apps::water
