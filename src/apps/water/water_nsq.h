/**
 * @file
 * Water-Nsquared: O(n^2) molecular-dynamics water simulation.
 *
 * Each processor owns a contiguous band of molecules and evaluates a
 * half shell of n/2 partners per owned molecule, so every pair is
 * computed exactly once.  Forces are accumulated into a private copy
 * and merged into the shared copy once per step under per-molecule
 * locks (the improved SPLASH-2 locking strategy).
 *
 * Paper default: 512 molecules; sim-scaled default: 216.
 */
#ifndef SPLASH2_APPS_WATER_WATER_NSQ_H
#define SPLASH2_APPS_WATER_WATER_NSQ_H

#include "apps/water/base.h"

namespace splash::apps::water {

class WaterNsq : public MdBase
{
  public:
    WaterNsq(rt::Env& env, const MdConfig& cfg) : MdBase(env, cfg) {}

  protected:
    double forceSweep(rt::ProcCtx& c, std::vector<double>& local) override;
};

} // namespace splash::apps::water

#endif // SPLASH2_APPS_WATER_WATER_NSQ_H
