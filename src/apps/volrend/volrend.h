/**
 * @file
 * Volrend: volume rendering by ray casting, as in SPLASH-2:
 *
 *  - the volume is a cube of voxels; an octree (max-opacity pyramid)
 *    accelerates traversal by leaping over transparent space,
 *  - several frames are rendered from changing viewpoints,
 *  - rays are cast through every pixel (parallel projection), sampled
 *    along their linear paths with trilinear interpolation, composited
 *    front-to-back with early ray termination,
 *  - the image is partitioned into pixel-block tiles under distributed
 *    task queues with stealing (as in Raytrace).
 *
 * The paper renders the `head` data set; we render a procedural
 * head phantom of nested ellipsoid shells (skin, skull, brain) with
 * an equivalent opacity structure (see DESIGN.md substitutions).
 */
#ifndef SPLASH2_APPS_VOLREND_VOLREND_H
#define SPLASH2_APPS_VOLREND_VOLREND_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "rt/env.h"
#include "rt/shared.h"
#include "rt/sync.h"
#include "rt/taskq.h"

namespace splash::apps::volrend {

struct Config
{
    int size = 64;        ///< voxels per axis (power of two)
    int width = 64;       ///< image edge (square image)
    int frames = 2;       ///< viewpoints (rotation about the y axis)
    /** Frames before measurement starts (paper: skip cold start). */
    int warmupFrames = 0;
    int tile = 8;
    double step = 1.0;    ///< sampling step in voxel units
    double cutoff = 0.95; ///< early-ray-termination opacity
    bool useOctree = true;
    unsigned seed = 1234;
    /** 0: head phantom (default); 1: centered ball (for tests). */
    int phantom = 0;
};

struct Result
{
    bool valid = true;
    double checksum = 0.0;
    std::uint64_t samples = 0;  ///< trilinear samples taken
};

class Volrend
{
  public:
    Volrend(rt::Env& env, const Config& cfg);

    Result run();

    /** Final frame's image (grayscale in [0,1]); uninstrumented. */
    std::vector<double> image() const;
    void writePpm(const std::string& path) const;

  private:
    void buildVolume();
    void buildPyramid(rt::ProcCtx& c);
    void computeOpacity(rt::ProcCtx& c);
    void body(rt::ProcCtx& c);
    void renderTile(rt::ProcCtx& c, int tileIdx, int frame);
    double castRay(rt::ProcCtx& c, double ox, double oy, double oz,
                   double dx, double dy, double dz,
                   std::uint64_t& samples);
    double sampleOpacity(rt::ProcCtx& c, double x, double y, double z);
    double shade(rt::ProcCtx& c, double x, double y, double z);
    double density(int x, int y, int z) const;

    rt::Env& env_;
    Config cfg_;
    int n_;
    rt::SharedArray<double> vol_;      ///< densities
    rt::SharedArray<double> opac_;     ///< transfer-mapped opacity
    rt::SharedArray<double> pyramid_;  ///< max-opacity octree levels
    std::vector<long> pyrOffset_;      ///< level offsets (0 = voxels)
    int pyrLevels_ = 0;
    rt::SharedArray<double> img_;
    std::unique_ptr<rt::TaskQueues> tq_;
    std::unique_ptr<rt::Barrier> bar_;
    std::unique_ptr<rt::Lock> statLock_;
    std::uint64_t samples_ = 0;
    double viewCos_ = 1.0, viewSin_ = 0.0;  ///< current frame rotation
};

} // namespace splash::apps::volrend

#endif // SPLASH2_APPS_VOLREND_VOLREND_H
