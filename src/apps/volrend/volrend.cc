#include "apps/volrend/volrend.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "base/log.h"

namespace splash::apps::volrend {

Volrend::Volrend(rt::Env& env, const Config& cfg)
    : env_(env), cfg_(cfg), n_(cfg.size)
{
    ensure(isPow2(n_) && n_ >= 8, "Volrend: size must be a power of "
                                  "two >= 8");
    std::size_t nvox = std::size_t(n_) * n_ * n_;
    vol_ = rt::SharedArray<double>(env, nvox);
    opac_ = rt::SharedArray<double>(env, nvox);

    // Max-opacity pyramid: level 1 has (n/2)^3 nodes, etc.
    pyrLevels_ = log2i(n_);
    pyrOffset_.assign(pyrLevels_ + 1, 0);
    long total = 0;
    for (int l = 1; l <= pyrLevels_; ++l) {
        pyrOffset_[l] = total;
        long m = n_ >> l;
        total += m * m * m;
    }
    pyramid_ = rt::SharedArray<double>(env, std::max<long>(total, 1));

    img_ = rt::SharedArray<double>(env,
                                   std::size_t(cfg_.width) * cfg_.width);
    tq_ = std::make_unique<rt::TaskQueues>(env, env.nprocs());
    bar_ = std::make_unique<rt::Barrier>(env);
    statLock_ = std::make_unique<rt::Lock>(env);

    buildVolume();
}

void
Volrend::buildVolume()
{
    // Procedural phantom, centered, in voxel coordinates.
    double cc = n_ / 2.0;
    for (int z = 0; z < n_; ++z) {
        for (int y = 0; y < n_; ++y) {
            for (int x = 0; x < n_; ++x) {
                double v = 0.0;
                if (cfg_.phantom == 1) {
                    double r = std::sqrt((x - cc) * (x - cc) +
                                         (y - cc) * (y - cc) +
                                         (z - cc) * (z - cc));
                    v = r < n_ * 0.25 ? 200.0 : 0.0;
                } else {
                    // Head: ellipsoidal skin, skull shell, brain.
                    double ex = (x - cc) / (0.42 * n_);
                    double ey = (y - cc) / (0.5 * n_);
                    double ez = (z - cc) / (0.38 * n_);
                    double r = std::sqrt(ex * ex + ey * ey + ez * ez);
                    if (r < 0.70)
                        v = 80.0;   // brain
                    if (r >= 0.70 && r < 0.82)
                        v = 220.0;  // skull
                    if (r >= 0.82 && r < 0.95)
                        v = 40.0;   // skin/soft tissue
                }
                vol_.raw()[(std::size_t(z) * n_ + y) * n_ + x] = v;
            }
        }
    }
}

double
Volrend::density(int x, int y, int z) const
{
    if (x < 0 || y < 0 || z < 0 || x >= n_ || y >= n_ || z >= n_)
        return 0.0;
    return vol_.raw()[(std::size_t(z) * n_ + y) * n_ + x];
}

void
Volrend::computeOpacity(rt::ProcCtx& c)
{
    // Piecewise-linear transfer function: transparent below 30,
    // soft ramp to dense bone.
    std::size_t nvox = std::size_t(n_) * n_ * n_;
    std::size_t per = (nvox + c.nprocs() - 1) / c.nprocs();
    std::size_t first = per * c.id();
    std::size_t last = std::min(nvox, first + per);
    for (std::size_t i = first; i < last; ++i) {
        double d = vol_.ld(i);
        double a = 0.0;
        if (d > 30.0)
            a = std::min(1.0, (d - 30.0) / 220.0) * 0.6;
        opac_.st(i, a);
        c.flops(3);
    }
    bar_->arrive(c);
}

void
Volrend::buildPyramid(rt::ProcCtx& c)
{
    // Level 1 from voxels, each higher level from the previous.
    for (int l = 1; l <= pyrLevels_; ++l) {
        long m = n_ >> l;
        long nodes = m * m * m;
        long per = (nodes + c.nprocs() - 1) / c.nprocs();
        long first = per * c.id();
        long last = std::min(nodes, first + per);
        for (long k = first; k < last; ++k) {
            long x = k % m, y = (k / m) % m, z = k / (m * m);
            double mx = 0.0;
            if (l == 1) {
                // One-voxel dilation: a sample anywhere inside a
                // "transparent" node then interpolates only
                // transparent voxels, so leaping is exact.
                for (long cz = 2 * z - 1; cz <= 2 * z + 2; ++cz) {
                    for (long cy = 2 * y - 1; cy <= 2 * y + 2; ++cy) {
                        for (long cx = 2 * x - 1; cx <= 2 * x + 2;
                             ++cx) {
                            if (cx < 0 || cy < 0 || cz < 0 ||
                                cx >= n_ || cy >= n_ || cz >= n_)
                                continue;
                            mx = std::max(
                                mx, opac_.ld((std::size_t(cz) * n_ +
                                              cy) *
                                                 n_ +
                                             cx));
                        }
                    }
                }
                c.work(64);
            } else {
                for (int dz = 0; dz < 2; ++dz) {
                    for (int dy = 0; dy < 2; ++dy) {
                        for (int dx = 0; dx < 2; ++dx) {
                            long cx = 2 * x + dx, cy = 2 * y + dy,
                                 cz = 2 * z + dz;
                            long pm = n_ >> (l - 1);
                            mx = std::max(
                                mx,
                                pyramid_.ld(pyrOffset_[l - 1] +
                                            (cz * pm + cy) * pm + cx));
                        }
                    }
                }
                c.work(8);
            }
            pyramid_.st(pyrOffset_[l] + k, mx);
        }
        bar_->arrive(c);
    }
}

double
Volrend::sampleOpacity(rt::ProcCtx& c, double x, double y, double z)
{
    int x0 = static_cast<int>(std::floor(x));
    int y0 = static_cast<int>(std::floor(y));
    int z0 = static_cast<int>(std::floor(z));
    double fx = x - x0, fy = y - y0, fz = z - z0;
    double acc = 0.0;
    for (int dz = 0; dz < 2; ++dz) {
        for (int dy = 0; dy < 2; ++dy) {
            for (int dx = 0; dx < 2; ++dx) {
                int xi = x0 + dx, yi = y0 + dy, zi = z0 + dz;
                if (xi < 0 || yi < 0 || zi < 0 || xi >= n_ ||
                    yi >= n_ || zi >= n_)
                    continue;
                double w = (dx ? fx : 1 - fx) * (dy ? fy : 1 - fy) *
                           (dz ? fz : 1 - fz);
                acc += w *
                       opac_.ld((std::size_t(zi) * n_ + yi) * n_ + xi);
            }
        }
    }
    c.flops(24);
    return acc;
}

double
Volrend::shade(rt::ProcCtx& c, double x, double y, double z)
{
    // Central-difference gradient of density, headlight shading.
    int xi = std::clamp(static_cast<int>(x), 1, n_ - 2);
    int yi = std::clamp(static_cast<int>(y), 1, n_ - 2);
    int zi = std::clamp(static_cast<int>(z), 1, n_ - 2);
    auto d = [&](int a, int b, int e) {
        rt::touchRead(&vol_.raw()[(std::size_t(e) * n_ + b) * n_ + a],
                      8);
        return density(a, b, e);
    };
    double gx = d(xi + 1, yi, zi) - d(xi - 1, yi, zi);
    double gy = d(xi, yi + 1, zi) - d(xi, yi - 1, zi);
    double gz = d(xi, yi, zi + 1) - d(xi, yi, zi - 1);
    double gm = std::sqrt(gx * gx + gy * gy + gz * gz);
    c.flops(10);
    return 0.3 + 0.7 * std::min(1.0, gm / 200.0);
}

double
Volrend::castRay(rt::ProcCtx& c, double ox, double oy, double oz,
                 double dx, double dy, double dz,
                 std::uint64_t& samples)
{
    double color = 0.0, alpha = 0.0;
    double tmax = 3.0 * n_;
    double t = 0.0;
    while (t < tmax && alpha < cfg_.cutoff) {
        double x = ox + dx * t, y = oy + dy * t, z = oz + dz * t;
        if (x < -1 || y < -1 || z < -1 || x > n_ || y > n_ || z > n_) {
            t += cfg_.step;
            continue;
        }
        // Octree space leaping: find the deepest fully-transparent
        // pyramid node containing this sample and jump past it.
        if (cfg_.useOctree) {
            int xi = std::clamp(static_cast<int>(x), 0, n_ - 1);
            int yi = std::clamp(static_cast<int>(y), 0, n_ - 1);
            int zi = std::clamp(static_cast<int>(z), 0, n_ - 1);
            int skip_level = 0;
            for (int l = pyrLevels_; l >= 1; --l) {
                long m = n_ >> l;
                long node = ((long(zi) >> l) * m + (long(yi) >> l)) * m +
                            (long(xi) >> l);
                if (pyramid_.ld(pyrOffset_[l] + node) <= 0.0) {
                    skip_level = l;
                    break;
                }
            }
            c.work(pyrLevels_);
            if (skip_level > 0) {
                // Advance to the exit of the transparent block: the
                // earliest crossing of any of its three far faces.
                int bs = 1 << skip_level;
                double texit = 1e30;
                for (int d2 = 0; d2 < 3; ++d2) {
                    double dir = d2 == 0 ? dx : (d2 == 1 ? dy : dz);
                    double pos = d2 == 0 ? x : (d2 == 1 ? y : z);
                    if (std::abs(dir) < 1e-12)
                        continue;
                    double lo = std::floor(pos / bs) * bs;
                    double edge = dir > 0 ? lo + bs : lo;
                    texit = std::min(texit, t + (edge - pos) / dir);
                }
                // Land on the global sampling lattice (multiples of
                // step) so leaping never changes which samples are
                // taken -- only skips provably transparent ones.
                double tn = cfg_.step *
                            std::ceil((texit + 1e-9) / cfg_.step);
                t = std::max(tn, t + cfg_.step);
                continue;
            }
        }
        ++samples;
        double a = sampleOpacity(c, x, y, z) *
                   std::min(1.0, cfg_.step);
        if (a > 1e-4) {
            double s = shade(c, x, y, z);
            color += (1.0 - alpha) * a * s;
            alpha += (1.0 - alpha) * a;
            c.flops(6);
        }
        t += cfg_.step;
    }
    return color;
}

void
Volrend::renderTile(rt::ProcCtx& c, int tileIdx, int frame)
{
    (void)frame;
    int tilesX = (cfg_.width + cfg_.tile - 1) / cfg_.tile;
    int tx = (tileIdx % tilesX) * cfg_.tile;
    int ty = (tileIdx / tilesX) * cfg_.tile;
    std::uint64_t samples = 0;
    double cc = n_ / 2.0;
    double scale = double(n_) * 1.4 / cfg_.width;
    // Parallel projection: rays along the rotated z axis.
    double dx = -viewSin_, dy = 0.0, dz = viewCos_;
    for (int py = ty; py < std::min(ty + cfg_.tile, cfg_.width); ++py) {
        for (int px = tx; px < std::min(tx + cfg_.tile, cfg_.width);
             ++px) {
            double u = (px - cfg_.width / 2.0) * scale;
            double v = (py - cfg_.width / 2.0) * scale;
            // Image plane through the volume center, rotated about y:
            // right = (cos, 0, sin), dir = (-sin, 0, cos); start 1.5
            // volume-lengths before the center.
            double ox = cc + u * viewCos_ - dx * 1.5 * n_;
            double oy = cc + v;
            double oz = cc + u * viewSin_ - dz * 1.5 * n_;
            double val =
                castRay(c, ox, oy, oz, dx, dy, dz, samples);
            img_[std::size_t(py) * cfg_.width + px] =
                std::min(1.0, val);
        }
    }
    rt::Lock::Guard g(*statLock_, c);
    samples_ += samples;
}

void
Volrend::body(rt::ProcCtx& c)
{
    computeOpacity(c);
    buildPyramid(c);
    int tilesX = (cfg_.width + cfg_.tile - 1) / cfg_.tile;
    int ntiles = tilesX * tilesX;
    for (int f = 0; f < cfg_.frames; ++f) {
        if (f == cfg_.warmupFrames && f > 0) {
            bar_->arrive(c);
            if (c.id() == 0)
                env_.startMeasurement();
            bar_->arrive(c);
        }
        if (c.id() == 0) {
            double ang = 0.3 * f;
            viewCos_ = std::cos(ang);
            viewSin_ = std::sin(ang);
        }
        bar_->arrive(c);
        for (int t = c.id(); t < ntiles; t += c.nprocs())
            tq_->push(c, c.id(), static_cast<std::uint64_t>(t));
        bar_->arrive(c);
        std::uint64_t task;
        while (tq_->get(c, c.id(), task)) {
            renderTile(c, static_cast<int>(task), f);
            tq_->done(c);
        }
        bar_->arrive(c);
    }
}

Result
Volrend::run()
{
    samples_ = 0;
    env_.run([this](rt::ProcCtx& c) { body(c); });
    Result r;
    r.samples = samples_;
    double sum = 0;
    for (std::size_t i = 0;
         i < std::size_t(cfg_.width) * cfg_.width; ++i)
        sum += img_.raw()[i] * ((i % 13) + 1);
    r.checksum = sum;
    r.valid = std::isfinite(sum);
    return r;
}

std::vector<double>
Volrend::image() const
{
    return std::vector<double>(img_.raw(),
                               img_.raw() +
                                   std::size_t(cfg_.width) * cfg_.width);
}

void
Volrend::writePpm(const std::string& path) const
{
    std::FILE* f = std::fopen(path.c_str(), "wb");
    if (!f)
        fatal("cannot open " + path);
    std::fprintf(f, "P6\n%d %d\n255\n", cfg_.width, cfg_.width);
    for (std::size_t i = 0;
         i < std::size_t(cfg_.width) * cfg_.width; ++i) {
        auto b = static_cast<unsigned char>(
            std::min(255.0, img_.raw()[i] * 255.0));
        std::fputc(b, f);
        std::fputc(b, f);
        std::fputc(b, f);
    }
    std::fclose(f);
}

} // namespace splash::apps::volrend
