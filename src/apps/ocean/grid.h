/**
 * @file
 * Block-partitioned 2-D grid with contiguous, locally-allocated
 * subgrids -- SPLASH-2 Ocean's "conceptually 2-D, physically 4-D"
 * array representation.
 *
 * A (n+2) x (n+2) grid (interior plus boundary ring) is partitioned
 * into pr x pc square-ish subgrids; each subgrid is stored
 * contiguously and homed at its owning processor, so that a
 * processor's partition never false-shares with its neighbors and all
 * interior accesses are local.  Neighbor accesses across a partition
 * edge touch the adjacent processor's subgrid, generating the
 * perimeter-proportional communication the paper describes.
 */
#ifndef SPLASH2_APPS_OCEAN_GRID_H
#define SPLASH2_APPS_OCEAN_GRID_H

#include <vector>

#include "rt/env.h"
#include "rt/shared.h"

namespace splash::apps::ocean {

/** pr x pc processor grid factorization with pr <= pc. */
struct ProcGrid
{
    int pr = 1;
    int pc = 1;

    static ProcGrid
    forProcs(int p)
    {
        ProcGrid g;
        g.pr = 1;
        while (g.pr * 2 * g.pr * 2 <= p * 2)
            g.pr *= 2;
        while (p % g.pr != 0)
            g.pr /= 2;
        g.pc = p / g.pr;
        return g;
    }
};

class Grid
{
  public:
    /** @param dim full edge length including the boundary ring. */
    Grid(rt::Env& env, int dim, const ProcGrid& pg)
        : dim_(dim), pg_(pg), a_(env, std::size_t(dim) * dim),
          rowBlock_(dim), rowOff_(dim), colBlock_(dim), colOff_(dim),
          blockBase_(std::size_t(pg.pr) * pg.pc),
          blockCols_(std::size_t(pg.pr) * pg.pc)
    {
        std::vector<int> rstart = splits(dim, pg_.pr);
        std::vector<int> cstart = splits(dim, pg_.pc);
        std::size_t base = 0;
        for (int br = 0; br < pg_.pr; ++br) {
            for (int bc = 0; bc < pg_.pc; ++bc) {
                int rows = rstart[br + 1] - rstart[br];
                int cols = cstart[bc + 1] - cstart[bc];
                int b = br * pg_.pc + bc;
                blockBase_[b] = base;
                blockCols_[b] = cols;
                a_.setHome(base, std::size_t(rows) * cols,
                           b % env.nprocs());
                base += std::size_t(rows) * cols;
            }
        }
        for (int br = 0; br < pg_.pr; ++br)
            for (int i = rstart[br]; i < rstart[br + 1]; ++i) {
                rowBlock_[i] = br;
                rowOff_[i] = i - rstart[br];
            }
        for (int bc = 0; bc < pg_.pc; ++bc)
            for (int j = cstart[bc]; j < cstart[bc + 1]; ++j) {
                colBlock_[j] = bc;
                colOff_[j] = j - cstart[bc];
            }
        rstart_ = std::move(rstart);
        cstart_ = std::move(cstart);
    }

    int dim() const { return dim_; }
    const ProcGrid& procGrid() const { return pg_; }

    /** Instrumented element access. */
    double ld(int i, int j) const { return a_.ld(flat(i, j)); }
    void st(int i, int j, double v) { a_.st(flat(i, j), v); }

    /** Uninstrumented access for setup / verification. */
    double peek(int i, int j) const { return a_.raw()[flat(i, j)]; }
    void poke(int i, int j, double v) { a_.raw()[flat(i, j)] = v; }

    /** Row range [first, last) of processor @p q's partition. */
    int rowFirst(int q) const { return rstart_[q / pg_.pc]; }
    int rowLast(int q) const { return rstart_[q / pg_.pc + 1]; }
    int colFirst(int q) const { return cstart_[q % pg_.pc]; }
    int colLast(int q) const { return cstart_[q % pg_.pc + 1]; }

  private:
    static std::vector<int>
    splits(int total, int parts)
    {
        std::vector<int> s(parts + 1);
        for (int i = 0; i <= parts; ++i)
            s[i] = static_cast<int>(std::int64_t(total) * i / parts);
        return s;
    }

    std::size_t
    flat(int i, int j) const
    {
        int b = rowBlock_[i] * pg_.pc + colBlock_[j];
        return blockBase_[b] +
               std::size_t(rowOff_[i]) * blockCols_[b] + colOff_[j];
    }

    int dim_;
    ProcGrid pg_;
    rt::SharedArray<double> a_;
    std::vector<int> rowBlock_, rowOff_, colBlock_, colOff_;
    std::vector<std::size_t> blockBase_;
    std::vector<std::size_t> blockCols_;
    std::vector<int> rstart_, cstart_;
};

} // namespace splash::apps::ocean

#endif // SPLASH2_APPS_OCEAN_GRID_H
