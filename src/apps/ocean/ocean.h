/**
 * @file
 * Ocean: large-scale ocean movement simulation based on eddy and
 * boundary currents, in the improved SPLASH-2 formulation:
 *
 *  - grids are partitioned into square-like subgrids (better
 *    communication-to-computation ratio than column strips),
 *  - every subgrid is allocated contiguously and locally (Grid),
 *  - the elliptic equations are solved with a red-black Gauss-Seidel
 *    multigrid solver rather than SOR.
 *
 * The physics is a reduced barotropic-vorticity style model: each
 * time-step streams through several full-size grids (stencil and
 * element-wise phases) and performs one multigrid solve, reproducing
 * Ocean's characteristic behaviour of streaming through many grids
 * per step with nearest-neighbor communication at partition
 * perimeters.
 *
 * Paper default: 258 x 258; sim-scaled default: 66 x 66 (n = 64).
 */
#ifndef SPLASH2_APPS_OCEAN_OCEAN_H
#define SPLASH2_APPS_OCEAN_OCEAN_H

#include <memory>
#include <vector>

#include "apps/ocean/grid.h"
#include "rt/env.h"
#include "rt/shared.h"
#include "rt/sync.h"

namespace splash::apps::ocean {

struct Config
{
    int n = 64;          ///< interior grid edge (power of two)
    int steps = 2;       ///< time-steps
    /** Steps before measurement starts (paper: skip cold start). */
    int warmupSteps = 0;
    double tol = 1e-7;   ///< multigrid residual tolerance (0: fixed)
    int maxCycles = 20;  ///< V-cycle cap per solve
    double dt = 0.05;
    unsigned seed = 1234;
};

struct Result
{
    bool valid = true;
    double checksum = 0.0;
    int totalCycles = 0;  ///< V-cycles used across all solves
};

/** Parallel red-black Gauss-Seidel multigrid Poisson solver
 *  (reusable: Ocean's equation solver and a public API in itself). */
class Multigrid
{
  public:
    /** Build a hierarchy for an n x n interior (n a power of two). */
    Multigrid(rt::Env& env, int n, const ProcGrid& pg);

    /** Solve laplacian(u) = f on the unit square with homogeneous
     *  Dirichlet boundaries. @p u and @p f are level-0 grids owned by
     *  the caller. Returns the number of V-cycles used (call from all
     *  team members; collective). */
    int solve(rt::ProcCtx& c, Grid& u, Grid& f, double tol,
              int max_cycles);

    /** Current residual L2 norm (collective). */
    double residualNorm(rt::ProcCtx& c, Grid& u, Grid& f);

  private:
    void relax(rt::ProcCtx& c, Grid& u, Grid& f, int level, int sweeps);
    void restrictResidual(rt::ProcCtx& c, Grid& u, Grid& f, int level);
    void prolongCorrect(rt::ProcCtx& c, Grid& u, int level);
    void vcycle(rt::ProcCtx& c, Grid& u, Grid& f, int level);
    double reduceSum(rt::ProcCtx& c, double local);
    void zero(rt::ProcCtx& c, Grid& g, int level);

    rt::Env& env_;
    int n_;
    int levels_;
    ProcGrid pg_;
    std::vector<std::unique_ptr<Grid>> uh_, fh_;  ///< coarse hierarchies
    std::vector<double> h2_;                      ///< grid spacing^2
    std::unique_ptr<rt::Barrier> bar_;
    std::unique_ptr<rt::Lock> redLock_;
    rt::SharedVar<double> acc_;
};

class Ocean
{
  public:
    Ocean(rt::Env& env, const Config& cfg);

    Result run();

    /** Solver access for tests / examples. */
    Multigrid& solver() { return *mg_; }
    Grid& psi1() { return *psi1_; }

  private:
    void body(rt::ProcCtx& c);
    void timestep(rt::ProcCtx& c);

    rt::Env& env_;
    Config cfg_;
    ProcGrid pg_;
    /** State grids: two stream functions at two time levels, their
     *  vorticities, the elliptic solutions, and scratch -- mirroring
     *  Ocean's many-grid streaming behaviour. */
    std::unique_ptr<Grid> psi1_, psi2_, psim1_, psim2_, psib_, psib2_,
        vort1_, vort2_, gamma_, tmp_;
    std::unique_ptr<Multigrid> mg_;
    std::unique_ptr<rt::Barrier> bar_;
    int cycles_ = 0;
};

} // namespace splash::apps::ocean

#endif // SPLASH2_APPS_OCEAN_OCEAN_H
