#include "apps/ocean/ocean.h"

#include <algorithm>
#include <cmath>

#include "base/log.h"
#include "base/rng.h"

namespace splash::apps::ocean {

// ---------------------------------------------------------------------
// Multigrid
// ---------------------------------------------------------------------

Multigrid::Multigrid(rt::Env& env, int n, const ProcGrid& pg)
    : env_(env), n_(n), pg_(pg), acc_(env, 0.0)
{
    if (!isPow2(n) || n < 4)
        fatal("Multigrid: n must be a power of two >= 4");
    levels_ = 0;
    for (int m = n; m >= 4; m /= 2)
        ++levels_;
    // Hierarchy grids for levels 1..levels_-1 (level 0 grids are the
    // caller's); u and f per level plus spacing.
    uh_.resize(levels_);
    fh_.resize(levels_);
    h2_.resize(levels_);
    for (int l = 1; l < levels_; ++l) {
        int m = n >> l;
        uh_[l] = std::make_unique<Grid>(env, m + 1, pg);
        fh_[l] = std::make_unique<Grid>(env, m + 1, pg);
    }
    for (int l = 0; l < levels_; ++l) {
        double h = 1.0 / double(n >> l);
        h2_[l] = h * h;
    }
    bar_ = std::make_unique<rt::Barrier>(env);
    redLock_ = std::make_unique<rt::Lock>(env);
}

double
Multigrid::reduceSum(rt::ProcCtx& c, double local)
{
    bar_->arrive(c);
    if (c.id() == 0)
        acc_.set(0.0);
    bar_->arrive(c);
    {
        rt::Lock::Guard g(*redLock_, c);
        *acc_ += local;
        c.flops(1);
    }
    bar_->arrive(c);
    return acc_.get();
}

namespace {

/** Interior row/col range of processor q's partition at a grid. */
struct Range
{
    int r0, r1, c0, c1;
};

Range
interior(const Grid& g, int q)
{
    // Boundary ring at indices 0 and dim-1; interior 1 .. dim-2.
    Range r;
    r.r0 = std::max(g.rowFirst(q), 1);
    r.r1 = std::min(g.rowLast(q), g.dim() - 1);
    r.c0 = std::max(g.colFirst(q), 1);
    r.c1 = std::min(g.colLast(q), g.dim() - 1);
    return r;
}

} // namespace

void
Multigrid::zero(rt::ProcCtx& c, Grid& g, int level)
{
    (void)level;
    Range r = interior(g, c.id());
    for (int i = r.r0; i < r.r1; ++i)
        for (int j = r.c0; j < r.c1; ++j)
            g.st(i, j, 0.0);
}

void
Multigrid::relax(rt::ProcCtx& c, Grid& u, Grid& f, int level, int sweeps)
{
    Range r = interior(u, c.id());
    double h2 = h2_[level];
    for (int s = 0; s < sweeps; ++s) {
        for (int color = 0; color < 2; ++color) {
            for (int i = r.r0; i < r.r1; ++i) {
                int jstart = r.c0 + ((i + r.c0) % 2 == color ? 0 : 1);
                for (int j = jstart; j < r.c1; j += 2) {
                    double v = 0.25 * (u.ld(i - 1, j) + u.ld(i + 1, j) +
                                       u.ld(i, j - 1) + u.ld(i, j + 1) -
                                       h2 * f.ld(i, j));
                    u.st(i, j, v);
                    c.flops(6);
                }
            }
            bar_->arrive(c);
        }
    }
}

void
Multigrid::restrictResidual(rt::ProcCtx& c, Grid& u, Grid& f, int level)
{
    // Residual rho = f - laplacian(u) restricted by full weighting to
    // the coarser rhs; coarse point (I, J) corresponds to fine (2I, 2J).
    Grid& cf = *fh_[level + 1];
    Range r = interior(cf, c.id());
    double inv_h2 = 1.0 / h2_[level];
    const int nf = u.dim() - 2;  // last interior index
    auto resid = [&](int i, int j) {
        // The residual vanishes on the Dirichlet boundary ring.
        if (i < 1 || i > nf || j < 1 || j > nf)
            return 0.0;
        double lap = (u.ld(i - 1, j) + u.ld(i + 1, j) + u.ld(i, j - 1) +
                      u.ld(i, j + 1) - 4.0 * u.ld(i, j)) *
                     inv_h2;
        c.flops(7);
        return f.ld(i, j) - lap;
    };
    for (int ci = r.r0; ci < r.r1; ++ci) {
        for (int cj = r.c0; cj < r.c1; ++cj) {
            int i = 2 * ci, j = 2 * cj;
            double v = 0.25 * resid(i, j) +
                       0.125 * (resid(i - 1, j) + resid(i + 1, j) +
                                resid(i, j - 1) + resid(i, j + 1)) +
                       0.0625 * (resid(i - 1, j - 1) + resid(i - 1, j + 1) +
                                 resid(i + 1, j - 1) + resid(i + 1, j + 1));
            cf.st(ci, cj, v);
            c.flops(12);
        }
    }
    bar_->arrive(c);
}

void
Multigrid::prolongCorrect(rt::ProcCtx& c, Grid& u, int level)
{
    // Bilinear interpolation of the coarse correction onto the fine
    // grid; fine (i, j) lies among coarse (i/2, j/2) neighbors.
    Grid& cu = *uh_[level + 1];
    Range r = interior(u, c.id());
    for (int i = r.r0; i < r.r1; ++i) {
        for (int j = r.c0; j < r.c1; ++j) {
            int ci = i / 2, cj = j / 2;
            double v;
            if (i % 2 == 0 && j % 2 == 0) {
                v = cu.ld(ci, cj);
            } else if (i % 2 == 0) {
                v = 0.5 * (cu.ld(ci, cj) + cu.ld(ci, cj + 1));
                c.flops(2);
            } else if (j % 2 == 0) {
                v = 0.5 * (cu.ld(ci, cj) + cu.ld(ci + 1, cj));
                c.flops(2);
            } else {
                v = 0.25 * (cu.ld(ci, cj) + cu.ld(ci, cj + 1) +
                            cu.ld(ci + 1, cj) + cu.ld(ci + 1, cj + 1));
                c.flops(4);
            }
            u.st(i, j, u.ld(i, j) + v);
            c.flops(1);
        }
    }
    bar_->arrive(c);
}

void
Multigrid::vcycle(rt::ProcCtx& c, Grid& u, Grid& f, int level)
{
    if (level == levels_ - 1) {
        relax(c, u, f, level, 10);
        return;
    }
    relax(c, u, f, level, 2);
    restrictResidual(c, u, f, level);
    zero(c, *uh_[level + 1], level + 1);
    bar_->arrive(c);
    vcycle(c, *uh_[level + 1], *fh_[level + 1], level + 1);
    prolongCorrect(c, u, level);
    relax(c, u, f, level, 1);
}

double
Multigrid::residualNorm(rt::ProcCtx& c, Grid& u, Grid& f)
{
    Range r = interior(u, c.id());
    double inv_h2 = 1.0 / h2_[0];
    double local = 0.0;
    for (int i = r.r0; i < r.r1; ++i) {
        for (int j = r.c0; j < r.c1; ++j) {
            double lap = (u.ld(i - 1, j) + u.ld(i + 1, j) +
                          u.ld(i, j - 1) + u.ld(i, j + 1) -
                          4.0 * u.ld(i, j)) *
                         inv_h2;
            double rr = f.ld(i, j) - lap;
            local += rr * rr;
            c.flops(10);
        }
    }
    double total = reduceSum(c, local);
    double pts = double(n_ - 1) * (n_ - 1);
    return std::sqrt(total / pts);
}

int
Multigrid::solve(rt::ProcCtx& c, Grid& u, Grid& f, double tol,
                 int max_cycles)
{
    int cycles = 0;
    for (; cycles < max_cycles; ++cycles) {
        vcycle(c, u, f, 0);
        if (tol > 0.0) {
            if (residualNorm(c, u, f) < tol)
                return cycles + 1;
        }
    }
    return cycles;
}

// ---------------------------------------------------------------------
// Ocean
// ---------------------------------------------------------------------

Ocean::Ocean(rt::Env& env, const Config& cfg)
    : env_(env), cfg_(cfg), pg_(ProcGrid::forProcs(env.nprocs()))
{
    int d = cfg_.n + 1;
    psi1_ = std::make_unique<Grid>(env, d, pg_);
    psi2_ = std::make_unique<Grid>(env, d, pg_);
    psim1_ = std::make_unique<Grid>(env, d, pg_);
    psim2_ = std::make_unique<Grid>(env, d, pg_);
    psib_ = std::make_unique<Grid>(env, d, pg_);
    psib2_ = std::make_unique<Grid>(env, d, pg_);
    vort1_ = std::make_unique<Grid>(env, d, pg_);
    vort2_ = std::make_unique<Grid>(env, d, pg_);
    gamma_ = std::make_unique<Grid>(env, d, pg_);
    tmp_ = std::make_unique<Grid>(env, d, pg_);
    mg_ = std::make_unique<Multigrid>(env, cfg_.n, pg_);
    bar_ = std::make_unique<rt::Barrier>(env);

    // Smooth deterministic initial eddy field (zero on boundaries).
    Rng rng(cfg_.seed);
    double a1 = rng.uniform(0.5, 1.5), a2 = rng.uniform(0.5, 1.5);
    for (int i = 1; i < cfg_.n; ++i) {
        for (int j = 1; j < cfg_.n; ++j) {
            double x = double(i) / cfg_.n;
            double y = double(j) / cfg_.n;
            double pi = 3.14159265358979323846;
            psi1_->poke(i, j, a1 * std::sin(pi * x) * std::sin(pi * y));
            psi2_->poke(i, j,
                        a2 * std::sin(2 * pi * x) * std::sin(pi * y));
            psim1_->poke(i, j, psi1_->peek(i, j));
            psim2_->poke(i, j, psi2_->peek(i, j));
        }
    }
}

Result
Ocean::run()
{
    env_.run([this](rt::ProcCtx& c) { body(c); });
    Result r;
    r.totalCycles = cycles_;
    double sum = 0.0;
    for (int i = 1; i < cfg_.n; ++i)
        for (int j = 1; j < cfg_.n; ++j)
            sum += psi1_->peek(i, j) + 0.5 * psi2_->peek(i, j);
    r.checksum = sum;
    r.valid = std::isfinite(sum);
    return r;
}

void
Ocean::body(rt::ProcCtx& c)
{
    for (int s = 0; s < cfg_.steps; ++s) {
        if (s == cfg_.warmupSteps && s > 0) {
            bar_->arrive(c);
            if (c.id() == 0)
                env_.startMeasurement();
            bar_->arrive(c);
        }
        timestep(c);
    }
}

void
Ocean::timestep(rt::ProcCtx& c)
{
    const int q = c.id();
    Range r = interior(*psi1_, q);
    const double h2 = 1.0 / (double(cfg_.n) * cfg_.n);
    const double beta = 0.8;

    // Phase 1a/1b: vorticities of both stream functions (two full
    // stencil streams, as Ocean's curl computations).
    for (Grid* io : {psi1_.get(), psi2_.get()}) {
        Grid* out = io == psi1_.get() ? vort1_.get() : vort2_.get();
        for (int i = r.r0; i < r.r1; ++i) {
            for (int j = r.c0; j < r.c1; ++j) {
                double lap = io->ld(i - 1, j) + io->ld(i + 1, j) +
                             io->ld(i, j - 1) + io->ld(i, j + 1) -
                             4.0 * io->ld(i, j);
                out->st(i, j, lap / h2);
                c.flops(6);
            }
        }
        bar_->arrive(c);
    }

    // Phase 1c: vorticity-like source gamma combining both fields.
    for (int i = r.r0; i < r.r1; ++i) {
        for (int j = r.c0; j < r.c1; ++j) {
            double ddx2 = psi2_->ld(i + 1, j) - psi2_->ld(i - 1, j);
            gamma_->st(i, j,
                       (vort1_->ld(i, j) + beta * ddx2 / h2) * 0.01);
            c.flops(5);
        }
    }
    bar_->arrive(c);

    // Phase 2a/2b: two elliptic solves (Ocean solves one equation per
    // stream function): laplacian(psib) = gamma, laplacian(psib2) =
    // vort2.
    for (int i = r.r0; i < r.r1; ++i) {
        for (int j = r.c0; j < r.c1; ++j) {
            psib_->st(i, j, 0.0);
            psib2_->st(i, j, 0.0);
        }
    }
    bar_->arrive(c);
    int used = mg_->solve(c, *psib_, *gamma_, cfg_.tol, cfg_.maxCycles);
    used += mg_->solve(c, *psib2_, *vort2_, cfg_.tol, cfg_.maxCycles);
    if (q == 0)
        cycles_ += used;

    // Phase 3a: time-averaging with the previous time level
    // (element-wise streams over four grids).
    for (int i = r.r0; i < r.r1; ++i) {
        for (int j = r.c0; j < r.c1; ++j) {
            double a1 = 0.75 * psi1_->ld(i, j) +
                        0.25 * psim1_->ld(i, j);
            double a2 = 0.75 * psi2_->ld(i, j) +
                        0.25 * psim2_->ld(i, j);
            psim1_->st(i, j, psi1_->ld(i, j));
            psim2_->st(i, j, psi2_->ld(i, j));
            tmp_->st(i, j, a1 - a2);
            c.flops(8);
        }
    }
    bar_->arrive(c);

    // Phase 3b: stream-function update from the elliptic solutions.
    for (int i = r.r0; i < r.r1; ++i) {
        for (int j = r.c0; j < r.c1; ++j) {
            double v = 0.9 * psi2_->ld(i, j) +
                       cfg_.dt * (psib_->ld(i, j) +
                                  0.5 * psib2_->ld(i, j)) +
                       0.1 * psi1_->ld(i, j);
            psi2_->st(i, j, v);
            c.flops(8);
        }
    }
    bar_->arrive(c);

    // Phase 4: diffusion of psi1 using a laplacian of psi2 via tmp.
    for (int i = r.r0; i < r.r1; ++i) {
        for (int j = r.c0; j < r.c1; ++j) {
            double lap2 = psi2_->ld(i - 1, j) + psi2_->ld(i + 1, j) +
                          psi2_->ld(i, j - 1) + psi2_->ld(i, j + 1) -
                          4.0 * psi2_->ld(i, j);
            tmp_->st(i, j, lap2);
            c.flops(5);
        }
    }
    bar_->arrive(c);
    for (int i = r.r0; i < r.r1; ++i) {
        for (int j = r.c0; j < r.c1; ++j) {
            psi1_->st(i, j,
                      psi1_->ld(i, j) + cfg_.dt * 0.1 * tmp_->ld(i, j));
            c.flops(3);
        }
    }
    bar_->arrive(c);
}

} // namespace splash::apps::ocean
