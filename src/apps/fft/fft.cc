#include "apps/fft/fft.h"

#include <algorithm>
#include <cmath>

#include "base/log.h"
#include "base/rng.h"

namespace splash::apps::fft {

namespace {

constexpr double kPi = 3.14159265358979323846;

/** Transpose tile edge: 4 complex values = one 64 B cache line. */
constexpr int kTile = 4;

} // namespace

Fft::Fft(rt::Env& env, const Config& cfg)
    : env_(env), cfg_(cfg)
{
    if (cfg_.log2n < 4 || cfg_.log2n % 2 != 0)
        fatal("FFT: log2n must be even and >= 4");
    n_ = 1L << cfg_.log2n;
    root_ = 1 << (cfg_.log2n / 2);
    int p = env.nprocs();
    if (root_ % p != 0)
        fatal("FFT: sqrt(n) must be a multiple of the processor count");
    rowsPerProc_ = root_ / p;

    x_ = rt::SharedArray<Complex>(env, n_);
    trans_ = rt::SharedArray<Complex>(env, n_);
    umat_ = rt::SharedArray<Complex>(env, n_);
    bar_ = std::make_unique<rt::Barrier>(env);

    // Band placement: processor q's rows live in its local memory.
    for (int q = 0; q < p; ++q) {
        std::size_t first = std::size_t(q) * rowsPerProc_ * root_;
        std::size_t count = std::size_t(rowsPerProc_) * root_;
        x_.setHome(first, count, q);
        trans_.setHome(first, count, q);
        umat_.setHome(first, count, q);
    }

    // Deterministic input and the roots-of-unity matrix
    // U[j][k] = w^(j*k), w = exp(direction * 2*pi*i / n).
    Rng rng(cfg_.seed);
    for (long i = 0; i < n_; ++i) {
        x_.raw()[i].re = rng.uniform(-1.0, 1.0);
        x_.raw()[i].im = rng.uniform(-1.0, 1.0);
    }
    for (int j = 0; j < root_; ++j) {
        for (int k = 0; k < root_; ++k) {
            double ang = cfg_.direction * 2.0 * kPi *
                         double(std::int64_t(j) * k) / double(n_);
            umat_.raw()[std::size_t(j) * root_ + k] = {std::cos(ang),
                                                       std::sin(ang)};
        }
    }
}

void
Fft::setInput(const std::vector<Complex>& src)
{
    ensure(static_cast<long>(src.size()) == n_, "FFT input size mismatch");
    for (long i = 0; i < n_; ++i)
        x_.raw()[i] = src[i];
}

Result
Fft::run()
{
    // Which matrix ends up holding the result is fixed by the config;
    // set it here once rather than racily from every proc in body().
    out_ = cfg_.lastTranspose ? &trans_ : &x_;
    env_.run([this](rt::ProcCtx& c) { body(c); });
    Result r;
    double sum = 0.0;
    const Complex* o = out_->raw();
    for (long i = 0; i < n_; ++i)
        sum += o[i].re * 0.5 + o[i].im * 0.25;
    r.checksum = sum;
    return r;
}

std::vector<Complex>
Fft::output() const
{
    // Before the first run() the "output" is the input matrix.
    const Complex* o = out_ ? out_->raw() : x_.raw();
    return std::vector<Complex>(o, o + n_);
}

void
Fft::body(rt::ProcCtx& c)
{
    // Six-step algorithm; measurement starts right away (the kernel is
    // measured from parallel-phase start, like the paper).
    transpose(c, x_, trans_);       // 1: T = X^t
    bar_->arrive(c);
    rowFfts(c, trans_);             // 2: root-point FFTs on T's rows
    twiddle(c, trans_);             // 3: T[j][k] *= w^(j*k)
    bar_->arrive(c);
    transpose(c, trans_, x_);       // 4: X = T^t
    bar_->arrive(c);
    rowFfts(c, x_);                 // 5: root-point FFTs on X's rows
    if (cfg_.lastTranspose) {
        bar_->arrive(c);
        transpose(c, x_, trans_);   // 6: T = X^t (natural order)
    }
    bar_->arrive(c);
    if (cfg_.direction > 0) {
        // Inverse transform: scale by 1/n, each processor on its band.
        const double inv = 1.0 / double(n_);
        std::size_t first = std::size_t(c.id()) * rowsPerProc_ * root_;
        std::size_t last = first + std::size_t(rowsPerProc_) * root_;
        for (std::size_t i = first; i < last; ++i) {
            Complex v = out_->ld(i);
            out_->st(i, {v.re * inv, v.im * inv});
            c.flops(2);
        }
        bar_->arrive(c);
    }
}

void
Fft::transpose(rt::ProcCtx& c, rt::SharedArray<Complex>& src,
               rt::SharedArray<Complex>& dst)
{
    const int p = c.nprocs();
    const int me = c.id();
    const int rpp = rowsPerProc_;
    // Staggered: first the submatrix owned by me+1, then me+2, ...,
    // finishing with the local submatrix.
    for (int s = 1; s <= p; ++s) {
        int peer = (me + s) % p;
        int r0 = me * rpp;    // my destination rows
        int c0 = peer * rpp;  // peer's source rows = my dest columns
        for (int rt_ = 0; rt_ < rpp; rt_ += kTile) {
            for (int ct = 0; ct < rpp; ct += kTile) {
                int ilim = std::min(kTile, rpp - rt_);
                int jlim = std::min(kTile, rpp - ct);
                for (int i = 0; i < ilim; ++i) {
                    for (int j = 0; j < jlim; ++j) {
                        int r = r0 + rt_ + i;
                        int col = c0 + ct + j;
                        Complex v =
                            src.ld(std::size_t(col) * root_ + r);
                        dst.st(std::size_t(r) * root_ + col, v);
                        c.work(2);  // index arithmetic
                    }
                }
            }
        }
    }
}

void
Fft::rowFfts(rt::ProcCtx& c, rt::SharedArray<Complex>& m)
{
    const int r = root_;
    const int me = c.id();

    // Private twiddle table for the root-point FFTs (same for every
    // row): w^k for k < r/2.
    std::vector<Complex> w(r / 2);
    for (int k = 0; k < r / 2; ++k) {
        double ang = cfg_.direction * 2.0 * kPi * k / double(r);
        w[k] = {std::cos(ang), std::sin(ang)};
    }
    c.work(std::uint64_t(r));  // table setup cost

    for (int row = me * rowsPerProc_; row < (me + 1) * rowsPerProc_;
         ++row) {
        std::size_t base = std::size_t(row) * r;
        // Bit-reversal permutation, in place on the shared row.
        for (int i = 1, j = 0; i < r; ++i) {
            int bit = r >> 1;
            for (; j & bit; bit >>= 1)
                j ^= bit;
            j |= bit;
            if (i < j) {
                Complex a = m.ld(base + i);
                Complex b = m.ld(base + j);
                m.st(base + i, b);
                m.st(base + j, a);
            }
            c.work(3);
        }
        // Iterative radix-2 butterflies on the shared row.
        for (int len = 2; len <= r; len <<= 1) {
            int half = len >> 1;
            int step = r / len;
            for (int i = 0; i < r; i += len) {
                for (int k = 0; k < half; ++k) {
                    const Complex& tw = w[std::size_t(k) * step];
                    Complex a = m.ld(base + i + k);
                    Complex b = m.ld(base + i + k + half);
                    Complex t{b.re * tw.re - b.im * tw.im,
                              b.re * tw.im + b.im * tw.re};
                    m.st(base + i + k, {a.re + t.re, a.im + t.im});
                    m.st(base + i + k + half,
                         {a.re - t.re, a.im - t.im});
                    c.flops(10);
                }
            }
        }
    }
}

void
Fft::twiddle(rt::ProcCtx& c, rt::SharedArray<Complex>& m)
{
    const int me = c.id();
    // After step 1 the matrix is indexed [j2][k1]; multiply elementwise
    // by U[j2][k1], which lives in the same band (fully local).
    for (int row = me * rowsPerProc_; row < (me + 1) * rowsPerProc_;
         ++row) {
        std::size_t base = std::size_t(row) * root_;
        for (int k = 0; k < root_; ++k) {
            Complex v = m.ld(base + k);
            Complex u = umat_.ld(base + k);
            m.st(base + k, {v.re * u.re - v.im * u.im,
                            v.re * u.im + v.im * u.re});
            c.flops(6);
        }
    }
}

} // namespace splash::apps::fft
