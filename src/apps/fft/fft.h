/**
 * @file
 * FFT kernel: complex 1-D radix-sqrt(n) six-step FFT (Bailey),
 * optimized to minimize interprocessor communication, as in SPLASH-2.
 *
 * The n = root*root complex points and the n roots-of-unity are both
 * organized as root x root matrices partitioned into bands of
 * contiguous rows, one band per processor, allocated in its local
 * memory.  Communication happens in three blocked matrix-transpose
 * steps with all-to-all traffic; submatrices are transposed in a
 * staggered order (processor i starts with processor i+1's submatrix)
 * to avoid hotspots.
 *
 * Paper default: 64 K points (log2n = 16); suite sim-scaled default:
 * 16 K points (log2n = 14).
 */
#ifndef SPLASH2_APPS_FFT_FFT_H
#define SPLASH2_APPS_FFT_FFT_H

#include <memory>
#include <vector>

#include "rt/env.h"
#include "rt/shared.h"
#include "rt/sync.h"

namespace splash::apps::fft {

/** Complex value stored in shared matrices (16 bytes). */
struct Complex
{
    double re = 0.0;
    double im = 0.0;
};

struct Config
{
    /** log2 of the total point count; must be even and >= 4. */
    int log2n = 14;
    /** Perform the final (optional in SPLASH-2) transpose so the
     *  result is in natural order. */
    bool lastTranspose = true;
    /** -1 for the forward transform, +1 for the inverse. */
    int direction = -1;
    unsigned seed = 1234;
};

struct Result
{
    bool valid = true;
    double checksum = 0.0;
};

/** The FFT problem instance: owns the shared matrices. */
class Fft
{
  public:
    /** Allocate and initialize (uninstrumented) the input with
     *  deterministic pseudo-random data. */
    Fft(rt::Env& env, const Config& cfg);

    /** Load input data from @p src (size n()); uninstrumented. */
    void setInput(const std::vector<Complex>& src);

    /** Run the parallel transform; call from outside a team. On return
     *  the result is in output(). */
    Result run();

    long n() const { return n_; }
    int root() const { return root_; }

    /** Copy of the current output data (uninstrumented). */
    std::vector<Complex> output() const;

  private:
    void body(rt::ProcCtx& c);
    void transpose(rt::ProcCtx& c, rt::SharedArray<Complex>& src,
                   rt::SharedArray<Complex>& dst);
    void rowFfts(rt::ProcCtx& c, rt::SharedArray<Complex>& m);
    void twiddle(rt::ProcCtx& c, rt::SharedArray<Complex>& m);

    rt::Env& env_;
    Config cfg_;
    long n_;
    int root_;
    int rowsPerProc_;
    rt::SharedArray<Complex> x_;      ///< data matrix
    rt::SharedArray<Complex> trans_;  ///< transpose scratch / result
    rt::SharedArray<Complex> umat_;   ///< roots-of-unity matrix
    std::unique_ptr<rt::Barrier> bar_;
    /** Which matrix currently holds the result. */
    rt::SharedArray<Complex>* out_ = nullptr;
};

} // namespace splash::apps::fft

#endif // SPLASH2_APPS_FFT_FFT_H
