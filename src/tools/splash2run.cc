/**
 * @file
 * splash2run -- run any SPLASH-2 program under any machine
 * configuration and print the full characterization: execution
 * profile, per-processor balance, miss decomposition, and traffic
 * breakdown. The general-purpose driver behind the per-figure benches.
 *
 * Usage:
 *   splash2run --app fft [--procs 32] [--scale 1.0] [--n 0]
 *              [--iters 0] [--aux 0] [--cachekb 1024] [--assoc 4]
 *              [--line 64] [--nohints 1] [--nomem 1] [--seed 1234]
 *              [--protocol msi|mesi|moesi|dragon]
 *              [--interconnect directory|bus]
 *              [--backend fiber|thread] [--quantum 250]
 *              [--delivery batched|direct] [--jobs N]
 *              [--race off|word|line] [--csv FILE]
 *              [--sweep exact|model|both]
 *              [--record DIR | --replay DIR]
 *
 *   splash2run --app all       # whole suite, one job per program
 *   splash2run --list          # enumerate programs
 *   splash2run --app fft --inject all [--seed N]
 *                              # fault-injection harness: seed protocol
 *                              # corruptions, prove the checker fires
 *   splash2run --app fft --race-inject all [--seed N]
 *                              # race-injection harness: drop one sync
 *                              # edge, prove the race detector fires
 *
 * --record writes each executed (app, P, problem, quantum) reference
 * stream into a compact trace store (sim/tracestore.h) alongside the
 * live characterization; --replay re-runs any later characterization
 * of the same identity from that store with zero fiber execution,
 * byte-identical output (an already-recorded identity is skipped, so
 * recording is idempotent).
 *
 * --race runs the FastTrack happens-before detector over the
 * reference stream alongside the characterization.  Word granularity
 * is the verification mode: any report is a true data race and the
 * exit status is 1 (CI runs the whole suite this way).  Line
 * granularity is the false-sharing census of the paper's Figs. 8-9
 * discussion: conflicts are informational (exit 0) and --csv writes
 * the per-app census rows (results/races.csv).  Either way the
 * characterization statistics are byte-identical to --race off.
 *
 * --protocol selects the coherence protocol of the simulated machine;
 * --protocol list prints the registered zoo.  --interconnect selects
 * the interconnect organization: the default directory CC-NUMA
 * machine, or a snoopy bus where misses broadcast and every cache
 * answers from its tag array (same protocol descriptors, no sharer
 * vectors, bus occupancy accounted instead of packet bytes).  Those
 * two are the engine flags that change results: they change the
 * machine.  --backend selects the
 * interleaver's execution mechanism (stackful fibers on one host
 * thread, or one parked host thread per simulated processor);
 * --quantum sets the instrumentation events per scheduling slice;
 * --delivery selects how references reach the simulator (ring batches
 * drained at switch boundaries, or a call per reference); --jobs
 * schedules independent programs across host cores.  Those change
 * simulation speed only -- output bytes are bit-identical across
 * backends, quanta, delivery shapes, and job counts.
 */
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <utility>
#include <vector>

#include "harness/cli.h"
#include "harness/runner.h"
#include "harness/workingset.h"
#include "sim/check.h"
#include "sim/faultinject.h"
#include "sim/grid.h"
#include "sim/racecheck.h"

using namespace splash;
using namespace splash::harness;

namespace {

void
report(const App& app, const RunStats& r, bool with_mem,
       const sim::CacheConfig& cache, bool hints, int procs,
       const AppConfig& cfg, const SimOpts& simOpts)
{
    std::printf("%s on %d processors (scale %.3g)\n",
                app.name().c_str(), procs, cfg.scale);
    if (with_mem && simOpts.interconnect == sim::Interconnect::Bus)
        std::printf("machine: %llu KB %d-way %dB-line caches, "
                    "snoopy bus %s\n",
                    static_cast<unsigned long long>(cache.size >> 10),
                    cache.assoc, cache.lineSize,
                    sim::protocol(simOpts.protocol).display);
    else if (with_mem)
        std::printf("machine: %llu KB %d-way %dB-line caches, "
                    "directory %s%s\n",
                    static_cast<unsigned long long>(cache.size >> 10),
                    cache.assoc, cache.lineSize,
                    sim::protocol(simOpts.protocol).display,
                    hints ? " + replacement hints" : "");
    else
        std::printf("machine: PRAM (perfect memory)\n");
    std::printf("interleaver: %s backend, quantum %llu, %s delivery\n",
                rt::backendName(simOpts.backend),
                static_cast<unsigned long long>(simOpts.quantum),
                rt::deliveryName(simOpts.delivery));

    std::printf("\n-- execution --\n");
    std::printf("valid: %s\n", r.valid ? "yes" : "NO");
    std::printf("PRAM cycles: %llu\n",
                static_cast<unsigned long long>(r.elapsed));
    std::printf("instructions: %.3f M (%.3f M flops)\n",
                r.exec.instructions() / 1e6, r.exec.flops / 1e6);
    std::printf("shared reads/writes: %.3f M / %.3f M\n",
                r.exec.reads / 1e6, r.exec.writes / 1e6);
    std::printf("sync: %llu barriers/proc, %llu locks, %llu pauses\n",
                static_cast<unsigned long long>(
                    r.perProc.empty() ? 0 : r.perProc[0].barriers),
                static_cast<unsigned long long>([&] {
                    std::uint64_t t = 0;
                    for (auto& p : r.perProc)
                        t += p.locks;
                    return t;
                }()),
                static_cast<unsigned long long>([&] {
                    std::uint64_t t = 0;
                    for (auto& p : r.perProc)
                        t += p.pauses;
                    return t;
                }()));

    // Load balance.
    Tick max_t = 0, min_t = ~Tick{0};
    double sync_pct = 0;
    for (const auto& p : r.perProc) {
        max_t = std::max(max_t, p.elapsed());
        min_t = std::min(min_t, p.elapsed());
        sync_pct += p.elapsed()
                        ? 100.0 * double(p.syncWait()) /
                              double(p.elapsed())
                        : 0.0;
    }
    std::printf("balance: min/max processor time %.3f, avg sync %.1f%%\n",
                max_t ? double(min_t) / double(max_t) : 0.0,
                sync_pct / procs);

    if (with_mem) {
        std::printf("\n-- memory system --\n");
        std::printf("references: %.3f M, miss rate %.3f%%\n",
                    r.mem.accesses() / 1e6, 100.0 * r.mem.missRate());
        auto pct = [&](std::uint64_t m) {
            return r.mem.totalMisses()
                       ? 100.0 * double(m) / double(r.mem.totalMisses())
                       : 0.0;
        };
        std::printf(
            "misses: %.1f%% cold, %.1f%% capacity, %.1f%% true-share, "
            "%.1f%% false-share (+%llu upgrades)\n",
            pct(r.mem.misses[int(sim::MissType::Cold)]),
            pct(r.mem.misses[int(sim::MissType::Capacity)]),
            pct(r.mem.misses[int(sim::MissType::TrueSharing)]),
            pct(r.mem.misses[int(sim::MissType::FalseSharing)]),
            static_cast<unsigned long long>(r.mem.upgrades));
        double den = trafficDenominator(app, r.exec);
        if (den <= 0)
            den = 1;
        if (simOpts.interconnect == sim::Interconnect::Bus)
            // Broadcast transactions have no packet decomposition;
            // occupancy of the shared wires is the traffic metric.
            std::printf("bus occupancy (cycles per %s): %.4f "
                        "(address %.4f, data %.4f; %llu "
                        "transactions)\n",
                        app.isFloatingPoint() ? "FLOP" : "instr",
                        r.mem.busCycles() / den,
                        r.mem.busAddrCycles / den,
                        r.mem.busDataCycles / den,
                        static_cast<unsigned long long>(
                            r.mem.busTransactions));
        else
            std::printf("traffic (bytes per %s): remote data %.4f "
                        "(shared %.4f, cold %.4f, capacity %.4f, "
                        "writeback %.4f), overhead %.4f, local %.4f\n",
                        app.isFloatingPoint() ? "FLOP" : "instr",
                        r.mem.remoteData() / den,
                        r.mem.remoteSharedData / den,
                        r.mem.remoteColdData / den,
                        r.mem.remoteCapacityData / den,
                        r.mem.remoteWriteback / den,
                        r.mem.remoteOverhead / den,
                        r.mem.localData / den);
        std::printf("true-sharing (inherent communication) proxy: "
                    "%.4f bytes per %s\n",
                    r.mem.trueSharedData / den,
                    app.isFloatingPoint() ? "FLOP" : "instr");
    }

    if (r.raceChecked) {
        std::printf("\n-- race detection --\n");
        std::fputs(sim::raceSummary(r.race).c_str(), stdout);
    }
}

/** One --csv row per app: the race/false-sharing census behind
 *  results/races.csv (EXPERIMENTS.md). */
void
raceCsvRow(std::FILE* f, const App& app, int procs,
           const RunStats& r)
{
    const sim::RaceOutcome& o = r.race;
    std::fprintf(
        f,
        "%s,%d,%s,%d,%llu,%llu,%llu,%llu,%llu,%llu,%llu,%llu,%llu,"
        "%llu\n",
        app.name().c_str(), procs, sim::raceGranularityName(o.gran),
        o.granuleBytes, static_cast<unsigned long long>(o.races),
        static_cast<unsigned long long>(o.racyGranules),
        static_cast<unsigned long long>(o.dynamicRaces),
        static_cast<unsigned long long>(o.granulesTracked),
        static_cast<unsigned long long>(o.census.barrierArrivals),
        static_cast<unsigned long long>(o.census.barrierDepartures),
        static_cast<unsigned long long>(o.census.lockAcquires),
        static_cast<unsigned long long>(o.census.lockReleases),
        static_cast<unsigned long long>(o.census.flagSets),
        static_cast<unsigned long long>(o.census.flagWaits));
}

/** One --sweep report: the Figure-3 working-set curves of @p app from
 *  the engine(s) selected by --sweep.  In Both mode each row also
 *  carries the largest model-vs-exact absolute error across the row's
 *  operating points. */
void
reportSweep(const App& app, const WorkingSetRun& run,
            sim::SweepMode mode, int procs, int line,
            const AppConfig& cfg)
{
    const bool both = mode == sim::SweepMode::Both;
    const bool model = mode == sim::SweepMode::Model;
    std::printf("%s on %d processors (scale %.3g)\n",
                app.name().c_str(), procs, cfg.scale);
    std::printf("working-set sweep: %s engine, %d B lines%s\n",
                sim::sweepModeName(mode), line,
                run.modelFromProfile ? ", model from saved profile"
                                     : "");
    if (run.haveModel)
        std::printf("profile: %.3f M line references, %.2f%% of "
                    "all-capacity misses coherence-invalidated\n",
                    run.model.accesses() / 1e6,
                    100.0 * run.model.staleFraction());
    std::printf("\nmiss rate (%%) vs cache size and associativity%s\n",
                both ? " (exact; max |exact-model| per row)" : "");
    std::vector<std::string> cols = {"Size", "1-way", "2-way", "4-way",
                                     "full"};
    if (both)
        cols.push_back("max|err|");
    Table t(std::move(cols));
    for (std::uint64_t size : sim::fig3Sizes()) {
        std::string label = size >= (1u << 20)
                                ? std::to_string(size >> 20) + "MB"
                                : std::to_string(size >> 10) + "KB";
        std::vector<std::string> row = {label};
        double maxErr = 0.0;
        for (int assoc : sim::fig3ReportAssocs()) {
            row.push_back(fmt(
                "%.3f", 100.0 * wsMissRate(run, size, assoc, model)));
            if (both) {
                double e = wsMissRate(run, size, assoc, false) -
                           wsMissRate(run, size, assoc, true);
                maxErr = std::max(maxErr, e < 0 ? -e : e);
            }
        }
        if (both)
            row.push_back(fmt("%.4f", maxErr));
        t.row(row);
    }
    t.print();
}

/** Race-injection harness (--race-inject): for each requested edge
 *  kind, run @p app under the word-granularity detector to prove the
 *  baseline is race-free and count the eligible acquire edges, then
 *  re-run with one seeded edge dropped and require the detector to
 *  report a race involving the processor whose edge was elided.
 *  Mirrors the --inject protocol-corruption harness.  Returns 0 when
 *  every eligible drop was detected and attributed. */
int
runRaceInjection(App& app, int procs, const AppConfig& cfg,
                 const SimOpts& simOpts, const std::string& which,
                 std::uint64_t seed)
{
    std::vector<sim::RaceFault> todo;
    if (which == "all") {
        for (int k = 0; k < sim::kNumRaceFaults; ++k)
            todo.push_back(static_cast<sim::RaceFault>(k));
    } else {
        sim::RaceFault k;
        if (!sim::parseRaceFault(which, &k)) {
            std::fprintf(stderr, "unknown --race-inject '%s' (all",
                         which.c_str());
            for (int i = 0; i < sim::kNumRaceFaults; ++i)
                std::fprintf(stderr, ", %s",
                             sim::raceFaultName(
                                 static_cast<sim::RaceFault>(i)));
            std::fprintf(stderr, ")\n");
            return 2;
        }
        todo.push_back(k);
    }

    std::printf("race injection: %s on %d processors, seed %llu\n\n",
                app.name().c_str(), procs,
                static_cast<unsigned long long>(seed));

    // Baseline run: must be race-free, and sizes the eligible-edge
    // occurrence space for every kind at once.
    sim::RaceConfig rcfg =
        raceConfigFor(sim::RaceGranularity::Word, procs, 64);
    std::uint64_t edges[sim::kNumRaceFaults] = {};
    {
        sim::RaceChecker base(rcfg);
        RunStats r = runPram(app, procs, cfg, simOpts, &base);
        if (!r.valid) {
            std::fprintf(stderr, "%s: run failed validation\n",
                         app.name().c_str());
            return 1;
        }
        if (!base.outcome().clean()) {
            std::fprintf(stderr,
                         "baseline already reports races (detector "
                         "bug?):\n%s",
                         base.summary().c_str());
            return 1;
        }
        for (int k = 0; k < sim::kNumRaceFaults; ++k)
            edges[k] = base.edgeCount(static_cast<sim::RaceFault>(k));
    }

    // Not every occurrence of an edge is load-bearing: a lock's
    // first acquire after the phase barrier is ordered by that
    // barrier anyway, and a final barrier departure orders no later
    // access.  Benign occurrences cluster (e.g. the whole first
    // force-merge sweep), so the attempts stride across the entire
    // occurrence space from a seeded origin rather than scanning
    // consecutively, bounded to keep the harness finite.
    constexpr std::uint64_t kMaxAttempts = 64;
    int missed = 0;
    for (sim::RaceFault k : todo) {
        const std::uint64_t n = edges[static_cast<int>(k)];
        if (n == 0) {
            std::printf("%-18s SKIP    no eligible edge in this "
                        "program\n",
                        sim::raceFaultName(k));
            continue;
        }
        const std::uint64_t tries = std::min(kMaxAttempts, n);
        const std::uint64_t stride = std::max<std::uint64_t>(1, n / tries);
        bool caught = false;
        bool fireFailed = false;
        std::uint64_t benign = 0;
        for (std::uint64_t t = 0; t < tries && !caught; ++t) {
            const std::uint64_t occ = (seed + t * stride) % n;
            sim::RaceChecker chk(rcfg);
            chk.dropEdge(k, occ);
            RunStats r = runPram(app, procs, cfg, simOpts, &chk);
            (void)r;  // validation may legitimately fail without sync
            if (!chk.dropFired()) {
                std::printf("%-18s MISSED  edge %llu/%llu never "
                            "reached\n",
                            sim::raceFaultName(k),
                            static_cast<unsigned long long>(occ),
                            static_cast<unsigned long long>(n));
                ++missed;
                fireFailed = true;
                break;
            }
            sim::RaceOutcome o = chk.outcome();
            const int victim = chk.droppedProc();
            const sim::RaceReport* hit = nullptr;
            for (const sim::RaceReport& rep : o.reports)
                if (rep.prev.proc == victim || rep.cur.proc == victim) {
                    hit = &rep;
                    break;
                }
            if (o.clean() || hit == nullptr) {
                ++benign;  // drop changed no outcome; next occurrence
                continue;
            }
            caught = true;
            std::printf("%-18s detected (%llu race pair%s, %llu "
                        "benign drop%s skipped)\n"
                        "    injected: dropped P%d's acquire edge "
                        "%llu of %llu\n"
                        "    caught:   %#llx (%dB granule) P%d vs "
                        "P%d\n",
                        sim::raceFaultName(k),
                        static_cast<unsigned long long>(o.races),
                        o.races == 1 ? "" : "s",
                        static_cast<unsigned long long>(benign),
                        benign == 1 ? "" : "s", victim,
                        static_cast<unsigned long long>(occ),
                        static_cast<unsigned long long>(n),
                        static_cast<unsigned long long>(hit->granule),
                        hit->bytes, hit->prev.proc, hit->cur.proc);
        }
        if (!caught && !fireFailed) {
            std::printf("%-18s MISSED  %llu dropped occurrences from "
                        "%llu, none exposed an attributed race\n",
                        sim::raceFaultName(k),
                        static_cast<unsigned long long>(tries),
                        static_cast<unsigned long long>(seed % n));
            ++missed;
        }
    }
    std::printf("\n%s\n", missed
                              ? "FAIL: detector missed dropped edges"
                              : "all dropped edges detected");
    return missed ? 1 : 0;
}

/** Fault-injection harness (--inject): for each requested fault kind,
 *  run @p app to a realistic protocol state, prove the checker is
 *  silent on it, seed the corruption, and prove the checker fires.
 *  Returns 0 when every eligible fault was detected. */
int
runInjection(App& app, int procs, const sim::CacheConfig& cache,
             bool hints, const AppConfig& cfg, const SimOpts& simOpts,
             const std::string& which, std::uint64_t seed)
{
    std::vector<sim::FaultKind> todo;
    if (which == "all") {
        for (int k = 0; k < sim::kNumFaultKinds; ++k)
            todo.push_back(static_cast<sim::FaultKind>(k));
    } else {
        sim::FaultKind k;
        if (!sim::parseFaultKind(which, &k)) {
            std::fprintf(stderr,
                         "unknown --inject '%s' (all", which.c_str());
            for (int i = 0; i < sim::kNumFaultKinds; ++i)
                std::fprintf(stderr, ", %s",
                             sim::faultKindName(
                                 static_cast<sim::FaultKind>(i)));
            std::fprintf(stderr, ")\n");
            return 2;
        }
        todo.push_back(k);
    }

    std::printf("fault injection: %s on %d processors, seed %llu%s\n\n",
                app.name().c_str(), procs,
                static_cast<unsigned long long>(seed),
                hints ? "" : " (replacement hints off)");
    int missed = 0;
    for (sim::FaultKind k : todo) {
        // Fresh simulator state per fault: injections must not compound.
        rt::Env env({rt::Mode::Sim, procs, simOpts.quantum,
                     simOpts.backend, simOpts.delivery});
        sim::MachineConfig mc;
        mc.nprocs = procs;
        mc.cache = cache;
        mc.replacementHints = hints;
        mc.protocol = simOpts.protocol;
        mc.interconnect = simOpts.interconnect;
        sim::MemSystem mem(mc, &env.heap());
        env.attachMemSystem(&mem);
        if (!app.run(env, cfg).valid) {
            std::fprintf(stderr, "%s: run failed validation\n",
                         app.name().c_str());
            return 1;
        }

        sim::CoherenceChecker chk(mem);
        std::vector<sim::Violation> v;
        if (chk.checkAll(&v) != 0) {
            std::fprintf(stderr,
                         "baseline state already violates invariants "
                         "(checker bug?):\n%s",
                         sim::formatViolations(v).c_str());
            return 1;
        }

        std::string what = sim::FaultInjector(mem).inject(k, seed);
        if (what.empty()) {
            std::printf("%-16s SKIP    no eligible target in this "
                        "state\n",
                        sim::faultKindName(k));
            continue;
        }
        v.clear();
        std::size_t n = chk.checkAll(&v);
        if (n == 0) {
            std::printf("%-16s MISSED  injected %s\n",
                        sim::faultKindName(k), what.c_str());
            ++missed;
        } else {
            std::printf("%-16s detected (%zu violation%s)\n"
                        "    injected: %s\n"
                        "    caught:   %s: %s\n",
                        sim::faultKindName(k), n, n == 1 ? "" : "s",
                        what.c_str(), v[0].rule.c_str(),
                        v[0].what.c_str());
        }
    }
    std::printf("\n%s\n", missed ? "FAIL: checker missed seeded faults"
                                 : "all seeded faults detected");
    return missed ? 1 : 0;
}

} // namespace

int
main(int argc, char** argv)
{
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--list") == 0) {
            for (App* app : suite())
                std::printf("%-10s (%s)\n", app->name().c_str(),
                            app->isFloatingPoint() ? "floating-point"
                                                   : "integer");
            return 0;
        }
    }

    Options opt(argc, argv);
    // Engine flags first: informational requests (--protocol list)
    // and bad engine values resolve without requiring --app.
    EngineOpts eng;
    if (!parseEngineOpts(opt, &eng))
        return eng.listRequested ? 0 : 2;
    std::string name = opt.getS("app", "");
    std::vector<App*> apps;
    if (name == "all") {
        for (App* app : suite())
            apps.push_back(app);
    } else if (App* app = findApp(name)) {
        apps.push_back(app);
    }
    if (apps.empty()) {
        std::fprintf(
            stderr,
            "usage: splash2run --app <name|all> [options]\n"
            "       splash2run --list\n"
            "options: --procs N --scale F --n N --iters N --aux N\n"
            "         --seed N --cachekb N --assoc N --line N\n"
            "         --nohints --nomem\n"
            "         --protocol msi|mesi|moesi|dragon  coherence\n"
            "             protocol of the simulated machine (default\n"
            "             mesi; 'list' prints the registered zoo)\n"
            "         --interconnect directory|bus  interconnect\n"
            "             organization of the simulated machine\n"
            "             (default directory CC-NUMA; bus snoops the\n"
            "             tag arrays and accounts bus occupancy)\n"
            "         --backend fiber|thread  execution mechanism of\n"
            "             the interleaver (default fiber; results are\n"
            "             identical, fibers are much faster)\n"
            "         --quantum N  instrumentation events per\n"
            "             scheduling slice (default 250)\n"
            "         --delivery batched|direct  reference delivery\n"
            "             shape (default batched; results identical,\n"
            "             batching is faster)\n"
            "         --jobs N  host threads running independent\n"
            "             programs (--app all; N >= 1, default 1;\n"
            "             output bytes identical for every value)\n"
            "         --check N  coherence invariant checker: full\n"
            "             directory/cache cross-validation every N\n"
            "             slow-path transactions (default 0 = off;\n"
            "             observation only, violations abort)\n"
            "         --inject all|<kind>  fault-injection harness:\n"
            "             run, seed a protocol corruption, and verify\n"
            "             the checker detects it (see --inject help)\n"
            "         --race off|word|line  happens-before race\n"
            "             detection over the reference stream (default\n"
            "             off).  word: any report is a true data race\n"
            "             and the exit status is 1.  line: conflicts\n"
            "             quantify false sharing (informational)\n"
            "         --csv FILE  write per-app race census rows\n"
            "             (requires --race word|line)\n"
            "         --race-inject all|<kind>  race-injection\n"
            "             harness: drop one seeded sync edge and\n"
            "             verify the detector reports the race\n"
            "         --sweep exact|model|both  run the working-set\n"
            "             sweep (Figure 3 curves) instead of the\n"
            "             single-point characterization: exact Mattson\n"
            "             engine, reuse-distance analytical model, or\n"
            "             both side by side with per-row error\n"
            "         --record DIR  record the reference stream of\n"
            "             each executed (app, P) into trace store DIR\n"
            "             (created if missing; recorded identities\n"
            "             are skipped -- record once)\n"
            "         --replay DIR  replay from trace store DIR (or a\n"
            "             single .s2t file) instead of executing --\n"
            "             byte-identical output, no fiber execution\n");
        return name.empty() ? 2 : 1;
    }

    int procs = static_cast<int>(opt.getI("procs", 32));
    AppConfig cfg;
    cfg.scale = opt.getD("scale", 1.0);
    cfg.n = opt.getI("n", 0);
    cfg.iters = opt.getI("iters", 0);
    cfg.aux = opt.getI("aux", 0);
    cfg.seed = static_cast<unsigned>(opt.getI("seed", 1234));

    bool with_mem = !opt.has("nomem");
    bool hints = !opt.has("nohints");
    sim::CacheConfig cache;
    cache.size = std::uint64_t(opt.getI("cachekb", 1024)) << 10;
    cache.assoc = static_cast<int>(opt.getI("assoc", 4));
    cache.lineSize = static_cast<int>(opt.getI("line", 64));

    if (!checkModeConflicts(opt, eng))
        return 2;

    if (opt.has("inject")) {
        if (!with_mem) {
            std::fprintf(stderr,
                         "--inject needs the memory system (drop "
                         "--nomem)\n");
            return 2;
        }
        int rc = 0;
        for (App* app : apps)
            rc = std::max(rc, runInjection(*app, procs, cache, hints,
                                           cfg, eng.sim,
                                           opt.getS("inject", "all"),
                                           cfg.seed));
        return rc;
    }

    if (opt.has("race-inject")) {
        int rc = 0;
        for (App* app : apps)
            rc = std::max(rc,
                          runRaceInjection(*app, procs, cfg, eng.sim,
                                           opt.getS("race-inject",
                                                    "all"),
                                           cfg.seed));
        return rc;
    }

    if (eng.sweepRequested) {
        // Working-set sweep mode: the Figure-3 engine instead of the
        // single-point memory-system characterization.  The line size
        // is the one cache parameter the sweep honors; --cachekb and
        // --assoc are the grid's axes and are ignored.
        std::vector<WorkingSetRun> runs(apps.size());
        Runner runner(eng.jobs);
        for (std::size_t i = 0; i < apps.size(); ++i) {
            runner.add(apps[i]->name(), appCostHint(*apps[i]), [&, i] {
                sim::SweepConfig sc;
                sc.nprocs = procs;
                sc.lineSize = cache.lineSize;
                runs[i] =
                    runWorkingSets(*apps[i], procs, sc, cfg, eng.sim);
            });
        }
        runner.run();
        bool all_valid = true;
        for (std::size_t i = 0; i < apps.size(); ++i) {
            if (i)
                std::printf("\n================\n\n");
            reportSweep(*apps[i], runs[i], eng.sim.sweep, procs,
                        cache.lineSize, cfg);
            all_valid = all_valid && runs[i].stats.valid;
        }
        return all_valid ? 0 : 1;
    }

    std::vector<RunStats> results(apps.size());
    Runner runner(eng.jobs);
    for (std::size_t i = 0; i < apps.size(); ++i) {
        runner.add(apps[i]->name(), appCostHint(*apps[i]), [&, i] {
            if (with_mem) {
                MemExperiment e;
                e.cache = cache;
                e.hints = hints;
                e.protocol = eng.sim.protocol;
                e.interconnect = eng.sim.interconnect;
                results[i] = runCharacterizations(*apps[i], procs, {e},
                                                  cfg, eng.sim)[0];
            } else {
                results[i] = runPram(*apps[i], procs, cfg, eng.sim);
            }
        });
    }
    runner.run();

    bool all_valid = true;
    bool word_races = false;
    for (std::size_t i = 0; i < apps.size(); ++i) {
        if (i)
            std::printf("\n================\n\n");
        report(*apps[i], results[i], with_mem, cache, hints, procs,
               cfg, eng.sim);
        all_valid = all_valid && results[i].valid;
        // Word-granularity conflicts are true data races: fail the
        // run (CI leans on this).  Line-granularity conflicts are the
        // false-sharing census -- informational by design.
        if (results[i].raceChecked &&
            results[i].race.gran == sim::RaceGranularity::Word &&
            !results[i].race.clean())
            word_races = true;
    }

    if (opt.has("csv")) {
        std::string path = opt.getS("csv", "");
        if (eng.sim.race == sim::RaceGranularity::Off || path.empty()) {
            std::fprintf(stderr,
                         "--csv FILE needs --race word|line\n");
            return 2;
        }
        std::FILE* f = std::fopen(path.c_str(), "w");
        if (!f) {
            std::fprintf(stderr, "cannot write '%s'\n", path.c_str());
            return 2;
        }
        std::fprintf(f,
                     "app,procs,granularity,granule_bytes,race_pairs,"
                     "racy_granules,dynamic_conflicts,granules_tracked,"
                     "barrier_arrivals,barrier_departures,lock_acquires,"
                     "lock_releases,flag_sets,flag_waits\n");
        for (std::size_t i = 0; i < apps.size(); ++i)
            raceCsvRow(f, *apps[i], procs, results[i]);
        std::fclose(f);
    }

    if (word_races) {
        std::fprintf(stderr,
                     "\nFAIL: data race(s) at word granularity -- the "
                     "suite must be race-free\n");
        return 1;
    }
    return all_valid ? 0 : 1;
}
