/**
 * @file
 * splash2run -- run any SPLASH-2 program under any machine
 * configuration and print the full characterization: execution
 * profile, per-processor balance, miss decomposition, and traffic
 * breakdown. The general-purpose driver behind the per-figure benches.
 *
 * Usage:
 *   splash2run --app fft [--procs 32] [--scale 1.0] [--n 0]
 *              [--iters 0] [--aux 0] [--cachekb 1024] [--assoc 4]
 *              [--line 64] [--nohints 1] [--nomem 1] [--seed 1234]
 *              [--protocol msi|mesi|moesi|dragon]
 *              [--backend fiber|thread] [--quantum 250]
 *              [--delivery batched|direct] [--jobs N]
 *
 *   splash2run --app all       # whole suite, one job per program
 *   splash2run --list          # enumerate programs
 *   splash2run --app fft --inject all [--seed N]
 *                              # fault-injection harness: seed protocol
 *                              # corruptions, prove the checker fires
 *
 * --protocol selects the coherence protocol of the simulated machine
 * (the one engine flag that changes results: it changes the machine);
 * --protocol list prints the registered zoo.  --backend selects the
 * interleaver's execution mechanism (stackful fibers on one host
 * thread, or one parked host thread per simulated processor);
 * --quantum sets the instrumentation events per scheduling slice;
 * --delivery selects how references reach the simulator (ring batches
 * drained at switch boundaries, or a call per reference); --jobs
 * schedules independent programs across host cores.  Those change
 * simulation speed only -- output bytes are bit-identical across
 * backends, quanta, delivery shapes, and job counts.
 */
#include <cstdio>
#include <cstring>
#include <vector>

#include "harness/cli.h"
#include "harness/runner.h"
#include "sim/check.h"
#include "sim/faultinject.h"

using namespace splash;
using namespace splash::harness;

namespace {

void
report(const App& app, const RunStats& r, bool with_mem,
       const sim::CacheConfig& cache, bool hints, int procs,
       const AppConfig& cfg, const SimOpts& simOpts)
{
    std::printf("%s on %d processors (scale %.3g)\n",
                app.name().c_str(), procs, cfg.scale);
    if (with_mem)
        std::printf("machine: %llu KB %d-way %dB-line caches, "
                    "directory %s%s\n",
                    static_cast<unsigned long long>(cache.size >> 10),
                    cache.assoc, cache.lineSize,
                    sim::protocol(simOpts.protocol).display,
                    hints ? " + replacement hints" : "");
    else
        std::printf("machine: PRAM (perfect memory)\n");
    std::printf("interleaver: %s backend, quantum %llu, %s delivery\n",
                rt::backendName(simOpts.backend),
                static_cast<unsigned long long>(simOpts.quantum),
                rt::deliveryName(simOpts.delivery));

    std::printf("\n-- execution --\n");
    std::printf("valid: %s\n", r.valid ? "yes" : "NO");
    std::printf("PRAM cycles: %llu\n",
                static_cast<unsigned long long>(r.elapsed));
    std::printf("instructions: %.3f M (%.3f M flops)\n",
                r.exec.instructions() / 1e6, r.exec.flops / 1e6);
    std::printf("shared reads/writes: %.3f M / %.3f M\n",
                r.exec.reads / 1e6, r.exec.writes / 1e6);
    std::printf("sync: %llu barriers/proc, %llu locks, %llu pauses\n",
                static_cast<unsigned long long>(
                    r.perProc.empty() ? 0 : r.perProc[0].barriers),
                static_cast<unsigned long long>([&] {
                    std::uint64_t t = 0;
                    for (auto& p : r.perProc)
                        t += p.locks;
                    return t;
                }()),
                static_cast<unsigned long long>([&] {
                    std::uint64_t t = 0;
                    for (auto& p : r.perProc)
                        t += p.pauses;
                    return t;
                }()));

    // Load balance.
    Tick max_t = 0, min_t = ~Tick{0};
    double sync_pct = 0;
    for (const auto& p : r.perProc) {
        max_t = std::max(max_t, p.elapsed());
        min_t = std::min(min_t, p.elapsed());
        sync_pct += p.elapsed()
                        ? 100.0 * double(p.syncWait()) /
                              double(p.elapsed())
                        : 0.0;
    }
    std::printf("balance: min/max processor time %.3f, avg sync %.1f%%\n",
                max_t ? double(min_t) / double(max_t) : 0.0,
                sync_pct / procs);

    if (with_mem) {
        std::printf("\n-- memory system --\n");
        std::printf("references: %.3f M, miss rate %.3f%%\n",
                    r.mem.accesses() / 1e6, 100.0 * r.mem.missRate());
        auto pct = [&](std::uint64_t m) {
            return r.mem.totalMisses()
                       ? 100.0 * double(m) / double(r.mem.totalMisses())
                       : 0.0;
        };
        std::printf(
            "misses: %.1f%% cold, %.1f%% capacity, %.1f%% true-share, "
            "%.1f%% false-share (+%llu upgrades)\n",
            pct(r.mem.misses[int(sim::MissType::Cold)]),
            pct(r.mem.misses[int(sim::MissType::Capacity)]),
            pct(r.mem.misses[int(sim::MissType::TrueSharing)]),
            pct(r.mem.misses[int(sim::MissType::FalseSharing)]),
            static_cast<unsigned long long>(r.mem.upgrades));
        double den = trafficDenominator(app, r.exec);
        if (den <= 0)
            den = 1;
        std::printf("traffic (bytes per %s): remote data %.4f "
                    "(shared %.4f, cold %.4f, capacity %.4f, "
                    "writeback %.4f), overhead %.4f, local %.4f\n",
                    app.isFloatingPoint() ? "FLOP" : "instr",
                    r.mem.remoteData() / den,
                    r.mem.remoteSharedData / den,
                    r.mem.remoteColdData / den,
                    r.mem.remoteCapacityData / den,
                    r.mem.remoteWriteback / den,
                    r.mem.remoteOverhead / den, r.mem.localData / den);
        std::printf("true-sharing (inherent communication) proxy: "
                    "%.4f bytes per %s\n",
                    r.mem.trueSharedData / den,
                    app.isFloatingPoint() ? "FLOP" : "instr");
    }
}

/** Fault-injection harness (--inject): for each requested fault kind,
 *  run @p app to a realistic protocol state, prove the checker is
 *  silent on it, seed the corruption, and prove the checker fires.
 *  Returns 0 when every eligible fault was detected. */
int
runInjection(App& app, int procs, const sim::CacheConfig& cache,
             bool hints, const AppConfig& cfg, const SimOpts& simOpts,
             const std::string& which, std::uint64_t seed)
{
    std::vector<sim::FaultKind> todo;
    if (which == "all") {
        for (int k = 0; k < sim::kNumFaultKinds; ++k)
            todo.push_back(static_cast<sim::FaultKind>(k));
    } else {
        sim::FaultKind k;
        if (!sim::parseFaultKind(which, &k)) {
            std::fprintf(stderr,
                         "unknown --inject '%s' (all", which.c_str());
            for (int i = 0; i < sim::kNumFaultKinds; ++i)
                std::fprintf(stderr, ", %s",
                             sim::faultKindName(
                                 static_cast<sim::FaultKind>(i)));
            std::fprintf(stderr, ")\n");
            return 2;
        }
        todo.push_back(k);
    }

    std::printf("fault injection: %s on %d processors, seed %llu%s\n\n",
                app.name().c_str(), procs,
                static_cast<unsigned long long>(seed),
                hints ? "" : " (replacement hints off)");
    int missed = 0;
    for (sim::FaultKind k : todo) {
        // Fresh simulator state per fault: injections must not compound.
        rt::Env env({rt::Mode::Sim, procs, simOpts.quantum,
                     simOpts.backend, simOpts.delivery});
        sim::MachineConfig mc;
        mc.nprocs = procs;
        mc.cache = cache;
        mc.replacementHints = hints;
        mc.protocol = simOpts.protocol;
        sim::MemSystem mem(mc, &env.heap());
        env.attachMemSystem(&mem);
        if (!app.run(env, cfg).valid) {
            std::fprintf(stderr, "%s: run failed validation\n",
                         app.name().c_str());
            return 1;
        }

        sim::CoherenceChecker chk(mem);
        std::vector<sim::Violation> v;
        if (chk.checkAll(&v) != 0) {
            std::fprintf(stderr,
                         "baseline state already violates invariants "
                         "(checker bug?):\n%s",
                         sim::formatViolations(v).c_str());
            return 1;
        }

        std::string what = sim::FaultInjector(mem).inject(k, seed);
        if (what.empty()) {
            std::printf("%-16s SKIP    no eligible target in this "
                        "state\n",
                        sim::faultKindName(k));
            continue;
        }
        v.clear();
        std::size_t n = chk.checkAll(&v);
        if (n == 0) {
            std::printf("%-16s MISSED  injected %s\n",
                        sim::faultKindName(k), what.c_str());
            ++missed;
        } else {
            std::printf("%-16s detected (%zu violation%s)\n"
                        "    injected: %s\n"
                        "    caught:   %s: %s\n",
                        sim::faultKindName(k), n, n == 1 ? "" : "s",
                        what.c_str(), v[0].rule.c_str(),
                        v[0].what.c_str());
        }
    }
    std::printf("\n%s\n", missed ? "FAIL: checker missed seeded faults"
                                 : "all seeded faults detected");
    return missed ? 1 : 0;
}

} // namespace

int
main(int argc, char** argv)
{
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--list") == 0) {
            for (App* app : suite())
                std::printf("%-10s (%s)\n", app->name().c_str(),
                            app->isFloatingPoint() ? "floating-point"
                                                   : "integer");
            return 0;
        }
    }

    Options opt(argc, argv);
    // Engine flags first: informational requests (--protocol list)
    // and bad engine values resolve without requiring --app.
    EngineOpts eng;
    if (!parseEngineOpts(opt, &eng))
        return eng.listRequested ? 0 : 2;
    std::string name = opt.getS("app", "");
    std::vector<App*> apps;
    if (name == "all") {
        for (App* app : suite())
            apps.push_back(app);
    } else if (App* app = findApp(name)) {
        apps.push_back(app);
    }
    if (apps.empty()) {
        std::fprintf(
            stderr,
            "usage: splash2run --app <name|all> [options]\n"
            "       splash2run --list\n"
            "options: --procs N --scale F --n N --iters N --aux N\n"
            "         --seed N --cachekb N --assoc N --line N\n"
            "         --nohints --nomem\n"
            "         --protocol msi|mesi|moesi|dragon  coherence\n"
            "             protocol of the simulated machine (default\n"
            "             mesi; 'list' prints the registered zoo)\n"
            "         --backend fiber|thread  execution mechanism of\n"
            "             the interleaver (default fiber; results are\n"
            "             identical, fibers are much faster)\n"
            "         --quantum N  instrumentation events per\n"
            "             scheduling slice (default 250)\n"
            "         --delivery batched|direct  reference delivery\n"
            "             shape (default batched; results identical,\n"
            "             batching is faster)\n"
            "         --jobs N  host threads running independent\n"
            "             programs (--app all; N >= 1, default 1;\n"
            "             output bytes identical for every value)\n"
            "         --check N  coherence invariant checker: full\n"
            "             directory/cache cross-validation every N\n"
            "             slow-path transactions (default 0 = off;\n"
            "             observation only, violations abort)\n"
            "         --inject all|<kind>  fault-injection harness:\n"
            "             run, seed a protocol corruption, and verify\n"
            "             the checker detects it (see --inject help)\n");
        return name.empty() ? 2 : 1;
    }

    int procs = static_cast<int>(opt.getI("procs", 32));
    AppConfig cfg;
    cfg.scale = opt.getD("scale", 1.0);
    cfg.n = opt.getI("n", 0);
    cfg.iters = opt.getI("iters", 0);
    cfg.aux = opt.getI("aux", 0);
    cfg.seed = static_cast<unsigned>(opt.getI("seed", 1234));

    bool with_mem = !opt.has("nomem");
    bool hints = !opt.has("nohints");
    sim::CacheConfig cache;
    cache.size = std::uint64_t(opt.getI("cachekb", 1024)) << 10;
    cache.assoc = static_cast<int>(opt.getI("assoc", 4));
    cache.lineSize = static_cast<int>(opt.getI("line", 64));

    if (opt.has("inject")) {
        if (!with_mem) {
            std::fprintf(stderr,
                         "--inject needs the memory system (drop "
                         "--nomem)\n");
            return 2;
        }
        int rc = 0;
        for (App* app : apps)
            rc = std::max(rc, runInjection(*app, procs, cache, hints,
                                           cfg, eng.sim,
                                           opt.getS("inject", "all"),
                                           cfg.seed));
        return rc;
    }

    std::vector<RunStats> results(apps.size());
    Runner runner(eng.jobs);
    for (std::size_t i = 0; i < apps.size(); ++i) {
        runner.add(apps[i]->name(), appCostHint(*apps[i]), [&, i] {
            if (with_mem) {
                MemExperiment e;
                e.cache = cache;
                e.hints = hints;
                e.protocol = eng.sim.protocol;
                results[i] = runCharacterizations(*apps[i], procs, {e},
                                                  cfg, eng.sim)[0];
            } else {
                results[i] = runPram(*apps[i], procs, cfg, eng.sim);
            }
        });
    }
    runner.run();

    bool all_valid = true;
    for (std::size_t i = 0; i < apps.size(); ++i) {
        if (i)
            std::printf("\n================\n\n");
        report(*apps[i], results[i], with_mem, cache, hints, procs,
               cfg, eng.sim);
        all_valid = all_valid && results[i].valid;
    }
    return all_valid ? 0 : 1;
}
