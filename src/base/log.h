/**
 * @file
 * Error-reporting helpers in the gem5 style.
 *
 * fatal()  -- the run cannot continue because of a user error (bad
 *             configuration, invalid argument).  Exits with status 1.
 * panic()  -- an internal invariant of the library has been violated
 *             (a bug in splash2 itself).  Aborts so a core/debugger can
 *             inspect the state.
 * warn()   -- something is suspicious but the run can continue.
 */
#ifndef SPLASH2_BASE_LOG_H
#define SPLASH2_BASE_LOG_H

#include <cstdio>
#include <cstdlib>
#include <string>

namespace splash {

[[noreturn]] inline void
fatal(const std::string& msg)
{
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    std::exit(1);
}

[[noreturn]] inline void
panic(const std::string& msg)
{
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::abort();
}

inline void
warn(const std::string& msg)
{
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

/** panic() unless a library invariant holds. */
inline void
ensure(bool cond, const char* what)
{
    if (!cond)
        panic(std::string("invariant violated: ") + what);
}

} // namespace splash

#endif // SPLASH2_BASE_LOG_H
