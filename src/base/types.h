/**
 * @file
 * Fundamental types shared by the simulator and the runtime.
 */
#ifndef SPLASH2_BASE_TYPES_H
#define SPLASH2_BASE_TYPES_H

#include <cstddef>
#include <cstdint>

namespace splash {

/** A simulated memory address.  We use real host addresses of the shared
 *  heap, which keeps instrumentation zero-copy and gives stable, unique
 *  line identities. */
using Addr = std::uintptr_t;

/** Logical (PRAM) time, in single-cycle instructions. */
using Tick = std::uint64_t;

/** Identifier of a simulated processor (== NUMA node; one per node). */
using ProcId = int;

/** Kind of a memory reference issued by an application. */
enum class AccessType : std::uint8_t { Read, Write };

/** Maximum number of simulated processors supported by the directory's
 *  sharer bitmask and by the scheduler. */
inline constexpr int kMaxProcs = 64;

/** Round @p v down to a multiple of @p align (power of two). */
constexpr Addr
alignDown(Addr v, Addr align)
{
    return v & ~(align - 1);
}

/** Integer log2 of a power of two. */
constexpr int
log2i(std::uint64_t v)
{
    int r = 0;
    while (v > 1) { v >>= 1; ++r; }
    return r;
}

constexpr bool
isPow2(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

} // namespace splash

#endif // SPLASH2_BASE_TYPES_H
