/**
 * @file
 * Deterministic pseudo-random number generation for workload construction.
 *
 * All SPLASH-2 inputs that we generate procedurally (particle positions,
 * sort keys, scene geometry, ...) are derived from this generator so that
 * every run of the suite is bit-reproducible across hosts.
 */
#ifndef SPLASH2_BASE_RNG_H
#define SPLASH2_BASE_RNG_H

#include <cstdint>

namespace splash {

/** splitmix64-based generator: tiny state, high quality, reproducible. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) : state_(seed) {}

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    /** Uniform integer in [0, bound). @p bound must be nonzero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        return next() % bound;
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return (next() >> 11) * (1.0 / 9007199254740992.0);
    }

    /** Uniform double in [lo, hi). */
    double
    uniform(double lo, double hi)
    {
        return lo + (hi - lo) * uniform();
    }

    /** Standard normal via Marsaglia polar method. */
    double
    normal()
    {
        for (;;) {
            double u = uniform(-1.0, 1.0);
            double v = uniform(-1.0, 1.0);
            double s = u * u + v * v;
            if (s > 0.0 && s < 1.0) {
                double m = u * __builtin_sqrt(-2.0 * __builtin_log(s) / s);
                return m;
            }
        }
    }

  private:
    std::uint64_t state_;
};

} // namespace splash

#endif // SPLASH2_BASE_RNG_H
