#include "rt/env.h"

#include <algorithm>
#include <thread>

#include "base/log.h"
#include "sim/memsys.h"
#include "sim/sweep.h"

namespace splash::rt {

namespace {
/** Native mode: one host thread per processor, context pinned here. */
thread_local ProcCtx* tls_ctx = nullptr;
/** Sim mode: the Env whose team episode is executing on this host
 *  thread.  The running processor is resolved through the scheduler on
 *  every cur() call, which stays correct across fiber switches (all
 *  fibers share one host thread) and across nested Envs (the previous
 *  value is restored when an inner episode ends). */
thread_local Env* tls_env = nullptr;
} // namespace

ProcCtx*
cur()
{
    if (tls_ctx)
        return tls_ctx;
    if (tls_env)
        return tls_env->runningCtx();
    return nullptr;
}

ProcCtx*
Env::runningCtx()
{
    if (!episodeCtxs_ || !sched_ || !sched_->active())
        return nullptr;
    ProcId r = sched_->running();
    return r >= 0 ? &episodeCtxs_[r] : nullptr;
}

int
ProcCtx::nprocs() const
{
    return env_->nprocs();
}

const char*
deliveryName(Delivery d)
{
    return d == Delivery::Batched ? "batched" : "direct";
}

bool
parseDelivery(const std::string& s, Delivery* out)
{
    if (s == "batched") {
        *out = Delivery::Batched;
        return true;
    }
    if (s == "direct") {
        *out = Delivery::Direct;
        return true;
    }
    return false;
}

void
Env::deliver(const sim::AccessRec& r)
{
    if (mem_)
        mem_->access(r.proc, r.addr, r.size, r.type);
    if (sweep_)
        sweep_->access(r.proc, r.addr, r.size, r.type);
    for (sim::RefSink* s : sinks_)
        s->access(r);
}

void
Env::drainRefs()
{
    if (ringN_ == 0)
        return;
    const sim::AccessRec* recs = ring_.data();
    const std::size_t n = ringN_;
    ringN_ = 0;
    // Per-sink, not per-record: sinks share no state, so only each
    // sink's own delivery order matters, and that equals execution
    // order either way.
    if (mem_) {
        for (std::size_t i = 0; i < n; ++i)
            mem_->access(recs[i].proc, recs[i].addr, recs[i].size,
                         recs[i].type);
    }
    if (sweep_) {
        for (std::size_t i = 0; i < n; ++i)
            sweep_->access(recs[i].proc, recs[i].addr, recs[i].size,
                           recs[i].type);
    }
    for (sim::RefSink* s : sinks_) {
        for (std::size_t i = 0; i < n; ++i)
            s->access(recs[i]);
    }
}

void
Env::syncEvent(ProcId p, std::uint32_t obj, sim::SyncOp op,
               sim::SyncPrim prim)
{
    if (cfg_.mode != Mode::Sim || sinks_.empty())
        return;
    // References issued before this edge must reach the sinks first;
    // the edge then lands at its exact stream position.
    drainRefs();
    sim::SyncRec r;
    r.obj = obj;
    r.ltime = sched_ ? sched_->time(p) : 0;
    r.proc = static_cast<std::int16_t>(p);
    r.op = op;
    r.prim = prim;
    for (sim::RefSink* s : sinks_)
        s->sync(r);
}

Env::Env(const EnvConfig& cfg)
    : cfg_(cfg), heap_(cfg.nprocs), stats_(cfg.nprocs)
{
    if (cfg_.nprocs < 1 || cfg_.nprocs > kMaxProcs)
        fatal("processor count must be in [1, " +
              std::to_string(kMaxProcs) +
              "]: per-processor sharer and vector-clock state lives "
              "in " +
              std::to_string(kMaxProcs) + "-bit masks (got " +
              std::to_string(cfg_.nprocs) + ")");
    if (cfg_.mode == Mode::Sim) {
        sched_ = std::make_unique<Scheduler>(cfg_.nprocs, cfg_.quantum,
                                             cfg_.backend);
        // Home placement must stay stream-ordered for buffering sinks:
        // deliver (and fully replay) everything issued under the old
        // placement before the span map changes.
        heap_.setPlacementObserver(
            [this](Addr start, std::size_t bytes, ProcId home) {
                drainRefs();
                for (sim::RefSink* s : sinks_) {
                    s->streamBarrier();
                    s->place({start, bytes, home});
                }
            });
        if (cfg_.delivery == Delivery::Batched) {
            ring_.resize(kRingCap);
            // Drain before every control transfer so the delivered
            // order equals the execution order.
            sched_->setPreSwitchHook(
                [](void* env, ProcId) {
                    static_cast<Env*>(env)->drainRefs();
                },
                this);
        }
    }
}

Env::~Env() = default;

void
Env::run(const std::function<void(ProcCtx&)>& body)
{
    std::vector<ProcCtx> ctxs(cfg_.nprocs);
    for (int p = 0; p < cfg_.nprocs; ++p) {
        ctxs[p].env_ = this;
        ctxs[p].id_ = p;
        ctxs[p].stats_ = &stats_[p];
    }

    if (cfg_.mode == Mode::Sim) {
        ProcCtx* prevCtxs = episodeCtxs_;
        Env* prevEnv = tls_env;
        episodeCtxs_ = ctxs.data();
        tls_env = this;
        sched_->run([&](ProcId p) {
            // Under the thread backend each processor runs on its own
            // host thread, which has not seen the assignment above.
            tls_env = this;
            body(ctxs[p]);
            stats_[p].finishTime = sched_->time(p);
        });
        // The last processor to finish exits through the backend's
        // finish path, which bypasses the pre-switch hook.
        drainRefs();
        tls_env = prevEnv;
        episodeCtxs_ = prevCtxs;
        return;
    }

    std::vector<std::thread> threads;
    threads.reserve(cfg_.nprocs);
    for (int p = 0; p < cfg_.nprocs; ++p) {
        threads.emplace_back([&, p] {
            tls_ctx = &ctxs[p];
            body(ctxs[p]);
            tls_ctx = nullptr;
        });
    }
    for (auto& t : threads)
        t.join();
}

void
Env::startMeasurement()
{
    // Pending batched records precede the measurement window; deliver
    // them so the resets below discard them exactly as direct delivery
    // would have.
    drainRefs();
    for (int p = 0; p < cfg_.nprocs; ++p) {
        Tick lt = sched_ ? sched_->time(p) : 0;
        stats_[p] = ProcStats{};
        stats_[p].startTime = lt;
        stats_[p].finishTime = lt;
    }
    if (mem_)
        mem_->resetStats();
    if (sweep_)
        sweep_->resetStats();
    for (sim::RefSink* s : sinks_)
        s->resetStats();
}

ProcStats
Env::totalStats() const
{
    ProcStats t;
    for (const auto& s : stats_)
        t += s;
    return t;
}

Tick
Env::elapsed() const
{
    Tick e = 0;
    for (const auto& s : stats_)
        e = std::max(e, s.elapsed());
    return e;
}

} // namespace splash::rt
