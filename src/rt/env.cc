#include "rt/env.h"

#include <algorithm>
#include <thread>

#include "base/log.h"
#include "sim/memsys.h"
#include "sim/sweep.h"

namespace splash::rt {

namespace {
/** Native mode: one host thread per processor, context pinned here. */
thread_local ProcCtx* tls_ctx = nullptr;
/** Sim mode: the Env whose team episode is executing on this host
 *  thread.  The running processor is resolved through the scheduler on
 *  every cur() call, which stays correct across fiber switches (all
 *  fibers share one host thread) and across nested Envs (the previous
 *  value is restored when an inner episode ends). */
thread_local Env* tls_env = nullptr;
} // namespace

ProcCtx*
cur()
{
    if (tls_ctx)
        return tls_ctx;
    if (tls_env)
        return tls_env->runningCtx();
    return nullptr;
}

ProcCtx*
Env::runningCtx()
{
    if (!episodeCtxs_ || !sched_ || !sched_->active())
        return nullptr;
    ProcId r = sched_->running();
    return r >= 0 ? &episodeCtxs_[r] : nullptr;
}

int
ProcCtx::nprocs() const
{
    return env_->nprocs();
}

void
ProcCtx::read(const void* a, std::size_t n)
{
    ++stats_->reads;
    if (env_->cfg_.mode == Mode::Sim) {
        Scheduler* s = env_->sched_.get();
        s->advance(id_, 1);
        if (env_->mem_) {
            env_->mem_->access(id_, reinterpret_cast<Addr>(a),
                               static_cast<int>(n), AccessType::Read);
        }
        if (env_->sweep_) {
            env_->sweep_->access(id_, reinterpret_cast<Addr>(a),
                                 static_cast<int>(n), AccessType::Read);
        }
        s->event(id_);
    }
}

void
ProcCtx::write(const void* a, std::size_t n)
{
    ++stats_->writes;
    if (env_->cfg_.mode == Mode::Sim) {
        Scheduler* s = env_->sched_.get();
        s->advance(id_, 1);
        if (env_->mem_) {
            env_->mem_->access(id_, reinterpret_cast<Addr>(a),
                               static_cast<int>(n), AccessType::Write);
        }
        if (env_->sweep_) {
            env_->sweep_->access(id_, reinterpret_cast<Addr>(a),
                                 static_cast<int>(n), AccessType::Write);
        }
        s->event(id_);
    }
}

void
ProcCtx::work(std::uint64_t n)
{
    stats_->work += n;
    if (env_->cfg_.mode == Mode::Sim) {
        Scheduler* s = env_->sched_.get();
        s->advance(id_, n);
        s->event(id_);
    }
}

void
ProcCtx::flops(std::uint64_t n)
{
    stats_->flops += n;
    work(n);
}

void
ProcCtx::idle(std::uint64_t n)
{
    stats_->pauseWait += n;
    if (env_->cfg_.mode == Mode::Sim) {
        Scheduler* s = env_->sched_.get();
        s->advance(id_, n);
        s->event(id_);
    }
}

Env::Env(const EnvConfig& cfg)
    : cfg_(cfg), heap_(cfg.nprocs), stats_(cfg.nprocs)
{
    if (cfg_.nprocs < 1 || cfg_.nprocs > kMaxProcs)
        fatal("processor count out of range");
    if (cfg_.mode == Mode::Sim)
        sched_ = std::make_unique<Scheduler>(cfg_.nprocs, cfg_.quantum,
                                             cfg_.backend);
}

Env::~Env() = default;

void
Env::run(const std::function<void(ProcCtx&)>& body)
{
    std::vector<ProcCtx> ctxs(cfg_.nprocs);
    for (int p = 0; p < cfg_.nprocs; ++p) {
        ctxs[p].env_ = this;
        ctxs[p].id_ = p;
        ctxs[p].stats_ = &stats_[p];
    }

    if (cfg_.mode == Mode::Sim) {
        ProcCtx* prevCtxs = episodeCtxs_;
        Env* prevEnv = tls_env;
        episodeCtxs_ = ctxs.data();
        tls_env = this;
        sched_->run([&](ProcId p) {
            // Under the thread backend each processor runs on its own
            // host thread, which has not seen the assignment above.
            tls_env = this;
            body(ctxs[p]);
            stats_[p].finishTime = sched_->time(p);
        });
        tls_env = prevEnv;
        episodeCtxs_ = prevCtxs;
        return;
    }

    std::vector<std::thread> threads;
    threads.reserve(cfg_.nprocs);
    for (int p = 0; p < cfg_.nprocs; ++p) {
        threads.emplace_back([&, p] {
            tls_ctx = &ctxs[p];
            body(ctxs[p]);
            tls_ctx = nullptr;
        });
    }
    for (auto& t : threads)
        t.join();
}

void
Env::startMeasurement()
{
    for (int p = 0; p < cfg_.nprocs; ++p) {
        Tick lt = sched_ ? sched_->time(p) : 0;
        stats_[p] = ProcStats{};
        stats_[p].startTime = lt;
        stats_[p].finishTime = lt;
    }
    if (mem_)
        mem_->resetStats();
    if (sweep_)
        sweep_->resetStats();
}

ProcStats
Env::totalStats() const
{
    ProcStats t;
    for (const auto& s : stats_)
        t += s;
    return t;
}

Tick
Env::elapsed() const
{
    Tick e = 0;
    for (const auto& s : stats_)
        e = std::max(e, s.elapsed());
    return e;
}

} // namespace splash::rt
