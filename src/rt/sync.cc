#include "rt/sync.h"

#include <algorithm>

#include "base/log.h"

namespace splash::rt {

// --------------------------------------------------------------------
// Barrier
// --------------------------------------------------------------------

Barrier::Barrier(Env& env, int n)
    : env_(env), n_(n == 0 ? env.nprocs() : n),
      id_(env.registerSyncObj())
{
    ensure(n_ >= 1, "barrier needs at least one participant");
}

void
Barrier::arrive(ProcCtx& c)
{
    ++c.stats().barriers;

    if (env_.mode() == Mode::Native) {
        std::unique_lock<std::mutex> lock(mu_);
        std::uint64_t gen = generation_;
        if (++count_ == n_) {
            count_ = 0;
            ++generation_;
            cv_.notify_all();
            return;
        }
        cv_.wait(lock, [this, gen] { return generation_ != gen; });
        return;
    }

    // Sim mode: only one processor runs at a time, so barrier state
    // needs no host locking.
    Scheduler& s = *env_.scheduler();
    ProcId p = c.id();
    Tick myLt = s.time(p);
    // Publish everything done before the barrier.  Every arrival
    // releases before any participant departs, so each departure's
    // acquire joins all P arrivals' order (all-to-all rendezvous).
    env_.syncEvent(p, id_, sim::SyncOp::Release, sim::SyncPrim::Barrier);
    if (count_ == 0)
        maxArrival_ = 0;
    maxArrival_ = std::max(maxArrival_, myLt);
    if (++count_ < n_) {
        waiters_.push_back(p);
        s.block(p, "barrier");
        // Released by the last arriver, clock already advanced.
        env_.syncEvent(p, id_, sim::SyncOp::Acquire,
                       sim::SyncPrim::Barrier);
        return;
    }
    // Last arriver: release everyone at the max arrival clock.
    Tick target = maxArrival_;
    for (ProcId q : waiters_) {
        env_.mutableStats(q).barrierWait += target - s.time(q);
        s.advanceTo(q, target);
        s.unblock(q);
    }
    waiters_.clear();
    count_ = 0;
    c.stats().barrierWait += target - myLt;
    s.advanceTo(p, target);
    env_.syncEvent(p, id_, sim::SyncOp::Acquire, sim::SyncPrim::Barrier);
}

// --------------------------------------------------------------------
// Lock
// --------------------------------------------------------------------

Lock::Lock(Env& env) : env_(env), id_(env.registerSyncObj()) {}

void
Lock::acquire(ProcCtx& c)
{
    ++c.stats().locks;

    if (env_.mode() == Mode::Native) {
        mu_.lock();
        return;
    }

    Scheduler& s = *env_.scheduler();
    ProcId p = c.id();
    if (!held_) {
        held_ = true;
        Tick myLt = s.time(p);
        if (freeTime_ > myLt) {
            c.stats().lockWait += freeTime_ - myLt;
            s.advanceTo(p, freeTime_);
        }
        env_.syncEvent(p, id_, sim::SyncOp::Acquire,
                       sim::SyncPrim::Lock);
        return;
    }
    waiters_.push_back(p);
    s.block(p, "lock");
    // Ownership was transferred to us by the releaser, which also
    // advanced our clock and charged the wait.
    env_.syncEvent(p, id_, sim::SyncOp::Acquire, sim::SyncPrim::Lock);
}

void
Lock::release(ProcCtx& c)
{
    if (env_.mode() == Mode::Native) {
        mu_.unlock();
        return;
    }

    Scheduler& s = *env_.scheduler();
    ensure(held_, "release of a lock that is not held");
    // Publish the critical section before ownership transfers.
    env_.syncEvent(c.id(), id_, sim::SyncOp::Release,
                   sim::SyncPrim::Lock);
    Tick now = s.time(c.id());
    if (waiters_.empty()) {
        held_ = false;
        freeTime_ = now;
        return;
    }
    ProcId q = waiters_.front();
    waiters_.pop_front();
    if (now > s.time(q)) {
        env_.mutableStats(q).lockWait += now - s.time(q);
        s.advanceTo(q, now);
    }
    s.unblock(q);  // lock stays held; ownership passes to q
}

// --------------------------------------------------------------------
// Flag
// --------------------------------------------------------------------

Flag::Flag(Env& env) : env_(env), id_(env.registerSyncObj()) {}

void
Flag::set(ProcCtx& c)
{
    if (env_.mode() == Mode::Native) {
        std::lock_guard<std::mutex> lock(mu_);
        set_ = true;
        cv_.notify_all();
        return;
    }

    Scheduler& s = *env_.scheduler();
    set_ = true;
    setTime_ = s.time(c.id());
    // Publish everything done before the set; waiters acquire as they
    // resume (or immediately, if the flag is already set on arrival).
    env_.syncEvent(c.id(), id_, sim::SyncOp::Release,
                   sim::SyncPrim::Flag);
    for (ProcId q : waiters_) {
        if (setTime_ > s.time(q)) {
            env_.mutableStats(q).pauseWait += setTime_ - s.time(q);
            s.advanceTo(q, setTime_);
        }
        s.unblock(q);
    }
    waiters_.clear();
}

void
Flag::clear(ProcCtx&)
{
    if (env_.mode() == Mode::Native) {
        std::lock_guard<std::mutex> lock(mu_);
        set_ = false;
        return;
    }
    set_ = false;
}

void
Flag::wait(ProcCtx& c)
{
    ++c.stats().pauses;

    if (env_.mode() == Mode::Native) {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [this] { return set_; });
        return;
    }

    Scheduler& s = *env_.scheduler();
    ProcId p = c.id();
    if (set_) {
        if (setTime_ > s.time(p)) {
            c.stats().pauseWait += setTime_ - s.time(p);
            s.advanceTo(p, setTime_);
        }
        env_.syncEvent(p, id_, sim::SyncOp::Acquire,
                       sim::SyncPrim::Flag);
        return;
    }
    waiters_.push_back(p);
    s.block(p, "flag");
    env_.syncEvent(p, id_, sim::SyncOp::Acquire, sim::SyncPrim::Flag);
}

} // namespace splash::rt
