/**
 * @file
 * ExecutionBackend -- the mechanism seam under the Scheduler.
 *
 * The Scheduler owns *policy*: which simulated processor runs next
 * (smallest logical time, tie-break by processor id) and when a slice
 * ends (the quantum).  An ExecutionBackend owns *mechanism*: it
 * materializes one execution context per simulated processor and
 * performs the actual transfer of control between them.  Because
 * every scheduling decision is taken by the (deterministic) policy
 * layer and the backend only carries it out, the interleaving -- and
 * therefore every statistic the simulation produces -- is bit-identical
 * across backends.
 *
 * Two implementations:
 *
 *  - FiberBackend (default): each processor is a stackful user-level
 *    fiber; a handoff is a single in-process context switch costing
 *    tens of nanoseconds.  The whole simulation runs on one host
 *    thread, which is what the logically-serial interleaver wants.
 *
 *  - ThreadBackend: each processor is a host thread parked on its own
 *    condition variable; a handoff is a notify + wait (two kernel
 *    wakeups).  This preserves the historical behavior and serves as a
 *    differential-testing oracle for the fiber path.
 *
 * Protocol (all calls made by the Scheduler):
 *   run(n, entry, first)  -- create contexts 0..n-1, transfer control
 *                            to `first`, return after finish().
 *   switchTo(from, to)    -- called on context `from`; returns when
 *                            `from` is next scheduled.
 *   exitTo(from, to)      -- `from` is done and never resumes.
 *   finish(last)          -- all processors done; control returns to
 *                            the run() caller. `last` never resumes.
 */
#ifndef SPLASH2_RT_EXEC_BACKEND_H
#define SPLASH2_RT_EXEC_BACKEND_H

#include <functional>
#include <memory>
#include <string>

#include "base/types.h"

namespace splash::rt {

enum class BackendKind { Fiber, Thread };

/** Human-readable backend name ("fiber" / "thread"). */
const char* backendName(BackendKind kind);

/** Parse a backend name; returns false (and leaves @p out untouched)
 *  if @p s names no backend. */
bool parseBackendKind(const std::string& s, BackendKind* out);

class ExecutionBackend
{
  public:
    virtual ~ExecutionBackend() = default;

    virtual BackendKind kind() const = 0;

    /** Run one team episode: create @p nprocs contexts that each
     *  execute entry(p) when first scheduled, hand control to
     *  @p first, and return once finish() has been called.  entry must
     *  not return normally on the context of the last processor; it
     *  ends every context via exitTo()/finish(). */
    virtual void run(int nprocs,
                     const std::function<void(ProcId)>& entry,
                     ProcId first) = 0;

    /** Transfer control from the running context @p from to @p to;
     *  returns when @p from is scheduled again. */
    virtual void switchTo(ProcId from, ProcId to) = 0;

    /** Transfer control to @p to; context @p from never resumes. */
    virtual void exitTo(ProcId from, ProcId to) = 0;

    /** Return control to the run() caller; @p last never resumes. */
    virtual void finish(ProcId last) = 0;
};

std::unique_ptr<ExecutionBackend> makeExecutionBackend(BackendKind kind);

} // namespace splash::rt

#endif // SPLASH2_RT_EXEC_BACKEND_H
