/**
 * @file
 * The execution environment tying applications to the simulator.
 *
 * An Env owns P simulated processors and runs an application body once
 * per processor, in one of two modes:
 *
 *  - Mode::Native -- plain std::thread parallelism, no interleaving
 *    control. Used by the examples and correctness tests.
 *  - Mode::Sim -- the deterministic cooperative Scheduler interleaves
 *    processors by logical (PRAM) time, and every shared-memory
 *    reference is routed to the attached memory-system sinks
 *    (MemSystem and/or CacheSweep).  This is the Tango-Lite role.
 *    The execution mechanism (stackful fibers on one host thread, or
 *    one parked host thread per processor) is chosen by
 *    EnvConfig::backend; the interleaving is identical either way.
 *
 * Instruction accounting (Table 1 of the paper): every instrumented
 * read or write counts as one instruction, and applications annotate
 * their computation with work(n) / flops(n) at compute sites.  Logical
 * time advances identically, which is exactly the paper's PRAM model
 * (every instruction and memory reference completes in one cycle).
 *
 * Measurement windows: startMeasurement() zeroes all statistics while
 * preserving cache and logical-clock state, implementing the paper's
 * "start measuring after initialization and cold start" methodology.
 * It must be called at a point where all processors are quiescent
 * (typically by one processor between two barriers).
 */
#ifndef SPLASH2_RT_ENV_H
#define SPLASH2_RT_ENV_H

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "base/types.h"
#include "rt/scheduler.h"
#include "rt/shared_heap.h"
#include "sim/trace.h"

namespace splash::sim {
class MemSystem;
class CacheSweep;
} // namespace splash::sim

namespace splash::rt {

enum class Mode { Native, Sim };

/** How instrumented references reach the attached sinks (sim mode).
 *
 *  - Direct: every reference calls each sink synchronously.
 *  - Batched: references append to a record ring drained at every
 *    scheduling boundary (quantum expiry, block, exit) and at
 *    measurement boundaries.  Exactly one simulated processor runs at
 *    a time and the ring is drained before control transfers, so the
 *    delivered order equals the execution order and all statistics are
 *    bit-identical to Direct -- only the call pattern changes.
 */
enum class Delivery : std::uint8_t { Direct, Batched };

const char* deliveryName(Delivery d);
bool parseDelivery(const std::string& s, Delivery* out);

/** Per-processor execution statistics (Table 1 / Figure 2 inputs). */
struct ProcStats
{
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t flops = 0;
    std::uint64_t work = 0;  ///< non-memory instructions (includes flops)

    std::uint64_t barriers = 0;  ///< barrier episodes encountered
    std::uint64_t locks = 0;     ///< lock acquisitions
    std::uint64_t pauses = 0;    ///< flag-based waits

    Tick barrierWait = 0;
    Tick lockWait = 0;
    Tick pauseWait = 0;

    Tick startTime = 0;   ///< logical clock at measurement start
    Tick finishTime = 0;  ///< logical clock at body completion

    std::uint64_t instructions() const { return work + reads + writes; }
    Tick syncWait() const { return barrierWait + lockWait + pauseWait; }
    Tick elapsed() const
    {
        return finishTime > startTime ? finishTime - startTime : 0;
    }

    ProcStats&
    operator+=(const ProcStats& o)
    {
        reads += o.reads;
        writes += o.writes;
        flops += o.flops;
        work += o.work;
        barriers += o.barriers;
        locks += o.locks;
        pauses += o.pauses;
        barrierWait += o.barrierWait;
        lockWait += o.lockWait;
        pauseWait += o.pauseWait;
        return *this;
    }
};

struct EnvConfig
{
    Mode mode = Mode::Native;
    int nprocs = 1;
    /** Scheduler quantum (instrumentation events per slice), sim mode. */
    std::uint64_t quantum = 250;
    /** Execution mechanism for the sim-mode interleaver: fibers on one
     *  host thread (default, fast) or one parked host thread per
     *  processor (the historical baton; differential oracle). */
    BackendKind backend = BackendKind::Fiber;
    /** Reference delivery shape (batched by default; bit-identical). */
    Delivery delivery = Delivery::Batched;
};

class Env;

/** Per-processor handle passed to application bodies. */
class ProcCtx
{
  public:
    ProcId id() const { return id_; }
    Env& env() const { return *env_; }
    int nprocs() const;

    /** Instrumented shared-memory read of [a, a+n). */
    void read(const void* a, std::size_t n);
    /** Instrumented shared-memory write of [a, a+n). */
    void write(const void* a, std::size_t n);
    /** Instrumented *atomic* read/write: identical to read()/write()
     *  for every statistic and for the memory system, but the record
     *  carries AccessRec::kAtomic so happens-before analysis treats it
     *  as an annotated lock-free access (rt/shared.h ldAtomic). */
    void readAtomic(const void* a, std::size_t n);
    void writeAtomic(const void* a, std::size_t n);
    /** Account @p n non-memory instructions. */
    void work(std::uint64_t n);
    /** Account @p n floating-point operations (each one instruction). */
    void flops(std::uint64_t n);
    /** Advance logical time by @p n cycles of *idle* spinning (charged
     *  as pause wait, not instructions) -- used by busy-wait loops
     *  such as task-queue polling. */
    void idle(std::uint64_t n);

    ProcStats& stats() { return *stats_; }

  private:
    friend class Env;
    Env* env_ = nullptr;
    ProcId id_ = -1;
    ProcStats* stats_ = nullptr;
};

/** Current processor context; null outside a team body (e.g. during
 *  problem setup), in which case instrumentation hooks are no-ops.
 *
 *  In sim mode the context is resolved through the scheduler's
 *  running-processor id rather than per-host-thread state, so it is
 *  correct under both execution backends -- with fibers, every
 *  simulated processor shares one host thread and a plain thread_local
 *  would go stale at each context switch. */
ProcCtx* cur();

class Env
{
  public:
    explicit Env(const EnvConfig& cfg);
    ~Env();

    Env(const Env&) = delete;
    Env& operator=(const Env&) = delete;

    /** Run @p body once per processor to completion (a "team"). May be
     *  called multiple times; logical clocks persist across calls. */
    void run(const std::function<void(ProcCtx&)>& body);

    /** Attach/detach reference sinks (sim mode only). */
    void attachMemSystem(sim::MemSystem* m) { mem_ = m; }
    void attachSweep(sim::CacheSweep* s) { sweep_ = s; }
    /** Attach an additional generic sink (e.g. ParallelSweep, Trace).
     *  Sinks are delivered to after MemSystem and CacheSweep. */
    void attachSink(sim::RefSink* s) { sinks_.push_back(s); }

    Delivery delivery() const { return cfg_.delivery; }

    /** Deliver any batched records still in the ring.  Called
     *  automatically at every scheduling boundary and after run();
     *  public so tests can force a boundary. */
    void drainRefs();

    /** Allocate a stream-wide id for a synchronization object
     *  (rt/sync.h Barrier/Lock/Flag).  Ids are dense, assigned in
     *  construction order, and deterministic run to run. */
    std::uint32_t registerSyncObj() { return nextSyncId_++; }

    /** Forward one synchronization edge to the attached generic sinks
     *  at its exact stream position (sim mode; no-op otherwise).
     *  Pending batched references are drained first, so a sink's
     *  sync() call lands between the same two access() calls as it
     *  would under direct delivery.  MemSystem/CacheSweep never see
     *  sync records -- their reference stream is unchanged. */
    void syncEvent(ProcId p, std::uint32_t obj, sim::SyncOp op,
                   sim::SyncPrim prim);

    /** Zero all statistics (Env + attached sinks) while keeping cache
     *  and clock state. Callable from inside a team when all other
     *  processors are at a barrier, or between runs. */
    void startMeasurement();

    Mode mode() const { return cfg_.mode; }
    int nprocs() const { return cfg_.nprocs; }

    const ProcStats& stats(ProcId p) const { return stats_[p]; }
    /** Mutable access for the runtime's sync primitives, which charge
     *  wait time to processors other than the caller. */
    ProcStats& mutableStats(ProcId p) { return stats_[p]; }
    ProcStats totalStats() const;

    /** PRAM execution time of the measured window: max over processors
     *  of (finish - measurement start). Sim mode only. */
    Tick elapsed() const;

    SharedHeap& heap() { return heap_; }
    Scheduler* scheduler() { return sched_.get(); }
    sim::MemSystem* memSystem() { return mem_; }
    sim::CacheSweep* sweep() { return sweep_; }

    /** Context of the processor the scheduler is currently running;
     *  null outside a sim-mode team episode. Used by cur(). */
    ProcCtx* runningCtx();

  private:
    friend class ProcCtx;

    /** Ring capacity: big enough that drains are amortized over many
     *  references, small enough to stay L1/L2-resident. */
    static constexpr std::size_t kRingCap = 4096;

    /** Hot path of the instrumented read/write hooks (sim mode). */
    void simAccess(ProcId p, Addr a, int n, AccessType t,
                   std::uint8_t flags = 0);
    /** Direct-delivery shape: call every sink for one reference. */
    void deliver(const sim::AccessRec& r);

    EnvConfig cfg_;
    SharedHeap heap_;
    std::unique_ptr<Scheduler> sched_;
    std::vector<ProcStats> stats_;
    /** Team contexts of the episode in progress (sim mode only). */
    ProcCtx* episodeCtxs_ = nullptr;
    sim::MemSystem* mem_ = nullptr;
    sim::CacheSweep* sweep_ = nullptr;
    std::vector<sim::RefSink*> sinks_;
    /** Batched-delivery record ring; ringN_ is the fill level.  One
     *  ring serves all processors: only the running processor appends,
     *  and the ring is drained before control transfers. */
    std::vector<sim::AccessRec> ring_;
    std::size_t ringN_ = 0;
    /** Next sync-object id (registerSyncObj). */
    std::uint32_t nextSyncId_ = 0;
};

// ----------------------------------------------------------------------
// Inline instrumentation hot path.  One branch on mode, one clock
// bump, then either a record append (batched) or sink calls (direct).

inline void
Env::simAccess(ProcId p, Addr a, int n, AccessType t, std::uint8_t flags)
{
    Scheduler& s = *sched_;
    s.advance(p, 1);
    // Sinks see simulated (arena-relative) addresses, so set indices,
    // interleaving, and home resolution never depend on where the host
    // kernel mapped the arena.
    a = heap_.toSim(a);
    if (cfg_.delivery == Delivery::Batched) [[likely]] {
        sim::AccessRec& r = ring_[ringN_];
        r.addr = a;
        r.ltime = s.time(p);
        r.size = n;
        r.proc = static_cast<std::int16_t>(p);
        r.type = t;
        r.flags = flags;
        if (++ringN_ == kRingCap) [[unlikely]]
            drainRefs();
    } else {
        sim::AccessRec r;
        r.addr = a;
        r.ltime = s.time(p);
        r.size = n;
        r.proc = static_cast<std::int16_t>(p);
        r.type = t;
        r.flags = flags;
        deliver(r);
    }
    s.event(p);
}

inline void
ProcCtx::read(const void* a, std::size_t n)
{
    ++stats_->reads;
    if (env_->cfg_.mode == Mode::Sim)
        env_->simAccess(id_, reinterpret_cast<Addr>(a),
                        static_cast<int>(n), AccessType::Read);
}

inline void
ProcCtx::write(const void* a, std::size_t n)
{
    ++stats_->writes;
    if (env_->cfg_.mode == Mode::Sim)
        env_->simAccess(id_, reinterpret_cast<Addr>(a),
                        static_cast<int>(n), AccessType::Write);
}

inline void
ProcCtx::readAtomic(const void* a, std::size_t n)
{
    ++stats_->reads;
    if (env_->cfg_.mode == Mode::Sim)
        env_->simAccess(id_, reinterpret_cast<Addr>(a),
                        static_cast<int>(n), AccessType::Read,
                        sim::AccessRec::kAtomic);
}

inline void
ProcCtx::writeAtomic(const void* a, std::size_t n)
{
    ++stats_->writes;
    if (env_->cfg_.mode == Mode::Sim)
        env_->simAccess(id_, reinterpret_cast<Addr>(a),
                        static_cast<int>(n), AccessType::Write,
                        sim::AccessRec::kAtomic);
}

inline void
ProcCtx::work(std::uint64_t n)
{
    stats_->work += n;
    if (env_->cfg_.mode == Mode::Sim) {
        Scheduler& s = *env_->sched_;
        s.advance(id_, n);
        s.event(id_);
    }
}

inline void
ProcCtx::flops(std::uint64_t n)
{
    stats_->flops += n;
    work(n);
}

inline void
ProcCtx::idle(std::uint64_t n)
{
    stats_->pauseWait += n;
    if (env_->cfg_.mode == Mode::Sim) {
        Scheduler& s = *env_->sched_;
        s.advance(id_, n);
        s.event(id_);
    }
}

} // namespace splash::rt

#endif // SPLASH2_RT_ENV_H
