/**
 * @file
 * Instrumented shared-data containers.
 *
 * All shared application state lives in SharedArray<T> / SharedVar<T>,
 * allocated from the Env's SharedHeap.  Every access goes through the
 * current ProcCtx's read/write hooks, which is how the reference
 * stream reaches the memory-system simulator: under the default
 * batched delivery the hook is a record append into the Env's ring
 * (drained at scheduling boundaries), under direct delivery it is a
 * synchronous call into each sink -- see rt::Delivery.  Outside a team
 * body (problem setup, result verification) the hooks are no-ops,
 * matching the paper's methodology of measuring only the parallel
 * phase.
 *
 * Access idioms:
 *
 *  - scalar element types: `a[i]` yields a proxy usable as a value and
 *    as an assignment target (`a[i] = x; y = a[i]; a[i] += z;`);
 *  - struct element types: whole-element `ld(i)` / `st(i, v)`, or
 *    field-granular `ldf(i, &S::member)` / `stf(i, &S::member, v)`
 *    which reference only the member's bytes (important for false
 *    sharing fidelity);
 *  - bulk kernels may use `raw()` with explicit `touchRead/touchWrite`
 *    annotations when proxy overhead matters.
 */
#ifndef SPLASH2_RT_SHARED_H
#define SPLASH2_RT_SHARED_H

#include <cstddef>
#include <type_traits>

#include "base/log.h"
#include "rt/env.h"

namespace splash::rt {

/** Record an instrumented read of [p, p+n) on the current processor. */
inline void
touchRead(const void* p, std::size_t n)
{
    if (ProcCtx* c = cur())
        c->read(p, n);
}

/** Record an instrumented write of [p, p+n) on the current processor. */
inline void
touchWrite(const void* p, std::size_t n)
{
    if (ProcCtx* c = cur())
        c->write(p, n);
}

/** Like touchRead/touchWrite, but the record carries the atomic flag:
 *  identical for every memory-system statistic, excluded from
 *  happens-before race checking (sim/racecheck.h). */
inline void
touchReadAtomic(const void* p, std::size_t n)
{
    if (ProcCtx* c = cur())
        c->readAtomic(p, n);
}

inline void
touchWriteAtomic(const void* p, std::size_t n)
{
    if (ProcCtx* c = cur())
        c->writeAtomic(p, n);
}

/** A shared array of trivially-copyable elements. */
template <typename T>
class SharedArray
{
    static_assert(std::is_trivially_copyable_v<T>,
                  "shared elements must be trivially copyable");
    static_assert(std::is_trivially_destructible_v<T>,
                  "shared elements must be trivially destructible");

  public:
    /** Element proxy that instruments value reads and writes. */
    class Ref
    {
      public:
        explicit Ref(T* p) : p_(p) {}

        operator T() const
        {
            touchRead(p_, sizeof(T));
            return *p_;
        }

        Ref&
        operator=(const T& v)
        {
            touchWrite(p_, sizeof(T));
            *p_ = v;
            return *this;
        }

        Ref&
        operator=(const Ref& o)
        {
            return *this = static_cast<T>(o);
        }

        Ref& operator+=(const T& v) { return *this = static_cast<T>(*this) + v; }
        Ref& operator-=(const T& v) { return *this = static_cast<T>(*this) - v; }
        Ref& operator*=(const T& v) { return *this = static_cast<T>(*this) * v; }
        Ref& operator/=(const T& v) { return *this = static_cast<T>(*this) / v; }

      private:
        T* p_;
    };

    SharedArray() = default;

    /** Allocate @p n zero-initialized elements from @p env's heap. */
    SharedArray(Env& env, std::size_t n)
        : heap_(&env.heap()), n_(n),
          data_(static_cast<T*>(env.heap().alloc(
              n * sizeof(T), alignof(T) > 64 ? alignof(T) : 64)))
    {}

    std::size_t size() const { return n_; }
    bool empty() const { return n_ == 0; }

    Ref
    operator[](std::size_t i)
    {
        return Ref(&data_[i]);
    }

    /** Instrumented whole-element load. */
    T
    ld(std::size_t i) const
    {
        touchRead(&data_[i], sizeof(T));
        return data_[i];
    }

    /** Instrumented whole-element store. */
    void
    st(std::size_t i, const T& v)
    {
        touchWrite(&data_[i], sizeof(T));
        data_[i] = v;
    }

    /** Instrumented field load: references only the member's bytes. */
    template <typename F, typename U = T>
        requires std::is_class_v<U>
    F
    ldf(std::size_t i, F U::* field) const
    {
        const F* p = &(data_[i].*field);
        touchRead(p, sizeof(F));
        return *p;
    }

    /** Instrumented field store. */
    template <typename F, typename U = T>
        requires std::is_class_v<U>
    void
    stf(std::size_t i, F U::* field, const F& v)
    {
        F* p = &(data_[i].*field);
        touchWrite(p, sizeof(F));
        *p = v;
    }

    /** Instrumented load that is also a host-level relaxed atomic.
     *  The *simulated* machine is coherent (the memory-system model
     *  provides that), but lock-free idioms like an unlocked emptiness
     *  peek are real data races on the host unless both sides use
     *  atomic accesses.  Same address/size/type instrumentation as
     *  ld(), so the simulated reference stream is unchanged -- the
     *  record just carries the atomic flag, which excludes it from
     *  happens-before race checking exactly as the host-level atomic
     *  excludes it from TSan. */
    template <typename U = T>
        requires std::is_integral_v<U>
    T
    ldAtomic(std::size_t i) const
    {
        touchReadAtomic(&data_[i], sizeof(T));
        return __atomic_load_n(&data_[i], __ATOMIC_RELAXED);
    }

    /** Instrumented store, host-level relaxed atomic (see ldAtomic). */
    template <typename U = T>
        requires std::is_integral_v<U>
    void
    stAtomic(std::size_t i, const T& v)
    {
        touchWriteAtomic(&data_[i], sizeof(T));
        __atomic_store_n(&data_[i], v, __ATOMIC_RELAXED);
    }

    /** Instrumented whole-element load annotated as an *intentional*
     *  unsynchronized read.  Some SPLASH-2 codes read shared records
     *  without holding the protecting lock by design -- Radiosity's
     *  visibility and refinement stages read patch data that another
     *  processor may be subdividing, tolerating stale values (the
     *  original release documents these as acceptable data races).
     *  The reference stream is identical to ld() -- same address,
     *  size, and type, so every memory-system statistic is unchanged
     *  -- but the record carries the atomic flag, which excludes it
     *  from happens-before race checking the same way a TSan
     *  suppression silences a known benign race.  Only the annotated
     *  access is excluded: a second *unannotated* unsynchronized
     *  access to the same data still reports. */
    T
    ldRacy(std::size_t i) const
    {
        touchReadAtomic(&data_[i], sizeof(T));
        return data_[i];
    }

    /** Uninstrumented access for setup/verification and for annotated
     *  bulk kernels. */
    T* raw() { return data_; }
    const T* raw() const { return data_; }

    /** Home [first, first+count) elements at node @p home (rounded to
     *  the enclosing byte range). */
    void
    setHome(std::size_t first, std::size_t count, ProcId home)
    {
        heap_->setHome(&data_[first], count * sizeof(T), home);
    }

  private:
    SharedHeap* heap_ = nullptr;
    std::size_t n_ = 0;
    T* data_ = nullptr;
};

/** A single shared scalar. */
template <typename T>
class SharedVar
{
  public:
    SharedVar() = default;
    explicit SharedVar(Env& env, const T& init = T{}) : a_(env, 1)
    {
        *a_.raw() = init;
    }

    typename SharedArray<T>::Ref operator*() { return a_[0]; }
    T get() const { return a_.ld(0); }
    void set(const T& v) { a_.st(0, v); }
    /** Host-level relaxed atomics (see SharedArray::ldAtomic). */
    T getAtomic() const { return a_.ldAtomic(0); }
    void setAtomic(const T& v) { a_.stAtomic(0, v); }
    T* raw() { return a_.raw(); }

  private:
    SharedArray<T> a_;
};

} // namespace splash::rt

#endif // SPLASH2_RT_SHARED_H
