/**
 * @file
 * Placement-aware shared heap.
 *
 * All shared application data is carved from this arena so the memory
 * simulator can (a) identify shared addresses and (b) resolve each
 * cache line's home node.  Applications follow the paper's per-program
 * data-distribution guidelines through setHome(): e.g. LU homes each
 * block at its owning processor, Ocean homes each square subgrid
 * locally, FFT homes each contiguous row band locally.  Regions with no
 * explicit placement are interleaved across nodes at line granularity.
 */
#ifndef SPLASH2_RT_SHARED_HEAP_H
#define SPLASH2_RT_SHARED_HEAP_H

#include <cstddef>
#include <map>
#include <memory>
#include <vector>

#include "base/types.h"
#include "sim/directory.h"

namespace splash::rt {

class SharedHeap : public sim::HomeResolver
{
  public:
    explicit SharedHeap(int nprocs, int lineSize = 64);

    /** Allocate @p bytes aligned to @p align (>= one cache line so that
     *  distinct allocations never false-share by construction unless
     *  the application wants them to). Memory is zero-initialized and
     *  lives until the heap is destroyed. */
    void* alloc(std::size_t bytes, std::size_t align = 64);

    /** Declare that [p, p+bytes) is homed at node @p home. Later calls
     *  override earlier ones for overlapping ranges only if they start
     *  at distinct addresses; apps are expected to place each range
     *  once. */
    void setHome(const void* p, std::size_t bytes, ProcId home);

    /** HomeResolver: home node of the line containing @p lineAddr. */
    ProcId homeOf(Addr lineAddr) const override;

    std::size_t bytesAllocated() const { return allocated_; }

  private:
    struct Span
    {
        Addr end;
        ProcId home;
    };

    int nprocs_;
    int lineShift_;
    std::size_t allocated_ = 0;
    std::vector<std::unique_ptr<char[]>> blocks_;
    char* cursor_ = nullptr;
    std::size_t remaining_ = 0;
    std::map<Addr, Span> homes_;  // key: span start address
};

} // namespace splash::rt

#endif // SPLASH2_RT_SHARED_HEAP_H
