/**
 * @file
 * Placement-aware shared heap with a stable simulated address space.
 *
 * All shared application data is carved from this arena so the memory
 * simulator can (a) identify shared addresses and (b) resolve each
 * cache line's home node.  Applications follow the paper's per-program
 * data-distribution guidelines through setHome(): e.g. LU homes each
 * block at its owning processor, Ocean homes each square subgrid
 * locally, FFT homes each contiguous row band locally.  Regions with no
 * explicit placement are interleaved across nodes at line granularity.
 *
 * Simulated addresses: the arena is one contiguous mmap reservation,
 * and every instrumented reference is translated to a *simulated*
 * address (arena offset + kSimBase) before it reaches any sink.  Cache
 * set indices, line interleaving, and home resolution therefore depend
 * only on the (deterministic) allocation sequence, never on where the
 * host kernel happened to map the arena -- so repeated runs, runs in
 * different processes, and runs sharing a process with concurrent
 * experiments all produce bit-identical characterizations.  Placement
 * spans (setHome) are stored in simulated coordinates; homeOf expects
 * simulated line addresses.
 *
 * Placement changes are stream-ordered: a mutation observer installed
 * by the Env fires before every setHome so buffering sinks (e.g. the
 * broadcast replay engine) can finish delivering references issued
 * under the old placement first.
 */
#ifndef SPLASH2_RT_SHARED_HEAP_H
#define SPLASH2_RT_SHARED_HEAP_H

#include <cstddef>
#include <functional>
#include <map>

#include "base/types.h"
#include "sim/directory.h"

namespace splash::rt {

class SharedHeap : public sim::HomeResolver
{
  public:
    /** Base of the simulated address range all arenas translate to. */
    static constexpr Addr kSimBase = Addr(1) << 32;
    /** Reserved (not committed) arena span; pages are backed lazily. */
    static constexpr std::size_t kArenaBytes = std::size_t(1) << 30;

    explicit SharedHeap(int nprocs, int lineSize = 64);
    ~SharedHeap() override;

    SharedHeap(const SharedHeap&) = delete;
    SharedHeap& operator=(const SharedHeap&) = delete;

    /** Allocate @p bytes aligned to @p align (>= one cache line so that
     *  distinct allocations never false-share by construction unless
     *  the application wants them to). Memory is zero-initialized and
     *  lives until the heap is destroyed. */
    void* alloc(std::size_t bytes, std::size_t align = 64);

    /** Declare that [p, p+bytes) is homed at node @p home. Later calls
     *  override earlier ones for overlapping ranges only if they start
     *  at distinct addresses; apps are expected to place each range
     *  once. */
    void setHome(const void* p, std::size_t bytes, ProcId home);

    /** HomeResolver: home node of the line containing @p lineAddr
     *  (a *simulated* address). */
    ProcId homeOf(Addr lineAddr) const override;

    /** Translate a host address into the simulated address space.
     *  Addresses outside the arena pass through unchanged (private or
     *  stack data an application chose to instrument). */
    Addr
    toSim(Addr hostAddr) const
    {
        return hostAddr - base_ < kArenaBytes
                   ? hostAddr - base_ + kSimBase
                   : hostAddr;
    }

    /** Install a hook fired before any placement mutation (setHome),
     *  carrying the span about to change (simulated start, length,
     *  new home); the Env uses it to quiesce buffering reference
     *  sinks so home resolution stays stream-ordered and to forward
     *  the span to recording sinks. */
    void
    setPlacementObserver(
        std::function<void(Addr, std::size_t, ProcId)> f)
    {
        preMutate_ = std::move(f);
    }

    std::size_t bytesAllocated() const { return allocated_; }

  private:
    struct Span
    {
        Addr end;
        ProcId home;
    };

    int nprocs_;
    int lineShift_;
    std::size_t allocated_ = 0;
    Addr base_ = 0;           ///< host base of the mmap reservation
    std::size_t cursor_ = 0;  ///< next free arena offset
    std::function<void(Addr, std::size_t, ProcId)> preMutate_;
    std::map<Addr, Span> homes_;  // key: simulated span start address
};

} // namespace splash::rt

#endif // SPLASH2_RT_SHARED_HEAP_H
