/**
 * @file
 * Synchronization primitives -- the PARMACS-macro equivalents.
 *
 * Three primitives cover everything the SPLASH-2 programs use:
 *
 *  - Barrier  (BARRIER)       -- all-processor rendezvous
 *  - Lock     (LOCK/ALOCK)    -- mutual exclusion
 *  - Flag     (PAUSE/SETPAUSE)-- flag-based producer/consumer sync
 *
 * In native mode they wrap the obvious std primitives.  In sim mode
 * they cooperate with the Scheduler and implement the paper's PRAM
 * timing model:
 *
 *  - a barrier sets every participant's logical clock to the maximum
 *    arrival clock, charging each the difference as barrier wait;
 *  - a lock serializes critical sections in logical time: an acquirer
 *    starts no earlier than the previous holder's release clock, and
 *    the delay is charged as lock wait;
 *  - a flag wait completes at the setter's clock.
 *
 * Figure 2 (synchronization time breakdown) is produced entirely from
 * the wait counters these primitives maintain.
 *
 * Each primitive also registers a sync-object id with its Env and, in
 * sim mode, emits SyncRec acquire/release edges into the reference
 * stream (Env::syncEvent) at the exact point the primitive takes
 * effect.  Happens-before analysis (sim/racecheck.h) reconstructs the
 * program's synchronization order from these edges alone:
 *
 *  - barrier: every arrival releases into the barrier object *before*
 *    any participant departs, and every departure acquires from it,
 *    so all pre-barrier work happens-before all post-barrier work;
 *  - lock: acquire edges at acquisition, release edges at release --
 *    critical sections on the same lock are totally ordered;
 *  - flag: set releases, a completed wait acquires.  clear() emits
 *    nothing; the object keeps its accumulated order, which is exact
 *    for the suite's single-setter flags and conservative (extra
 *    edges, never missing ones) if a re-cleared flag is set by a
 *    different processor later.
 */
#ifndef SPLASH2_RT_SYNC_H
#define SPLASH2_RT_SYNC_H

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

#include "base/types.h"
#include "rt/env.h"

namespace splash::rt {

/** All-processor rendezvous. */
class Barrier
{
  public:
    /** @param n participant count; 0 means the whole team. */
    explicit Barrier(Env& env, int n = 0);

    /** Arrive and wait for all participants. */
    void arrive(ProcCtx& c);

    /** Stream-wide sync-object id (Env::registerSyncObj). */
    std::uint32_t id() const { return id_; }

  private:
    Env& env_;
    int n_;
    std::uint32_t id_;

    // Native mode.
    std::mutex mu_;
    std::condition_variable cv_;
    std::uint64_t generation_ = 0;

    // Shared.
    int count_ = 0;

    // Sim mode.
    Tick maxArrival_ = 0;
    std::vector<ProcId> waiters_;
};

/** Mutual exclusion lock. */
class Lock
{
  public:
    explicit Lock(Env& env);

    void acquire(ProcCtx& c);
    void release(ProcCtx& c);

    /** RAII critical section. */
    class Guard
    {
      public:
        Guard(Lock& l, ProcCtx& c) : l_(l), c_(c) { l_.acquire(c_); }
        ~Guard() { l_.release(c_); }
        Guard(const Guard&) = delete;
        Guard& operator=(const Guard&) = delete;

      private:
        Lock& l_;
        ProcCtx& c_;
    };

    /** Stream-wide sync-object id (Env::registerSyncObj). */
    std::uint32_t id() const { return id_; }

  private:
    Env& env_;
    std::uint32_t id_;

    // Native mode.
    std::mutex mu_;

    // Sim mode.
    bool held_ = false;
    Tick freeTime_ = 0;
    std::deque<ProcId> waiters_;
};

/** Flag-based synchronization (PAUSE/SETPAUSE/CLEARPAUSE). */
class Flag
{
  public:
    explicit Flag(Env& env);

    /** Set the flag and release all current and future waiters. */
    void set(ProcCtx& c);
    /** Clear the flag. */
    void clear(ProcCtx& c);
    /** Wait until the flag is set. */
    void wait(ProcCtx& c);
    bool isSet() const { return set_; }

    /** Stream-wide sync-object id (Env::registerSyncObj). */
    std::uint32_t id() const { return id_; }

  private:
    Env& env_;
    std::uint32_t id_;

    // Native mode.
    std::mutex mu_;
    std::condition_variable cv_;

    // Shared.
    bool set_ = false;

    // Sim mode.
    Tick setTime_ = 0;
    std::vector<ProcId> waiters_;
};

} // namespace splash::rt

#endif // SPLASH2_RT_SYNC_H
