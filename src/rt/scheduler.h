/**
 * @file
 * Deterministic cooperative scheduler -- the reference interleaver.
 *
 * This plays the role Tango-Lite played for the paper: it multiplexes P
 * simulated processors onto host threads such that exactly one simulated
 * processor executes at any instant (a "baton" handed off under a global
 * mutex), and context switches happen only at instrumentation points.
 *
 * Scheduling policy: among runnable processors, run the one with the
 * smallest logical (PRAM) clock, breaking ties by processor id.  Each
 * processor runs for a bounded quantum of instrumentation events before
 * yielding.  Because both the yield points and the policy are functions
 * of the (deterministic) application alone, entire simulations are
 * bit-reproducible -- and the interleaving approximates the PRAM
 * execution the paper's timing model defines.
 *
 * Synchronization primitives integrate through block()/unblock(); a
 * state where no processor is runnable and not all are done is reported
 * as a deadlock with a diagnostic.
 */
#ifndef SPLASH2_RT_SCHEDULER_H
#define SPLASH2_RT_SCHEDULER_H

#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "base/types.h"

namespace splash::rt {

class Scheduler
{
  public:
    /** @param nprocs simulated processors; @param quantum max
     *  instrumentation events per scheduling slice. */
    explicit Scheduler(int nprocs, std::uint64_t quantum = 250);

    /** Run @p body once per simulated processor to completion. */
    void run(const std::function<void(ProcId)>& body);

    /** Called by the running processor on every instrumentation event;
     *  yields when the quantum expires. @p p must be the running proc. */
    void
    event(ProcId p)
    {
        if (++eventsInSlice_ >= quantum_)
            yield(p);
    }

    /** Explicitly hand the baton to the best runnable processor. */
    void yield(ProcId p);

    /** Block the running processor @p p until another processor calls
     *  unblock(p). Returns once rescheduled. */
    void block(ProcId p);

    /** Mark @p q runnable again. Must be called by the running
     *  processor (i.e. while holding the baton). */
    void unblock(ProcId q);

    /** Logical clock accessors; used by the sync primitives to
     *  implement PRAM time. */
    Tick time(ProcId p) const { return lt_[p]; }
    void advance(ProcId p, Tick n) { lt_[p] += n; }
    void advanceTo(ProcId p, Tick t) { if (lt_[p] < t) lt_[p] = t; }

    int nprocs() const { return nprocs_; }

    /** True while run() is active (used by instrumentation hooks). */
    bool active() const { return active_; }

  private:
    enum class Status : std::uint8_t { Ready, Running, Blocked, Done };

    /** Pick the runnable processor with the smallest logical time;
     *  -1 if none. Caller holds mu_. */
    ProcId pickNext() const;
    /** Hand off from @p p (already marked non-Running) and wait until
     *  rescheduled unless @p exiting. Caller holds lock. */
    void switchFrom(std::unique_lock<std::mutex>& lock, ProcId p,
                    bool exiting);

    int nprocs_;
    std::uint64_t quantum_;
    std::uint64_t eventsInSlice_ = 0;
    bool active_ = false;

    mutable std::mutex mu_;
    /** Per-processor parking cvs, alive only during run(). */
    void* parkedCvs_ = nullptr;
    std::condition_variable doneCv_;
    ProcId running_ = -1;
    int doneCount_ = 0;
    std::vector<Status> status_;
    std::vector<Tick> lt_;
};

} // namespace splash::rt

#endif // SPLASH2_RT_SCHEDULER_H
