/**
 * @file
 * Deterministic cooperative scheduler -- the reference interleaver.
 *
 * This plays the role Tango-Lite played for the paper: it multiplexes P
 * simulated processors so that exactly one executes at any instant, and
 * context switches happen only at instrumentation points.
 *
 * Scheduling policy: among runnable processors, run the one with the
 * smallest logical (PRAM) clock, breaking ties by processor id.  Each
 * processor runs for a bounded quantum of instrumentation events before
 * yielding.  Because both the yield points and the policy are functions
 * of the (deterministic) application alone, entire simulations are
 * bit-reproducible -- and the interleaving approximates the PRAM
 * execution the paper's timing model defines.
 *
 * The scheduler is pure policy; the mechanics of holding P suspended
 * execution contexts and transferring control between them live behind
 * the ExecutionBackend seam (rt/exec_backend.h).  With the default
 * FiberBackend the whole simulation runs on one host thread and a
 * handoff is a user-space context switch; the ThreadBackend reproduces
 * the historical one-host-thread-per-processor baton.  Both produce
 * bit-identical interleavings because every decision is taken here.
 * Since at most one simulated processor executes at a time, the policy
 * state below needs no host synchronization of its own.
 *
 * Synchronization primitives integrate through block()/unblock(); a
 * state where no processor is runnable and not all are done is reported
 * as a deadlock with a per-processor diagnostic (status, logical time,
 * and what each blocked processor is waiting on).
 */
#ifndef SPLASH2_RT_SCHEDULER_H
#define SPLASH2_RT_SCHEDULER_H

#include <functional>
#include <memory>
#include <vector>

#include "base/types.h"
#include "rt/exec_backend.h"

namespace splash::rt {

class Scheduler
{
  public:
    /** @param nprocs simulated processors; @param quantum max
     *  instrumentation events per scheduling slice; @param backend
     *  execution mechanism (fibers by default). */
    explicit Scheduler(int nprocs, std::uint64_t quantum = 250,
                       BackendKind backend = BackendKind::Fiber);
    ~Scheduler();

    /** Run @p body once per simulated processor to completion. */
    void run(const std::function<void(ProcId)>& body);

    /** Called by the running processor on every instrumentation event;
     *  yields when the quantum expires. @p p must be the running proc. */
    void
    event(ProcId p)
    {
        if (++eventsInSlice_ >= quantum_)
            yield(p);
    }

    /** Explicitly hand control to the best runnable processor. */
    void yield(ProcId p);

    /** Block the running processor @p p until another processor calls
     *  unblock(p). Returns once rescheduled. @p why labels what the
     *  processor waits on (shown in deadlock diagnostics). */
    void block(ProcId p, const char* why = "event");

    /** Mark @p q runnable again. Must be called by the running
     *  processor. Unblocking a processor that is not blocked (e.g.
     *  already done) is a no-op. */
    void unblock(ProcId q);

    /** Logical clock accessors; used by the sync primitives to
     *  implement PRAM time. */
    Tick time(ProcId p) const { return lt_[p]; }
    void advance(ProcId p, Tick n) { lt_[p] += n; }
    void advanceTo(ProcId p, Tick t) { if (lt_[p] < t) lt_[p] = t; }

    int nprocs() const { return nprocs_; }

    /** True while run() is active (used by instrumentation hooks). */
    bool active() const { return active_; }

    /** The processor currently holding control; -1 outside run().
     *  This is how fiber-aware cur() resolves the running context. */
    ProcId running() const { return running_; }

    BackendKind backendKind() const { return backend_->kind(); }

    /** Hook invoked with the outgoing processor immediately before any
     *  control transfer (yield, block, exit).  The batched reference
     *  delivery drains its record ring here, which is what makes the
     *  drained order equal the execution order.  Plain function pointer
     *  plus context: this sits on the context-switch path. */
    using PreSwitchHook = void (*)(void* ctx, ProcId p);
    void
    setPreSwitchHook(PreSwitchHook fn, void* ctx)
    {
        preSwitch_ = fn;
        preSwitchCtx_ = ctx;
    }

  private:
    enum class Status : std::uint8_t { Ready, Running, Blocked, Done };

    /** Pick the runnable processor with the smallest logical time;
     *  -1 if none. */
    ProcId pickNext() const;
    /** Hand off from @p p (already marked non-Running). Returns when
     *  @p p is rescheduled, unless @p exiting. */
    void switchFrom(ProcId p, bool exiting);
    /** One line per processor: status, logical time, block reason. */
    std::string stateReport() const;

    int nprocs_;
    std::uint64_t quantum_;
    std::uint64_t eventsInSlice_ = 0;
    bool active_ = false;

    std::unique_ptr<ExecutionBackend> backend_;
    PreSwitchHook preSwitch_ = nullptr;
    void* preSwitchCtx_ = nullptr;
    ProcId running_ = -1;
    int doneCount_ = 0;
    std::vector<Status> status_;
    std::vector<const char*> blockReason_;
    std::vector<Tick> lt_;
};

} // namespace splash::rt

#endif // SPLASH2_RT_SCHEDULER_H
