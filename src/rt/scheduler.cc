#include "rt/scheduler.h"

#include <string>

#include "base/log.h"

namespace splash::rt {

Scheduler::Scheduler(int nprocs, std::uint64_t quantum,
                     BackendKind backend)
    : nprocs_(nprocs), quantum_(quantum),
      backend_(makeExecutionBackend(backend)),
      status_(nprocs, Status::Ready), blockReason_(nprocs, nullptr),
      lt_(nprocs, 0)
{
    ensure(nprocs >= 1 && nprocs <= kMaxProcs, "bad processor count");
    ensure(quantum >= 1, "quantum must be positive");
}

Scheduler::~Scheduler() = default;

ProcId
Scheduler::pickNext() const
{
    ProcId best = -1;
    for (int p = 0; p < nprocs_; ++p) {
        if (status_[p] != Status::Ready)
            continue;
        if (best < 0 || lt_[p] < lt_[best])
            best = p;
    }
    return best;
}

void
Scheduler::run(const std::function<void(ProcId)>& body)
{
    ensure(!active_,
           "scheduler is already running (nested run() on one Env)");
    active_ = true;
    doneCount_ = 0;
    for (int p = 0; p < nprocs_; ++p) {
        status_[p] = Status::Ready;
        blockReason_[p] = nullptr;
    }
    eventsInSlice_ = 0;
    running_ = pickNext();
    ensure(running_ >= 0, "no runnable processor at start");
    status_[running_] = Status::Running;

    backend_->run(
        nprocs_,
        [this, &body](ProcId p) {
            body(p);
            status_[p] = Status::Done;
            ++doneCount_;
            if (doneCount_ == nprocs_) {
                running_ = -1;
                backend_->finish(p);
            } else {
                switchFrom(p, /*exiting=*/true);
            }
        },
        running_);

    active_ = false;
    running_ = -1;
}

void
Scheduler::switchFrom(ProcId p, bool exiting)
{
    if (preSwitch_)
        preSwitch_(preSwitchCtx_, p);
    ProcId next = pickNext();
    if (next < 0) {
        if (doneCount_ == nprocs_)
            return;
        panic("deadlock: no runnable processor\n" + stateReport());
    }
    eventsInSlice_ = 0;
    running_ = next;
    status_[next] = Status::Running;
    if (exiting) {
        backend_->exitTo(p, next);
    } else if (next != p) {
        backend_->switchTo(p, next);
        // Resumed: whoever scheduled us already marked us Running.
    }
}

void
Scheduler::yield(ProcId p)
{
    ensure(running_ == p, "yield from a processor that is not running");
    status_[p] = Status::Ready;
    switchFrom(p, /*exiting=*/false);
}

void
Scheduler::block(ProcId p, const char* why)
{
    ensure(running_ == p, "block from a processor that is not running");
    status_[p] = Status::Blocked;
    blockReason_[p] = why;
    switchFrom(p, /*exiting=*/false);
    blockReason_[p] = nullptr;
}

void
Scheduler::unblock(ProcId q)
{
    ensure(q >= 0 && q < nprocs_, "unblock of invalid processor");
    if (status_[q] == Status::Blocked)
        status_[q] = Status::Ready;
}

std::string
Scheduler::stateReport() const
{
    auto statusName = [](Status s) {
        switch (s) {
        case Status::Ready: return "Ready";
        case Status::Running: return "Running";
        case Status::Blocked: return "Blocked";
        case Status::Done: return "Done";
        }
        return "?";
    };
    std::string out;
    for (int p = 0; p < nprocs_; ++p) {
        out += "  P" + std::to_string(p) + ": " +
               statusName(status_[p]);
        if (status_[p] == Status::Blocked && blockReason_[p]) {
            out += "(";
            out += blockReason_[p];
            out += ")";
        }
        out += " @t=" + std::to_string(lt_[p]) + "\n";
    }
    return out;
}

} // namespace splash::rt
