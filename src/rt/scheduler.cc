#include "rt/scheduler.h"

#include <memory>
#include <string>

#include "base/log.h"

namespace splash::rt {

namespace {
/** One condition variable per simulated processor so a baton handoff
 *  wakes exactly one host thread. */
struct Parked
{
    std::vector<std::unique_ptr<std::condition_variable>> cvs;
    explicit Parked(int n)
    {
        cvs.reserve(n);
        for (int i = 0; i < n; ++i)
            cvs.push_back(std::make_unique<std::condition_variable>());
    }
};
} // namespace

Scheduler::Scheduler(int nprocs, std::uint64_t quantum)
    : nprocs_(nprocs), quantum_(quantum),
      status_(nprocs, Status::Ready), lt_(nprocs, 0)
{
    ensure(nprocs >= 1 && nprocs <= kMaxProcs, "bad processor count");
    ensure(quantum >= 1, "quantum must be positive");
}

ProcId
Scheduler::pickNext() const
{
    ProcId best = -1;
    for (int p = 0; p < nprocs_; ++p) {
        if (status_[p] != Status::Ready)
            continue;
        if (best < 0 || lt_[p] < lt_[best])
            best = p;
    }
    return best;
}

void
Scheduler::run(const std::function<void(ProcId)>& body)
{
    Parked parked(nprocs_);
    {
        std::unique_lock<std::mutex> lock(mu_);
        ensure(!active_, "scheduler is already running");
        active_ = true;
        doneCount_ = 0;
        for (int p = 0; p < nprocs_; ++p)
            status_[p] = Status::Ready;
        running_ = -1;
    }

    parkedCvs_ = &parked;
    std::vector<std::thread> threads;
    threads.reserve(nprocs_);
    for (int p = 0; p < nprocs_; ++p) {
        threads.emplace_back([this, p, &body, &parked] {
            {
                std::unique_lock<std::mutex> lock(mu_);
                parked.cvs[p]->wait(lock, [this, p] {
                    return running_ == p;
                });
            }
            body(p);
            std::unique_lock<std::mutex> lock(mu_);
            status_[p] = Status::Done;
            ++doneCount_;
            if (doneCount_ == nprocs_) {
                running_ = -1;
                doneCv_.notify_all();
            } else {
                switchFrom(lock, p, /*exiting=*/true);
            }
        });
    }

    {
        std::unique_lock<std::mutex> lock(mu_);
        eventsInSlice_ = 0;
        running_ = pickNext();
        ensure(running_ >= 0, "no runnable processor at start");
        status_[running_] = Status::Running;
        parked.cvs[running_]->notify_one();
        doneCv_.wait(lock, [this] { return doneCount_ == nprocs_; });
        active_ = false;
    }
    for (auto& t : threads)
        t.join();
    parkedCvs_ = nullptr;
}

void
Scheduler::switchFrom(std::unique_lock<std::mutex>& lock, ProcId p,
                      bool exiting)
{
    auto* parked = static_cast<Parked*>(parkedCvs_);
    ProcId next = pickNext();
    if (next < 0) {
        if (doneCount_ == nprocs_)
            return;
        std::string who;
        for (int q = 0; q < nprocs_; ++q) {
            if (status_[q] == Status::Blocked)
                who += " P" + std::to_string(q);
        }
        panic("deadlock: no runnable processor; blocked:" + who);
    }
    eventsInSlice_ = 0;
    running_ = next;
    status_[next] = Status::Running;
    parked->cvs[next]->notify_one();
    if (!exiting) {
        parked->cvs[p]->wait(lock, [this, p] { return running_ == p; });
        status_[p] = Status::Running;
    }
}

void
Scheduler::yield(ProcId p)
{
    std::unique_lock<std::mutex> lock(mu_);
    ensure(running_ == p, "yield from a processor that is not running");
    status_[p] = Status::Ready;
    switchFrom(lock, p, /*exiting=*/false);
}

void
Scheduler::block(ProcId p)
{
    std::unique_lock<std::mutex> lock(mu_);
    ensure(running_ == p, "block from a processor that is not running");
    status_[p] = Status::Blocked;
    switchFrom(lock, p, /*exiting=*/false);
}

void
Scheduler::unblock(ProcId q)
{
    std::unique_lock<std::mutex> lock(mu_);
    ensure(q >= 0 && q < nprocs_, "unblock of invalid processor");
    if (status_[q] == Status::Blocked)
        status_[q] = Status::Ready;
}

} // namespace splash::rt
