/**
 * @file
 * Distributed task queues with task stealing.
 *
 * Radiosity, Raytrace, and Volrend manage parallelism with one task
 * queue per processor plus stealing for load balance.  The queues here
 * are backed by shared ring buffers and shared head/tail indices (one
 * cache line per queue header), so queue manipulation generates real
 * simulated traffic, as it does in the original programs.
 *
 * A task is an opaque 64-bit value (typically an index or a packed
 * descriptor).  Completion is tracked with a shared pending-task
 * counter: push() increments it, done() decrements it, and get()
 * returns false only when every queue is empty *and* no pushed task is
 * still executing -- so tasks may spawn further tasks, as Radiosity's
 * subdivision does.
 */
#ifndef SPLASH2_RT_TASKQ_H
#define SPLASH2_RT_TASKQ_H

#include <cstdint>
#include <memory>
#include <vector>

#include "rt/shared.h"
#include "rt/sync.h"

namespace splash::rt {

class TaskQueues
{
  public:
    /** @param nqueues queue count (usually nprocs);
     *  @param capacity per-queue ring capacity (power of two). */
    TaskQueues(Env& env, int nqueues, std::size_t capacity = 1u << 14);

    /** Enqueue @p task on queue @p q. */
    void push(ProcCtx& c, int q, std::uint64_t task);

    /** One attempt: pop LIFO from own queue, else steal FIFO from the
     *  others (scanning q+1, q+2, ...). */
    bool tryGet(ProcCtx& c, int q, std::uint64_t& out);

    /** Blocking get: retries until a task is found or all work in the
     *  system has completed (returns false). */
    bool get(ProcCtx& c, int q, std::uint64_t& out);

    /** Mark one previously-gotten task as completed. */
    void done(ProcCtx& c);

    int numQueues() const { return nqueues_; }

  private:
    static constexpr int kHeaderStride = 8;  // u64s; one line per header

    bool popLifo(ProcCtx& c, int q, std::uint64_t& out);
    bool stealFifo(ProcCtx& c, int q, std::uint64_t& out);

    Env& env_;
    int nqueues_;
    std::size_t mask_;
    /** Per-queue [head, tail] indices; monotonically increasing. */
    SharedArray<std::uint64_t> headers_;
    std::vector<SharedArray<std::uint64_t>> rings_;
    std::vector<std::unique_ptr<Lock>> locks_;
    SharedVar<std::int64_t> pending_;
    std::unique_ptr<Lock> pendingLock_;
};

} // namespace splash::rt

#endif // SPLASH2_RT_TASKQ_H
