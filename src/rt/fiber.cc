#include "rt/fiber.h"

#include <cstdint>
#include <cstring>

#include <sys/mman.h>
#include <unistd.h>

#include "base/log.h"

/* ASan's fiber annotations pair with the hand-rolled switch; on the
 * ucontext fallback ASan already intercepts swapcontext itself. */
#if SPLASH2_FIBER_ASAN && !SPLASH2_FIBER_UCONTEXT
#define SPLASH2_FIBER_ANNOTATE 1
#include <sanitizer/asan_interface.h>
#include <sanitizer/common_interface_defs.h>
#endif

/* TSan has no swapcontext support at all, so its fiber annotations are
 * required on both the hand-rolled and the ucontext paths. */
#if SPLASH2_FIBER_TSAN
#include <sanitizer/tsan_interface.h>
#endif

#if !SPLASH2_FIBER_UCONTEXT
extern "C" {
void splash_fiber_swap(void** save_sp, void* restore_sp);
void splash_fiber_thunk();
[[noreturn]] void splash_fiber_entry(splash::rt::Fiber* f);
}
#endif

namespace splash::rt {

namespace {

std::size_t
pageSize()
{
    static const std::size_t sz =
        static_cast<std::size_t>(::sysconf(_SC_PAGESIZE));
    return sz;
}

#if SPLASH2_FIBER_ANNOTATE
/** The fiber a switch originated from, so the resumed side can record
 *  the origin's stack bounds from __sanitizer_finish_switch_fiber.
 *  This is how the adopted (host-thread) fiber learns its bounds. */
thread_local Fiber* tls_switch_source = nullptr;
#endif

#if SPLASH2_FIBER_UCONTEXT
void
ucontextEntry(unsigned hi, unsigned lo)
{
    auto bits = (std::uintptr_t(hi) << 32) | std::uintptr_t(lo);
    reinterpret_cast<Fiber*>(bits)->invoke();
}
#endif

} // namespace

Fiber::Fiber()
{
#if SPLASH2_FIBER_TSAN
    // Adopt the calling host thread's existing TSan context; it is
    // owned by the thread and outlives this Fiber.
    tsanFiber_ = __tsan_get_current_fiber();
    tsanAdopted_ = true;
#endif
}

Fiber::Fiber(Entry entry, void* arg, std::size_t stackBytes)
    : entry_(entry), arg_(arg)
{
    ensure(entry != nullptr, "fiber needs an entry function");
    initStack(stackBytes);
#if SPLASH2_FIBER_TSAN
    tsanFiber_ = __tsan_create_fiber(0);
#endif
}

Fiber::~Fiber()
{
#if SPLASH2_FIBER_TSAN
    // Never destroy an adopted context (it is the host thread's own);
    // created contexts are destroyed only here, after the fiber has
    // exited for good.
    if (tsanFiber_ && !tsanAdopted_)
        __tsan_destroy_fiber(tsanFiber_);
#endif
    if (stackMap_) {
#if SPLASH2_FIBER_ANNOTATE
        // ASan does not clear shadow on munmap: redzones poisoned by
        // frames that lived on this stack would linger and fire on
        // whatever mapping the kernel places here next.
        __asan_unpoison_memory_region(stackMap_, mapBytes_);
#endif
        ::munmap(stackMap_, mapBytes_);
    }
}

void
Fiber::initStack(std::size_t stackBytes)
{
    const std::size_t page = pageSize();
    // Round the usable stack to whole pages and add a guard page below.
    stackBytes = (stackBytes + page - 1) & ~(page - 1);
    mapBytes_ = stackBytes + page;
    void* m = ::mmap(nullptr, mapBytes_, PROT_READ | PROT_WRITE,
                     MAP_PRIVATE | MAP_ANONYMOUS | MAP_STACK, -1, 0);
    if (m == MAP_FAILED)
        panic("fiber stack mmap failed");
    if (::mprotect(m, page, PROT_NONE) != 0)
        panic("fiber guard page mprotect failed");
    stackMap_ = m;

#if SPLASH2_FIBER_ANNOTATE
    asanBottom_ = static_cast<char*>(m) + page;
    asanSize_ = stackBytes;
#endif

#if SPLASH2_FIBER_UCONTEXT
    if (getcontext(&uc_) != 0)
        panic("getcontext failed");
    uc_.uc_stack.ss_sp = static_cast<char*>(m) + page;
    uc_.uc_stack.ss_size = stackBytes;
    uc_.uc_link = nullptr;
    auto bits = reinterpret_cast<std::uintptr_t>(this);
    makecontext(&uc_, reinterpret_cast<void (*)()>(&ucontextEntry), 2,
                static_cast<unsigned>(bits >> 32),
                static_cast<unsigned>(bits));
#else
    // Fabricate the frame splash_fiber_swap restores (see the layout
    // comment in fiber_switch_x86_64.S): FP control words, six saved
    // registers with the Fiber* in the r15 slot, and the thunk as the
    // return address.  The initial sp is 16-aligned so the thunk's
    // call site satisfies the ABI's stack-alignment rule.
    auto top = reinterpret_cast<std::uintptr_t>(stackMap_) + mapBytes_;
    std::uintptr_t sp = (top & ~std::uintptr_t{15}) - 64;
    auto* frame = reinterpret_cast<std::uint64_t*>(sp);
    const std::uint64_t mxcsr = 0x1F80;  // x86-64 ABI startup values
    const std::uint64_t fcw = 0x037F;
    frame[0] = mxcsr | (fcw << 32);
    frame[1] = reinterpret_cast<std::uint64_t>(this);  // r15
    frame[2] = 0;                                      // r14
    frame[3] = 0;                                      // r13
    frame[4] = 0;                                      // r12
    frame[5] = 0;                                      // rbx
    frame[6] = 0;                                      // rbp
    frame[7] = reinterpret_cast<std::uint64_t>(&splash_fiber_thunk);
    sp_ = reinterpret_cast<void*>(sp);
#endif
}

void
Fiber::switchImpl(Fiber& from, Fiber& to, bool fromExiting)
{
#if SPLASH2_FIBER_ANNOTATE
    tls_switch_source = &from;
    // Passing a null save slot tells ASan the outgoing fiber is done
    // and its fake-stack frames can be released.
    __sanitizer_start_switch_fiber(
        fromExiting ? nullptr : &from.fakeStack_, to.asanBottom_,
        to.asanSize_);
#else
    (void)fromExiting;
#endif

#if SPLASH2_FIBER_TSAN
    // Flag 0 (not no_sync): the switch carries a synchronization edge,
    // matching the real happens-before of a cooperative handoff.
    __tsan_switch_to_fiber(to.tsanFiber_, 0);
#endif

#if SPLASH2_FIBER_UCONTEXT
    if (swapcontext(&from.uc_, &to.uc_) != 0)
        panic("swapcontext failed");
#else
    splash_fiber_swap(&from.sp_, to.sp_);
#endif

#if SPLASH2_FIBER_ANNOTATE
    // We have been resumed; complete the switch that brought us back
    // and record the bounds of the stack it came from.
    Fiber* src = tls_switch_source;
    __sanitizer_finish_switch_fiber(from.fakeStack_,
                                    src ? &src->asanBottom_ : nullptr,
                                    src ? &src->asanSize_ : nullptr);
#endif
}

void
Fiber::switchTo(Fiber& from, Fiber& to)
{
    switchImpl(from, to, /*fromExiting=*/false);
}

void
Fiber::exitTo(Fiber& from, Fiber& to)
{
    switchImpl(from, to, /*fromExiting=*/true);
}

void
Fiber::invoke()
{
#if SPLASH2_FIBER_ANNOTATE
    Fiber* src = tls_switch_source;
    __sanitizer_finish_switch_fiber(fakeStack_,
                                    src ? &src->asanBottom_ : nullptr,
                                    src ? &src->asanSize_ : nullptr);
#endif
    entry_(arg_);
    panic("fiber entry returned instead of exiting to another fiber");
}

} // namespace splash::rt

#if !SPLASH2_FIBER_UCONTEXT
extern "C" [[noreturn]] void
splash_fiber_entry(splash::rt::Fiber* f)
{
    f->invoke();
}
#endif
