#include "rt/taskq.h"

#include "base/log.h"

namespace splash::rt {

TaskQueues::TaskQueues(Env& env, int nqueues, std::size_t capacity)
    : env_(env), nqueues_(nqueues), mask_(capacity - 1),
      headers_(env, static_cast<std::size_t>(nqueues) * kHeaderStride),
      pending_(env, 0),
      pendingLock_(std::make_unique<Lock>(env))
{
    ensure(isPow2(capacity), "queue capacity must be a power of two");
    rings_.reserve(nqueues);
    locks_.reserve(nqueues);
    for (int q = 0; q < nqueues; ++q) {
        rings_.emplace_back(env, capacity);
        locks_.push_back(std::make_unique<Lock>(env));
        // Home each queue's ring and header at its owning processor.
        ProcId home = static_cast<ProcId>(q % env.nprocs());
        rings_[q].setHome(0, capacity, home);
        headers_.setHome(static_cast<std::size_t>(q) * kHeaderStride,
                         kHeaderStride, home);
    }
}

void
TaskQueues::push(ProcCtx& c, int q, std::uint64_t task)
{
    {
        Lock::Guard g(*pendingLock_, c);
        // Atomic store: get() reads the count without the lock.
        pending_.setAtomic(pending_.get() + 1);
    }
    Lock::Guard g(*locks_[q], c);
    std::size_t base = static_cast<std::size_t>(q) * kHeaderStride;
    std::uint64_t head = headers_[base + 0];
    std::uint64_t tail = headers_[base + 1];
    if (tail - head > mask_)
        fatal("task queue overflow; raise TaskQueues capacity");
    rings_[q][tail & mask_] = task;
    // Header indices are written with host-level atomics because the
    // emptiness peeks below read them without taking the queue lock.
    headers_.stAtomic(base + 1, tail + 1);
}

bool
TaskQueues::popLifo(ProcCtx& c, int q, std::uint64_t& out)
{
    // Lock-free emptiness peek (re-checked under the lock): pollers
    // only generate read traffic, never a lock convoy.
    std::size_t base = static_cast<std::size_t>(q) * kHeaderStride;
    if (headers_.ldAtomic(base + 0) == headers_.ldAtomic(base + 1))
        return false;
    Lock::Guard g(*locks_[q], c);
    std::uint64_t head = headers_[base + 0];
    std::uint64_t tail = headers_[base + 1];
    if (head == tail)
        return false;
    out = rings_[q][(tail - 1) & mask_];
    headers_.stAtomic(base + 1, tail - 1);
    return true;
}

bool
TaskQueues::stealFifo(ProcCtx& c, int q, std::uint64_t& out)
{
    std::size_t base = static_cast<std::size_t>(q) * kHeaderStride;
    if (headers_.ldAtomic(base + 0) == headers_.ldAtomic(base + 1))
        return false;
    Lock::Guard g(*locks_[q], c);
    std::uint64_t head = headers_[base + 0];
    std::uint64_t tail = headers_[base + 1];
    if (head == tail)
        return false;
    out = rings_[q][head & mask_];
    headers_.stAtomic(base + 0, head + 1);
    return true;
}

bool
TaskQueues::tryGet(ProcCtx& c, int q, std::uint64_t& out)
{
    if (popLifo(c, q, out))
        return true;
    for (int i = 1; i < nqueues_; ++i) {
        if (stealFifo(c, (q + i) % nqueues_, out))
            return true;
    }
    return false;
}

bool
TaskQueues::get(ProcCtx& c, int q, std::uint64_t& out)
{
    std::uint64_t backoff = 100;
    for (;;) {
        if (tryGet(c, q, out))
            return true;
        // Unlocked read of the pending count (pushes/dones still
        // serialize on the lock; a stale nonzero read just polls once
        // more, and zero is only reached after all work is done).
        if (pending_.getAtomic() == 0)
            return false;
        // Work may still be produced by in-flight tasks: back off with
        // exponentially growing (logical) delay so idle processors do
        // not congest the queue locks that workers need. The spin is
        // charged as pause (idle) time, like the paper's accounting.
        c.idle(backoff);
        backoff = std::min<std::uint64_t>(backoff * 2, 2000);
    }
}

void
TaskQueues::done(ProcCtx& c)
{
    Lock::Guard g(*pendingLock_, c);
    pending_.setAtomic(pending_.get() - 1);
}

} // namespace splash::rt
