/**
 * @file
 * Stackful user-level fibers -- the mechanism underneath FiberBackend.
 *
 * A Fiber is an independent execution context (its own stack, its own
 * saved register file) that is switched to and from explicitly, in
 * user space, on a single host thread.  Switching costs a few tens of
 * nanoseconds: on x86-64 it is a hand-rolled save/restore of the
 * callee-saved registers and the FP control words (see
 * fiber_switch_x86_64.S); other architectures fall back to POSIX
 * ucontext, which is slower (it round-trips the signal mask through
 * the kernel) but semantically identical.
 *
 * Stacks are mmap'd with a PROT_NONE guard page below them so that an
 * overflow faults deterministically instead of corrupting a neighbor.
 * Under AddressSanitizer every switch is bracketed with the
 * __sanitizer_*_switch_fiber annotations so ASan tracks the active
 * stack correctly across switches.  Under ThreadSanitizer every Fiber
 * carries a __tsan_create_fiber context and every transfer calls
 * __tsan_switch_to_fiber immediately before the switch, so TSan's
 * per-context shadow state follows the simulated processors instead of
 * reporting phantom races between frames that merely share a host
 * thread (build with -DSPLASH2_TSAN=ON).
 *
 * Two transfer flavors:
 *  - switchTo(from, to): `from` expects to be resumed later.
 *  - exitTo(from, to):   `from` is finished and will never run again
 *    (lets ASan release its fake-stack frames immediately).
 */
#ifndef SPLASH2_RT_FIBER_H
#define SPLASH2_RT_FIBER_H

#include <cstddef>

#if !defined(__x86_64__)
#define SPLASH2_FIBER_UCONTEXT 1
#include <ucontext.h>
#endif

#if defined(__SANITIZE_ADDRESS__)
#define SPLASH2_FIBER_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define SPLASH2_FIBER_ASAN 1
#endif
#endif

#if defined(__SANITIZE_THREAD__)
#define SPLASH2_FIBER_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define SPLASH2_FIBER_TSAN 1
#endif
#endif

namespace splash::rt {

class Fiber
{
  public:
    using Entry = void (*)(void* arg);

    /** Default stack size. Like host-thread stacks this is virtual
     *  address space; only pages actually touched are committed. */
    static constexpr std::size_t kDefaultStackBytes =
        std::size_t{8} << 20;

    /** Adopt the calling host-thread context (no stack is allocated);
     *  used for the scheduler's "home" context that run() returns to. */
    Fiber();

    /** Create a fiber that will execute entry(arg) when first switched
     *  to. entry must not return; it must exitTo() another fiber. */
    Fiber(Entry entry, void* arg,
          std::size_t stackBytes = kDefaultStackBytes);

    ~Fiber();

    Fiber(const Fiber&) = delete;
    Fiber& operator=(const Fiber&) = delete;

    /** Transfer control from @p from (the running fiber) to @p to.
     *  Returns when something switches back to @p from. */
    static void switchTo(Fiber& from, Fiber& to);

    /** Transfer control to @p to; @p from never resumes. Its stack
     *  stays mapped until the Fiber is destroyed. */
    static void exitTo(Fiber& from, Fiber& to);

    /** Internal: first-entry target invoked by the switch trampoline. */
    [[noreturn]] void invoke();

  private:
    void initStack(std::size_t stackBytes);
    static void switchImpl(Fiber& from, Fiber& to, bool fromExiting);

    void* sp_ = nullptr;       ///< saved stack pointer (asm path)
    Entry entry_ = nullptr;
    void* arg_ = nullptr;
    void* stackMap_ = nullptr; ///< mmap base (guard page + stack)
    std::size_t mapBytes_ = 0;

#if SPLASH2_FIBER_UCONTEXT
    ucontext_t uc_;
#endif
#if SPLASH2_FIBER_ASAN
    void* fakeStack_ = nullptr;       ///< ASan fake-stack save slot
    const void* asanBottom_ = nullptr; ///< stack bottom for annotations
    std::size_t asanSize_ = 0;
#endif
#if SPLASH2_FIBER_TSAN
    void* tsanFiber_ = nullptr;  ///< TSan context for this fiber
    /** The context belongs to the adopting host thread (default-
     *  constructed fibers); it must not be destroyed with the Fiber. */
    bool tsanAdopted_ = false;
#endif
};

} // namespace splash::rt

#endif // SPLASH2_RT_FIBER_H
