#include "rt/exec_backend.h"

#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include "base/log.h"
#include "rt/fiber.h"

namespace splash::rt {

namespace {

// --------------------------------------------------------------------
// FiberBackend
// --------------------------------------------------------------------

/** All simulated processors are fibers multiplexed on the calling host
 *  thread; a handoff is one user-space context switch. */
class FiberBackend final : public ExecutionBackend
{
  public:
    BackendKind kind() const override { return BackendKind::Fiber; }

    void
    run(int nprocs, const std::function<void(ProcId)>& entry,
        ProcId first) override
    {
        entry_ = &entry;
        procs_.clear();
        procs_.reserve(nprocs);
        for (ProcId p = 0; p < nprocs; ++p)
            procs_.push_back(std::make_unique<Proc>(this, p));

        // Adopt the caller's context fresh each episode: successive
        // episodes may legally start from different host threads (or
        // from inside another Env's fiber).
        Fiber home;
        home_ = &home;
        Fiber::switchTo(home, procs_[first]->fiber);
        home_ = nullptr;
        procs_.clear();
        entry_ = nullptr;
    }

    void
    switchTo(ProcId from, ProcId to) override
    {
        Fiber::switchTo(procs_[from]->fiber, procs_[to]->fiber);
    }

    void
    exitTo(ProcId from, ProcId to) override
    {
        Fiber::exitTo(procs_[from]->fiber, procs_[to]->fiber);
    }

    void
    finish(ProcId last) override
    {
        Fiber::exitTo(procs_[last]->fiber, *home_);
    }

  private:
    struct Proc
    {
        Proc(FiberBackend* b, ProcId p)
            : backend(b), id(p), fiber(&Proc::main, this)
        {
        }

        /** Fiber entry: run the scheduler's per-processor body. It
         *  terminates the context via exitTo()/finish(), so control
         *  never falls off the end. */
        static void
        main(void* raw)
        {
            auto* self = static_cast<Proc*>(raw);
            (*self->backend->entry_)(self->id);
        }

        FiberBackend* backend;
        ProcId id;
        Fiber fiber;
    };

    const std::function<void(ProcId)>* entry_ = nullptr;
    std::vector<std::unique_ptr<Proc>> procs_;
    Fiber* home_ = nullptr;
};

// --------------------------------------------------------------------
// ThreadBackend
// --------------------------------------------------------------------

/** One host thread per simulated processor, parked on a per-processor
 *  condition variable; the historical baton implementation, kept as
 *  the Mode::Native-era behavior and as a differential oracle. */
class ThreadBackend final : public ExecutionBackend
{
  public:
    BackendKind kind() const override { return BackendKind::Thread; }

    void
    run(int nprocs, const std::function<void(ProcId)>& entry,
        ProcId first) override
    {
        cvs_.clear();
        cvs_.reserve(nprocs);
        for (int p = 0; p < nprocs; ++p)
            cvs_.push_back(std::make_unique<std::condition_variable>());
        cur_ = -1;
        finished_ = false;

        std::vector<std::thread> threads;
        threads.reserve(nprocs);
        for (ProcId p = 0; p < nprocs; ++p) {
            threads.emplace_back([this, p, &entry] {
                {
                    std::unique_lock<std::mutex> lock(mu_);
                    cvs_[p]->wait(lock,
                                  [this, p] { return cur_ == p; });
                }
                entry(p);
                // entry returns here only after exitTo()/finish(),
                // both of which already woke the successor.
            });
        }

        {
            std::unique_lock<std::mutex> lock(mu_);
            cur_ = first;
            cvs_[first]->notify_one();
            doneCv_.wait(lock, [this] { return finished_; });
        }
        for (auto& t : threads)
            t.join();
        cvs_.clear();
    }

    void
    switchTo(ProcId from, ProcId to) override
    {
        std::unique_lock<std::mutex> lock(mu_);
        cur_ = to;
        cvs_[to]->notify_one();
        cvs_[from]->wait(lock, [this, from] { return cur_ == from; });
    }

    void
    exitTo(ProcId from, ProcId to) override
    {
        (void)from;
        std::lock_guard<std::mutex> lock(mu_);
        cur_ = to;
        cvs_[to]->notify_one();
    }

    void
    finish(ProcId last) override
    {
        (void)last;
        std::lock_guard<std::mutex> lock(mu_);
        cur_ = -1;
        finished_ = true;
        doneCv_.notify_all();
    }

  private:
    std::mutex mu_;
    std::vector<std::unique_ptr<std::condition_variable>> cvs_;
    std::condition_variable doneCv_;
    ProcId cur_ = -1;
    bool finished_ = false;
};

} // namespace

const char*
backendName(BackendKind kind)
{
    switch (kind) {
    case BackendKind::Fiber: return "fiber";
    case BackendKind::Thread: return "thread";
    }
    return "?";
}

bool
parseBackendKind(const std::string& s, BackendKind* out)
{
    if (s == "fiber") {
        *out = BackendKind::Fiber;
        return true;
    }
    if (s == "thread") {
        *out = BackendKind::Thread;
        return true;
    }
    return false;
}

std::unique_ptr<ExecutionBackend>
makeExecutionBackend(BackendKind kind)
{
    switch (kind) {
    case BackendKind::Fiber:
        return std::make_unique<FiberBackend>();
    case BackendKind::Thread:
        return std::make_unique<ThreadBackend>();
    }
    panic("unknown execution backend");
}

} // namespace splash::rt
