#include "rt/shared_heap.h"

#include <sys/mman.h>

#include <cstring>

#include "base/log.h"

#if defined(__SANITIZE_ADDRESS__)
#define SPLASH2_HEAP_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define SPLASH2_HEAP_ASAN 1
#endif
#endif
#if SPLASH2_HEAP_ASAN
#include <sanitizer/asan_interface.h>
#endif

namespace splash::rt {

SharedHeap::SharedHeap(int nprocs, int lineSize)
    : nprocs_(nprocs), lineShift_(log2i(lineSize))
{
    ensure(isPow2(lineSize), "line size must be a power of two");
}

SharedHeap::~SharedHeap()
{
    if (base_)
        ::munmap(reinterpret_cast<void*>(base_), kArenaBytes);
}

void*
SharedHeap::alloc(std::size_t bytes, std::size_t align)
{
    if (bytes == 0)
        bytes = 1;
    if (align < 64)
        align = 64;
    ensure(isPow2(align), "alignment must be a power of two");

    if (base_ == 0) {
        // One lazily-backed reservation: nothing is committed until
        // the zero-fill below touches a page, so the large span costs
        // only address space.
        void* m = ::mmap(nullptr, kArenaBytes, PROT_READ | PROT_WRITE,
                         MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE,
                         -1, 0);
        ensure(m != MAP_FAILED, "shared-heap arena reservation failed");
        base_ = reinterpret_cast<Addr>(m);
    }

    std::size_t misalign = cursor_ & (align - 1);
    if (misalign)
        cursor_ += align - misalign;
    ensure(bytes <= kArenaBytes - cursor_, "shared-heap arena exhausted");
    void* out = reinterpret_cast<void*>(base_ + cursor_);
    cursor_ += bytes;
    allocated_ += bytes;
#if SPLASH2_HEAP_ASAN
    // The arena mmap can reuse pages whose shadow a prior mapping
    // (e.g. a fiber stack torn down by another library) left poisoned;
    // munmap does not clear shadow.
    __asan_unpoison_memory_region(out, bytes);
#endif
    std::memset(out, 0, bytes);
    return out;
}

void
SharedHeap::setHome(const void* p, std::size_t bytes, ProcId home)
{
    ensure(home >= 0 && home < nprocs_, "home node out of range");
    if (bytes == 0)
        return;
    Addr start = toSim(reinterpret_cast<Addr>(p));
    if (preMutate_)
        preMutate_(start, bytes, home);
    homes_[start] = Span{start + bytes, home};
}

ProcId
SharedHeap::homeOf(Addr lineAddr) const
{
    auto it = homes_.upper_bound(lineAddr);
    if (it != homes_.begin()) {
        --it;
        if (lineAddr < it->second.end)
            return it->second.home;
    }
    // Unplaced data: interleave lines round-robin across nodes.
    return static_cast<ProcId>((lineAddr >> lineShift_) % nprocs_);
}

} // namespace splash::rt
