#include "rt/shared_heap.h"

#include <cstring>

#include "base/log.h"

namespace splash::rt {

namespace {
constexpr std::size_t kBlockBytes = 16u << 20;  // 16 MB arena blocks
} // namespace

SharedHeap::SharedHeap(int nprocs, int lineSize)
    : nprocs_(nprocs), lineShift_(log2i(lineSize))
{
    ensure(isPow2(lineSize), "line size must be a power of two");
}

void*
SharedHeap::alloc(std::size_t bytes, std::size_t align)
{
    if (bytes == 0)
        bytes = 1;
    if (align < 64)
        align = 64;
    ensure(isPow2(align), "alignment must be a power of two");

    auto misalign = reinterpret_cast<std::uintptr_t>(cursor_) & (align - 1);
    std::size_t pad = misalign ? align - misalign : 0;
    if (cursor_ == nullptr || pad + bytes > remaining_) {
        std::size_t block = std::max(kBlockBytes, bytes + align);
        blocks_.push_back(std::make_unique<char[]>(block));
        cursor_ = blocks_.back().get();
        remaining_ = block;
        misalign = reinterpret_cast<std::uintptr_t>(cursor_) & (align - 1);
        pad = misalign ? align - misalign : 0;
    }
    cursor_ += pad;
    remaining_ -= pad;
    void* out = cursor_;
    cursor_ += bytes;
    remaining_ -= bytes;
    allocated_ += bytes;
    std::memset(out, 0, bytes);
    return out;
}

void
SharedHeap::setHome(const void* p, std::size_t bytes, ProcId home)
{
    ensure(home >= 0 && home < nprocs_, "home node out of range");
    if (bytes == 0)
        return;
    Addr start = reinterpret_cast<Addr>(p);
    homes_[start] = Span{start + bytes, home};
}

ProcId
SharedHeap::homeOf(Addr lineAddr) const
{
    auto it = homes_.upper_bound(lineAddr);
    if (it != homes_.begin()) {
        --it;
        if (lineAddr < it->second.end)
            return it->second.home;
    }
    // Unplaced data: interleave lines round-robin across nodes.
    return static_cast<ProcId>((lineAddr >> lineShift_) % nprocs_);
}

} // namespace splash::rt
