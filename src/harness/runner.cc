#include "harness/runner.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <mutex>
#include <numeric>
#include <thread>

#include "base/log.h"

namespace splash::harness {

int
Runner::resolve(long flag)
{
    if (flag > 0)
        return static_cast<int>(flag);
    unsigned hw = std::thread::hardware_concurrency();
    return hw ? static_cast<int>(hw) : 1;
}

Runner::Runner(int jobs) : jobs_(resolve(jobs)) {}

void
Runner::add(std::string label, double cost, std::function<void()> fn)
{
    queue_.push_back({std::move(label), cost, std::move(fn)});
}

void
Runner::run()
{
    jobs_run_.assign(queue_.size(), 0.0);
    auto timed = [&](std::size_t i) {
        auto t0 = std::chrono::steady_clock::now();
        queue_[i].fn();
        jobs_run_[i] =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - t0)
                .count();
    };

    if (jobs_ <= 1 || queue_.size() <= 1) {
        for (std::size_t i = 0; i < queue_.size(); ++i)
            timed(i);
        return;
    }

    // LPT: longest (estimated) job first, ties in submission order.
    std::vector<std::size_t> order(queue_.size());
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                         return queue_[a].cost > queue_[b].cost;
                     });

    std::atomic<std::size_t> next{0};
    std::mutex errMu;
    std::exception_ptr firstErr;
    auto worker = [&] {
        for (;;) {
            std::size_t k = next.fetch_add(1);
            if (k >= order.size())
                return;
            try {
                timed(order[k]);
            } catch (...) {
                std::lock_guard<std::mutex> lk(errMu);
                if (!firstErr)
                    firstErr = std::current_exception();
            }
        }
    };

    int nthreads = static_cast<int>(std::min<std::size_t>(
        static_cast<std::size_t>(jobs_), queue_.size()));
    std::vector<std::thread> pool;
    pool.reserve(nthreads);
    for (int t = 0; t < nthreads; ++t)
        pool.emplace_back(worker);
    for (auto& t : pool)
        t.join();
    if (firstErr)
        std::rethrow_exception(firstErr);
}

} // namespace splash::harness
