/**
 * @file
 * Experiment drivers shared by the characterization benches: run a
 * program under a given machine configuration and collect execution
 * and memory-system statistics.
 */
#ifndef SPLASH2_HARNESS_EXPERIMENT_H
#define SPLASH2_HARNESS_EXPERIMENT_H

#include <memory>

#include "harness/app.h"
#include "rt/env.h"
#include "sim/memsys.h"
#include "sim/sweep.h"

namespace splash::harness {

/** Results of one instrumented execution. */
struct RunStats
{
    rt::ProcStats exec;            ///< aggregate execution counters
    std::vector<rt::ProcStats> perProc;
    sim::MemStats mem;             ///< aggregate memory-system counters
    std::vector<sim::MemStats> memPerProc;
    Tick elapsed = 0;              ///< PRAM time of the measured window
    bool valid = true;
};

/** Simulation-substrate knobs shared by the drivers below; the
 *  defaults match EnvConfig (fiber backend, quantum 250, batched
 *  delivery). They change simulation speed, never results. */
struct SimOpts
{
    std::uint64_t quantum = 250;
    rt::BackendKind backend = rt::BackendKind::Fiber;
    /** Reference delivery shape (bit-identical either way). */
    rt::Delivery delivery = rt::Delivery::Batched;
    /** Host threads replaying the working-set sweep: 1 = classic
     *  serial online sweep, 0 = hardware concurrency, N>1 = worker
     *  pool of that size.  Results are identical for any value. */
    int sweepThreads = 1;
};

/** Run @p app on @p nprocs with no memory system attached (PRAM-only;
 *  Figures 1 and 2, Table 1). */
inline RunStats
runPram(App& app, int nprocs, const AppConfig& cfg,
        const SimOpts& sim = {})
{
    rt::Env env({rt::Mode::Sim, nprocs, sim.quantum, sim.backend,
                 sim.delivery});
    RunStats out;
    out.valid = app.run(env, cfg).valid;
    for (int p = 0; p < nprocs; ++p) {
        out.perProc.push_back(env.stats(p));
        out.exec += env.stats(p);
    }
    out.elapsed = env.elapsed();
    return out;
}

/** Run @p app under the full directory-MESI memory system. */
inline RunStats
runWithMemSystem(App& app, int nprocs, const sim::CacheConfig& cache,
                 const AppConfig& cfg, const SimOpts& simOpts = {})
{
    rt::Env env({rt::Mode::Sim, nprocs, simOpts.quantum,
                 simOpts.backend, simOpts.delivery});
    sim::MachineConfig mc;
    mc.nprocs = nprocs;
    mc.cache = cache;
    sim::MemSystem mem(mc, &env.heap());
    env.attachMemSystem(&mem);
    RunStats out;
    out.valid = app.run(env, cfg).valid;
    for (int p = 0; p < nprocs; ++p) {
        out.perProc.push_back(env.stats(p));
        out.exec += env.stats(p);
        out.memPerProc.push_back(mem.procStats(p));
    }
    out.mem = mem.total();
    out.elapsed = env.elapsed();
    return out;
}

/** Run @p app feeding the multi-configuration cache sweep; the caller
 *  owns the sweep so it can query arbitrary operating points.  With
 *  simOpts.sweepThreads != 1 the sweep is driven through a
 *  ParallelSweep capture/replay pipeline (bit-identical results); the
 *  sweep is fully up to date when this returns. */
inline RunStats
runWithSweep(App& app, int nprocs, sim::CacheSweep& sweep,
             const AppConfig& cfg, const SimOpts& simOpts = {})
{
    rt::Env env({rt::Mode::Sim, nprocs, simOpts.quantum,
                 simOpts.backend, simOpts.delivery});
    std::unique_ptr<sim::ParallelSweep> ps;
    if (simOpts.sweepThreads != 1) {
        ps = std::make_unique<sim::ParallelSweep>(sweep,
                                                  simOpts.sweepThreads);
        env.attachSink(ps.get());
    } else {
        env.attachSweep(&sweep);
    }
    RunStats out;
    out.valid = app.run(env, cfg).valid;
    if (ps)
        ps->flush();
    for (int p = 0; p < nprocs; ++p) {
        out.perProc.push_back(env.stats(p));
        out.exec += env.stats(p);
    }
    out.elapsed = env.elapsed();
    return out;
}

/** Denominator for traffic ratios: FLOPS for floating-point codes,
 *  instructions for integer codes (paper Section 6). */
inline double
trafficDenominator(const App& app, const rt::ProcStats& exec)
{
    return app.isFloatingPoint() ? double(exec.flops)
                                 : double(exec.instructions());
}

} // namespace splash::harness

#endif // SPLASH2_HARNESS_EXPERIMENT_H
