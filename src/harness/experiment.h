/**
 * @file
 * Experiment drivers shared by the characterization benches: run a
 * program under a given machine configuration and collect execution
 * and memory-system statistics.
 */
#ifndef SPLASH2_HARNESS_EXPERIMENT_H
#define SPLASH2_HARNESS_EXPERIMENT_H

#include <memory>
#include <thread>

#include "base/log.h"
#include "harness/app.h"
#include "rt/env.h"
#include "sim/memsys.h"
#include "sim/racecheck.h"
#include "sim/replay.h"
#include "sim/sweep.h"
#include "sim/tracestore.h"

namespace splash::harness {

/** Results of one instrumented execution. */
struct RunStats
{
    rt::ProcStats exec;            ///< aggregate execution counters
    std::vector<rt::ProcStats> perProc;
    sim::MemStats mem;             ///< aggregate memory-system counters
    std::vector<sim::MemStats> memPerProc;
    Tick elapsed = 0;              ///< PRAM time of the measured window
    bool valid = true;
    /** Race-detection verdict (SimOpts::race != Off only). */
    bool raceChecked = false;
    sim::RaceOutcome race;
};

/** How multi-configuration characterizations execute (bit-identical
 *  results in every mode):
 *
 *  - Off: one dedicated execution per configuration, each with its
 *    own Env (the historical serial path; differential oracle).
 *  - Inline: one execution broadcast to all configurations, replicas
 *    replayed on the producer thread (saves the redundant executions
 *    on single-core hosts).
 *  - Threaded: one execution broadcast to all configurations, one
 *    consumer thread per replica with bounded back-pressure.
 *  - Auto: Threaded when the host has more than one core, else
 *    Inline. */
enum class Replicas : std::uint8_t { Off, Inline, Threaded, Auto };

inline const char*
replicasName(Replicas r)
{
    switch (r) {
    case Replicas::Off: return "off";
    case Replicas::Inline: return "inline";
    case Replicas::Threaded: return "threads";
    default: return "auto";
    }
}

inline bool
parseReplicas(const std::string& s, Replicas* out)
{
    if (s == "off") *out = Replicas::Off;
    else if (s == "inline") *out = Replicas::Inline;
    else if (s == "threads") *out = Replicas::Threaded;
    else if (s == "auto" || s == "on") *out = Replicas::Auto;
    else return false;
    return true;
}

/** Simulation-substrate knobs shared by the drivers below; the
 *  defaults match EnvConfig (fiber backend, quantum 250, batched
 *  delivery).  All of them change simulation speed, never results --
 *  except `protocol`, which selects the simulated coherence protocol
 *  and therefore the machine being measured. */
struct SimOpts
{
    std::uint64_t quantum = 250;
    /** Coherence protocol for memory-system runs (--protocol). */
    sim::ProtocolKind protocol = sim::ProtocolKind::MESI;
    /** Interconnect organization for memory-system runs
     *  (--interconnect): the paper's point-to-point directory machine
     *  or a snoopy broadcast bus (sim/bus.h).  Like `protocol`, this
     *  selects the machine being measured. */
    sim::Interconnect interconnect = sim::Interconnect::Directory;
    rt::BackendKind backend = rt::BackendKind::Fiber;
    /** Reference delivery shape (bit-identical either way). */
    rt::Delivery delivery = rt::Delivery::Batched;
    /** Host threads replaying the working-set sweep: 1 = classic
     *  serial online sweep, 0 = hardware concurrency, N>1 = worker
     *  pool of that size.  Results are identical for any value. */
    int sweepThreads = 1;
    /** Working-set sweep engine (--sweep): the exact Mattson +
     *  tag-array simulation, the reuse-distance analytical model, or
     *  both side by side (sim/reusedist.h). */
    sim::SweepMode sweep = sim::SweepMode::Exact;
    /** Broadcast-replay mode for multi-configuration experiments. */
    Replicas replicas = Replicas::Auto;
    /** Coherence invariant checker: run the full sweep every N
     *  slow-path transactions (0 = off).  Observation only -- results
     *  are identical with any value; violations abort. */
    std::uint64_t checkPeriod = 0;
    /** Happens-before race detection over the reference stream
     *  (--race).  Observation only: every characterization statistic
     *  is byte-identical with any value.  Word granularity verifies
     *  the suite's synchronization; Line quantifies false sharing. */
    sim::RaceGranularity race = sim::RaceGranularity::Off;
    /** Trace-store directory (or single .s2t file) to record this
     *  run's reference stream into (--record; empty = off).  Records
     *  ride alongside the live sinks, so recording never changes
     *  results; an already-recorded (app, P, problem, quantum) is
     *  skipped (record once). */
    std::string record;
    /** Trace-store directory (or single .s2t file) to replay from
     *  (--replay; empty = off).  The application never executes:
     *  every sink is fed the recorded stream, and execution counters
     *  come from the trace footer -- statistics are byte-identical to
     *  a live run. */
    std::string replay;
};

/** RaceChecker for one operating point: Word granules are fixed at 4
 *  bytes; Line granules follow the experiment's line size. */
inline sim::RaceConfig
raceConfigFor(sim::RaceGranularity gran, int nprocs, int lineSize)
{
    sim::RaceConfig rc;
    rc.gran = gran;
    rc.nprocs = nprocs;
    rc.lineSize = lineSize;
    return rc;
}

// ----------------------------------------------------------------------
// Trace-store glue (sim/tracestore.h): identity of a recording, the
// execution-profile <-> ProcStats conversions, and the record/replay
// entry points shared by every driver below.

/** Identity a trace is recorded under: everything the reference
 *  stream of (app, P) depends on.  The quantum is pinned because
 *  batched delivery drains at quantum boundaries, making the stream
 *  *order* (not its statistics) quantum-dependent. */
inline sim::TraceMeta
traceMetaFor(const App& app, int nprocs, const AppConfig& cfg,
             const SimOpts& simOpts)
{
    sim::TraceMeta m;
    m.app = app.name();
    m.nprocs = nprocs;
    m.scale = cfg.scale;
    m.n = cfg.n;
    m.iters = cfg.iters;
    m.aux = cfg.aux;
    m.seed = cfg.seed;
    m.quantum = simOpts.quantum;
    return m;
}

/** Pack per-processor execution counters into the footer image. */
inline sim::ExecProfile
execProfileFrom(const std::vector<rt::ProcStats>& perProc, Tick elapsed,
                bool valid)
{
    sim::ExecProfile e;
    e.valid = valid;
    e.elapsed = elapsed;
    for (const rt::ProcStats& s : perProc)
        e.procs.push_back({s.reads, s.writes, s.flops, s.work,
                           s.barriers, s.locks, s.pauses, s.barrierWait,
                           s.lockWait, s.pauseWait, s.startTime,
                           s.finishTime});
    return e;
}

/** Rebuild the execution half of a RunStats from a trace footer. */
inline RunStats
statsFromProfile(const sim::ExecProfile& e)
{
    RunStats r;
    r.valid = e.valid;
    r.elapsed = e.elapsed;
    for (const sim::ExecProfile::Row& row : e.procs) {
        rt::ProcStats s;
        s.reads = row[0];
        s.writes = row[1];
        s.flops = row[2];
        s.work = row[3];
        s.barriers = row[4];
        s.locks = row[5];
        s.pauses = row[6];
        s.barrierWait = row[7];
        s.lockWait = row[8];
        s.pauseWait = row[9];
        s.startTime = row[10];
        s.finishTime = row[11];
        r.perProc.push_back(s);
        r.exec += s;
    }
    return r;
}

/** Recorder for this run, or null when recording is off or a
 *  finalized trace for this identity already exists (record once). */
inline std::unique_ptr<sim::TraceWriter>
makeRecorder(const App& app, int nprocs, const AppConfig& cfg,
             const SimOpts& simOpts)
{
    if (simOpts.record.empty())
        return nullptr;
    const sim::TraceMeta m = traceMetaFor(app, nprocs, cfg, simOpts);
    if (sim::tracestore::haveTrace(simOpts.record, m))
        return nullptr;
    return std::make_unique<sim::TraceWriter>(
        sim::tracestore::pathFor(simOpts.record, m), m);
}

/** Finalize a recording with the run's execution profile. */
inline void
finalizeRecording(sim::TraceWriter& rec, const RunStats& r)
{
    std::string err;
    if (!rec.finalize(execProfileFrom(r.perProc, r.elapsed, r.valid),
                      &err))
        fatal(err);
}

/** Open (and identity-check) the trace this run replays from. */
inline std::unique_ptr<sim::TraceReader>
openReplay(const App& app, int nprocs, const AppConfig& cfg,
           const SimOpts& simOpts)
{
    std::string err;
    auto rd = sim::tracestore::openFor(
        simOpts.replay, traceMetaFor(app, nprocs, cfg, simOpts), &err);
    if (rd == nullptr)
        fatal(err);
    return rd;
}

/** Run @p app on @p nprocs with no memory system attached (PRAM-only;
 *  Figures 1 and 2, Table 1).  An optional pre-built RaceChecker can
 *  be attached (the injection harness arms drops on it beforehand);
 *  otherwise SimOpts::race != Off attaches an internal one. */
inline RunStats
runPram(App& app, int nprocs, const AppConfig& cfg,
        const SimOpts& sim = {}, sim::RaceChecker* race = nullptr)
{
    std::unique_ptr<sim::RaceChecker> owned;
    if (race == nullptr && sim.race != sim::RaceGranularity::Off) {
        owned = std::make_unique<sim::RaceChecker>(
            raceConfigFor(sim.race, nprocs, 64));
        race = owned.get();
    }
    if (!sim.replay.empty()) {
        auto rd = openReplay(app, nprocs, cfg, sim);
        if (race != nullptr) {
            std::string err;
            if (!rd->replay(race, &err))
                fatal(err);
        }
        RunStats out = statsFromProfile(rd->exec());
        if (race != nullptr) {
            out.raceChecked = true;
            out.race = race->outcome();
        }
        return out;
    }
    rt::Env env({rt::Mode::Sim, nprocs, sim.quantum, sim.backend,
                 sim.delivery});
    if (race != nullptr)
        env.attachSink(race);
    auto rec = makeRecorder(app, nprocs, cfg, sim);
    if (rec)
        env.attachSink(rec.get());
    RunStats out;
    out.valid = app.run(env, cfg).valid;
    for (int p = 0; p < nprocs; ++p) {
        out.perProc.push_back(env.stats(p));
        out.exec += env.stats(p);
    }
    out.elapsed = env.elapsed();
    if (rec)
        finalizeRecording(*rec, out);
    if (race != nullptr) {
        out.raceChecked = true;
        out.race = race->outcome();
    }
    return out;
}

/** One memory-system operating point of a multi-configuration
 *  characterization. */
struct MemExperiment
{
    sim::CacheConfig cache;
    bool hints = true;   ///< replacement hints (protocol ablation)
    bool placed = true;  ///< placement-aware homes vs pure interleave
    /** Coherence protocol of this replica; benches forward the
     *  --protocol flag here (one broadcast replay can feed replicas
     *  running different protocols side by side). */
    sim::ProtocolKind protocol = sim::ProtocolKind::MESI;
    /** Interconnect of this replica; one broadcast replay can feed a
     *  directory replica and a bus replica from the same execution
     *  (results/interconnect.csv is produced exactly that way). */
    sim::Interconnect interconnect = sim::Interconnect::Directory;
};

/** Characterize @p app on @p nprocs under every configuration in
 *  @p exps from ONE reference stream.
 *
 *  The PRAM reference stream of a given (app, P) does not depend on
 *  the memory system, so with broadcast replay enabled (the default)
 *  the application executes once and a BroadcastReplay feeds one
 *  MemSystem replica per experiment; with Replicas::Off each
 *  experiment re-executes serially in its own Env.  Statistics are
 *  bit-identical across all modes (tests/sim/replay_test.cc). */
/** Broadcast replica set for @p exps: one MemSystem replica per
 *  experiment (placed ones resolve homes through @p homes), then --
 *  when race detection is on -- race replicas appended after the
 *  memory systems and deduplicated by granule size: Word granules are
 *  line-size independent (one replica serves every experiment), Line
 *  granules need one replica per distinct line size.
 *  @p raceReplicaOfExp maps each experiment to its race replica's
 *  spec index (-1 when race detection is off). */
inline std::vector<sim::ReplicaSpec>
broadcastSpecs(const std::vector<MemExperiment>& exps, int nprocs,
               const SimOpts& simOpts, const sim::HomeResolver* homes,
               std::vector<int>* raceReplicaOfExp)
{
    std::vector<sim::ReplicaSpec> specs;
    specs.reserve(exps.size());
    for (const MemExperiment& e : exps) {
        sim::ReplicaSpec s;
        s.machine.nprocs = nprocs;
        s.machine.cache = e.cache;
        s.machine.replacementHints = e.hints;
        s.machine.protocol = e.protocol;
        s.machine.interconnect = e.interconnect;
        s.homes = e.placed ? homes : nullptr;
        s.checkPeriod = simOpts.checkPeriod;
        specs.push_back(s);
    }
    raceReplicaOfExp->assign(exps.size(), -1);
    if (simOpts.race != sim::RaceGranularity::Off) {
        for (std::size_t i = 0; i < exps.size(); ++i) {
            const int granule =
                simOpts.race == sim::RaceGranularity::Word
                    ? 4
                    : exps[i].cache.lineSize;
            for (std::size_t j = 0; j < i; ++j) {
                if ((*raceReplicaOfExp)[j] >= 0 &&
                    specs[(*raceReplicaOfExp)[j]]
                            .machine.cache.lineSize == granule) {
                    (*raceReplicaOfExp)[i] = (*raceReplicaOfExp)[j];
                    break;
                }
            }
            if ((*raceReplicaOfExp)[i] >= 0)
                continue;
            sim::ReplicaSpec s;
            s.machine.nprocs = nprocs;
            s.machine.cache.lineSize = granule;
            s.race = simOpts.race;
            (*raceReplicaOfExp)[i] = static_cast<int>(specs.size());
            specs.push_back(s);
        }
    }
    return specs;
}

inline std::vector<RunStats>
runCharacterizations(App& app, int nprocs,
                     const std::vector<MemExperiment>& exps,
                     const AppConfig& cfg, const SimOpts& simOpts = {})
{
    std::vector<RunStats> out;
    Replicas mode = simOpts.replicas;
    if (mode == Replicas::Auto)
        mode = std::thread::hardware_concurrency() > 1
                   ? Replicas::Threaded
                   : Replicas::Inline;
    if (!simOpts.replay.empty()) {
        // Replay from disk: the recorded stream feeds the broadcast
        // replicas directly -- zero fiber execution, execution
        // counters from the trace footer, statistics byte-identical
        // to any live mode (broadcast == serial is proven by
        // tests/sim/replay_test.cc; disk == live by
        // tests/sim/tracestore_test.cc).
        auto rd = openReplay(app, nprocs, cfg, simOpts);
        std::vector<int> raceReplicaOfExp;
        std::vector<sim::ReplicaSpec> specs = broadcastSpecs(
            exps, nprocs, simOpts, rd->placement(), &raceReplicaOfExp);
        sim::BroadcastReplay replay(specs, mode == Replicas::Threaded);
        std::string err;
        if (!rd->replay(&replay, &err))
            fatal(err);
        replay.flush();
        const RunStats base = statsFromProfile(rd->exec());
        for (std::size_t i = 0; i < exps.size(); ++i) {
            const int ri = static_cast<int>(i);
            RunStats r = base;
            for (int p = 0; p < nprocs; ++p)
                r.memPerProc.push_back(replay.replica(ri).procStats(p));
            r.mem = replay.replica(ri).total();
            if (raceReplicaOfExp[i] >= 0) {
                r.raceChecked = true;
                r.race =
                    replay.raceReplica(raceReplicaOfExp[i]).outcome();
            }
            out.push_back(std::move(r));
        }
        return out;
    }
    auto rec = makeRecorder(app, nprocs, cfg, simOpts);
    if (mode == Replicas::Off || exps.size() <= 1) {
        for (const MemExperiment& e : exps) {
            rt::Env env({rt::Mode::Sim, nprocs, simOpts.quantum,
                         simOpts.backend, simOpts.delivery});
            sim::MachineConfig mc;
            mc.nprocs = nprocs;
            mc.cache = e.cache;
            mc.replacementHints = e.hints;
            mc.protocol = e.protocol;
            mc.interconnect = e.interconnect;
            sim::MemSystem mem(mc, e.placed ? &env.heap() : nullptr);
            mem.setCheckPeriod(simOpts.checkPeriod);
            env.attachMemSystem(&mem);
            std::unique_ptr<sim::RaceChecker> race;
            if (simOpts.race != sim::RaceGranularity::Off) {
                race = std::make_unique<sim::RaceChecker>(raceConfigFor(
                    simOpts.race, nprocs, e.cache.lineSize));
                env.attachSink(race.get());
            }
            if (rec)  // record rides the first serial execution
                env.attachSink(rec.get());
            RunStats r;
            r.valid = app.run(env, cfg).valid;
            for (int p = 0; p < nprocs; ++p) {
                r.perProc.push_back(env.stats(p));
                r.exec += env.stats(p);
                r.memPerProc.push_back(mem.procStats(p));
            }
            r.mem = mem.total();
            r.elapsed = env.elapsed();
            if (rec) {
                finalizeRecording(*rec, r);
                rec.reset();
            }
            if (race) {
                r.raceChecked = true;
                r.race = race->outcome();
            }
            out.push_back(std::move(r));
        }
        return out;
    }

    rt::Env env({rt::Mode::Sim, nprocs, simOpts.quantum,
                 simOpts.backend, simOpts.delivery});
    std::vector<int> raceReplicaOfExp;
    std::vector<sim::ReplicaSpec> specs = broadcastSpecs(
        exps, nprocs, simOpts, &env.heap(), &raceReplicaOfExp);
    sim::BroadcastReplay replay(specs, mode == Replicas::Threaded);
    env.attachSink(&replay);
    if (rec)
        env.attachSink(rec.get());
    RunStats base;
    base.valid = app.run(env, cfg).valid;
    replay.flush();
    for (int p = 0; p < nprocs; ++p) {
        base.perProc.push_back(env.stats(p));
        base.exec += env.stats(p);
    }
    base.elapsed = env.elapsed();
    if (rec)
        finalizeRecording(*rec, base);
    for (std::size_t i = 0; i < exps.size(); ++i) {
        const int ri = static_cast<int>(i);
        RunStats r = base;
        for (int p = 0; p < nprocs; ++p)
            r.memPerProc.push_back(replay.replica(ri).procStats(p));
        r.mem = replay.replica(ri).total();
        if (raceReplicaOfExp[i] >= 0) {
            r.raceChecked = true;
            r.race =
                replay.raceReplica(raceReplicaOfExp[i]).outcome();
        }
        out.push_back(std::move(r));
    }
    return out;
}

/** Run @p app under the full directory-coherent memory system
 *  (simOpts.protocol selects the protocol; default MESI). */
inline RunStats
runWithMemSystem(App& app, int nprocs, const sim::CacheConfig& cache,
                 const AppConfig& cfg, const SimOpts& simOpts = {})
{
    if (!simOpts.replay.empty() || !simOpts.record.empty()) {
        // One operating point of the general driver (identical
        // statistics; tests/sim/replay_test.cc), which owns the
        // record-once / replay-from-disk logic.
        MemExperiment e;
        e.cache = cache;
        e.protocol = simOpts.protocol;
        e.interconnect = simOpts.interconnect;
        return runCharacterizations(app, nprocs, {e}, cfg,
                                    simOpts)[0];
    }
    rt::Env env({rt::Mode::Sim, nprocs, simOpts.quantum,
                 simOpts.backend, simOpts.delivery});
    sim::MachineConfig mc;
    mc.nprocs = nprocs;
    mc.cache = cache;
    mc.protocol = simOpts.protocol;
    mc.interconnect = simOpts.interconnect;
    sim::MemSystem mem(mc, &env.heap());
    mem.setCheckPeriod(simOpts.checkPeriod);
    env.attachMemSystem(&mem);
    std::unique_ptr<sim::RaceChecker> race;
    if (simOpts.race != sim::RaceGranularity::Off) {
        race = std::make_unique<sim::RaceChecker>(
            raceConfigFor(simOpts.race, nprocs, cache.lineSize));
        env.attachSink(race.get());
    }
    RunStats out;
    out.valid = app.run(env, cfg).valid;
    for (int p = 0; p < nprocs; ++p) {
        out.perProc.push_back(env.stats(p));
        out.exec += env.stats(p);
        out.memPerProc.push_back(mem.procStats(p));
    }
    out.mem = mem.total();
    out.elapsed = env.elapsed();
    if (race) {
        out.raceChecked = true;
        out.race = race->outcome();
    }
    return out;
}

/** Run @p app feeding the multi-configuration cache sweep; the caller
 *  owns the sweep so it can query arbitrary operating points.  With
 *  simOpts.sweepThreads != 1 the sweep is driven through a
 *  ParallelSweep capture/replay pipeline (bit-identical results); the
 *  sweep is fully up to date when this returns. */
/** RefSink shim driving a serial CacheSweep from a replayed stream
 *  (the sweep is not itself a RefSink; ParallelSweep is). */
class SweepRefSink final : public sim::RefSink
{
  public:
    explicit SweepRefSink(sim::CacheSweep& s) : sweep_(s) {}
    void
    access(const sim::AccessRec& r) override
    {
        sweep_.access(r.proc, r.addr, r.size, r.type);
    }
    void resetStats() override { sweep_.resetStats(); }

  private:
    sim::CacheSweep& sweep_;
};

inline RunStats
runWithSweep(App& app, int nprocs, sim::CacheSweep& sweep,
             const AppConfig& cfg, const SimOpts& simOpts = {})
{
    if (!simOpts.replay.empty()) {
        auto rd = openReplay(app, nprocs, cfg, simOpts);
        std::unique_ptr<sim::ParallelSweep> ps;
        std::unique_ptr<SweepRefSink> serial;
        sim::RefSink* sink;
        if (simOpts.sweepThreads != 1) {
            ps = std::make_unique<sim::ParallelSweep>(
                sweep, simOpts.sweepThreads);
            sink = ps.get();
        } else {
            serial = std::make_unique<SweepRefSink>(sweep);
            sink = serial.get();
        }
        std::string err;
        if (!rd->replay(sink, &err))
            fatal(err);
        if (ps)
            ps->flush();
        return statsFromProfile(rd->exec());
    }
    rt::Env env({rt::Mode::Sim, nprocs, simOpts.quantum,
                 simOpts.backend, simOpts.delivery});
    std::unique_ptr<sim::ParallelSweep> ps;
    if (simOpts.sweepThreads != 1) {
        ps = std::make_unique<sim::ParallelSweep>(sweep,
                                                  simOpts.sweepThreads);
        env.attachSink(ps.get());
    } else {
        env.attachSweep(&sweep);
    }
    auto rec = makeRecorder(app, nprocs, cfg, simOpts);
    if (rec)
        env.attachSink(rec.get());
    RunStats out;
    out.valid = app.run(env, cfg).valid;
    if (ps)
        ps->flush();
    for (int p = 0; p < nprocs; ++p) {
        out.perProc.push_back(env.stats(p));
        out.exec += env.stats(p);
    }
    out.elapsed = env.elapsed();
    if (rec)
        finalizeRecording(*rec, out);
    return out;
}

/** Denominator for traffic ratios: FLOPS for floating-point codes,
 *  instructions for integer codes (paper Section 6). */
inline double
trafficDenominator(const App& app, const rt::ProcStats& exec)
{
    return app.isFloatingPoint() ? double(exec.flops)
                                 : double(exec.instructions());
}

} // namespace splash::harness

#endif // SPLASH2_HARNESS_EXPERIMENT_H
