/**
 * @file
 * Small fixed-width table formatter for the characterization benches,
 * so every bench prints rows shaped like the paper's tables/figures.
 */
#ifndef SPLASH2_HARNESS_REPORT_H
#define SPLASH2_HARNESS_REPORT_H

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "base/log.h"

namespace splash::harness {

class Table
{
  public:
    explicit Table(std::vector<std::string> headers)
        : headers_(std::move(headers))
    {}

    Table&
    row(std::vector<std::string> cells)
    {
        rows_.push_back(std::move(cells));
        return *this;
    }

    void
    print() const
    {
        std::vector<std::size_t> w(headers_.size());
        for (std::size_t i = 0; i < headers_.size(); ++i)
            w[i] = headers_[i].size();
        for (const auto& r : rows_)
            for (std::size_t i = 0; i < r.size() && i < w.size(); ++i)
                w[i] = std::max(w[i], r[i].size());
        auto line = [&](const std::vector<std::string>& cells) {
            for (std::size_t i = 0; i < w.size(); ++i) {
                std::string c = i < cells.size() ? cells[i] : "";
                std::printf("%c %-*s", i ? '|' : ' ',
                            static_cast<int>(w[i]), c.c_str());
            }
            std::printf("\n");
        };
        line(headers_);
        for (std::size_t i = 0; i < w.size(); ++i)
            std::printf("%c-%s", i ? '+' : '-',
                        std::string(w[i] + 1, '-').c_str());
        std::printf("\n");
        for (const auto& r : rows_)
            line(r);
    }

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

inline std::string
fmt(const char* f, double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), f, v);
    return buf;
}

inline std::string
fmtU(std::uint64_t v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(v));
    return buf;
}

/** Parse `--key value` style options; unmatched keys keep defaults. */
class Options
{
  public:
    Options(int argc, char** argv)
    {
        int i = 1;
        while (i < argc) {
            std::string k = argv[i];
            if (k.rfind("--", 0) != 0) {
                ++i;
                continue;
            }
            // `--key value` pair, or a bare boolean flag (`--quick`,
            // `--csv`) when no value follows.
            if (i + 1 < argc &&
                std::string(argv[i + 1]).rfind("--", 0) != 0) {
                kv_[k.substr(2)] = argv[i + 1];
                i += 2;
            } else {
                kv_[k.substr(2)] = "1";
                ++i;
            }
        }
    }

    double
    getD(const std::string& k, double def) const
    {
        auto it = kv_.find(k);
        if (it == kv_.end())
            return def;
        // Reject partial parses ("1.5x") and non-numbers outright
        // rather than silently truncating or throwing out of main().
        try {
            std::size_t pos = 0;
            double v = std::stod(it->second, &pos);
            if (pos == it->second.size())
                return v;
        } catch (const std::exception&) {
        }
        fatal("option --" + k + " expects a number, got '" +
              it->second + "'");
    }

    long
    getI(const std::string& k, long def) const
    {
        auto it = kv_.find(k);
        if (it == kv_.end())
            return def;
        try {
            std::size_t pos = 0;
            long v = std::stol(it->second, &pos);
            if (pos == it->second.size())
                return v;
        } catch (const std::exception&) {
        }
        fatal("option --" + k + " expects an integer, got '" +
              it->second + "'");
    }

    std::string
    getS(const std::string& k, const std::string& def) const
    {
        auto it = kv_.find(k);
        return it == kv_.end() ? def : it->second;
    }

    bool has(const std::string& k) const { return kv_.count(k) > 0; }

  private:
    std::map<std::string, std::string> kv_;
};

} // namespace splash::harness

#endif // SPLASH2_HARNESS_REPORT_H
