/**
 * @file
 * Parallel experiment runner: schedule independent characterization
 * jobs across host cores.
 *
 * Each figure/table bench decomposes into jobs that share no state --
 * one per (application, processor-count, configuration-group)
 * execution.  The runner executes them on a pool of host threads,
 * ordered longest-processing-time-first by the caller's cost hint so
 * the pool drains evenly, while the caller assembles output strictly
 * in submission order after run() returns -- stdout bytes are
 * identical for every --jobs value, including the serial path
 * (--jobs 1), which executes jobs inline in submission order and is
 * the differential oracle.
 *
 * Jobs must not touch shared mutable state; every simulation object
 * (Env, heap, memory systems) is per-job, and the stable simulated
 * address space (rt::SharedHeap) keeps results independent of host
 * allocation interleaving, so a job's statistics are bit-identical no
 * matter which worker runs it or what runs beside it.
 */
#ifndef SPLASH2_HARNESS_RUNNER_H
#define SPLASH2_HARNESS_RUNNER_H

#include <functional>
#include <string>
#include <vector>

namespace splash::harness {

class Runner
{
  public:
    /** @param jobs worker threads; 0 = hardware concurrency, 1 =
     *  execute inline in submission order (serial oracle). */
    explicit Runner(int jobs);

    /** Queue one job. @p cost is a relative duration estimate used
     *  only for scheduling order (longest first); any monotone
     *  estimate works, and ties keep submission order. */
    void add(std::string label, double cost,
             std::function<void()> fn);

    /** Execute every queued job; returns when all have completed.
     *  Rethrows the first job exception (by submission order of the
     *  throwing job's start). May be called once. */
    void run();

    int jobs() const { return jobs_; }
    /** Wall seconds the last run() spent in job @p i (diagnostics). */
    double jobSeconds(std::size_t i) const { return jobs_run_[i]; }

    /** Resolve a --jobs flag value: 0 = hardware concurrency. */
    static int resolve(long flag);

  private:
    struct Job
    {
        std::string label;
        double cost = 0;
        std::function<void()> fn;
    };

    int jobs_;
    std::vector<Job> queue_;
    std::vector<double> jobs_run_;
};

} // namespace splash::harness

#endif // SPLASH2_HARNESS_RUNNER_H
