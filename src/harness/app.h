/**
 * @file
 * Uniform application interface used by the characterization harness.
 *
 * Every SPLASH-2 program exposes a rich native API in its own header
 * (apps/<name>/<name>.h) and additionally registers an App adapter so
 * the benches can run the whole suite generically.
 *
 * Measurement protocol: run() performs uninstrumented setup, starts a
 * team, and calls Env::startMeasurement() at the point the paper
 * starts measuring (after process creation, or after initialization +
 * cold start for programs that would run many more iterations than we
 * simulate).
 */
#ifndef SPLASH2_HARNESS_APP_H
#define SPLASH2_HARNESS_APP_H

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "rt/env.h"

namespace splash::harness {

/** Generic problem-size knobs; each program documents its mapping. */
struct AppConfig
{
    /** Primary problem size: bodies, points, keys, grid dimension,
     *  matrix dimension, image size -- program specific. */
    long n = 0;
    /** Iterations / time-steps / frames (0 = program default). */
    long iters = 0;
    /** Secondary parameter (radix, block size, terms, ...). */
    long aux = 0;
    /** Workload scale factor applied to the default problem. 1.0 is
     *  the suite default; benches use it for problem-size scaling. */
    double scale = 1.0;
    unsigned seed = 1234;
};

struct AppResult
{
    bool valid = true;          ///< program self-check outcome
    double checksum = 0.0;      ///< deterministic output digest
    std::string detail;         ///< human-readable validation note
};

class App
{
  public:
    virtual ~App() = default;

    /** Program name as in the paper's tables ("FFT", "Water-Nsq", ...). */
    virtual std::string name() const = 0;

    /** True for the eight floating-point codes (traffic reported per
     *  FLOP); false for the integer codes (per instruction). */
    virtual bool isFloatingPoint() const = 0;

    /** Run with @p cfg on @p env (setup + team + measurement). */
    virtual AppResult run(rt::Env& env, const AppConfig& cfg) = 0;
};

/** Global registry of the twelve programs, in the paper's table order. */
const std::vector<App*>& suite();

/** Look up a program by (case-insensitive) name; null if unknown. */
App* findApp(const std::string& name);

} // namespace splash::harness

#endif // SPLASH2_HARNESS_APP_H
