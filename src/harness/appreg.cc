/**
 * @file
 * Registry adapting the twelve SPLASH-2 programs to the generic App
 * interface used by the characterization benches.
 *
 * Problem-size mapping: `scale` multiplies the default data-set size
 * (1.0 reproduces the suite's sim-scaled defaults listed in
 * DESIGN.md); `n` overrides the primary size directly; `iters`
 * overrides the step/frame count.  Programs that iterate run one
 * warmup step before measurement starts, matching the paper's
 * methodology of skipping initialization and cold start.
 */
#include "harness/app.h"

#include <algorithm>
#include <cctype>
#include <cmath>

#include "apps/barnes/barnes.h"
#include "apps/cholesky/cholesky.h"
#include "apps/fft/fft.h"
#include "apps/fmm/fmm.h"
#include "apps/lu/lu.h"
#include "apps/ocean/ocean.h"
#include "apps/radiosity/radiosity.h"
#include "apps/radix/radix.h"
#include "apps/raytrace/raytrace.h"
#include "apps/volrend/volrend.h"
#include "apps/water/water_nsq.h"
#include "apps/water/water_sp.h"

namespace splash::harness {

namespace {

long
scaled(long base, double scale)
{
    return std::max<long>(1, std::lround(base * scale));
}

/** Lower the reduced density when the default 0.8 would make the box
 *  smaller than 3 cutoff-sized cells per axis (needed by Water-Sp's
 *  cell grid and by minimum image). */
double
waterDensity(int nmol)
{
    const double min_box = 3.0 * 2.5 + 0.05;
    double density = 0.8;
    double box = std::cbrt(nmol / density);
    if (box < min_box)
        density = nmol / (min_box * min_box * min_box);
    return density;
}

/** Nearest power of two >= 4. */
int
pow2Near(double v)
{
    int p = 4;
    while (p * 2 <= v * 1.42)
        p *= 2;
    return p;
}

class BarnesApp : public App
{
  public:
    std::string name() const override { return "Barnes"; }
    bool isFloatingPoint() const override { return true; }
    AppResult
    run(rt::Env& env, const AppConfig& cfg) override
    {
        apps::barnes::Config c;
        c.nbodies = static_cast<int>(
            cfg.n ? cfg.n : scaled(2048, cfg.scale));
        c.steps = static_cast<int>(cfg.iters ? cfg.iters : 3);
        c.warmupSteps = c.steps > 1 ? 1 : 0;
        c.seed = cfg.seed;
        apps::barnes::Barnes app(env, c);
        env.startMeasurement();
        auto r = app.run();
        return {r.valid, r.checksum, ""};
    }
};

class CholeskyApp : public App
{
  public:
    std::string name() const override { return "Cholesky"; }
    bool isFloatingPoint() const override { return true; }
    AppResult
    run(rt::Env& env, const AppConfig& cfg) override
    {
        apps::cholesky::Config c;
        c.grid = static_cast<int>(
            cfg.n ? cfg.n : scaled(24, std::sqrt(cfg.scale)));
        c.seed = cfg.seed;
        apps::cholesky::Cholesky app(env, c);
        env.startMeasurement();
        auto r = app.run();
        return {r.valid, r.checksum, ""};
    }
};

class FftApp : public App
{
  public:
    std::string name() const override { return "FFT"; }
    bool isFloatingPoint() const override { return true; }
    AppResult
    run(rt::Env& env, const AppConfig& cfg) override
    {
        apps::fft::Config c;
        // n is log2 of the point count; scale doubles points per 2x.
        int log2n = static_cast<int>(
            cfg.n ? cfg.n
                  : 14 + 2 * std::lround(std::log2(cfg.scale) / 2.0));
        c.log2n = std::max(8, log2n - (log2n % 2));
        c.seed = cfg.seed;
        apps::fft::Fft app(env, c);
        env.startMeasurement();
        auto r = app.run();
        return {r.valid, r.checksum, ""};
    }
};

class FmmApp : public App
{
  public:
    std::string name() const override { return "FMM"; }
    bool isFloatingPoint() const override { return true; }
    AppResult
    run(rt::Env& env, const AppConfig& cfg) override
    {
        apps::fmm::Config c;
        c.nbodies = static_cast<int>(
            cfg.n ? cfg.n : scaled(2048, cfg.scale));
        c.steps = static_cast<int>(cfg.iters ? cfg.iters : 1);
        c.seed = cfg.seed;
        apps::fmm::Fmm app(env, c);
        env.startMeasurement();
        auto r = app.run();
        return {r.valid, r.checksum, ""};
    }
};

class LuApp : public App
{
  public:
    std::string name() const override { return "LU"; }
    bool isFloatingPoint() const override { return true; }
    AppResult
    run(rt::Env& env, const AppConfig& cfg) override
    {
        apps::lu::Config c;
        long n = cfg.n ? cfg.n : scaled(192, std::sqrt(cfg.scale));
        c.block = static_cast<int>(cfg.aux ? cfg.aux : 16);
        c.n = static_cast<int>((n + c.block - 1) / c.block) * c.block;
        c.seed = cfg.seed;
        apps::lu::Lu app(env, c);
        env.startMeasurement();
        auto r = app.run();
        return {r.valid, r.checksum, ""};
    }
};

class OceanApp : public App
{
  public:
    std::string name() const override { return "Ocean"; }
    bool isFloatingPoint() const override { return true; }
    AppResult
    run(rt::Env& env, const AppConfig& cfg) override
    {
        apps::ocean::Config c;
        c.n = static_cast<int>(
            cfg.n ? cfg.n : pow2Near(128 * std::sqrt(cfg.scale)));
        c.steps = static_cast<int>(cfg.iters ? cfg.iters : 2);
        c.warmupSteps = c.steps > 1 ? 1 : 0;
        c.tol = 0.0;
        c.maxCycles = 4;
        c.seed = cfg.seed;
        apps::ocean::Ocean app(env, c);
        env.startMeasurement();
        auto r = app.run();
        return {r.valid, r.checksum, ""};
    }
};

class RadiosityApp : public App
{
  public:
    std::string name() const override { return "Radiosity"; }
    bool isFloatingPoint() const override { return true; }
    AppResult
    run(rt::Env& env, const AppConfig& cfg) override
    {
        apps::radiosity::Config c;
        c.iterations = static_cast<int>(cfg.iters ? cfg.iters : 4);
        c.ffEps = 0.02 / std::sqrt(cfg.scale);
        c.areaEps = 0.08 / cfg.scale;
        c.seed = cfg.seed;
        apps::radiosity::Radiosity app(env, c);
        env.startMeasurement();
        auto r = app.run();
        return {r.valid, r.checksum, ""};
    }
};

class RadixApp : public App
{
  public:
    std::string name() const override { return "Radix"; }
    bool isFloatingPoint() const override { return false; }
    AppResult
    run(rt::Env& env, const AppConfig& cfg) override
    {
        apps::radix::Config c;
        long keys = cfg.n ? cfg.n : scaled(256 * 1024, cfg.scale);
        c.nkeys = (keys / env.nprocs()) * env.nprocs();
        c.radix = static_cast<int>(cfg.aux ? cfg.aux : 1024);
        c.seed = cfg.seed;
        apps::radix::Radix app(env, c);
        env.startMeasurement();
        auto r = app.run();
        return {r.valid, r.checksum, ""};
    }
};

class RaytraceApp : public App
{
  public:
    std::string name() const override { return "Raytrace"; }
    bool isFloatingPoint() const override { return false; }
    AppResult
    run(rt::Env& env, const AppConfig& cfg) override
    {
        apps::raytrace::Config c;
        int edge = static_cast<int>(
            cfg.n ? cfg.n : scaled(128, std::sqrt(cfg.scale)));
        c.width = c.height = edge;
        c.seed = cfg.seed;
        apps::raytrace::Raytrace app(env, c);
        env.startMeasurement();
        auto r = app.run();
        return {r.valid, r.checksum, ""};
    }
};

class VolrendApp : public App
{
  public:
    std::string name() const override { return "Volrend"; }
    bool isFloatingPoint() const override { return false; }
    AppResult
    run(rt::Env& env, const AppConfig& cfg) override
    {
        apps::volrend::Config c;
        c.size = static_cast<int>(
            cfg.n ? cfg.n : pow2Near(64 * std::cbrt(cfg.scale)));
        c.width = static_cast<int>(scaled(128, std::sqrt(cfg.scale)));
        c.frames = static_cast<int>(cfg.iters ? cfg.iters : 2);
        c.warmupFrames = c.frames > 1 ? 1 : 0;
        c.seed = cfg.seed;
        apps::volrend::Volrend app(env, c);
        env.startMeasurement();
        auto r = app.run();
        return {r.valid, r.checksum, ""};
    }
};

class WaterNsqApp : public App
{
  public:
    std::string name() const override { return "Water-Nsq"; }
    bool isFloatingPoint() const override { return true; }
    AppResult
    run(rt::Env& env, const AppConfig& cfg) override
    {
        apps::water::MdConfig c;
        c.nmol = static_cast<int>(cfg.n ? cfg.n : scaled(512, cfg.scale));
        c.density = waterDensity(c.nmol);
        c.steps = static_cast<int>(cfg.iters ? cfg.iters : 3);
        c.warmupSteps = c.steps > 1 ? 1 : 0;
        c.seed = cfg.seed;
        apps::water::WaterNsq app(env, c);
        env.startMeasurement();
        auto r = app.run();
        return {r.valid, r.checksum, ""};
    }
};

class WaterSpApp : public App
{
  public:
    std::string name() const override { return "Water-Sp"; }
    bool isFloatingPoint() const override { return true; }
    AppResult
    run(rt::Env& env, const AppConfig& cfg) override
    {
        apps::water::MdConfig c;
        c.nmol = static_cast<int>(cfg.n ? cfg.n : scaled(512, cfg.scale));
        c.density = waterDensity(c.nmol);
        c.steps = static_cast<int>(cfg.iters ? cfg.iters : 3);
        c.warmupSteps = c.steps > 1 ? 1 : 0;
        c.seed = cfg.seed;
        apps::water::WaterSp app(env, c);
        env.startMeasurement();
        auto r = app.run();
        return {r.valid, r.checksum, ""};
    }
};

} // namespace

const std::vector<App*>&
suite()
{
    static std::vector<App*> apps = [] {
        // Paper's table order.
        static BarnesApp barnes;
        static CholeskyApp cholesky;
        static FftApp fft;
        static FmmApp fmm;
        static LuApp lu;
        static OceanApp ocean;
        static RadiosityApp radiosity;
        static RadixApp radix;
        static RaytraceApp raytrace;
        static VolrendApp volrend;
        static WaterNsqApp waternsq;
        static WaterSpApp watersp;
        return std::vector<App*>{&barnes, &cholesky, &fft, &fmm,
                                 &lu, &ocean, &radiosity, &radix,
                                 &raytrace, &volrend, &waternsq,
                                 &watersp};
    }();
    return apps;
}

App*
findApp(const std::string& name)
{
    auto lower = [](std::string s) {
        std::transform(s.begin(), s.end(), s.begin(), [](unsigned char ch) {
            return std::tolower(ch);
        });
        return s;
    };
    for (App* a : suite())
        if (lower(a->name()) == lower(name))
            return a;
    return nullptr;
}

} // namespace splash::harness
