/**
 * @file
 * Engine-related command-line flags shared by every characterization
 * bench and by splash2run:
 *
 *   --jobs N          host threads for independent experiments
 *                     (N >= 1; default 1 = serial)
 *   --replicas MODE   broadcast replay of multi-configuration runs:
 *                     off | inline | threads | auto (default auto)
 *   --backend KIND    interleaver execution mechanism: fiber | thread
 *   --quantum N       instrumentation events per scheduling slice
 *   --delivery SHAPE  reference delivery: batched | direct
 *   --sweep MODE      working-set sweep engine: exact | model | both
 *                     (default exact).  model predicts the Figure-3
 *                     curves from a reuse-distance profile instead of
 *                     simulating 34 tag arrays; both runs the two and
 *                     reports model-vs-exact error
 *   --sweep-threads N working-set sweep replay pool (exact sweep
 *                     only; rejected with --sweep model)
 *   --check N         coherence invariant checker sampling period: a
 *                     full directory/cache cross-validation every N
 *                     slow-path transactions (0 = off, the default)
 *   --protocol NAME   coherence protocol of the simulated machine:
 *                     msi | mesi | moesi | dragon (default mesi), or
 *                     "list" to print the protocol zoo and exit
 *   --interconnect K  interconnect organization of the simulated
 *                     machine: directory | bus (default directory).
 *                     Bus mode snoops the tag arrays instead of
 *                     consulting a directory and accounts address/data
 *                     bus occupancy instead of packet bytes
 *   --race GRAN       happens-before race detection over the
 *                     reference stream: off | word | line (default
 *                     off).  Observation only: characterization
 *                     output is byte-identical for any value.
 *   --record DIR      record each executed (app, P) reference stream
 *                     into trace store DIR (created if missing); an
 *                     already-recorded identity is skipped
 *   --replay DIR      replay reference streams from trace store DIR
 *                     (or a single .s2t file) instead of executing;
 *                     mutually exclusive with --record
 *
 * Every flag except --protocol and --interconnect changes wall clock
 * only; results and output bytes are identical for any combination
 * (--jobs 1 --replicas off is the serial differential oracle).
 * --protocol and --interconnect select the machine being measured, so
 * they change results by design.  Invalid values are rejected with an
 * error rather than silently falling back, and contradictory flag
 * combinations are rejected up front with one uniform message shape
 * ("conflicting flags: ...") via checkModeConflicts().
 */
#ifndef SPLASH2_HARNESS_CLI_H
#define SPLASH2_HARNESS_CLI_H

#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <string>

#include "harness/experiment.h"
#include "harness/report.h"
#include "sim/faultinject.h"

namespace splash::harness {

struct EngineOpts
{
    int jobs = 1;
    SimOpts sim;
    /** True when parseEngineOpts handled an informational request
     *  (--protocol list) and printed it: the caller should exit 0
     *  instead of treating the false return as a usage error. */
    bool listRequested = false;
    /** True when --sweep was given explicitly (splash2run switches
     *  from the memory-system characterization to the working-set
     *  sweep on it; the sweep benches always sweep). */
    bool sweepRequested = false;
    /** True when --interconnect was given explicitly (used to reject
     *  contradictory combinations only when the user actually asked
     *  for the non-default organization). */
    bool interconnectRequested = false;
};

/** Print the one uniform diagnostic shape for a contradictory flag
 *  combination and return false, so callers can
 *  `return conflictingFlags(...)` from a parse path. */
inline bool
conflictingFlags(const std::string& a, const std::string& b,
                 const std::string& why)
{
    std::fprintf(stderr,
                 "conflicting flags: %s and %s cannot be combined "
                 "(%s)\n",
                 a.c_str(), b.c_str(), why.c_str());
    return false;
}

/** Parse the shared engine flags; prints to stderr and returns false
 *  on an unrecognized value. */
inline bool
parseEngineOpts(const Options& opt, EngineOpts* out)
{
    long jobs = opt.getI("jobs", 1);
    if (jobs < 1) {
        std::fprintf(stderr, "--jobs must be >= 1 (got %ld)\n", jobs);
        return false;
    }
    out->jobs = static_cast<int>(jobs);
    long quantum = opt.getI("quantum", 250);
    if (quantum < 1) {
        std::fprintf(stderr, "--quantum must be >= 1 (got %ld)\n",
                     quantum);
        return false;
    }
    out->sim.quantum = static_cast<std::uint64_t>(quantum);
    long sweepThreads = opt.getI("sweep-threads", 0);
    if (sweepThreads < 0) {
        std::fprintf(stderr,
                     "--sweep-threads must be >= 0 (got %ld; 0 = "
                     "hardware concurrency)\n",
                     sweepThreads);
        return false;
    }
    out->sim.sweepThreads = static_cast<int>(sweepThreads);
    std::string sweepMode = opt.getS("sweep", "exact");
    out->sweepRequested = opt.has("sweep");
    if (!sim::parseSweepMode(sweepMode, &out->sim.sweep)) {
        std::fprintf(stderr,
                     "unknown --sweep '%s' (exact, model, or both)\n",
                     sweepMode.c_str());
        return false;
    }
    if (out->sim.sweep == sim::SweepMode::Model &&
        opt.has("sweep-threads")) {
        // The replay pool parallelizes the exact engine's tag arrays;
        // a model-only sweep has none, so an explicit thread count is
        // a contradiction rather than a silent no-op.
        return conflictingFlags("--sweep-threads", "--sweep model",
                                "the replay pool parallelizes the "
                                "exact engine's tag arrays and a "
                                "model-only sweep has none");
    }
    long check = opt.getI("check", 0);
    if (check < 0) {
        std::fprintf(stderr,
                     "--check must be >= 0 (got %ld; 0 = off)\n", check);
        return false;
    }
    out->sim.checkPeriod = static_cast<std::uint64_t>(check);
    std::string backend = opt.getS("backend", "fiber");
    if (!rt::parseBackendKind(backend, &out->sim.backend)) {
        std::fprintf(stderr,
                     "unknown --backend '%s' (fiber or thread)\n",
                     backend.c_str());
        return false;
    }
    std::string delivery = opt.getS("delivery", "batched");
    if (!rt::parseDelivery(delivery, &out->sim.delivery)) {
        std::fprintf(stderr,
                     "unknown --delivery '%s' (batched or direct)\n",
                     delivery.c_str());
        return false;
    }
    std::string replicas = opt.getS("replicas", "auto");
    if (!parseReplicas(replicas, &out->sim.replicas)) {
        std::fprintf(stderr,
                     "unknown --replicas '%s' (off, inline, threads, "
                     "or auto)\n",
                     replicas.c_str());
        return false;
    }
    std::string protoName = opt.getS("protocol", "mesi");
    if (protoName == "list") {
        std::fputs(sim::protocolZoo().c_str(), stdout);
        out->listRequested = true;
        return false;
    }
    if (!sim::parseProtocol(protoName, &out->sim.protocol)) {
        std::fprintf(stderr,
                     "unknown --protocol '%s' (msi, mesi, moesi, "
                     "dragon, or list)\n",
                     protoName.c_str());
        return false;
    }
    std::string icName = opt.getS("interconnect", "directory");
    out->interconnectRequested = opt.has("interconnect");
    if (!sim::parseInterconnect(icName, &out->sim.interconnect)) {
        std::fprintf(stderr,
                     "unknown --interconnect '%s' (directory or "
                     "bus)\n",
                     icName.c_str());
        return false;
    }
    std::string race = opt.getS("race", "off");
    if (!sim::parseRaceGranularity(race, &out->sim.race)) {
        std::fprintf(stderr,
                     "unknown --race '%s' (off, word, or line)\n",
                     race.c_str());
        return false;
    }
    out->sim.record = opt.getS("record", "");
    out->sim.replay = opt.getS("replay", "");
    if (!out->sim.record.empty() && !out->sim.replay.empty())
        return conflictingFlags("--record", "--replay",
                                "a run either writes the trace store "
                                "or reads from it");
    if (!out->sim.replay.empty()) {
        struct stat st{};
        if (::stat(out->sim.replay.c_str(), &st) != 0) {
            std::fprintf(stderr,
                         "--replay path '%s' does not exist\n",
                         out->sim.replay.c_str());
            return false;
        }
    }
    if (!out->sim.record.empty()) {
        // The store is a directory of one file per recorded identity;
        // create it up front so a non-writable destination fails here
        // rather than mid-run (a path naming an existing regular file
        // is allowed: single-file recording).
        struct stat st{};
        if (::stat(out->sim.record.c_str(), &st) != 0) {
            if (::mkdir(out->sim.record.c_str(), 0777) != 0) {
                std::fprintf(
                    stderr,
                    "--record path '%s' cannot be created\n",
                    out->sim.record.c_str());
                return false;
            }
        } else if (S_ISDIR(st.st_mode) &&
                   ::access(out->sim.record.c_str(), W_OK) != 0) {
            std::fprintf(stderr,
                         "--record path '%s' is not writable\n",
                         out->sim.record.c_str());
            return false;
        }
    }
    return true;
}

/** Reject contradictory mode-flag combinations with the uniform
 *  "conflicting flags" diagnostic.  splash2run calls this once after
 *  parseEngineOpts; it covers the run-mode matrix the engine flags
 *  cannot see on their own (--inject and --race-inject are splash2run
 *  flags, not engine flags).  Each harness or mode owns the whole
 *  run, so combining two of them would silently ignore one -- reject
 *  instead of no-op.  Returns true when the combination is runnable.
 */
inline bool
checkModeConflicts(const Options& opt, const EngineOpts& eng)
{
    const bool inject = opt.has("inject");
    const bool raceInject = opt.has("race-inject");
    const bool record = !eng.sim.record.empty();
    const bool replay = !eng.sim.replay.empty();
    const bool race = eng.sim.race != sim::RaceGranularity::Off;
    const bool bus = eng.sim.interconnect == sim::Interconnect::Bus;

    if (inject && raceInject)
        return conflictingFlags("--inject", "--race-inject",
                                "each injection harness owns the "
                                "whole run");
    if (inject || raceInject) {
        const std::string flag = inject ? "--inject" : "--race-inject";
        if (eng.sweepRequested)
            return conflictingFlags(flag, "--sweep",
                                    "the working-set sweep has no "
                                    "protocol state to corrupt");
        if (record)
            return conflictingFlags(flag, "--record",
                                    "injection runs corrupt state and "
                                    "must not enter the trace store");
        if (replay)
            return conflictingFlags(flag, "--replay",
                                    "the harness re-executes the "
                                    "program itself");
        if (race)
            return conflictingFlags(flag, "--race",
                                    "the harness drives its own "
                                    "detector configuration");
    }
    if (eng.interconnectRequested && bus && eng.sweepRequested)
        return conflictingFlags("--interconnect bus", "--sweep",
                                "the working-set sweep models cache "
                                "capacity only and has no "
                                "interconnect");
    // A named fault kind targets one organization's state; injecting
    // it under the other interconnect could only ever SKIP, so the
    // mismatch is rejected at parse time ('all' filters by
    // eligibility instead).
    if (inject) {
        std::string which = opt.getS("inject", "all");
        sim::FaultKind k;
        if (which != "all" && sim::parseFaultKind(which, &k) &&
            sim::faultKindIsBus(k) != bus)
            return conflictingFlags(
                "--inject " + which,
                bus ? "--interconnect bus" : "--interconnect directory",
                sim::faultKindIsBus(k)
                    ? "this fault kind corrupts snoopy-bus state"
                    : "this fault kind corrupts directory state");
    }
    return true;
}

/** Relative execution cost of one characterization of @p app at the
 *  suite default problem size -- a scheduling hint for the runner's
 *  LPT ordering (measured on the committed results; only the ordering
 *  matters, not the absolute values). */
inline double
appCostHint(const App& app)
{
    const std::string n = app.name();
    if (n == "FMM") return 8.0;
    if (n == "Barnes") return 6.0;
    if (n == "Ocean") return 5.0;
    if (n == "Water-Nsq") return 4.0;
    if (n == "Radiosity") return 3.0;
    if (n == "Raytrace") return 3.0;
    if (n == "Volrend") return 2.0;
    if (n == "Water-Sp") return 2.0;
    if (n == "Cholesky") return 1.5;
    return 1.0;  // FFT, LU, Radix
}

} // namespace splash::harness

#endif // SPLASH2_HARNESS_CLI_H
