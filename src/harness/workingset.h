/**
 * @file
 * Working-set sweep driver shared by the Figure-3 benches and
 * splash2run's --sweep mode: run one application and produce the
 * exact multi-configuration cache sweep (sim/sweep.h), the
 * reuse-distance analytical model (sim/reusedist.h), or both, under
 * every execution substrate the other drivers support -- live fiber
 * execution, trace replay from disk, and (for the model) loading a
 * recorded ".rdp" profile sidecar with no execution or replay at all.
 *
 * Sidecar life cycle mirrors the trace store's record-once rule: a
 * live or replayed model pass saves its profile next to the trace
 * (--record store, or best effort into the --replay store) unless one
 * already exists; a later `--sweep model --replay STORE` run loads it
 * and evaluates the predicted curves in microseconds.
 */
#ifndef SPLASH2_HARNESS_WORKINGSET_H
#define SPLASH2_HARNESS_WORKINGSET_H

#include <sys/stat.h>

#include <memory>
#include <vector>

#include "harness/experiment.h"
#include "sim/reusedist.h"

namespace splash::harness {

/** One replayed stream fanned out to several sinks in order (the
 *  trace reader takes a single sink). */
class TeeRefSink final : public sim::RefSink
{
  public:
    explicit TeeRefSink(std::vector<sim::RefSink*> sinks)
        : sinks_(std::move(sinks))
    {
    }
    void
    access(const sim::AccessRec& r) override
    {
        for (sim::RefSink* s : sinks_)
            s->access(r);
    }
    void
    sync(const sim::SyncRec& r) override
    {
        for (sim::RefSink* s : sinks_)
            s->sync(r);
    }
    void
    place(const sim::PlaceRec& r) override
    {
        for (sim::RefSink* s : sinks_)
            s->place(r);
    }
    void
    resetStats() override
    {
        for (sim::RefSink* s : sinks_)
            s->resetStats();
    }
    void
    streamBarrier() override
    {
        for (sim::RefSink* s : sinks_)
            s->streamBarrier();
    }

  private:
    std::vector<sim::RefSink*> sinks_;
};

/** Results of one working-set sweep of one application. */
struct WorkingSetRun
{
    RunStats stats;
    /** The exact engine's sweep (sweep mode != Model). */
    std::unique_ptr<sim::CacheSweep> exact;
    /** The analytical profile (sweep mode != Exact). */
    sim::ReuseDistProfile model;
    bool haveModel = false;
    /** The model came straight from a saved sidecar: neither fiber
     *  execution nor trace replay happened. */
    bool modelFromProfile = false;
};

/** Miss rate of @p run at one Figure-3 operating point from the
 *  requested engine (@p useModel selects the analytical curve). */
inline double
wsMissRate(const WorkingSetRun& run, std::uint64_t size, int assoc,
           bool useModel)
{
    return useModel ? run.model.missRate(size, assoc)
                    : run.exact->missRate(size, assoc);
}

/** Run @p app once and produce the sweep(s) requested by
 *  @p simOpts.sweep over @p sc's operating points.  @p sc.nprocs must
 *  equal @p nprocs. */
inline WorkingSetRun
runWorkingSets(App& app, int nprocs, const sim::SweepConfig& sc,
               const AppConfig& cfg, const SimOpts& simOpts = {})
{
    ensure(sc.nprocs == nprocs,
           "sweep config and run disagree on the processor count");
    const bool needExact = simOpts.sweep != sim::SweepMode::Model;
    const bool needModel = simOpts.sweep != sim::SweepMode::Exact;
    const sim::TraceMeta meta = traceMetaFor(app, nprocs, cfg, simOpts);

    WorkingSetRun out;
    // Fastest path: a model-bearing sweep with a saved sidecar in the
    // replay store skips straight to post-processing.
    if (needModel && !simOpts.replay.empty()) {
        std::string err;
        sim::ReuseDistProfile pr;
        if (sim::ReuseDistProfile::load(
                sim::profilePathFor(simOpts.replay, meta), meta,
                sc.lineSize, &pr, &err) &&
            pr.nprocs == sc.nprocs) {
            out.model = std::move(pr);
            out.haveModel = true;
            out.modelFromProfile = true;
            if (!needExact) {
                out.stats = statsFromProfile(out.model.exec);
                return out;
            }
        }
    }
    const bool profileLive = needModel && !out.haveModel;
    if (needExact)
        out.exact = std::make_unique<sim::CacheSweep>(sc);

    std::unique_ptr<sim::ReuseDistProfiler> prof;
    std::unique_ptr<sim::BroadcastReplay> rdcast;
    if (!simOpts.replay.empty()) {
        // Replay the recorded stream into every needed sink at once.
        auto rd = openReplay(app, nprocs, cfg, simOpts);
        std::unique_ptr<sim::ParallelSweep> ps;
        std::unique_ptr<SweepRefSink> serial;
        std::vector<sim::RefSink*> sinks;
        if (needExact) {
            if (simOpts.sweepThreads != 1) {
                ps = std::make_unique<sim::ParallelSweep>(
                    *out.exact, simOpts.sweepThreads);
                sinks.push_back(ps.get());
            } else {
                serial = std::make_unique<SweepRefSink>(*out.exact);
                sinks.push_back(serial.get());
            }
        }
        if (profileLive) {
            prof = std::make_unique<sim::ReuseDistProfiler>(
                sc.nprocs, sc.lineSize);
            sinks.push_back(prof.get());
        }
        TeeRefSink tee(std::move(sinks));
        std::string err;
        if (!rd->replay(&tee, &err))
            fatal(err);
        if (ps)
            ps->flush();
        out.stats = statsFromProfile(rd->exec());
    } else {
        rt::Env env({rt::Mode::Sim, nprocs, simOpts.quantum,
                     simOpts.backend, simOpts.delivery});
        std::unique_ptr<sim::ParallelSweep> ps;
        if (needExact) {
            if (simOpts.sweepThreads != 1) {
                ps = std::make_unique<sim::ParallelSweep>(
                    *out.exact, simOpts.sweepThreads);
                env.attachSink(ps.get());
            } else {
                env.attachSweep(out.exact.get());
            }
        }
        if (profileLive) {
            Replicas rmode = simOpts.replicas;
            if (rmode == Replicas::Auto)
                rmode = std::thread::hardware_concurrency() > 1
                            ? Replicas::Threaded
                            : Replicas::Inline;
            if (rmode == Replicas::Threaded) {
                // The profiler is the broadcast engine's third
                // replica kind: its consumer thread overlaps the
                // exact sweep's worker pool.
                sim::ReplicaSpec spec;
                spec.machine.nprocs = sc.nprocs;
                spec.machine.cache.lineSize = sc.lineSize;
                spec.rdProfile = true;
                rdcast = std::make_unique<sim::BroadcastReplay>(
                    std::vector<sim::ReplicaSpec>{spec}, true);
                env.attachSink(rdcast.get());
            } else {
                prof = std::make_unique<sim::ReuseDistProfiler>(
                    sc.nprocs, sc.lineSize);
                env.attachSink(prof.get());
            }
        }
        auto rec = makeRecorder(app, nprocs, cfg, simOpts);
        if (rec)
            env.attachSink(rec.get());
        out.stats.valid = app.run(env, cfg).valid;
        if (ps)
            ps->flush();
        if (rdcast)
            rdcast->flush();
        for (int p = 0; p < nprocs; ++p) {
            out.stats.perProc.push_back(env.stats(p));
            out.stats.exec += env.stats(p);
        }
        out.stats.elapsed = env.elapsed();
        if (rec)
            finalizeRecording(*rec, out.stats);
    }

    if (profileLive) {
        out.model =
            (rdcast ? rdcast->rdReplica(0) : *prof).profile();
        out.model.exec = execProfileFrom(
            out.stats.perProc, out.stats.elapsed, out.stats.valid);
        out.haveModel = true;
        // Save the sidecar next to the trace (record once): into the
        // --record store, or -- best effort -- back into the --replay
        // store so later model sweeps skip the replay too.
        const std::string& store =
            !simOpts.record.empty() ? simOpts.record : simOpts.replay;
        if (!store.empty()) {
            const std::string path =
                sim::profilePathFor(store, meta);
            struct stat st{};
            if (::stat(path.c_str(), &st) != 0) {
                std::string err;
                if (!out.model.save(path, meta, &err) &&
                    !simOpts.record.empty())
                    fatal(err);
            }
        }
    }
    return out;
}

} // namespace splash::harness

#endif // SPLASH2_HARNESS_WORKINGSET_H
