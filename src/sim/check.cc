#include "sim/check.h"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>

#include "sim/memsys.h"

namespace splash::sim {

namespace {

#if defined(__GNUC__)
__attribute__((format(printf, 1, 2)))
#endif
std::string
fmt(const char* f, ...)
{
    char buf[256];
    va_list ap;
    va_start(ap, f);
    std::vsnprintf(buf, sizeof buf, f, ap);
    va_end(ap);
    return buf;
}

void
report(std::vector<Violation>* out, std::size_t& n, const char* rule,
       Addr line, std::string what)
{
    ++n;
    if (out)
        out->push_back({rule, std::move(what), line});
}

} // namespace

void
CoherenceChecker::checkOneLine(Addr line, const DirEntry* d,
                               std::vector<Violation>* out,
                               std::size_t& n) const
{
    const MemSystem& m = mem_;
    const MachineConfig& cfg = m.cfg_;
    const Protocol& proto = protocol(cfg.protocol);
    const bool hints = cfg.replacementHints;

    int modified = 0, valid = 0;
    ProcId mproc = -1;
    for (int p = 0; p < cfg.nprocs; ++p) {
        LineState st = m.caches_[p].peek(line);
        bool cached = st != LineState::Invalid;
        bool listed = d && d->isSharer(p);
        if (cached && !stateIn(proto.legalStates, st))
            report(out, n, "illegal-state", line,
                   fmt("proc %d holds line 0x%" PRIxPTR " in state %d, "
                       "which protocol %s does not use",
                       p, line, static_cast<int>(st), proto.name));
        // A cached copy the directory does not know about can never
        // happen: even without hints the vector is a superset.
        if (cached && !listed)
            report(out, n, "sharer-missing", line,
                   fmt("proc %d caches line 0x%" PRIxPTR
                       " but its directory sharer bit is clear",
                       p, line));
        // With hints the vector is exact, so a listed non-holder is
        // stale; without hints that state is legal until the next
        // invalidation discovers the copy is gone.
        if (hints && listed && !cached)
            report(out, n, "sharer-stale", line,
                   fmt("directory lists proc %d for line 0x%" PRIxPTR
                       " but its cache holds no copy (hints are on)",
                       p, line));
        if (cached)
            ++valid;
        if (st == LineState::Modified) {
            ++modified;
            mproc = p;
        }
        if (st == LineState::Exclusive && (!d || d->numSharers() != 1))
            report(out, n, "exclusive-shared", line,
                   fmt("proc %d holds line 0x%" PRIxPTR
                       " Exclusive but the directory lists %d sharers",
                       p, line, d ? d->numSharers() : 0));
        // Owned (MOESI's O, Dragon's Sm) is dirty-shared: it exists
        // only at the registered dirty owner, which also bounds it to
        // one copy per line.
        if (st == LineState::Owned &&
            (!d || !d->dirty || d->owner != p))
            report(out, n, "owned-orphan", line,
                   fmt("proc %d holds line 0x%" PRIxPTR " Owned but is "
                       "not the registered dirty owner",
                       p, line));
    }
    if (modified > 1)
        report(out, n, "multiple-modified", line,
               fmt("%d caches hold line 0x%" PRIxPTR " Modified",
                   modified, line));
    if (d && d->empty())
        report(out, n, "dir-entry-empty", line,
               fmt("directory entry for line 0x%" PRIxPTR
                   " has no sharers but was not erased",
                   line));
    if (d && d->dirty) {
        if (d->owner < 0 || d->owner >= cfg.nprocs ||
            !d->isSharer(d->owner) ||
            !stateIn(proto.ownerStates,
                     m.caches_[d->owner].peek(line)))
            report(out, n, "dirty-owner", line,
                   fmt("line 0x%" PRIxPTR " is dirty with owner %d, "
                       "who does not hold it in an owner state",
                       line, d->owner));
    } else if (modified == 1) {
        // Deferred silent E->M promotion: legal only under a protocol
        // with clean-exclusive, and only while the holder is the sole
        // sharer (reconcileDir repairs the entry at the next directory
        // consult).  Anything wider is corruption.
        if (!proto.hasExclusive || !d || d->numSharers() != 1 ||
            !d->isSharer(mproc))
            report(out, n, "lazy-dirty-bound", line,
                   fmt("proc %d holds line 0x%" PRIxPTR " Modified "
                       "under a clean entry that does not list it as "
                       "sole sharer",
                       mproc, line));
    }
    if (d && (hints ? valid != d->numSharers() : valid > d->numSharers()))
        report(out, n, "resident-count", line,
               fmt("line 0x%" PRIxPTR ": %d cached copies vs %d "
                   "directory sharers",
                   line, valid, d->numSharers()));
}

void
CoherenceChecker::checkOneLineBus(Addr line, std::vector<Violation>* out,
                                  std::size_t& n) const
{
    const MemSystem& m = mem_;
    const Protocol& proto = protocol(m.cfg_.protocol);

    int valid = 0, owners = 0;
    ProcId mproc = -1, eproc = -1;
    for (int p = 0; p < m.cfg_.nprocs; ++p) {
        LineState st = m.caches_[p].peek(line);
        if (st == LineState::Invalid)
            continue;
        ++valid;
        if (!stateIn(proto.legalStates, st))
            report(out, n, "bus-illegal-state", line,
                   fmt("proc %d holds line 0x%" PRIxPTR " in state %d, "
                       "which protocol %s does not use",
                       p, line, static_cast<int>(st), proto.name));
        if (stateIn(proto.ownerStates, st))
            ++owners;
        if (st == LineState::Modified)
            mproc = p;
        if (st == LineState::Exclusive)
            eproc = p;
    }
    if (owners > 1)
        report(out, n, "bus-multiple-owner", line,
               fmt("%d caches would answer a snoop of line 0x%" PRIxPTR
                   " as owner",
                   owners, line));
    // Snoop-response consistency: an exclusive-flavored copy and
    // another valid copy cannot both be telling the truth.
    if (mproc >= 0 && valid > 1)
        report(out, n, "bus-modified-shared", line,
               fmt("proc %d holds line 0x%" PRIxPTR " Modified while %d "
                   "other copies survive",
                   mproc, line, valid - 1));
    if (eproc >= 0 && valid > 1)
        report(out, n, "bus-exclusive-shared", line,
               fmt("proc %d holds line 0x%" PRIxPTR " Exclusive while %d "
                   "other copies survive",
                   eproc, line, valid - 1));
}

std::size_t
CoherenceChecker::checkLine(Addr lineAddr,
                            std::vector<Violation>* out) const
{
    std::size_t n = 0;
    if (mem_.cfg_.interconnect == Interconnect::Bus) {
        checkOneLineBus(lineAddr, out, n);
        return n;
    }
    auto it = mem_.dir_.find(lineAddr);
    checkOneLine(lineAddr, it == mem_.dir_.end() ? nullptr : &it->second,
                 out, n);
    return n;
}

std::size_t
CoherenceChecker::checkTraffic(std::vector<Violation>* out) const
{
    std::size_t n = 0;
    std::uint64_t bytes = 0;
    for (const MemStats& s : mem_.stats_)
        bytes += s.remoteSharedData + s.remoteColdData +
                 s.remoteCapacityData + s.remoteWriteback + s.localData;
    if (mem_.cfg_.interconnect == Interconnect::Bus) {
        // Occupancy replaces the byte decomposition: every data-phase
        // cycle comes from exactly one line movement or word-update
        // broadcast, and the directory byte counters never move.
        std::uint64_t cycles = 0;
        for (const MemStats& s : mem_.stats_)
            cycles += s.busDataCycles;
        std::uint64_t expect =
            std::uint64_t(mem_.bus_.lineCycles()) *
                (mem_.xferLines_ + mem_.wbLines_) +
            std::uint64_t(mem_.bus_.updateCycles()) * mem_.updateTxns_;
        if (cycles != expect || bytes != 0)
            report(out, n, "bus-traffic-conservation", 0,
                   fmt("%" PRIu64 " data-phase cycles accounted vs "
                       "%" PRIu64 " expected (%" PRIu64 " transfers + "
                       "%" PRIu64 " writebacks + %" PRIu64
                       " update broadcasts), %" PRIu64
                       " directory data bytes (want 0)",
                       cycles, expect, mem_.xferLines_, mem_.wbLines_,
                       mem_.updateTxns_, bytes));
        return n;
    }
    std::uint64_t moved = std::uint64_t(mem_.cfg_.cache.lineSize) *
                          (mem_.xferLines_ + mem_.wbLines_);
    if (bytes != moved)
        report(out, n, "traffic-conservation", 0,
               fmt("%" PRIu64 " data bytes accounted vs %" PRIu64
                   " moved (%" PRIu64 " transfers + %" PRIu64
                   " writebacks of %d-byte lines)",
                   bytes, moved, mem_.xferLines_, mem_.wbLines_,
                   mem_.cfg_.cache.lineSize));
    return n;
}

std::size_t
CoherenceChecker::checkAll(std::vector<Violation>* out) const
{
    std::size_t n = 0;
    if (mem_.cfg_.interconnect == Interconnect::Bus) {
        // No directory to enumerate through: walk the tag arrays and
        // validate each distinct resident line once, in sorted order
        // so violation reports are deterministic.
        std::vector<Addr> lines;
        for (const Cache& c : mem_.caches_)
            c.forEachResident(
                [&](Addr line, LineState) { lines.push_back(line); });
        std::sort(lines.begin(), lines.end());
        lines.erase(std::unique(lines.begin(), lines.end()),
                    lines.end());
        for (Addr line : lines)
            checkOneLineBus(line, out, n);
        n += checkTraffic(out);
        return n;
    }
    std::uint64_t reachable = 0;
    for (const auto& [line, d] : mem_.dir_) {
        checkOneLine(line, &d, out, n);
        for (int p = 0; p < mem_.cfg_.nprocs; ++p)
            if (mem_.caches_[p].peek(line) != LineState::Invalid)
                ++reachable;
    }
    // Catch cached lines with no directory entry at all: every
    // resident line must be visible through some entry above.
    std::uint64_t resident = 0;
    for (const Cache& c : mem_.caches_)
        resident += c.residentLines();
    if (resident != reachable)
        report(out, n, "sharer-missing", 0,
               fmt("%" PRIu64 " lines resident in caches but only "
                   "%" PRIu64 " reachable through directory entries",
                   resident, reachable));
    n += checkTraffic(out);
    return n;
}

std::string
formatViolations(const std::vector<Violation>& v)
{
    std::string s;
    for (const Violation& x : v) {
        s += "  [";
        s += x.rule;
        s += "] ";
        s += x.what;
        s += '\n';
    }
    return s;
}

} // namespace splash::sim
