#include "sim/faultinject.h"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <utility>
#include <vector>

#include "sim/memsys.h"

namespace splash::sim {

namespace {

#if defined(__GNUC__)
__attribute__((format(printf, 1, 2)))
#endif
std::string
fmt(const char* f, ...)
{
    char buf[256];
    va_list ap;
    va_start(ap, f);
    std::vsnprintf(buf, sizeof buf, f, ap);
    va_end(ap);
    return buf;
}

struct Target
{
    Addr line;
    ProcId proc;
};

void
sortTargets(std::vector<Target>& v)
{
    std::sort(v.begin(), v.end(), [](const Target& a, const Target& b) {
        return a.line != b.line ? a.line < b.line : a.proc < b.proc;
    });
}

/** Collect (line, proc) pairs satisfying @p pred over every directory
 *  entry, in deterministic sorted order.  unordered_map iteration
 *  order is not stable across runs/platforms, hence the sort. */
template <typename Pred>
std::vector<Target>
candidates(const std::unordered_map<Addr, DirEntry>& dir, int nprocs,
           Pred pred)
{
    std::vector<Target> v;
    for (const auto& [line, d] : dir)
        for (ProcId p = 0; p < nprocs; ++p)
            if (pred(line, d, p))
                v.push_back({line, p});
    sortTargets(v);
    return v;
}

/** Bus-mode candidate enumeration: there is no directory, so walk the
 *  tag arrays.  @p pred sees (line, state, proc, copies-of-line). */
template <typename Pred>
std::vector<Target>
busCandidates(const std::vector<Cache>& caches, Pred pred)
{
    std::unordered_map<Addr, int> copies;
    for (const Cache& c : caches)
        c.forEachResident(
            [&](Addr line, LineState) { ++copies[line]; });
    std::vector<Target> v;
    for (ProcId p = 0; p < static_cast<ProcId>(caches.size()); ++p)
        caches[p].forEachResident([&](Addr line, LineState st) {
            if (pred(line, st, p, copies[line]))
                v.push_back({line, p});
        });
    sortTargets(v);
    return v;
}

} // namespace

const char*
faultKindName(FaultKind k)
{
    switch (k) {
      case FaultKind::DroppedInval:   return "dropped-inval";
      case FaultKind::StaleSharer:    return "stale-sharer";
      case FaultKind::DoubleModified: return "double-modified";
      case FaultKind::LostHint:       return "lost-hint";
      case FaultKind::DirtyDesync:    return "dirty-desync";
      case FaultKind::TrafficSkew:    return "traffic-skew";
      case FaultKind::IllegalState:   return "illegal-state";
      case FaultKind::SnoopMissedInval: return "snoop-missed-inval";
      case FaultKind::DoubleOwner:      return "double-owner";
      case FaultKind::GhostExclusive:   return "ghost-exclusive";
      case FaultKind::BusTrafficSkew:   return "bus-traffic-skew";
      default:                        return "?";
    }
}

bool
faultKindIsBus(FaultKind k)
{
    return k >= FaultKind::SnoopMissedInval && k < FaultKind::NumKinds;
}

bool
parseFaultKind(const std::string& s, FaultKind* out)
{
    for (int i = 0; i < kNumFaultKinds; ++i) {
        auto k = static_cast<FaultKind>(i);
        if (s == faultKindName(k)) {
            *out = k;
            return true;
        }
    }
    return false;
}

std::string
FaultInjector::inject(FaultKind k, std::uint64_t seed)
{
    auto& dir = mem_.dir_;
    auto& caches = mem_.caches_;
    const int nprocs = mem_.cfg_.nprocs;
    const bool hints = mem_.cfg_.replacementHints;
    const Protocol& proto = protocol(mem_.cfg_.protocol);
    // Each kind corrupts one organization's state: directory kinds are
    // meaningless on a bus (no directory exists) and vice versa.
    if (faultKindIsBus(k) !=
        (mem_.cfg_.interconnect == Interconnect::Bus))
        return "";
    // A valid copy that carries no ownership (S, E, Dragon's Sc):
    // dropping or mislabeling one must trip the sharer rules, not the
    // dirty-owner rule.
    auto cleanValid = [&](LineState st) {
        return st != LineState::Invalid &&
               !stateIn(proto.ownerStates, st);
    };

    switch (k) {
      case FaultKind::DroppedInval: {
          // Keep the cached copy, lose the directory's knowledge of it.
          auto v = candidates(dir, nprocs,
                              [&](Addr line, const DirEntry& d, ProcId p) {
                                  return d.isSharer(p) &&
                                         caches[p].peek(line) !=
                                             LineState::Invalid;
                              });
          if (v.empty())
              return "";
          Target t = v[seed % v.size()];
          dir[t.line].dropSharer(t.proc);
          return fmt("dropped-inval: cleared sharer bit of proc %d for "
                     "line 0x%" PRIxPTR " while its copy stays cached",
                     t.proc, t.line);
      }

      case FaultKind::StaleSharer: {
          // Only a fault when hints keep the vector exact.
          if (!hints)
              return "";
          auto v = candidates(dir, nprocs,
                              [&](Addr line, const DirEntry& d, ProcId p) {
                                  return !d.isSharer(p) &&
                                         caches[p].peek(line) ==
                                             LineState::Invalid;
                              });
          if (v.empty())
              return "";
          Target t = v[seed % v.size()];
          dir[t.line].addSharer(t.proc);
          return fmt("stale-sharer: set sharer bit of proc %d for line "
                     "0x%" PRIxPTR " though it holds no copy",
                     t.proc, t.line);
      }

      case FaultKind::DoubleModified: {
          // Grant Modified to a second holder of a line with >= 2
          // copies; targets are lines, proc picks the second holder.
          auto v = candidates(dir, nprocs,
                              [&](Addr line, const DirEntry& d, ProcId p) {
                                  (void)line;
                                  return p == 0 && d.numSharers() >= 2;
                              });
          if (v.empty())
              return "";
          Addr line = v[seed % v.size()].line;
          ProcId first = -1, second = -1;
          for (ProcId p = 0; p < nprocs && second < 0; ++p) {
              if (caches[p].peek(line) == LineState::Invalid)
                  continue;
              (first < 0 ? first : second) = p;
          }
          if (second < 0)
              return "";
          caches[first].setState(line, LineState::Modified);
          caches[second].setState(line, LineState::Modified);
          return fmt("double-modified: procs %d and %d both hold line "
                     "0x%" PRIxPTR " Modified",
                     first, second, line);
      }

      case FaultKind::LostHint: {
          // The cache replaced the line but the hint never arrived.
          if (!hints)
              return "";
          auto v = candidates(dir, nprocs,
                              [&](Addr line, const DirEntry& d, ProcId p) {
                                  return d.isSharer(p) &&
                                         cleanValid(caches[p].peek(line));
                              });
          if (v.empty())
              return "";
          Target t = v[seed % v.size()];
          caches[t.proc].invalidate(t.line);
          return fmt("lost-hint: dropped proc %d's copy of line "
                     "0x%" PRIxPTR " without clearing its sharer bit",
                     t.proc, t.line);
      }

      case FaultKind::DirtyDesync: {
          // Mark a clean entry dirty, owned by a holder in none of the
          // protocol's owner states -- a reconciliation gone wrong.
          auto v = candidates(dir, nprocs,
                              [&](Addr line, const DirEntry& d, ProcId p) {
                                  return !d.dirty && d.isSharer(p) &&
                                         cleanValid(caches[p].peek(line));
                              });
          if (v.empty())
              return "";
          Target t = v[seed % v.size()];
          DirEntry& d = dir[t.line];
          d.dirty = true;
          d.owner = t.proc;
          return fmt("dirty-desync: marked line 0x%" PRIxPTR " dirty "
                     "with owner %d whose copy is in no owner state",
                     t.line, t.proc);
      }

      case FaultKind::TrafficSkew: {
          ProcId p = static_cast<ProcId>(seed % std::uint64_t(nprocs));
          mem_.stats_[p].localData += mem_.cfg_.cache.lineSize;
          return fmt("traffic-skew: credited proc %d with %d local data "
                     "bytes that were never transferred",
                     p, mem_.cfg_.cache.lineSize);
      }

      case FaultKind::IllegalState: {
          // Flip a cached copy to the lowest valid state the protocol
          // does not use; ineligible when the legal set is the full
          // alphabet (MOESI, Dragon).
          LineState illegal = LineState::Invalid;
          for (int s = 1; s < kNumLineStates; ++s) {
              if (!stateIn(proto.legalStates, static_cast<LineState>(s))) {
                  illegal = static_cast<LineState>(s);
                  break;
              }
          }
          if (illegal == LineState::Invalid)
              return "";
          auto v = candidates(dir, nprocs,
                              [&](Addr line, const DirEntry& d, ProcId p) {
                                  (void)d;
                                  return caches[p].peek(line) !=
                                         LineState::Invalid;
                              });
          if (v.empty())
              return "";
          Target t = v[seed % v.size()];
          caches[t.proc].setState(t.line, illegal);
          return fmt("illegal-state: set proc %d's copy of line "
                     "0x%" PRIxPTR " to state %d, unused by protocol %s",
                     t.proc, t.line, static_cast<int>(illegal),
                     proto.name);
      }

      case FaultKind::SnoopMissedInval: {
          // A write's invalidating broadcast went unobserved: promote
          // one holder of a multi-copy line to Modified while the
          // other copies survive.
          auto v = busCandidates(
              caches, [&](Addr, LineState, ProcId, int copies) {
                  return copies >= 2;
              });
          if (v.empty())
              return "";
          Target t = v[seed % v.size()];
          caches[t.proc].setState(t.line, LineState::Modified);
          return fmt("snoop-missed-inval: proc %d holds line "
                     "0x%" PRIxPTR " Modified but another cache missed "
                     "the invalidating broadcast",
                     t.proc, t.line);
      }

      case FaultKind::DoubleOwner: {
          // Broken arbitration of an ownership handoff: two holders of
          // the same line both end up in an owner state.  Prefer Owned
          // where the protocol has it (a legal dirty-shared state, so
          // only the single-owner rule can catch the fault).
          LineState os = stateIn(proto.legalStates, LineState::Owned)
                             ? LineState::Owned
                             : LineState::Modified;
          auto v = busCandidates(
              caches, [&](Addr, LineState, ProcId, int copies) {
                  return copies >= 2;
              });
          if (v.empty())
              return "";
          Addr line = v[seed % v.size()].line;
          ProcId first = -1, second = -1;
          for (ProcId p = 0; p < nprocs && second < 0; ++p) {
              if (caches[p].peek(line) == LineState::Invalid)
                  continue;
              (first < 0 ? first : second) = p;
          }
          if (second < 0)
              return "";
          caches[first].setState(line, os);
          caches[second].setState(line, os);
          return fmt("double-owner: procs %d and %d would both answer "
                     "a snoop of line 0x%" PRIxPTR " as owner",
                     first, second, line);
      }

      case FaultKind::GhostExclusive: {
          // Clean-exclusive granted although the snoop's shared line
          // was asserted; needs a protocol with an E state.
          if (!proto.hasExclusive)
              return "";
          auto v = busCandidates(
              caches, [&](Addr, LineState, ProcId, int copies) {
                  return copies >= 2;
              });
          if (v.empty())
              return "";
          Target t = v[seed % v.size()];
          caches[t.proc].setState(t.line, LineState::Exclusive);
          return fmt("ghost-exclusive: proc %d holds line 0x%" PRIxPTR
                     " Exclusive though other copies exist",
                     t.proc, t.line);
      }

      case FaultKind::BusTrafficSkew: {
          ProcId p = static_cast<ProcId>(seed % std::uint64_t(nprocs));
          std::uint64_t cycles =
              std::uint64_t(mem_.bus_.lineCycles());
          mem_.stats_[p].busDataCycles += cycles;
          return fmt("bus-traffic-skew: credited proc %d with %" PRIu64
                     " data-phase cycles never driven on the wires",
                     p, cycles);
      }

      default:
          return "";
    }
}

} // namespace splash::sim
