/**
 * @file
 * Directory state and home-node resolution for the CC-NUMA model.
 *
 * Each cache line has a home node (the node whose main memory backs it);
 * the home keeps a full-map directory entry listing current sharers.
 * Because processors send replacement hints when they drop shared
 * copies (as assumed in the paper), the sharer list is always exact.
 */
#ifndef SPLASH2_SIM_DIRECTORY_H
#define SPLASH2_SIM_DIRECTORY_H

#include <cstdint>

#include "base/log.h"
#include "base/types.h"

namespace splash::sim {

/** Full-map directory entry for one cache line.  The sharer mask has
 *  one bit per processor, which bounds the machine to kMaxProcs (64)
 *  processors; MachineConfig::validate() rejects larger configs, and
 *  the accessors guard the shift so an out-of-range index can never
 *  silently corrupt sharer state (1 << p is UB for p >= 64). */
struct DirEntry
{
    /** Bitmask of processors with a valid copy. */
    std::uint64_t sharers = 0;
    /** Owner when dirty. */
    ProcId owner = -1;
    /** True when exactly one cache holds the line Modified. */
    bool dirty = false;

    bool empty() const { return sharers == 0; }

    static void
    checkIndex(ProcId p)
    {
        ensure(p >= 0 && p < kMaxProcs,
               "sharer index outside the 64-bit directory mask");
    }

    void
    addSharer(ProcId p)
    {
        checkIndex(p);
        sharers |= (std::uint64_t{1} << p);
    }

    void
    dropSharer(ProcId p)
    {
        checkIndex(p);
        sharers &= ~(std::uint64_t{1} << p);
    }

    bool
    isSharer(ProcId p) const
    {
        checkIndex(p);
        return (sharers >> p) & 1;
    }

    int
    numSharers() const
    {
        return __builtin_popcountll(sharers);
    }
};

/** Maps cache lines to their home node. */
class HomeResolver
{
  public:
    virtual ~HomeResolver() = default;
    virtual ProcId homeOf(Addr lineAddr) const = 0;
};

/** Fallback policy: lines interleaved round-robin across nodes. */
class InterleavedHome : public HomeResolver
{
  public:
    InterleavedHome(int nprocs, int lineSize)
        : nprocs_(nprocs), lineShift_(log2i(lineSize))
    {}

    ProcId
    homeOf(Addr lineAddr) const override
    {
        return static_cast<ProcId>((lineAddr >> lineShift_) % nprocs_);
    }

  private:
    int nprocs_;
    int lineShift_;
};

} // namespace splash::sim

#endif // SPLASH2_SIM_DIRECTORY_H
