#include "sim/replay.h"

#include <exception>

#include "base/log.h"

namespace splash::sim {

BroadcastReplay::BroadcastReplay(const std::vector<ReplicaSpec>& specs,
                                 bool threaded,
                                 std::size_t chunkRecords,
                                 int ringChunks)
    : chunkRecords_(chunkRecords),
      uncaughtAtCtor_(std::uncaught_exceptions())
{
    ensure(!specs.empty(), "broadcast replay needs at least one replica");
    ensure(chunkRecords_ >= 1 && ringChunks >= 2,
           "broadcast replay ring too small");
    mems_.reserve(specs.size());
    race_.reserve(specs.size());
    rd_.reserve(specs.size());
    for (const ReplicaSpec& s : specs) {
        if (s.race != RaceGranularity::Off) {
            RaceConfig rc;
            rc.gran = s.race;
            rc.nprocs = s.machine.nprocs;
            rc.lineSize = s.machine.cache.lineSize;
            mems_.push_back(nullptr);
            race_.push_back(std::make_unique<RaceChecker>(rc));
            rd_.push_back(nullptr);
            continue;
        }
        if (s.rdProfile) {
            mems_.push_back(nullptr);
            race_.push_back(nullptr);
            rd_.push_back(std::make_unique<ReuseDistProfiler>(
                s.machine.nprocs, s.machine.cache.lineSize));
            continue;
        }
        mems_.push_back(std::make_unique<MemSystem>(s.machine, s.homes));
        mems_.back()->setCheckPeriod(s.checkPeriod);
        race_.push_back(nullptr);
        rd_.push_back(nullptr);
    }

    ring_.resize(ringChunks);
    for (auto& c : ring_)
        c.recs.reserve(chunkRecords_);

    if (!threaded)
        return;
    consumers_.resize(mems_.size());
    for (std::size_t i = 0; i < consumers_.size(); ++i) {
        consumers_[i].replica = static_cast<int>(i);
        consumers_[i].th =
            std::thread([this, i] { consumerLoop(consumers_[i]); });
    }
}

BroadcastReplay::~BroadcastReplay()
{
    // Destroyed during exception unwinding (the producer threw
    // mid-stream): the staged tail is torn, so abort -- wake blocked
    // consumers and discard -- rather than flush and block on a full
    // drain of a stream that was never completed.
    if (std::uncaught_exceptions() > uncaughtAtCtor_)
        abortStream();
    if (!aborted())
        flush();
    shutdown(/*abort=*/false);
}

void
BroadcastReplay::shutdown(bool abort)
{
    {
        std::lock_guard<std::mutex> lk(mu_);
        stop_ = true;
        if (abort)
            aborted_.store(true);
    }
    cvPublished_.notify_all();
    cvRecycled_.notify_all();
    for (auto& c : consumers_)
        if (c.th.joinable())
            c.th.join();
}

void
BroadcastReplay::abortStream()
{
    cur_ = nullptr;  // drop the partially staged chunk
    shutdown(/*abort=*/true);
}

std::uint64_t
BroadcastReplay::minDone() const
{
    std::uint64_t m = published_;
    for (const auto& c : consumers_)
        m = std::min(m, c.done);
    return m;
}

BroadcastReplay::Chunk&
BroadcastReplay::acquireSlot()
{
    Chunk& slot = ring_[nextSeq_ % ring_.size()];
    if (!consumers_.empty() && nextSeq_ >= ring_.size()) {
        // Back-pressure: the slot is recycled only once every consumer
        // has replayed its previous occupant (seq - ringChunks).  The
        // stop_ escape keeps an abort from leaving the producer wedged
        // here.
        std::unique_lock<std::mutex> lk(mu_);
        cvRecycled_.wait(lk, [&] {
            return stop_ || minDone() + ring_.size() > nextSeq_;
        });
    }
    slot.seq = nextSeq_;
    slot.recs.clear();
    slot.syncs.clear();
    slot.reset = false;
    return slot;
}

void
BroadcastReplay::access(const AccessRec& r)
{
    if (aborted_.load(std::memory_order_relaxed)) [[unlikely]]
        return;  // stream is dead; drop the reference
    if (cur_ == nullptr)
        cur_ = &acquireSlot();
    cur_->recs.push_back(r);
    if (cur_->recs.size() == chunkRecords_)
        publish(false);
}

void
BroadcastReplay::sync(const SyncRec& r)
{
    if (aborted_.load(std::memory_order_relaxed)) [[unlikely]]
        return;
    if (cur_ == nullptr)
        cur_ = &acquireSlot();
    cur_->syncs.push_back(
        {static_cast<std::uint32_t>(cur_->recs.size()), r});
}

void
BroadcastReplay::publish(bool resetMark)
{
    if (cur_ == nullptr)
        cur_ = &acquireSlot();  // control event on an empty chunk
    cur_->reset = resetMark;
    ++nextSeq_;
    if (consumers_.empty()) {
        // Inline mode: replay the chunk into every replica here.
        for (int i = 0; i < static_cast<int>(mems_.size()); ++i)
            replayChunk(i, *cur_);
        cur_ = nullptr;
        return;
    }
    {
        std::lock_guard<std::mutex> lk(mu_);
        published_ = nextSeq_;
    }
    cvPublished_.notify_all();
    cur_ = nullptr;
}

void
BroadcastReplay::replayChunk(int replica, const Chunk& c)
{
    if (RaceChecker* rc = race_[replica].get()) {
        // Merge-walk records and sync edges by stream position, so
        // the detector sees exactly the order the runtime emitted.
        std::size_t si = 0;
        for (std::size_t i = 0; i < c.recs.size(); ++i) {
            while (si < c.syncs.size() && c.syncs[si].pos <= i)
                rc->sync(c.syncs[si++].rec);
            rc->access(c.recs[i]);
        }
        while (si < c.syncs.size())
            rc->sync(c.syncs[si++].rec);
        if (c.reset)
            rc->resetStats();
        return;
    }
    if (ReuseDistProfiler* rd = rd_[replica].get()) {
        for (const AccessRec& r : c.recs)
            rd->access(r);
        if (c.reset)
            rd->resetStats();
        return;
    }
    MemSystem& mem = *mems_[replica];
    for (const AccessRec& r : c.recs)
        mem.access(r.proc, r.addr, r.size, r.type);
    if (c.reset)
        mem.resetStats();
}

void
BroadcastReplay::consumerLoop(Consumer& me)
{
    for (;;) {
        std::uint64_t seq = me.done;
        {
            std::unique_lock<std::mutex> lk(mu_);
            cvPublished_.wait(lk,
                              [&] { return published_ > seq || stop_; });
            // On abort leave immediately, undrained chunks and all;
            // on a clean stop drain what was published first.
            if (aborted_.load() || published_ <= seq)
                return;
        }
        // The slot cannot be recycled before every consumer (us
        // included) advances past it, so this read needs no lock.
        const Chunk& c = ring_[seq % ring_.size()];
        ensure(c.seq == seq, "broadcast ring overwrote a live chunk");
        replayChunk(me.replica, c);
        {
            std::lock_guard<std::mutex> lk(mu_);
            me.done = seq + 1;
        }
        cvRecycled_.notify_all();
    }
}

void
BroadcastReplay::resetStats()
{
    publish(true);
}

void
BroadcastReplay::streamBarrier()
{
    if (aborted_.load())
        return;  // nothing left to quiesce; the tail was discarded
    if (cur_ != nullptr && (!cur_->recs.empty() || !cur_->syncs.empty()))
        publish(false);
    if (consumers_.empty())
        return;
    std::unique_lock<std::mutex> lk(mu_);
    cvRecycled_.wait(lk, [&] { return stop_ || minDone() == published_; });
}

void
BroadcastReplay::flush()
{
    streamBarrier();
}

} // namespace splash::sim
