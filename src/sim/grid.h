/**
 * @file
 * The canonical Figure-3 operating-point grid.
 *
 * The paper sweeps miss rate over power-of-two cache capacities from
 * 1 KB to 1 MB at 1-, 2-, and 4-way set associativity plus fully
 * associative LRU.  Exactly one definition of that grid exists --
 * here -- and the exact sweep (SweepConfig's defaults), the
 * reuse-distance model, and every CSV writer consume it, so the
 * committed results files can never drift from the simulated points.
 */
#ifndef SPLASH2_SIM_GRID_H
#define SPLASH2_SIM_GRID_H

#include <cstdint>
#include <vector>

namespace splash::sim {

/** In a stored associativity list, 0 denotes fully associative LRU. */
constexpr int kFullyAssoc = 0;

/** Figure-3 cache capacities in bytes: 1 KB .. 1 MB, powers of two. */
inline const std::vector<std::uint64_t>&
fig3Sizes()
{
    static const std::vector<std::uint64_t> sizes = {
        1u << 10, 1u << 11, 1u << 12, 1u << 13, 1u << 14, 1u << 15,
        1u << 16, 1u << 17, 1u << 18, 1u << 19, 1u << 20};
    return sizes;
}

/** Figure-3 finite associativities (fully associative rides along in
 *  every sweep and is queried as assoc 0). */
inline const std::vector<int>&
fig3Assocs()
{
    static const std::vector<int> assocs = {1, 2, 4};
    return assocs;
}

/** Column order of the per-size CSV/report rows: the finite ways
 *  first, then fully associative. */
inline const std::vector<int>&
fig3ReportAssocs()
{
    static const std::vector<int> assocs = {1, 2, 4, kFullyAssoc};
    return assocs;
}

} // namespace splash::sim

#endif // SPLASH2_SIM_GRID_H
