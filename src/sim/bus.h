/**
 * @file
 * Snoopy-bus interconnect model.
 *
 * The SPLASH-2 paper's traffic methodology (Section 6) contrasts two
 * machine organizations: a distributed directory machine exchanging
 * point-to-point packets, and a broadcast bus where every cache
 * observes every transaction.  sim/memsys.h models the former; this
 * header supplies everything the latter needs on top of the same
 * immutable Protocol descriptors (sim/protocol.h):
 *
 *  - Interconnect: the configuration knob (`--interconnect
 *    directory|bus`) selecting between the two organizations.
 *
 *  - snoopLine(): the combined snoop response for one broadcast
 *    address.  On a bus there are no sharer vectors, no home nodes,
 *    and no replacement hints; the caches themselves answer "who owns
 *    this line" and "does anyone else hold a copy".  The response
 *    collapses to the same DirGroup the directory would have computed
 *    (owner-state holder -> Dirty, any valid copy -> Clean, nothing
 *    cached -> Uncached), so the Protocol transition tables apply
 *    unchanged.  Snooping sees silent E->M promotions directly, which
 *    is why bus mode needs no analogue of the directory's lazy
 *    dirty-bit reconciliation.
 *
 *  - BusModel: the occupancy accounting that replaces the directory's
 *    packet decomposition.  Every transaction occupies the shared bus
 *    for an address phase (one cycle: address + command, snooped by
 *    all) plus, when data moves, a data phase of lineSize /
 *    busWidthBytes cycles for a line (or one word's worth of cycles
 *    for a Dragon update broadcast).  Invalidations ride the address
 *    phase for free -- broadcast means there are no per-sharer
 *    invalidation or ack packets and no data headers -- which is
 *    exactly the contrast with the directory organization that
 *    results/interconnect.csv tabulates.
 */
#ifndef SPLASH2_SIM_BUS_H
#define SPLASH2_SIM_BUS_H

#include <string>
#include <vector>

#include "base/types.h"
#include "sim/protocol.h"

namespace splash::sim {

class Cache;

/** Interconnect organization of the simulated machine. */
enum class Interconnect : std::uint8_t {
    Directory = 0,  ///< CC-NUMA: point-to-point packets, full-map directory
    Bus             ///< snoopy bus: broadcast transactions, occupancy model
};

constexpr int kNumInterconnects = 2;

/** Stable CLI name ("directory", "bus"). */
const char* interconnectName(Interconnect ic);

/** Parse a CLI name; returns false if @p s names no interconnect.
 *  Names are exact (lowercase), matching parseProtocol. */
bool parseInterconnect(const std::string& s, Interconnect* out);

/** Combined snoop response to one broadcast address. */
struct SnoopResult
{
    /** Cache holding the line in one of the protocol's owner states
     *  (at most one under the single-owner invariant); -1 when none.
     *  May be the requester itself on a write hit to a dirty-shared
     *  line (MOESI/Dragon) -- never on a miss, where the requester
     *  holds no copy. */
    ProcId owner = -1;
    /** Valid copies held by caches other than the requester. */
    int othersValid = 0;
    /** The directory group the snoop responses collapse to; feeds the
     *  same Protocol transition lookup the directory consult would. */
    DirGroup group = DirGroup::Uncached;
};

/** Snoop @p lineAddr in every cache on behalf of @p requester. */
SnoopResult snoopLine(const std::vector<Cache>& caches,
                      const Protocol& proto, Addr lineAddr,
                      ProcId requester);

/** Bus-occupancy charges, in bus cycles, for one transaction's
 *  phases.  PRAM timing still applies to the processors; occupancy is
 *  the paper's bus-bandwidth analogue of the directory's byte counts. */
struct BusModel
{
    /** Width of a Dragon word-update broadcast: the classifier's word
     *  granularity (one 8-byte word per update transaction). */
    static constexpr int kUpdateBytes = 8;

    int lineSize = 64;
    int widthBytes = 8;

    /** Address + command broadcast, snooped by every cache. */
    int addrCycles() const { return 1; }

    /** One full line on the data wires. */
    int
    lineCycles() const
    {
        return (lineSize + widthBytes - 1) / widthBytes;
    }

    /** One word-update broadcast (Dragon). */
    int
    updateCycles() const
    {
        return (kUpdateBytes + widthBytes - 1) / widthBytes;
    }
};

} // namespace splash::sim

#endif // SPLASH2_SIM_BUS_H
