#include "sim/classify.h"

#include "base/log.h"

namespace splash::sim {

MissClassifier::MissClassifier(int nprocs, int lineSize)
    : wordsPerLine_(lineSize / kWordBytes), lineSize_(lineSize),
      lost_(nprocs)
{
    ensure(lineSize >= kWordBytes, "line smaller than a word");
}

void
MissClassifier::noteInvalidated(ProcId p, Addr lineAddr)
{
    LostCopy lc;
    lc.cause = LossCause::Invalidated;
    auto it = wordVersion_.find(lineAddr);
    if (it != wordVersion_.end())
        lc.snapshot = it->second;
    lost_[p][lineAddr] = std::move(lc);
}

void
MissClassifier::noteReplaced(ProcId p, Addr lineAddr)
{
    LostCopy lc;
    lc.cause = LossCause::Replaced;
    lost_[p][lineAddr] = std::move(lc);
}

MissType
MissClassifier::classifyMiss(ProcId p, Addr addr, int size)
{
    Addr line = lineOf(addr);
    auto& plost = lost_[p];
    auto it = plost.find(line);
    if (it == plost.end())
        return MissType::Cold;
    if (it->second.cause == LossCause::Replaced)
        return MissType::Capacity;

    // Invalidation loss: true sharing iff an accessed word changed.
    auto vit = wordVersion_.find(line);
    // An invalidation implies at least one write, so versions exist.
    ensure(vit != wordVersion_.end(), "invalidated line never written");
    const auto& cur = vit->second;
    const auto& snap = it->second.snapshot;
    int first = static_cast<int>((addr - line) / kWordBytes);
    int last = static_cast<int>((addr + size - 1 - line) / kWordBytes);
    for (int w = first; w <= last && w < wordsPerLine_; ++w) {
        std::uint64_t old = snap.empty() ? 0 : snap[w];
        if (cur[w] != old)
            return MissType::TrueSharing;
    }
    return MissType::FalseSharing;
}

} // namespace splash::sim
