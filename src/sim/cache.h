/**
 * @file
 * Set-associative write-back cache tag array with true LRU replacement.
 *
 * This models one processor's single-level cache in a directory-based
 * coherence protocol (sim/protocol.h).  Only tags and coherence state
 * are kept; data values live in the application's real memory (PRAM
 * timing means the simulator never needs the bytes themselves).
 *
 * Two internal organizations are used: small associativities probe a
 * contiguous way array (the hot path for the paper's 4-way caches), while
 * high/full associativity uses a hash map plus intrusive LRU list so that
 * fully-associative simulations stay O(1) per access.
 */
#ifndef SPLASH2_SIM_CACHE_H
#define SPLASH2_SIM_CACHE_H

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "base/types.h"
#include "sim/config.h"
#include "sim/protocol.h"

namespace splash::sim {

/** One processor's cache. Addresses passed in are line-aligned. */
class Cache
{
  public:
    explicit Cache(const CacheConfig& cfg,
                   const Protocol& proto = protocol(ProtocolKind::MESI));

    /** Result of inserting a line: the replaced victim, if any. */
    struct Victim
    {
        bool valid = false;
        Addr lineAddr = 0;
        LineState state = LineState::Invalid;
    };

    /** Look up @p lineAddr; returns its state or Invalid. Updates LRU on
     *  hit. */
    LineState probe(Addr lineAddr);

    /** Hot-path lookup for MemSystem::access: on a hit updates LRU and
     *  applies the protocol's silent write promotion in place (the
     *  Illinois E->M: the directory learns lazily).  The promotion
     *  table comes from the Protocol descriptor, so this is the same
     *  rule the slow path uses.  Returns the pre-promotion state;
     *  Invalid on miss.  Inline so the common hit needs no call. */
    LineState
    probeFor(Addr lineAddr, AccessType type)
    {
        if (big_) [[unlikely]]
            return probeForBig(lineAddr, type);
        Way* base = &sets_[setIndex(lineAddr) * ways_];
        for (int w = 0; w < ways_; ++w) {
            Way& e = base[w];
            if (e.state != LineState::Invalid && e.tag == lineAddr) {
                e.lastUse = ++useClock_;
                LineState st = e.state;
                if (type == AccessType::Write)
                    e.state = writeNext_[static_cast<int>(st)];
                return st;
            }
        }
        return LineState::Invalid;
    }

    /** Look up without touching LRU state (for external queries). */
    LineState peek(Addr lineAddr) const;

    /** Change the state of a resident line. The line must be present. */
    void setState(Addr lineAddr, LineState st);

    /** Insert @p lineAddr with state @p st, evicting the LRU line of the
     *  set if necessary. The line must not already be present. */
    Victim fill(Addr lineAddr, LineState st);

    /** Drop a line (coherence invalidation). No-op if absent. */
    void invalidate(Addr lineAddr);

    int lineSize() const { return cfg_.lineSize; }
    const CacheConfig& config() const { return cfg_; }

    /** Number of currently valid lines (for tests). */
    std::uint64_t residentLines() const;

    /** Visit every valid line as fn(lineAddr, state), in storage
     *  order.  Bus mode has no directory to enumerate lines through,
     *  so the invariant checker and fault injector walk the tag
     *  arrays directly. */
    template <typename Fn>
    void
    forEachResident(Fn&& fn) const
    {
        if (big_) {
            for (const auto& [addr, st] : lru_)
                fn(addr, st);
        } else {
            for (const Way& w : sets_)
                if (w.state != LineState::Invalid)
                    fn(w.tag, w.state);
        }
    }

  private:
    struct Way
    {
        Addr tag = 0;
        LineState state = LineState::Invalid;
        std::uint64_t lastUse = 0;
    };

    std::uint64_t
    setIndex(Addr lineAddr) const
    {
        return (lineAddr / cfg_.lineSize) & (numSets_ - 1);
    }
    Way* findWay(Addr lineAddr);
    const Way* findWay(Addr lineAddr) const;
    LineState probeForBig(Addr lineAddr, AccessType type);

    CacheConfig cfg_;
    int ways_;
    std::uint64_t numSets_;
    std::uint64_t useClock_ = 0;

    /** Protocol's silent write-hit promotion, copied at construction
     *  (identity for states with no silent upgrade). */
    LineState writeNext_[kNumLineStates];

    /** Small-associativity storage: numSets_ * ways_ entries. */
    std::vector<Way> sets_;

    /** Large/full associativity: hash map + LRU list. */
    bool big_ = false;
    std::list<std::pair<Addr, LineState>> lru_;  // front = most recent
    std::unordered_map<Addr, std::list<std::pair<Addr, LineState>>::iterator>
        index_;
};

} // namespace splash::sim

#endif // SPLASH2_SIM_CACHE_H
