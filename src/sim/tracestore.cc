#include "sim/tracestore.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "base/log.h"

namespace splash::sim {

namespace tracecodec {

void
putVarint(std::vector<std::uint8_t>& out, std::uint64_t v)
{
    while (v >= 0x80) {
        out.push_back(static_cast<std::uint8_t>(v) | 0x80);
        v >>= 7;
    }
    out.push_back(static_cast<std::uint8_t>(v));
}

bool
getVarint(const std::uint8_t** p, const std::uint8_t* end,
          std::uint64_t* v)
{
    std::uint64_t out = 0;
    int shift = 0;
    const std::uint8_t* q = *p;
    while (q < end && shift < 70) {
        std::uint8_t b = *q++;
        out |= static_cast<std::uint64_t>(b & 0x7f) << shift;
        if ((b & 0x80) == 0) {
            *p = q;
            *v = out;
            return true;
        }
        shift += 7;
    }
    return false;  // ran off the buffer or > 10 bytes: corrupt
}

namespace {

struct CrcTable
{
    std::uint32_t t[256];
    CrcTable()
    {
        for (std::uint32_t i = 0; i < 256; ++i) {
            std::uint32_t c = i;
            for (int k = 0; k < 8; ++k)
                c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
            t[i] = c;
        }
    }
};

} // namespace

std::uint32_t
crc32(const void* data, std::size_t n, std::uint32_t seed)
{
    static const CrcTable tbl;
    const auto* p = static_cast<const std::uint8_t*>(data);
    std::uint32_t c = seed ^ 0xffffffffu;
    for (std::size_t i = 0; i < n; ++i)
        c = tbl.t[(c ^ p[i]) & 0xff] ^ (c >> 8);
    return c ^ 0xffffffffu;
}

// LZ77, LZ4-flavored byte format.  A sequence is:
//   token  = (litLen : 4 high bits | matchLen-4 : 4 low bits)
//   [255-extension bytes for litLen >= 15]
//   literals
//   varint match offset (reaching the whole block)
//   [255-extension bytes for matchLen >= 19]
// The final sequence carries literals only (no offset); matches are
// at least 4 bytes.  The window spans the whole chunk: the reference
// streams repeat with the period of an application iteration, which
// is far longer than a classic 64 KB window, and a whole-chunk reach
// lets one iteration match against the previous one.

namespace {

constexpr std::size_t kMinMatch = 4;
constexpr std::size_t kMaxOffset = std::size_t(1) << 26;
constexpr int kHashBits = 17;

inline std::uint32_t
load32(const std::uint8_t* p)
{
    std::uint32_t v;
    std::memcpy(&v, p, 4);
    return v;
}

inline std::uint32_t
hash32(std::uint32_t v)
{
    return (v * 2654435761u) >> (32 - kHashBits);
}

void
putLen(std::vector<std::uint8_t>& out, std::size_t len)
{
    while (len >= 255) {
        out.push_back(255);
        len -= 255;
    }
    out.push_back(static_cast<std::uint8_t>(len));
}

void
emitSequence(std::vector<std::uint8_t>& out, const std::uint8_t* lit,
             std::size_t litLen, std::size_t offset,
             std::size_t matchLen)
{
    const std::size_t litCode = litLen < 15 ? litLen : 15;
    const std::size_t matCode =
        matchLen == 0 ? 0
                      : (matchLen - kMinMatch < 15 ? matchLen - kMinMatch
                                                   : 15);
    out.push_back(static_cast<std::uint8_t>((litCode << 4) | matCode));
    if (litCode == 15)
        putLen(out, litLen - 15);
    out.insert(out.end(), lit, lit + litLen);
    if (matchLen == 0)
        return;  // terminal literals-only sequence
    putVarint(out, offset);
    if (matCode == 15)
        putLen(out, matchLen - kMinMatch - 15);
}

} // namespace

void
lzCompress(const std::uint8_t* in, std::size_t n,
           std::vector<std::uint8_t>& out)
{
    std::vector<std::uint32_t> head(std::size_t(1) << kHashBits, 0);
    // Position 0 is the "empty" sentinel, so stored positions are +1.
    std::size_t i = 0;
    std::size_t anchor = 0;
    while (n >= kMinMatch && i + kMinMatch <= n) {
        const std::uint32_t h = hash32(load32(in + i));
        const std::size_t cand = head[h];
        head[h] = static_cast<std::uint32_t>(i + 1);
        if (cand != 0) {
            const std::size_t c = cand - 1;
            if (i - c <= kMaxOffset && load32(in + c) == load32(in + i)) {
                std::size_t len = kMinMatch;
                while (i + len < n && in[c + len] == in[i + len])
                    ++len;
                emitSequence(out, in + anchor, i - anchor, i - c, len);
                // Index a few positions inside the match so long runs
                // of a short period stay discoverable.
                const std::size_t stop =
                    std::min(i + len, n >= kMinMatch ? n - kMinMatch : 0);
                for (std::size_t j = i + 1; j < stop; j += 13)
                    head[hash32(load32(in + j))] =
                        static_cast<std::uint32_t>(j + 1);
                i += len;
                anchor = i;
                continue;
            }
        }
        ++i;
    }
    emitSequence(out, in + anchor, n - anchor, 0, 0);
}

bool
lzDecompress(const std::uint8_t* in, std::size_t n, std::uint8_t* out,
             std::size_t outN)
{
    const std::uint8_t* p = in;
    const std::uint8_t* end = in + n;
    std::size_t o = 0;
    auto readLen = [&](std::size_t base, std::size_t* len) {
        *len = base;
        if (base != 15)
            return true;
        for (;;) {
            if (p >= end)
                return false;
            std::uint8_t b = *p++;
            *len += b;
            if (b != 255)
                return true;
        }
    };
    for (;;) {
        if (p >= end)
            return false;  // missing terminal sequence
        const std::uint8_t token = *p++;
        std::size_t litLen;
        if (!readLen(token >> 4, &litLen))
            return false;
        if (litLen > static_cast<std::size_t>(end - p) ||
            litLen > outN - o)
            return false;
        std::memcpy(out + o, p, litLen);
        p += litLen;
        o += litLen;
        if (p == end)
            return o == outN;  // terminal sequence
        std::uint64_t off64 = 0;
        if (!getVarint(&p, end, &off64))
            return false;
        const std::size_t offset = static_cast<std::size_t>(off64);
        if (offset == 0 || offset > o || offset > kMaxOffset)
            return false;
        std::size_t matchLen;
        if (!readLen(token & 0x0f, &matchLen))
            return false;
        matchLen += kMinMatch;
        if (matchLen > outN - o)
            return false;
        // Byte-wise copy: overlapping matches (offset < length)
        // replicate the period, which is the point.
        const std::uint8_t* src = out + o - offset;
        for (std::size_t k = 0; k < matchLen; ++k)
            out[o + k] = src[k];
        o += matchLen;
        if (o == outN && p == end)
            return true;
    }
}

} // namespace tracecodec

using namespace tracecodec;

// ---------------------------------------------------------------------
// File-format constants.

namespace {

constexpr char kMagic[8] = {'S', '2', 'T', 'R', 'A', 'C', 'E', '1'};
constexpr std::uint32_t kFormatVersion = 1;
constexpr std::uint32_t kHeaderBytes = 128;
constexpr std::uint32_t kChunkMagic = 0x4b433253u;   // "S2CK"
constexpr std::uint32_t kFooterMagic = 0x54463253u;  // "S2FT"
constexpr std::size_t kAppBytes = 16;
constexpr std::size_t kFrameBytes = 24;

constexpr std::uint8_t kEvSync = 0;
constexpr std::uint8_t kEvReset = 1;
constexpr std::uint8_t kEvPlace = 2;

constexpr std::uint8_t kSizePlanes = 0;  ///< dictionary + index planes
constexpr std::uint8_t kSizeRuns = 1;    ///< sizes as RLE runs

constexpr std::uint8_t kAddrPlain = 0;  ///< delta vs previous address
constexpr std::uint8_t kAddrPred = 1;   ///< selector plane + predictor

/** Address-column predictor geometry (part of the on-disk format):
 *  the second predictor is the prior target of the previous address's
 *  4 KiB page, through a per-processor direct-mapped table of 4096
 *  slots (16 MiB of distinct pages before aliasing). */
constexpr unsigned kPageShift = 12;
constexpr std::size_t kAddrSlots = std::size_t(1) << 12;

/** Upper bound on encoded bytes per record or event: the widest
 *  record costs a processor run (12 B) + 2 bitmap bits + a size run
 *  (11 B) + two 10-byte varint deltas, and the widest event a
 *  position delta + place triple (31 B) -- both comfortably under
 *  this.  Lets the reader reject an implausible chunk size before
 *  allocating a decode buffer from it. */
constexpr std::uint64_t kMaxEncPerItem = 64;

template <typename T>
void
put(std::uint8_t* p, std::size_t off, T v)
{
    std::memcpy(p + off, &v, sizeof(T));
}

template <typename T>
T
get(const std::uint8_t* p, std::size_t off)
{
    T v;
    std::memcpy(&v, p + off, sizeof(T));
    return v;
}

/** Serialize the 128-byte header; totals/finalized vary per call. */
void
buildHeader(std::uint8_t (&h)[kHeaderBytes], const TraceMeta& m,
            std::uint64_t records, std::uint64_t syncs,
            std::uint64_t chunks, std::uint64_t payloadBytes,
            bool finalized, std::uint32_t footerBytes)
{
    std::memset(h, 0, sizeof(h));
    std::memcpy(h, kMagic, 8);
    put<std::uint32_t>(h, 8, kFormatVersion);
    put<std::uint32_t>(h, 12, kHeaderBytes);
    std::memcpy(h + 16, m.app.c_str(),
                std::min(m.app.size(), kAppBytes - 1));
    put<std::uint32_t>(h, 32, static_cast<std::uint32_t>(m.nprocs));
    put<std::uint32_t>(h, 36, m.seed);
    put<double>(h, 40, m.scale);
    put<std::int64_t>(h, 48, m.n);
    put<std::int64_t>(h, 56, m.iters);
    put<std::int64_t>(h, 64, m.aux);
    put<std::uint64_t>(h, 72, m.quantum);
    put<std::uint64_t>(h, 80, records);
    put<std::uint64_t>(h, 88, syncs);
    put<std::uint64_t>(h, 96, chunks);
    put<std::uint64_t>(h, 104, payloadBytes);
    h[112] = finalized ? 1 : 0;
    put<std::uint32_t>(h, 116, footerBytes);
    put<std::uint32_t>(h, 124, crc32(h, 124));
}

std::uint64_t
fnv1a64(const void* data, std::size_t n, std::uint64_t h)
{
    const auto* p = static_cast<const std::uint8_t*>(data);
    for (std::size_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= 1099511628211ull;
    }
    return h;
}

} // namespace

bool
TraceMeta::operator==(const TraceMeta& o) const
{
    return app == o.app && nprocs == o.nprocs && scale == o.scale &&
           n == o.n && iters == o.iters && aux == o.aux &&
           seed == o.seed && quantum == o.quantum;
}

std::string
TraceMeta::describe() const
{
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "%s P=%d scale=%g n=%ld iters=%ld aux=%ld seed=%u "
                  "quantum=%llu",
                  app.c_str(), nprocs, scale, n, iters, aux, seed,
                  static_cast<unsigned long long>(quantum));
    return buf;
}

std::string
TraceMeta::fileName() const
{
    std::uint64_t h = 14695981039346656037ull;
    h = fnv1a64(&scale, sizeof(scale), h);
    std::int64_t v = n;
    h = fnv1a64(&v, sizeof(v), h);
    v = iters;
    h = fnv1a64(&v, sizeof(v), h);
    v = aux;
    h = fnv1a64(&v, sizeof(v), h);
    std::uint32_t s = seed;
    h = fnv1a64(&s, sizeof(s), h);
    h = fnv1a64(&quantum, sizeof(quantum), h);
    std::string lower;
    for (char c : app)
        lower.push_back(
            c >= 'A' && c <= 'Z' ? static_cast<char>(c - 'A' + 'a') : c);
    char buf[96];
    std::snprintf(buf, sizeof(buf), "%s_p%d_%016llx.s2t", lower.c_str(),
                  nprocs, static_cast<unsigned long long>(h));
    return buf;
}

// ---------------------------------------------------------------------
// ReplayPlacement (mirrors rt::SharedHeap span semantics).

void
ReplayPlacement::reset(int nprocs, int lineSize)
{
    nprocs_ = nprocs;
    lineShift_ = log2i(static_cast<std::uint64_t>(lineSize));
    homes_.clear();
}

void
ReplayPlacement::apply(Addr start, std::uint64_t bytes, ProcId home)
{
    homes_[start] = Span{start + bytes, home};
}

ProcId
ReplayPlacement::homeOf(Addr lineAddr) const
{
    auto it = homes_.upper_bound(lineAddr);
    if (it != homes_.begin()) {
        --it;
        if (lineAddr < it->second.end)
            return it->second.home;
    }
    return static_cast<ProcId>((lineAddr >> lineShift_) % nprocs_);
}

// ---------------------------------------------------------------------
// TraceWriter.

TraceWriter::TraceWriter(std::string path, const TraceMeta& meta,
                         std::size_t chunkRecords)
    : path_(std::move(path)), meta_(meta), chunkRecords_(chunkRecords)
{
    ensure(chunkRecords_ >= 1, "trace chunk size must be positive");
    ensure(meta_.nprocs >= 1 && meta_.nprocs <= kMaxProcs,
           "trace meta processor count out of range");
    tmpPath_ = path_ + ".tmp." + std::to_string(::getpid());
    f_ = std::fopen(tmpPath_.c_str(), "wb");
    if (f_ == nullptr)
        fatal("cannot create trace file '" + tmpPath_ + "'");
    recs_.reserve(chunkRecords_);
    runsByProc_.resize(static_cast<std::size_t>(meta_.nprocs));
    addrTbl_.assign(static_cast<std::size_t>(meta_.nprocs),
                    std::vector<Addr>(kAddrSlots, 0));
    lastAddr_.assign(static_cast<std::size_t>(meta_.nprocs), 0);
    lastLtime_.assign(static_cast<std::size_t>(meta_.nprocs), 0);
    // Provisional header (totals unknown); rewritten by finalize().
    std::uint8_t h[kHeaderBytes];
    buildHeader(h, meta_, 0, 0, 0, 0, /*finalized=*/false, 0);
    if (std::fwrite(h, 1, sizeof(h), f_) != sizeof(h))
        fatal("cannot write trace header to '" + tmpPath_ + "'");
}

TraceWriter::~TraceWriter()
{
    if (f_ != nullptr)
        std::fclose(f_);
    if (!finalized_)
        ::unlink(tmpPath_.c_str());  // aborted recording
}

void
TraceWriter::access(const AccessRec& r)
{
    recs_.push_back(r);
    if (recs_.size() == chunkRecords_)
        flushChunk();
}

void
TraceWriter::sync(const SyncRec& r)
{
    Event e;
    e.pos = static_cast<std::uint32_t>(recs_.size());
    e.kind = kEvSync;
    e.sync = r;
    events_.push_back(e);
    ++totalSyncs_;
}

void
TraceWriter::resetStats()
{
    Event e;
    e.pos = static_cast<std::uint32_t>(recs_.size());
    e.kind = kEvReset;
    events_.push_back(e);
}

void
TraceWriter::place(const PlaceRec& r)
{
    Event e;
    e.pos = static_cast<std::uint32_t>(recs_.size());
    e.kind = kEvPlace;
    e.place = r;
    events_.push_back(e);
}

void
TraceWriter::flushChunk()
{
    if (recs_.empty() && events_.empty())
        return;
    enc_.clear();
    const std::size_t n = recs_.size();

    // Column 1: processor run lengths.
    {
        std::uint64_t runs = 0;
        for (std::size_t i = 0; i < n; ++i)
            if (i == 0 || recs_[i].proc != recs_[i - 1].proc)
                ++runs;
        putVarint(enc_, runs);
        std::size_t i = 0;
        while (i < n) {
            std::size_t j = i + 1;
            while (j < n && recs_[j].proc == recs_[i].proc)
                ++j;
            putVarint(enc_, zigzag(recs_[i].proc));
            putVarint(enc_, j - i);
            i = j;
        }
    }
    // Columns 2+3: access-type and atomic-flag bitmaps.
    {
        const std::size_t bytes = (n + 7) / 8;
        std::size_t base = enc_.size();
        enc_.resize(base + 2 * bytes, 0);
        for (std::size_t i = 0; i < n; ++i) {
            if (recs_[i].type == AccessType::Write)
                enc_[base + i / 8] |= std::uint8_t(1u << (i % 8));
            if (recs_[i].atomic())
                enc_[base + bytes + i / 8] |=
                    std::uint8_t(1u << (i % 8));
        }
    }
    // The delta columns below are grouped by processor: all of
    // processor 0's records (in stream order), then processor 1's,
    // and so on.  Grouping keeps each processor's regular pattern
    // contiguous, which the LZ stage compresses far better than the
    // scheduler's interleaving of them.  The groups are reconstructed
    // on both sides from the processor runs of column 1.
    for (auto& rp : runsByProc_)
        rp.clear();
    {
        std::size_t i = 0;
        while (i < n) {
            std::size_t j = i + 1;
            while (j < n && recs_[j].proc == recs_[i].proc)
                ++j;
            runsByProc_[static_cast<std::size_t>(recs_[i].proc)]
                .push_back({static_cast<std::uint32_t>(i),
                            static_cast<std::uint32_t>(j - i)});
            i = j;
        }
    }
    // Column 4: access sizes.  A chunk almost always uses a handful
    // of distinct sizes (word, double, the odd struct copy), so the
    // common encoding is a small per-chunk dictionary sorted by
    // frequency plus two bit-planes of dictionary indices, laid out
    // in grouped (per-processor) order: the dominant size is index 0,
    // so the planes are near-zero and the LZ stage collapses them.
    // Chunks with more than four distinct sizes fall back to runs.
    {
        std::vector<std::pair<std::int64_t, std::int32_t>> dict;
        for (std::size_t i = 0; i < n && dict.size() <= 4; ++i) {
            const auto s = recs_[i].size;
            bool seen = false;
            for (auto& d : dict)
                if (d.second == s) {
                    --d.first;  // negated count: sort puts it first
                    seen = true;
                    break;
                }
            if (!seen)
                dict.push_back({-1, s});
        }
        const bool planar = dict.size() <= 4;
        enc_.push_back(planar ? kSizePlanes : kSizeRuns);
        if (planar) {
            std::sort(dict.begin(), dict.end());
            enc_.push_back(static_cast<std::uint8_t>(dict.size()));
            for (const auto& d : dict)
                putVarint(enc_, zigzag(d.second));
            const std::size_t bytes = (n + 7) / 8;
            std::size_t base = enc_.size();
            enc_.resize(base + 2 * bytes, 0);
            std::size_t g = 0;
            for (int p = 0; p < meta_.nprocs; ++p)
                for (const auto& run :
                     runsByProc_[static_cast<std::size_t>(p)])
                    for (std::uint32_t i = run.first;
                         i < run.first + run.second; ++i, ++g) {
                        unsigned idx = 0;
                        while (dict[idx].second != recs_[i].size)
                            ++idx;
                        if (idx & 1u)
                            enc_[base + g / 8] |=
                                std::uint8_t(1u << (g % 8));
                        if (idx & 2u)
                            enc_[base + bytes + g / 8] |=
                                std::uint8_t(1u << (g % 8));
                    }
        } else {
            std::uint64_t runs = 0;
            for (std::size_t i = 0; i < n; ++i)
                if (i == 0 || recs_[i].size != recs_[i - 1].size)
                    ++runs;
            putVarint(enc_, runs);
            std::size_t i = 0;
            while (i < n) {
                std::size_t j = i + 1;
                while (j < n && recs_[j].size == recs_[i].size)
                    ++j;
                putVarint(enc_, zigzag(recs_[i].size));
                putVarint(enc_, j - i);
                i = j;
            }
        }
    }
    // Column 5: address deltas, grouped by processor.  Two candidate
    // encodings are built, both replayable from decoded history:
    //
    //   kAddrPlain -- delta against the processor's previous address.
    //     Iteration-periodic streams repeat the exact byte sequence,
    //     which the whole-chunk LZ window collapses.
    //   kAddrPred  -- a selector bit-plane plus the delta against the
    //     better of that previous address and a page-keyed table (the
    //     prior target of the previous address's page), which
    //     untangles interleaved streams -- scatter buckets, molecule
    //     pairs -- into their own near-constant strides.
    //
    // Whichever LZ-compresses smaller is written behind a mode byte.
    // The prediction-state updates depend only on the address stream,
    // never on the mode, so chunks may switch modes freely.
    {
        const std::size_t bytes = (n + 7) / 8;
        std::vector<std::uint8_t> plainCol;
        std::vector<std::uint8_t> predCol(bytes, 0);
        ltex_.clear();  // scratch may hold a previous chunk's bytes
        std::size_t g = 0;
        for (int p = 0; p < meta_.nprocs; ++p) {
            const auto pi = static_cast<std::size_t>(p);
            Addr* tbl = addrTbl_[pi].data();
            Addr last = lastAddr_[pi];
            for (const auto& run : runsByProc_[pi])
                for (std::uint32_t i = run.first;
                     i < run.first + run.second; ++i, ++g) {
                    const Addr a = recs_[i].addr;
                    const std::size_t slot =
                        (last >> kPageShift) & (kAddrSlots - 1);
                    const auto dLast =
                        zigzag(static_cast<std::int64_t>(a - last));
                    const auto dTbl =
                        zigzag(static_cast<std::int64_t>(a -
                                                         tbl[slot]));
                    putVarint(plainCol, dLast);
                    if (dTbl < dLast) {
                        predCol[g / 8] |= std::uint8_t(1u << (g % 8));
                        putVarint(ltex_, dTbl);
                    } else {
                        putVarint(ltex_, dLast);
                    }
                    tbl[slot] = a;
                    last = a;
                }
            lastAddr_[pi] = last;
        }
        predCol.insert(predCol.end(), ltex_.begin(), ltex_.end());
        ltex_.clear();
        comp_.clear();
        lzCompress(plainCol.data(), plainCol.size(), comp_);
        const std::size_t plainLz = std::min(comp_.size(),
                                             plainCol.size());
        comp_.clear();
        lzCompress(predCol.data(), predCol.size(), comp_);
        const std::size_t predLz = std::min(comp_.size(),
                                            predCol.size());
        if (predLz < plainLz) {
            enc_.push_back(kAddrPred);
            enc_.insert(enc_.end(), predCol.begin(), predCol.end());
        } else {
            enc_.push_back(kAddrPlain);
            enc_.insert(enc_.end(), plainCol.begin(), plainCol.end());
        }
    }
    // Column 6: logical-time deltas, grouped by processor.  An app's
    // clock advances by a handful of distinct strides (usually just
    // 1, plus the cost of the instruction block between references),
    // so the deltas get the same treatment as the sizes: a per-chunk
    // dictionary of the most frequent deltas plus two bit-planes of
    // dictionary indices in grouped order; index 3 escapes to an
    // explicit varint (appended after the planes) unless the
    // dictionary is exact with four entries.  Sync events share the
    // same per-processor clock state (encoded below): all accesses
    // update it first, then events, exactly the order the decoder
    // replays.
    {
        ltd_.clear();
        for (int p = 0; p < meta_.nprocs; ++p) {
            Tick last = lastLtime_[static_cast<std::size_t>(p)];
            for (const auto& run :
                 runsByProc_[static_cast<std::size_t>(p)])
                for (std::uint32_t i = run.first;
                     i < run.first + run.second; ++i) {
                    ltd_.push_back(static_cast<std::int64_t>(
                        recs_[i].ltime - last));
                    last = recs_[i].ltime;
                }
            lastLtime_[static_cast<std::size_t>(p)] = last;
        }
        // Frequency-ranked dictionary; tracking caps at 32 distinct
        // deltas (beyond that the stragglers escape anyway).
        std::vector<std::pair<std::int64_t, std::int64_t>> freq;
        for (const std::int64_t d : ltd_) {
            bool seen = false;
            for (auto& f : freq)
                if (f.second == d) {
                    --f.first;
                    seen = true;
                    break;
                }
            if (!seen && freq.size() < 32)
                freq.push_back({-1, d});
        }
        std::sort(freq.begin(), freq.end());
        // Four entries only when they cover every delta; otherwise
        // index 3 is the escape marker.
        const unsigned dictN = freq.size() <= 4
                                   ? static_cast<unsigned>(freq.size())
                                   : 3u;
        enc_.push_back(static_cast<std::uint8_t>(dictN));
        for (unsigned d = 0; d < dictN; ++d)
            putVarint(enc_, zigzag(freq[d].second));
        const std::size_t bytes = (n + 7) / 8;
        const std::size_t base = enc_.size();
        enc_.resize(base + 2 * bytes, 0);
        ltex_.clear();
        for (std::size_t g = 0; g < ltd_.size(); ++g) {
            unsigned idx = 0;
            while (idx < dictN && freq[idx].second != ltd_[g])
                ++idx;
            if (idx == dictN && dictN == 4)
                fatal("ltime dictionary claimed exact but is not");
            if (idx == dictN) {
                idx = 3;
                putVarint(ltex_, zigzag(ltd_[g]));
            }
            if (idx & 1u)
                enc_[base + g / 8] |= std::uint8_t(1u << (g % 8));
            if (idx & 2u)
                enc_[base + bytes + g / 8] |=
                    std::uint8_t(1u << (g % 8));
        }
        enc_.insert(enc_.end(), ltex_.begin(), ltex_.end());
    }
    // Column 7: stream-ordered events.
    {
        putVarint(enc_, events_.size());
        std::uint64_t prevPos = 0;
        for (const Event& e : events_) {
            putVarint(enc_, e.pos - prevPos);
            prevPos = e.pos;
            enc_.push_back(e.kind);
            if (e.kind == kEvSync) {
                const SyncRec& s = e.sync;
                enc_.push_back(static_cast<std::uint8_t>(
                    (s.op == SyncOp::Release ? 1 : 0) |
                    (static_cast<unsigned>(s.prim) << 1)));
                putVarint(enc_, s.obj);
                putVarint(enc_, zigzag(s.proc));
                const auto p = static_cast<std::size_t>(
                    s.proc >= 0 ? s.proc : 0);
                putVarint(enc_, zigzag(static_cast<std::int64_t>(
                                    s.ltime - lastLtime_[p])));
                lastLtime_[p] = s.ltime;
            } else if (e.kind == kEvPlace) {
                putVarint(enc_, e.place.addr);
                putVarint(enc_, e.place.bytes);
                putVarint(enc_, zigzag(e.place.home));
            }
        }
    }

    comp_.clear();
    lzCompress(enc_.data(), enc_.size(), comp_);
    const bool stored = comp_.size() >= enc_.size();
    const std::uint8_t* payload = stored ? enc_.data() : comp_.data();
    const std::size_t payloadN = stored ? enc_.size() : comp_.size();

    std::uint8_t fr[kFrameBytes];
    put<std::uint32_t>(fr, 0, kChunkMagic);
    put<std::uint32_t>(fr, 4, static_cast<std::uint32_t>(n));
    put<std::uint32_t>(fr, 8,
                       static_cast<std::uint32_t>(events_.size()));
    put<std::uint32_t>(fr, 12,
                       static_cast<std::uint32_t>(enc_.size()));
    put<std::uint32_t>(fr, 16, static_cast<std::uint32_t>(payloadN));
    // The CRC covers the frame fields as well as the payload, so a
    // corrupted record/byte count is itself detectable -- the reader
    // must never size a buffer from an unverified length.
    put<std::uint32_t>(fr, 20, crc32(fr, 20, crc32(payload, payloadN)));
    if (std::fwrite(fr, 1, sizeof(fr), f_) != sizeof(fr) ||
        (payloadN != 0 &&
         std::fwrite(payload, 1, payloadN, f_) != payloadN))
        fatal("cannot append trace chunk to '" + tmpPath_ + "'");
    bytesWritten_ += kFrameBytes + payloadN;
    totalRecords_ += n;
    ++totalChunks_;
    recs_.clear();
    events_.clear();
}

bool
TraceWriter::finalize(const ExecProfile& exec, std::string* err)
{
    ensure(!finalized_, "trace already finalized");
    flushChunk();

    // Footer: magic, valid flag, elapsed, per-proc counter rows, CRC.
    std::vector<std::uint8_t> ft(4 + 1 + 3 + 8, 0);
    put<std::uint32_t>(ft.data(), 0, kFooterMagic);
    ft[4] = exec.valid ? 1 : 0;
    put<std::uint64_t>(ft.data(), 8, exec.elapsed);
    ensure(exec.procs.size() ==
               static_cast<std::size_t>(meta_.nprocs),
           "exec profile row count != nprocs");
    for (const ExecProfile::Row& row : exec.procs)
        for (std::uint64_t v : row) {
            std::size_t off = ft.size();
            ft.resize(off + 8);
            put<std::uint64_t>(ft.data(), off, v);
        }
    {
        std::size_t off = ft.size();
        ft.resize(off + 4);
        put<std::uint32_t>(ft.data(), off, crc32(ft.data(), off));
    }
    std::uint8_t h[kHeaderBytes];
    buildHeader(h, meta_, totalRecords_, totalSyncs_, totalChunks_,
                bytesWritten_, /*finalized=*/true,
                static_cast<std::uint32_t>(ft.size()));
    auto fail = [&](const char* what) {
        if (err != nullptr)
            *err = std::string(what) + " '" + tmpPath_ + "'";
        return false;
    };
    if (std::fwrite(ft.data(), 1, ft.size(), f_) != ft.size())
        return fail("cannot write trace footer to");
    if (std::fseek(f_, 0, SEEK_SET) != 0 ||
        std::fwrite(h, 1, sizeof(h), f_) != sizeof(h))
        return fail("cannot rewrite trace header of");
    if (std::fclose(f_) != 0) {
        f_ = nullptr;
        return fail("cannot close trace file");
    }
    f_ = nullptr;
    if (std::rename(tmpPath_.c_str(), path_.c_str()) != 0)
        return fail("cannot publish trace file");
    finalized_ = true;
    return true;
}

// ---------------------------------------------------------------------
// TraceReader.

std::unique_ptr<TraceReader>
TraceReader::open(const std::string& path, std::string* err)
{
    auto fail = [&](const std::string& what) {
        if (err != nullptr)
            *err = "trace '" + path + "': " + what;
        return nullptr;
    };
    int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0)
        return fail("cannot open (" +
                    std::string(std::strerror(errno)) + ")");
    struct stat st{};
    if (::fstat(fd, &st) != 0 || !S_ISREG(st.st_mode)) {
        ::close(fd);
        return fail("not a regular file");
    }
    if (st.st_size < static_cast<off_t>(kHeaderBytes)) {
        ::close(fd);
        return fail("truncated (shorter than the header)");
    }
    void* m = ::mmap(nullptr, static_cast<std::size_t>(st.st_size),
                     PROT_READ, MAP_PRIVATE, fd, 0);
    if (m == MAP_FAILED) {
        ::close(fd);
        return fail("mmap failed");
    }
    std::unique_ptr<TraceReader> rd(new TraceReader);
    rd->data_ = static_cast<const std::uint8_t*>(m);
    rd->size_ = static_cast<std::size_t>(st.st_size);
    rd->fd_ = fd;
    std::string why;
    if (!rd->parseHeaderAndIndex(&why))
        return fail(why);
    return rd;
}

TraceReader::~TraceReader()
{
    if (data_ != nullptr)
        ::munmap(const_cast<std::uint8_t*>(data_), size_);
    if (fd_ >= 0)
        ::close(fd_);
}

bool
TraceReader::parseHeaderAndIndex(std::string* err)
{
    const std::uint8_t* h = data_;
    if (std::memcmp(h, kMagic, 8) != 0) {
        *err = "bad magic (not a splash2 trace)";
        return false;
    }
    const auto version = get<std::uint32_t>(h, 8);
    if (version != kFormatVersion) {
        *err = "format version " + std::to_string(version) +
               " (this build reads version " +
               std::to_string(kFormatVersion) + "); re-record the trace";
        return false;
    }
    if (get<std::uint32_t>(h, 12) != kHeaderBytes) {
        *err = "unexpected header size";
        return false;
    }
    if (get<std::uint32_t>(h, 124) != crc32(h, 124)) {
        *err = "header CRC mismatch (corrupted file)";
        return false;
    }
    if (h[112] != 1) {
        *err = "recording was never finalized (aborted run?)";
        return false;
    }
    char app[kAppBytes];
    std::memcpy(app, h + 16, kAppBytes);
    app[kAppBytes - 1] = '\0';
    meta_.app = app;
    meta_.nprocs = static_cast<int>(get<std::uint32_t>(h, 32));
    meta_.seed = get<std::uint32_t>(h, 36);
    meta_.scale = get<double>(h, 40);
    meta_.n = static_cast<long>(get<std::int64_t>(h, 48));
    meta_.iters = static_cast<long>(get<std::int64_t>(h, 56));
    meta_.aux = static_cast<long>(get<std::int64_t>(h, 64));
    meta_.quantum = get<std::uint64_t>(h, 72);
    totalRecords_ = get<std::uint64_t>(h, 80);
    totalSyncs_ = get<std::uint64_t>(h, 88);
    totalChunks_ = get<std::uint64_t>(h, 96);
    const auto footerBytes = get<std::uint32_t>(h, 116);
    if (meta_.nprocs < 1 || meta_.nprocs > kMaxProcs) {
        *err = "processor count out of range";
        return false;
    }
    chunkOffset_ = kHeaderBytes;

    // Walk the chunk frames to find and pre-validate the footer
    // position (payload CRCs are checked during replay/verify).
    std::size_t off = chunkOffset_;
    for (std::uint64_t c = 0; c < totalChunks_; ++c) {
        if (size_ - off < kFrameBytes) {
            *err = "truncated at chunk " + std::to_string(c);
            return false;
        }
        const std::uint8_t* fr = data_ + off;
        if (get<std::uint32_t>(fr, 0) != kChunkMagic) {
            *err = "bad chunk magic at chunk " + std::to_string(c);
            return false;
        }
        const auto payloadN = get<std::uint32_t>(fr, 16);
        if (size_ - off - kFrameBytes < payloadN) {
            *err = "truncated payload at chunk " + std::to_string(c);
            return false;
        }
        off += kFrameBytes + payloadN;
    }
    const std::size_t kFooterFixed = 4 + 1 + 3 + 8;
    const std::size_t wantFooter =
        kFooterFixed +
        static_cast<std::size_t>(meta_.nprocs) * ExecProfile::kFields *
            8 +
        4;
    if (footerBytes != wantFooter || size_ - off != footerBytes) {
        *err = "footer size mismatch (truncated or corrupted)";
        return false;
    }
    const std::uint8_t* ft = data_ + off;
    if (get<std::uint32_t>(ft, 0) != kFooterMagic) {
        *err = "bad footer magic";
        return false;
    }
    if (get<std::uint32_t>(ft, footerBytes - 4) !=
        crc32(ft, footerBytes - 4)) {
        *err = "footer CRC mismatch (corrupted file)";
        return false;
    }
    exec_.valid = ft[4] != 0;
    exec_.elapsed = get<std::uint64_t>(ft, 8);
    exec_.procs.resize(static_cast<std::size_t>(meta_.nprocs));
    std::size_t fo = kFooterFixed;
    for (auto& row : exec_.procs)
        for (auto& v : row) {
            v = get<std::uint64_t>(ft, fo);
            fo += 8;
        }
    placement_.reset(meta_.nprocs);
    return true;
}

bool
TraceReader::replay(RefSink* sink, std::string* err)
{
    auto fail = [&](std::uint64_t chunk, const std::string& what) {
        if (err != nullptr)
            *err = "trace chunk " + std::to_string(chunk) + ": " + what;
        return false;
    };
    placement_.reset(meta_.nprocs);
    std::vector<std::vector<Addr>> addrTbl(
        static_cast<std::size_t>(meta_.nprocs),
        std::vector<Addr>(kAddrSlots, 0));
    std::vector<Addr> lastAddr(
        static_cast<std::size_t>(meta_.nprocs), 0);
    std::vector<Tick> lastLtime(
        static_cast<std::size_t>(meta_.nprocs), 0);
    // Per-chunk scratch, kept in grouped (per-processor) order so
    // every decode pass writes sequentially: the chunk is large
    // enough that scattering whole records into stream order would
    // stream the scratch through memory once per column.  Stream
    // order is reconstituted during delivery by walking the run list
    // with one cursor per processor; the type/atomic bitmaps and the
    // size bit-planes are read directly from the encoded chunk at
    // that point rather than materialized.
    const auto np = static_cast<std::size_t>(meta_.nprocs);
    std::vector<std::vector<Addr>> addrBy(np);
    std::vector<std::vector<Tick>> ltimeBy(np);
    std::vector<std::uint32_t> cnt(np);
    std::vector<std::uint32_t> cur(np);
    std::vector<std::uint64_t> gbase(np);
    std::vector<std::pair<std::int16_t, std::uint32_t>> streamRuns;
    std::vector<std::int32_t> sizeStream;  // RLE fallback only
    std::vector<std::uint8_t> raw;
    std::uint64_t seenRecords = 0;
    std::uint64_t seenSyncs = 0;

    std::size_t off = chunkOffset_;
    for (std::uint64_t c = 0; c < totalChunks_; ++c) {
        const std::uint8_t* fr = data_ + off;
        const auto nRecs = get<std::uint32_t>(fr, 4);
        const auto nEvents = get<std::uint32_t>(fr, 8);
        const auto encBytes = get<std::uint32_t>(fr, 12);
        const auto payloadN = get<std::uint32_t>(fr, 16);
        const auto crc = get<std::uint32_t>(fr, 20);
        const std::uint8_t* payload = fr + kFrameBytes;
        off += kFrameBytes + payloadN;
        if (crc32(fr, 20, crc32(payload, payloadN)) != crc)
            return fail(c, "chunk CRC mismatch (corrupted file)");
        // Defense in depth behind the CRC: the counts must also be
        // consistent with the (header-CRC-protected) totals and with
        // the encoder's per-item output ceiling, so no buffer is ever
        // sized from an implausible length field.
        if (seenRecords + nRecs > totalRecords_)
            return fail(c, "record count exceeds the header total");
        if (encBytes > kMaxEncPerItem *
                               (std::uint64_t(nRecs) + nEvents) +
                           64)
            return fail(c, "encoded size exceeds its count bound");
        seenRecords += nRecs;
        const std::uint8_t* enc = payload;
        if (payloadN != encBytes) {  // compressed chunk
            raw.resize(encBytes);
            if (!lzDecompress(payload, payloadN, raw.data(), encBytes))
                return fail(c, "undecodable compressed payload");
            enc = raw.data();
        }
        if (sink == nullptr)
            continue;  // verify-only walk

        const std::uint8_t* p = enc;
        const std::uint8_t* end = enc + encBytes;
        auto truncated = [&] { return fail(c, "undecodable column"); };
        std::uint64_t v = 0;

        // Column 1: processor runs -- the stream-order walk for
        // delivery, plus per-processor record counts sizing the
        // grouped scratch below.
        streamRuns.clear();
        std::fill(cnt.begin(), cnt.end(), 0u);
        if (!getVarint(&p, end, &v))
            return truncated();
        std::uint64_t fill = 0;
        for (std::uint64_t r = 0; r < v; ++r) {
            std::uint64_t proc = 0, len = 0;
            if (!getVarint(&p, end, &proc) ||
                !getVarint(&p, end, &len))
                return truncated();
            const auto id = unzigzag(proc);
            if (id < 0 || id >= meta_.nprocs || len == 0 ||
                fill + len > nRecs)
                return fail(c, "processor run out of range");
            streamRuns.push_back({static_cast<std::int16_t>(id),
                                  static_cast<std::uint32_t>(len)});
            cnt[static_cast<std::size_t>(id)] +=
                static_cast<std::uint32_t>(len);
            fill += len;
        }
        if (fill != nRecs)
            return fail(c, "processor runs do not cover the chunk");
        for (std::size_t pi = 0; pi < np; ++pi)
            gbase[pi] = pi == 0 ? 0 : gbase[pi - 1] + cnt[pi - 1];
        // Columns 2+3: type/atomic bitmaps, read during delivery.
        const std::size_t bmBytes = (std::size_t(nRecs) + 7) / 8;
        if (static_cast<std::size_t>(end - p) < 2 * bmBytes)
            return truncated();
        const std::uint8_t* bmType = p;
        const std::uint8_t* bmAtomic = p + bmBytes;
        p += 2 * bmBytes;
        // Column 4: access sizes -- flag byte, then either a size
        // dictionary + two index bit-planes in grouped order, or
        // explicit runs (mirrors the encoder).
        if (p == end)
            return truncated();
        const std::uint8_t sizeFlag = *p++;
        std::int32_t szDict[4] = {0, 0, 0, 0};
        unsigned szDictN = 0;
        const std::uint8_t* szbm = nullptr;
        if (sizeFlag == kSizePlanes) {
            if (p == end)
                return truncated();
            szDictN = *p++;
            if (szDictN > 4 || (szDictN == 0 && nRecs != 0))
                return fail(c, "size dictionary out of range");
            for (unsigned d = 0; d < szDictN; ++d) {
                if (!getVarint(&p, end, &v))
                    return truncated();
                szDict[d] = static_cast<std::int32_t>(unzigzag(v));
            }
            if (static_cast<std::size_t>(end - p) < 2 * bmBytes)
                return truncated();
            szbm = p;
            p += 2 * bmBytes;
            // Validate the whole plane pair up front (word-wise: an
            // index >= dictN is a specific bit pattern), so delivery
            // can read indices unchecked.
            if (szDictN < 4) {
                std::uint64_t bad = 0;
                for (std::size_t b = 0; b < bmBytes; ++b) {
                    const std::uint8_t lo = szbm[b];
                    const std::uint8_t hi = szbm[bmBytes + b];
                    std::uint8_t w = 0;
                    if (szDictN <= 1)
                        w = static_cast<std::uint8_t>(lo | hi);
                    else if (szDictN == 2)
                        w = hi;
                    else  // 3: only index 3 (both bits) is invalid
                        w = static_cast<std::uint8_t>(lo & hi);
                    if (b == bmBytes - 1 && nRecs % 8 != 0)
                        w &= static_cast<std::uint8_t>(
                            (1u << (nRecs % 8)) - 1);
                    bad |= w;
                }
                if (bad != 0)
                    return fail(c,
                                "size index outside the dictionary");
            }
        } else if (sizeFlag == kSizeRuns) {
            if (!getVarint(&p, end, &v))
                return truncated();
            sizeStream.resize(nRecs);
            fill = 0;
            for (std::uint64_t r = 0; r < v; ++r) {
                std::uint64_t size = 0, len = 0;
                if (!getVarint(&p, end, &size) ||
                    !getVarint(&p, end, &len))
                    return truncated();
                if (len == 0 || fill + len > nRecs)
                    return fail(c, "size run out of range");
                for (std::uint64_t i = 0; i < len; ++i)
                    sizeStream[fill + i] =
                        static_cast<std::int32_t>(unzigzag(size));
                fill += len;
            }
            if (fill != nRecs)
                return fail(c, "size runs do not cover the chunk");
        } else {
            return fail(c, "unknown size-column encoding");
        }
        // Column 5: mode byte, then either plain per-processor deltas
        // or a selector bit-plane plus deltas against the selected
        // predictor (previous address or page-keyed table entry),
        // replaying exactly the prediction state the encoder
        // maintained.  State updates are mode-independent.  The
        // one-byte varint case dominates, so it is inlined ahead of
        // the general decode.
        if (p == end)
            return truncated();
        const std::uint8_t addrMode = *p++;
        if (addrMode != kAddrPlain && addrMode != kAddrPred)
            return fail(c, "unknown address-column encoding");
        const std::uint8_t* selbm = nullptr;
        if (addrMode == kAddrPred) {
            if (static_cast<std::size_t>(end - p) < bmBytes)
                return truncated();
            selbm = p;
            p += bmBytes;
        }
        std::uint64_t ag = 0;
        for (std::size_t pi = 0; pi < np; ++pi) {
            Addr* tbl = addrTbl[pi].data();
            Addr last = lastAddr[pi];
            addrBy[pi].resize(cnt[pi]);
            Addr* out = addrBy[pi].data();
            if (selbm == nullptr) {
                // Plain mode: no selector plane, but the predictor
                // table still tracks the stream so a later chunk may
                // switch modes.
                for (std::uint32_t k = 0; k < cnt[pi]; ++k) {
                    if (p < end && *p < 0x80)
                        v = *p++;
                    else if (!getVarint(&p, end, &v))
                        return truncated();
                    const std::size_t slot =
                        (last >> kPageShift) & (kAddrSlots - 1);
                    const Addr a =
                        last + static_cast<Addr>(unzigzag(v));
                    out[k] = a;
                    tbl[slot] = a;
                    last = a;
                }
            } else {
                for (std::uint32_t k = 0; k < cnt[pi]; ++k, ++ag) {
                    if (p < end && *p < 0x80)
                        v = *p++;
                    else if (!getVarint(&p, end, &v))
                        return truncated();
                    const std::size_t slot =
                        (last >> kPageShift) & (kAddrSlots - 1);
                    const Addr base =
                        (selbm[ag / 8] & (1u << (ag % 8))) != 0
                            ? tbl[slot]
                            : last;
                    const Addr a =
                        base + static_cast<Addr>(unzigzag(v));
                    out[k] = a;
                    tbl[slot] = a;
                    last = a;
                }
            }
            lastAddr[pi] = last;
        }
        // Column 6: logical-time deltas, grouped by processor -- a
        // per-chunk delta dictionary plus two index bit-planes over
        // the grouped order; index 3 escapes to a varint appended
        // after the planes unless the dictionary is exact with four
        // entries (mirrors the encoder).
        if (p == end)
            return truncated();
        const unsigned ltDictN = *p++;
        if (ltDictN > 4 || (ltDictN == 0 && nRecs != 0))
            return fail(c, "ltime dictionary out of range");
        std::int64_t ltDict[4] = {0, 0, 0, 0};
        for (unsigned d = 0; d < ltDictN; ++d) {
            if (!getVarint(&p, end, &v))
                return truncated();
            ltDict[d] = unzigzag(v);
        }
        if (static_cast<std::size_t>(end - p) < 2 * bmBytes)
            return truncated();
        const std::uint8_t* ltbm = p;
        p += 2 * bmBytes;
        std::uint64_t g = 0;
        for (std::size_t pi = 0; pi < np; ++pi) {
            Tick acc = lastLtime[pi];
            ltimeBy[pi].resize(cnt[pi]);
            Tick* out = ltimeBy[pi].data();
            for (std::uint32_t k = 0; k < cnt[pi]; ++k, ++g) {
                const unsigned idx =
                    ((ltbm[g / 8] >> (g % 8)) & 1u) |
                    (((ltbm[bmBytes + g / 8] >> (g % 8)) & 1u) << 1);
                if (idx < ltDictN) {
                    acc += static_cast<Tick>(ltDict[idx]);
                } else if (idx == 3) {  // escape
                    if (p < end && *p < 0x80)
                        v = *p++;
                    else if (!getVarint(&p, end, &v))
                        return truncated();
                    acc += static_cast<Tick>(unzigzag(v));
                } else {
                    return fail(c,
                                "ltime index outside the "
                                "dictionary");
                }
                out[k] = acc;
            }
            lastLtime[pi] = acc;
        }
        // Column 7: events, delivered interleaved with the records.
        if (!getVarint(&p, end, &v) || v != nEvents)
            return fail(c, "event count mismatch");
        std::uint64_t evPos = 0;
        std::uint64_t nextRec = 0;
        std::size_t runIdx = 0;
        std::uint32_t runOff = 0;
        std::fill(cur.begin(), cur.end(), 0u);
        auto deliverUpTo = [&](std::uint64_t pos) {
            if (pos > nRecs)
                return false;
            while (nextRec < pos) {
                const auto [rp, rlen] = streamRuns[runIdx];
                const auto pi = static_cast<std::size_t>(rp);
                const auto take = static_cast<std::uint32_t>(
                    std::min<std::uint64_t>(rlen - runOff,
                                            pos - nextRec));
                const Addr* pa = addrBy[pi].data() + cur[pi];
                const Tick* pt = ltimeBy[pi].data() + cur[pi];
                std::uint64_t gi = gbase[pi] + cur[pi];
                std::uint64_t si = nextRec;
                AccessRec r;
                r.proc = rp;
                for (std::uint32_t k = 0; k < take;
                     ++k, ++si, ++gi) {
                    r.addr = pa[k];
                    r.ltime = pt[k];
                    // One-entry dictionaries dominate (most apps
                    // issue a single access width), so skip the
                    // plane reads when the size is a constant.
                    r.size =
                        szbm != nullptr
                            ? (szDictN == 1
                                   ? szDict[0]
                                   : szDict
                                         [((szbm[gi / 8] >>
                                            (gi % 8)) &
                                           1u) |
                                          (((szbm[bmBytes + gi / 8] >>
                                             (gi % 8)) &
                                            1u)
                                           << 1)])
                            : sizeStream[si];
                    r.type = (bmType[si / 8] & (1u << (si % 8))) != 0
                                 ? AccessType::Write
                                 : AccessType::Read;
                    r.flags =
                        (bmAtomic[si / 8] & (1u << (si % 8))) != 0
                            ? AccessRec::kAtomic
                            : 0;
                    sink->access(r);
                }
                cur[pi] += take;
                runOff += take;
                nextRec += take;
                if (runOff == rlen) {
                    ++runIdx;
                    runOff = 0;
                }
            }
            return true;
        };
        for (std::uint64_t e = 0; e < nEvents; ++e) {
            if (!getVarint(&p, end, &v))
                return truncated();
            evPos += v;
            if (!deliverUpTo(evPos))
                return fail(c, "event position out of range");
            if (p >= end)
                return truncated();
            const std::uint8_t kind = *p++;
            if (kind == kEvSync) {
                if (p >= end)
                    return truncated();
                const std::uint8_t packed = *p++;
                SyncRec s;
                s.op = (packed & 1) ? SyncOp::Release : SyncOp::Acquire;
                const unsigned prim = packed >> 1;
                if (prim > static_cast<unsigned>(SyncPrim::Flag))
                    return fail(c, "sync primitive out of range");
                s.prim = static_cast<SyncPrim>(prim);
                std::uint64_t obj = 0, proc = 0, dt = 0;
                if (!getVarint(&p, end, &obj) ||
                    !getVarint(&p, end, &proc) ||
                    !getVarint(&p, end, &dt))
                    return truncated();
                s.obj = static_cast<std::uint32_t>(obj);
                const auto id = unzigzag(proc);
                if (id < 0 || id >= meta_.nprocs)
                    return fail(c, "sync processor out of range");
                s.proc = static_cast<std::int16_t>(id);
                const auto pi = static_cast<std::size_t>(id);
                lastLtime[pi] += static_cast<Tick>(unzigzag(dt));
                s.ltime = lastLtime[pi];
                sink->sync(s);
                ++seenSyncs;
            } else if (kind == kEvReset) {
                sink->resetStats();
            } else if (kind == kEvPlace) {
                std::uint64_t addr = 0, bytes = 0, home = 0;
                if (!getVarint(&p, end, &addr) ||
                    !getVarint(&p, end, &bytes) ||
                    !getVarint(&p, end, &home))
                    return truncated();
                PlaceRec pr;
                pr.addr = static_cast<Addr>(addr);
                pr.bytes = bytes;
                pr.home = static_cast<ProcId>(unzigzag(home));
                // Quiesce consumers before the resolver mutates,
                // exactly like the live runtime's placement observer.
                sink->streamBarrier();
                placement_.apply(pr.addr, pr.bytes, pr.home);
                sink->place(pr);
            } else {
                return fail(c, "unknown event kind " +
                                   std::to_string(kind));
            }
        }
        if (!deliverUpTo(nRecs))
            return fail(c, "record decode out of range");
        if (p != end)
            return fail(c, "trailing bytes after the event column");
    }
    if (seenRecords != totalRecords_ ||
        (sink != nullptr && seenSyncs != totalSyncs_))
        return fail(totalChunks_,
                    "record/sync totals disagree with the header");
    return true;
}

// ---------------------------------------------------------------------
// Store helpers.

namespace tracestore {

std::string
pathFor(const std::string& dir, const TraceMeta& m)
{
    struct stat st{};
    if (::stat(dir.c_str(), &st) == 0 && S_ISREG(st.st_mode))
        return dir;  // direct single-file use
    std::string p = dir;
    if (!p.empty() && p.back() != '/')
        p.push_back('/');
    return p + m.fileName();
}

std::unique_ptr<TraceReader>
openFor(const std::string& dirOrFile, const TraceMeta& m,
        std::string* err)
{
    const std::string path = pathFor(dirOrFile, m);
    std::unique_ptr<TraceReader> rd = TraceReader::open(path, err);
    if (rd == nullptr) {
        if (err != nullptr && path != dirOrFile)
            *err += " -- no recorded trace for " + m.describe() +
                    "; record one with --record " + dirOrFile;
        return nullptr;
    }
    if (rd->meta() != m) {
        if (err != nullptr)
            *err = "trace '" + path + "' records " +
                   rd->meta().describe() + " but this run needs " +
                   m.describe();
        return nullptr;
    }
    return rd;
}

bool
haveTrace(const std::string& dir, const TraceMeta& m)
{
    std::string err;
    return openFor(dir, m, &err) != nullptr;
}

} // namespace tracestore

} // namespace splash::sim
