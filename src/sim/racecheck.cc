#include "sim/racecheck.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "base/log.h"

namespace splash::sim {

// --------------------------------------------------------------------
// Names
// --------------------------------------------------------------------

const char*
raceGranularityName(RaceGranularity g)
{
    switch (g) {
    case RaceGranularity::Off: return "off";
    case RaceGranularity::Word: return "word";
    case RaceGranularity::Line: return "line";
    }
    return "?";
}

bool
parseRaceGranularity(const std::string& s, RaceGranularity* out)
{
    if (s == "off") {
        *out = RaceGranularity::Off;
        return true;
    }
    if (s == "word") {
        *out = RaceGranularity::Word;
        return true;
    }
    if (s == "line") {
        *out = RaceGranularity::Line;
        return true;
    }
    return false;
}

const char*
raceFaultName(RaceFault k)
{
    switch (k) {
    case RaceFault::DropLockAcquire: return "drop-lock-acquire";
    case RaceFault::DropBarrierEdge: return "drop-barrier-edge";
    case RaceFault::DropFlagWait: return "drop-flag-wait";
    case RaceFault::NumKinds: break;
    }
    return "?";
}

bool
parseRaceFault(const std::string& s, RaceFault* out)
{
    for (int i = 0; i < kNumRaceFaults; ++i) {
        RaceFault k = static_cast<RaceFault>(i);
        if (s == raceFaultName(k)) {
            *out = k;
            return true;
        }
    }
    return false;
}

// --------------------------------------------------------------------
// Internal state
// --------------------------------------------------------------------

namespace {

/** An epoch packs (proc, clock) into one word; 0 means "no access".
 *  The +1 bias keeps epochs nonzero even at clock 0, though clocks
 *  start at 1 anyway (a fresh processor must race with nothing). */
inline std::uint64_t
makeEpoch(int proc, std::uint32_t clk)
{
    return (std::uint64_t(proc + 1) << 32) | clk;
}

inline int
epochProc(std::uint64_t e)
{
    return static_cast<int>(e >> 32) - 1;
}

inline std::uint32_t
epochClk(std::uint64_t e)
{
    return static_cast<std::uint32_t>(e);
}

/** Which drop kind an acquire edge of @p prim is eligible for. */
inline RaceFault
acquireFaultKind(SyncPrim prim)
{
    switch (prim) {
    case SyncPrim::Lock: return RaceFault::DropLockAcquire;
    case SyncPrim::Barrier: return RaceFault::DropBarrierEdge;
    case SyncPrim::Flag: return RaceFault::DropFlagWait;
    }
    return RaceFault::DropLockAcquire;
}

inline std::size_t
hashGranule(Addr key)
{
    std::uint64_t h = std::uint64_t(key) * 0x9E3779B97F4A7C15ull;
    return static_cast<std::size_t>(h ^ (h >> 29));
}

} // namespace

/** Shadow state of one granule.  `w` is the last-write epoch.  Reads
 *  are an epoch in `r` until two concurrent reads force promotion to
 *  a read vector clock (`rvc` indexes the pool); the VC collapses
 *  back at the next ordered write. */
struct RaceChecker::VarState
{
    std::uint64_t w = 0;
    std::uint64_t r = 0;
    std::int32_t rvc = -1;
    Tick wLt = 0;  ///< ltime of the last write (reporting)
    Tick rLt = 0;  ///< ltime of the epoch read (reporting)
};

struct RaceChecker::Slot
{
    Addr key = 0;  ///< granule index + 1; 0 = empty
    VarState v;
};

/** Per-processor read clocks of a read-shared granule, with the
 *  matching logical times so reports can cite the racy read. */
struct RaceChecker::ReadVC
{
    std::vector<std::uint32_t> clk;
    std::vector<Tick> lt;
};

// --------------------------------------------------------------------
// Construction
// --------------------------------------------------------------------

RaceChecker::RaceChecker(const RaceConfig& cfg) : cfg_(cfg)
{
    ensure(cfg_.gran != RaceGranularity::Off,
           "RaceChecker constructed with granularity off");
    ensure(cfg_.nprocs >= 1 && cfg_.nprocs <= kMaxProcs,
           "RaceChecker processor count out of range");
    if (cfg_.gran == RaceGranularity::Word) {
        shift_ = 2;
        granBytes_ = 4;
    } else {
        ensure(cfg_.lineSize >= 4 && isPow2(cfg_.lineSize),
               "race line size must be a power of two >= 4");
        shift_ = log2i(static_cast<std::uint64_t>(cfg_.lineSize));
        granBytes_ = cfg_.lineSize;
    }
    // C_p starts at {p -> 1}: a processor's first epoch must be
    // unknown to every other processor's clock (which starts at 0).
    procVC_.assign(std::size_t(cfg_.nprocs) * cfg_.nprocs, 0);
    for (int p = 0; p < cfg_.nprocs; ++p)
        procVC_[std::size_t(p) * cfg_.nprocs + p] = 1;
    slots_.resize(std::size_t(1) << 12);
}

RaceChecker::~RaceChecker() = default;

// --------------------------------------------------------------------
// Shadow table
// --------------------------------------------------------------------

void
RaceChecker::grow()
{
    std::vector<Slot> old;
    old.swap(slots_);
    slots_.resize(old.size() * 2);
    const std::size_t mask = slots_.size() - 1;
    for (const Slot& s : old) {
        if (s.key == 0)
            continue;
        std::size_t i = hashGranule(s.key) & mask;
        while (slots_[i].key != 0)
            i = (i + 1) & mask;
        slots_[i] = s;
    }
}

RaceChecker::VarState&
RaceChecker::shadow(Addr granule)
{
    if ((used_ + 1) * 10 >= slots_.size() * 7)
        grow();
    const Addr key = granule + 1;
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = hashGranule(key) & mask;
    while (slots_[i].key != 0) {
        if (slots_[i].key == key)
            return slots_[i].v;
        i = (i + 1) & mask;
    }
    slots_[i].key = key;
    ++used_;
    return slots_[i].v;
}

std::vector<std::uint32_t>&
RaceChecker::objClock(std::uint32_t obj)
{
    if (obj >= objVC_.size())
        objVC_.resize(obj + 1);
    std::vector<std::uint32_t>& L = objVC_[obj];
    if (L.empty())
        L.assign(cfg_.nprocs, 0);
    return L;
}

// --------------------------------------------------------------------
// Reporting
// --------------------------------------------------------------------

void
RaceChecker::report(Addr g, const RaceAccess& prev, const AccessRec& cur)
{
    ++dynamicRaces_;
    int a = prev.proc;
    int b = cur.proc;
    if (a > b)
        std::swap(a, b);
    // Sim addresses sit just above 2^32 (SharedHeap::kSimBase), so
    // granule indices fit far below 2^52 and the packed key is unique.
    const std::uint64_t key = (std::uint64_t(g) << 12) |
                              (std::uint64_t(a) << 6) |
                              std::uint64_t(b);
    const bool fresh = pairKeys_.insert(key).second;
    racyGranules_.insert(g);
    if (fresh && reports_.size() <
                     static_cast<std::size_t>(cfg_.maxReports)) {
        RaceReport rep;
        rep.granule = g << shift_;
        rep.bytes = granBytes_;
        rep.prev = prev;
        rep.cur.proc = cur.proc;
        rep.cur.type = cur.type;
        rep.cur.ltime = cur.ltime;
        reports_.push_back(rep);
    }
}

// --------------------------------------------------------------------
// FastTrack core
// --------------------------------------------------------------------

void
RaceChecker::checkGranule(Addr g, const AccessRec& rec)
{
    VarState& v = shadow(g);
    const int t = rec.proc;
    const int n = cfg_.nprocs;
    const std::uint32_t* C = &procVC_[std::size_t(t) * n];
    const std::uint64_t myEpoch = makeEpoch(t, C[t]);

    if (rec.type == AccessType::Read) {
        // Same-epoch read: nothing new since our last read here.
        if (v.rvc < 0 && v.r == myEpoch) {
            v.rLt = rec.ltime;
            return;
        }
        // Write-read conflict?
        if (v.w != 0) {
            const int wp = epochProc(v.w);
            if (wp != t && epochClk(v.w) > C[wp])
                report(g,
                       {static_cast<std::int16_t>(wp), AccessType::Write,
                        v.wLt},
                       rec);
        }
        if (v.rvc >= 0) {
            // Read-shared: just our slot in the read VC.
            ReadVC& rv = *readPool_[v.rvc];
            rv.clk[t] = C[t];
            rv.lt[t] = rec.ltime;
        } else if (v.r == 0 || epochProc(v.r) == t ||
                   epochClk(v.r) <= C[epochProc(v.r)]) {
            // No previous read, or it happens-before us: stay an epoch.
            v.r = myEpoch;
            v.rLt = rec.ltime;
        } else {
            // Two concurrent readers: promote to a read vector clock.
            int idx = -1;
            if (!readFree_.empty()) {
                idx = readFree_.back();
                readFree_.pop_back();
            } else {
                idx = static_cast<int>(readPool_.size());
                readPool_.push_back(std::make_unique<ReadVC>());
            }
            ReadVC& rv = *readPool_[idx];
            rv.clk.assign(n, 0);
            rv.lt.assign(n, 0);
            const int rp = epochProc(v.r);
            rv.clk[rp] = epochClk(v.r);
            rv.lt[rp] = v.rLt;
            rv.clk[t] = C[t];
            rv.lt[t] = rec.ltime;
            v.rvc = idx;
            v.r = 0;
        }
        return;
    }

    // Write.
    if (v.w == myEpoch) {
        v.wLt = rec.ltime;
        return;
    }
    if (v.w != 0) {
        const int wp = epochProc(v.w);
        if (wp != t && epochClk(v.w) > C[wp])
            report(g,
                   {static_cast<std::int16_t>(wp), AccessType::Write,
                    v.wLt},
                   rec);
    }
    if (v.rvc >= 0) {
        ReadVC& rv = *readPool_[v.rvc];
        for (int q = 0; q < n; ++q) {
            if (q != t && rv.clk[q] > C[q])
                report(g,
                       {static_cast<std::int16_t>(q), AccessType::Read,
                        rv.lt[q]},
                       rec);
        }
        readFree_.push_back(v.rvc);
        v.rvc = -1;
    } else if (v.r != 0) {
        const int rp = epochProc(v.r);
        if (rp != t && epochClk(v.r) > C[rp])
            report(g,
                   {static_cast<std::int16_t>(rp), AccessType::Read,
                    v.rLt},
                   rec);
    }
    // Update as if ordered, so one missing edge does not cascade into
    // a report per subsequent access (the pair-key dedup would absorb
    // them, but the dynamic count stays meaningful this way).
    v.w = myEpoch;
    v.wLt = rec.ltime;
    v.r = 0;
    v.rLt = 0;
}

void
RaceChecker::access(const AccessRec& r)
{
    if ((r.flags & AccessRec::kAtomic) != 0)
        return;  // annotated lock-free access; see file comment
    if (r.size <= 0)
        return;
    ensure(r.proc >= 0 && r.proc < cfg_.nprocs,
           "access from a processor outside the checker's range");
    const Addr first = r.addr >> shift_;
    const Addr last = (r.addr + Addr(r.size) - 1) >> shift_;
    for (Addr g = first; g <= last; ++g)
        checkGranule(g, r);
}

void
RaceChecker::sync(const SyncRec& r)
{
    ensure(r.proc >= 0 && r.proc < cfg_.nprocs,
           "sync edge from a processor outside the checker's range");
    const int t = r.proc;
    const int n = cfg_.nprocs;
    std::uint32_t* C = &procVC_[std::size_t(t) * n];
    std::vector<std::uint32_t>& L = objClock(r.obj);

    if (r.op == SyncOp::Release) {
        switch (r.prim) {
        case SyncPrim::Barrier: ++census_.barrierArrivals; break;
        case SyncPrim::Lock: ++census_.lockReleases; break;
        case SyncPrim::Flag: ++census_.flagSets; break;
        }
        // Join, not copy: a barrier object must accumulate *all*
        // arrivals before any departure acquires from it.
        for (int q = 0; q < n; ++q)
            L[q] = std::max(L[q], C[q]);
        ++C[t];  // own next epoch is unordered with this release
        return;
    }

    switch (r.prim) {
    case SyncPrim::Barrier: ++census_.barrierDepartures; break;
    case SyncPrim::Lock: ++census_.lockAcquires; break;
    case SyncPrim::Flag: ++census_.flagWaits; break;
    }
    const RaceFault kind = acquireFaultKind(r.prim);
    const std::uint64_t idx = edgeEver_[static_cast<int>(kind)]++;
    if (dropArmed_ && !dropFired_ && kind == dropKind_ && idx == dropAt_) {
        // Injected elision: the processor proceeds without the order
        // this edge would have given it.
        dropFired_ = true;
        droppedProc_ = t;
        return;
    }
    for (int q = 0; q < n; ++q)
        C[q] = std::max(C[q], L[q]);
}

void
RaceChecker::resetStats()
{
    // Keep clocks and shadow state: pre-window accesses still order
    // against (and can still race with) in-window ones.  Only the
    // tallies restart, mirroring MemSystem::resetStats.
    census_ = SyncCensus{};
    dynamicRaces_ = 0;
    reports_.clear();
    pairKeys_.clear();
    racyGranules_.clear();
}

// --------------------------------------------------------------------
// Injection
// --------------------------------------------------------------------

void
RaceChecker::dropEdge(RaceFault k, std::uint64_t occurrence)
{
    ensure(!dropArmed_, "RaceChecker supports one armed drop");
    dropArmed_ = true;
    dropKind_ = k;
    dropAt_ = occurrence;
}

std::uint64_t
RaceChecker::edgeCount(RaceFault k) const
{
    return edgeEver_[static_cast<int>(k)];
}

// --------------------------------------------------------------------
// Results
// --------------------------------------------------------------------

RaceOutcome
RaceChecker::outcome() const
{
    RaceOutcome o;
    o.gran = cfg_.gran;
    o.granuleBytes = granBytes_;
    o.races = pairKeys_.size();
    o.racyGranules = racyGranules_.size();
    o.dynamicRaces = dynamicRaces_;
    o.granulesTracked = used_;
    o.census = census_;
    o.reports = reports_;
    return o;
}

std::string
raceSummary(const RaceOutcome& o)
{
    char buf[256];
    std::string s;
    std::snprintf(buf, sizeof(buf),
                  "race check (%s, %d-byte granules): %" PRIu64
                  " conflict pair(s) on %" PRIu64 " granule(s), %" PRIu64
                  " dynamic conflict(s), %" PRIu64 " granules tracked\n",
                  raceGranularityName(o.gran), o.granuleBytes, o.races,
                  o.racyGranules, o.dynamicRaces, o.granulesTracked);
    s += buf;
    std::snprintf(buf, sizeof(buf),
                  "  sync edges: %" PRIu64 " barrier arrivals / %" PRIu64
                  " departures, %" PRIu64 " lock acquires / %" PRIu64
                  " releases, %" PRIu64 " flag sets / %" PRIu64
                  " waits\n",
                  o.census.barrierArrivals, o.census.barrierDepartures,
                  o.census.lockAcquires, o.census.lockReleases,
                  o.census.flagSets, o.census.flagWaits);
    s += buf;
    for (const RaceReport& r : o.reports) {
        std::snprintf(buf, sizeof(buf),
                      "  %s 0x%" PRIxPTR " [%d B]: P%d %s @t=%" PRIu64
                      " vs P%d %s @t=%" PRIu64 "\n",
                      o.gran == RaceGranularity::Line ? "line" : "word",
                      r.granule, r.bytes, r.prev.proc,
                      r.prev.type == AccessType::Write ? "write"
                                                       : "read",
                      r.prev.ltime, r.cur.proc,
                      r.cur.type == AccessType::Write ? "write"
                                                      : "read",
                      r.cur.ltime);
        s += buf;
    }
    if (o.reports.size() < o.races) {
        std::snprintf(buf, sizeof(buf),
                      "  ... %" PRIu64 " more conflict pair(s) not "
                      "shown\n",
                      o.races - o.reports.size());
        s += buf;
    }
    return s;
}

std::string
RaceChecker::summary() const
{
    return raceSummary(outcome());
}

} // namespace splash::sim
