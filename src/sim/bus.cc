#include "sim/bus.h"

#include "base/log.h"
#include "sim/cache.h"

namespace splash::sim {

const char*
interconnectName(Interconnect ic)
{
    switch (ic) {
      case Interconnect::Directory: return "directory";
      case Interconnect::Bus:       return "bus";
    }
    return "?";
}

bool
parseInterconnect(const std::string& s, Interconnect* out)
{
    for (int i = 0; i < kNumInterconnects; ++i) {
        auto ic = static_cast<Interconnect>(i);
        if (s == interconnectName(ic)) {
            *out = ic;
            return true;
        }
    }
    return false;
}

SnoopResult
snoopLine(const std::vector<Cache>& caches, const Protocol& proto,
          Addr lineAddr, ProcId requester)
{
    SnoopResult r;
    bool anyValid = false;
    for (ProcId q = 0; q < static_cast<ProcId>(caches.size()); ++q) {
        LineState st = caches[q].peek(lineAddr);
        if (st == LineState::Invalid)
            continue;
        anyValid = true;
        if (q != requester)
            ++r.othersValid;
        if (stateIn(proto.ownerStates, st)) {
            ensure(r.owner < 0, "two caches answered the snoop as owner");
            r.owner = q;
        }
    }
    r.group = r.owner >= 0 ? DirGroup::Dirty
              : anyValid   ? DirGroup::Clean
                           : DirGroup::Uncached;
    return r;
}

} // namespace splash::sim
