/**
 * @file
 * The multiprocessor memory-system simulator.
 *
 * Models the machine of the SPLASH-2 paper: a cache-coherent shared
 * address space multiprocessor with physically distributed memory, one
 * processor per node, a single-level cache per processor kept coherent
 * by a directory-based protocol, and replacement hints so sharer lists
 * stay exact.  Timing is PRAM (every access completes in one cycle),
 * so the simulator records *events and traffic*, never latency.
 *
 * The coherence state machine itself is data: MemSystem executes the
 * Transition table of the configured Protocol (sim/protocol.h; the
 * paper's Illinois MESI is the default).  Slow-path transactions are
 * (event, directory-group) lookups; hits are screened by the
 * protocol's precomputed silent-hit masks.
 *
 * Traffic model (all control packets and data headers are
 * `overheadBytes` long, data transfers are one line):
 *
 *  - Every miss sends a request packet to the line's home.
 *  - Clean lines are supplied by home memory (local data if the
 *    requester is the home, else remote data + header).
 *  - Dirty lines are supplied cache-to-cache: intervention packet to
 *    the owner, data reply to the requester, and -- where the protocol
 *    says memory picks up the line (MESI/MSI read of a dirty line) --
 *    a sharing writeback to the home.
 *  - Write transactions send an invalidation (or, under Dragon, a
 *    word update) to each other sharer and collect one ack each.
 *  - Replacing a clean line sends a replacement hint to the home;
 *    replacing a line in one of the protocol's owner states (M, and
 *    O/Sm where they exist) writes the line back.
 *
 * Under Interconnect::Bus (sim/bus.h) the same Transition tables are
 * executed against a snoopy broadcast bus instead: the combined snoop
 * response replaces the directory consult, one broadcast replaces the
 * per-sharer invalidation/ack packets, and bus-occupancy cycle charges
 * replace the packet/byte decomposition above.
 */
#ifndef SPLASH2_SIM_MEMSYS_H
#define SPLASH2_SIM_MEMSYS_H

#include <memory>
#include <unordered_map>
#include <vector>

#include "base/log.h"
#include "base/types.h"
#include "sim/bus.h"
#include "sim/cache.h"
#include "sim/classify.h"
#include "sim/config.h"
#include "sim/directory.h"
#include "sim/stats.h"

namespace splash::sim {

class CoherenceChecker;  // sim/check.h
class FaultInjector;     // sim/faultinject.h

class MemSystem
{
  public:
    /** @param homes maps lines to home nodes; if null, lines are
     *  interleaved across nodes at line granularity. */
    explicit MemSystem(const MachineConfig& cfg,
                       const HomeResolver* homes = nullptr);

    /** Issue one memory reference from processor @p p.  References that
     *  straddle a line boundary are split per line (each affected line
     *  goes through the full protocol) but count as a single read or
     *  write.
     *
     *  Inlined hit fast path: a read hit in any valid state and a
     *  write hit in one of the protocol's silent-hit states touch only
     *  the requester's tag array (LRU + the protocol's silent write
     *  promotion), the word-version vector, and the per-processor
     *  counters.  Directory lookup, home resolution, and traffic
     *  accounting happen only on the slow paths; the directory's dirty
     *  bit is reconciled lazily (see reconcileDir). */
    void
    access(ProcId p, Addr addr, int size, AccessType type)
    {
        ensure(p >= 0 && p < cfg_.nprocs, "processor id out of range");
        Addr line = lineOf(addr);
        if (lineOf(addr + size - 1) == line) [[likely]] {
            if (type == AccessType::Read) {
                ++stats_[p].reads;
                if (caches_[p].probeFor(line, AccessType::Read) !=
                    LineState::Invalid) [[likely]]
                    return;  // read hit: tag array only
                readMiss(p, line, addr, size);
            } else {
                ++stats_[p].writes;
                LineState st =
                    caches_[p].probeFor(line, AccessType::Write);
                if (stateIn(writeSilent_, st)) [[likely]] {
                    // Silent write hit; any in-place promotion (the
                    // Illinois E->M) was applied by the cache,
                    // directory reconciliation deferred.
                    classifier_.recordWrite(addr, size);
                    return;
                }
                writeSlow(p, line, addr, size, st);
            }
            return;
        }
        accessMulti(p, addr, size, type);
    }

    const MachineConfig& config() const { return cfg_; }

    const MemStats& procStats(ProcId p) const { return stats_[p]; }

    /** Aggregate statistics over all processors. */
    MemStats total() const;

    /** Zero all statistics while preserving cache, directory, and
     *  classification state (for measuring past cold start). */
    void resetStats();

    // --- introspection for tests -------------------------------------
    LineState lineState(ProcId p, Addr addr) const;
    const DirEntry* dirEntry(Addr addr) const;

    /** Check protocol invariants over the whole directory (at most one
     *  Modified copy, sharer lists consistent with caches, Exclusive
     *  implies sole sharer). Returns true when consistent.  Convenience
     *  wrapper over CoherenceChecker (sim/check.h). */
    bool checkCoherenceInvariants() const;

    /** Run the full CoherenceChecker sweep every @p period slow-path
     *  transactions (0 disables sampling).  Violations panic with a
     *  rule-by-rule report.  Debug builds additionally validate the
     *  touched line after every slow-path transaction regardless of
     *  the period.  The checker only reads state, so enabling it
     *  cannot change any statistic. */
    void setCheckPeriod(std::uint64_t period) { checkPeriod_ = period; }
    std::uint64_t checkPeriod() const { return checkPeriod_; }

  private:
    friend class CoherenceChecker;
    friend class FaultInjector;
    /** Rare line-straddling reference: split per line, count once. */
    void accessMulti(ProcId p, Addr addr, int size, AccessType type);
    /** Slow paths (counters for the reference already bumped). */
    void readMiss(ProcId p, Addr lineAddr, Addr addr, int size);
    void writeSlow(ProcId p, Addr lineAddr, Addr addr, int size,
                   LineState st);
    /** The fast path promotes E->M without consulting the directory;
     *  bring the directory entry up to date before it is read. */
    void reconcileDir(Addr lineAddr, DirEntry& d);
    /** Execute the protocol's Transition for @p ev on @p lineAddr,
     *  dispatching on the configured interconnect.  Returns the
     *  executed cell (for the debug traffic asserts). */
    const Transition&
    runTransition(ProcId p, Addr lineAddr, ProtoEvent ev, MissType mt)
    {
        return cfg_.interconnect == Interconnect::Bus
                   ? runBusTransition(p, lineAddr, ev, mt)
                   : runDirTransition(p, lineAddr, ev, mt);
    }
    /** Directory organization: request packet to the home, directory
     *  consult, per-sharer invalidation/update/ack packets,
     *  directory finalization. */
    const Transition& runDirTransition(ProcId p, Addr lineAddr,
                                       ProtoEvent ev, MissType mt);
    /** Bus organization: broadcast address phase, combined snoop
     *  response in place of the directory consult, occupancy charges
     *  in place of the packet decomposition.  No sharer vectors, no
     *  homes, no replacement hints, no reconciliation (snooping sees
     *  silent E->M promotions directly). */
    const Transition& runBusTransition(ProcId p, Addr lineAddr,
                                       ProtoEvent ev, MissType mt);
    void installLine(ProcId p, Addr lineAddr, LineState st);
    void evictVictim(ProcId p, const Cache::Victim& v);

    /** Control packet src -> dst: remote overhead unless src == dst. */
    void packet(ProcId p, ProcId src, ProcId dst);
    /** One-line data transfer src -> dst for a miss of type @p mt. */
    void dataTransfer(ProcId p, ProcId src, ProcId dst, MissType mt);
    /** Dirty-line writeback src -> home. */
    void writebackTransfer(ProcId p, ProcId src, ProcId home);

    // --- bus-occupancy accounting (Interconnect::Bus) ----------------
    /** Address phase of one broadcast transaction. */
    void busTransaction(ProcId p);
    /** Line data phase (owner or memory drives the wires). */
    void busLineTransfer(ProcId p, MissType mt);
    /** Victim writeback: its own transaction (address + line data). */
    void busWriteback(ProcId p);
    /** One Dragon word-update broadcast (reaches every holder). */
    void busUpdate(ProcId p);

    ProcId homeOf(Addr lineAddr) const;
    Addr lineOf(Addr a) const { return alignDown(a, cfg_.cache.lineSize); }

    /** Invariant-checker hook, called at the end of every slow-path
     *  transaction with the line it touched. */
    void maybeCheck(Addr lineAddr);

    MachineConfig cfg_;
    /** Registered protocol descriptor (static lifetime). */
    const Protocol& proto_;
    /** Bus-occupancy charge table (Interconnect::Bus only). */
    BusModel bus_;
    /** proto_.silentHit[Write], cached for the inlined fast path. */
    std::uint8_t writeSilent_;
    const HomeResolver* homes_;
    InterleavedHome defaultHomes_;
    std::vector<Cache> caches_;
    std::unordered_map<Addr, DirEntry> dir_;
    MissClassifier classifier_;
    std::vector<MemStats> stats_;

    /** Always-on transfer counts backing the checker's global traffic-
     *  conservation rule: every byte in the per-processor data counters
     *  must come from exactly one of these line movements. */
    std::uint64_t xferLines_ = 0;  ///< line transfers since reset
    std::uint64_t wbLines_ = 0;    ///< writebacks since reset
    std::uint64_t updateTxns_ = 0; ///< bus word-update broadcasts since reset

    std::uint64_t checkPeriod_ = 0;  ///< full sweep every N txns (0 = off)
    std::uint64_t sinceCheck_ = 0;   ///< txns since the last full sweep

#ifndef NDEBUG
    /** Traffic-conservation invariant, checked per line transaction in
     *  debug builds: a miss moves exactly one line of data, at most two
     *  writebacks accompany it (victim + sharing), and the byte
     *  counters grow by lineSize * (transfers + writebacks) exactly.
     *  Guards the fast path against silently dropping accounting. */
    struct TxCheck
    {
        std::uint64_t bytesBefore = 0;
        std::uint64_t busCyclesBefore = 0;
        int dataTransfers = 0;
        int writebacks = 0;
        int updates = 0;
    };
    TxCheck tx_;
    std::uint64_t dataBytes(ProcId p) const;
    void txBegin(ProcId p);
    void txEnd(ProcId p, int expectData);
#endif
};

} // namespace splash::sim

#endif // SPLASH2_SIM_MEMSYS_H
