/**
 * @file
 * Single-pass multi-configuration cache sweep.
 *
 * Figure 3 of the paper needs miss rate as a function of cache size
 * (1 KB ... 1 MB) for 1/2/4-way and fully-associative caches -- 34
 * configurations per processor.  Simulating them one at a time would
 * require 34 executions per application, so this component simulates
 * all of them simultaneously in a single pass over the reference
 * stream:
 *
 *  - Each finite-associativity configuration keeps only a tag array.
 *  - Coherence is modeled with lazy version stamps: a per-line global
 *    version is bumped whenever a write must invalidate other copies
 *    (writer changed, or somebody else read since the last write).  A
 *    cached tag whose stored version is stale counts as a coherence
 *    miss in *every* configuration -- which is exact, because
 *    invalidations are independent of cache geometry.
 *  - Fully-associative LRU caches of every size are captured at once
 *    with a Mattson stack-distance profile (Fenwick-tree
 *    implementation with periodic timestamp compaction): an access at
 *    stack distance d hits in every capacity >= d lines.
 *
 * Upgrades (a processor writing a Shared line it still holds) are
 * hits, matching the full MemSystem's accounting.
 */
#ifndef SPLASH2_SIM_SWEEP_H
#define SPLASH2_SIM_SWEEP_H

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "base/types.h"

namespace splash::sim {

/** Parameters of a sweep. */
struct SweepConfig
{
    int nprocs = 32;
    int lineSize = 64;
    /** Cache capacities in bytes (powers of two). */
    std::vector<std::uint64_t> sizes = {
        1u << 10, 1u << 11, 1u << 12, 1u << 13, 1u << 14, 1u << 15,
        1u << 16, 1u << 17, 1u << 18, 1u << 19, 1u << 20};
    /** Finite associativities to simulate (full is always included). */
    std::vector<int> assocs = {1, 2, 4};
};

class CacheSweep
{
  public:
    explicit CacheSweep(const SweepConfig& cfg);

    /** Issue one reference from processor @p p. */
    void access(ProcId p, Addr addr, int size, AccessType type);

    const SweepConfig& config() const { return cfg_; }

    /** Total references issued (line-spanning references count once per
     *  line). */
    std::uint64_t accesses() const;

    /** Aggregate miss rate at capacity @p size bytes and associativity
     *  @p assoc (0 = fully associative). */
    double missRate(std::uint64_t size, int assoc) const;

    /** Aggregate misses at the given operating point. */
    std::uint64_t misses(std::uint64_t size, int assoc) const;

    /** Zero miss/access counters while keeping cache contents (for
     *  measuring past cold start). */
    void resetStats();

  private:
    struct Coh
    {
        std::uint32_t version = 0;
        ProcId lastWriter = -1;
        bool readSince = false;
    };

    struct TagEntry
    {
        Addr tag = 0;
        std::uint32_t version = 0;
        std::uint32_t lastUse = 0;
        bool valid = false;
    };

    /** One finite-associativity tag array. */
    struct TagArray
    {
        int ways = 0;
        std::uint64_t setMask = 0;
        std::uint32_t useClock = 0;
        std::vector<TagEntry> entries;
        std::uint64_t misses = 0;
    };

    /** Mattson stack-distance profiler for one processor. */
    struct StackProfiler
    {
        struct LineInfo
        {
            std::uint64_t lastTime = 0;
            std::uint32_t version = 0;
        };
        std::unordered_map<Addr, LineInfo> lines;
        std::vector<std::uint32_t> bit;   // Fenwick tree over timestamps
        std::uint64_t now = 0;
        std::vector<std::uint64_t> hist;  // distance histogram (in lines)
        std::uint64_t coldOrStale = 0;
        std::uint64_t maxLines = 0;

        void init(std::uint64_t max_lines);
        void bitAdd(std::uint64_t i, int delta);
        std::uint64_t bitSum(std::uint64_t i) const;
        void compact();
        /** Returns true if the access hits at *some* capacity (i.e. it
         *  was resident and version-current). */
        void touch(Addr line, std::uint32_t oldVer, std::uint32_t newVer,
                   bool isWrite);
    };

    void accessLine(ProcId p, Addr lineAddr, AccessType type);

    SweepConfig cfg_;
    int lineShift_;
    std::unordered_map<Addr, Coh> coh_;
    /** arrays_[p][configIndex] */
    std::vector<std::vector<TagArray>> arrays_;
    std::vector<StackProfiler> stacks_;
    std::vector<std::uint64_t> accesses_;
};

} // namespace splash::sim

#endif // SPLASH2_SIM_SWEEP_H
