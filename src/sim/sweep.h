/**
 * @file
 * Single-pass multi-configuration cache sweep.
 *
 * Figure 3 of the paper needs miss rate as a function of cache size
 * (1 KB ... 1 MB) for 1/2/4-way and fully-associative caches -- 34
 * configurations per processor.  Simulating them one at a time would
 * require 34 executions per application, so this component simulates
 * all of them simultaneously in a single pass over the reference
 * stream:
 *
 *  - Each finite-associativity configuration keeps only a tag array.
 *  - Coherence is modeled with lazy version stamps: a per-line global
 *    version is bumped whenever a write must invalidate other copies
 *    (writer changed, or somebody else read since the last write).  A
 *    cached tag whose stored version is stale counts as a coherence
 *    miss in *every* configuration -- which is exact, because
 *    invalidations are independent of cache geometry.
 *  - Fully-associative LRU caches of every size are captured at once
 *    with a Mattson stack-distance profile (Fenwick-tree
 *    implementation with periodic timestamp compaction; the tree's
 *    capacity adapts to the live line count so it stays cache
 *    resident).
 *
 * Upgrades (a processor writing a Shared line it still holds) are
 * hits, matching the full MemSystem's accounting.
 *
 * ParallelSweep exploits the same independence for host parallelism:
 * the version-stamp update is the only cross-configuration state, so
 * once each reference is annotated with its (before, after) version
 * pair at capture time, every tag array and every stack profiler can
 * be replayed independently.  References are buffered into chunks and
 * replayed across a worker pool, each worker owning a disjoint set of
 * configurations/stacks -- results are bit-identical to the serial
 * sweep for any worker count.
 */
#ifndef SPLASH2_SIM_SWEEP_H
#define SPLASH2_SIM_SWEEP_H

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "base/types.h"
#include "sim/grid.h"
#include "sim/trace.h"

namespace splash::sim {

/** Parameters of a sweep; the defaults are the Figure-3 grid
 *  (sim/grid.h). */
struct SweepConfig
{
    int nprocs = 32;
    int lineSize = 64;
    /** Cache capacities in bytes (powers of two). */
    std::vector<std::uint64_t> sizes = fig3Sizes();
    /** Finite associativities to simulate (full is always included). */
    std::vector<int> assocs = fig3Assocs();
};

/** Version-stamp lazy coherence: a per-line global version is bumped
 *  whenever a write must invalidate other copies (writer changed, or
 *  somebody else read since the last write).  A copy stored at a now
 *  stale version has been coherence-invalidated -- at *every* cache
 *  geometry, because invalidations are independent of capacity and
 *  associativity.  The single piece of cross-configuration state of a
 *  sweep; shared by the serial CacheSweep, ParallelSweep's capture,
 *  and the reuse-distance profiler (sim/reusedist.h) so the three can
 *  never drift. */
class VersionCoherence
{
  public:
    /** Advance the state of @p lineAddr for one access by @p p and
     *  report the (before, after) versions. */
    void advance(Addr lineAddr, ProcId p, bool isWrite,
                 std::uint64_t* oldVer, std::uint64_t* newVer);

    /** Current version of @p lineAddr (0 until the first bump). */
    std::uint64_t
    version(Addr lineAddr) const
    {
        auto it = map_.find(lineAddr);
        return it == map_.end() ? 0 : it->second.version;
    }

    /** True when a copy of @p lineAddr stored at @p ver has been
     *  invalidated by a later conflicting write. */
    bool
    stale(Addr lineAddr, std::uint64_t ver) const
    {
        return version(lineAddr) != ver;
    }

  private:
    struct Line
    {
        std::uint64_t version = 0;
        ProcId lastWriter = -1;
        bool readSince = false;
    };
    std::unordered_map<Addr, Line> map_;
};

/** Mattson LRU stack-distance core for one processor's line stream
 *  (Fenwick-tree implementation with periodic timestamp compaction;
 *  the tree's capacity adapts to the live line count so it stays
 *  cache resident).  Consumers decide what to do with the distance:
 *  the exact sweep buckets it into a per-line histogram, the
 *  reuse-distance profiler into log2 bins. */
class StackDistance
{
  public:
    /** touch() outcomes that are not distances: kCold is a first
     *  touch, kStale a copy whose stored version was invalidated by
     *  coherence -- both miss at every capacity. */
    static constexpr std::uint64_t kCold = ~std::uint64_t{0};
    static constexpr std::uint64_t kStale = ~std::uint64_t{0} - 1;

    StackDistance();

    /** Reference @p line at the version transition (@p oldVer ->
     *  @p newVer) reported by VersionCoherence::advance.  Returns
     *  kCold, kStale, or the LRU stack distance d in lines: d
     *  distinct lines were touched since the previous reference, so
     *  the line hits in a fully associative LRU cache of capacity
     *  >= d + 1 lines. */
    std::uint64_t touch(Addr line, std::uint64_t oldVer,
                        std::uint64_t newVer, bool isWrite);

  private:
    struct LineInfo
    {
        std::uint64_t lastTime = 0;
        std::uint64_t version = 0;
    };

    void bitAdd(std::uint64_t i, int delta);
    std::uint64_t bitSum(std::uint64_t i) const;
    void compact();

    std::unordered_map<Addr, LineInfo> lines_;
    std::vector<std::uint32_t> bit_;  // Fenwick tree over timestamps
    std::uint64_t timeCap_ = 0;       // current tree capacity
    std::uint64_t now_ = 0;
};

class CacheSweep
{
  public:
    explicit CacheSweep(const SweepConfig& cfg);

    /** Issue one reference from processor @p p. */
    void access(ProcId p, Addr addr, int size, AccessType type);

    const SweepConfig& config() const { return cfg_; }

    /** Total references issued (line-spanning references count once per
     *  line). */
    std::uint64_t accesses() const;

    /** Aggregate miss rate at capacity @p size bytes and associativity
     *  @p assoc (0 = fully associative). */
    double missRate(std::uint64_t size, int assoc) const;

    /** Aggregate misses at the given operating point. */
    std::uint64_t misses(std::uint64_t size, int assoc) const;

    /** Zero miss/access counters while keeping cache contents (for
     *  measuring past cold start). */
    void resetStats();

  private:
    friend class ParallelSweep;

    /** Version stamps and LRU clocks are 64-bit: they advance with the
     *  reference count, which exceeds 2^32 at large problem scales. */
    struct TagEntry
    {
        Addr tag = 0;
        std::uint64_t version = 0;
        std::uint64_t lastUse = 0;
        bool valid = false;
    };

    /** One finite-associativity tag array. */
    struct TagArray
    {
        int ways = 0;
        std::uint64_t setMask = 0;
        std::uint64_t useClock = 0;
        std::vector<TagEntry> entries;
        std::uint64_t misses = 0;
    };

    /** Per-processor stack profile: the shared StackDistance core
     *  plus the exact sweep's per-line distance histogram. */
    struct StackProfiler
    {
        StackDistance core;
        std::vector<std::uint64_t> hist;  // distance histogram (in lines)
        std::uint64_t coldOrStale = 0;
        std::uint64_t maxLines = 0;

        void init(std::uint64_t max_lines);
        void touch(Addr line, std::uint64_t oldVer, std::uint64_t newVer,
                   bool isWrite);
    };

    /** Replay one annotated line reference into one tag array.
     *  @p stale decides whether a resident victim candidate has been
     *  coherence-invalidated: called with (tag, storedVersion). */
    template <typename StaleFn>
    static void applyTagArray(TagArray& ta, Addr lineAddr,
                              std::uint64_t lineId, std::uint64_t oldVer,
                              std::uint64_t newVer, bool isWrite,
                              StaleFn&& stale);

    void accessLine(ProcId p, Addr lineAddr, AccessType type);

    SweepConfig cfg_;
    int lineShift_;
    VersionCoherence coh_;
    /** arrays_[p][configIndex] */
    std::vector<std::vector<TagArray>> arrays_;
    std::vector<StackProfiler> stacks_;
    std::vector<std::uint64_t> accesses_;
};

/** Captures the reference stream into annotated chunks and replays
 *  them into a CacheSweep across a host worker pool.
 *
 *  Work partition: each worker owns a disjoint subset of the
 *  (configuration x all-processors) tag-array columns and of the
 *  per-processor stack profilers, assigned greedily by estimated cost.
 *  Victim selection needs the version of arbitrary *other* lines at
 *  replay time, so each worker maintains a sparse line -> version map
 *  updated only when a record's annotation shows a version bump --
 *  exact, because a line absent from the map has never been bumped
 *  (version 0).
 *
 *  Feed it via access() (it is a RefSink, so it can be attached to an
 *  Env with attachSink); call flush() -- or destroy it, or
 *  resetStats() -- before querying the underlying sweep.  Results are
 *  bit-identical to the serial CacheSweep for any thread count.
 *
 *  While a ParallelSweep is attached, drive the underlying sweep only
 *  through it: direct CacheSweep::access calls would reorder the
 *  stream relative to buffered records. */
class ParallelSweep final : public RefSink
{
  public:
    /** @param threads worker threads; 0 = hardware concurrency, 1 =
     *  replay inline on the feeding thread (no pool). */
    explicit ParallelSweep(CacheSweep& sweep, int threads,
                           std::size_t chunkRecords = std::size_t(1)
                                                      << 16);
    ~ParallelSweep() override;

    ParallelSweep(const ParallelSweep&) = delete;
    ParallelSweep& operator=(const ParallelSweep&) = delete;

    void access(const AccessRec& r) override;
    void resetStats() override;

    /** Replay all buffered records; the sweep is up to date after. */
    void flush();

    /** Worker threads in the pool (0 when replaying inline). */
    int threads() const { return static_cast<int>(workers_.size()); }

  private:
    /** One captured line reference, annotated at capture time with the
     *  version-stamp transition so replay needs no shared state. */
    struct Rec
    {
        Addr line;
        std::uint64_t oldVer;
        std::uint64_t newVer;
        std::int16_t proc;
        std::uint8_t write;
    };

    struct Worker
    {
        std::vector<int> cfgCols;      ///< owned configuration indices
        std::vector<char> stackMine;   ///< [proc] -> owns that stack
        /** Line versions as of the record being replayed (sparse:
         *  only ever-bumped lines appear; absent means version 0). */
        std::unordered_map<Addr, std::uint64_t> verMap;
        std::thread th;
    };

    void captureLine(ProcId p, Addr lineAddr, bool isWrite);
    void replayChunk(Worker& w, const Rec* recs, std::size_t n);
    void workerLoop(Worker& w);

    CacheSweep& sweep_;
    std::size_t chunkRecords_;
    std::vector<Rec> buf_;

    /** Inline-replay state (threads == 1): reuses Worker bookkeeping
     *  with every column owned. */
    Worker inline_;

    std::vector<Worker> workers_;
    std::mutex mu_;
    std::condition_variable cvWork_;
    std::condition_variable cvDone_;
    const Rec* batch_ = nullptr;
    std::size_t batchN_ = 0;
    std::uint64_t gen_ = 0;
    int pending_ = 0;
    bool stop_ = false;
};

} // namespace splash::sim

#endif // SPLASH2_SIM_SWEEP_H
