#include "sim/sweep.h"

#include <algorithm>

#include "base/log.h"

namespace splash::sim {

namespace {
/** Timestamp capacity of the Fenwick tree before compaction. */
constexpr std::uint64_t kTimeCapacity = 1u << 21;
} // namespace

CacheSweep::CacheSweep(const SweepConfig& cfg)
    : cfg_(cfg), lineShift_(log2i(cfg.lineSize)),
      arrays_(cfg.nprocs), stacks_(cfg.nprocs), accesses_(cfg.nprocs, 0)
{
    if (!isPow2(cfg_.lineSize))
        fatal("sweep line size must be a power of two");
    std::uint64_t max_lines = 0;
    for (auto s : cfg_.sizes) {
        if (!isPow2(s) || s < static_cast<std::uint64_t>(cfg_.lineSize))
            fatal("sweep cache size must be a power of two >= line size");
        max_lines = std::max(max_lines, s >> lineShift_);
    }
    for (int p = 0; p < cfg_.nprocs; ++p) {
        auto& cfgs = arrays_[p];
        for (auto size : cfg_.sizes) {
            for (int assoc : cfg_.assocs) {
                TagArray ta;
                std::uint64_t lines = size >> lineShift_;
                ta.ways = std::min<std::uint64_t>(assoc, lines);
                ta.setMask = lines / ta.ways - 1;
                ta.entries.resize(lines);
                cfgs.push_back(std::move(ta));
            }
        }
        stacks_[p].init(max_lines);
    }
}

void
CacheSweep::StackProfiler::init(std::uint64_t max_lines)
{
    maxLines = max_lines;
    bit.assign(kTimeCapacity + 1, 0);
    hist.assign(max_lines + 2, 0);
}

void
CacheSweep::StackProfiler::bitAdd(std::uint64_t i, int delta)
{
    for (; i <= kTimeCapacity; i += i & (~i + 1))
        bit[i] += delta;
}

std::uint64_t
CacheSweep::StackProfiler::bitSum(std::uint64_t i) const
{
    std::uint64_t s = 0;
    for (; i > 0; i -= i & (~i + 1))
        s += bit[i];
    return s;
}

void
CacheSweep::StackProfiler::compact()
{
    // Renumber live lines 1..k in lastTime order and rebuild the tree.
    std::vector<std::pair<std::uint64_t, Addr>> live;
    live.reserve(lines.size());
    for (const auto& [addr, info] : lines)
        live.emplace_back(info.lastTime, addr);
    std::sort(live.begin(), live.end());
    std::fill(bit.begin(), bit.end(), 0);
    std::uint64_t t = 0;
    for (auto& [time, addr] : live) {
        lines[addr].lastTime = ++t;
        bitAdd(t, 1);
    }
    now = t;
}

void
CacheSweep::StackProfiler::touch(Addr line, std::uint32_t oldVer,
                                 std::uint32_t newVer, bool isWrite)
{
    if (now + 1 > kTimeCapacity)
        compact();
    ++now;
    auto it = lines.find(line);
    if (it == lines.end()) {
        ++coldOrStale;
        bitAdd(now, 1);
        lines[line] = {now, isWrite ? newVer : oldVer};
        return;
    }
    LineInfo& info = it->second;
    if (info.version != oldVer) {
        // Coherence-invalidated at every capacity.
        ++coldOrStale;
    } else {
        std::uint64_t d = bitSum(now - 1) - bitSum(info.lastTime);
        // Distance d lines were touched in between; the line hits at
        // capacity >= d + 1 lines.
        std::uint64_t bucket = std::min(d + 1, maxLines + 1);
        ++hist[bucket];
    }
    bitAdd(info.lastTime, -1);
    bitAdd(now, 1);
    info.lastTime = now;
    info.version = isWrite ? newVer : oldVer;
}

void
CacheSweep::access(ProcId p, Addr addr, int size, AccessType type)
{
    Addr first = alignDown(addr, cfg_.lineSize);
    Addr last = alignDown(addr + size - 1, cfg_.lineSize);
    for (Addr line = first; line <= last; line += cfg_.lineSize)
        accessLine(p, line, type);
}

void
CacheSweep::accessLine(ProcId p, Addr lineAddr, AccessType type)
{
    ++accesses_[p];

    Coh& c = coh_[lineAddr];
    std::uint32_t old_ver = c.version;
    if (type == AccessType::Write) {
        if (c.lastWriter != p || c.readSince) {
            ++c.version;
            c.lastWriter = p;
            c.readSince = false;
        }
    } else if (c.lastWriter != p) {
        c.readSince = true;
    }
    std::uint32_t new_ver = c.version;
    bool is_write = type == AccessType::Write;

    std::uint64_t line_id = lineAddr >> lineShift_;
    for (auto& ta : arrays_[p]) {
        std::uint64_t set = line_id & ta.setMask;
        TagEntry* base = &ta.entries[set * ta.ways];
        TagEntry* found = nullptr;
        for (int w = 0; w < ta.ways; ++w) {
            TagEntry& e = base[w];
            if (e.valid && e.tag == lineAddr) {
                found = &e;
                break;
            }
        }
        if (found && found->version == old_ver) {
            found->lastUse = ++ta.useClock;
            if (is_write)
                found->version = new_ver;
            continue;
        }
        ++ta.misses;
        TagEntry* slot = found;
        if (!slot) {
            // Victim preference mirrors the eager-invalidation
            // MemSystem: an empty way first, then a way whose line has
            // been invalidated by coherence (stale version), then LRU.
            TagEntry* lru = base;
            for (int w = 0; w < ta.ways && !slot; ++w) {
                TagEntry& e = base[w];
                if (!e.valid) {
                    slot = &e;
                } else {
                    auto cit = coh_.find(e.tag);
                    if (cit != coh_.end() &&
                        cit->second.version != e.version) {
                        slot = &e;
                    }
                }
                if (e.valid && e.lastUse < lru->lastUse)
                    lru = &e;
            }
            if (!slot)
                slot = lru;
        }
        slot->valid = true;
        slot->tag = lineAddr;
        slot->version = is_write ? new_ver : old_ver;
        slot->lastUse = ++ta.useClock;
    }

    stacks_[p].touch(lineAddr, old_ver, new_ver, is_write);
}

void
CacheSweep::resetStats()
{
    std::fill(accesses_.begin(), accesses_.end(), 0);
    for (auto& cfgs : arrays_)
        for (auto& ta : cfgs)
            ta.misses = 0;
    for (auto& st : stacks_) {
        std::fill(st.hist.begin(), st.hist.end(), 0);
        st.coldOrStale = 0;
    }
}

std::uint64_t
CacheSweep::accesses() const
{
    std::uint64_t t = 0;
    for (auto a : accesses_)
        t += a;
    return t;
}

std::uint64_t
CacheSweep::misses(std::uint64_t size, int assoc) const
{
    if (assoc == 0) {
        // Fully associative: from the stack-distance histograms.
        std::uint64_t cap_lines = size >> lineShift_;
        std::uint64_t m = 0;
        for (const auto& st : stacks_) {
            m += st.coldOrStale;
            for (std::uint64_t d = cap_lines + 1; d < st.hist.size(); ++d)
                m += st.hist[d];
        }
        return m;
    }
    // Finite associativity: locate the config index.
    int size_idx = -1, assoc_idx = -1;
    for (size_t i = 0; i < cfg_.sizes.size(); ++i)
        if (cfg_.sizes[i] == size)
            size_idx = static_cast<int>(i);
    for (size_t i = 0; i < cfg_.assocs.size(); ++i)
        if (cfg_.assocs[i] == assoc)
            assoc_idx = static_cast<int>(i);
    if (size_idx < 0 || assoc_idx < 0)
        fatal("requested sweep operating point was not simulated");
    int idx = size_idx * static_cast<int>(cfg_.assocs.size()) + assoc_idx;
    std::uint64_t m = 0;
    for (const auto& cfgs : arrays_)
        m += cfgs[idx].misses;
    return m;
}

double
CacheSweep::missRate(std::uint64_t size, int assoc) const
{
    std::uint64_t a = accesses();
    return a ? double(misses(size, assoc)) / double(a) : 0.0;
}

} // namespace splash::sim
