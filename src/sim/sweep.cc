#include "sim/sweep.h"

#include <algorithm>

#include "base/log.h"

namespace splash::sim {

namespace {
/** Initial and minimum Fenwick-tree capacity.  Compaction resizes the
 *  tree to ~4x the live line count, so the hot random-access array
 *  stays cache resident instead of spanning a fixed 2^21 slots. */
constexpr std::uint64_t kTimeCapMin = 1u << 16;
} // namespace

CacheSweep::CacheSweep(const SweepConfig& cfg)
    : cfg_(cfg), lineShift_(log2i(cfg.lineSize)),
      arrays_(cfg.nprocs), stacks_(cfg.nprocs), accesses_(cfg.nprocs, 0)
{
    if (!isPow2(cfg_.lineSize))
        fatal("sweep line size must be a power of two");
    std::uint64_t max_lines = 0;
    for (auto s : cfg_.sizes) {
        if (!isPow2(s) || s < static_cast<std::uint64_t>(cfg_.lineSize))
            fatal("sweep cache size must be a power of two >= line size");
        max_lines = std::max(max_lines, s >> lineShift_);
    }
    for (int p = 0; p < cfg_.nprocs; ++p) {
        auto& cfgs = arrays_[p];
        for (auto size : cfg_.sizes) {
            for (int assoc : cfg_.assocs) {
                TagArray ta;
                std::uint64_t lines = size >> lineShift_;
                ta.ways = std::min<std::uint64_t>(assoc, lines);
                ta.setMask = lines / ta.ways - 1;
                ta.entries.resize(lines);
                cfgs.push_back(std::move(ta));
            }
        }
        stacks_[p].init(max_lines);
    }
}

StackDistance::StackDistance()
{
    timeCap_ = kTimeCapMin;
    bit_.assign(timeCap_ + 1, 0);
}

void
StackDistance::bitAdd(std::uint64_t i, int delta)
{
    for (; i <= timeCap_; i += i & (~i + 1))
        bit_[i] += delta;
}

std::uint64_t
StackDistance::bitSum(std::uint64_t i) const
{
    std::uint64_t s = 0;
    for (; i > 0; i -= i & (~i + 1))
        s += bit_[i];
    return s;
}

void
StackDistance::compact()
{
    // Renumber live lines 1..k in lastTime order and rebuild the tree,
    // sized to ~4x the live set so timestamps have headroom before the
    // next compaction.  Relative order is preserved, so every stack
    // distance computed afterwards is unchanged.
    std::vector<std::pair<std::uint64_t, Addr>> live;
    live.reserve(lines_.size());
    for (const auto& [addr, info] : lines_)
        live.emplace_back(info.lastTime, addr);
    std::sort(live.begin(), live.end());
    std::uint64_t want = kTimeCapMin;
    while (want < 4 * (live.size() + 1))
        want <<= 1;
    timeCap_ = want;
    bit_.assign(timeCap_ + 1, 0);
    std::uint64_t t = 0;
    for (auto& [time, addr] : live) {
        (void)time;
        lines_[addr].lastTime = ++t;
        bitAdd(t, 1);
    }
    now_ = t;
}

std::uint64_t
StackDistance::touch(Addr line, std::uint64_t oldVer,
                     std::uint64_t newVer, bool isWrite)
{
    if (now_ + 1 > timeCap_)
        compact();
    ++now_;
    auto it = lines_.find(line);
    if (it == lines_.end()) {
        bitAdd(now_, 1);
        lines_[line] = {now_, isWrite ? newVer : oldVer};
        return kCold;
    }
    LineInfo& info = it->second;
    std::uint64_t out;
    if (info.version != oldVer) {
        // Coherence-invalidated at every capacity.
        out = kStale;
    } else {
        // Distance d lines were touched in between; the line hits at
        // capacity >= d + 1 lines.
        out = bitSum(now_ - 1) - bitSum(info.lastTime);
    }
    bitAdd(info.lastTime, -1);
    bitAdd(now_, 1);
    info.lastTime = now_;
    info.version = isWrite ? newVer : oldVer;
    return out;
}

void
CacheSweep::StackProfiler::init(std::uint64_t max_lines)
{
    maxLines = max_lines;
    hist.assign(max_lines + 2, 0);
}

void
CacheSweep::StackProfiler::touch(Addr line, std::uint64_t oldVer,
                                 std::uint64_t newVer, bool isWrite)
{
    std::uint64_t d = core.touch(line, oldVer, newVer, isWrite);
    if (d == StackDistance::kCold || d == StackDistance::kStale)
        ++coldOrStale;
    else
        ++hist[std::min(d + 1, maxLines + 1)];
}

void
VersionCoherence::advance(Addr lineAddr, ProcId p, bool isWrite,
                          std::uint64_t* oldVer, std::uint64_t* newVer)
{
    Line& c = map_[lineAddr];
    *oldVer = c.version;
    if (isWrite) {
        if (c.lastWriter != p || c.readSince) {
            ++c.version;
            c.lastWriter = p;
            c.readSince = false;
        }
    } else if (c.lastWriter != p) {
        c.readSince = true;
    }
    *newVer = c.version;
}

template <typename StaleFn>
void
CacheSweep::applyTagArray(TagArray& ta, Addr lineAddr,
                          std::uint64_t lineId, std::uint64_t oldVer,
                          std::uint64_t newVer, bool isWrite,
                          StaleFn&& stale)
{
    std::uint64_t set = lineId & ta.setMask;
    TagEntry* base = &ta.entries[set * ta.ways];
    TagEntry* found = nullptr;
    for (int w = 0; w < ta.ways; ++w) {
        TagEntry& e = base[w];
        if (e.valid && e.tag == lineAddr) {
            found = &e;
            break;
        }
    }
    if (found && found->version == oldVer) {
        found->lastUse = ++ta.useClock;
        if (isWrite)
            found->version = newVer;
        return;
    }
    ++ta.misses;
    TagEntry* slot = found;
    if (!slot) {
        // Victim preference mirrors the eager-invalidation MemSystem:
        // an empty way first, then a way whose line has been
        // invalidated by coherence (stale version), then LRU.
        TagEntry* lru = base;
        for (int w = 0; w < ta.ways && !slot; ++w) {
            TagEntry& e = base[w];
            if (!e.valid)
                slot = &e;
            else if (stale(e.tag, e.version))
                slot = &e;
            if (e.valid && e.lastUse < lru->lastUse)
                lru = &e;
        }
        if (!slot)
            slot = lru;
    }
    slot->valid = true;
    slot->tag = lineAddr;
    slot->version = isWrite ? newVer : oldVer;
    slot->lastUse = ++ta.useClock;
}

void
CacheSweep::access(ProcId p, Addr addr, int size, AccessType type)
{
    Addr first = alignDown(addr, cfg_.lineSize);
    Addr last = alignDown(addr + size - 1, cfg_.lineSize);
    for (Addr line = first; line <= last; line += cfg_.lineSize)
        accessLine(p, line, type);
}

void
CacheSweep::accessLine(ProcId p, Addr lineAddr, AccessType type)
{
    ++accesses_[p];

    bool is_write = type == AccessType::Write;
    std::uint64_t old_ver, new_ver;
    coh_.advance(lineAddr, p, is_write, &old_ver, &new_ver);

    std::uint64_t line_id = lineAddr >> lineShift_;
    auto stale = [this](Addr tag, std::uint64_t ver) {
        return coh_.stale(tag, ver);
    };
    for (auto& ta : arrays_[p])
        applyTagArray(ta, lineAddr, line_id, old_ver, new_ver, is_write,
                      stale);

    stacks_[p].touch(lineAddr, old_ver, new_ver, is_write);
}

void
CacheSweep::resetStats()
{
    std::fill(accesses_.begin(), accesses_.end(), 0);
    for (auto& cfgs : arrays_)
        for (auto& ta : cfgs)
            ta.misses = 0;
    for (auto& st : stacks_) {
        std::fill(st.hist.begin(), st.hist.end(), 0);
        st.coldOrStale = 0;
    }
}

std::uint64_t
CacheSweep::accesses() const
{
    std::uint64_t t = 0;
    for (auto a : accesses_)
        t += a;
    return t;
}

std::uint64_t
CacheSweep::misses(std::uint64_t size, int assoc) const
{
    if (assoc == 0) {
        // Fully associative: from the stack-distance histograms.
        std::uint64_t cap_lines = size >> lineShift_;
        std::uint64_t m = 0;
        for (const auto& st : stacks_) {
            m += st.coldOrStale;
            for (std::uint64_t d = cap_lines + 1; d < st.hist.size(); ++d)
                m += st.hist[d];
        }
        return m;
    }
    // Finite associativity: locate the config index.
    int size_idx = -1, assoc_idx = -1;
    for (size_t i = 0; i < cfg_.sizes.size(); ++i)
        if (cfg_.sizes[i] == size)
            size_idx = static_cast<int>(i);
    for (size_t i = 0; i < cfg_.assocs.size(); ++i)
        if (cfg_.assocs[i] == assoc)
            assoc_idx = static_cast<int>(i);
    if (size_idx < 0 || assoc_idx < 0)
        fatal("requested sweep operating point was not simulated");
    int idx = size_idx * static_cast<int>(cfg_.assocs.size()) + assoc_idx;
    std::uint64_t m = 0;
    for (const auto& cfgs : arrays_)
        m += cfgs[idx].misses;
    return m;
}

double
CacheSweep::missRate(std::uint64_t size, int assoc) const
{
    std::uint64_t a = accesses();
    return a ? double(misses(size, assoc)) / double(a) : 0.0;
}

// ---------------------------------------------------------------------
// ParallelSweep

ParallelSweep::ParallelSweep(CacheSweep& sweep, int threads,
                             std::size_t chunkRecords)
    : sweep_(sweep), chunkRecords_(chunkRecords)
{
    ensure(chunkRecords_ > 0, "chunk must hold at least one record");
    buf_.reserve(chunkRecords_);

    const int nprocs = sweep_.cfg_.nprocs;
    const int ncfg = static_cast<int>(sweep_.cfg_.sizes.size() *
                                      sweep_.cfg_.assocs.size());
    if (threads == 0) {
        unsigned hc = std::thread::hardware_concurrency();
        threads = hc ? static_cast<int>(std::min(hc, 16u)) : 1;
    }
    ensure(threads >= 1, "thread count must be positive");
    threads = std::min(threads, ncfg + nprocs);

    // Inline replay owns every column.
    inline_.stackMine.assign(nprocs, 1);
    for (int c = 0; c < ncfg; ++c)
        inline_.cfgCols.push_back(c);
    if (threads <= 1)
        return;

    // Greedy longest-processing-time assignment of columns to workers.
    // A configuration column does work on every record; a stack column
    // only on its processor's records, but a Fenwick touch costs a few
    // tag-array probes.
    workers_.resize(threads);
    std::vector<std::uint64_t> load(threads, 0);
    for (auto& w : workers_)
        w.stackMine.assign(nprocs, 0);
    auto least = [&] {
        int best = 0;
        for (int i = 1; i < threads; ++i)
            if (load[i] < load[best])
                best = i;
        return best;
    };
    const std::uint64_t wCfg = 2 * std::uint64_t(nprocs);
    const std::uint64_t wStack = 5;
    for (int c = 0; c < ncfg; ++c) {
        int i = least();
        workers_[i].cfgCols.push_back(c);
        load[i] += wCfg;
    }
    for (int p = 0; p < nprocs; ++p) {
        int i = least();
        workers_[i].stackMine[p] = 1;
        load[i] += wStack;
    }
    for (auto& w : workers_)
        w.th = std::thread([this, &w] { workerLoop(w); });
}

ParallelSweep::~ParallelSweep()
{
    flush();
    if (!workers_.empty()) {
        {
            std::lock_guard<std::mutex> lk(mu_);
            stop_ = true;
        }
        cvWork_.notify_all();
        for (auto& w : workers_)
            w.th.join();
    }
}

void
ParallelSweep::captureLine(ProcId p, Addr lineAddr, bool isWrite)
{
    ++sweep_.accesses_[p];
    std::uint64_t oldVer, newVer;
    sweep_.coh_.advance(lineAddr, p, isWrite, &oldVer, &newVer);
    buf_.push_back({lineAddr, oldVer, newVer,
                    static_cast<std::int16_t>(p),
                    static_cast<std::uint8_t>(isWrite)});
    if (buf_.size() >= chunkRecords_)
        flush();
}

void
ParallelSweep::access(const AccessRec& r)
{
    const int ls = sweep_.cfg_.lineSize;
    Addr first = alignDown(r.addr, ls);
    Addr last = alignDown(r.addr + r.size - 1, ls);
    bool isWrite = r.type == AccessType::Write;
    for (Addr line = first; line <= last; line += ls)
        captureLine(r.proc, line, isWrite);
}

void
ParallelSweep::replayChunk(Worker& w, const Rec* recs, std::size_t n)
{
    auto stale = [&w](Addr tag, std::uint64_t ver) {
        auto it = w.verMap.find(tag);
        return (it == w.verMap.end() ? 0u : it->second) != ver;
    };
    const int shift = sweep_.lineShift_;
    for (std::size_t i = 0; i < n; ++i) {
        const Rec& r = recs[i];
        if (r.newVer != r.oldVer)
            w.verMap[r.line] = r.newVer;
        std::uint64_t lineId = r.line >> shift;
        auto& cols = sweep_.arrays_[r.proc];
        bool isWrite = r.write != 0;
        for (int c : w.cfgCols)
            CacheSweep::applyTagArray(cols[c], r.line, lineId, r.oldVer,
                                      r.newVer, isWrite, stale);
        if (w.stackMine[r.proc])
            sweep_.stacks_[r.proc].touch(r.line, r.oldVer, r.newVer,
                                         isWrite);
    }
}

void
ParallelSweep::workerLoop(Worker& w)
{
    std::uint64_t seen = 0;
    for (;;) {
        const Rec* recs;
        std::size_t n;
        {
            std::unique_lock<std::mutex> lk(mu_);
            cvWork_.wait(lk, [&] { return stop_ || gen_ != seen; });
            if (gen_ == seen)
                return;  // stopped with no new work
            seen = gen_;
            recs = batch_;
            n = batchN_;
        }
        replayChunk(w, recs, n);
        {
            std::lock_guard<std::mutex> lk(mu_);
            if (--pending_ == 0)
                cvDone_.notify_one();
        }
    }
}

void
ParallelSweep::flush()
{
    if (buf_.empty())
        return;
    if (workers_.empty()) {
        replayChunk(inline_, buf_.data(), buf_.size());
    } else {
        std::unique_lock<std::mutex> lk(mu_);
        batch_ = buf_.data();
        batchN_ = buf_.size();
        pending_ = static_cast<int>(workers_.size());
        ++gen_;
        cvWork_.notify_all();
        cvDone_.wait(lk, [&] { return pending_ == 0; });
    }
    buf_.clear();
}

void
ParallelSweep::resetStats()
{
    flush();
    sweep_.resetStats();
}

} // namespace splash::sim
