/**
 * @file
 * Reuse-distance analytical fast path for the working-set sweep.
 *
 * The exact Figure-3 engine (sim/sweep.h) walks every reference once
 * per application to simulate all 34 cache configurations.  This
 * component collapses that sweep into a post-processing step over a
 * compact profile: per-processor line-grain reuse-distance histograms
 * (exact small-distance bins, log2 buckets above) recorded by one
 * pass over the reference stream -- and from one profile, predicted
 * miss-rate curves for *every* capacity:
 *
 *  - Fully associative LRU: directly from the histogram CDF.  The
 *    profiler shares the exact sweep's StackDistance core and
 *    VersionCoherence invalidation model, and every bucket boundary
 *    is a power of two, so the prediction is bit-identical to the
 *    exact Mattson sweep at every power-of-two capacity -- including
 *    coherence misses on sharing streams.
 *  - Finite associativity: the standard binomial correction.  A
 *    random set-index spreads the d distinct lines touched between
 *    reuses over S sets, so a reuse at distance d misses in an A-way
 *    cache with probability P[Binomial(d, 1/S) >= A]; the model
 *    applies it per bucket at the bucket's mean distance.  This is
 *    where model error lives (the exact sweep's victim preference for
 *    coherence-stale lines is not modeled either); the committed
 *    error table (results/fig3_model_error.csv) quantifies it per
 *    application.
 *
 * Profiles are tiny (a few hundred counters per processor,
 * independent of the reference count) and can be saved next to a
 * recorded trace as a ".rdp" sidecar, so a later `--sweep model` run
 * needs neither fiber execution nor trace replay: it loads the
 * sidecar and evaluates curves in microseconds.
 *
 * The profiler is a RefSink, so it attaches anywhere the trace
 * recorder or race detector does -- including as a third replica kind
 * of the broadcast replay engine (sim/replay.h).
 */
#ifndef SPLASH2_SIM_REUSEDIST_H
#define SPLASH2_SIM_REUSEDIST_H

#include <cstdint>
#include <string>
#include <vector>

#include "base/types.h"
#include "sim/sweep.h"
#include "sim/trace.h"
#include "sim/tracestore.h"

namespace splash::sim {

/** Working-set sweep engine selection (--sweep):
 *  Exact = the Mattson + tag-array simulation (sim/sweep.h),
 *  Model = reuse-distance profile + analytical predictions,
 *  Both  = run both and report model-vs-exact error. */
enum class SweepMode : std::uint8_t { Exact, Model, Both };

inline const char*
sweepModeName(SweepMode m)
{
    switch (m) {
    case SweepMode::Exact: return "exact";
    case SweepMode::Model: return "model";
    default: return "both";
    }
}

inline bool
parseSweepMode(const std::string& s, SweepMode* out)
{
    if (s == "exact") *out = SweepMode::Exact;
    else if (s == "model") *out = SweepMode::Model;
    else if (s == "both") *out = SweepMode::Both;
    else return false;
    return true;
}

/** Histogram layout shared by the profiler and the profile.  Buckets
 *  are keyed by the capacity b = distance + 1 (in lines) a reuse
 *  needs to hit: one exact bin per b <= kExact, then one bucket per
 *  power-of-two range (2^(j-1), 2^j].  Every boundary is a power of
 *  two, so power-of-two capacity queries never split a bucket. */
namespace rdbucket {

constexpr std::uint64_t kExact = 256;
/** Exact bins + log2 buckets covering b = 257 .. 2^64. */
constexpr int kBuckets = static_cast<int>(kExact) + 56;

/** Bucket index of needed capacity @p b (>= 1). */
int bucketOf(std::uint64_t b);
/** Smallest / largest needed capacity mapping to bucket @p i. */
std::uint64_t bucketMin(int i);
std::uint64_t bucketMax(int i);

} // namespace rdbucket

/** Snapshot of one profiling pass: everything the analytical sweep
 *  needs, decoupled from the (heavy) profiler state. */
struct ReuseDistProfile
{
    /** Per-processor histogram row. */
    struct Row
    {
        std::uint64_t accesses = 0;  ///< line references issued
        std::uint64_t cold = 0;      ///< first touches
        std::uint64_t stale = 0;     ///< coherence-invalidated reuses
        /** count[i]: reuses whose needed capacity falls in bucket i;
         *  sumDist[i]: their summed stack distances (for the bucket's
         *  mean distance, the associativity correction's input). */
        std::vector<std::uint64_t> count;
        std::vector<std::uint64_t> sumDist;

        Row();
        /** Misses at every capacity: cold + coherence-invalidated. */
        std::uint64_t coldOrStale() const { return cold + stale; }
        bool operator==(const Row& o) const;
    };

    int nprocs = 0;
    int lineSize = 64;
    std::vector<Row> procs;
    /** Execution profile of the producing run, so a model sweep from
     *  a sidecar can report execution statistics without opening the
     *  trace. */
    ExecProfile exec;

    std::uint64_t accesses() const;
    /** Total misses at every capacity (cold + invalidated). */
    std::uint64_t coldOrStale() const;
    /** Fraction of all-capacity misses caused by coherence
     *  invalidation rather than first touch (the sharing signal the
     *  error report explains misfits with). */
    double staleFraction() const;

    /** Predicted misses in a fully associative LRU cache of
     *  @p sizeBytes.  Bit-identical to CacheSweep::misses(size, 0)
     *  when @p sizeBytes / lineSize is a power of two (every bucket
     *  boundary aligns); other capacities interpolate inside the one
     *  straddled bucket. */
    std::uint64_t faMisses(std::uint64_t sizeBytes) const;

    /** Predicted miss rate at (@p sizeBytes, @p assoc); assoc 0 =
     *  fully associative (exact, see faMisses), assoc >= 1 = binomial
     *  associativity correction at each bucket's mean distance. */
    double missRate(std::uint64_t sizeBytes, int assoc) const;

    /** Histogram equality (exec profile excluded: it describes the
     *  producing run, not the reuse behavior). */
    bool operator==(const ReuseDistProfile& o) const;
    bool operator!=(const ReuseDistProfile& o) const
    {
        return !(*this == o);
    }

    /** Serialize to @p path (atomic: staged + renamed), stamped with
     *  the producing run's identity @p meta and a CRC.  False with
     *  @p err on I/O failure. */
    bool save(const std::string& path, const TraceMeta& meta,
              std::string* err) const;

    /** Load @p path and require its recorded identity to equal
     *  @p meta (and its line size to equal @p out->lineSize if set by
     *  the caller via expectLineSize).  False with a diagnostic on a
     *  missing file, corruption, or identity mismatch. */
    static bool load(const std::string& path, const TraceMeta& meta,
                     int expectLineSize, ReuseDistProfile* out,
                     std::string* err);
};

/** Canonical sidecar path of @p m's profile next to its trace in
 *  store @p dirOrFile: "<trace path>.rdp". */
std::string profilePathFor(const std::string& dirOrFile,
                           const TraceMeta& m);

/** The profiling pass: a RefSink accumulating per-processor
 *  reuse-distance histograms over the line-grain reference stream,
 *  with cross-processor invalidations modeled by the exact sweep's
 *  own VersionCoherence (so coherence misses are counted, not lost).
 */
class ReuseDistProfiler final : public RefSink
{
  public:
    ReuseDistProfiler(int nprocs, int lineSize);

    void access(const AccessRec& r) override;
    /** Zero the histogram counters while keeping stack and coherence
     *  contents (measurement boundary past cold start), mirroring
     *  CacheSweep::resetStats. */
    void resetStats() override;

    /** Snapshot the histograms (exec profile left empty; drivers fill
     *  it in before saving a sidecar). */
    ReuseDistProfile profile() const;

    int nprocs() const { return static_cast<int>(rows_.size()); }
    int lineSize() const { return 1 << lineShift_; }

  private:
    void touchLine(ProcId p, Addr lineAddr, bool isWrite);

    int lineShift_;
    VersionCoherence coh_;
    std::vector<StackDistance> stacks_;
    std::vector<ReuseDistProfile::Row> rows_;
};

} // namespace splash::sim

#endif // SPLASH2_SIM_REUSEDIST_H
