/**
 * @file
 * Happens-before data-race detection over the reference stream.
 *
 * The paper's methodology assumes the SPLASH-2 programs are properly
 * synchronized by the PARMACS primitives, and its false-sharing
 * discussion (Figs. 8-9) rests on distinguishing true sharing from
 * line-granularity artifacts.  RaceChecker verifies both claims
 * mechanically: it consumes the reference stream *and* the
 * synchronization edges the runtime primitives emit (rt/sync.h ->
 * Env::syncEvent -> RefSink::sync), reconstructs the happens-before
 * partial order, and reports every pair of conflicting accesses that
 * the order does not relate.
 *
 * Crucially, the happens-before order is built from program order and
 * sync edges ONLY -- not from the scheduler's interleaving.  The
 * deterministic PRAM scheduler serializes everything, so "A ran before
 * B" never implies "A is ordered with B"; two accesses are ordered iff
 * a chain of barrier / lock / flag edges connects them.  A missing
 * edge is therefore a genuine synchronization bug in the app, exactly
 * what a real machine with a weaker scheduler would expose.
 *
 * Algorithm: FastTrack (Flanagan & Freund, PLDI 2009).  Full vector
 * clocks C_p per processor and L_m per sync object, but *epochs* --
 * one (proc, clock) pair packed in 64 bits -- for the per-granule
 * shadow state.  Writes are totally ordered in a race-free program,
 * so the last-write epoch suffices; reads adaptively promote from an
 * epoch to a read vector clock only while concurrent reads exist
 * (the read-shared case), and collapse back to an epoch at the next
 * ordered write.  The common same-epoch case is one load + compare.
 *
 * Shadow granularity is the knob that turns the verifier into the
 * false-sharing census:
 *
 *  - Word (4 bytes): a conflict is two processors touching the *same
 *    word* unordered -- a true data race.  The suite must be (and is)
 *    race-free at this granularity; CI enforces it.
 *  - Line (the configured line size): a conflict only means two
 *    processors touch the same *line* unordered -- almost always
 *    false sharing.  The per-app conflict counts quantify the paper's
 *    Figs. 8-9 narrative (results/races.txt).
 *
 * Accesses flagged AccessRec::kAtomic (SharedArray::ldAtomic /
 * stAtomic -- annotated lock-free idioms such as the task queue's
 * unlocked emptiness peek) are excluded from race checking entirely,
 * mirroring how host-level atomics silence TSan.  This is slightly
 * more permissive than TSan (which still flags plain-vs-atomic
 * pairs): both sides of every such idiom in this codebase go through
 * the atomic accessors, and the exclusion is symmetric.
 *
 * Detection power is proven the same way the coherence checker's was
 * (sim/faultinject.h): a deterministic edge-drop injector removes one
 * seeded acquire edge -- a lock acquisition, a barrier departure, or
 * a flag wait -- and the tests require every drop to surface as a
 * reported race attributed to the right address and processor pair.
 */
#ifndef SPLASH2_SIM_RACECHECK_H
#define SPLASH2_SIM_RACECHECK_H

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "base/types.h"
#include "sim/trace.h"

namespace splash::sim {

/** Shadow-memory granularity of the detector. */
enum class RaceGranularity : std::uint8_t {
    Off,   ///< no checking
    Word,  ///< 4-byte granules: conflicts are true data races
    Line   ///< line-size granules: conflicts include false sharing
};

/** Stable CLI name ("off", "word", "line"). */
const char* raceGranularityName(RaceGranularity g);

/** Parse a CLI name; returns false if @p s names no granularity. */
bool parseRaceGranularity(const std::string& s, RaceGranularity* out);

struct RaceConfig
{
    RaceGranularity gran = RaceGranularity::Word;
    int nprocs = 1;
    /** Granule size for Line mode (power of two). */
    int lineSize = 64;
    /** Detailed reports retained; counting never stops. */
    int maxReports = 32;
};

/** One side of a reported race. */
struct RaceAccess
{
    std::int16_t proc = -1;
    AccessType type = AccessType::Read;
    Tick ltime = 0;  ///< issuing processor's logical clock
};

/** An unordered conflicting pair on one shadow granule. */
struct RaceReport
{
    Addr granule = 0;  ///< first byte of the granule
    int bytes = 0;     ///< granule size
    RaceAccess prev;   ///< earlier access (from shadow state)
    RaceAccess cur;    ///< access that exposed the conflict
};

/** Synchronization edges seen by the detector, by primitive and
 *  direction.  Cross-checkable against the runtime's Figure-2 wait
 *  counters: barrierArrivals == sum of ProcStats::barriers,
 *  lockAcquires == sum of ::locks, flagWaits == sum of ::pauses. */
struct SyncCensus
{
    std::uint64_t barrierArrivals = 0;    ///< barrier Release edges
    std::uint64_t barrierDepartures = 0;  ///< barrier Acquire edges
    std::uint64_t lockAcquires = 0;
    std::uint64_t lockReleases = 0;
    std::uint64_t flagSets = 0;   ///< flag Release edges
    std::uint64_t flagWaits = 0;  ///< flag Acquire edges

    std::uint64_t
    total() const
    {
        return barrierArrivals + barrierDepartures + lockAcquires +
               lockReleases + flagSets + flagWaits;
    }
};

/** Injectable synchronization-elision faults: each drops one seeded
 *  *acquire* edge, so the affected processor misses the order the
 *  edge would have given it -- exactly the bug class (a forgotten
 *  LOCK, a skipped BARRIER, an elided PAUSE) the detector exists to
 *  catch. */
enum class RaceFault : int {
    DropLockAcquire = 0,  ///< critical section entered without the lock
    DropBarrierEdge,      ///< one processor skips a barrier departure
    DropFlagWait,         ///< consumer proceeds without the flag
    NumKinds
};

constexpr int kNumRaceFaults = static_cast<int>(RaceFault::NumKinds);

/** Stable CLI name (e.g. "drop-lock-acquire"). */
const char* raceFaultName(RaceFault k);

/** Parse a CLI name; returns false if @p s names no fault kind. */
bool parseRaceFault(const std::string& s, RaceFault* out);

/** Copyable summary of a finished (or in-progress) check. */
struct RaceOutcome
{
    RaceGranularity gran = RaceGranularity::Off;
    int granuleBytes = 0;
    /** Distinct (granule, processor pair) conflicts. */
    std::uint64_t races = 0;
    /** Distinct granules with at least one conflict. */
    std::uint64_t racyGranules = 0;
    /** Every dynamic conflicting access pair (unbounded count). */
    std::uint64_t dynamicRaces = 0;
    /** Granules with shadow state (footprint indicator). */
    std::uint64_t granulesTracked = 0;
    SyncCensus census;
    std::vector<RaceReport> reports;  ///< first maxReports conflicts

    bool clean() const { return races == 0; }
};

/** Multi-line human-readable summary of an outcome (splash2run
 *  report; RaceChecker::summary forwards here). */
std::string raceSummary(const RaceOutcome& o);

/** FastTrack happens-before detector; a RefSink, so it attaches
 *  anywhere a MemSystem replica does (Env::attachSink or a
 *  BroadcastReplay race replica). */
class RaceChecker final : public RefSink
{
  public:
    explicit RaceChecker(const RaceConfig& cfg);
    ~RaceChecker() override;

    RaceChecker(const RaceChecker&) = delete;
    RaceChecker& operator=(const RaceChecker&) = delete;

    void access(const AccessRec& r) override;
    void sync(const SyncRec& r) override;
    /** Measurement window: drop accumulated race counts and census,
     *  keep clocks and shadow state (pre-window accesses still order
     *  against in-window ones). */
    void resetStats() override;

    // ---- injection (tests / --race-inject) -------------------------

    /** Arm: silently drop the @p occurrence-th eligible acquire edge
     *  of kind @p k (0-based, counted from construction; the count is
     *  never reset).  One drop per checker. */
    void dropEdge(RaceFault k, std::uint64_t occurrence);

    /** Eligible edges of kind @p k seen since construction (never
     *  reset) -- run once to size the occurrence space, then re-run
     *  with occurrence = seed % edgeCount(k). */
    std::uint64_t edgeCount(RaceFault k) const;

    bool dropFired() const { return dropFired_; }
    /** Processor whose acquire edge was dropped (-1 before firing).
     *  Attribution: every injected race must involve this processor. */
    int droppedProc() const { return droppedProc_; }

    // ---- results ---------------------------------------------------

    RaceOutcome outcome() const;
    const SyncCensus& census() const { return census_; }
    std::uint64_t races() const { return pairKeys_.size(); }
    /** Multi-line human-readable summary (splash2run report). */
    std::string summary() const;

  private:
    struct VarState;
    struct ReadVC;

    VarState& shadow(Addr granule);
    std::vector<std::uint32_t>& objClock(std::uint32_t obj);
    void checkGranule(Addr g, const AccessRec& r);
    void report(Addr g, const RaceAccess& prev, const AccessRec& cur);
    int promoteReads(std::uint64_t epoch, Tick ltime);
    void releaseReadVC(VarState& v);
    void grow();

    RaceConfig cfg_;
    int shift_ = 2;        ///< log2(granule bytes)
    int granBytes_ = 4;

    /** Per-processor vector clocks C_p, flattened [p * nprocs + q]. */
    std::vector<std::uint32_t> procVC_;
    /** Per-sync-object clocks L_m, grown on first use. */
    std::vector<std::vector<std::uint32_t>> objVC_;

    /** Open-addressing shadow table keyed by granule index + 1. */
    struct Slot;
    std::vector<Slot> slots_;
    std::size_t used_ = 0;

    /** Read vector-clock pool (read-shared granules only); shadow
     *  slots reference entries by index, freed ones are recycled. */
    std::vector<std::unique_ptr<ReadVC>> readPool_;
    std::vector<int> readFree_;

    // Results.
    SyncCensus census_;
    std::uint64_t dynamicRaces_ = 0;
    std::vector<RaceReport> reports_;
    std::unordered_set<std::uint64_t> pairKeys_;  ///< (granule, a, b)
    std::unordered_set<Addr> racyGranules_;

    // Injection.
    bool dropArmed_ = false;
    bool dropFired_ = false;
    RaceFault dropKind_ = RaceFault::DropLockAcquire;
    std::uint64_t dropAt_ = 0;
    int droppedProc_ = -1;
    std::uint64_t edgeEver_[kNumRaceFaults] = {0, 0, 0};
};

} // namespace splash::sim

#endif // SPLASH2_SIM_RACECHECK_H
