#include "sim/reusedist.h"

#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>

#include "base/log.h"

namespace splash::sim {

namespace rdbucket {

int
bucketOf(std::uint64_t b)
{
    if (b <= kExact)
        return static_cast<int>(b) - 1;
    // j = ceil(log2(b)): bucket (2^(j-1), 2^j]; j >= 9 since b > 256.
    int j = 64 - __builtin_clzll(b - 1);
    return static_cast<int>(kExact) + (j - 9);
}

std::uint64_t
bucketMin(int i)
{
    if (i < static_cast<int>(kExact))
        return static_cast<std::uint64_t>(i) + 1;
    int j = i - static_cast<int>(kExact) + 9;
    return (std::uint64_t{1} << (j - 1)) + 1;
}

std::uint64_t
bucketMax(int i)
{
    if (i < static_cast<int>(kExact))
        return static_cast<std::uint64_t>(i) + 1;
    int j = i - static_cast<int>(kExact) + 9;
    return j >= 64 ? ~std::uint64_t{0} : std::uint64_t{1} << j;
}

} // namespace rdbucket

ReuseDistProfile::Row::Row()
    : count(rdbucket::kBuckets, 0), sumDist(rdbucket::kBuckets, 0)
{
}

bool
ReuseDistProfile::Row::operator==(const Row& o) const
{
    return accesses == o.accesses && cold == o.cold &&
           stale == o.stale && count == o.count &&
           sumDist == o.sumDist;
}

bool
ReuseDistProfile::operator==(const ReuseDistProfile& o) const
{
    return nprocs == o.nprocs && lineSize == o.lineSize &&
           procs == o.procs;
}

std::uint64_t
ReuseDistProfile::accesses() const
{
    std::uint64_t t = 0;
    for (const Row& r : procs)
        t += r.accesses;
    return t;
}

std::uint64_t
ReuseDistProfile::coldOrStale() const
{
    std::uint64_t t = 0;
    for (const Row& r : procs)
        t += r.coldOrStale();
    return t;
}

double
ReuseDistProfile::staleFraction() const
{
    std::uint64_t cs = coldOrStale(), st = 0;
    for (const Row& r : procs)
        st += r.stale;
    return cs ? double(st) / double(cs) : 0.0;
}

std::uint64_t
ReuseDistProfile::faMisses(std::uint64_t sizeBytes) const
{
    const std::uint64_t capLines = sizeBytes / lineSize;
    std::uint64_t m = 0;
    for (const Row& r : procs) {
        m += r.coldOrStale();
        for (int i = 0; i < rdbucket::kBuckets; ++i) {
            const std::uint64_t c = r.count[i];
            if (!c)
                continue;
            const std::uint64_t minB = rdbucket::bucketMin(i);
            if (minB > capLines) {
                m += c;  // every reuse in the bucket needs more lines
                continue;
            }
            const std::uint64_t maxB = rdbucket::bucketMax(i);
            if (maxB > capLines) {
                // A non-power-of-two capacity splits this one bucket;
                // apportion its reuses uniformly over its range.
                m += static_cast<std::uint64_t>(std::llround(
                    double(c) * double(maxB - capLines) /
                    double(maxB - minB + 1)));
            }
        }
    }
    return m;
}

namespace {

/** P[Binomial(n, p) >= ways] with real-valued n (a bucket's mean
 *  distance): the probability that the d lines touched between
 *  reuses evict the line from its set in a ways-way cache whose
 *  random set index hits the reuse's set with probability p. */
double
pConflictMiss(double n, double p, std::uint64_t ways)
{
    // Stable ascending recurrence over P[X = k]; t underflows to 0
    // for large n (a certain miss) and is clamped at 0 once k
    // exceeds n (impossible outcomes of the real-valued extension).
    double t = std::exp(n * std::log1p(-p));
    double cdf = t;
    for (std::uint64_t k = 0; k + 1 < ways; ++k) {
        t *= (n - double(k)) / double(k + 1) * p / (1.0 - p);
        if (!(t > 0)) {
            t = 0;
            break;
        }
        cdf += t;
    }
    return std::min(1.0, std::max(0.0, 1.0 - cdf));
}

} // namespace

double
ReuseDistProfile::missRate(std::uint64_t sizeBytes, int assoc) const
{
    const std::uint64_t total = accesses();
    if (!total)
        return 0.0;
    const std::uint64_t capLines = sizeBytes / lineSize;
    if (assoc == kFullyAssoc)
        return double(faMisses(sizeBytes)) / double(total);
    const std::uint64_t ways =
        std::min<std::uint64_t>(assoc, capLines);
    const std::uint64_t sets = capLines / ways;
    if (sets <= 1)  // one set of capLines ways degenerates to full LRU
        return double(faMisses(sizeBytes)) / double(total);
    const double p = 1.0 / double(sets);
    double m = 0;
    for (const Row& r : procs) {
        m += double(r.coldOrStale());
        for (int i = 0; i < rdbucket::kBuckets; ++i) {
            const std::uint64_t c = r.count[i];
            if (!c)
                continue;
            const double n = double(r.sumDist[i]) / double(c);
            m += double(c) * pConflictMiss(n, p, ways);
        }
    }
    return m / double(total);
}

// ---------------------------------------------------------------------
// Sidecar serialization

namespace {

constexpr char kMagic[8] = {'S', '2', 'R', 'D', 'P', 'R', 'O', 'F'};
constexpr std::uint32_t kVersion = 1;

void
putU32(std::vector<std::uint8_t>& o, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        o.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void
putU64(std::vector<std::uint8_t>& o, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        o.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

bool
getBytes(const std::uint8_t** p, const std::uint8_t* end, void* out,
         std::size_t n)
{
    if (static_cast<std::size_t>(end - *p) < n)
        return false;
    std::memcpy(out, *p, n);
    *p += n;
    return true;
}

bool
getU32(const std::uint8_t** p, const std::uint8_t* end,
       std::uint32_t* v)
{
    std::uint8_t b[4];
    if (!getBytes(p, end, b, 4))
        return false;
    *v = 0;
    for (int i = 0; i < 4; ++i)
        *v |= static_cast<std::uint32_t>(b[i]) << (8 * i);
    return true;
}

bool
getU64(const std::uint8_t** p, const std::uint8_t* end,
       std::uint64_t* v)
{
    std::uint8_t b[8];
    if (!getBytes(p, end, b, 8))
        return false;
    *v = 0;
    for (int i = 0; i < 8; ++i)
        *v |= static_cast<std::uint64_t>(b[i]) << (8 * i);
    return true;
}

void
putMeta(std::vector<std::uint8_t>& o, const TraceMeta& m)
{
    putU32(o, static_cast<std::uint32_t>(m.app.size()));
    o.insert(o.end(), m.app.begin(), m.app.end());
    putU32(o, static_cast<std::uint32_t>(m.nprocs));
    std::uint64_t scaleBits;
    std::memcpy(&scaleBits, &m.scale, 8);
    putU64(o, scaleBits);
    putU64(o, static_cast<std::uint64_t>(m.n));
    putU64(o, static_cast<std::uint64_t>(m.iters));
    putU64(o, static_cast<std::uint64_t>(m.aux));
    putU32(o, m.seed);
    putU64(o, m.quantum);
}

bool
getMeta(const std::uint8_t** p, const std::uint8_t* end, TraceMeta* m)
{
    std::uint32_t len;
    if (!getU32(p, end, &len) || len > 64)
        return false;
    m->app.resize(len);
    if (!getBytes(p, end, m->app.data(), len))
        return false;
    std::uint32_t nprocs, seed;
    std::uint64_t scaleBits, n, iters, aux, quantum;
    if (!getU32(p, end, &nprocs) || !getU64(p, end, &scaleBits) ||
        !getU64(p, end, &n) || !getU64(p, end, &iters) ||
        !getU64(p, end, &aux) || !getU32(p, end, &seed) ||
        !getU64(p, end, &quantum))
        return false;
    m->nprocs = static_cast<int>(nprocs);
    std::memcpy(&m->scale, &scaleBits, 8);
    m->n = static_cast<long>(n);
    m->iters = static_cast<long>(iters);
    m->aux = static_cast<long>(aux);
    m->seed = seed;
    m->quantum = quantum;
    return true;
}

} // namespace

bool
ReuseDistProfile::save(const std::string& path, const TraceMeta& meta,
                       std::string* err) const
{
    std::vector<std::uint8_t> buf;
    buf.insert(buf.end(), kMagic, kMagic + 8);
    putU32(buf, kVersion);
    putMeta(buf, meta);
    putU32(buf, static_cast<std::uint32_t>(lineSize));
    putU32(buf, static_cast<std::uint32_t>(procs.size()));
    putU32(buf, rdbucket::kBuckets);
    for (const Row& r : procs) {
        putU64(buf, r.accesses);
        putU64(buf, r.cold);
        putU64(buf, r.stale);
        for (std::uint64_t c : r.count)
            putU64(buf, c);
        for (std::uint64_t s : r.sumDist)
            putU64(buf, s);
    }
    buf.push_back(exec.valid ? 1 : 0);
    putU64(buf, exec.elapsed);
    putU32(buf, static_cast<std::uint32_t>(exec.procs.size()));
    for (const ExecProfile::Row& row : exec.procs)
        for (std::uint64_t v : row)
            putU64(buf, v);
    putU32(buf, tracecodec::crc32(buf.data(), buf.size()));

    const std::string tmp =
        path + ".tmp." + std::to_string(::getpid());
    std::FILE* f = std::fopen(tmp.c_str(), "wb");
    if (!f) {
        if (err)
            *err = "cannot write reuse-distance profile '" + tmp + "'";
        return false;
    }
    const bool ok =
        std::fwrite(buf.data(), 1, buf.size(), f) == buf.size();
    if (std::fclose(f) != 0 || !ok ||
        std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        if (err)
            *err = "failed writing reuse-distance profile '" + path +
                   "'";
        return false;
    }
    return true;
}

bool
ReuseDistProfile::load(const std::string& path, const TraceMeta& meta,
                       int expectLineSize, ReuseDistProfile* out,
                       std::string* err)
{
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (!f) {
        if (err)
            *err = "no reuse-distance profile at '" + path + "'";
        return false;
    }
    std::vector<std::uint8_t> buf;
    std::uint8_t chunk[1 << 16];
    std::size_t n;
    while ((n = std::fread(chunk, 1, sizeof chunk, f)) > 0)
        buf.insert(buf.end(), chunk, chunk + n);
    std::fclose(f);

    auto bad = [&](const char* why) {
        if (err)
            *err = "reuse-distance profile '" + path + "': " + why;
        return false;
    };
    if (buf.size() < 16)
        return bad("truncated");
    std::uint32_t storedCrc = 0;
    {
        const std::uint8_t* p = buf.data() + buf.size() - 4;
        getU32(&p, buf.data() + buf.size(), &storedCrc);
    }
    if (tracecodec::crc32(buf.data(), buf.size() - 4) != storedCrc)
        return bad("CRC mismatch (corrupt or truncated)");

    const std::uint8_t* p = buf.data();
    const std::uint8_t* end = buf.data() + buf.size() - 4;
    if (std::memcmp(p, kMagic, 8) != 0)
        return bad("bad magic");
    p += 8;
    std::uint32_t version;
    if (!getU32(&p, end, &version) || version != kVersion)
        return bad("unsupported format version");
    TraceMeta stored;
    if (!getMeta(&p, end, &stored))
        return bad("malformed identity");
    if (stored != meta)
        return bad(("identity mismatch: profile is for " +
                    stored.describe() + ", wanted " + meta.describe())
                       .c_str());
    std::uint32_t lineSize, nrows, nbuckets;
    if (!getU32(&p, end, &lineSize) || !getU32(&p, end, &nrows) ||
        !getU32(&p, end, &nbuckets))
        return bad("malformed header");
    if (expectLineSize > 0 &&
        lineSize != static_cast<std::uint32_t>(expectLineSize))
        return bad("line size mismatch");
    if (nbuckets != rdbucket::kBuckets)
        return bad("bucket layout mismatch");
    if (nrows > kMaxProcs)
        return bad("implausible processor count");

    ReuseDistProfile pr;
    pr.lineSize = static_cast<int>(lineSize);
    pr.nprocs = static_cast<int>(nrows);
    pr.procs.resize(nrows);
    for (Row& r : pr.procs) {
        if (!getU64(&p, end, &r.accesses) ||
            !getU64(&p, end, &r.cold) || !getU64(&p, end, &r.stale))
            return bad("truncated histogram");
        for (std::uint64_t& c : r.count)
            if (!getU64(&p, end, &c))
                return bad("truncated histogram");
        for (std::uint64_t& s : r.sumDist)
            if (!getU64(&p, end, &s))
                return bad("truncated histogram");
    }
    std::uint8_t valid;
    std::uint32_t execRows;
    std::uint64_t elapsed;
    if (!getBytes(&p, end, &valid, 1) || !getU64(&p, end, &elapsed) ||
        !getU32(&p, end, &execRows) || execRows > kMaxProcs)
        return bad("malformed execution profile");
    pr.exec.valid = valid != 0;
    pr.exec.elapsed = elapsed;
    pr.exec.procs.resize(execRows);
    for (ExecProfile::Row& row : pr.exec.procs)
        for (std::uint64_t& v : row)
            if (!getU64(&p, end, &v))
                return bad("truncated execution profile");
    if (p != end)
        return bad("trailing garbage");
    *out = std::move(pr);
    return true;
}

std::string
profilePathFor(const std::string& dirOrFile, const TraceMeta& m)
{
    return tracestore::pathFor(dirOrFile, m) + ".rdp";
}

// ---------------------------------------------------------------------
// ReuseDistProfiler

ReuseDistProfiler::ReuseDistProfiler(int nprocs, int lineSize)
    : lineShift_(log2i(lineSize)), stacks_(nprocs), rows_(nprocs)
{
    if (!isPow2(lineSize))
        fatal("profiler line size must be a power of two");
}

void
ReuseDistProfiler::access(const AccessRec& r)
{
    const int ls = 1 << lineShift_;
    Addr first = alignDown(r.addr, ls);
    Addr last = alignDown(r.addr + r.size - 1, ls);
    const bool isWrite = r.type == AccessType::Write;
    for (Addr line = first; line <= last; line += ls)
        touchLine(r.proc, line, isWrite);
}

void
ReuseDistProfiler::touchLine(ProcId p, Addr lineAddr, bool isWrite)
{
    ReuseDistProfile::Row& row = rows_[p];
    ++row.accesses;
    std::uint64_t oldVer, newVer;
    coh_.advance(lineAddr, p, isWrite, &oldVer, &newVer);
    const std::uint64_t d =
        stacks_[p].touch(lineAddr, oldVer, newVer, isWrite);
    if (d == StackDistance::kCold) {
        ++row.cold;
    } else if (d == StackDistance::kStale) {
        ++row.stale;
    } else {
        const int i = rdbucket::bucketOf(d + 1);
        ++row.count[i];
        row.sumDist[i] += d;
    }
}

void
ReuseDistProfiler::resetStats()
{
    for (ReuseDistProfile::Row& r : rows_) {
        r.accesses = r.cold = r.stale = 0;
        std::fill(r.count.begin(), r.count.end(), 0);
        std::fill(r.sumDist.begin(), r.sumDist.end(), 0);
    }
}

ReuseDistProfile
ReuseDistProfiler::profile() const
{
    ReuseDistProfile pr;
    pr.nprocs = static_cast<int>(rows_.size());
    pr.lineSize = 1 << lineShift_;
    pr.procs = rows_;
    return pr;
}

} // namespace splash::sim
