/**
 * @file
 * Statistics gathered by the memory-system simulator.
 *
 * Traffic is decomposed exactly as in Section 6 of the SPLASH-2 paper:
 *
 *  - remote data, split by the miss type that caused the transfer
 *    (remote shared = true + false sharing, remote cold, remote
 *    capacity), plus remote writebacks;
 *  - remote overhead: request / intervention / invalidation / ack /
 *    replacement-hint packets and the headers of remote data transfers;
 *  - local data: transfers between a processor and its own node memory.
 *
 * In addition, "true sharing traffic" (local + remote data moved by true
 * sharing misses) is tracked as the paper's proxy for the inherent
 * communication of the algorithm.
 */
#ifndef SPLASH2_SIM_STATS_H
#define SPLASH2_SIM_STATS_H

#include <array>
#include <cstdint>

namespace splash::sim {

/** Classification of a cache miss (extended Dubois scheme; conflict
 *  misses are folded into Capacity as in the paper's finite-cache
 *  extension). */
enum class MissType : std::uint8_t {
    Cold = 0,       ///< first reference by this processor to the line
    Capacity,       ///< line was last lost to replacement
    TrueSharing,    ///< lost to invalidation; a word written by another
                    ///< processor is actually accessed again
    FalseSharing,   ///< lost to invalidation; only unrelated words in the
                    ///< line were written
    NumTypes
};

constexpr int kNumMissTypes = static_cast<int>(MissType::NumTypes);

/** Per-processor (and aggregate) memory-system statistics. */
struct MemStats
{
    // --- reference counts -------------------------------------------------
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;

    // --- miss counts by type ----------------------------------------------
    std::array<std::uint64_t, kNumMissTypes> misses{};
    /** Non-silent write hits: the write needed a directory transaction
     *  (invalidations for the invalidation protocols, update
     *  broadcasts for Dragon). */
    std::uint64_t upgrades = 0;

    // --- coherence actions charged to this processor's requests -----------
    /** Cached copies invalidated on behalf of this processor's writes
     *  (always 0 under the update-based Dragon protocol). */
    std::uint64_t invalidations = 0;
    /** Word-update messages sent on behalf of this processor's writes
     *  (Dragon only; 0 under invalidation protocols). */
    std::uint64_t updates = 0;

    // --- traffic in bytes --------------------------------------------------
    std::uint64_t remoteSharedData = 0;    ///< data bytes, sharing misses
    std::uint64_t remoteColdData = 0;      ///< data bytes, cold misses
    std::uint64_t remoteCapacityData = 0;  ///< data bytes, capacity misses
    std::uint64_t remoteWriteback = 0;     ///< dirty writebacks to remote home
    std::uint64_t remoteOverhead = 0;      ///< protocol packets + data headers
    std::uint64_t localData = 0;           ///< data to/from local memory
    std::uint64_t trueSharedData = 0;      ///< data moved by true-sharing
                                           ///< misses (local + remote)

    // --- bus occupancy (Interconnect::Bus only) ----------------------------
    // On a snoopy bus the byte-counter decomposition above does not
    // apply (no local/remote distinction, no packets, no headers);
    // occupancy in bus cycles replaces it.  Each transaction charges
    // one address phase plus a data phase when a line (or, under
    // Dragon, a word update) crosses the data wires.
    std::uint64_t busTransactions = 0;  ///< address broadcasts issued
    std::uint64_t busAddrCycles = 0;    ///< cycles of address-phase occupancy
    std::uint64_t busDataCycles = 0;    ///< cycles of data-phase occupancy

    std::uint64_t
    totalMisses() const
    {
        std::uint64_t t = 0;
        for (auto m : misses)
            t += m;
        return t;
    }

    std::uint64_t
    accesses() const
    {
        return reads + writes;
    }

    double
    missRate() const
    {
        return accesses() ? double(totalMisses()) / double(accesses()) : 0.0;
    }

    std::uint64_t
    remoteData() const
    {
        return remoteSharedData + remoteColdData + remoteCapacityData +
               remoteWriteback;
    }

    std::uint64_t
    totalTraffic() const
    {
        return remoteData() + remoteOverhead + localData;
    }

    /** Total bus occupancy in cycles (zero under the directory). */
    std::uint64_t
    busCycles() const
    {
        return busAddrCycles + busDataCycles;
    }

    MemStats&
    operator+=(const MemStats& o)
    {
        reads += o.reads;
        writes += o.writes;
        for (int i = 0; i < kNumMissTypes; ++i)
            misses[i] += o.misses[i];
        upgrades += o.upgrades;
        invalidations += o.invalidations;
        updates += o.updates;
        remoteSharedData += o.remoteSharedData;
        remoteColdData += o.remoteColdData;
        remoteCapacityData += o.remoteCapacityData;
        remoteWriteback += o.remoteWriteback;
        remoteOverhead += o.remoteOverhead;
        localData += o.localData;
        trueSharedData += o.trueSharedData;
        busTransactions += o.busTransactions;
        busAddrCycles += o.busAddrCycles;
        busDataCycles += o.busDataCycles;
        return *this;
    }
};

} // namespace splash::sim

#endif // SPLASH2_SIM_STATS_H
