#include "sim/protocol.h"

#include "base/log.h"

namespace splash::sim {

namespace {

using LS = LineState;

void
identityWriteNext(Protocol& p)
{
    for (int i = 0; i < kNumLineStates; ++i)
        p.silentWriteNext[i] = static_cast<LS>(i);
}

Transition&
cell(Protocol& p, ProtoEvent e, DirGroup g)
{
    Transition& t = p.table[static_cast<int>(e)][static_cast<int>(g)];
    t.valid = true;
    return t;
}

/** Shared invalidation-protocol core (the MSI skeleton): memory
 *  supplies clean lines, the dirty owner supplies cache-to-cache, and
 *  every write transaction invalidates the other holders.  The
 *  variants refine individual cells. */
void
invalidationCore(Protocol& p)
{
    {
        Transition& t = cell(p, ProtoEvent::ReadMiss, DirGroup::Uncached);
        t.supply = Supply::Memory;
        t.reqState = t.reqStateAlone = LS::Shared;
    }
    {
        Transition& t = cell(p, ProtoEvent::ReadMiss, DirGroup::Clean);
        t.supply = Supply::Memory;
        t.reqState = t.reqStateAlone = LS::Shared;
    }
    {
        Transition& t = cell(p, ProtoEvent::ReadMiss, DirGroup::Dirty);
        t.supply = Supply::Owner;
        t.ownerNext = LS::Shared;
        t.sharingWriteback = true;  // memory picks up the dirty line
        t.reqState = t.reqStateAlone = LS::Shared;
    }
    {
        Transition& t = cell(p, ProtoEvent::WriteMiss, DirGroup::Uncached);
        t.supply = Supply::Memory;
        t.reqState = t.reqStateAlone = LS::Modified;
        t.setDirty = true;
    }
    {
        Transition& t = cell(p, ProtoEvent::WriteMiss, DirGroup::Clean);
        t.supply = Supply::Memory;
        t.others = OthersOp::Invalidate;
        t.reqState = t.reqStateAlone = LS::Modified;
        t.setDirty = true;
    }
    {
        Transition& t = cell(p, ProtoEvent::WriteMiss, DirGroup::Dirty);
        t.supply = Supply::Owner;
        t.ownerNext = LS::Invalid;  // ownership transfer invalidates
        t.others = OthersOp::Invalidate;
        t.reqState = t.reqStateAlone = LS::Modified;
        t.setDirty = true;
    }
    {
        // Upgrade: permissions move, no data.  A write hit under a
        // dirty entry is unreachable here -- the only non-silent write
        // state is Shared, which cannot coexist with a dirty owner.
        Transition& t = cell(p, ProtoEvent::WriteHit, DirGroup::Clean);
        t.others = OthersOp::Invalidate;
        t.reqState = t.reqStateAlone = LS::Modified;
        t.setDirty = true;
    }
}

Protocol
makeMsi()
{
    Protocol p;
    p.kind = ProtocolKind::MSI;
    p.name = "msi";
    p.display = "MSI";
    p.blurb = "invalidation-based, no clean-exclusive state";
    p.legalStates = stateBit(LS::Shared) | stateBit(LS::Modified);
    p.ownerStates = stateBit(LS::Modified);
    p.silentHit[0] = stateBit(LS::Shared) | stateBit(LS::Modified);
    p.silentHit[1] = stateBit(LS::Modified);
    identityWriteNext(p);
    p.hasExclusive = false;
    invalidationCore(p);
    return p;
}

Protocol
makeMesi()
{
    Protocol p;
    p.kind = ProtocolKind::MESI;
    p.name = "mesi";
    p.display = "MESI";
    p.blurb = "Illinois: clean-exclusive + silent E->M (paper default)";
    p.legalStates = stateBit(LS::Shared) | stateBit(LS::Exclusive) |
                    stateBit(LS::Modified);
    p.ownerStates = stateBit(LS::Modified);
    p.silentHit[0] = stateBit(LS::Shared) | stateBit(LS::Exclusive) |
                     stateBit(LS::Modified);
    p.silentHit[1] = stateBit(LS::Exclusive) | stateBit(LS::Modified);
    identityWriteNext(p);
    p.silentWriteNext[static_cast<int>(LS::Exclusive)] = LS::Modified;
    p.hasExclusive = true;
    invalidationCore(p);
    // Cold reads install clean-exclusive; a later read by someone else
    // downgrades the sole E copy.
    cell(p, ProtoEvent::ReadMiss, DirGroup::Uncached).reqState =
        cell(p, ProtoEvent::ReadMiss, DirGroup::Uncached).reqStateAlone =
            LS::Exclusive;
    cell(p, ProtoEvent::ReadMiss, DirGroup::Clean).others =
        OthersOp::DowngradeExclusive;
    return p;
}

Protocol
makeMoesi()
{
    Protocol p = makeMesi();
    p.kind = ProtocolKind::MOESI;
    p.name = "moesi";
    p.display = "MOESI";
    p.blurb = "Owned state: dirty lines stay dirty across read sharing";
    p.legalStates |= stateBit(LS::Owned);
    p.ownerStates |= stateBit(LS::Owned);
    // A dirty line read by another processor is NOT written back; the
    // supplier keeps ownership as Owned and writes back on eviction.
    {
        Transition& t = cell(p, ProtoEvent::ReadMiss, DirGroup::Dirty);
        t.ownerNext = LS::Owned;
        t.sharingWriteback = false;
        t.keepDirty = true;
    }
    // Writing while the entry is dirty (the requester holds S or O) is
    // an upgrade that invalidates every other holder, owner included.
    {
        Transition& t = cell(p, ProtoEvent::WriteHit, DirGroup::Dirty);
        t.others = OthersOp::Invalidate;
        t.reqState = t.reqStateAlone = LS::Modified;
        t.setDirty = true;
    }
    return p;
}

Protocol
makeDragon()
{
    Protocol p;
    p.kind = ProtocolKind::Dragon;
    p.name = "dragon";
    p.display = "Dragon";
    p.blurb = "update-based: writes broadcast updates, never invalidate";
    p.legalStates = stateBit(LS::Shared) | stateBit(LS::Exclusive) |
                    stateBit(LS::Owned) | stateBit(LS::Modified);
    p.ownerStates = stateBit(LS::Owned) | stateBit(LS::Modified);
    p.silentHit[0] = stateBit(LS::Shared) | stateBit(LS::Exclusive) |
                     stateBit(LS::Owned) | stateBit(LS::Modified);
    p.silentHit[1] = stateBit(LS::Exclusive) | stateBit(LS::Modified);
    identityWriteNext(p);
    p.silentWriteNext[static_cast<int>(LS::Exclusive)] = LS::Modified;
    p.hasExclusive = true;
    {
        Transition& t = cell(p, ProtoEvent::ReadMiss, DirGroup::Uncached);
        t.supply = Supply::Memory;
        t.reqState = t.reqStateAlone = LS::Exclusive;
    }
    {
        Transition& t = cell(p, ProtoEvent::ReadMiss, DirGroup::Clean);
        t.supply = Supply::Memory;
        t.others = OthersOp::DowngradeExclusive;
        t.reqState = t.reqStateAlone = LS::Shared;
    }
    {
        // Sm keeps supplying; memory stays stale until Sm is evicted.
        Transition& t = cell(p, ProtoEvent::ReadMiss, DirGroup::Dirty);
        t.supply = Supply::Owner;
        t.ownerNext = LS::Owned;
        t.keepDirty = true;
        t.reqState = t.reqStateAlone = LS::Shared;
    }
    {
        Transition& t = cell(p, ProtoEvent::WriteMiss, DirGroup::Uncached);
        t.supply = Supply::Memory;
        t.reqState = t.reqStateAlone = LS::Modified;
        t.setDirty = true;
    }
    {
        Transition& t = cell(p, ProtoEvent::WriteMiss, DirGroup::Clean);
        t.supply = Supply::Memory;
        t.others = OthersOp::Update;
        t.reqState = LS::Owned;  // Sm while other copies remain
        t.reqStateAlone = LS::Modified;
        t.setDirty = true;
    }
    {
        // The old Sm supplies, takes the update, and degrades to Sc.
        Transition& t = cell(p, ProtoEvent::WriteMiss, DirGroup::Dirty);
        t.supply = Supply::Owner;
        t.ownerNext = LS::Shared;
        t.others = OthersOp::Update;
        t.reqState = LS::Owned;
        t.reqStateAlone = LS::Modified;
        t.setDirty = true;
    }
    for (DirGroup g : {DirGroup::Clean, DirGroup::Dirty}) {
        // Write hit to Sc/Sm: broadcast the update, become the owner.
        Transition& t = cell(p, ProtoEvent::WriteHit, g);
        t.others = OthersOp::Update;
        t.reqState = LS::Owned;
        t.reqStateAlone = LS::Modified;
        t.setDirty = true;
    }
    return p;
}

} // namespace

const Protocol&
protocol(ProtocolKind k)
{
    static const Protocol msi = makeMsi();
    static const Protocol mesi = makeMesi();
    static const Protocol moesi = makeMoesi();
    static const Protocol dragon = makeDragon();
    switch (k) {
      case ProtocolKind::MSI:    return msi;
      case ProtocolKind::MESI:   return mesi;
      case ProtocolKind::MOESI:  return moesi;
      case ProtocolKind::Dragon: return dragon;
    }
    panic("unknown protocol kind");
}

const char*
protocolName(ProtocolKind k)
{
    return protocol(k).name;
}

bool
parseProtocol(const std::string& s, ProtocolKind* out)
{
    for (int i = 0; i < kNumProtocols; ++i) {
        auto k = static_cast<ProtocolKind>(i);
        if (s == protocol(k).name) {
            *out = k;
            return true;
        }
    }
    return false;
}

std::string
protocolZoo()
{
    std::string s;
    for (int i = 0; i < kNumProtocols; ++i) {
        const Protocol& p = protocol(static_cast<ProtocolKind>(i));
        s += p.name;
        for (std::size_t pad = std::string(p.name).size(); pad < 8; ++pad)
            s += ' ';
        s += p.blurb;
        s += '\n';
    }
    return s;
}

} // namespace splash::sim
