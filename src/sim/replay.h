/**
 * @file
 * Broadcast replay: one reference stream, many memory systems.
 *
 * The paper's memory-system characterizations (Figures 4-7, the
 * protocol ablation) vary only machine parameters -- line size, cache
 * size, replacement hints, data placement -- while the PRAM reference
 * stream of a given (application, P) is identical across all of them.
 * Re-executing the fiber simulation once per configuration therefore
 * repeats exactly the same work N times; this component executes the
 * application ONCE and feeds N independent MemSystem replicas from the
 * single stream.
 *
 * Pipeline shape: single producer (the Env's instrumentation, via
 * RefSink::access), multiple consumers (one host worker thread per
 * replica).  References are staged into fixed-capacity chunks placed
 * in a sequence-numbered ring; a chunk is published when full and
 * recycled only after every consumer has replayed it, which gives
 * bounded back-pressure: the producer stalls instead of buffering an
 * unbounded (or disk-materialized) trace.
 *
 * Determinism: each consumer replays every chunk in sequence order on
 * one thread, so each replica observes exactly the reference stream a
 * dedicated serial simulation would have observed -- statistics are
 * bit-identical to running the application once per configuration
 * (proven by tests/sim/replay_test.cc).  Stream-ordered control events
 * ride in the chunks themselves: statistics resets (measurement
 * boundaries) mark a chunk so each replica resets at the exact stream
 * position, and placement changes arrive through streamBarrier(),
 * which quiesces all consumers before the home map mutates.
 *
 * An inline (threads-off) mode replays chunks on the producer thread,
 * for single-core hosts: the redundant executions are still saved,
 * with no cross-thread traffic.
 */
#ifndef SPLASH2_SIM_REPLAY_H
#define SPLASH2_SIM_REPLAY_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "sim/memsys.h"
#include "sim/racecheck.h"
#include "sim/reusedist.h"
#include "sim/trace.h"

namespace splash::sim {

/** One operating point replayed by a BroadcastReplay.  A replica is a
 *  MemSystem (the default), a RaceChecker (race != Off), or a
 *  reuse-distance profiler (rdProfile) -- the latter two are extra
 *  replica kinds fed by the same chunks, so one execution yields
 *  characterizations, the race verdict, *and* the analytical
 *  working-set profile. */
struct ReplicaSpec
{
    MachineConfig machine;
    /** Home resolution for this replica: the run's placement-aware
     *  heap, or null for line-interleaved homes (the MemSystem
     *  default) -- the ablation's "no placement" point. */
    const HomeResolver* homes = nullptr;
    /** Invariant-checker sampling period for this replica's MemSystem
     *  (0 = off); see MemSystem::setCheckPeriod. */
    std::uint64_t checkPeriod = 0;
    /** Non-Off makes this replica a RaceChecker instead of a
     *  MemSystem; machine.nprocs and machine.cache.lineSize
     *  parameterize it. */
    RaceGranularity race = RaceGranularity::Off;
    /** True makes this replica a ReuseDistProfiler (sim/reusedist.h);
     *  machine.nprocs and machine.cache.lineSize parameterize it. */
    bool rdProfile = false;
};

class BroadcastReplay final : public RefSink
{
  public:
    /** @param threaded one consumer thread per replica; false replays
     *  chunks inline on the producer thread (single-core hosts).
     *  @param chunkRecords records per chunk; @param ringChunks chunks
     *  in flight before the producer stalls (back-pressure bound). */
    explicit BroadcastReplay(const std::vector<ReplicaSpec>& specs,
                             bool threaded = true,
                             std::size_t chunkRecords = std::size_t(1)
                                                        << 20,
                             int ringChunks = 4);
    ~BroadcastReplay() override;

    BroadcastReplay(const BroadcastReplay&) = delete;
    BroadcastReplay& operator=(const BroadcastReplay&) = delete;

    void access(const AccessRec& r) override;

    /** Stage a synchronization edge at its exact stream position;
     *  race replicas consume it, MemSystem replicas never see it. */
    void sync(const SyncRec& r) override;

    /** Stream-ordered statistics reset: every replica resets at this
     *  exact position of the reference stream (measurement boundary). */
    void resetStats() override;

    /** Quiesce: every published reference replayed in every replica. */
    void streamBarrier() override;

    /** Publish any partial chunk and quiesce; replica statistics are
     *  exact once this returns.  No-op after abortStream(). */
    void flush();

    /** Producer failed mid-stream: wake every consumer (including any
     *  blocked waiting for the next chunk) and discard undrained and
     *  partially staged work instead of replaying a torn tail.
     *  Idempotent.  The destructor calls this automatically when it
     *  runs during exception unwinding, so a throwing producer can
     *  never hang the consumers; replica statistics are unspecified
     *  afterwards. */
    void abortStream();

    /** True once the stream was aborted. */
    bool aborted() const { return aborted_.load(); }

    int replicas() const { return static_cast<int>(mems_.size()); }
    /** Replica @p i's memory system (spec'd race == Off); flush()
     *  first for exact stats. */
    MemSystem& replica(int i) { return *mems_[i]; }
    const MemSystem& replica(int i) const { return *mems_[i]; }
    /** True if replica @p i is a race checker. */
    bool isRaceReplica(int i) const { return race_[i] != nullptr; }
    /** Replica @p i's race checker (spec'd race != Off). */
    RaceChecker& raceReplica(int i) { return *race_[i]; }
    const RaceChecker& raceReplica(int i) const { return *race_[i]; }
    /** True if replica @p i is a reuse-distance profiler. */
    bool isRdReplica(int i) const { return rd_[i] != nullptr; }
    /** Replica @p i's reuse-distance profiler (spec'd rdProfile). */
    ReuseDistProfiler& rdReplica(int i) { return *rd_[i]; }
    const ReuseDistProfiler& rdReplica(int i) const { return *rd_[i]; }
    int threads() const { return static_cast<int>(consumers_.size()); }

  private:
    /** A sync edge between record [pos-1] and record [pos] of its
     *  chunk. */
    struct SyncAt
    {
        std::uint32_t pos = 0;
        SyncRec rec;
    };

    struct Chunk
    {
        std::uint64_t seq = 0;
        std::vector<AccessRec> recs;
        std::vector<SyncAt> syncs;
        bool reset = false;  ///< apply resetStats after the records
    };

    struct Consumer
    {
        int replica = 0;
        std::uint64_t done = 0;  ///< chunks fully replayed
        std::thread th;
    };

    void replayChunk(int replica, const Chunk& c);
    /** Producer: wait for slot of @p seq to be recycled, stage into it. */
    Chunk& acquireSlot();
    void publish(bool resetMark);
    void consumerLoop(Consumer& me);
    std::uint64_t minDone() const;
    /** Stop consumers and join; @p abort discards undrained chunks. */
    void shutdown(bool abort);

    std::size_t chunkRecords_;
    /** Parallel arrays, exactly one non-null per replica index. */
    std::vector<std::unique_ptr<MemSystem>> mems_;
    std::vector<std::unique_ptr<RaceChecker>> race_;
    std::vector<std::unique_ptr<ReuseDistProfiler>> rd_;

    std::vector<Chunk> ring_;
    Chunk* cur_ = nullptr;        ///< staging slot (producer-owned)
    std::uint64_t nextSeq_ = 0;   ///< seq of the chunk being staged

    mutable std::mutex mu_;
    std::condition_variable cvPublished_;  ///< producer -> consumers
    std::condition_variable cvRecycled_;   ///< consumers -> producer
    std::uint64_t published_ = 0;  ///< chunks visible to consumers
    bool stop_ = false;
    /** Producer failed; the tail is torn.  Atomic so the producer's
     *  hot path (access) can check it without taking the ring mutex. */
    std::atomic<bool> aborted_{false};
    /** In-flight exception count at construction: the destructor is
     *  running during unwinding exactly when the current count exceeds
     *  this, and must then abort instead of flushing a torn stream. */
    int uncaughtAtCtor_ = 0;
    std::vector<Consumer> consumers_;
};

} // namespace splash::sim

#endif // SPLASH2_SIM_REPLAY_H
