/**
 * @file
 * Coherence invariant checker: machine-checked trust for the
 * memory-system statistics.
 *
 * The paper's value rests on the simulated counters being exact, so
 * the protocol state they are derived from must be provably
 * consistent.  CoherenceChecker cross-validates the directory against
 * the per-processor cache line states and the traffic counters.  The
 * rules are parameterized by the configured Protocol descriptor
 * (legal-state set, owner-state set, clean-exclusive capability), so
 * one checker certifies every registered protocol:
 *
 *  - illegal-state:   every cached state is in the protocol's
 *    legalStates set (e.g. no Owned copy under MESI).
 *  - multiple-modified: at most one cache holds a line Modified.
 *  - exclusive-shared:  an Exclusive copy implies no other cached
 *    copy (and an exact sole-sharer directory entry).
 *  - owned-orphan:    an Owned copy exists only at the dirty owner of
 *    a dirty directory entry (which also bounds Owned to one copy).
 *  - sharer-missing:  every cached copy has its directory bit set.
 *  - sharer-stale:    with replacement hints the sharer vector is
 *    exact, so a set bit implies a cached copy; without hints the
 *    vector may only be a superset of the true sharers.
 *  - dirty-owner:     a dirty directory entry names a valid owner that
 *    is a sharer and holds the line in one of the protocol's owner
 *    states (Modified, or Owned/Sm where the protocol has them).
 *  - lazy-dirty-bound: protocols with a clean-exclusive state promote
 *    E->M on the fast path without consulting the directory, so a
 *    Modified copy under a clean entry is legal only while its holder
 *    is the sole sharer (reconcileDir repairs the entry at the next
 *    consult).  Any wider desync -- or any such copy under a protocol
 *    without clean-exclusive -- is corruption.
 *  - dir-entry-empty: entries with no sharers are erased eagerly.
 *  - resident-count:  per line, the number of cached copies matches
 *    the sharer count (equality with hints, <= without).
 *  - traffic-conservation: every byte of data traffic was produced by
 *    exactly one line transfer or writeback -- the global
 *    generalization of the per-transaction debug asserts:
 *    sum(data bytes) == lineSize * (transfers + writebacks).
 *
 * Under Interconnect::Bus there is no directory to cross-validate, so
 * the rules restate the snoop-response contract over the tag arrays
 * alone (lines are enumerated through Cache::forEachResident):
 *
 *  - bus-illegal-state:    as illegal-state, per cached copy.
 *  - bus-multiple-owner:   at most one cache may answer a snoop as
 *    owner (hold the line in one of the protocol's owner states) --
 *    the single-owner-on-bus invariant.
 *  - bus-modified-shared:  a Modified copy answers "exclusive dirty",
 *    so no other cache may answer "shared" for the same line.
 *  - bus-exclusive-shared: likewise for clean-exclusive copies.
 *  - bus-traffic-conservation: data-phase occupancy matches the lines
 *    and word-update broadcasts that crossed the wires:
 *    sum(busDataCycles) == lineCycles * (transfers + writebacks)
 *                          + updateCycles * update broadcasts,
 *    and the directory byte counters stay untouched.
 *
 * The checker only reads simulator state; enabling it cannot perturb
 * any statistic.  MemSystem::setCheckPeriod() runs the full sweep
 * every N slow-path transactions (sampled mode, usable in Release);
 * debug builds additionally validate the touched line after every
 * transaction.  The checker is trusted because the fault-injection
 * harness (sim/faultinject.h) proves each invariant fires when the
 * corresponding corruption is seeded.
 */
#ifndef SPLASH2_SIM_CHECK_H
#define SPLASH2_SIM_CHECK_H

#include <cstddef>
#include <string>
#include <vector>

#include "base/types.h"
#include "sim/directory.h"

namespace splash::sim {

class MemSystem;

/** One detected inconsistency between directory, caches, or counters. */
struct Violation
{
    std::string rule;  ///< stable invariant id (e.g. "sharer-stale")
    std::string what;  ///< human-readable description
    Addr line = 0;     ///< affected line (0 for global invariants)
};

class CoherenceChecker
{
  public:
    explicit CoherenceChecker(const MemSystem& mem) : mem_(mem) {}

    /** Validate every directory entry, the per-processor resident
     *  counts, and traffic conservation.  Appends to @p out (if any)
     *  and returns the number of violations found. */
    std::size_t checkAll(std::vector<Violation>* out = nullptr) const;

    /** Validate the single line @p lineAddr (cheap: O(nprocs)); used
     *  as the debug-mode per-transaction pass. */
    std::size_t checkLine(Addr lineAddr,
                          std::vector<Violation>* out = nullptr) const;

    /** Validate global traffic conservation only. */
    std::size_t checkTraffic(std::vector<Violation>* out = nullptr) const;

  private:
    /** Per-line rules; @p d is null when no directory entry exists. */
    void checkOneLine(Addr line, const DirEntry* d,
                      std::vector<Violation>* out, std::size_t& n) const;
    /** Per-line rules for the snoopy bus (no directory to consult). */
    void checkOneLineBus(Addr line, std::vector<Violation>* out,
                         std::size_t& n) const;

    const MemSystem& mem_;
};

/** Format a violation list for diagnostics ("rule: what" per line). */
std::string formatViolations(const std::vector<Violation>& v);

} // namespace splash::sim

#endif // SPLASH2_SIM_CHECK_H
