/**
 * @file
 * Table-driven directory coherence protocols.
 *
 * The coherence state machine lives here as data, not code: a Protocol
 * descriptor holds one Transition entry per (event, directory-group)
 * cell plus precomputed hit masks, and MemSystem executes whatever the
 * table says.  Events are the three slow-path transactions (read miss,
 * write miss, non-silent write hit); the directory group collapses the
 * home's view of a line to uncached / clean / dirty.  Everything a
 * protocol may vary -- who supplies the line, what happens to the
 * owner and the other holders, which state the requester installs,
 * whether memory is updated -- is a field of the Transition.
 *
 * Hits never consult the table.  Each protocol precomputes
 * - silentHit[read|write]: the mask of line states that hit without a
 *   directory transaction, tested with one shift on the fast path; and
 * - silentWriteNext[]: the in-place promotion applied by the cache on
 *   a write hit (E->M for the Illinois-style protocols, identity
 *   elsewhere), which is the single home of the silent-upgrade rule
 *   that used to be duplicated between Cache::probeFor and MemSystem.
 *
 * Four protocols are registered:
 *
 *  - msi:    invalidation-based, no clean-exclusive state; every
 *            first write after a read pays an upgrade transaction.
 *  - mesi:   the paper's Illinois protocol (default); cold reads
 *            install Exclusive, write hits to E promote silently, a
 *            dirty line read by another processor is written back to
 *            memory ("sharing writeback") and degrades to Shared.
 *  - moesi:  adds an Owned state: a dirty line read by another
 *            processor stays dirty at its owner (now Owned), which
 *            keeps supplying cache-to-cache with no memory update
 *            until the owner writes back on eviction.
 *  - dragon: update-based: writes to shared lines broadcast word
 *            updates to the other holders instead of invalidating
 *            them, so coherence invalidations (and hence invalidation
 *            misses) are zero; the writer holds the line Sm (mapped to
 *            Owned) and supplies it dirty, Dragon's Sc maps to Shared.
 *
 * The registry is static and immutable; references returned by
 * protocol() are valid for the program's lifetime.
 */
#ifndef SPLASH2_SIM_PROTOCOL_H
#define SPLASH2_SIM_PROTOCOL_H

#include <cstdint>
#include <string>

#include "base/types.h"

namespace splash::sim {

/** Cache line states, the union over all registered protocols.  MESI
 *  uses {I,S,E,M}; MOESI adds Owned; Dragon maps Sc->Shared and
 *  Sm->Owned.  States a protocol does not use are simply absent from
 *  its legalStates mask. */
enum class LineState : std::uint8_t {
    Invalid = 0,
    Shared,
    Exclusive,  ///< valid-exclusive: clean, only cached copy
    Owned,      ///< dirty but possibly shared; this copy supplies & writes back
    Modified
};

constexpr int kNumLineStates = 5;

/** Bitmask helpers over LineState sets. */
constexpr std::uint8_t
stateBit(LineState s)
{
    return static_cast<std::uint8_t>(1u << static_cast<int>(s));
}

constexpr bool
stateIn(std::uint8_t mask, LineState s)
{
    return (mask >> static_cast<int>(s)) & 1;
}

enum class ProtocolKind : std::uint8_t { MSI = 0, MESI, MOESI, Dragon };
constexpr int kNumProtocols = 4;

/** The three slow-path transactions the directory arbitrates. */
enum class ProtoEvent : std::uint8_t {
    ReadMiss = 0,
    WriteMiss,
    WriteHit  ///< non-silent write hit (upgrade/update transaction)
};
constexpr int kNumProtoEvents = 3;

/** The home's collapsed view of a line when a request arrives. */
enum class DirGroup : std::uint8_t { Uncached = 0, Clean, Dirty };
constexpr int kNumDirGroups = 3;

/** Who supplies the line's data for this transaction. */
enum class Supply : std::uint8_t {
    None = 0,  ///< permissions only, no data moves (upgrades)
    Memory,    ///< home memory supplies
    Owner      ///< the dirty owner supplies cache-to-cache
};

/** What happens to the holders other than requester and owner. */
enum class OthersOp : std::uint8_t {
    None = 0,
    DowngradeExclusive,  ///< a sole clean-exclusive copy degrades to S
    Invalidate,          ///< invalidate every other listed sharer
    Update               ///< send a word update to every other sharer
};

/** One cell of the transition table. */
struct Transition
{
    bool valid = false;          ///< cell reachable under this protocol
    Supply supply = Supply::None;
    OthersOp others = OthersOp::None;
    /** Requester's new state when other sharers remain / when it ends
     *  up the only listed holder. */
    LineState reqState = LineState::Invalid;
    LineState reqStateAlone = LineState::Invalid;
    /** Owner's state after supplying (Supply::Owner only); Invalid
     *  means the owner's copy is invalidated. */
    LineState ownerNext = LineState::Invalid;
    /** Owner also writes the line back to home memory while supplying
     *  (MESI sharing writeback). */
    bool sharingWriteback = false;
    /** Directory outcome: setDirty makes the requester the dirty
     *  owner; keepDirty preserves the current owner; neither clears
     *  the dirty bit. */
    bool setDirty = false;
    bool keepDirty = false;
};

/** Immutable descriptor of one coherence protocol. */
struct Protocol
{
    ProtocolKind kind = ProtocolKind::MESI;
    const char* name = "";     ///< stable CLI name (lowercase)
    const char* display = "";  ///< report display name
    const char* blurb = "";    ///< one-line summary for --protocol list

    /** States a cached (non-Invalid) copy may legally be in under
     *  this protocol; the Invalid bit is never set. */
    std::uint8_t legalStates = 0;
    /** States that carry ownership of dirty data: the directory's
     *  dirty owner must hold one of these, and evicting one writes
     *  the line back. */
    std::uint8_t ownerStates = 0;
    /** Hit masks for [AccessType::Read, AccessType::Write]: states
     *  that complete in the requester's tag array alone. */
    std::uint8_t silentHit[2] = {0, 0};
    /** In-place state applied by the cache on a write hit, indexed by
     *  the pre-write state (identity where no silent promotion
     *  exists).  The single home of the silent E->M upgrade. */
    LineState silentWriteNext[kNumLineStates] = {};
    /** Protocol has a clean-exclusive state (enables the lazy-dirty
     *  reconciliation exemption in the invariant checker). */
    bool hasExclusive = false;

    Transition table[kNumProtoEvents][kNumDirGroups];

    const Transition&
    at(ProtoEvent e, DirGroup g) const
    {
        return table[static_cast<int>(e)][static_cast<int>(g)];
    }
};

/** The registered descriptor for @p k (static lifetime). */
const Protocol& protocol(ProtocolKind k);

/** Stable CLI name ("msi", "mesi", "moesi", "dragon"). */
const char* protocolName(ProtocolKind k);

/** Parse a CLI name; returns false if @p s names no protocol.  Names
 *  are exact (lowercase): no case folding, no prefixes. */
bool parseProtocol(const std::string& s, ProtocolKind* out);

/** One line per protocol ("name  blurb"), for --protocol list. */
std::string protocolZoo();

} // namespace splash::sim

#endif // SPLASH2_SIM_PROTOCOL_H
