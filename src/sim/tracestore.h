/**
 * @file
 * Record-once trace store: compact on-disk reference traces.
 *
 * Every characterization of a given (application, P, problem size)
 * replays exactly the same deterministic reference stream; the
 * broadcast engine (sim/replay.h) amortizes the producing execution
 * *within* one process, and this component makes it durable: a
 * TraceWriter records the stream once into a compact chunked file, and
 * a TraceReader replays it -- on any machine, in any later process --
 * with zero fiber execution.  Characterization becomes a cache lookup
 * instead of a simulation.
 *
 * What a trace carries (everything a BroadcastReplay consumer needs):
 *
 *  - every AccessRec (addr, ltime, size, proc, type, atomic flag),
 *  - every SyncRec at its exact stream position (race-detector edges),
 *  - statistics-reset events (measurement boundaries),
 *  - placement events (SharedHeap::setHome spans) so home resolution
 *    can be rebuilt without the runtime (ReplayPlacement),
 *  - the execution profile (per-processor ProcStats image + PRAM
 *    elapsed + validation verdict) in a footer, so PRAM-only figures
 *    replay too.
 *
 * On-disk layout (all integers little-endian, packed):
 *
 *   [Header 128 B]  magic "S2TRACE1", format version, (app, P,
 *                   problem size, seed, quantum) identity, record /
 *                   sync / chunk totals, finalized flag, header CRC.
 *   [Chunk]*        24 B frame (magic, records, events, encoded
 *                   bytes, stored bytes, CRC32 over the frame fields
 *                   and the payload) + payload.
 *   [Footer]        execution profile + CRC.
 *
 * Chunk payload: column-oriented delta encoding, then an LZ77 block
 * compressor whose window spans the whole chunk (reference streams
 * repeat with the period of an application iteration, so one
 * iteration matches against the previous one).  Columns: processor
 * run lengths; type/atomic bitmaps; a per-chunk size dictionary plus
 * index bit-planes; address deltas against the better of two
 * replayable predictors (previous address, or a page-keyed table
 * that untangles interleaved streams), chosen per chunk by trial
 * compression; a logical-time delta dictionary plus index bit-planes
 * with varint escapes; and a stream-position-ordered event list
 * (sync / reset / placement).  The delta columns are laid out in
 * processor-grouped order and their prediction state persists across
 * chunks.  The suite amortizes to ~2 bits per reference
 * (BENCH_trace.json pins the measured sizes).
 *
 * Robustness: the reader mmaps the file and bounds-checks every parse
 * against the mapping; the header CRC, per-chunk CRC, footer CRC, and
 * the pinned identity reject truncated, corrupted, or stale files
 * with a diagnostic instead of crashing or replaying garbage
 * (tests/sim/tracestore_test.cc byte-flip fuzz).
 */
#ifndef SPLASH2_SIM_TRACESTORE_H
#define SPLASH2_SIM_TRACESTORE_H

#include <array>
#include <cstdint>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "base/types.h"
#include "sim/directory.h"
#include "sim/trace.h"

namespace splash::sim {

/** Low-level codec primitives, exposed for unit/fuzz tests. */
namespace tracecodec {

/** LEB128 unsigned varint. */
void putVarint(std::vector<std::uint8_t>& out, std::uint64_t v);

/** Decode one varint; advances @p p.  False on overrun or a varint
 *  longer than 10 bytes (corrupt input). */
bool getVarint(const std::uint8_t** p, const std::uint8_t* end,
               std::uint64_t* v);

constexpr std::uint64_t
zigzag(std::int64_t v)
{
    return (static_cast<std::uint64_t>(v) << 1) ^
           static_cast<std::uint64_t>(v >> 63);
}

constexpr std::int64_t
unzigzag(std::uint64_t v)
{
    return static_cast<std::int64_t>(v >> 1) ^
           -static_cast<std::int64_t>(v & 1);
}

/** CRC-32 (IEEE 802.3 polynomial, reflected). */
std::uint32_t crc32(const void* data, std::size_t n,
                    std::uint32_t seed = 0);

/** LZ77 block compressor (LZ4-style token format: literal runs +
 *  [varint offset, length] back-references reaching the whole
 *  block).  Appends to @p out; always produces a stream lzDecompress
 *  can invert. */
void lzCompress(const std::uint8_t* in, std::size_t n,
                std::vector<std::uint8_t>& out);

/** Decompress exactly @p outN bytes; false on malformed input (every
 *  read and write is bounds-checked -- corrupt data cannot crash). */
bool lzDecompress(const std::uint8_t* in, std::size_t n,
                  std::uint8_t* out, std::size_t outN);

} // namespace tracecodec

/** Identity of a recorded execution.  A trace is replayable only for
 *  the exact (app, P, problem size, seed, quantum) it was recorded
 *  from; the reader rejects any mismatch. */
struct TraceMeta
{
    std::string app;  ///< App::name(), <= 15 chars
    int nprocs = 0;
    double scale = 1.0;
    long n = 0;
    long iters = 0;
    long aux = 0;
    unsigned seed = 1234;
    std::uint64_t quantum = 250;

    bool operator==(const TraceMeta& o) const;
    bool operator!=(const TraceMeta& o) const { return !(*this == o); }

    /** "fft P=8 scale=0.25 n=0 iters=0 aux=0 seed=1234 quantum=250" */
    std::string describe() const;

    /** Canonical store filename: <app>_p<P>_<16-hex cfg hash>.s2t */
    std::string fileName() const;
};

/** Execution profile pinned in the trace footer: one row of raw
 *  counters per processor, in rt::ProcStats field order. */
struct ExecProfile
{
    static constexpr int kFields = 12;
    /** {reads, writes, flops, work, barriers, locks, pauses,
     *   barrierWait, lockWait, pauseWait, startTime, finishTime} */
    using Row = std::array<std::uint64_t, kFields>;

    bool valid = true;  ///< application self-check outcome
    Tick elapsed = 0;   ///< PRAM time of the measured window
    std::vector<Row> procs;
};

/** Stream-ordered replica of SharedHeap's home placement, rebuilt
 *  from recorded placement events so replayed MemSystem replicas
 *  resolve homes without the runtime (same span-map semantics and
 *  line-interleaved fallback as rt::SharedHeap). */
class ReplayPlacement final : public HomeResolver
{
  public:
    void reset(int nprocs, int lineSize = 64);
    void apply(Addr start, std::uint64_t bytes, ProcId home);
    ProcId homeOf(Addr lineAddr) const override;

  private:
    struct Span
    {
        Addr end;
        ProcId home;
    };
    int nprocs_ = 1;
    int lineShift_ = 6;
    std::map<Addr, Span> homes_;
};

/** Record path: a RefSink that writes the stream to disk.  Attach via
 *  rt::Env::attachSink alongside any live sinks (recording never
 *  perturbs the run), then finalize() with the execution profile.
 *
 *  The writer stages into <path>.tmp.<pid> and atomically renames at
 *  finalize(), so a crashed or aborted recording never leaves a
 *  half-written file under the canonical name; destruction without
 *  finalize() removes the temporary. */
class TraceWriter final : public RefSink
{
  public:
    /** Default records per chunk.  Large chunks are what make the
     *  LZ stage bite: a processor's reference stream repeats with
     *  the period of an application iteration (hundreds of thousands
     *  of records), and a match can only reach the previous
     *  iteration if both land in the same chunk's per-processor
     *  group.  4 M records costs ~100 MB of encode/decode scratch,
     *  well worth a 2-3x smaller trace on the iterative apps. */
    static constexpr std::size_t kChunkRecords = std::size_t(1) << 22;

    /** Opens <path>.tmp.<pid> for writing; fatal() on I/O failure
     *  (callers validate the directory up front in the CLI). */
    TraceWriter(std::string path, const TraceMeta& meta,
                std::size_t chunkRecords = kChunkRecords);
    ~TraceWriter() override;

    TraceWriter(const TraceWriter&) = delete;
    TraceWriter& operator=(const TraceWriter&) = delete;

    void access(const AccessRec& r) override;
    void sync(const SyncRec& r) override;
    /** Records a statistics-reset *event* at the current stream
     *  position (a measurement boundary to reproduce at replay);
     *  recorded data is never discarded. */
    void resetStats() override;
    void place(const PlaceRec& r) override;

    /** Flush the tail chunk, write the footer, rewrite the header
     *  with final totals, and atomically publish the file.  False
     *  (with @p err set) on I/O failure. */
    bool finalize(const ExecProfile& exec, std::string* err);

    std::uint64_t records() const { return totalRecords_; }
    std::uint64_t bytesWritten() const { return bytesWritten_; }

  private:
    struct Event
    {
        std::uint32_t pos;  ///< record index the event precedes
        std::uint8_t kind;  ///< 0 sync, 1 reset, 2 place
        SyncRec sync;
        PlaceRec place;
    };

    void flushChunk();

    std::string path_;
    std::string tmpPath_;
    TraceMeta meta_;
    std::size_t chunkRecords_;
    std::FILE* f_ = nullptr;
    bool finalized_ = false;

    std::vector<AccessRec> recs_;
    std::vector<Event> events_;
    std::vector<std::uint8_t> enc_;   // encode scratch
    std::vector<std::uint8_t> comp_;  // compress scratch
    std::vector<std::uint8_t> ltex_;  // ltime-exception scratch
    std::vector<std::int64_t> ltd_;   // grouped ltime-delta scratch
    /** Per-processor (start, length) runs of the chunk being encoded:
     *  the iteration order of the processor-grouped delta columns. */
    std::vector<std::vector<std::pair<std::uint32_t, std::uint32_t>>>
        runsByProc_;
    /** Per-processor page-keyed next-address tables: the address
     *  column's second predictor (mirrored by the reader). */
    std::vector<std::vector<Addr>> addrTbl_;
    std::vector<Addr> lastAddr_;
    std::vector<Tick> lastLtime_;

    std::uint64_t totalRecords_ = 0;
    std::uint64_t totalSyncs_ = 0;
    std::uint64_t totalChunks_ = 0;
    std::uint64_t bytesWritten_ = 0;
};

/** Replay path: mmaps a trace file, validates it, and feeds any
 *  RefSink the exact stream the runtime produced -- references, sync
 *  edges, resets, and placement changes in stream order, with a
 *  streamBarrier() quiesce before every placement mutation (mirroring
 *  the live Env), so a BroadcastReplay fed from disk is
 *  indistinguishable from one fed by a live execution. */
class TraceReader
{
  public:
    /** Open + validate header and file structure; null with @p err
     *  set on any defect (bad magic, stale version, CRC mismatch,
     *  truncation, unfinalized file, bad footer). */
    static std::unique_ptr<TraceReader>
    open(const std::string& path, std::string* err);

    ~TraceReader();

    TraceReader(const TraceReader&) = delete;
    TraceReader& operator=(const TraceReader&) = delete;

    const TraceMeta& meta() const { return meta_; }
    const ExecProfile& exec() const { return exec_; }
    std::uint64_t records() const { return totalRecords_; }
    std::uint64_t syncs() const { return totalSyncs_; }
    std::uint64_t fileBytes() const { return size_; }

    /** Home resolver rebuilt from the recorded placement events;
     *  valid for replicas during and after replay(). */
    const HomeResolver* placement() const { return &placement_; }

    /** Decode every chunk and deliver the stream to @p sink (null =
     *  verify-only: CRC + structure walk with no delivery).  False
     *  with @p err on any corruption.  Placement events mutate
     *  placement() between a streamBarrier() and the next record,
     *  exactly like the live runtime. */
    bool replay(RefSink* sink, std::string* err);

  private:
    TraceReader() = default;
    bool parseHeaderAndIndex(std::string* err);

    const std::uint8_t* data_ = nullptr;
    std::size_t size_ = 0;
    int fd_ = -1;

    TraceMeta meta_;
    ExecProfile exec_;
    std::uint64_t totalRecords_ = 0;
    std::uint64_t totalSyncs_ = 0;
    std::uint64_t totalChunks_ = 0;
    std::size_t chunkOffset_ = 0;  ///< first chunk frame
    ReplayPlacement placement_;
};

/** Directory-of-traces helpers: one canonical file per recorded
 *  (app, P, problem size, seed, quantum). */
namespace tracestore {

/** Canonical path of @p m inside store directory @p dir; if @p dir
 *  names an existing regular file it is returned unchanged (direct
 *  single-file replay). */
std::string pathFor(const std::string& dir, const TraceMeta& m);

/** Open the trace for @p m from @p dirOrFile and require its recorded
 *  identity to equal @p m; null with a diagnostic in @p err on a
 *  missing file, any validation failure, or an identity mismatch. */
std::unique_ptr<TraceReader> openFor(const std::string& dirOrFile,
                                     const TraceMeta& m,
                                     std::string* err);

/** True when a finalized, identity-matching trace for @p m already
 *  exists in @p dir (the record-once skip). */
bool haveTrace(const std::string& dir, const TraceMeta& m);

} // namespace tracestore

} // namespace splash::sim

#endif // SPLASH2_SIM_TRACESTORE_H
