/**
 * @file
 * Deterministic protocol fault injection.
 *
 * The invariant checker (sim/check.h) is only trustworthy if it
 * demonstrably fires on real corruption, so this harness seeds the
 * exact states a protocol bug would leave behind:
 *
 *  - DroppedInval:   an invalidation was "sent" but the sharer bit was
 *                    cleared anyway -- a cache keeps a copy the
 *                    directory no longer knows about.
 *  - StaleSharer:    a sharer bit set for a processor holding no copy
 *                    (meaningful only with replacement hints, where the
 *                    vector is supposed to be exact).
 *  - DoubleModified: two caches granted Modified for the same line --
 *                    the canonical MESI exclusivity break.
 *  - LostHint:       a replacement hint was lost: the cache dropped the
 *                    line but the directory bit survived (again only a
 *                    fault when hints are on).
 *  - DirtyDesync:    a clean directory entry marked dirty with an owner
 *                    whose copy is in none of the protocol's owner
 *                    states -- a broken lazy dirty-bit reconciliation.
 *  - TrafficSkew:    a line's worth of bytes credited to a counter with
 *                    no corresponding transfer -- breaks global traffic
 *                    conservation.
 *  - IllegalState:   a cached copy flipped to a state outside the
 *                    protocol's legal-state set (e.g. Exclusive under
 *                    MSI, Owned under MESI) -- a table-decode bug.
 *                    Ineligible under protocols whose legal set is the
 *                    full state alphabet (MOESI, Dragon).
 *
 * The kinds above corrupt directory state and are eligible only under
 * Interconnect::Directory.  Bus mode (sim/bus.h) has no directory, so
 * its kinds seed the states a broken snoop path would leave in the tag
 * arrays (candidates enumerate Cache::forEachResident instead of the
 * directory map):
 *
 *  - SnoopMissedInval: a writer took Modified but one cache never saw
 *                      the invalidating broadcast -- a Modified copy
 *                      coexists with surviving valid copies.
 *  - DoubleOwner:      two caches would both answer a snoop as owner
 *                      (both in an owner state) -- broken bus
 *                      arbitration of the ownership handoff.
 *  - GhostExclusive:   a copy granted clean-exclusive although the
 *                      snoop's shared line was asserted (other copies
 *                      exist).  Ineligible under protocols without a
 *                      clean-exclusive state (MSI).
 *  - BusTrafficSkew:   data-phase cycles credited with no line or
 *                      word-update broadcast on the wires -- breaks
 *                      bus-occupancy conservation.
 *
 * The predicates are parameterized by the configured Protocol
 * descriptor, so every kind (except where noted ineligible) seeds a
 * genuine fault under every registered protocol.
 *
 * Injection is deterministic: eligible (line, proc) candidates are
 * collected in sorted order and @p seed indexes into them, so a
 * failing seed reproduces exactly.  inject() returns a description of
 * the mutation, or "" when the current simulator state offers no
 * eligible target (e.g. hint faults with hints disabled).
 */
#ifndef SPLASH2_SIM_FAULTINJECT_H
#define SPLASH2_SIM_FAULTINJECT_H

#include <cstdint>
#include <string>

namespace splash::sim {

class MemSystem;

enum class FaultKind : int {
    DroppedInval = 0,
    StaleSharer,
    DoubleModified,
    LostHint,
    DirtyDesync,
    TrafficSkew,
    IllegalState,
    SnoopMissedInval,  ///< bus-mode kinds from here on
    DoubleOwner,
    GhostExclusive,
    BusTrafficSkew,
    NumKinds
};

constexpr int kNumFaultKinds = static_cast<int>(FaultKind::NumKinds);

/** Stable CLI name of a fault kind (e.g. "dropped-inval"). */
const char* faultKindName(FaultKind k);

/** Parse a CLI name; returns false if @p s names no fault kind. */
bool parseFaultKind(const std::string& s, FaultKind* out);

/** True for the kinds that corrupt snoopy-bus state; such kinds are
 *  eligible only under Interconnect::Bus, the rest only under
 *  Interconnect::Directory.  Lets the CLI reject mismatched
 *  --interconnect / --inject combos at parse time. */
bool faultKindIsBus(FaultKind k);

class FaultInjector
{
  public:
    explicit FaultInjector(MemSystem& mem) : mem_(mem) {}

    /** Mutate the simulator state with one fault of kind @p k.  The
     *  target is the seed-th eligible candidate in deterministic
     *  (line, proc) order.  Returns a description of what was broken,
     *  or "" if no eligible target exists in the current state. */
    std::string inject(FaultKind k, std::uint64_t seed);

  private:
    MemSystem& mem_;
};

} // namespace splash::sim

#endif // SPLASH2_SIM_FAULTINJECT_H
