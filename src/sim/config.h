/**
 * @file
 * Machine-model configuration for the memory-system simulator.
 *
 * The defaults reproduce the operating point of the SPLASH-2
 * characterization paper: 1 MB, 4-way set-associative, 64-byte-line
 * caches kept coherent by a directory-based Illinois (MESI) protocol
 * with replacement hints, 8-byte overhead packets, PRAM timing.
 */
#ifndef SPLASH2_SIM_CONFIG_H
#define SPLASH2_SIM_CONFIG_H

#include <cstdint>
#include <string>

#include "base/log.h"
#include "base/types.h"
#include "sim/bus.h"
#include "sim/protocol.h"

namespace splash::sim {

/** Configuration of one per-processor cache. */
struct CacheConfig
{
    /** Total capacity in bytes (power of two). */
    std::uint64_t size = 1u << 20;
    /** Associativity; 0 means fully associative. */
    int assoc = 4;
    /** Line size in bytes (power of two). */
    int lineSize = 64;

    int
    numLines() const
    {
        return static_cast<int>(size / lineSize);
    }

    int
    numSets() const
    {
        int ways = assoc == 0 ? numLines() : assoc;
        return numLines() / ways;
    }

    void
    validate() const
    {
        if (!isPow2(size) || !isPow2(lineSize))
            fatal("cache size and line size must be powers of two");
        if (assoc < 0 || (assoc != 0 && numLines() % assoc != 0))
            fatal("cache associativity does not divide line count");
        if (lineSize < 8 || static_cast<std::uint64_t>(lineSize) > size)
            fatal("line size must be in [8, size]");
    }
};

/** Full machine configuration. */
struct MachineConfig
{
    int nprocs = 32;
    CacheConfig cache;
    /** Size of request/invalidation/ack/hint packets and of the header
     *  attached to each data transfer, in bytes (paper: 8). */
    int overheadBytes = 8;
    /** Send replacement hints so the directory's sharer lists stay
     *  exact (the paper's protocol assumption). When disabled, clean
     *  replacements are silent and the directory sends spurious
     *  invalidations to stale sharers. */
    bool replacementHints = true;
    /** Coherence protocol (sim/protocol.h); the paper's machine runs
     *  the Illinois MESI protocol. */
    ProtocolKind protocol = ProtocolKind::MESI;
    /** Interconnect organization (sim/bus.h): point-to-point directory
     *  machine (the paper's default) or a snoopy broadcast bus. */
    Interconnect interconnect = Interconnect::Directory;
    /** Bus data-path width in bytes per bus cycle (bus mode only;
     *  power of two, at most one line): a line transfer occupies the
     *  data wires for lineSize / busWidthBytes cycles. */
    int busWidthBytes = 8;

    void
    validate() const
    {
        if (nprocs < 1 || nprocs > kMaxProcs)
            fatal("processor count must be in [1, " +
                  std::to_string(kMaxProcs) + "]: the full-map " +
                  "directory tracks sharers in a " +
                  std::to_string(kMaxProcs) + "-bit mask (got " +
                  std::to_string(nprocs) + ")");
        cache.validate();
        if (busWidthBytes < 1 || !isPow2(busWidthBytes) ||
            busWidthBytes > cache.lineSize)
            fatal("bus width must be a power of two in [1, lineSize]");
    }
};

} // namespace splash::sim

#endif // SPLASH2_SIM_CONFIG_H
