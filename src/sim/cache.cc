#include "sim/cache.h"

#include "base/log.h"

namespace splash::sim {

Cache::Cache(const CacheConfig& cfg, const Protocol& proto) : cfg_(cfg)
{
    cfg_.validate();
    for (int i = 0; i < kNumLineStates; ++i)
        writeNext_[i] = proto.silentWriteNext[i];
    ways_ = cfg_.assoc == 0 ? cfg_.numLines() : cfg_.assoc;
    numSets_ = cfg_.numLines() / ways_;
    big_ = ways_ > 16;
    if (!big_)
        sets_.resize(numSets_ * ways_);
    else
        index_.reserve(cfg_.numLines() * 2);
}

LineState
Cache::probeForBig(Addr lineAddr, AccessType type)
{
    auto it = index_.find(lineAddr);
    if (it == index_.end())
        return LineState::Invalid;
    lru_.splice(lru_.begin(), lru_, it->second);
    LineState st = it->second->second;
    if (type == AccessType::Write)
        it->second->second = writeNext_[static_cast<int>(st)];
    return st;
}

Cache::Way*
Cache::findWay(Addr lineAddr)
{
    Way* base = &sets_[setIndex(lineAddr) * ways_];
    for (int w = 0; w < ways_; ++w) {
        if (base[w].state != LineState::Invalid && base[w].tag == lineAddr)
            return &base[w];
    }
    return nullptr;
}

const Cache::Way*
Cache::findWay(Addr lineAddr) const
{
    const Way* base = &sets_[setIndex(lineAddr) * ways_];
    for (int w = 0; w < ways_; ++w) {
        if (base[w].state != LineState::Invalid && base[w].tag == lineAddr)
            return &base[w];
    }
    return nullptr;
}

LineState
Cache::probe(Addr lineAddr)
{
    if (big_) {
        auto it = index_.find(lineAddr);
        if (it == index_.end())
            return LineState::Invalid;
        lru_.splice(lru_.begin(), lru_, it->second);
        return it->second->second;
    }
    Way* w = findWay(lineAddr);
    if (!w)
        return LineState::Invalid;
    w->lastUse = ++useClock_;
    return w->state;
}

LineState
Cache::peek(Addr lineAddr) const
{
    if (big_) {
        auto it = index_.find(lineAddr);
        return it == index_.end() ? LineState::Invalid : it->second->second;
    }
    const Way* w = findWay(lineAddr);
    return w ? w->state : LineState::Invalid;
}

void
Cache::setState(Addr lineAddr, LineState st)
{
    ensure(st != LineState::Invalid, "use invalidate() to drop lines");
    if (big_) {
        auto it = index_.find(lineAddr);
        ensure(it != index_.end(), "setState on absent line");
        it->second->second = st;
        return;
    }
    Way* w = findWay(lineAddr);
    ensure(w != nullptr, "setState on absent line");
    w->state = st;
}

Cache::Victim
Cache::fill(Addr lineAddr, LineState st)
{
    ensure(st != LineState::Invalid, "cannot fill an Invalid line");
    Victim v;
    if (big_) {
        ensure(!index_.count(lineAddr), "fill of already-present line");
        if (index_.size() == static_cast<size_t>(cfg_.numLines())) {
            auto victim = std::prev(lru_.end());
            v.valid = true;
            v.lineAddr = victim->first;
            v.state = victim->second;
            index_.erase(victim->first);
            lru_.erase(victim);
        }
        lru_.emplace_front(lineAddr, st);
        index_[lineAddr] = lru_.begin();
        return v;
    }
    ensure(findWay(lineAddr) == nullptr, "fill of already-present line");
    Way* base = &sets_[setIndex(lineAddr) * ways_];
    Way* slot = nullptr;
    for (int w = 0; w < ways_; ++w) {
        if (base[w].state == LineState::Invalid) {
            slot = &base[w];
            break;
        }
    }
    if (!slot) {
        slot = &base[0];
        for (int w = 1; w < ways_; ++w) {
            if (base[w].lastUse < slot->lastUse)
                slot = &base[w];
        }
        v.valid = true;
        v.lineAddr = slot->tag;
        v.state = slot->state;
    }
    slot->tag = lineAddr;
    slot->state = st;
    slot->lastUse = ++useClock_;
    return v;
}

void
Cache::invalidate(Addr lineAddr)
{
    if (big_) {
        auto it = index_.find(lineAddr);
        if (it == index_.end())
            return;
        lru_.erase(it->second);
        index_.erase(it);
        return;
    }
    Way* w = findWay(lineAddr);
    if (w)
        w->state = LineState::Invalid;
}

std::uint64_t
Cache::residentLines() const
{
    if (big_)
        return index_.size();
    std::uint64_t n = 0;
    for (const auto& w : sets_) {
        if (w.state != LineState::Invalid)
            ++n;
    }
    return n;
}

} // namespace splash::sim
