/**
 * @file
 * Reference-stream records and sinks.
 *
 * The runtime -> simulator boundary moves shared-memory references in
 * one of two shapes (rt::Delivery): a synchronous call per reference,
 * or batches of AccessRec drained at scheduling boundaries.  Because
 * exactly one simulated processor executes at a time and the batch is
 * drained at every context switch, the drained order equals the
 * execution order, so both shapes deliver the identical stream.
 *
 * Besides data references the stream carries *synchronization edges*
 * (SyncRec): every PARMACS primitive (rt/sync.h Barrier/Lock/Flag)
 * emits acquire/release records at its exact stream position, so a
 * consumer can reconstruct the happens-before order of the execution
 * (sim/racecheck.h) rather than just the reference sequence.  Sync
 * records are rare compared to references; the batched delivery drains
 * pending references before forwarding one, which preserves order
 * without widening the hot record ring.
 *
 * RefSink is the consumer interface for components beyond the two
 * built-in sinks (MemSystem, CacheSweep) -- e.g. the parallel sweep
 * replayer, the broadcast replay, the race detector, or a trace
 * capture buffer.
 */
#ifndef SPLASH2_SIM_TRACE_H
#define SPLASH2_SIM_TRACE_H

#include <cstdint>
#include <vector>

#include "base/types.h"

namespace splash::sim {

/** One captured shared-memory reference. */
struct AccessRec
{
    /** Flag: the access is a host-level atomic (SharedArray::ldAtomic /
     *  stAtomic).  Identical to a plain access for every memory-system
     *  statistic; the race detector treats it as a annotated lock-free
     *  access that never participates in a data race. */
    static constexpr std::uint8_t kAtomic = 1u << 0;

    Addr addr = 0;
    Tick ltime = 0;  ///< issuing processor's logical clock at the access
    std::int32_t size = 0;
    std::int16_t proc = -1;
    AccessType type = AccessType::Read;
    std::uint8_t flags = 0;  ///< kAtomic

    bool atomic() const { return (flags & kAtomic) != 0; }
};

/** Direction of a happens-before edge through a sync object. */
enum class SyncOp : std::uint8_t {
    Acquire,  ///< the processor *joins* the object's accumulated order
    Release   ///< the processor *publishes* its order into the object
};

/** Primitive that emitted a SyncRec (sync-census accounting). */
enum class SyncPrim : std::uint8_t { Barrier, Lock, Flag };

/** One synchronization edge, ordered within the reference stream.
 *
 *  The three PARMACS primitives map onto acquire/release pairs:
 *  a barrier arrival releases into the barrier object and every
 *  departure acquires from it (all-to-all rendezvous); a lock acquire
 *  acquires from / a lock release releases into the lock object; a
 *  flag set releases into / a completed flag wait acquires from the
 *  flag object. */
struct SyncRec
{
    std::uint32_t obj = 0;  ///< per-Env registration id (rt::Env)
    Tick ltime = 0;         ///< processor's logical clock at the edge
    std::int16_t proc = -1;
    SyncOp op = SyncOp::Acquire;
    SyncPrim prim = SyncPrim::Barrier;
};

/** One home-placement change (rt::SharedHeap::setHome), ordered
 *  within the reference stream.  Live sinks resolve homes through the
 *  heap itself and may ignore these; recording sinks persist them so
 *  replay-from-disk can rebuild placement without the runtime. */
struct PlaceRec
{
    Addr addr = 0;            ///< simulated span start
    std::uint64_t bytes = 0;  ///< span length
    ProcId home = 0;          ///< owning node
};

/** Consumer of a reference stream (beyond the built-in sinks). */
class RefSink
{
  public:
    virtual ~RefSink() = default;

    /** Deliver one reference.  The record carries the issuing
     *  processor, its logical clock at the access, and the atomic
     *  flag; consumers that only care about (proc, addr, size, type)
     *  read just those fields. */
    virtual void access(const AccessRec& r) = 0;

    /** Deliver one synchronization edge at its stream position.
     *  Default: ignore (most sinks only consume references). */
    virtual void sync(const SyncRec&) {}

    /** Deliver one placement change at its stream position, after the
     *  preceding streamBarrier() quiesce.  Default: ignore (live
     *  sinks resolve homes through the heap; only recording sinks
     *  need the span data). */
    virtual void place(const PlaceRec&) {}

    /** Zero statistics while keeping simulation state (measurement
     *  windows); buffering sinks must deliver pending records first. */
    virtual void resetStats() {}

    /** Quiesce: finish processing every reference delivered so far.
     *  Fired before stream-ordered events outside the reference
     *  stream itself (e.g. a placement change) so buffering sinks see
     *  them at the right position.  No-op for synchronous sinks. */
    virtual void streamBarrier() {}
};

/** In-memory reference trace, stored in fixed-size chunks so capture
 *  never reallocates a giant contiguous buffer.  Synchronization
 *  edges are kept alongside, tagged with their stream position. */
class Trace final : public RefSink
{
  public:
    static constexpr std::size_t kChunkRecords = std::size_t(1) << 16;

    /** A sync edge pinned at the reference-stream position it was
     *  observed at: it happened after record [pos-1] and before
     *  record [pos]. */
    struct SyncAt
    {
        std::uint64_t pos = 0;
        SyncRec rec;
    };

    void
    access(const AccessRec& r) override
    {
        if (chunks_.empty() || chunks_.back().size() == kChunkRecords) {
            chunks_.emplace_back();
            chunks_.back().reserve(kChunkRecords);
        }
        chunks_.back().push_back(r);
    }

    void sync(const SyncRec& r) override { syncs_.push_back({size(), r}); }

    std::uint64_t
    size() const
    {
        std::uint64_t n = 0;
        for (const auto& c : chunks_)
            n += c.size();
        return n;
    }

    const std::vector<SyncAt>& syncs() const { return syncs_; }

    /** Visit every record in capture order. */
    template <typename F>
    void
    forEach(F&& f) const
    {
        for (const auto& c : chunks_)
            for (const AccessRec& r : c)
                f(r);
    }

    void
    resetStats() override
    {
        chunks_.clear();
        syncs_.clear();
    }

  private:
    std::vector<std::vector<AccessRec>> chunks_;
    std::vector<SyncAt> syncs_;
};

} // namespace splash::sim

#endif // SPLASH2_SIM_TRACE_H
