/**
 * @file
 * Reference-stream records and sinks.
 *
 * The runtime -> simulator boundary moves shared-memory references in
 * one of two shapes (rt::Delivery): a synchronous call per reference,
 * or batches of AccessRec drained at scheduling boundaries.  Because
 * exactly one simulated processor executes at a time and the batch is
 * drained at every context switch, the drained order equals the
 * execution order, so both shapes deliver the identical stream.
 *
 * RefSink is the consumer interface for components beyond the two
 * built-in sinks (MemSystem, CacheSweep) -- e.g. the parallel sweep
 * replayer or a trace capture buffer.
 */
#ifndef SPLASH2_SIM_TRACE_H
#define SPLASH2_SIM_TRACE_H

#include <cstdint>
#include <vector>

#include "base/types.h"

namespace splash::sim {

/** One captured shared-memory reference. */
struct AccessRec
{
    Addr addr = 0;
    Tick ltime = 0;  ///< issuing processor's logical clock
    std::int32_t size = 0;
    std::int16_t proc = -1;
    AccessType type = AccessType::Read;
};

/** Consumer of a reference stream (beyond the built-in sinks). */
class RefSink
{
  public:
    virtual ~RefSink() = default;

    /** Deliver one reference from processor @p p. */
    virtual void access(ProcId p, Addr addr, int size,
                        AccessType type) = 0;

    /** Zero statistics while keeping simulation state (measurement
     *  windows); buffering sinks must deliver pending records first. */
    virtual void resetStats() {}

    /** Quiesce: finish processing every reference delivered so far.
     *  Fired before stream-ordered events outside the reference
     *  stream itself (e.g. a placement change) so buffering sinks see
     *  them at the right position.  No-op for synchronous sinks. */
    virtual void streamBarrier() {}
};

/** In-memory reference trace, stored in fixed-size chunks so capture
 *  never reallocates a giant contiguous buffer. */
class Trace final : public RefSink
{
  public:
    static constexpr std::size_t kChunkRecords = std::size_t(1) << 16;

    void
    access(ProcId p, Addr addr, int size, AccessType type) override
    {
        if (chunks_.empty() || chunks_.back().size() == kChunkRecords) {
            chunks_.emplace_back();
            chunks_.back().reserve(kChunkRecords);
        }
        chunks_.back().push_back(
            {addr, 0, size, static_cast<std::int16_t>(p), type});
    }

    std::uint64_t
    size() const
    {
        std::uint64_t n = 0;
        for (const auto& c : chunks_)
            n += c.size();
        return n;
    }

    /** Visit every record in capture order. */
    template <typename F>
    void
    forEach(F&& f) const
    {
        for (const auto& c : chunks_)
            for (const AccessRec& r : c)
                f(r);
    }

    void resetStats() override { chunks_.clear(); }

  private:
    std::vector<std::vector<AccessRec>> chunks_;
};

} // namespace splash::sim

#endif // SPLASH2_SIM_TRACE_H
