/**
 * @file
 * Extended Dubois miss classification with word-precise true/false
 * sharing disambiguation.
 *
 * The SPLASH-2 paper classifies misses with an extension of [DSR+93]
 * that handles finite caches.  We implement the practical scheme the
 * simulator community converged on:
 *
 *  - A processor's first miss to a line is *cold*.
 *  - A miss to a line the processor last lost to *replacement* is
 *    *capacity* (conflict misses are folded in, as in the paper).
 *  - A miss to a line the processor last lost to *invalidation* is a
 *    sharing miss: *true sharing* if any word the processor now accesses
 *    was written by another processor since the copy was lost, otherwise
 *    *false sharing*.
 *
 * Word granularity is 8 bytes.  Every write bumps per-word version
 * counters on the line; when a processor is invalidated we snapshot the
 * counters, and at re-miss time we compare the accessed words against
 * the snapshot.  The snapshot is taken *before* the triggering write is
 * recorded, so the write that caused the invalidation participates in
 * the comparison.
 */
#ifndef SPLASH2_SIM_CLASSIFY_H
#define SPLASH2_SIM_CLASSIFY_H

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "base/log.h"
#include "base/types.h"
#include "sim/stats.h"

namespace splash::sim {

class MissClassifier
{
  public:
    /** @param nprocs number of processors; @param lineSize in bytes. */
    MissClassifier(int nprocs, int lineSize);

    /** Record that processor @p p wrote [addr, addr+size). Call after any
     *  invalidations triggered by this write have been reported.
     *  Inline and memoized on the last written line: it runs on the
     *  write-hit fast path, where consecutive writes usually land on
     *  the same line.  Safe because map values are node-stable and
     *  never erased. */
    void
    recordWrite(Addr addr, int size)
    {
        Addr line = lineOf(addr);
        std::vector<std::uint64_t>* vers = lastVers_;
        if (line != lastLine_ || !vers) [[unlikely]] {
            vers = &wordVersion_[line];
            if (vers->empty())
                vers->assign(wordsPerLine_, 0);
            lastLine_ = line;
            lastVers_ = vers;
        }
        int first = static_cast<int>((addr - line) / kWordBytes);
        int last = static_cast<int>((addr + size - 1 - line) / kWordBytes);
        ensure(last < wordsPerLine_, "write spans past line end");
        for (int w = first; w <= last; ++w)
            ++(*vers)[w];
    }

    /** Processor @p p lost its copy of @p lineAddr to a coherence
     *  invalidation. */
    void noteInvalidated(ProcId p, Addr lineAddr);

    /** Processor @p p lost its copy of @p lineAddr to replacement. */
    void noteReplaced(ProcId p, Addr lineAddr);

    /** Classify the miss of processor @p p accessing [addr, addr+size)
     *  (clipped to one line by the caller). */
    MissType classifyMiss(ProcId p, Addr addr, int size);

  private:
    static constexpr int kWordBytes = 8;

    enum class LossCause : std::uint8_t { Invalidated, Replaced };

    struct LostCopy
    {
        LossCause cause;
        /** Word versions at the time the copy was lost (empty for
         *  replacement losses and for never-written lines). */
        std::vector<std::uint64_t> snapshot;
    };

    int wordsPerLine_;
    int lineSize_;

    /** Current per-word write version of every line ever written. */
    std::unordered_map<Addr, std::vector<std::uint64_t>> wordVersion_;
    /** recordWrite memo: the last line written and its version vector. */
    Addr lastLine_ = 0;
    std::vector<std::uint64_t>* lastVers_ = nullptr;

    /** Per-processor record of how each line was last lost. */
    std::vector<std::unordered_map<Addr, LostCopy>> lost_;

    Addr lineOf(Addr a) const { return alignDown(a, lineSize_); }
};

} // namespace splash::sim

#endif // SPLASH2_SIM_CLASSIFY_H
