#include "sim/memsys.h"

#include <algorithm>

#include "base/log.h"

namespace splash::sim {

MemSystem::MemSystem(const MachineConfig& cfg, const HomeResolver* homes)
    : cfg_(cfg), homes_(homes),
      defaultHomes_(cfg.nprocs, cfg.cache.lineSize),
      classifier_(cfg.nprocs, cfg.cache.lineSize), stats_(cfg.nprocs)
{
    cfg_.validate();
    caches_.reserve(cfg_.nprocs);
    for (int p = 0; p < cfg_.nprocs; ++p)
        caches_.emplace_back(cfg_.cache);
}

ProcId
MemSystem::homeOf(Addr lineAddr) const
{
    ProcId h = homes_ ? homes_->homeOf(lineAddr)
                      : defaultHomes_.homeOf(lineAddr);
    ensure(h >= 0 && h < cfg_.nprocs, "home node out of range");
    return h;
}

void
MemSystem::access(ProcId p, Addr addr, int size, AccessType type)
{
    ensure(p >= 0 && p < cfg_.nprocs, "processor id out of range");
    if (type == AccessType::Read)
        ++stats_[p].reads;
    else
        ++stats_[p].writes;

    Addr first = lineOf(addr);
    Addr last = lineOf(addr + size - 1);
    for (Addr line = first; line <= last; line += cfg_.cache.lineSize) {
        Addr lo = std::max(addr, line);
        Addr hi = std::min<Addr>(addr + size, line + cfg_.cache.lineSize);
        accessLine(p, line, lo, static_cast<int>(hi - lo), type);
    }
}

void
MemSystem::accessLine(ProcId p, Addr lineAddr, Addr addr, int size,
                      AccessType type)
{
    LineState st = caches_[p].probe(lineAddr);

    if (type == AccessType::Read) {
        if (st != LineState::Invalid)
            return;
        MissType mt = classifier_.classifyMiss(p, addr, size);
        ++stats_[p].misses[static_cast<int>(mt)];
        handleReadMiss(p, lineAddr, mt);
        return;
    }

    // Write.
    switch (st) {
      case LineState::Modified:
        break;
      case LineState::Exclusive:
        // Illinois silent upgrade: the only cached copy, clean.
        caches_[p].setState(lineAddr, LineState::Modified);
        {
            auto& d = dir_[lineAddr];
            d.dirty = true;
            d.owner = p;
        }
        break;
      case LineState::Shared:
        ++stats_[p].upgrades;
        handleUpgrade(p, lineAddr);
        break;
      case LineState::Invalid: {
        MissType mt = classifier_.classifyMiss(p, addr, size);
        ++stats_[p].misses[static_cast<int>(mt)];
        handleWriteMiss(p, lineAddr, mt);
        break;
      }
    }
    classifier_.recordWrite(addr, size);
}

void
MemSystem::handleReadMiss(ProcId p, Addr lineAddr, MissType mt)
{
    ProcId home = homeOf(lineAddr);
    packet(p, p, home);  // request

    auto& d = dir_[lineAddr];
    LineState newState;
    if (d.dirty) {
        ProcId q = d.owner;
        ensure(q != p, "dirty owner cannot be the missing processor");
        packet(p, home, q);            // intervention
        dataTransfer(p, q, p, mt);     // cache-to-cache reply
        writebackTransfer(p, q, home); // sharing writeback (memory update)
        caches_[q].setState(lineAddr, LineState::Shared);
        d.dirty = false;
        d.owner = -1;
        newState = LineState::Shared;
    } else {
        dataTransfer(p, home, p, mt);  // supplied by home memory
        if (d.empty()) {
            newState = LineState::Exclusive;
        } else {
            newState = LineState::Shared;
            // Any Exclusive (clean) copy elsewhere downgrades to Shared;
            // the home notifies the sole holder.
            if (d.numSharers() == 1) {
                ProcId q = static_cast<ProcId>(
                    __builtin_ctzll(d.sharers));
                if (caches_[q].peek(lineAddr) == LineState::Exclusive) {
                    packet(p, home, q);
                    caches_[q].setState(lineAddr, LineState::Shared);
                }
            }
        }
    }
    d.addSharer(p);
    installLine(p, lineAddr, newState);
}

void
MemSystem::handleUpgrade(ProcId p, Addr lineAddr)
{
    ProcId home = homeOf(lineAddr);
    packet(p, p, home);  // upgrade request

    auto& d = dir_[lineAddr];
    ensure(!d.dirty, "upgrade on a dirty line");
    for (int q = 0; q < cfg_.nprocs; ++q) {
        if (q == p || !d.isSharer(q))
            continue;
        packet(p, home, q);  // invalidation (spurious if q replaced
        packet(p, q, p);     // the line silently) + ack to requester
        if (caches_[q].peek(lineAddr) != LineState::Invalid) {
            caches_[q].invalidate(lineAddr);
            classifier_.noteInvalidated(q, lineAddr);
        }
        d.dropSharer(q);
    }
    d.dirty = true;
    d.owner = p;
    caches_[p].setState(lineAddr, LineState::Modified);
}

void
MemSystem::handleWriteMiss(ProcId p, Addr lineAddr, MissType mt)
{
    ProcId home = homeOf(lineAddr);
    packet(p, p, home);  // read-exclusive request

    auto& d = dir_[lineAddr];
    if (d.dirty) {
        ProcId q = d.owner;
        ensure(q != p, "dirty owner cannot be the missing processor");
        packet(p, home, q);         // invalidating intervention
        dataTransfer(p, q, p, mt);  // ownership transfer, cache-to-cache
        caches_[q].invalidate(lineAddr);
        classifier_.noteInvalidated(q, lineAddr);
        d.dropSharer(q);
    } else {
        dataTransfer(p, home, p, mt);
        for (int q = 0; q < cfg_.nprocs; ++q) {
            if (q == p || !d.isSharer(q))
                continue;
            packet(p, home, q);  // invalidation
            packet(p, q, p);     // ack
            if (caches_[q].peek(lineAddr) != LineState::Invalid) {
                caches_[q].invalidate(lineAddr);
                classifier_.noteInvalidated(q, lineAddr);
            }
            d.dropSharer(q);
        }
    }
    d.sharers = 0;
    d.addSharer(p);
    d.dirty = true;
    d.owner = p;
    installLine(p, lineAddr, LineState::Modified);
}

void
MemSystem::installLine(ProcId p, Addr lineAddr, LineState st)
{
    Cache::Victim v = caches_[p].fill(lineAddr, st);
    if (v.valid)
        evictVictim(p, v);
}

void
MemSystem::evictVictim(ProcId p, const Cache::Victim& v)
{
    ProcId home = homeOf(v.lineAddr);
    auto it = dir_.find(v.lineAddr);
    ensure(it != dir_.end(), "evicted line missing from directory");
    DirEntry& d = it->second;

    if (v.state == LineState::Modified) {
        writebackTransfer(p, p, home);
        d.dirty = false;
        d.owner = -1;
        d.dropSharer(p);
    } else if (cfg_.replacementHints) {
        // Replacement hint keeps the sharer list exact.
        packet(p, p, home);
        d.dropSharer(p);
    }
    // Without hints the stale sharer bit stays set until the next
    // invalidation discovers the copy is gone.
    classifier_.noteReplaced(p, v.lineAddr);
    if (d.empty())
        dir_.erase(it);
}

void
MemSystem::packet(ProcId p, ProcId src, ProcId dst)
{
    if (src != dst)
        stats_[p].remoteOverhead += cfg_.overheadBytes;
}

void
MemSystem::dataTransfer(ProcId p, ProcId src, ProcId dst, MissType mt)
{
    const int line = cfg_.cache.lineSize;
    if (src == dst) {
        stats_[p].localData += line;
    } else {
        switch (mt) {
          case MissType::Cold:
            stats_[p].remoteColdData += line;
            break;
          case MissType::Capacity:
            stats_[p].remoteCapacityData += line;
            break;
          default:
            stats_[p].remoteSharedData += line;
            break;
        }
        stats_[p].remoteOverhead += cfg_.overheadBytes;  // data header
    }
    if (mt == MissType::TrueSharing)
        stats_[p].trueSharedData += line;
}

void
MemSystem::writebackTransfer(ProcId p, ProcId src, ProcId home)
{
    const int line = cfg_.cache.lineSize;
    if (src == home) {
        stats_[p].localData += line;
    } else {
        stats_[p].remoteWriteback += line;
        stats_[p].remoteOverhead += cfg_.overheadBytes;
    }
}

void
MemSystem::resetStats()
{
    for (auto& s : stats_)
        s = MemStats{};
}

MemStats
MemSystem::total() const
{
    MemStats t;
    for (const auto& s : stats_)
        t += s;
    return t;
}

LineState
MemSystem::lineState(ProcId p, Addr addr) const
{
    return caches_[p].peek(lineOf(addr));
}

const DirEntry*
MemSystem::dirEntry(Addr addr) const
{
    auto it = dir_.find(lineOf(addr));
    return it == dir_.end() ? nullptr : &it->second;
}

bool
MemSystem::checkCoherenceInvariants() const
{
    for (const auto& [line, d] : dir_) {
        int modified = 0, valid = 0;
        for (int p = 0; p < cfg_.nprocs; ++p) {
            LineState st = caches_[p].peek(line);
            bool cached = st != LineState::Invalid;
            // With hints the list is exact; without, it may only be a
            // superset of the true sharers.
            if (cached && !d.isSharer(p))
                return false;
            if (cfg_.replacementHints && cached != d.isSharer(p))
                return false;
            if (cached)
                ++valid;
            if (st == LineState::Modified)
                ++modified;
            if (st == LineState::Exclusive && d.numSharers() != 1)
                return false;
        }
        if (modified > 1)
            return false;
        if (d.dirty != (modified == 1))
            return false;
        if (d.dirty && caches_[d.owner].peek(line) != LineState::Modified)
            return false;
        if (cfg_.replacementHints ? valid != d.numSharers()
                                  : valid > d.numSharers())
            return false;
    }
    return true;
}

} // namespace splash::sim
