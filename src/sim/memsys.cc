#include "sim/memsys.h"

#include <algorithm>

#include "base/log.h"
#include "sim/check.h"

namespace splash::sim {

MemSystem::MemSystem(const MachineConfig& cfg, const HomeResolver* homes)
    : cfg_(cfg), proto_(protocol(cfg.protocol)),
      bus_{cfg.cache.lineSize, cfg.busWidthBytes},
      writeSilent_(proto_.silentHit[static_cast<int>(AccessType::Write)]),
      homes_(homes), defaultHomes_(cfg.nprocs, cfg.cache.lineSize),
      classifier_(cfg.nprocs, cfg.cache.lineSize), stats_(cfg.nprocs)
{
    cfg_.validate();
    caches_.reserve(cfg_.nprocs);
    for (int p = 0; p < cfg_.nprocs; ++p)
        caches_.emplace_back(cfg_.cache, proto_);
}

ProcId
MemSystem::homeOf(Addr lineAddr) const
{
    ProcId h = homes_ ? homes_->homeOf(lineAddr)
                      : defaultHomes_.homeOf(lineAddr);
    ensure(h >= 0 && h < cfg_.nprocs, "home node out of range");
    return h;
}

#ifndef NDEBUG
std::uint64_t
MemSystem::dataBytes(ProcId p) const
{
    const MemStats& s = stats_[p];
    return s.remoteSharedData + s.remoteColdData +
           s.remoteCapacityData + s.remoteWriteback + s.localData;
}

void
MemSystem::txBegin(ProcId p)
{
    tx_.bytesBefore = dataBytes(p);
    tx_.busCyclesBefore = stats_[p].busDataCycles;
    tx_.dataTransfers = 0;
    tx_.writebacks = 0;
    tx_.updates = 0;
}

void
MemSystem::txEnd(ProcId p, int expectData)
{
    ensure(tx_.dataTransfers == expectData,
           "traffic conservation: wrong line supply count");
    ensure(tx_.writebacks <= 2,
           "traffic conservation: more than victim + sharing writeback");
    if (cfg_.interconnect == Interconnect::Bus) {
        // Occupancy replaces the byte decomposition: data-phase cycles
        // must match the lines and word updates that crossed the wires,
        // and the directory byte counters must not move at all.
        std::uint64_t cycles =
            std::uint64_t(bus_.lineCycles()) *
                std::uint64_t(tx_.dataTransfers + tx_.writebacks) +
            std::uint64_t(bus_.updateCycles()) *
                std::uint64_t(tx_.updates);
        ensure(stats_[p].busDataCycles - tx_.busCyclesBefore == cycles,
               "bus occupancy conservation: cycles != phases charged");
        ensure(dataBytes(p) == tx_.bytesBefore,
               "bus occupancy conservation: directory byte counter "
               "moved in bus mode");
        return;
    }
    std::uint64_t moved =
        std::uint64_t(cfg_.cache.lineSize) *
        std::uint64_t(tx_.dataTransfers + tx_.writebacks);
    ensure(dataBytes(p) - tx_.bytesBefore == moved,
           "traffic conservation: bytes supplied != bytes accounted");
}
#endif

void
MemSystem::accessMulti(ProcId p, Addr addr, int size, AccessType type)
{
    if (type == AccessType::Read)
        ++stats_[p].reads;
    else
        ++stats_[p].writes;

    Addr first = lineOf(addr);
    Addr last = lineOf(addr + size - 1);
    for (Addr line = first; line <= last; line += cfg_.cache.lineSize) {
        Addr lo = std::max(addr, line);
        Addr hi = std::min<Addr>(addr + size, line + cfg_.cache.lineSize);
        int sz = static_cast<int>(hi - lo);
        if (type == AccessType::Read) {
            if (caches_[p].probeFor(line, AccessType::Read) ==
                LineState::Invalid)
                readMiss(p, line, lo, sz);
        } else {
            LineState st = caches_[p].probeFor(line, AccessType::Write);
            if (stateIn(writeSilent_, st))
                classifier_.recordWrite(lo, sz);
            else
                writeSlow(p, line, lo, sz, st);
        }
    }
}

void
MemSystem::readMiss(ProcId p, Addr lineAddr, Addr addr, int size)
{
#ifndef NDEBUG
    txBegin(p);
#endif
    MissType mt = classifier_.classifyMiss(p, addr, size);
    ++stats_[p].misses[static_cast<int>(mt)];
    runTransition(p, lineAddr, ProtoEvent::ReadMiss, mt);
#ifndef NDEBUG
    txEnd(p, /*expectData=*/1);
#endif
    maybeCheck(lineAddr);
}

void
MemSystem::writeSlow(ProcId p, Addr lineAddr, Addr addr, int size,
                     LineState st)
{
#ifndef NDEBUG
    txBegin(p);
#endif
    [[maybe_unused]] int expectData;
    if (st != LineState::Invalid) {
        // Non-silent write hit: permissions move (and, under Dragon,
        // updates broadcast), but no line is supplied.
        ++stats_[p].upgrades;
        const Transition& t =
            runTransition(p, lineAddr, ProtoEvent::WriteHit,
                          MissType::Cold /*unused: no data supply*/);
        expectData = t.supply == Supply::None ? 0 : 1;
    } else {
        MissType mt = classifier_.classifyMiss(p, addr, size);
        ++stats_[p].misses[static_cast<int>(mt)];
        runTransition(p, lineAddr, ProtoEvent::WriteMiss, mt);
        expectData = 1;
    }
    classifier_.recordWrite(addr, size);
#ifndef NDEBUG
    txEnd(p, expectData);
#endif
    maybeCheck(lineAddr);
}

void
MemSystem::maybeCheck(Addr lineAddr)
{
    CoherenceChecker chk(*this);
    std::vector<Violation> v;
#ifndef NDEBUG
    // Debug builds validate the touched line after every transaction;
    // O(nprocs), so it rides along with the existing tx_ asserts.
    chk.checkLine(lineAddr, &v);
#else
    (void)lineAddr;
#endif
    if (checkPeriod_ != 0 && ++sinceCheck_ >= checkPeriod_) {
        sinceCheck_ = 0;
        chk.checkAll(&v);
    }
    if (!v.empty())
        panic("coherence invariant violated:\n" + formatViolations(v));
}

void
MemSystem::reconcileDir(Addr lineAddr, DirEntry& d)
{
    // A silent E->M promotion leaves the directory believing the line
    // is clean with one sharer.  Detect that state by peeking the sole
    // holder and record the deferred ownership.
    if (!d.dirty && d.numSharers() == 1) {
        ProcId q = static_cast<ProcId>(__builtin_ctzll(d.sharers));
        if (caches_[q].peek(lineAddr) == LineState::Modified) {
            d.dirty = true;
            d.owner = q;
        }
    }
}

const Transition&
MemSystem::runBusTransition(ProcId p, Addr lineAddr, ProtoEvent ev,
                            MissType mt)
{
    // Address phase: the request goes out once and every cache snoops
    // it -- there is no home node and no directory consult.
    busTransaction(p);
    SnoopResult sr = snoopLine(caches_, proto_, lineAddr, p);
    const Transition& t = proto_.at(ev, sr.group);
    ensure(t.valid, "transition unreachable under this protocol");

    // --- line supply --------------------------------------------------
    if (t.supply == Supply::Owner) {
        ProcId q = sr.owner;
        ensure(q >= 0 && q != p,
               "bus owner supply without a distinct snooped owner");
        busLineTransfer(p, mt);  // owner drives the data wires
        // A sharing writeback is free on the bus: memory snarfs the
        // very transfer the owner is already driving.
        if (t.ownerNext == LineState::Invalid) {
            caches_[q].invalidate(lineAddr);
            classifier_.noteInvalidated(q, lineAddr);
            ++stats_[p].invalidations;
        } else {
            caches_[q].setState(lineAddr, t.ownerNext);
        }
    } else if (t.supply == Supply::Memory) {
        busLineTransfer(p, mt);  // memory drives the data wires
    }

    // --- the other holders (snooped: no packets, no acks) -------------
    switch (t.others) {
      case OthersOp::DowngradeExclusive:
        // The snoop's shared line tells a clean-exclusive holder it is
        // no longer alone.
        for (int q = 0; q < cfg_.nprocs; ++q)
            if (q != p &&
                caches_[q].peek(lineAddr) == LineState::Exclusive)
                caches_[q].setState(lineAddr, LineState::Shared);
        break;
      case OthersOp::Invalidate:
        // One broadcast kills every other copy; each copy actually
        // invalidated still counts (the ledger the paper's
        // invalidation-miss decomposition is built on).
        for (int q = 0; q < cfg_.nprocs; ++q) {
            if (q == p ||
                caches_[q].peek(lineAddr) == LineState::Invalid)
                continue;
            caches_[q].invalidate(lineAddr);
            classifier_.noteInvalidated(q, lineAddr);
            ++stats_[p].invalidations;
        }
        break;
      case OthersOp::Update: {
        // One word-update broadcast reaches every holder at once; it
        // occupies the data wires only when someone is listening.
        bool any = false;
        for (int q = 0; q < cfg_.nprocs; ++q) {
            if (q == p)
                continue;
            LineState sq = caches_[q].peek(lineAddr);
            if (sq == LineState::Invalid)
                continue;
            any = true;
            ++stats_[p].updates;
            if (sq == LineState::Exclusive || sq == LineState::Owned)
                caches_[q].setState(lineAddr, LineState::Shared);
        }
        if (any)
            busUpdate(p);
        break;
      }
      case OthersOp::None:
        break;
    }

    // --- requester finalization ---------------------------------------
    // The snoop's shared line reflects ground truth (no sharer vector
    // to go stale), so recount after the others-op.
    int others = 0;
    for (int q = 0; q < cfg_.nprocs; ++q)
        if (q != p && caches_[q].peek(lineAddr) != LineState::Invalid)
            ++others;
    LineState ns = others == 0 ? t.reqStateAlone : t.reqState;
    if (ev == ProtoEvent::WriteHit)
        caches_[p].setState(lineAddr, ns);
    else
        installLine(p, lineAddr, ns);
    return t;
}

const Transition&
MemSystem::runDirTransition(ProcId p, Addr lineAddr, ProtoEvent ev,
                            MissType mt)
{
    ProcId home = homeOf(lineAddr);
    packet(p, p, home);  // request to the home

    auto& d = dir_[lineAddr];
    reconcileDir(lineAddr, d);
    DirGroup g = d.empty() ? DirGroup::Uncached
                 : d.dirty ? DirGroup::Dirty
                           : DirGroup::Clean;
    const Transition& t = proto_.at(ev, g);
    ensure(t.valid, "transition unreachable under this protocol");

    // --- line supply --------------------------------------------------
    if (t.supply == Supply::Owner) {
        ProcId q = d.owner;
        ensure(q != p, "dirty owner cannot be the requesting processor");
        packet(p, home, q);         // intervention
        dataTransfer(p, q, p, mt);  // cache-to-cache reply
        if (t.sharingWriteback)
            writebackTransfer(p, q, home);  // memory picks up the line
        if (t.ownerNext == LineState::Invalid) {
            caches_[q].invalidate(lineAddr);
            classifier_.noteInvalidated(q, lineAddr);
            ++stats_[p].invalidations;
            d.dropSharer(q);
        } else {
            caches_[q].setState(lineAddr, t.ownerNext);
        }
    } else if (t.supply == Supply::Memory) {
        dataTransfer(p, home, p, mt);  // supplied by home memory
    }

    // --- the other holders --------------------------------------------
    switch (t.others) {
      case OthersOp::DowngradeExclusive:
        // A sole clean-exclusive copy degrades to Shared; the home
        // notifies the holder.
        if (d.numSharers() == 1) {
            ProcId q = static_cast<ProcId>(__builtin_ctzll(d.sharers));
            if (q != p &&
                caches_[q].peek(lineAddr) == LineState::Exclusive) {
                packet(p, home, q);
                caches_[q].setState(lineAddr, LineState::Shared);
            }
        }
        break;
      case OthersOp::Invalidate:
        for (int q = 0; q < cfg_.nprocs; ++q) {
            if (q == p || !d.isSharer(q))
                continue;
            packet(p, home, q);  // invalidation (spurious if q replaced
            packet(p, q, p);     // the line silently) + ack to requester
            if (caches_[q].peek(lineAddr) != LineState::Invalid) {
                caches_[q].invalidate(lineAddr);
                classifier_.noteInvalidated(q, lineAddr);
                ++stats_[p].invalidations;
            }
            d.dropSharer(q);
        }
        break;
      case OthersOp::Update:
        for (int q = 0; q < cfg_.nprocs; ++q) {
            if (q == p || !d.isSharer(q))
                continue;
            packet(p, home, q);  // word update (spurious if stale)
            packet(p, q, p);     // ack
            ++stats_[p].updates;
            // Copies stay valid but any exclusive-flavored holder
            // degrades: the writer is about to take ownership.
            LineState sq = caches_[q].peek(lineAddr);
            if (sq == LineState::Exclusive || sq == LineState::Owned)
                caches_[q].setState(lineAddr, LineState::Shared);
        }
        break;
      case OthersOp::None:
        break;
    }

    // --- directory + requester finalization ---------------------------
    if (t.setDirty) {
        d.dirty = true;
        d.owner = p;
    } else if (!t.keepDirty) {
        d.dirty = false;
        d.owner = -1;
    }
    bool alone = (d.sharers & ~(std::uint64_t{1} << p)) == 0;
    LineState ns = alone ? t.reqStateAlone : t.reqState;
    d.addSharer(p);
    if (ev == ProtoEvent::WriteHit)
        caches_[p].setState(lineAddr, ns);
    else
        installLine(p, lineAddr, ns);
    return t;
}

void
MemSystem::installLine(ProcId p, Addr lineAddr, LineState st)
{
    Cache::Victim v = caches_[p].fill(lineAddr, st);
    if (v.valid)
        evictVictim(p, v);
}

void
MemSystem::evictVictim(ProcId p, const Cache::Victim& v)
{
    if (cfg_.interconnect == Interconnect::Bus) {
        // A bus has no sharer vectors to keep exact, hence no
        // replacement hints: clean victims drop silently, owner-state
        // victims write back in a bus transaction of their own.
        if (stateIn(proto_.ownerStates, v.state))
            busWriteback(p);
        classifier_.noteReplaced(p, v.lineAddr);
        return;
    }
    ProcId home = homeOf(v.lineAddr);
    auto it = dir_.find(v.lineAddr);
    ensure(it != dir_.end(), "evicted line missing from directory");
    DirEntry& d = it->second;

    if (stateIn(proto_.ownerStates, v.state)) {
        // Evicting an owner state (M, and O/Sm where the protocol has
        // them) writes the line back and cleans the entry.
        writebackTransfer(p, p, home);
        d.dirty = false;
        d.owner = -1;
        d.dropSharer(p);
    } else if (cfg_.replacementHints) {
        // Replacement hint keeps the sharer list exact.
        packet(p, p, home);
        d.dropSharer(p);
    }
    // Without hints the stale sharer bit stays set until the next
    // invalidation discovers the copy is gone.
    classifier_.noteReplaced(p, v.lineAddr);
    if (d.empty())
        dir_.erase(it);
}

void
MemSystem::packet(ProcId p, ProcId src, ProcId dst)
{
    if (src != dst)
        stats_[p].remoteOverhead += cfg_.overheadBytes;
}

void
MemSystem::dataTransfer(ProcId p, ProcId src, ProcId dst, MissType mt)
{
#ifndef NDEBUG
    ++tx_.dataTransfers;
#endif
    ++xferLines_;
    const int line = cfg_.cache.lineSize;
    if (src == dst) {
        stats_[p].localData += line;
    } else {
        switch (mt) {
          case MissType::Cold:
            stats_[p].remoteColdData += line;
            break;
          case MissType::Capacity:
            stats_[p].remoteCapacityData += line;
            break;
          default:
            stats_[p].remoteSharedData += line;
            break;
        }
        stats_[p].remoteOverhead += cfg_.overheadBytes;  // data header
    }
    if (mt == MissType::TrueSharing)
        stats_[p].trueSharedData += line;
}

void
MemSystem::writebackTransfer(ProcId p, ProcId src, ProcId home)
{
#ifndef NDEBUG
    ++tx_.writebacks;
#endif
    ++wbLines_;
    const int line = cfg_.cache.lineSize;
    if (src == home) {
        stats_[p].localData += line;
    } else {
        stats_[p].remoteWriteback += line;
        stats_[p].remoteOverhead += cfg_.overheadBytes;
    }
}

void
MemSystem::busTransaction(ProcId p)
{
    ++stats_[p].busTransactions;
    stats_[p].busAddrCycles += bus_.addrCycles();
}

void
MemSystem::busLineTransfer(ProcId p, MissType mt)
{
#ifndef NDEBUG
    ++tx_.dataTransfers;
#endif
    ++xferLines_;
    stats_[p].busDataCycles += bus_.lineCycles();
    // The paper's inherent-communication proxy is organization-
    // independent: true-sharing misses move a line either way.
    if (mt == MissType::TrueSharing)
        stats_[p].trueSharedData += cfg_.cache.lineSize;
}

void
MemSystem::busWriteback(ProcId p)
{
#ifndef NDEBUG
    ++tx_.writebacks;
#endif
    ++wbLines_;
    busTransaction(p);  // the writeback arbitrates for the bus itself
    stats_[p].busDataCycles += bus_.lineCycles();
}

void
MemSystem::busUpdate(ProcId p)
{
#ifndef NDEBUG
    ++tx_.updates;
#endif
    ++updateTxns_;
    stats_[p].busDataCycles += bus_.updateCycles();
}

void
MemSystem::resetStats()
{
    for (auto& s : stats_)
        s = MemStats{};
    // The traffic-conservation ledger covers the same window as the
    // counters it validates.
    xferLines_ = 0;
    wbLines_ = 0;
    updateTxns_ = 0;
}

MemStats
MemSystem::total() const
{
    MemStats t;
    for (const auto& s : stats_)
        t += s;
    return t;
}

LineState
MemSystem::lineState(ProcId p, Addr addr) const
{
    return caches_[p].peek(lineOf(addr));
}

const DirEntry*
MemSystem::dirEntry(Addr addr) const
{
    auto it = dir_.find(lineOf(addr));
    return it == dir_.end() ? nullptr : &it->second;
}

bool
MemSystem::checkCoherenceInvariants() const
{
    return CoherenceChecker(*this).checkAll() == 0;
}

} // namespace splash::sim
