#!/usr/bin/env python3
"""Measure the reuse-distance analytical fast path: wall clock of the
full Figure-3 grid via the exact Mattson + tag-array sweep versus the
model evaluated from a recorded ".rdp" profile sidecar, and write
BENCH_rd.json.

For every program the driver times the live exact sweep (the engine
behind results/fig3.csv), then records the trace + profile sidecar
once (untimed), then times `--sweep model --replay STORE` -- which
loads the sidecar and predicts every curve with neither fiber
execution nor trace replay.  The model output from the sidecar is
byte-compared against the model output of the live profiling run, so
the fast path is proven to change wall clock only.

The acceptance target: the model sweep beats the exact sweep by >=
10x on the full grid (in practice it is orders of magnitude beyond
that -- the sidecar is a few hundred counters per processor and the
grid evaluation is microseconds).

Usage: scripts/bench_rd.py [--build build] [--procs 32] [--scale 1.0]
                           [--apps fft,ocean,...] [--reps 2]
Writes BENCH_rd.json in the repository root.
"""

import argparse
import json
import os
import sys
import tempfile

import benchlib

APPS = ["fft", "lu", "radix", "ocean", "water-nsq", "water-sp",
        "barnes", "fmm", "cholesky", "raytrace", "volrend",
        "radiosity"]


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--build", default="build")
    ap.add_argument("--procs", type=int, default=32)
    ap.add_argument("--scale", type=float, default=1.0)
    ap.add_argument("--apps", default=",".join(APPS))
    ap.add_argument("--reps", type=int, default=2)
    args = ap.parse_args()

    os.chdir(benchlib.repo_root())
    exe = os.path.join(args.build, "bench", "fig3_working_sets")
    base = [exe, "--procs", str(args.procs), "--scale",
            str(args.scale), "--csv"]

    apps = {}
    exact_total = 0.0
    model_total = 0.0
    mismatches = []
    for app in args.apps.split(","):
        with tempfile.TemporaryDirectory() as td:
            store = os.path.join(td, "store")
            live = os.path.join(td, "model_live.csv")
            fast = os.path.join(td, "model_fast.csv")
            exact_s = benchlib.time_cmd(
                base + ["--app", app, "--sweep", "exact"], args.reps)
            # Record once (untimed): live run writing the trace and
            # the profile sidecar next to it.
            benchlib.time_cmd(
                base + ["--app", app, "--sweep", "model", "--record",
                        store], 1, capture_to=live)
            model_s = benchlib.time_cmd(
                base + ["--app", app, "--sweep", "model", "--replay",
                        store], args.reps, capture_to=fast)
            sidecars = [f for f in os.listdir(store)
                        if f.endswith(".rdp")]
            with open(live, "rb") as f:
                live_bytes = f.read()
            with open(fast, "rb") as f:
                fast_bytes = f.read()
        identical = live_bytes == fast_bytes
        if not identical or len(sidecars) != 1:
            mismatches.append(app)
        apps[app] = {
            "exact_seconds": exact_s,
            "model_seconds": model_s,
            "speedup": exact_s / model_s if model_s else 0.0,
            "model_output_identical": identical,
        }
        exact_total += exact_s
        model_total += model_s
        print(f"{app}: exact {exact_s:.3f}s -> model {model_s:.4f}s "
              f"({exact_s / model_s if model_s else 0.0:.0f}x, "
              f"{'ok' if identical else 'OUTPUT MISMATCH'})")

    speedup = exact_total / model_total if model_total else 0.0
    report = {
        "description": "Full Figure-3 grid: exact Mattson + tag-array "
                       "sweep vs reuse-distance model from a recorded "
                       "profile sidecar (model outputs byte-compared "
                       "live vs sidecar)",
        "host_cpus": os.cpu_count(),
        "procs": args.procs,
        "scale": args.scale,
        "reps": args.reps,
        "apps": apps,
        "exact_total_seconds": exact_total,
        "model_total_seconds": model_total,
        "suite_speedup": speedup,
        "target_speedup": 10.0,
        "target_met": speedup >= 10.0,
    }
    benchlib.write_report("BENCH_rd.json", report)
    print(json.dumps({k: report[k] for k in
                      ("exact_total_seconds", "model_total_seconds",
                       "suite_speedup", "target_met")}, indent=2))
    if mismatches:
        print("MISMATCH: " + ",".join(mismatches), file=sys.stderr)
        return 1
    return 0 if speedup >= 10.0 else 1


if __name__ == "__main__":
    sys.exit(main())
