#!/usr/bin/env python3
"""Measure the record-once trace store: per-app trace compactness
(bits per reference) and replay-from-disk speed versus live execution,
and write BENCH_trace.json.

For every program the driver times a live characterization
(splash2run), then a recording run (execution + trace write), then
replay-from-disk runs whose output is byte-compared against the live
run.  Trace sizes come from the store files themselves (the 128-byte
header pins the record count at offset 80).

A second section pins the record-once methodology: a multi-
configuration characterization (the protocol/placement ablation, 7
machine configurations over one reference stream) run three ways --
execute-per-configuration (the serial oracle), record once, then
replay-from-disk feeding every configuration from the stored trace.
The acceptance targets: the suite amortizes to ~2 bits per recorded
reference, and replay wall clock beats execution wall clock per
configuration (the decode runs once while the application would have
re-executed N times).

Usage: scripts/bench_trace.py [--build build] [--procs 8]
                              [--scale 1.0] [--apps fft,ocean,...]
                              [--multi-apps fft,ocean,barnes]
                              [--reps 2]
Writes BENCH_trace.json in the repository root.
"""

import argparse
import json
import os
import struct
import sys
import tempfile

import benchlib

APPS = ["fft", "lu", "radix", "ocean", "water-nsq", "water-sp",
        "barnes", "fmm", "cholesky", "raytrace", "volrend",
        "radiosity"]


def trace_stats(store):
    """Sum (bytes, records, syncs) over every trace in a store dir."""
    total_bytes = total_records = total_syncs = 0
    for name in sorted(os.listdir(store)):
        if not name.endswith(".s2t"):
            continue
        path = os.path.join(store, name)
        with open(path, "rb") as f:
            hdr = f.read(128)
        if len(hdr) < 128 or hdr[0:8] != b"S2TRACE1":
            raise RuntimeError(f"{path}: not a trace file")
        records, syncs = struct.unpack_from("<QQ", hdr, 80)
        total_bytes += os.path.getsize(path)
        total_records += records
        total_syncs += syncs
    return total_bytes, total_records, total_syncs


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--build", default="build")
    ap.add_argument("--procs", type=int, default=8)
    ap.add_argument("--scale", type=float, default=1.0)
    ap.add_argument("--apps", default="",
                    help="comma-separated subset (default: all 12)")
    ap.add_argument("--multi-apps", default="fft,ocean,barnes",
                    help="apps for the multi-configuration section "
                         "(empty disables it)")
    ap.add_argument("--reps", type=int, default=2,
                    help="best-of-N for execute and replay timings")
    args = ap.parse_args()

    os.chdir(benchlib.repo_root())
    exe = os.path.join(args.build, "src", "splash2run")
    apps = [a for a in args.apps.split(",") if a] or APPS

    per_app = {}
    mismatches = []
    sum_bytes = sum_records = 0
    exec_total = replay_total = 0.0
    for app in apps:
        base = [exe, "--app", app, "--procs", str(args.procs),
                "--scale", str(args.scale)]
        with tempfile.TemporaryDirectory() as td:
            store = os.path.join(td, "store")
            live_out = os.path.join(td, "live.txt")
            replay_out = os.path.join(td, "replay.txt")
            execute_s = benchlib.time_cmd(base, args.reps,
                                          capture_to=live_out)
            record_s = benchlib.time_cmd(base + ["--record", store], 1)
            replay_s = benchlib.time_cmd(base + ["--replay", store],
                                         args.reps,
                                         capture_to=replay_out)
            with open(live_out, "rb") as f:
                live_bytes = f.read()
            with open(replay_out, "rb") as f:
                replay_bytes = f.read()
            tbytes, records, syncs = trace_stats(store)
        identical = live_bytes == replay_bytes
        if not identical:
            mismatches.append(app)
        bits_per_ref = 8.0 * tbytes / records if records else 0.0
        per_app[app] = {
            "execute_seconds": execute_s,
            "record_seconds": record_s,
            "replay_seconds": replay_s,
            "replay_speedup": execute_s / replay_s if replay_s else 0.0,
            "trace_bytes": tbytes,
            "records": records,
            "syncs": syncs,
            "bits_per_reference": bits_per_ref,
            "output_identical": identical,
        }
        sum_bytes += tbytes
        sum_records += records
        exec_total += execute_s
        replay_total += replay_s
        print(f"{app}: {execute_s:.2f}s live -> {replay_s:.2f}s replay "
              f"({execute_s / replay_s if replay_s else 0:.1f}x), "
              f"{bits_per_ref:.2f} bits/ref "
              f"({'ok' if identical else 'OUTPUT MISMATCH'})")

    # Multi-configuration characterization: the protocol/placement
    # ablation evaluates 7 machine configurations (small cache with
    # and without hints, 1 MB placed/interleaved, the three non-base
    # protocols) over the SAME reference stream.  Three ways to get
    # there: execute once per configuration (--replicas off, the
    # serial oracle), execute once and broadcast live, or record once
    # and feed every configuration from the stored trace.  Record-once
    # wins when replay wall clock per configuration undercuts
    # execution wall clock per configuration.
    n_configs = 7
    abl = os.path.join(args.build, "bench", "ablation_protocol")
    multi_apps = [a for a in args.multi_apps.split(",") if a]
    per_multi = {}
    for app in multi_apps:
        base = [abl, "--app", app, "--jobs", "1"]
        with tempfile.TemporaryDirectory() as td:
            store = os.path.join(td, "store")
            serial_out = os.path.join(td, "serial.txt")
            replay_out = os.path.join(td, "replay.txt")
            serial_s = benchlib.time_cmd(base + ["--replicas", "off"],
                                         args.reps,
                                         capture_to=serial_out)
            record_s = benchlib.time_cmd(base + ["--record", store], 1)
            replay_s = benchlib.time_cmd(base + ["--replay", store],
                                         args.reps,
                                         capture_to=replay_out)
            with open(serial_out, "rb") as f:
                serial_bytes = f.read()
            with open(replay_out, "rb") as f:
                replay_bytes = f.read()
            tbytes, records, _ = trace_stats(store)
        identical = serial_bytes == replay_bytes
        if not identical:
            mismatches.append(app + " (multi-config)")
        per_multi[app] = {
            "n_configs": n_configs,
            "execute_seconds": serial_s,
            "execute_per_config_seconds": serial_s / n_configs,
            "record_seconds": record_s,
            "replay_seconds": replay_s,
            "replay_per_config_seconds": replay_s / n_configs,
            "replay_speedup": serial_s / replay_s if replay_s else 0.0,
            "replay_beats_execution": replay_s < serial_s,
            "trace_bytes": tbytes,
            "records": records,
            "output_identical": identical,
        }
        print(f"{app} x{n_configs} configs: {serial_s:.2f}s serial -> "
              f"{replay_s:.2f}s replay-from-disk "
              f"({serial_s / replay_s if replay_s else 0:.2f}x, "
              f"{'ok' if identical else 'OUTPUT MISMATCH'})")

    report = {
        "description": "Record-once trace store: live characterization "
                       "vs replay-from-disk (splash2run, outputs "
                       "byte-compared) and on-disk trace compactness",
        "host_cpus": os.cpu_count(),
        "procs": args.procs,
        "scale": args.scale,
        "reps": args.reps,
        "apps": per_app,
        "execute_total_seconds": exec_total,
        "replay_total_seconds": replay_total,
        "replay_speedup": (exec_total / replay_total
                           if replay_total else 0.0),
        "trace_total_bytes": sum_bytes,
        "trace_total_records": sum_records,
        "bits_per_reference": (8.0 * sum_bytes / sum_records
                               if sum_records else 0.0),
        "multi_config": {
            "description": "Protocol/placement ablation "
                           "(ablation_protocol --jobs 1): execute-per-"
                           "configuration vs record-once/replay-from-"
                           "disk, outputs byte-compared",
            "apps": per_multi,
        },
    }
    benchlib.write_report("BENCH_trace.json", report)
    print(json.dumps({k: report[k] for k in
                      ("execute_total_seconds", "replay_total_seconds",
                       "replay_speedup", "bits_per_reference")},
                     indent=2))
    if mismatches:
        print("OUTPUT MISMATCH in: " + ", ".join(mismatches),
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
