"""Shared helpers for the repository's benchmark drivers.

Every BENCH_*.json producer (bench_simcore.py, bench_memsys.py,
bench_suite.py) needs the same three things: google-benchmark JSON
parsing, best-of-N wall-clock timing of a subprocess, and a
consistently formatted report file in the repository root.
"""

import json
import os
import subprocess
import time


def repo_root():
    """Absolute path of the repository root (parent of scripts/)."""
    return os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def host_cpus():
    """Usable CPU count of this host.  Prefers the scheduling affinity
    mask (containers and cgroup-limited CI runners often expose fewer
    usable cores than os.cpu_count() reports)."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except (AttributeError, OSError):
        return os.cpu_count() or 1


def run_micro(build, benchmark_filter, unit):
    """Run bench/micro_simthroughput with a --benchmark_filter and
    return {name: {"<unit>s_per_sec", "ns_per_<unit>"}} keyed by the
    benchmark name (the /real_time suffix stripped)."""
    exe = os.path.join(build, "bench", "micro_simthroughput")
    out = subprocess.run(
        [exe, "--benchmark_filter=" + benchmark_filter,
         "--benchmark_format=json"],
        check=True, capture_output=True, text=True).stdout
    data = json.loads(out)
    micro = {}
    for b in data["benchmarks"]:
        name = b["name"].replace("/real_time", "")
        per_sec = b["items_per_second"]
        micro[name] = {
            unit + "s_per_sec": per_sec,
            "ns_per_" + unit: 1e9 / per_sec,
        }
    return micro


def time_cmd(cmd, reps, capture_to=None):
    """Best-of-N wall clock of a subprocess.  With capture_to, the
    final rep's stdout is also written to that path (bytes)."""
    best = None
    stdout = None
    for _ in range(reps):
        t0 = time.monotonic()
        proc = subprocess.run(cmd, check=True, capture_output=True)
        dt = time.monotonic() - t0
        best = dt if best is None else min(best, dt)
        stdout = proc.stdout
    if capture_to is not None:
        with open(capture_to, "wb") as f:
            f.write(stdout)
    return best


def write_report(filename, report):
    """Write a BENCH_*.json report in the repository root."""
    with open(os.path.join(repo_root(), filename), "w") as f:
        json.dump(report, f, indent=2)
        f.write("\n")
