#!/usr/bin/env python3
"""Validate the reuse-distance analytical sweep against the exact
Mattson engine, and maintain the committed per-app error table.

Input is the Both-mode Figure-3 CSV (fig3_working_sets --sweep both
--csv: app,size_bytes,assoc,miss_rate_exact,miss_rate_model,abs_error).
Two claims are enforced:

 1. Fully-associative rows (assoc 0) must match bit-for-bit -- the
    profiler shares the exact sweep's stack-distance core and
    invalidation model and every bucket boundary is a power of two, so
    any FA disagreement is a bug, not model error.
 2. Finite-associativity rows carry the model's real error (binomial
    conflict approximation; no stale-victim preference); each app's
    maximum absolute error must stay within the bound committed in
    results/fig3_model_error.csv.  CI runs `--sweep both` on a subset
    and fails if the bound is exceeded.

Usage:
  check_model_error.py check --both BOTH.csv [--table TABLE.csv]
                             [--apps fft,ocean]
  check_model_error.py write-table --out TABLE.csv BOTH.csv [BOTH2.csv ...]

write-table computes per-app stats across every given Both-mode CSV
(e.g. paper scale and the reduced CI scale) and sets each bound to
1.5x the worst observed finite-associativity error (floor 0.005), so
the gate has headroom against benign cross-host drift without ever
tolerating a broken model.
"""

import argparse
import csv
import math
import sys


def read_both(path):
    """{app: {(size, assoc): (exact, model, err)}} from a Both CSV."""
    apps = {}
    with open(path, newline="") as f:
        rd = csv.DictReader(f)
        need = {"app", "size_bytes", "assoc", "miss_rate_exact",
                "miss_rate_model", "abs_error"}
        if not need.issubset(rd.fieldnames or []):
            sys.exit(f"{path}: not a --sweep both CSV "
                     f"(columns {rd.fieldnames})")
        for row in rd:
            apps.setdefault(row["app"], {})[
                (int(row["size_bytes"]), int(row["assoc"]))] = (
                float(row["miss_rate_exact"]),
                float(row["miss_rate_model"]),
                float(row["abs_error"]))
    return apps


def app_stats(points):
    """(fa_max, finite_max, finite_mean) absolute errors."""
    fa = [e for (_, a), (_, _, e) in points.items() if a == 0]
    fin = [e for (_, a), (_, _, e) in points.items() if a != 0]
    return (max(fa) if fa else 0.0, max(fin) if fin else 0.0,
            sum(fin) / len(fin) if fin else 0.0)


def read_table(path):
    with open(path, newline="") as f:
        return {r["app"]: r for r in csv.DictReader(f)}


def cmd_check(args):
    apps = read_both(args.both)
    table = read_table(args.table)
    only = set(a for a in args.apps.split(",") if a)
    failures = []
    print(f"{'app':<12} {'fa_max':>10} {'finite_max':>11} "
          f"{'bound':>8}  verdict")
    for app in sorted(apps):
        if only and app.lower() not in only:
            continue
        fa_max, fin_max, _ = app_stats(apps[app])
        if app not in table:
            failures.append(f"{app}: no committed bound in "
                            f"{args.table}")
            continue
        bound = float(table[app]["bound"])
        bad = []
        # Claim 1: FA is exact.  The CSV rounds to 1e-6, so a literal
        # zero is the expectation; anything above rounding is a bug.
        if fa_max > 1e-9:
            bad.append(f"FA mismatch {fa_max:.6f} (must be exact)")
        # Claim 2: finite-associativity error within the bound.
        if fin_max > bound:
            bad.append(f"finite-assoc error {fin_max:.6f} exceeds "
                       f"bound {bound:.6f}")
        verdict = "FAIL: " + "; ".join(bad) if bad else "ok"
        print(f"{app:<12} {fa_max:>10.6f} {fin_max:>11.6f} "
              f"{bound:>8.4f}  {verdict}")
        if bad:
            failures.append(f"{app}: " + "; ".join(bad))
    checked = [a for a in apps if not only or a.lower() in only]
    if only and len(checked) < len(only):
        missing = only - set(a.lower() for a in apps)
        failures.append("apps missing from CSV: " + ",".join(missing))
    if failures:
        print("\nFAIL:\n  " + "\n  ".join(failures), file=sys.stderr)
        return 1
    print(f"\nall {len(checked)} apps within committed bounds")
    return 0


def cmd_write_table(args):
    merged = {}
    for path in args.csvs:
        for app, points in read_both(path).items():
            fa, fin, mean = app_stats(points)
            cur = merged.setdefault(app, [0.0, 0.0, 0.0])
            cur[0] = max(cur[0], fa)
            cur[1] = max(cur[1], fin)
            cur[2] = max(cur[2], mean)
    with open(args.out, "w", newline="") as f:
        w = csv.writer(f)
        w.writerow(["app", "fa_max_abs_err", "finite_max_abs_err",
                    "finite_mean_abs_err", "bound"])
        for app in sorted(merged):
            fa, fin, mean = merged[app]
            bound = max(0.005, math.ceil(fin * 1.5 * 1000) / 1000)
            w.writerow([app, f"{fa:.6f}", f"{fin:.6f}",
                        f"{mean:.6f}", f"{bound:.3f}"])
    print(f"wrote {args.out} ({len(merged)} apps)")
    return 0


def main():
    ap = argparse.ArgumentParser()
    sub = ap.add_subparsers(dest="cmd", required=True)
    chk = sub.add_parser("check")
    chk.add_argument("--both", required=True)
    chk.add_argument("--table", default="results/fig3_model_error.csv")
    chk.add_argument("--apps", default="",
                     help="comma-separated lowercase subset to check")
    wt = sub.add_parser("write-table")
    wt.add_argument("--out", required=True)
    wt.add_argument("csvs", nargs="+")
    args = ap.parse_args()
    return (cmd_check if args.cmd == "check" else cmd_write_table)(args)


if __name__ == "__main__":
    sys.exit(main())
