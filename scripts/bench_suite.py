#!/usr/bin/env python3
"""Time the full figure/table suite through the characterization
engine: serial oracle (--jobs 1 --replicas off, one dedicated
execution per configuration) versus the parallel runner + broadcast
replay (--jobs N --replicas auto), verifying byte-identical output,
and write BENCH_suite.json.

This is the tentpole acceptance measurement: on a multi-core host the
parallel suite should be >= 3x faster; on any host the broadcast still
removes the (N-1) redundant executions behind Figures 6/7 and the
protocol ablation.  On a single-core host the >= 3x criterion is
meaningless (running the same work through a thread pool can only be
slower), so the speedup fields are nulled and annotated instead of
reporting a misleading ~1x "speedup" -- the byte-identity checks
still run in full.

Each target is additionally run through the record-once trace store
(--record into a per-target store, then --replay from it, output
byte-compared against the serial oracle), reporting the replay time
and the store's compactness in bits per recorded reference.

Usage: scripts/bench_suite.py [--build build] [--jobs 0] [--full]
                              [--targets fig7,...] [--reps 1]
Writes BENCH_suite.json in the repository root.
"""

import argparse
import json
import os
import sys
import tempfile

import benchlib
from bench_trace import trace_stats

# (target, extra args): every figure/table bench in the suite.
TARGETS = [
    ("fig1_speedups", []),
    ("fig2_synchronization", []),
    ("fig3_working_sets", []),
    ("fig4_traffic", []),
    ("fig5_ocean_scaling", []),
    ("fig6_small_cache", []),
    ("fig7_miss_classification", []),
    ("table1_characterization", []),
    ("table2_working_sets", []),
    ("table3_comm_comp", []),
    ("ablation_protocol", []),
    ("interconnect_traffic", []),
]


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--build", default="build")
    ap.add_argument("--jobs", type=int, default=0,
                    help="parallel-runner job count (0 = host cores)")
    ap.add_argument("--full", action="store_true",
                    help="paper-scale runs (default: --quick)")
    ap.add_argument("--targets", default="",
                    help="comma-separated subset of bench targets")
    ap.add_argument("--reps", type=int, default=1)
    args = ap.parse_args()
    cpus = benchlib.host_cpus()
    if args.jobs < 1:
        args.jobs = cpus
    # With one usable core the parallel runner cannot outrun the
    # serial oracle; speedups would only mislead.
    single_core = cpus <= 1

    os.chdir(benchlib.repo_root())
    only = set(t for t in args.targets.split(",") if t)
    scale_args = [] if args.full else ["--quick"]

    suite = {}
    serial_total = 0.0
    parallel_total = 0.0
    mismatches = []
    for target, extra in TARGETS:
        if only and target not in only:
            continue
        exe = os.path.join(args.build, "bench", target)
        base = [exe] + extra + scale_args
        with tempfile.TemporaryDirectory() as td:
            s_out = os.path.join(td, "serial.txt")
            p_out = os.path.join(td, "parallel.txt")
            r_out = os.path.join(td, "replay.txt")
            store = os.path.join(td, "store")
            serial_s = benchlib.time_cmd(
                base + ["--jobs", "1", "--replicas", "off"],
                args.reps, capture_to=s_out)
            parallel_s = benchlib.time_cmd(
                base + ["--jobs", str(args.jobs)],
                args.reps, capture_to=p_out)
            record_s = benchlib.time_cmd(
                base + ["--jobs", str(args.jobs), "--record", store], 1)
            replay_s = benchlib.time_cmd(
                base + ["--jobs", str(args.jobs), "--replay", store],
                args.reps, capture_to=r_out)
            model_s = None
            if target == "fig3_working_sets":
                # Analytical fast path: the first model pass replays
                # the trace once and saves the profile sidecar next to
                # it; the timed passes load the sidecar and evaluate
                # the grid with neither execution nor replay.
                model_cmd = base + ["--jobs", str(args.jobs),
                                    "--sweep", "model", "--replay",
                                    store]
                benchlib.time_cmd(model_cmd, 1)
                model_s = benchlib.time_cmd(model_cmd, args.reps)
            trace_bytes, trace_records, _ = trace_stats(store)
            with open(s_out, "rb") as f:
                serial_bytes = f.read()
            with open(p_out, "rb") as f:
                parallel_bytes = f.read()
            with open(r_out, "rb") as f:
                replay_bytes = f.read()
        identical = serial_bytes == parallel_bytes
        replay_identical = serial_bytes == replay_bytes
        if not identical or not replay_identical:
            mismatches.append(target)
        suite[target] = {
            "serial_seconds": serial_s,
            "parallel_seconds": parallel_s,
            "speedup": (None if single_core
                        else serial_s / parallel_s if parallel_s
                        else 0.0),
            "output_identical": identical,
            "record_seconds": record_s,
            "replay_seconds": replay_s,
            "replay_speedup": (serial_s / replay_s if replay_s
                               else 0.0),
            "trace_bytes": trace_bytes,
            "trace_bits_per_reference": (8.0 * trace_bytes /
                                         trace_records
                                         if trace_records else 0.0),
            "replay_identical": replay_identical,
        }
        if model_s is not None:
            suite[target]["model_seconds"] = model_s
            suite[target]["model_speedup"] = (serial_s / model_s
                                              if model_s else 0.0)
        serial_total += serial_s
        parallel_total += parallel_s
        print(f"{target}: {serial_s:.2f}s -> {parallel_s:.2f}s "
              f"parallel, {replay_s:.2f}s replay "
              f"({'ok' if identical and replay_identical else 'OUTPUT MISMATCH'})")

    report = {
        "description": "Full figure/table suite through the parallel "
                       "experiment runner + broadcast replay vs the "
                       "serial oracle (--jobs 1 --replicas off), plus "
                       "record-once trace store record/replay timings "
                       "and trace compactness; outputs byte-compared",
        "host_cpus": cpus,
        "jobs": args.jobs,
        "scale": "full" if args.full else "quick",
        "reps": args.reps,
        "targets": suite,
        "serial_total_seconds": serial_total,
        "parallel_total_seconds": parallel_total,
        "suite_speedup": (None if single_core
                          else serial_total / parallel_total
                          if parallel_total else 0.0),
        "parallel_criterion": {
            "threshold_speedup": 3.0,
            "evaluated": not single_core,
            "note": ("single-core host: parallel speedup not "
                     "evaluated (the >= 3x criterion needs multiple "
                     "cores; byte-identity checks still ran)"
                     if single_core else None),
        },
    }
    benchlib.write_report("BENCH_suite.json", report)
    print(json.dumps({k: report[k] for k in
                      ("serial_total_seconds", "parallel_total_seconds",
                       "suite_speedup", "parallel_criterion")},
                     indent=2))
    if mismatches:
        print("OUTPUT MISMATCH in: " + ", ".join(mismatches),
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
