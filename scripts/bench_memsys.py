#!/usr/bin/env python3
"""Measure the memory-path speedup and write BENCH_memsys.json.

Three measurements:

 1. Reference cost: the BM_MemSysHit / BM_MemSysMiss / BM_SweepAccess /
    BM_SweepBatched / BM_Delivery_* / BM_Broadcast microbenchmarks from
    bench/micro_simthroughput (each reports references per second;
    ns/ref = 1e9 / that).  BM_MemSysHitProto/<name> and
    BM_MemSysMissProto/<name> repeat the hit/miss measurements under
    every registered coherence protocol, so the table-driven dispatch
    can be compared across the zoo (BM_MemSysHit/Miss themselves are
    the MESI instances).
 2. End-to-end characterization: wall clock of a full splash2run
    (FFT, 32 processors) under direct versus batched delivery, best
    of N.
 3. End-to-end working-set sweep: wall clock of the Figure 3 sweep
    (FFT, 32 processors, 34 configurations + Mattson stacks) with the
    classic serial online sweep + direct delivery versus the batched
    capture/replay pipeline across all host cores, best of N.  This is
    the headline number: the sweep dominates Figure 3 / Table 2
    turnaround.

Usage: scripts/bench_memsys.py [--build build] [--reps 3] [--n 16]
Writes BENCH_memsys.json in the repository root.
"""

import argparse
import json
import os
import sys

import benchlib


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--build", default="build")
    ap.add_argument("--reps", type=int, default=3)
    ap.add_argument("--n", type=int, default=16,
                    help="FFT log2(points) for the end-to-end runs")
    args = ap.parse_args()

    os.chdir(benchlib.repo_root())

    micro = benchlib.run_micro(
        args.build, "MemSys|Sweep|Delivery|Broadcast", "ref")

    run_exe = os.path.join(args.build, "src", "splash2run")
    run_args = [run_exe, "--app", "fft", "--procs", "32",
                "--n", str(args.n)]
    char_direct = benchlib.time_cmd(
        run_args + ["--delivery", "direct"], args.reps)
    char_batched = benchlib.time_cmd(
        run_args + ["--delivery", "batched"], args.reps)

    fig3_exe = os.path.join(args.build, "bench", "fig3_working_sets")
    fig3_args = [fig3_exe, "--app", "fft", "--procs", "32",
                 "--n", str(args.n), "--csv"]
    sweep_serial = benchlib.time_cmd(
        fig3_args + ["--delivery", "direct", "--sweep-threads", "1"],
        args.reps)
    sweep_parallel = benchlib.time_cmd(
        fig3_args + ["--delivery", "batched", "--sweep-threads", "0"],
        args.reps)

    report = {
        "description": "Memory-path cost: silent-hit fast path (per "
                       "protocol), batched reference delivery, "
                       "parallel working-set sweep",
        "host_cpus": os.cpu_count(),
        "reference_cost": micro,
        "end_to_end_characterization": {
            "workload": " ".join(run_args[1:]),
            "reps": args.reps,
            "direct_seconds": char_direct,
            "batched_seconds": char_batched,
            "speedup": char_direct / char_batched,
        },
        "end_to_end_fig3_sweep": {
            "workload": " ".join(fig3_args[1:]),
            "reps": args.reps,
            "serial_direct_seconds": sweep_serial,
            "parallel_batched_seconds": sweep_parallel,
            "speedup": sweep_serial / sweep_parallel,
        },
    }
    benchlib.write_report("BENCH_memsys.json", report)
    print(json.dumps(report["end_to_end_characterization"], indent=2))
    print(json.dumps(report["end_to_end_fig3_sweep"], indent=2))
    if report["end_to_end_fig3_sweep"]["speedup"] < 2 \
            and (os.cpu_count() or 1) >= 4:
        print("WARNING: fig3 sweep speedup below 2x", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
