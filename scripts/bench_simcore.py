#!/usr/bin/env python3
"""Measure the execution-core speedup and write BENCH_simcore.json.

Two measurements, both comparing the fiber backend against the
thread-per-processor baseline (--backend thread):

 1. Context-switch cost: the BM_SchedulerPingPong_* / BM_SchedulerYield_*
    microbenchmarks from bench/micro_simthroughput (each reports
    switches per second of wall time; ns/switch = 1e9 / that).
 2. End-to-end: wall clock of a full splash2run characterization
    (FFT, 64K points, 32 processors) under each backend, best of N.

Usage: scripts/bench_simcore.py [--build build] [--reps 3]
Writes BENCH_simcore.json in the repository root.
"""

import argparse
import json
import os
import sys

import benchlib


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--build", default="build")
    ap.add_argument("--reps", type=int, default=3)
    args = ap.parse_args()

    os.chdir(benchlib.repo_root())

    micro = benchlib.run_micro(args.build, "PingPong|Yield", "switch")

    def ratio(base):
        f = micro[base + "_Fiber"]["ns_per_switch"]
        t = micro[base + "_Thread"]["ns_per_switch"]
        return t / f

    exe = os.path.join(args.build, "src", "splash2run")
    e2e_args = ["--app", "fft", "--procs", "32", "--n", "16",
                "--quantum", "10"]
    fiber_s = benchlib.time_cmd(
        [exe] + e2e_args + ["--backend", "fiber"], args.reps)
    thread_s = benchlib.time_cmd(
        [exe] + e2e_args + ["--backend", "thread"], args.reps)

    report = {
        "description": "Execution-core cost: fiber backend vs "
                       "thread-per-processor baseline",
        "context_switch": micro,
        "switch_speedup": {
            "block_unblock": ratio("BM_SchedulerPingPong"),
            "yield": ratio("BM_SchedulerYield"),
        },
        "end_to_end": {
            "workload": " ".join(e2e_args),
            "reps": args.reps,
            "fiber_seconds": fiber_s,
            "thread_seconds": thread_s,
            "speedup": thread_s / fiber_s,
        },
    }
    benchlib.write_report("BENCH_simcore.json", report)
    print(json.dumps(report["switch_speedup"], indent=2))
    print(json.dumps(report["end_to_end"], indent=2))
    if min(report["switch_speedup"].values()) < 10:
        print("WARNING: switch speedup below 10x", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
