#!/usr/bin/env python3
"""Measure the execution-core speedup and write BENCH_simcore.json.

Two measurements, both comparing the fiber backend against the
thread-per-processor baseline (--backend thread):

 1. Context-switch cost: the BM_SchedulerPingPong_* / BM_SchedulerYield_*
    microbenchmarks from bench/micro_simthroughput (each reports
    switches per second of wall time; ns/switch = 1e9 / that).
 2. End-to-end: wall clock of a full splash2run characterization
    (FFT, 64K points, 32 processors) under each backend, best of N.

Usage: scripts/bench_simcore.py [--build build] [--reps 3]
Writes BENCH_simcore.json in the repository root.
"""

import argparse
import json
import os
import subprocess
import sys
import time


def run_micro(build):
    exe = os.path.join(build, "bench", "micro_simthroughput")
    out = subprocess.run(
        [exe, "--benchmark_filter=PingPong|Yield",
         "--benchmark_format=json"],
        check=True, capture_output=True, text=True).stdout
    data = json.loads(out)
    micro = {}
    for b in data["benchmarks"]:
        name = b["name"].replace("/real_time", "")
        sw_per_sec = b["items_per_second"]
        micro[name] = {
            "switches_per_sec": sw_per_sec,
            "ns_per_switch": 1e9 / sw_per_sec,
        }
    return micro


def time_e2e(build, backend, reps, args):
    exe = os.path.join(build, "src", "splash2run")
    cmd = [exe] + args + ["--backend", backend]
    best = None
    for _ in range(reps):
        t0 = time.monotonic()
        subprocess.run(cmd, check=True, capture_output=True)
        dt = time.monotonic() - t0
        best = dt if best is None else min(best, dt)
    return best


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--build", default="build")
    ap.add_argument("--reps", type=int, default=3)
    args = ap.parse_args()

    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    os.chdir(root)

    micro = run_micro(args.build)

    def ratio(base):
        f = micro[base + "_Fiber"]["ns_per_switch"]
        t = micro[base + "_Thread"]["ns_per_switch"]
        return t / f

    e2e_args = ["--app", "fft", "--procs", "32", "--n", "16",
                "--quantum", "10"]
    fiber_s = time_e2e(args.build, "fiber", args.reps, e2e_args)
    thread_s = time_e2e(args.build, "thread", args.reps, e2e_args)

    report = {
        "description": "Execution-core cost: fiber backend vs "
                       "thread-per-processor baseline",
        "context_switch": micro,
        "switch_speedup": {
            "block_unblock": ratio("BM_SchedulerPingPong"),
            "yield": ratio("BM_SchedulerYield"),
        },
        "end_to_end": {
            "workload": " ".join(e2e_args),
            "reps": args.reps,
            "fiber_seconds": fiber_s,
            "thread_seconds": thread_s,
            "speedup": thread_s / fiber_s,
        },
    }
    with open("BENCH_simcore.json", "w") as f:
        json.dump(report, f, indent=2)
        f.write("\n")
    print(json.dumps(report["switch_speedup"], indent=2))
    print(json.dumps(report["end_to_end"], indent=2))
    if min(report["switch_speedup"].values()) < 10:
        print("WARNING: switch speedup below 10x", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
