# Empty dependencies file for characterize_custom.
# This may be replaced when dependencies are built.
