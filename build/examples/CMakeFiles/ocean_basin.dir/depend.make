# Empty dependencies file for ocean_basin.
# This may be replaced when dependencies are built.
