file(REMOVE_RECURSE
  "CMakeFiles/ocean_basin.dir/ocean_basin.cpp.o"
  "CMakeFiles/ocean_basin.dir/ocean_basin.cpp.o.d"
  "ocean_basin"
  "ocean_basin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ocean_basin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
