file(REMOVE_RECURSE
  "CMakeFiles/sim_cache_test.dir/sim/cache_test.cc.o"
  "CMakeFiles/sim_cache_test.dir/sim/cache_test.cc.o.d"
  "sim_cache_test"
  "sim_cache_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_cache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
