file(REMOVE_RECURSE
  "CMakeFiles/apps_fft_test.dir/apps/fft_test.cc.o"
  "CMakeFiles/apps_fft_test.dir/apps/fft_test.cc.o.d"
  "apps_fft_test"
  "apps_fft_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apps_fft_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
