# Empty dependencies file for apps_raytrace_test.
# This may be replaced when dependencies are built.
