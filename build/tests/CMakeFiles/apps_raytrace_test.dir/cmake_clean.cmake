file(REMOVE_RECURSE
  "CMakeFiles/apps_raytrace_test.dir/apps/raytrace_test.cc.o"
  "CMakeFiles/apps_raytrace_test.dir/apps/raytrace_test.cc.o.d"
  "apps_raytrace_test"
  "apps_raytrace_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apps_raytrace_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
