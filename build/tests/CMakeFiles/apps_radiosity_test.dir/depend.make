# Empty dependencies file for apps_radiosity_test.
# This may be replaced when dependencies are built.
