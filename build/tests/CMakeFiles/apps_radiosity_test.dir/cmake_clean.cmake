file(REMOVE_RECURSE
  "CMakeFiles/apps_radiosity_test.dir/apps/radiosity_test.cc.o"
  "CMakeFiles/apps_radiosity_test.dir/apps/radiosity_test.cc.o.d"
  "apps_radiosity_test"
  "apps_radiosity_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apps_radiosity_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
