file(REMOVE_RECURSE
  "CMakeFiles/rt_sync_test.dir/rt/sync_test.cc.o"
  "CMakeFiles/rt_sync_test.dir/rt/sync_test.cc.o.d"
  "rt_sync_test"
  "rt_sync_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rt_sync_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
