# Empty dependencies file for rt_sync_test.
# This may be replaced when dependencies are built.
