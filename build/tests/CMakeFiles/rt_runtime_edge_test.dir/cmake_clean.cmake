file(REMOVE_RECURSE
  "CMakeFiles/rt_runtime_edge_test.dir/rt/runtime_edge_test.cc.o"
  "CMakeFiles/rt_runtime_edge_test.dir/rt/runtime_edge_test.cc.o.d"
  "rt_runtime_edge_test"
  "rt_runtime_edge_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rt_runtime_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
