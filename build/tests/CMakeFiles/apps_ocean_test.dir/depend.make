# Empty dependencies file for apps_ocean_test.
# This may be replaced when dependencies are built.
