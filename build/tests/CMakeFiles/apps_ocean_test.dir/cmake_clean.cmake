file(REMOVE_RECURSE
  "CMakeFiles/apps_ocean_test.dir/apps/ocean_test.cc.o"
  "CMakeFiles/apps_ocean_test.dir/apps/ocean_test.cc.o.d"
  "apps_ocean_test"
  "apps_ocean_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apps_ocean_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
