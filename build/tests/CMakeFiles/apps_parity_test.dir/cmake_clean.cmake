file(REMOVE_RECURSE
  "CMakeFiles/apps_parity_test.dir/apps/parity_test.cc.o"
  "CMakeFiles/apps_parity_test.dir/apps/parity_test.cc.o.d"
  "apps_parity_test"
  "apps_parity_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apps_parity_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
