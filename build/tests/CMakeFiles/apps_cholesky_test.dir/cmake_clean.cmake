file(REMOVE_RECURSE
  "CMakeFiles/apps_cholesky_test.dir/apps/cholesky_test.cc.o"
  "CMakeFiles/apps_cholesky_test.dir/apps/cholesky_test.cc.o.d"
  "apps_cholesky_test"
  "apps_cholesky_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apps_cholesky_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
