# Empty dependencies file for rt_taskq_test.
# This may be replaced when dependencies are built.
