file(REMOVE_RECURSE
  "CMakeFiles/rt_taskq_test.dir/rt/taskq_test.cc.o"
  "CMakeFiles/rt_taskq_test.dir/rt/taskq_test.cc.o.d"
  "rt_taskq_test"
  "rt_taskq_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rt_taskq_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
