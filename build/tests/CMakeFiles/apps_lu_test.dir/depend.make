# Empty dependencies file for apps_lu_test.
# This may be replaced when dependencies are built.
