file(REMOVE_RECURSE
  "CMakeFiles/apps_lu_test.dir/apps/lu_test.cc.o"
  "CMakeFiles/apps_lu_test.dir/apps/lu_test.cc.o.d"
  "apps_lu_test"
  "apps_lu_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apps_lu_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
