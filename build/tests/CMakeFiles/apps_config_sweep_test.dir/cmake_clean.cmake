file(REMOVE_RECURSE
  "CMakeFiles/apps_config_sweep_test.dir/apps/config_sweep_test.cc.o"
  "CMakeFiles/apps_config_sweep_test.dir/apps/config_sweep_test.cc.o.d"
  "apps_config_sweep_test"
  "apps_config_sweep_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apps_config_sweep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
