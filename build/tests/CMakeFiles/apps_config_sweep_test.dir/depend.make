# Empty dependencies file for apps_config_sweep_test.
# This may be replaced when dependencies are built.
