file(REMOVE_RECURSE
  "CMakeFiles/apps_radix_test.dir/apps/radix_test.cc.o"
  "CMakeFiles/apps_radix_test.dir/apps/radix_test.cc.o.d"
  "apps_radix_test"
  "apps_radix_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apps_radix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
