# Empty dependencies file for apps_radix_test.
# This may be replaced when dependencies are built.
