# Empty dependencies file for rt_shared_test.
# This may be replaced when dependencies are built.
