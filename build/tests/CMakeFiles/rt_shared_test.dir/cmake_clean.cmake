file(REMOVE_RECURSE
  "CMakeFiles/rt_shared_test.dir/rt/shared_test.cc.o"
  "CMakeFiles/rt_shared_test.dir/rt/shared_test.cc.o.d"
  "rt_shared_test"
  "rt_shared_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rt_shared_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
