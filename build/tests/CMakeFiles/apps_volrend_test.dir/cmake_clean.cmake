file(REMOVE_RECURSE
  "CMakeFiles/apps_volrend_test.dir/apps/volrend_test.cc.o"
  "CMakeFiles/apps_volrend_test.dir/apps/volrend_test.cc.o.d"
  "apps_volrend_test"
  "apps_volrend_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apps_volrend_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
