file(REMOVE_RECURSE
  "CMakeFiles/sim_memsys_test.dir/sim/memsys_test.cc.o"
  "CMakeFiles/sim_memsys_test.dir/sim/memsys_test.cc.o.d"
  "sim_memsys_test"
  "sim_memsys_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_memsys_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
