file(REMOVE_RECURSE
  "CMakeFiles/apps_fmm_test.dir/apps/fmm_test.cc.o"
  "CMakeFiles/apps_fmm_test.dir/apps/fmm_test.cc.o.d"
  "apps_fmm_test"
  "apps_fmm_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apps_fmm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
