file(REMOVE_RECURSE
  "CMakeFiles/apps_barnes_test.dir/apps/barnes_test.cc.o"
  "CMakeFiles/apps_barnes_test.dir/apps/barnes_test.cc.o.d"
  "apps_barnes_test"
  "apps_barnes_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apps_barnes_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
