# Empty compiler generated dependencies file for apps_barnes_test.
# This may be replaced when dependencies are built.
