file(REMOVE_RECURSE
  "CMakeFiles/rt_scheduler_test.dir/rt/scheduler_test.cc.o"
  "CMakeFiles/rt_scheduler_test.dir/rt/scheduler_test.cc.o.d"
  "rt_scheduler_test"
  "rt_scheduler_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rt_scheduler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
