# Empty dependencies file for rt_scheduler_test.
# This may be replaced when dependencies are built.
