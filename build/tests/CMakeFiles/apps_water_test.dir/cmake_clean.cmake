file(REMOVE_RECURSE
  "CMakeFiles/apps_water_test.dir/apps/water_test.cc.o"
  "CMakeFiles/apps_water_test.dir/apps/water_test.cc.o.d"
  "apps_water_test"
  "apps_water_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apps_water_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
