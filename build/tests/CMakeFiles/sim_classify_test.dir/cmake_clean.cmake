file(REMOVE_RECURSE
  "CMakeFiles/sim_classify_test.dir/sim/classify_test.cc.o"
  "CMakeFiles/sim_classify_test.dir/sim/classify_test.cc.o.d"
  "sim_classify_test"
  "sim_classify_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_classify_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
