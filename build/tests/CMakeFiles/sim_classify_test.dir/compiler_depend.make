# Empty compiler generated dependencies file for sim_classify_test.
# This may be replaced when dependencies are built.
