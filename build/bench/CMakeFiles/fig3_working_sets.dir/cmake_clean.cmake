file(REMOVE_RECURSE
  "CMakeFiles/fig3_working_sets.dir/fig3_working_sets.cc.o"
  "CMakeFiles/fig3_working_sets.dir/fig3_working_sets.cc.o.d"
  "fig3_working_sets"
  "fig3_working_sets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_working_sets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
