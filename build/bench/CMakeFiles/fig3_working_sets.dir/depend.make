# Empty dependencies file for fig3_working_sets.
# This may be replaced when dependencies are built.
