file(REMOVE_RECURSE
  "CMakeFiles/fig5_ocean_scaling.dir/fig5_ocean_scaling.cc.o"
  "CMakeFiles/fig5_ocean_scaling.dir/fig5_ocean_scaling.cc.o.d"
  "fig5_ocean_scaling"
  "fig5_ocean_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_ocean_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
