file(REMOVE_RECURSE
  "CMakeFiles/fig4_traffic.dir/fig4_traffic.cc.o"
  "CMakeFiles/fig4_traffic.dir/fig4_traffic.cc.o.d"
  "fig4_traffic"
  "fig4_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
