# Empty dependencies file for fig4_traffic.
# This may be replaced when dependencies are built.
