# Empty compiler generated dependencies file for fig6_small_cache.
# This may be replaced when dependencies are built.
