file(REMOVE_RECURSE
  "CMakeFiles/fig6_small_cache.dir/fig6_small_cache.cc.o"
  "CMakeFiles/fig6_small_cache.dir/fig6_small_cache.cc.o.d"
  "fig6_small_cache"
  "fig6_small_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_small_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
