file(REMOVE_RECURSE
  "CMakeFiles/fig2_synchronization.dir/fig2_synchronization.cc.o"
  "CMakeFiles/fig2_synchronization.dir/fig2_synchronization.cc.o.d"
  "fig2_synchronization"
  "fig2_synchronization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_synchronization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
