# Empty dependencies file for fig2_synchronization.
# This may be replaced when dependencies are built.
