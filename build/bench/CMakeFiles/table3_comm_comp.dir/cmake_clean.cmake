file(REMOVE_RECURSE
  "CMakeFiles/table3_comm_comp.dir/table3_comm_comp.cc.o"
  "CMakeFiles/table3_comm_comp.dir/table3_comm_comp.cc.o.d"
  "table3_comm_comp"
  "table3_comm_comp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_comm_comp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
