# Empty dependencies file for table3_comm_comp.
# This may be replaced when dependencies are built.
