file(REMOVE_RECURSE
  "CMakeFiles/table2_working_sets.dir/table2_working_sets.cc.o"
  "CMakeFiles/table2_working_sets.dir/table2_working_sets.cc.o.d"
  "table2_working_sets"
  "table2_working_sets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_working_sets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
