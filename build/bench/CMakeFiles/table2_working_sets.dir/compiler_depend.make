# Empty compiler generated dependencies file for table2_working_sets.
# This may be replaced when dependencies are built.
