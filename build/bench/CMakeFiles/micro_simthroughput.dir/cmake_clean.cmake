file(REMOVE_RECURSE
  "CMakeFiles/micro_simthroughput.dir/micro_simthroughput.cc.o"
  "CMakeFiles/micro_simthroughput.dir/micro_simthroughput.cc.o.d"
  "micro_simthroughput"
  "micro_simthroughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_simthroughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
