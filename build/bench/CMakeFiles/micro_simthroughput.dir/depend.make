# Empty dependencies file for micro_simthroughput.
# This may be replaced when dependencies are built.
