# Empty dependencies file for fig7_miss_classification.
# This may be replaced when dependencies are built.
