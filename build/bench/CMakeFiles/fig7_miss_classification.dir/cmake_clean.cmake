file(REMOVE_RECURSE
  "CMakeFiles/fig7_miss_classification.dir/fig7_miss_classification.cc.o"
  "CMakeFiles/fig7_miss_classification.dir/fig7_miss_classification.cc.o.d"
  "fig7_miss_classification"
  "fig7_miss_classification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_miss_classification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
