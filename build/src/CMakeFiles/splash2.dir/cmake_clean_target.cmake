file(REMOVE_RECURSE
  "libsplash2.a"
)
