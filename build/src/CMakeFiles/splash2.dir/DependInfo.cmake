
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/barnes/barnes.cc" "src/CMakeFiles/splash2.dir/apps/barnes/barnes.cc.o" "gcc" "src/CMakeFiles/splash2.dir/apps/barnes/barnes.cc.o.d"
  "/root/repo/src/apps/cholesky/cholesky.cc" "src/CMakeFiles/splash2.dir/apps/cholesky/cholesky.cc.o" "gcc" "src/CMakeFiles/splash2.dir/apps/cholesky/cholesky.cc.o.d"
  "/root/repo/src/apps/fft/fft.cc" "src/CMakeFiles/splash2.dir/apps/fft/fft.cc.o" "gcc" "src/CMakeFiles/splash2.dir/apps/fft/fft.cc.o.d"
  "/root/repo/src/apps/fmm/fmm.cc" "src/CMakeFiles/splash2.dir/apps/fmm/fmm.cc.o" "gcc" "src/CMakeFiles/splash2.dir/apps/fmm/fmm.cc.o.d"
  "/root/repo/src/apps/lu/lu.cc" "src/CMakeFiles/splash2.dir/apps/lu/lu.cc.o" "gcc" "src/CMakeFiles/splash2.dir/apps/lu/lu.cc.o.d"
  "/root/repo/src/apps/ocean/ocean.cc" "src/CMakeFiles/splash2.dir/apps/ocean/ocean.cc.o" "gcc" "src/CMakeFiles/splash2.dir/apps/ocean/ocean.cc.o.d"
  "/root/repo/src/apps/radiosity/radiosity.cc" "src/CMakeFiles/splash2.dir/apps/radiosity/radiosity.cc.o" "gcc" "src/CMakeFiles/splash2.dir/apps/radiosity/radiosity.cc.o.d"
  "/root/repo/src/apps/radix/radix.cc" "src/CMakeFiles/splash2.dir/apps/radix/radix.cc.o" "gcc" "src/CMakeFiles/splash2.dir/apps/radix/radix.cc.o.d"
  "/root/repo/src/apps/raytrace/raytrace.cc" "src/CMakeFiles/splash2.dir/apps/raytrace/raytrace.cc.o" "gcc" "src/CMakeFiles/splash2.dir/apps/raytrace/raytrace.cc.o.d"
  "/root/repo/src/apps/volrend/volrend.cc" "src/CMakeFiles/splash2.dir/apps/volrend/volrend.cc.o" "gcc" "src/CMakeFiles/splash2.dir/apps/volrend/volrend.cc.o.d"
  "/root/repo/src/apps/water/base.cc" "src/CMakeFiles/splash2.dir/apps/water/base.cc.o" "gcc" "src/CMakeFiles/splash2.dir/apps/water/base.cc.o.d"
  "/root/repo/src/apps/water/water_nsq.cc" "src/CMakeFiles/splash2.dir/apps/water/water_nsq.cc.o" "gcc" "src/CMakeFiles/splash2.dir/apps/water/water_nsq.cc.o.d"
  "/root/repo/src/apps/water/water_sp.cc" "src/CMakeFiles/splash2.dir/apps/water/water_sp.cc.o" "gcc" "src/CMakeFiles/splash2.dir/apps/water/water_sp.cc.o.d"
  "/root/repo/src/harness/appreg.cc" "src/CMakeFiles/splash2.dir/harness/appreg.cc.o" "gcc" "src/CMakeFiles/splash2.dir/harness/appreg.cc.o.d"
  "/root/repo/src/rt/env.cc" "src/CMakeFiles/splash2.dir/rt/env.cc.o" "gcc" "src/CMakeFiles/splash2.dir/rt/env.cc.o.d"
  "/root/repo/src/rt/scheduler.cc" "src/CMakeFiles/splash2.dir/rt/scheduler.cc.o" "gcc" "src/CMakeFiles/splash2.dir/rt/scheduler.cc.o.d"
  "/root/repo/src/rt/shared_heap.cc" "src/CMakeFiles/splash2.dir/rt/shared_heap.cc.o" "gcc" "src/CMakeFiles/splash2.dir/rt/shared_heap.cc.o.d"
  "/root/repo/src/rt/sync.cc" "src/CMakeFiles/splash2.dir/rt/sync.cc.o" "gcc" "src/CMakeFiles/splash2.dir/rt/sync.cc.o.d"
  "/root/repo/src/rt/taskq.cc" "src/CMakeFiles/splash2.dir/rt/taskq.cc.o" "gcc" "src/CMakeFiles/splash2.dir/rt/taskq.cc.o.d"
  "/root/repo/src/sim/cache.cc" "src/CMakeFiles/splash2.dir/sim/cache.cc.o" "gcc" "src/CMakeFiles/splash2.dir/sim/cache.cc.o.d"
  "/root/repo/src/sim/classify.cc" "src/CMakeFiles/splash2.dir/sim/classify.cc.o" "gcc" "src/CMakeFiles/splash2.dir/sim/classify.cc.o.d"
  "/root/repo/src/sim/memsys.cc" "src/CMakeFiles/splash2.dir/sim/memsys.cc.o" "gcc" "src/CMakeFiles/splash2.dir/sim/memsys.cc.o.d"
  "/root/repo/src/sim/sweep.cc" "src/CMakeFiles/splash2.dir/sim/sweep.cc.o" "gcc" "src/CMakeFiles/splash2.dir/sim/sweep.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
