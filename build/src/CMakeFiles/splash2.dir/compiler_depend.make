# Empty compiler generated dependencies file for splash2.
# This may be replaced when dependencies are built.
