file(REMOVE_RECURSE
  "CMakeFiles/splash2run.dir/tools/splash2run.cc.o"
  "CMakeFiles/splash2run.dir/tools/splash2run.cc.o.d"
  "splash2run"
  "splash2run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/splash2run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
