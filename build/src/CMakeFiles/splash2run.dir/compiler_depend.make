# Empty compiler generated dependencies file for splash2run.
# This may be replaced when dependencies are built.
