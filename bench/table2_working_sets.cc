/**
 * @file
 * Table 2: important working sets and their growth rates.
 *
 * The knees of the Figure 3 curves are detected automatically from the
 * 4-way miss-rate-vs-size profile (a knee is a cache size whose miss
 * rate improves on the next smaller size by a large relative and
 * absolute margin).  The measured WS1 is compared across two data-set
 * scales and two processor counts to classify its growth empirically,
 * next to the paper's analytic growth expressions.
 *
 * Usage: table2_working_sets [--procs 32] [--scale 1.0]
 */
#include <cstdio>
#include <string>
#include <vector>

#include "harness/experiment.h"
#include "harness/report.h"

using namespace splash;
using namespace splash::harness;

namespace {

struct Profile
{
    std::vector<std::uint64_t> sizes;
    std::vector<double> mr;  // 4-way miss rates
};

Profile
profileAt(App& app, int procs, double scale, const SimOpts& simOpts)
{
    sim::SweepConfig sc;
    sc.nprocs = procs;
    sim::CacheSweep sweep(sc);
    AppConfig cfg;
    cfg.scale = scale;
    runWithSweep(app, procs, sweep, cfg, simOpts);
    Profile p;
    p.sizes = sc.sizes;
    for (auto s : sc.sizes)
        p.mr.push_back(sweep.missRate(s, 4));
    return p;
}

/** First knee: smallest size capturing >= 50% of the total miss-rate
 *  drop from the smallest to the largest cache. */
std::uint64_t
firstKnee(const Profile& p)
{
    double span = p.mr.front() - p.mr.back();
    if (span <= 0)
        return p.sizes.front();
    for (std::size_t i = 0; i < p.sizes.size(); ++i) {
        if (p.mr.front() - p.mr[i] >= 0.5 * span)
            return p.sizes[i];
    }
    return p.sizes.back();
}

std::string
kb(std::uint64_t bytes)
{
    return std::to_string(bytes >> 10) + "KB";
}

/** The paper's analytic growth-rate expressions (Table 2). */
const char*
paperGrowth(const std::string& name)
{
    if (name == "Barnes")
        return "log(DS) [tree data per body]";
    if (name == "Cholesky")
        return "fixed [one block]";
    if (name == "FFT")
        return "sqrt(DS) [one row]";
    if (name == "FMM")
        return "fixed [expansion terms]";
    if (name == "LU")
        return "fixed [one block]";
    if (name == "Ocean")
        return "sqrt(DS)/P [a few subrows]";
    if (name == "Radiosity")
        return "log(polygons) [BSP tree]";
    if (name == "Radix")
        return "radix r [histogram]";
    if (name == "Raytrace")
        return "unstructured";
    if (name == "Volrend")
        return "K log DS [octree, part of ray]";
    return "fixed [private data]";
}

} // namespace

int
main(int argc, char** argv)
{
    Options opt(argc, argv);
    int procs = static_cast<int>(
        opt.getI("procs", opt.has("quick") ? 8 : 32));
    double base = opt.getD("scale", opt.has("quick") ? 0.25 : 1.0);
    SimOpts simOpts;
    simOpts.sweepThreads =
        static_cast<int>(opt.getI("sweep-threads", 0));

    std::printf("Table 2: measured first working set (WS1) and its "
                "empirical growth; base scale %.3g\n\n",
                base);
    Table t({"Code", "WS1", "WS1 @2xDS", "WS1 @P/2", "MR@WS1(%)",
             "paper growth of WS1"});
    for (App* app : suite()) {
        Profile p0 = profileAt(*app, procs, base, simOpts);
        Profile p_ds = profileAt(*app, procs, base * 2.0, simOpts);
        Profile p_p = profileAt(*app, procs / 2, base, simOpts);
        std::uint64_t k0 = firstKnee(p0);
        std::uint64_t kds = firstKnee(p_ds);
        std::uint64_t kp = firstKnee(p_p);
        double mr = 0;
        for (std::size_t i = 0; i < p0.sizes.size(); ++i)
            if (p0.sizes[i] == k0)
                mr = p0.mr[i];
        t.row({app->name(), kb(k0), kb(kds), kb(kp),
               fmt("%.3f", 100.0 * mr), paperGrowth(app->name())});
    }
    t.print();
    std::printf("\n(WS1 stable across P and growing slowly or not at "
                "all with DS -> fits in realistic caches, as the "
                "paper concludes)\n");
    return 0;
}
