/**
 * @file
 * Table 2: important working sets and their growth rates.
 *
 * The knees of the Figure 3 curves are detected automatically from the
 * 4-way miss-rate-vs-size profile (a knee is a cache size whose miss
 * rate improves on the next smaller size by a large relative and
 * absolute margin).  The measured WS1 is compared across two data-set
 * scales and two processor counts to classify its growth empirically,
 * next to the paper's analytic growth expressions.
 *
 * Engine: each of an application's three sweep profiles (base, 2x
 * data set, half the processors) is an independent runner job
 * (--jobs); output bytes are identical for every jobs value.
 *
 * Usage: table2_working_sets [--procs 32] [--scale 1.0] [--jobs N]
 */
#include <cstdio>
#include <string>
#include <vector>

#include "harness/cli.h"
#include "harness/runner.h"

using namespace splash;
using namespace splash::harness;

namespace {

struct Profile
{
    std::vector<std::uint64_t> sizes;
    std::vector<double> mr;  // 4-way miss rates
};

Profile
profileAt(App& app, int procs, double scale, const SimOpts& simOpts)
{
    sim::SweepConfig sc;
    sc.nprocs = procs;
    sim::CacheSweep sweep(sc);
    AppConfig cfg;
    cfg.scale = scale;
    runWithSweep(app, procs, sweep, cfg, simOpts);
    Profile p;
    p.sizes = sc.sizes;
    for (auto s : sc.sizes)
        p.mr.push_back(sweep.missRate(s, 4));
    return p;
}

/** First knee: smallest size capturing >= 50% of the total miss-rate
 *  drop from the smallest to the largest cache. */
std::uint64_t
firstKnee(const Profile& p)
{
    double span = p.mr.front() - p.mr.back();
    if (span <= 0)
        return p.sizes.front();
    for (std::size_t i = 0; i < p.sizes.size(); ++i) {
        if (p.mr.front() - p.mr[i] >= 0.5 * span)
            return p.sizes[i];
    }
    return p.sizes.back();
}

std::string
kb(std::uint64_t bytes)
{
    return std::to_string(bytes >> 10) + "KB";
}

/** The paper's analytic growth-rate expressions (Table 2). */
const char*
paperGrowth(const std::string& name)
{
    if (name == "Barnes")
        return "log(DS) [tree data per body]";
    if (name == "Cholesky")
        return "fixed [one block]";
    if (name == "FFT")
        return "sqrt(DS) [one row]";
    if (name == "FMM")
        return "fixed [expansion terms]";
    if (name == "LU")
        return "fixed [one block]";
    if (name == "Ocean")
        return "sqrt(DS)/P [a few subrows]";
    if (name == "Radiosity")
        return "log(polygons) [BSP tree]";
    if (name == "Radix")
        return "radix r [histogram]";
    if (name == "Raytrace")
        return "unstructured";
    if (name == "Volrend")
        return "K log DS [octree, part of ray]";
    return "fixed [private data]";
}

} // namespace

int
main(int argc, char** argv)
{
    Options opt(argc, argv);
    EngineOpts eng;
    if (!parseEngineOpts(opt, &eng))
        return eng.listRequested ? 0 : 2;
    int procs = static_cast<int>(
        opt.getI("procs", opt.has("quick") ? 8 : 32));
    double base = opt.getD("scale", opt.has("quick") ? 0.25 : 1.0);

    std::vector<App*> apps;
    for (App* app : suite())
        apps.push_back(app);

    // Three profiles per application: base, 2x data set, half procs.
    std::vector<std::vector<Profile>> profiles(
        apps.size(), std::vector<Profile>(3));
    Runner runner(eng.jobs);
    for (std::size_t i = 0; i < apps.size(); ++i) {
        struct Variant
        {
            const char* tag;
            int procs;
            double scale;
        };
        const Variant variants[3] = {
            {"base", procs, base},
            {"2xDS", procs, base * 2.0},
            {"P/2", procs / 2, base},
        };
        for (int v = 0; v < 3; ++v) {
            const Variant& var = variants[v];
            runner.add(apps[i]->name() + "/" + var.tag,
                       appCostHint(*apps[i]) * var.scale * var.procs,
                       [&, i, v, var] {
                           profiles[i][v] = profileAt(
                               *apps[i], var.procs, var.scale, eng.sim);
                       });
        }
    }
    runner.run();

    std::printf("Table 2: measured first working set (WS1) and its "
                "empirical growth; base scale %.3g\n\n",
                base);
    Table t({"Code", "WS1", "WS1 @2xDS", "WS1 @P/2", "MR@WS1(%)",
             "paper growth of WS1"});
    for (std::size_t i = 0; i < apps.size(); ++i) {
        const Profile& p0 = profiles[i][0];
        std::uint64_t k0 = firstKnee(p0);
        std::uint64_t kds = firstKnee(profiles[i][1]);
        std::uint64_t kp = firstKnee(profiles[i][2]);
        double mr = 0;
        for (std::size_t j = 0; j < p0.sizes.size(); ++j)
            if (p0.sizes[j] == k0)
                mr = p0.mr[j];
        t.row({apps[i]->name(), kb(k0), kb(kds), kb(kp),
               fmt("%.3f", 100.0 * mr), paperGrowth(apps[i]->name())});
    }
    t.print();
    std::printf("\n(WS1 stable across P and growing slowly or not at "
                "all with DS -> fits in realistic caches, as the "
                "paper concludes)\n");
    return 0;
}
