/**
 * @file
 * Figure 6: traffic with 8 KB caches for the four applications whose
 * important working set realistically may NOT fit in the cache (FFT,
 * Ocean, Radix, Raytrace), 1..32 processors.
 *
 * Expect total traffic much larger than with 1 MB caches (Figure 4),
 * the increase appearing as local data for FFT and Ocean (capacity
 * misses to locally-allocated partitions) and as remote/communication
 * traffic for Raytrace -- the paper's argument for modeling contention
 * when working sets do not fit.
 *
 * Engine: in --csv mode the 8 KB and 1 MB configurations are two
 * broadcast replicas of ONE execution per (app, P) so the comparison
 * with Figure 4 comes from the identical reference stream; (app, P)
 * points are scheduled across host cores (--jobs).  Text mode reports
 * the small cache only and its bytes are unchanged from the serial
 * bench.
 *
 * Usage: fig6_small_cache [--scale 1.0] [--maxprocs 32] [--cachekb 8]
 *                         [--csv] [--jobs N] [--replicas MODE]
 */
#include <cstdio>
#include <vector>

#include "harness/cli.h"
#include "harness/runner.h"

using namespace splash;
using namespace splash::harness;

int
main(int argc, char** argv)
{
    Options opt(argc, argv);
    EngineOpts eng;
    if (!parseEngineOpts(opt, &eng))
        return eng.listRequested ? 0 : 2;
    AppConfig cfg;
    cfg.scale = opt.getD("scale", opt.has("quick") ? 0.25 : 1.0);
    int maxp = static_cast<int>(
        opt.getI("maxprocs", opt.has("quick") ? 8 : 32));
    bool csv = opt.has("csv");
    sim::CacheConfig small;
    small.size = std::uint64_t(opt.getI("cachekb", 8)) << 10;
    sim::CacheConfig large;  // Figure 4's 1 MB baseline

    const std::vector<const char*> names = {"FFT", "Ocean", "Radix",
                                            "Raytrace"};
    std::vector<int> procs;
    for (int p = 1; p <= maxp; p *= 2)
        procs.push_back(p);

    // results[i][j] holds {small} in text mode, {small, large} in CSV
    // mode -- both cache sizes fed by one execution via the broadcast.
    std::vector<std::vector<std::vector<RunStats>>> results(
        names.size(),
        std::vector<std::vector<RunStats>>(procs.size()));
    Runner runner(eng.jobs);
    for (std::size_t i = 0; i < names.size(); ++i) {
        App* app = findApp(names[i]);
        for (std::size_t j = 0; j < procs.size(); ++j) {
            runner.add(app->name() + "/P" + std::to_string(procs[j]),
                       appCostHint(*app) * procs[j], [&, app, i, j] {
                           std::vector<MemExperiment> exps;
                           MemExperiment e;
                           e.protocol = eng.sim.protocol;
                           e.cache = small;
                           exps.push_back(e);
                           if (csv) {
                               e.cache = large;
                               exps.push_back(e);
                           }
                           results[i][j] = runCharacterizations(
                               *app, procs[j], exps, cfg, eng.sim);
                       });
        }
    }
    runner.run();

    if (csv)
        std::printf("app,procs,cachekb,rem_shared,rem_cold,rem_cap,"
                    "rem_wb,rem_ovhd,local,true_shared,total\n");
    else
        std::printf("Figure 6: traffic with %llu KB 4-way 64 B caches "
                    "(bytes/FLOP for FFT and Ocean, bytes/instr for "
                    "the others), scale %.3g\n",
                    static_cast<unsigned long long>(small.size >> 10),
                    cfg.scale);
    for (std::size_t i = 0; i < names.size(); ++i) {
        App* app = findApp(names[i]);
        if (!csv)
            std::printf("\n%s (per %s)\n", app->name().c_str(),
                        app->isFloatingPoint() ? "FLOP" : "instr");
        Table t({"P", "RemShared", "RemCold", "RemCap", "RemWB",
                 "RemOvhd", "Local", "TrueShared", "Total"});
        for (std::size_t j = 0; j < procs.size(); ++j) {
            for (std::size_t k = 0; k < results[i][j].size(); ++k) {
                const RunStats& r = results[i][j][k];
                double den = trafficDenominator(*app, r.exec);
                if (den <= 0)
                    den = 1;
                if (csv) {
                    std::uint64_t kb =
                        (k == 0 ? small.size : large.size) >> 10;
                    std::printf(
                        "%s,%d,%llu,%.6f,%.6f,%.6f,%.6f,%.6f,%.6f,"
                        "%.6f,%.6f\n",
                        app->name().c_str(), procs[j],
                        static_cast<unsigned long long>(kb),
                        double(r.mem.remoteSharedData) / den,
                        double(r.mem.remoteColdData) / den,
                        double(r.mem.remoteCapacityData) / den,
                        double(r.mem.remoteWriteback) / den,
                        double(r.mem.remoteOverhead) / den,
                        double(r.mem.localData) / den,
                        double(r.mem.trueSharedData) / den,
                        double(r.mem.totalTraffic()) / den);
                    continue;
                }
                auto b = [&](double v) {
                    return fmt("%.4f", v / den);
                };
                t.row({std::to_string(procs[j]),
                       b(double(r.mem.remoteSharedData)),
                       b(double(r.mem.remoteColdData)),
                       b(double(r.mem.remoteCapacityData)),
                       b(double(r.mem.remoteWriteback)),
                       b(double(r.mem.remoteOverhead)),
                       b(double(r.mem.localData)),
                       b(double(r.mem.trueSharedData)),
                       b(double(r.mem.totalTraffic()))});
            }
        }
        if (!csv)
            t.print();
    }
    return 0;
}
