/**
 * @file
 * Figure 6: traffic with 8 KB caches for the four applications whose
 * important working set realistically may NOT fit in the cache (FFT,
 * Ocean, Radix, Raytrace), 1..32 processors.
 *
 * Expect total traffic much larger than with 1 MB caches (Figure 4),
 * the increase appearing as local data for FFT and Ocean (capacity
 * misses to locally-allocated partitions) and as remote/communication
 * traffic for Raytrace -- the paper's argument for modeling contention
 * when working sets do not fit.
 *
 * Usage: fig6_small_cache [--scale 1.0] [--maxprocs 32] [--cachekb 8]
 */
#include <cstdio>

#include "harness/experiment.h"
#include "harness/report.h"

using namespace splash;
using namespace splash::harness;

int
main(int argc, char** argv)
{
    Options opt(argc, argv);
    AppConfig cfg;
    cfg.scale = opt.getD("scale", opt.has("quick") ? 0.25 : 1.0);
    int maxp = static_cast<int>(
        opt.getI("maxprocs", opt.has("quick") ? 8 : 32));
    sim::CacheConfig cache;
    cache.size = std::uint64_t(opt.getI("cachekb", 8)) << 10;

    std::printf("Figure 6: traffic with %llu KB 4-way 64 B caches "
                "(bytes/FLOP for FFT and Ocean, bytes/instr for the "
                "others), scale %.3g\n",
                static_cast<unsigned long long>(cache.size >> 10),
                cfg.scale);
    for (const char* name : {"FFT", "Ocean", "Radix", "Raytrace"}) {
        App* app = findApp(name);
        std::printf("\n%s (per %s)\n", app->name().c_str(),
                    app->isFloatingPoint() ? "FLOP" : "instr");
        Table t({"P", "RemShared", "RemCold", "RemCap", "RemWB",
                 "RemOvhd", "Local", "TrueShared", "Total"});
        for (int p = 1; p <= maxp; p *= 2) {
            RunStats r = runWithMemSystem(*app, p, cache, cfg);
            double den = trafficDenominator(*app, r.exec);
            if (den <= 0)
                den = 1;
            auto b = [&](double v) { return fmt("%.4f", v / den); };
            t.row({std::to_string(p),
                   b(double(r.mem.remoteSharedData)),
                   b(double(r.mem.remoteColdData)),
                   b(double(r.mem.remoteCapacityData)),
                   b(double(r.mem.remoteWriteback)),
                   b(double(r.mem.remoteOverhead)),
                   b(double(r.mem.localData)),
                   b(double(r.mem.trueSharedData)),
                   b(double(r.mem.totalTraffic()))});
        }
        t.print();
    }
    return 0;
}
