/**
 * @file
 * Figure 4: traffic breakdown in bytes per FLOP (floating-point codes)
 * or bytes per instruction (integer codes), for 1..32 processors with
 * 1 MB 4-way 64-byte-line caches.
 *
 * Categories as in the paper: remote data split by miss type (shared =
 * true+false sharing, cold, capacity) plus remote writebacks, remote
 * overhead (8-byte protocol packets and data headers), local data, and
 * the true-sharing traffic that approximates inherent communication.
 *
 * Engine: each (app, P) point is an independent execution, scheduled
 * across host cores by the experiment runner (--jobs); output bytes
 * are identical for every jobs value.
 *
 * Usage: fig4_traffic [--scale 1.0] [--maxprocs 32] [--app <name>]
 *                     [--cachekb 1024] [--csv] [--jobs N]
 */
#include <cstdio>
#include <vector>

#include "harness/cli.h"
#include "harness/runner.h"

using namespace splash;
using namespace splash::harness;

int
main(int argc, char** argv)
{
    Options opt(argc, argv);
    EngineOpts eng;
    if (!parseEngineOpts(opt, &eng))
        return eng.listRequested ? 0 : 2;
    AppConfig cfg;
    cfg.scale = opt.getD("scale", opt.has("quick") ? 0.25 : 1.0);
    int maxp = static_cast<int>(
        opt.getI("maxprocs", opt.has("quick") ? 8 : 32));
    std::string only = opt.getS("app", "");
    bool csv = opt.has("csv");
    sim::CacheConfig cache;
    cache.size = std::uint64_t(opt.getI("cachekb", 1024)) << 10;

    std::vector<int> procs;
    for (int p = 1; p <= maxp; p *= 2)
        procs.push_back(p);
    std::vector<App*> apps;
    for (App* app : suite())
        if (only.empty() || findApp(only) == app)
            apps.push_back(app);

    std::vector<std::vector<RunStats>> results(
        apps.size(), std::vector<RunStats>(procs.size()));
    Runner runner(eng.jobs);
    for (std::size_t i = 0; i < apps.size(); ++i) {
        for (std::size_t j = 0; j < procs.size(); ++j) {
            runner.add(apps[i]->name() + "/P" +
                           std::to_string(procs[j]),
                       appCostHint(*apps[i]) * procs[j], [&, i, j] {
                           results[i][j] = runWithMemSystem(
                               *apps[i], procs[j], cache, cfg,
                               eng.sim);
                       });
        }
    }
    runner.run();

    if (csv)
        std::printf("app,procs,rem_shared,rem_cold,rem_cap,rem_wb,"
                    "rem_ovhd,local,true_shared,total\n");
    else
        std::printf("Figure 4: traffic breakdown (bytes per FLOP for "
                    "FP codes, bytes per instruction otherwise); %llu "
                    "KB 4-way 64 B caches, scale %.3g\n",
                    static_cast<unsigned long long>(cache.size >> 10),
                    cfg.scale);
    for (std::size_t i = 0; i < apps.size(); ++i) {
        App* app = apps[i];
        Table t({"P", "RemShared", "RemCold", "RemCap", "RemWB",
                 "RemOvhd", "Local", "TrueShared", "Total"});
        if (!csv)
            std::printf("\n%s (per %s)\n", app->name().c_str(),
                        app->isFloatingPoint() ? "FLOP" : "instr");
        for (std::size_t j = 0; j < procs.size(); ++j) {
            const RunStats& r = results[i][j];
            double den = trafficDenominator(*app, r.exec);
            if (den <= 0)
                den = 1;
            if (csv) {
                std::printf("%s,%d,%.6f,%.6f,%.6f,%.6f,%.6f,%.6f,"
                            "%.6f,%.6f\n",
                            app->name().c_str(), procs[j],
                            double(r.mem.remoteSharedData) / den,
                            double(r.mem.remoteColdData) / den,
                            double(r.mem.remoteCapacityData) / den,
                            double(r.mem.remoteWriteback) / den,
                            double(r.mem.remoteOverhead) / den,
                            double(r.mem.localData) / den,
                            double(r.mem.trueSharedData) / den,
                            double(r.mem.totalTraffic()) / den);
                continue;
            }
            auto b = [&](double v) { return fmt("%.4f", v / den); };
            t.row({std::to_string(procs[j]),
                   b(double(r.mem.remoteSharedData)),
                   b(double(r.mem.remoteColdData)),
                   b(double(r.mem.remoteCapacityData)),
                   b(double(r.mem.remoteWriteback)),
                   b(double(r.mem.remoteOverhead)),
                   b(double(r.mem.localData)),
                   b(double(r.mem.trueSharedData)),
                   b(double(r.mem.totalTraffic()))});
        }
        if (!csv)
            t.print();
    }
    return 0;
}
