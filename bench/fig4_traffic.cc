/**
 * @file
 * Figure 4: traffic breakdown in bytes per FLOP (floating-point codes)
 * or bytes per instruction (integer codes), for 1..32 processors with
 * 1 MB 4-way 64-byte-line caches.
 *
 * Categories as in the paper: remote data split by miss type (shared =
 * true+false sharing, cold, capacity) plus remote writebacks, remote
 * overhead (8-byte protocol packets and data headers), local data, and
 * the true-sharing traffic that approximates inherent communication.
 *
 * Usage: fig4_traffic [--scale 1.0] [--maxprocs 32] [--app <name>]
 *                     [--cachekb 1024]
 */
#include <cstdio>
#include <vector>

#include "harness/experiment.h"
#include "harness/report.h"

using namespace splash;
using namespace splash::harness;

int
main(int argc, char** argv)
{
    Options opt(argc, argv);
    AppConfig cfg;
    cfg.scale = opt.getD("scale", opt.has("quick") ? 0.25 : 1.0);
    int maxp = static_cast<int>(
        opt.getI("maxprocs", opt.has("quick") ? 8 : 32));
    std::string only = opt.getS("app", "");
    sim::CacheConfig cache;
    cache.size = std::uint64_t(opt.getI("cachekb", 1024)) << 10;

    std::printf("Figure 4: traffic breakdown (bytes per FLOP for FP "
                "codes, bytes per instruction otherwise); %llu KB "
                "4-way 64 B caches, scale %.3g\n",
                static_cast<unsigned long long>(cache.size >> 10),
                cfg.scale);
    for (App* app : suite()) {
        if (!only.empty() && findApp(only) != app)
            continue;
        std::printf("\n%s (per %s)\n", app->name().c_str(),
                    app->isFloatingPoint() ? "FLOP" : "instr");
        Table t({"P", "RemShared", "RemCold", "RemCap", "RemWB",
                 "RemOvhd", "Local", "TrueShared", "Total"});
        for (int p = 1; p <= maxp; p *= 2) {
            RunStats r = runWithMemSystem(*app, p, cache, cfg);
            double den = trafficDenominator(*app, r.exec);
            if (den <= 0)
                den = 1;
            auto b = [&](double v) { return fmt("%.4f", v / den); };
            t.row({std::to_string(p),
                   b(double(r.mem.remoteSharedData)),
                   b(double(r.mem.remoteColdData)),
                   b(double(r.mem.remoteCapacityData)),
                   b(double(r.mem.remoteWriteback)),
                   b(double(r.mem.remoteOverhead)),
                   b(double(r.mem.localData)),
                   b(double(r.mem.trueSharedData)),
                   b(double(r.mem.totalTraffic()))});
        }
        t.print();
    }
    return 0;
}
