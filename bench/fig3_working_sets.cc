/**
 * @file
 * Figure 3: miss rate versus cache size and associativity.
 *
 * For every program, a single execution feeds the multi-configuration
 * cache sweep, which simulates all power-of-two cache sizes from 1 KB
 * to 1 MB at 1-, 2-, and 4-way set associativity plus fully
 * associative LRU, with 64-byte lines and the default processor count
 * (32).  Expect the paper's shape: sharp knees where the important
 * working sets (WS1/WS2 of Table 2) start to fit, near-zero miss
 * rates by 1 MB for all codes, a big 1-way -> 2-way improvement and a
 * small 2-way -> 4-way one.
 *
 * Engine: each application (execution + sweep) is one runner job
 * (--jobs overlaps applications); --sweep-threads selects the host
 * worker pool replaying the sweep within a job (0 = hardware
 * concurrency, 1 = serial online); --delivery selects the
 * runtime->simulator reference delivery shape.  All change wall clock
 * only -- output bytes are identical.  --sweep selects the engine:
 * exact (default; the output above), model (reuse-distance analytical
 * predictions, same schema), or both (each point reported from both
 * engines plus the absolute error -- the model-validation artifact).
 *
 * Usage: fig3_working_sets [--procs 32] [--scale 1.0] [--app <name>]
 *                          [--n N] [--sweep exact|model|both]
 *                          [--sweep-threads N] [--jobs N]
 *                          [--delivery batched|direct] [--csv]
 */
#include <cstdio>
#include <memory>
#include <vector>

#include "harness/cli.h"
#include "harness/runner.h"
#include "harness/workingset.h"
#include "sim/grid.h"

using namespace splash;
using namespace splash::harness;

int
main(int argc, char** argv)
{
    Options opt(argc, argv);
    EngineOpts eng;
    if (!parseEngineOpts(opt, &eng))
        return eng.listRequested ? 0 : 2;
    int procs = static_cast<int>(opt.getI("procs", 32));
    int line = static_cast<int>(opt.getI("line", 64));
    bool csv = opt.has("csv");
    AppConfig cfg;
    cfg.scale = opt.getD("scale", opt.has("quick") ? 0.25 : 1.0);
    cfg.n = opt.getI("n", 0);
    std::string only = opt.getS("app", "");
    const sim::SweepMode mode = eng.sim.sweep;
    // Which engine the single-value outputs quote (Both's CSV quotes
    // the two side by side; its table shows the exact curves).
    const bool model = mode == sim::SweepMode::Model;

    std::vector<App*> apps;
    for (App* app : suite())
        if (only.empty() || findApp(only) == app)
            apps.push_back(app);

    std::vector<WorkingSetRun> runs(apps.size());
    Runner runner(eng.jobs);
    for (std::size_t i = 0; i < apps.size(); ++i) {
        runner.add(apps[i]->name(), appCostHint(*apps[i]), [&, i] {
            sim::SweepConfig sc;
            sc.nprocs = procs;
            sc.lineSize = line;
            runs[i] = runWorkingSets(*apps[i], procs, sc, cfg, eng.sim);
        });
    }
    runner.run();

    if (csv) {
        std::printf(mode == sim::SweepMode::Both
                        ? "app,size_bytes,assoc,miss_rate_exact,"
                          "miss_rate_model,abs_error\n"
                        : "app,size_bytes,assoc,miss_rate\n");
    } else if (mode == sim::SweepMode::Exact) {
        // Byte-identical to the historical exact-only output
        // (results/fig3_working_sets.txt).
        std::printf("Figure 3: miss rate (%%) vs cache size and "
                    "associativity; %d procs, %d B lines, scale %.3g\n",
                    procs, line, cfg.scale);
    } else {
        std::printf("Figure 3 (%s): miss rate (%%) vs cache size and "
                    "associativity; %d procs, %d B lines, scale %.3g\n",
                    sim::sweepModeName(mode), procs, line, cfg.scale);
    }
    for (std::size_t i = 0; i < apps.size(); ++i) {
        const WorkingSetRun& run = runs[i];
        if (csv) {
            for (std::uint64_t size : sim::fig3Sizes())
                for (int assoc : sim::fig3ReportAssocs()) {
                    if (mode == sim::SweepMode::Both) {
                        double ex = wsMissRate(run, size, assoc, false);
                        double md = wsMissRate(run, size, assoc, true);
                        std::printf(
                            "%s,%llu,%d,%.6f,%.6f,%.6f\n",
                            apps[i]->name().c_str(),
                            static_cast<unsigned long long>(size),
                            assoc, ex, md,
                            ex > md ? ex - md : md - ex);
                    } else {
                        std::printf(
                            "%s,%llu,%d,%.6f\n",
                            apps[i]->name().c_str(),
                            static_cast<unsigned long long>(size),
                            assoc, wsMissRate(run, size, assoc, model));
                    }
                }
            continue;
        }
        std::printf("\n%s%s\n", apps[i]->name().c_str(),
                    run.modelFromProfile ? " (from saved profile)" : "");
        Table t({"Size", "1-way", "2-way", "4-way", "full"});
        for (std::uint64_t size : sim::fig3Sizes()) {
            std::string label =
                size >= (1u << 20)
                    ? std::to_string(size >> 20) + "MB"
                    : std::to_string(size >> 10) + "KB";
            t.row({label,
                   fmt("%.3f", 100.0 * wsMissRate(run, size, 1, model)),
                   fmt("%.3f", 100.0 * wsMissRate(run, size, 2, model)),
                   fmt("%.3f", 100.0 * wsMissRate(run, size, 4, model)),
                   fmt("%.3f",
                       100.0 * wsMissRate(run, size, 0, model))});
        }
        t.print();
    }
    return 0;
}
