/**
 * @file
 * Figure 3: miss rate versus cache size and associativity.
 *
 * For every program, a single execution feeds the multi-configuration
 * cache sweep, which simulates all power-of-two cache sizes from 1 KB
 * to 1 MB at 1-, 2-, and 4-way set associativity plus fully
 * associative LRU, with 64-byte lines and the default processor count
 * (32).  Expect the paper's shape: sharp knees where the important
 * working sets (WS1/WS2 of Table 2) start to fit, near-zero miss
 * rates by 1 MB for all codes, a big 1-way -> 2-way improvement and a
 * small 2-way -> 4-way one.
 *
 * Engine: each application (execution + sweep) is one runner job
 * (--jobs overlaps applications); --sweep-threads selects the host
 * worker pool replaying the sweep within a job (0 = hardware
 * concurrency, 1 = serial online); --delivery selects the
 * runtime->simulator reference delivery shape.  All change wall clock
 * only -- output bytes are identical.
 *
 * Usage: fig3_working_sets [--procs 32] [--scale 1.0] [--app <name>]
 *                          [--n N] [--sweep-threads N] [--jobs N]
 *                          [--delivery batched|direct] [--csv]
 */
#include <cstdio>
#include <memory>
#include <vector>

#include "harness/cli.h"
#include "harness/runner.h"

using namespace splash;
using namespace splash::harness;

int
main(int argc, char** argv)
{
    Options opt(argc, argv);
    EngineOpts eng;
    if (!parseEngineOpts(opt, &eng))
        return eng.listRequested ? 0 : 2;
    int procs = static_cast<int>(opt.getI("procs", 32));
    int line = static_cast<int>(opt.getI("line", 64));
    bool csv = opt.has("csv");
    AppConfig cfg;
    cfg.scale = opt.getD("scale", opt.has("quick") ? 0.25 : 1.0);
    cfg.n = opt.getI("n", 0);
    std::string only = opt.getS("app", "");

    std::vector<App*> apps;
    for (App* app : suite())
        if (only.empty() || findApp(only) == app)
            apps.push_back(app);

    std::vector<std::unique_ptr<sim::CacheSweep>> sweeps(apps.size());
    Runner runner(eng.jobs);
    for (std::size_t i = 0; i < apps.size(); ++i) {
        runner.add(apps[i]->name(), appCostHint(*apps[i]), [&, i] {
            sim::SweepConfig sc;
            sc.nprocs = procs;
            sc.lineSize = line;
            sweeps[i] = std::make_unique<sim::CacheSweep>(sc);
            runWithSweep(*apps[i], procs, *sweeps[i], cfg, eng.sim);
        });
    }
    runner.run();

    if (csv)
        std::printf("app,size_bytes,assoc,miss_rate\n");
    else
        std::printf("Figure 3: miss rate (%%) vs cache size and "
                    "associativity; %d procs, %d B lines, scale %.3g\n",
                    procs, line, cfg.scale);
    sim::SweepConfig sc;  // default operating-point list
    for (std::size_t i = 0; i < apps.size(); ++i) {
        sim::CacheSweep& sweep = *sweeps[i];
        if (csv) {
            for (std::uint64_t size : sc.sizes)
                for (int assoc : {1, 2, 4, 0})
                    std::printf("%s,%llu,%d,%.6f\n",
                                apps[i]->name().c_str(),
                                static_cast<unsigned long long>(size),
                                assoc, sweep.missRate(size, assoc));
            continue;
        }
        std::printf("\n%s\n", apps[i]->name().c_str());
        Table t({"Size", "1-way", "2-way", "4-way", "full"});
        for (std::uint64_t size : sc.sizes) {
            std::string label =
                size >= (1u << 20)
                    ? std::to_string(size >> 20) + "MB"
                    : std::to_string(size >> 10) + "KB";
            t.row({label,
                   fmt("%.3f", 100.0 * sweep.missRate(size, 1)),
                   fmt("%.3f", 100.0 * sweep.missRate(size, 2)),
                   fmt("%.3f", 100.0 * sweep.missRate(size, 4)),
                   fmt("%.3f", 100.0 * sweep.missRate(size, 0))});
        }
        t.print();
    }
    return 0;
}
