/**
 * @file
 * Figure 2: synchronization characteristics for 32 processors --
 * minimum, maximum, and average fraction of execution time spent at
 * synchronization points (locks, barriers, and pauses) across
 * processors.
 *
 * The paper highlights Cholesky, LU, and Radiosity exceeding 50%
 * average synchronization time at their default data sets; expect the
 * same ordering here.
 *
 * Engine: each application is one runner job (--jobs overlaps
 * applications); output bytes are identical for every jobs value.
 *
 * Usage: fig2_synchronization [--procs 32] [--scale 1.0] [--jobs N]
 */
#include <algorithm>
#include <cstdio>
#include <vector>

#include "harness/cli.h"
#include "harness/runner.h"

using namespace splash;
using namespace splash::harness;

int
main(int argc, char** argv)
{
    Options opt(argc, argv);
    EngineOpts eng;
    if (!parseEngineOpts(opt, &eng))
        return eng.listRequested ? 0 : 2;
    int procs = static_cast<int>(opt.getI("procs", 32));
    AppConfig cfg;
    cfg.scale = opt.getD("scale", opt.has("quick") ? 0.25 : 1.0);
    std::string only = opt.getS("app", "");

    std::vector<App*> apps;
    for (App* app : suite())
        if (only.empty() || findApp(only) == app)
            apps.push_back(app);

    std::vector<RunStats> results(apps.size());
    Runner runner(eng.jobs);
    for (std::size_t i = 0; i < apps.size(); ++i) {
        runner.add(apps[i]->name(), appCostHint(*apps[i]), [&, i] {
            results[i] = runPram(*apps[i], procs, cfg, eng.sim);
        });
    }
    runner.run();

    std::printf("Figure 2: %% execution time in synchronization, "
                "%d processors, scale %.3g\n\n",
                procs, cfg.scale);
    Table t({"Code", "Min%", "Avg%", "Max%", "Barrier%", "Lock%",
             "Pause%"});
    for (std::size_t i = 0; i < apps.size(); ++i) {
        const RunStats& r = results[i];
        double mn = 100, mx = 0, sum = 0;
        double bsum = 0, lsum = 0, psum = 0, tsum = 0;
        for (const auto& ps : r.perProc) {
            double el = std::max<double>(1.0, double(ps.elapsed()));
            double frac = 100.0 * double(ps.syncWait()) / el;
            mn = std::min(mn, frac);
            mx = std::max(mx, frac);
            sum += frac;
            bsum += double(ps.barrierWait);
            lsum += double(ps.lockWait);
            psum += double(ps.pauseWait);
            tsum += el;
        }
        t.row({apps[i]->name(), fmt("%.1f", mn),
               fmt("%.1f", sum / procs), fmt("%.1f", mx),
               fmt("%.1f", 100.0 * bsum / tsum),
               fmt("%.1f", 100.0 * lsum / tsum),
               fmt("%.1f", 100.0 * psum / tsum)});
    }
    t.print();
    return 0;
}
