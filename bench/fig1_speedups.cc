/**
 * @file
 * Figure 1: PRAM speedups for the SPLASH-2 programs, 1..64 processors,
 * default data sets, perfect memory system.
 *
 * Deviations from ideal speedup are attributable to load imbalance,
 * serialization in critical sections, and redundant work -- exactly
 * the quantities the PRAM logical-time model captures.  Expect the
 * paper's shape: most codes near-ideal; LU, Cholesky, and Radiosity
 * limited by small problem sizes; Radix limited by its O(r log p)
 * prefix phase.
 *
 * Engine: each application's processor sweep is one runner job
 * (--jobs overlaps applications); output bytes are identical for
 * every jobs value.
 *
 * Usage: fig1_speedups [--scale 1.0] [--maxprocs 64] [--app <name>]
 *                      [--csv] [--jobs N]
 */
#include <cstdio>
#include <vector>

#include "harness/cli.h"
#include "harness/runner.h"

using namespace splash;
using namespace splash::harness;

int
main(int argc, char** argv)
{
    Options opt(argc, argv);
    EngineOpts eng;
    if (!parseEngineOpts(opt, &eng))
        return eng.listRequested ? 0 : 2;
    AppConfig cfg;
    cfg.scale = opt.getD("scale", opt.has("quick") ? 0.25 : 1.0);
    int maxp = static_cast<int>(
        opt.getI("maxprocs", opt.has("quick") ? 16 : 64));
    std::string only = opt.getS("app", "");
    bool csv = opt.has("csv");

    std::vector<int> procs;
    for (int p = 1; p <= maxp; p *= 2)
        procs.push_back(p);
    std::vector<App*> apps;
    for (App* app : suite())
        if (only.empty() || findApp(only) == app)
            apps.push_back(app);

    std::vector<std::vector<RunStats>> results(
        apps.size(), std::vector<RunStats>(procs.size()));
    Runner runner(eng.jobs);
    for (std::size_t i = 0; i < apps.size(); ++i) {
        runner.add(apps[i]->name(), appCostHint(*apps[i]), [&, i] {
            for (std::size_t j = 0; j < procs.size(); ++j)
                results[i][j] =
                    runPram(*apps[i], procs[j], cfg, eng.sim);
        });
    }
    runner.run();

    if (csv)
        std::printf("app,procs,speedup\n");
    else
        std::printf("Figure 1: PRAM speedups (T1 / Tp), scale %.3g\n\n",
                    cfg.scale);
    std::vector<std::string> hdr{"Code"};
    for (int p : procs)
        hdr.push_back("P=" + std::to_string(p));
    Table t(hdr);
    for (std::size_t i = 0; i < apps.size(); ++i) {
        std::vector<std::string> row{apps[i]->name()};
        double t1 = double(results[i][0].elapsed);
        for (std::size_t j = 0; j < procs.size(); ++j) {
            double s = t1 / double(results[i][j].elapsed);
            if (csv)
                std::printf("%s,%d,%.4f\n", apps[i]->name().c_str(),
                            procs[j], s);
            else
                row.push_back(fmt("%.2f", s));
        }
        if (!csv)
            t.row(row);
    }
    if (!csv) {
        t.print();
        std::printf("\n(ideal speedup at P equals P)\n");
    }
    return 0;
}
