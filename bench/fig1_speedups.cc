/**
 * @file
 * Figure 1: PRAM speedups for the SPLASH-2 programs, 1..64 processors,
 * default data sets, perfect memory system.
 *
 * Deviations from ideal speedup are attributable to load imbalance,
 * serialization in critical sections, and redundant work -- exactly
 * the quantities the PRAM logical-time model captures.  Expect the
 * paper's shape: most codes near-ideal; LU, Cholesky, and Radiosity
 * limited by small problem sizes; Radix limited by its O(r log p)
 * prefix phase.
 *
 * Usage: fig1_speedups [--scale 1.0] [--maxprocs 64] [--app <name>]
 */
#include <cstdio>
#include <vector>

#include "harness/experiment.h"
#include "harness/report.h"

using namespace splash;
using namespace splash::harness;

int
main(int argc, char** argv)
{
    Options opt(argc, argv);
    AppConfig cfg;
    cfg.scale = opt.getD("scale", opt.has("quick") ? 0.25 : 1.0);
    int maxp = static_cast<int>(
        opt.getI("maxprocs", opt.has("quick") ? 16 : 64));
    std::string only = opt.getS("app", "");

    std::vector<int> procs;
    for (int p = 1; p <= maxp; p *= 2)
        procs.push_back(p);

    bool csv = opt.has("csv");
    if (csv)
        std::printf("app,procs,speedup\n");
    else
        std::printf("Figure 1: PRAM speedups (T1 / Tp), scale %.3g\n\n",
                    cfg.scale);
    std::vector<std::string> hdr{"Code"};
    for (int p : procs)
        hdr.push_back("P=" + std::to_string(p));
    Table t(hdr);
    for (App* app : suite()) {
        if (!only.empty() && findApp(only) != app)
            continue;
        std::vector<std::string> row{app->name()};
        double t1 = 0;
        for (int p : procs) {
            RunStats r = runPram(*app, p, cfg);
            if (p == 1)
                t1 = double(r.elapsed);
            double s = t1 / double(r.elapsed);
            if (csv)
                std::printf("%s,%d,%.4f\n", app->name().c_str(), p, s);
            else
                row.push_back(fmt("%.2f", s));
        }
        if (!csv)
            t.row(row);
    }
    if (!csv) {
        t.print();
        std::printf("\n(ideal speedup at P equals P)\n");
    }
    return 0;
}
