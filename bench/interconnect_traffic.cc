/**
 * @file
 * Bus-vs-directory interconnect comparison (results/interconnect.csv).
 *
 * The paper's machine is a directory CC-NUMA, but the SPLASH-2 suite
 * was equally a workhorse of snoopy-bus studies.  This bench replays
 * the identical reference stream of each application under the full
 * protocol zoo on both interconnect organizations -- every row pair
 * differs ONLY in how coherence is discovered (full-map directory
 * consult vs broadcast snoop of the tag arrays), never in what the
 * program did:
 *
 *  - PRAM timing, miss decomposition, and upgrades are identical by
 *    construction between the members of a pair (the bus snoop
 *    observes silent E->M promotions directly, so even the
 *    true/false-sharing split cannot move).
 *  - Invalidation counts meet bus >= directory: replacement hints
 *    keep the directory's sharer vector exact, so an invalidating
 *    broadcast kills exactly the copies the directory would have
 *    targeted -- any slack would come from stale sharers only.
 *  - The traffic metric is organization-specific: bytes of
 *    request/data/hint packets for the directory, address+data-phase
 *    occupancy cycles of the shared wires for the bus.
 *
 * Engine: all 2 x kNumProtocols machine configurations are broadcast
 * replicas of ONE execution per application.  --csv prints rows with
 * six decimals so goldens can pin them exactly.
 *
 * Usage: interconnect_traffic [--procs 16] [--scale 0.5] [--quick]
 *                             [--app <name>] [--csv] [--jobs N]
 *                             [--replicas MODE]
 */
#include <cstdio>
#include <vector>

#include "harness/cli.h"
#include "harness/runner.h"

using namespace splash;
using namespace splash::harness;

int
main(int argc, char** argv)
{
    Options opt(argc, argv);
    EngineOpts eng;
    if (!parseEngineOpts(opt, &eng))
        return eng.listRequested ? 0 : 2;
    int procs = static_cast<int>(opt.getI("procs", 16));
    AppConfig cfg;
    cfg.scale = opt.getD("scale", opt.has("quick") ? 0.25 : 0.5);
    std::string only = opt.getS("app", "");
    bool csv = opt.has("csv");

    std::vector<App*> apps;
    for (App* app : suite())
        if (only.empty() || findApp(only) == app)
            apps.push_back(app);

    // Replica order: protocol-major, directory before bus, so
    // exps[2*k] and exps[2*k+1] form the comparison pair of zoo
    // protocol k.
    std::vector<MemExperiment> exps;
    for (int k = 0; k < sim::kNumProtocols; ++k) {
        for (int ic = 0; ic < sim::kNumInterconnects; ++ic) {
            MemExperiment e;
            e.protocol = static_cast<sim::ProtocolKind>(k);
            e.interconnect = static_cast<sim::Interconnect>(ic);
            exps.push_back(e);
        }
    }

    std::vector<std::vector<RunStats>> results(apps.size());
    Runner runner(eng.jobs);
    for (std::size_t i = 0; i < apps.size(); ++i) {
        runner.add(apps[i]->name(), appCostHint(*apps[i]), [&, i] {
            results[i] = runCharacterizations(*apps[i], procs, exps,
                                              cfg, eng.sim);
        });
    }
    runner.run();

    auto per1000 = [](const RunStats& r, std::uint64_t v) {
        double acc = double(r.mem.accesses());
        return acc > 0 ? 1000.0 * double(v) / acc : 0.0;
    };
    auto perRef = [](const RunStats& r, double v) {
        double acc = double(r.mem.accesses());
        return acc > 0 ? v / acc : 0.0;
    };

    if (csv) {
        std::printf("app,protocol,interconnect,miss_per_1000,"
                    "upgrade_per_1000,inval_per_1000,update_per_1000,"
                    "traffic_bytes_per_ref,bus_cycles_per_ref\n");
        for (std::size_t i = 0; i < apps.size(); ++i) {
            for (std::size_t j = 0; j < exps.size(); ++j) {
                const RunStats& r = results[i][j];
                bool bus = exps[j].interconnect ==
                           sim::Interconnect::Bus;
                std::printf(
                    "%s,%s,%s,%.6f,%.6f,%.6f,%.6f,%.6f,%.6f\n",
                    apps[i]->name().c_str(),
                    sim::protocolName(exps[j].protocol),
                    sim::interconnectName(exps[j].interconnect),
                    per1000(r, r.mem.totalMisses()),
                    per1000(r, r.mem.upgrades),
                    per1000(r, r.mem.invalidations),
                    per1000(r, r.mem.updates),
                    bus ? 0.0
                        : perRef(r, double(r.mem.totalTraffic())),
                    bus ? perRef(r, double(r.mem.busCycles()))
                        : 0.0);
            }
        }
        return 0;
    }

    std::printf("Interconnect comparison: one execution per "
                "application, replayed under every (protocol, "
                "interconnect) pair, %d procs (scale %.3g)\n\n",
                procs, cfg.scale);
    Table t({"Code", "Proto", "Interconn", "Miss/1000", "Inval/1000",
             "Upd/1000", "Bytes/ref", "BusCyc/ref"});
    for (std::size_t i = 0; i < apps.size(); ++i) {
        for (std::size_t j = 0; j < exps.size(); ++j) {
            const RunStats& r = results[i][j];
            bool bus =
                exps[j].interconnect == sim::Interconnect::Bus;
            t.row({j == 0 ? apps[i]->name() : std::string(),
                   sim::protocol(exps[j].protocol).display,
                   sim::interconnectName(exps[j].interconnect),
                   fmt("%.3f", per1000(r, r.mem.totalMisses())),
                   fmt("%.3f", per1000(r, r.mem.invalidations)),
                   fmt("%.3f", per1000(r, r.mem.updates)),
                   bus ? std::string("-")
                       : fmt("%.3f", perRef(r, double(
                                            r.mem.totalTraffic()))),
                   bus ? fmt("%.3f",
                             perRef(r, double(r.mem.busCycles())))
                       : std::string("-")});
        }
    }
    t.print();

    // The differential contract this bench (and the golden CSV)
    // rests on: the bus pair member may not disagree with the
    // directory member on anything the interconnect cannot touch.
    int bad = 0;
    for (std::size_t i = 0; i < apps.size(); ++i) {
        for (int k = 0; k < sim::kNumProtocols; ++k) {
            const RunStats& d = results[i][2 * k];
            const RunStats& b = results[i][2 * k + 1];
            if (d.mem.totalMisses() != b.mem.totalMisses() ||
                d.mem.upgrades != b.mem.upgrades ||
                d.mem.updates != b.mem.updates ||
                b.mem.invalidations < d.mem.invalidations) {
                std::fprintf(
                    stderr,
                    "DIFFERENTIAL VIOLATION: %s under %s\n",
                    apps[i]->name().c_str(),
                    sim::protocolName(
                        static_cast<sim::ProtocolKind>(k)));
                ++bad;
            }
        }
    }
    if (bad)
        return 1;
    std::printf("\ndifferential check: bus agrees with directory on "
                "misses/upgrades/updates for every (app, protocol) "
                "pair\n");
    return 0;
}
