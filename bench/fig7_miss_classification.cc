/**
 * @file
 * Figure 7 / Section 7: miss decomposition by type (cold, capacity,
 * true sharing, false sharing) as the cache line size varies -- the
 * spatial-locality and false-sharing characterization.
 *
 * With 1 MB caches, capacity misses are small; growing the line from
 * 8 B to 256 B should show cold and true-sharing miss *counts*
 * falling for codes with good spatial locality (prefetching effect)
 * while false sharing appears for codes with fine-grained interleaved
 * write sharing.
 *
 * Usage: fig7_miss_classification [--procs 32] [--scale 1.0]
 *                                 [--app <name>]
 */
#include <cstdio>

#include "harness/experiment.h"
#include "harness/report.h"

using namespace splash;
using namespace splash::harness;

int
main(int argc, char** argv)
{
    Options opt(argc, argv);
    int procs = static_cast<int>(
        opt.getI("procs", opt.has("quick") ? 8 : 32));
    AppConfig cfg;
    cfg.scale = opt.getD("scale", opt.has("quick") ? 0.25 : 1.0);
    std::string only = opt.getS("app", "");

    std::printf("Figure 7: misses per 1000 references by type vs line "
                "size; %d procs, 1 MB 4-way caches, scale %.3g\n",
                procs, cfg.scale);
    for (App* app : suite()) {
        if (!only.empty() && findApp(only) != app)
            continue;
        std::printf("\n%s\n", app->name().c_str());
        Table t({"Line", "Cold", "Capacity", "TrueShare", "FalseShare",
                 "MissRate%"});
        for (int line : {8, 16, 32, 64, 128, 256}) {
            sim::CacheConfig cache;
            cache.lineSize = line;
            RunStats r = runWithMemSystem(*app, procs, cache, cfg);
            double acc = double(r.mem.accesses());
            if (acc <= 0)
                acc = 1;
            auto k = [&](sim::MissType m) {
                return fmt("%.3f",
                           1000.0 *
                               double(r.mem.misses[int(m)]) / acc);
            };
            t.row({std::to_string(line) + "B",
                   k(sim::MissType::Cold),
                   k(sim::MissType::Capacity),
                   k(sim::MissType::TrueSharing),
                   k(sim::MissType::FalseSharing),
                   fmt("%.3f", 100.0 * r.mem.missRate())});
        }
        t.print();
    }
    return 0;
}
