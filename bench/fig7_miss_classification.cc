/**
 * @file
 * Figure 7 / Section 7: miss decomposition by type (cold, capacity,
 * true sharing, false sharing) as the cache line size varies -- the
 * spatial-locality and false-sharing characterization.
 *
 * With 1 MB caches, capacity misses are small; growing the line from
 * 8 B to 256 B should show cold and true-sharing miss *counts*
 * falling for codes with good spatial locality (prefetching effect)
 * while false sharing appears for codes with fine-grained interleaved
 * write sharing.
 *
 * Engine: the reference stream of an (app, P) pair is the same for
 * every line size, so each application executes ONCE and a broadcast
 * replay feeds all six line-size configurations (--replicas);
 * applications run concurrently across host cores (--jobs).  Output
 * bytes are identical in every mode.
 *
 * Usage: fig7_miss_classification [--procs 32] [--scale 1.0]
 *                                 [--app <name>] [--csv]
 *                                 [--jobs N] [--replicas MODE]
 */
#include <cstdio>
#include <vector>

#include "harness/cli.h"
#include "harness/runner.h"

using namespace splash;
using namespace splash::harness;

int
main(int argc, char** argv)
{
    Options opt(argc, argv);
    EngineOpts eng;
    if (!parseEngineOpts(opt, &eng))
        return eng.listRequested ? 0 : 2;
    int procs = static_cast<int>(
        opt.getI("procs", opt.has("quick") ? 8 : 32));
    AppConfig cfg;
    cfg.scale = opt.getD("scale", opt.has("quick") ? 0.25 : 1.0);
    std::string only = opt.getS("app", "");
    bool csv = opt.has("csv");

    const std::vector<int> lines = {8, 16, 32, 64, 128, 256};
    std::vector<App*> apps;
    for (App* app : suite())
        if (only.empty() || findApp(only) == app)
            apps.push_back(app);

    std::vector<std::vector<RunStats>> results(apps.size());
    Runner runner(eng.jobs);
    for (std::size_t i = 0; i < apps.size(); ++i) {
        runner.add(apps[i]->name(), appCostHint(*apps[i]), [&, i] {
            std::vector<MemExperiment> exps;
            for (int line : lines) {
                MemExperiment e;
                e.protocol = eng.sim.protocol;
                e.cache.lineSize = line;
                exps.push_back(e);
            }
            results[i] = runCharacterizations(*apps[i], procs, exps,
                                              cfg, eng.sim);
        });
    }
    runner.run();

    if (csv)
        std::printf("app,line,cold,capacity,true_share,false_share,"
                    "miss_rate\n");
    else
        std::printf("Figure 7: misses per 1000 references by type vs "
                    "line size; %d procs, 1 MB 4-way caches, scale "
                    "%.3g\n",
                    procs, cfg.scale);
    for (std::size_t i = 0; i < apps.size(); ++i) {
        if (!csv) {
            std::printf("\n%s\n", apps[i]->name().c_str());
            Table t({"Line", "Cold", "Capacity", "TrueShare",
                     "FalseShare", "MissRate%"});
            for (std::size_t j = 0; j < lines.size(); ++j) {
                const RunStats& r = results[i][j];
                double acc = double(r.mem.accesses());
                if (acc <= 0)
                    acc = 1;
                auto k = [&](sim::MissType m) {
                    return fmt("%.3f",
                               1000.0 * double(r.mem.misses[int(m)]) /
                                   acc);
                };
                t.row({std::to_string(lines[j]) + "B",
                       k(sim::MissType::Cold),
                       k(sim::MissType::Capacity),
                       k(sim::MissType::TrueSharing),
                       k(sim::MissType::FalseSharing),
                       fmt("%.3f", 100.0 * r.mem.missRate())});
            }
            t.print();
            continue;
        }
        for (std::size_t j = 0; j < lines.size(); ++j) {
            const RunStats& r = results[i][j];
            double acc = double(r.mem.accesses());
            if (acc <= 0)
                acc = 1;
            auto per1000 = [&](sim::MissType m) {
                return 1000.0 * double(r.mem.misses[int(m)]) / acc;
            };
            std::printf("%s,%d,%.6f,%.6f,%.6f,%.6f,%.6f\n",
                        apps[i]->name().c_str(), lines[j],
                        per1000(sim::MissType::Cold),
                        per1000(sim::MissType::Capacity),
                        per1000(sim::MissType::TrueSharing),
                        per1000(sim::MissType::FalseSharing),
                        100.0 * r.mem.missRate());
        }
    }
    return 0;
}
