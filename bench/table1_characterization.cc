/**
 * @file
 * Table 1: breakdown of instructions executed for the default problem
 * sizes on a 32-processor machine.
 *
 * Columns follow the paper: total instructions, total FLOPS (for the
 * floating-point codes), shared reads and writes, and synchronization
 * operations (barriers per processor; locks and pauses totaled across
 * processors).  Our instrumentation counts shared-data references
 * exactly and models non-memory instructions with per-site work
 * annotations, so "Total Instr" is an annotation-based estimate (see
 * DESIGN.md).
 *
 * Engine: each application is one runner job (--jobs overlaps
 * applications); output bytes are identical for every jobs value.
 *
 * Usage: table1_characterization [--procs 32] [--scale 1.0]
 *                                [--app <name>] [--jobs N]
 */
#include <cstdio>
#include <vector>

#include "harness/cli.h"
#include "harness/runner.h"

using namespace splash;
using namespace splash::harness;

int
main(int argc, char** argv)
{
    Options opt(argc, argv);
    EngineOpts eng;
    if (!parseEngineOpts(opt, &eng))
        return eng.listRequested ? 0 : 2;
    int procs = static_cast<int>(opt.getI("procs", 32));
    AppConfig cfg;
    cfg.scale = opt.getD("scale", opt.has("quick") ? 0.25 : 1.0);
    std::string only = opt.getS("app", "");

    std::vector<App*> apps;
    for (App* app : suite())
        if (only.empty() || findApp(only) == app)
            apps.push_back(app);

    std::vector<RunStats> results(apps.size());
    Runner runner(eng.jobs);
    for (std::size_t i = 0; i < apps.size(); ++i) {
        runner.add(apps[i]->name(), appCostHint(*apps[i]), [&, i] {
            results[i] = runPram(*apps[i], procs, cfg, eng.sim);
        });
    }
    runner.run();

    std::printf("Table 1: instruction breakdown, %d processors, "
                "scale %.3g\n\n",
                procs, cfg.scale);
    Table t({"Code", "Instr(M)", "FLOPS(M)", "ShRd(M)", "ShWr(M)",
             "Barriers/proc", "Locks", "Pauses", "valid"});
    for (std::size_t i = 0; i < apps.size(); ++i) {
        const RunStats& r = results[i];
        std::uint64_t locks = 0, pauses = 0, barriers = 0;
        for (const auto& ps : r.perProc) {
            locks += ps.locks;
            pauses += ps.pauses;
        }
        barriers = r.perProc.empty() ? 0 : r.perProc[0].barriers;
        t.row({apps[i]->name(),
               fmt("%.2f", r.exec.instructions() / 1e6),
               apps[i]->isFloatingPoint()
                   ? fmt("%.2f", r.exec.flops / 1e6)
                   : "-",
               fmt("%.2f", r.exec.reads / 1e6),
               fmt("%.2f", r.exec.writes / 1e6),
               fmtU(barriers), fmtU(locks), fmtU(pauses),
               r.valid ? "yes" : "NO"});
    }
    t.print();
    return 0;
}
