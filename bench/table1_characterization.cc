/**
 * @file
 * Table 1: breakdown of instructions executed for the default problem
 * sizes on a 32-processor machine.
 *
 * Columns follow the paper: total instructions, total FLOPS (for the
 * floating-point codes), shared reads and writes, and synchronization
 * operations (barriers per processor; locks and pauses totaled across
 * processors).  Our instrumentation counts shared-data references
 * exactly and models non-memory instructions with per-site work
 * annotations, so "Total Instr" is an annotation-based estimate (see
 * DESIGN.md).
 *
 * Usage: table1_characterization [--procs 32] [--scale 1.0]
 *                                [--app <name>]
 */
#include <cstdio>

#include "harness/experiment.h"
#include "harness/report.h"

using namespace splash;
using namespace splash::harness;

int
main(int argc, char** argv)
{
    Options opt(argc, argv);
    int procs = static_cast<int>(opt.getI("procs", 32));
    AppConfig cfg;
    cfg.scale = opt.getD("scale", opt.has("quick") ? 0.25 : 1.0);
    std::string only = opt.getS("app", "");

    std::printf("Table 1: instruction breakdown, %d processors, "
                "scale %.3g\n\n",
                procs, cfg.scale);
    Table t({"Code", "Instr(M)", "FLOPS(M)", "ShRd(M)", "ShWr(M)",
             "Barriers/proc", "Locks", "Pauses", "valid"});
    for (App* app : suite()) {
        if (!only.empty() && findApp(only) != app)
            continue;
        RunStats r = runPram(*app, procs, cfg);
        std::uint64_t locks = 0, pauses = 0, barriers = 0;
        for (const auto& ps : r.perProc) {
            locks += ps.locks;
            pauses += ps.pauses;
        }
        barriers = r.perProc.empty() ? 0 : r.perProc[0].barriers;
        t.row({app->name(),
               fmt("%.2f", r.exec.instructions() / 1e6),
               app->isFloatingPoint() ? fmt("%.2f", r.exec.flops / 1e6)
                                      : "-",
               fmt("%.2f", r.exec.reads / 1e6),
               fmt("%.2f", r.exec.writes / 1e6),
               fmtU(barriers), fmtU(locks), fmtU(pauses),
               r.valid ? "yes" : "NO"});
    }
    t.print();
    return 0;
}
