/**
 * @file
 * Figure 5: Ocean traffic at two problem sizes (bytes per FLOP, 1 MB
 * caches) -- the paper's 258x258 vs 514x514 comparison, sim-scaled to
 * 130x130 vs 258x258 (interior 128 vs 256).
 *
 * Expect sharing traffic per FLOP to *decrease* with the larger data
 * set while capacity-related (local) traffic increases -- the paper's
 * point that data-set size and processor count pull the traffic
 * components in opposite directions.
 *
 * Engine: the two grid sizes are independent executions scheduled by
 * the experiment runner (--jobs 2 overlaps them); output bytes are
 * identical in every mode.
 *
 * Usage: fig5_ocean_scaling [--procs 32] [--n1 128] [--n2 256]
 *                           [--csv] [--jobs N]
 */
#include <cstdio>
#include <vector>

#include "harness/cli.h"
#include "harness/runner.h"

using namespace splash;
using namespace splash::harness;

int
main(int argc, char** argv)
{
    Options opt(argc, argv);
    EngineOpts eng;
    if (!parseEngineOpts(opt, &eng))
        return eng.listRequested ? 0 : 2;
    int procs = static_cast<int>(
        opt.getI("procs", opt.has("quick") ? 8 : 32));
    long n1 = opt.getI("n1", opt.has("quick") ? 64 : 128);
    long n2 = opt.getI("n2", opt.has("quick") ? 128 : 256);
    bool csv = opt.has("csv");

    App* ocean = findApp("Ocean");
    sim::CacheConfig cache;  // 1 MB 4-way 64 B

    const std::vector<long> grids = {n1, n2};
    std::vector<RunStats> results(grids.size());
    Runner runner(eng.jobs);
    for (std::size_t i = 0; i < grids.size(); ++i) {
        runner.add("Ocean/n" + std::to_string(grids[i]),
                   double(grids[i]) * double(grids[i]), [&, i] {
                       AppConfig cfg;
                       cfg.n = grids[i];
                       results[i] = runWithMemSystem(*ocean, procs,
                                                     cache, cfg,
                                                     eng.sim);
                   });
    }
    runner.run();

    if (csv)
        std::printf("grid,procs,rem_shared,rem_cold,rem_cap,rem_wb,"
                    "rem_ovhd,local,true_shared,total\n");
    else
        std::printf("Figure 5: Ocean traffic (bytes/FLOP), %d procs, "
                    "1 MB caches, grids (%ld+2)^2 vs (%ld+2)^2\n\n",
                    procs, n1, n2);
    Table t({"Grid", "RemShared", "RemCold", "RemCap", "RemWB",
             "RemOvhd", "Local", "TrueShared", "Total"});
    for (std::size_t i = 0; i < grids.size(); ++i) {
        const RunStats& r = results[i];
        double den = double(r.exec.flops);
        if (csv) {
            std::printf("%ld,%d,%.6f,%.6f,%.6f,%.6f,%.6f,%.6f,%.6f,"
                        "%.6f\n",
                        grids[i] + 2, procs,
                        double(r.mem.remoteSharedData) / den,
                        double(r.mem.remoteColdData) / den,
                        double(r.mem.remoteCapacityData) / den,
                        double(r.mem.remoteWriteback) / den,
                        double(r.mem.remoteOverhead) / den,
                        double(r.mem.localData) / den,
                        double(r.mem.trueSharedData) / den,
                        double(r.mem.totalTraffic()) / den);
            continue;
        }
        auto b = [&](double v) { return fmt("%.4f", v / den); };
        t.row({std::to_string(grids[i] + 2) + "^2",
               b(double(r.mem.remoteSharedData)),
               b(double(r.mem.remoteColdData)),
               b(double(r.mem.remoteCapacityData)),
               b(double(r.mem.remoteWriteback)),
               b(double(r.mem.remoteOverhead)),
               b(double(r.mem.localData)),
               b(double(r.mem.trueSharedData)),
               b(double(r.mem.totalTraffic()))});
    }
    if (!csv)
        t.print();
    return 0;
}
