/**
 * @file
 * Figure 5: Ocean traffic at two problem sizes (bytes per FLOP, 1 MB
 * caches) -- the paper's 258x258 vs 514x514 comparison, sim-scaled to
 * 130x130 vs 258x258 (interior 128 vs 256).
 *
 * Expect sharing traffic per FLOP to *decrease* with the larger data
 * set while capacity-related (local) traffic increases -- the paper's
 * point that data-set size and processor count pull the traffic
 * components in opposite directions.
 *
 * Usage: fig5_ocean_scaling [--procs 32] [--n1 128] [--n2 256]
 */
#include <cstdio>

#include "harness/experiment.h"
#include "harness/report.h"

using namespace splash;
using namespace splash::harness;

int
main(int argc, char** argv)
{
    Options opt(argc, argv);
    int procs = static_cast<int>(
        opt.getI("procs", opt.has("quick") ? 8 : 32));
    long n1 = opt.getI("n1", opt.has("quick") ? 64 : 128);
    long n2 = opt.getI("n2", opt.has("quick") ? 128 : 256);

    App* ocean = findApp("Ocean");
    sim::CacheConfig cache;  // 1 MB 4-way 64 B

    std::printf("Figure 5: Ocean traffic (bytes/FLOP), %d procs, "
                "1 MB caches, grids (%ld+2)^2 vs (%ld+2)^2\n\n",
                procs, n1, n2);
    Table t({"Grid", "RemShared", "RemCold", "RemCap", "RemWB",
             "RemOvhd", "Local", "TrueShared", "Total"});
    for (long n : {n1, n2}) {
        AppConfig cfg;
        cfg.n = n;
        RunStats r = runWithMemSystem(*ocean, procs, cache, cfg);
        double den = double(r.exec.flops);
        auto b = [&](double v) { return fmt("%.4f", v / den); };
        t.row({std::to_string(n + 2) + "^2",
               b(double(r.mem.remoteSharedData)),
               b(double(r.mem.remoteColdData)),
               b(double(r.mem.remoteCapacityData)),
               b(double(r.mem.remoteWriteback)),
               b(double(r.mem.remoteOverhead)),
               b(double(r.mem.localData)),
               b(double(r.mem.trueSharedData)),
               b(double(r.mem.totalTraffic()))});
    }
    t.print();
    return 0;
}
