/**
 * @file
 * Micro-benchmarks (google-benchmark) of the simulation substrate
 * itself, plus the DESIGN.md ablation on scheduler quantum size.
 *
 *  - MemSystem reference throughput (hit-dominated and miss-heavy)
 *  - CacheSweep throughput (34 configurations per reference)
 *  - Scheduler context-switch cost and quantum sensitivity
 *  - Backend handoff cost (fiber vs thread): ping-pong benchmarks
 *    where two processors alternate via yield and via block/unblock,
 *    so items/sec is context switches per second.  scripts/
 *    bench_simcore.py turns these into BENCH_simcore.json.
 */
#include <benchmark/benchmark.h>

#include "rt/env.h"
#include "rt/scheduler.h"
#include "rt/shared.h"
#include "sim/memsys.h"
#include "sim/sweep.h"

using namespace splash;

static void
BM_MemSystemHits(benchmark::State& state)
{
    sim::MachineConfig mc;
    mc.nprocs = 4;
    sim::MemSystem mem(mc);
    std::uint64_t i = 0;
    for (auto _ : state) {
        mem.access(0, 0x10000 + (i % 64) * 8, 8, AccessType::Read);
        ++i;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MemSystemHits);

static void
BM_MemSystemSharingMisses(benchmark::State& state)
{
    sim::MachineConfig mc;
    mc.nprocs = 2;
    sim::MemSystem mem(mc);
    bool flip = false;
    for (auto _ : state) {
        mem.access(flip ? 0 : 1, 0x10000, 8, AccessType::Write);
        flip = !flip;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MemSystemSharingMisses);

static void
BM_CacheSweepAccess(benchmark::State& state)
{
    sim::SweepConfig sc;
    sc.nprocs = 4;
    sim::CacheSweep sweep(sc);
    std::uint64_t x = 12345;
    for (auto _ : state) {
        x = x * 6364136223846793005ull + 1442695040888963407ull;
        sweep.access(static_cast<ProcId>((x >> 62) & 3),
                     0x100000 + ((x >> 30) % 4096) * 64, 8,
                     AccessType::Read);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheSweepAccess);

/** Ablation: scheduler quantum size vs simulation throughput. */
static void
BM_SchedulerQuantum(benchmark::State& state)
{
    const int procs = 8;
    const std::uint64_t quantum = state.range(0);
    for (auto _ : state) {
        rt::Scheduler s(procs, quantum);
        s.run([&](ProcId p) {
            for (int i = 0; i < 2000; ++i) {
                s.advance(p, 1);
                s.event(p);
            }
        });
    }
    state.SetItemsProcessed(state.iterations() * procs * 2000);
}
BENCHMARK(BM_SchedulerQuantum)->Arg(10)->Arg(50)->Arg(250)->Arg(1000);

/** Pure handoff cost, block/unblock flavor: two processors take turns,
 *  each round is advance + unblock(partner) + block(self), i.e. two
 *  context switches per round.  items/sec == switches/sec. */
static void
pingPongBlockUnblock(benchmark::State& state, rt::BackendKind kind)
{
    const int rounds = 4096;
    for (auto _ : state) {
        // Quantum never expires: every switch is an explicit handoff.
        rt::Scheduler s(2, /*quantum=*/1u << 30, kind);
        s.run([&](ProcId p) {
            ProcId other = 1 - p;
            for (int i = 0; i < rounds; ++i) {
                s.advance(p, 1);
                s.unblock(other);
                s.block(p, "ping-pong");
            }
            s.unblock(other);  // release the partner's final block
        });
    }
    state.SetItemsProcessed(state.iterations() * rounds * 2);
}

/** Pure handoff cost, yield flavor: equal clock rates make the
 *  smallest-time-first policy alternate the two processors, so each
 *  yield is one context switch. */
static void
pingPongYield(benchmark::State& state, rt::BackendKind kind)
{
    const int rounds = 4096;
    for (auto _ : state) {
        rt::Scheduler s(2, /*quantum=*/1u << 30, kind);
        s.run([&](ProcId p) {
            for (int i = 0; i < rounds; ++i) {
                s.advance(p, 1);
                s.yield(p);
            }
        });
    }
    state.SetItemsProcessed(state.iterations() * rounds * 2);
}

static void
BM_SchedulerPingPong_Fiber(benchmark::State& state)
{
    pingPongBlockUnblock(state, rt::BackendKind::Fiber);
}
BENCHMARK(BM_SchedulerPingPong_Fiber)->UseRealTime();

static void
BM_SchedulerPingPong_Thread(benchmark::State& state)
{
    pingPongBlockUnblock(state, rt::BackendKind::Thread);
}
BENCHMARK(BM_SchedulerPingPong_Thread)->UseRealTime();

static void
BM_SchedulerYield_Fiber(benchmark::State& state)
{
    pingPongYield(state, rt::BackendKind::Fiber);
}
BENCHMARK(BM_SchedulerYield_Fiber)->UseRealTime();

static void
BM_SchedulerYield_Thread(benchmark::State& state)
{
    pingPongYield(state, rt::BackendKind::Thread);
}
BENCHMARK(BM_SchedulerYield_Thread)->UseRealTime();

BENCHMARK_MAIN();
