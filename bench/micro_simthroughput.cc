/**
 * @file
 * Micro-benchmarks (google-benchmark) of the simulation substrate
 * itself, plus the DESIGN.md ablation on scheduler quantum size.
 *
 *  - MemSystem reference throughput: hit fast path (BM_MemSysHit),
 *    miss/coherence slow path (BM_MemSysMiss, BM_MemSysSharingMiss),
 *    each also captured per coherence protocol (BM_MemSysHitProto/msi,
 *    BM_MemSysMissProto/dragon, ...) to show the table-driven dispatch
 *    costs the same across the zoo
 *  - Working-set sweep throughput: serial online (BM_SweepAccess) and
 *    the batched capture/replay pipeline (BM_SweepBatched)
 *  - Reference delivery shape under a full Env (BM_Delivery)
 *  - Scheduler context-switch cost and quantum sensitivity
 *  - Backend handoff cost (fiber vs thread): ping-pong benchmarks
 *    where two processors alternate via yield and via block/unblock,
 *    so items/sec is context switches per second.  scripts/
 *    bench_simcore.py turns these into BENCH_simcore.json and
 *    scripts/bench_memsys.py turns the memory-path ones into
 *    BENCH_memsys.json.
 */
#include <benchmark/benchmark.h>

#include <vector>

#include "rt/env.h"
#include "rt/scheduler.h"
#include "rt/shared.h"
#include "sim/memsys.h"
#include "sim/replay.h"
#include "sim/sweep.h"

using namespace splash;

/** Hit-dominated reference stream: after the 64 cold fills every
 *  access takes the silent-hit fast path (tag probe + mask test +
 *  counters, no directory consult).  Mixes reads (M-state hits) and
 *  writes (silent stores) 3:1 like typical SPLASH-2 codes. */
static void
BM_MemSysHitProto(benchmark::State& state, sim::ProtocolKind proto)
{
    sim::MachineConfig mc;
    mc.nprocs = 4;
    mc.protocol = proto;
    sim::MemSystem mem(mc);
    std::uint64_t i = 0;
    for (auto _ : state) {
        Addr a = 0x10000 + (i % 64) * 8;
        mem.access(0, a, 8,
                   (i & 3) == 3 ? AccessType::Write : AccessType::Read);
        ++i;
    }
    state.SetItemsProcessed(state.iterations());
}

/** The headline number (MESI, the paper default): must not regress
 *  against the hand-inlined hit path the protocol table replaced. */
static void
BM_MemSysHit(benchmark::State& state)
{
    BM_MemSysHitProto(state, sim::ProtocolKind::MESI);
}
BENCHMARK(BM_MemSysHit);
BENCHMARK_CAPTURE(BM_MemSysHitProto, msi, sim::ProtocolKind::MSI);
BENCHMARK_CAPTURE(BM_MemSysHitProto, moesi, sim::ProtocolKind::MOESI);
BENCHMARK_CAPTURE(BM_MemSysHitProto, dragon, sim::ProtocolKind::Dragon);

/** Miss-dominated stream: a cyclic scan over 2x the cache capacity in
 *  a direct-mapped cache, so every reference takes the slow path
 *  (classification, directory, table-driven transition, victim
 *  writeback accounting). */
static void
BM_MemSysMissProto(benchmark::State& state, sim::ProtocolKind proto)
{
    sim::MachineConfig mc;
    mc.nprocs = 4;
    mc.cache.size = 1u << 16;
    mc.cache.assoc = 1;
    mc.protocol = proto;
    sim::MemSystem mem(mc);
    const std::uint64_t kLines = (mc.cache.size / 64) * 2;
    std::uint64_t i = 0;
    for (auto _ : state) {
        mem.access(0, 0x100000 + (i % kLines) * 64, 8, AccessType::Read);
        ++i;
    }
    state.SetItemsProcessed(state.iterations());
}

static void
BM_MemSysMiss(benchmark::State& state)
{
    BM_MemSysMissProto(state, sim::ProtocolKind::MESI);
}
BENCHMARK(BM_MemSysMiss);
BENCHMARK_CAPTURE(BM_MemSysMissProto, msi, sim::ProtocolKind::MSI);
BENCHMARK_CAPTURE(BM_MemSysMissProto, moesi, sim::ProtocolKind::MOESI);
BENCHMARK_CAPTURE(BM_MemSysMissProto, dragon, sim::ProtocolKind::Dragon);

static void
BM_MemSysSharingMiss(benchmark::State& state)
{
    sim::MachineConfig mc;
    mc.nprocs = 2;
    sim::MemSystem mem(mc);
    bool flip = false;
    for (auto _ : state) {
        mem.access(flip ? 0 : 1, 0x10000, 8, AccessType::Write);
        flip = !flip;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MemSysSharingMiss);

namespace {

/** Pseudo-random 4-proc reference mix shared by the sweep benches. */
inline void
sweepStep(sim::RefSink& sink, std::uint64_t& x)
{
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    sim::AccessRec r;
    r.addr = 0x100000 + ((x >> 30) % 4096) * 64;
    r.size = 8;
    r.proc = static_cast<std::int16_t>((x >> 62) & 3);
    r.type = ((x >> 11) & 3) == 0 ? AccessType::Write : AccessType::Read;
    sink.access(r);
}

/** CacheSweep is not itself a RefSink; adapt it for sweepStep. */
struct SerialSweepSink final : sim::RefSink
{
    explicit SerialSweepSink(sim::CacheSweep& s) : sweep(s) {}
    void
    access(const sim::AccessRec& r) override
    {
        sweep.access(r.proc, r.addr, r.size, r.type);
    }
    void resetStats() override { sweep.resetStats(); }
    sim::CacheSweep& sweep;
};

} // namespace

/** Serial online sweep: all 34 configurations updated per reference. */
static void
BM_SweepAccess(benchmark::State& state)
{
    sim::SweepConfig sc;
    sc.nprocs = 4;
    sim::CacheSweep sweep(sc);
    SerialSweepSink sink(sweep);
    std::uint64_t x = 12345;
    for (auto _ : state)
        sweepStep(sink, x);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SweepAccess);

/** Capture/replay pipeline at a given worker count (0 = hardware
 *  concurrency); cost includes capture, annotation, and replay. */
static void
BM_SweepBatched(benchmark::State& state)
{
    sim::SweepConfig sc;
    sc.nprocs = 4;
    sim::CacheSweep sweep(sc);
    sim::ParallelSweep ps(sweep, static_cast<int>(state.range(0)));
    std::uint64_t x = 12345;
    for (auto _ : state)
        sweepStep(ps, x);
    ps.flush();
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SweepBatched)->Arg(1)->Arg(2)->Arg(0)->UseRealTime();

/** Broadcast replay throughput: the sweepStep reference mix fanned
 *  out to N MemSystem replicas on consumer threads (N > 0) or
 *  replayed inline on the producer (N == 0 runs one replica inline).
 *  items/sec is producer-side references absorbed, so it shows how
 *  back-pressure scales with the replica count. */
static void
BM_Broadcast(benchmark::State& state)
{
    const int replicas = static_cast<int>(state.range(0));
    std::vector<sim::ReplicaSpec> specs(
        static_cast<std::size_t>(replicas ? replicas : 1));
    for (std::size_t i = 0; i < specs.size(); ++i) {
        specs[i].machine.nprocs = 4;
        specs[i].machine.cache.lineSize = 8 << (i % 6);
    }
    sim::BroadcastReplay replay(specs, /*threaded=*/replicas > 0);
    std::uint64_t x = 12345;
    for (auto _ : state)
        sweepStep(replay, x);
    replay.flush();
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Broadcast)->Arg(0)->Arg(1)->Arg(2)->Arg(6)->UseRealTime();

/** End-to-end reference delivery under a full Env + MemSystem: the
 *  instrumented read hook, clock bump, scheduling, and sink delivery.
 *  Compares the call-per-access shape against the batched ring. */
static void
deliveryLoop(benchmark::State& state, rt::Delivery d)
{
    const int procs = 4;
    const int refsPerProc = 8192;
    for (auto _ : state) {
        rt::Env env({rt::Mode::Sim, procs, /*quantum=*/250,
                     rt::BackendKind::Fiber, d});
        sim::MachineConfig mc;
        mc.nprocs = procs;
        sim::MemSystem mem(mc);
        env.attachMemSystem(&mem);
        env.run([&](rt::ProcCtx& ctx) {
            Addr base = 0x100000 + Addr(ctx.id()) * 65536;
            for (int i = 0; i < refsPerProc; ++i)
                ctx.read(reinterpret_cast<const void*>(
                             base + Addr(i % 512) * 8),
                         8);
        });
    }
    state.SetItemsProcessed(state.iterations() * procs * refsPerProc);
}

static void
BM_Delivery_Direct(benchmark::State& state)
{
    deliveryLoop(state, rt::Delivery::Direct);
}
BENCHMARK(BM_Delivery_Direct);

static void
BM_Delivery_Batched(benchmark::State& state)
{
    deliveryLoop(state, rt::Delivery::Batched);
}
BENCHMARK(BM_Delivery_Batched);

/** Ablation: scheduler quantum size vs simulation throughput. */
static void
BM_SchedulerQuantum(benchmark::State& state)
{
    const int procs = 8;
    const std::uint64_t quantum = state.range(0);
    for (auto _ : state) {
        rt::Scheduler s(procs, quantum);
        s.run([&](ProcId p) {
            for (int i = 0; i < 2000; ++i) {
                s.advance(p, 1);
                s.event(p);
            }
        });
    }
    state.SetItemsProcessed(state.iterations() * procs * 2000);
}
BENCHMARK(BM_SchedulerQuantum)->Arg(10)->Arg(50)->Arg(250)->Arg(1000);

/** Pure handoff cost, block/unblock flavor: two processors take turns,
 *  each round is advance + unblock(partner) + block(self), i.e. two
 *  context switches per round.  items/sec == switches/sec. */
static void
pingPongBlockUnblock(benchmark::State& state, rt::BackendKind kind)
{
    const int rounds = 4096;
    for (auto _ : state) {
        // Quantum never expires: every switch is an explicit handoff.
        rt::Scheduler s(2, /*quantum=*/1u << 30, kind);
        s.run([&](ProcId p) {
            ProcId other = 1 - p;
            for (int i = 0; i < rounds; ++i) {
                s.advance(p, 1);
                s.unblock(other);
                s.block(p, "ping-pong");
            }
            s.unblock(other);  // release the partner's final block
        });
    }
    state.SetItemsProcessed(state.iterations() * rounds * 2);
}

/** Pure handoff cost, yield flavor: equal clock rates make the
 *  smallest-time-first policy alternate the two processors, so each
 *  yield is one context switch. */
static void
pingPongYield(benchmark::State& state, rt::BackendKind kind)
{
    const int rounds = 4096;
    for (auto _ : state) {
        rt::Scheduler s(2, /*quantum=*/1u << 30, kind);
        s.run([&](ProcId p) {
            for (int i = 0; i < rounds; ++i) {
                s.advance(p, 1);
                s.yield(p);
            }
        });
    }
    state.SetItemsProcessed(state.iterations() * rounds * 2);
}

static void
BM_SchedulerPingPong_Fiber(benchmark::State& state)
{
    pingPongBlockUnblock(state, rt::BackendKind::Fiber);
}
BENCHMARK(BM_SchedulerPingPong_Fiber)->UseRealTime();

static void
BM_SchedulerPingPong_Thread(benchmark::State& state)
{
    pingPongBlockUnblock(state, rt::BackendKind::Thread);
}
BENCHMARK(BM_SchedulerPingPong_Thread)->UseRealTime();

static void
BM_SchedulerYield_Fiber(benchmark::State& state)
{
    pingPongYield(state, rt::BackendKind::Fiber);
}
BENCHMARK(BM_SchedulerYield_Fiber)->UseRealTime();

static void
BM_SchedulerYield_Thread(benchmark::State& state)
{
    pingPongYield(state, rt::BackendKind::Thread);
}
BENCHMARK(BM_SchedulerYield_Thread)->UseRealTime();

BENCHMARK_MAIN();
