/**
 * @file
 * Ablation benches for two design points the paper's machine model
 * takes as given:
 *
 *  1. Replacement hints -- the paper assumes processors notify the
 *     home when they drop shared copies so sharer lists stay exact.
 *     Disabling them trades hint packets for spurious invalidations.
 *  2. Data placement -- each program distributes its data per the
 *     paper's guidelines (blocks at owners, subgrids local, bands
 *     local). Ignoring placement and interleaving all lines across
 *     nodes shows how much of the "local data" traffic placement buys.
 *
 * Engine: all four configurations (small-cache hints on/off, 1 MB
 * placed/interleaved) are broadcast replicas of ONE execution per
 * application -- the ablation differences come from the identical
 * reference stream by construction.  Applications are scheduled
 * across host cores (--jobs); output bytes are identical in every
 * mode.
 *
 * Usage: ablation_protocol [--procs 16] [--scale 0.5] [--app <name>]
 *                          [--jobs N] [--replicas MODE]
 */
#include <cstdio>
#include <vector>

#include "harness/cli.h"
#include "harness/runner.h"

using namespace splash;
using namespace splash::harness;

int
main(int argc, char** argv)
{
    Options opt(argc, argv);
    EngineOpts eng;
    if (!parseEngineOpts(opt, &eng))
        return 2;
    int procs = static_cast<int>(opt.getI("procs", 16));
    AppConfig cfg;
    cfg.scale = opt.getD("scale", opt.has("quick") ? 0.25 : 0.5);
    std::string only = opt.getS("app", "");

    std::uint64_t small = std::uint64_t(opt.getI("cachekb", 16)) << 10;
    std::vector<App*> apps;
    for (App* app : suite())
        if (only.empty() || findApp(only) == app)
            apps.push_back(app);

    // Replica order: [0] small+hints, [1] small no hints,
    // [2] 1 MB placed, [3] 1 MB interleaved.
    std::vector<MemExperiment> exps(4);
    exps[0].cache.size = small;
    exps[1].cache.size = small;
    exps[1].hints = false;
    exps[3].placed = false;

    std::vector<std::vector<RunStats>> results(apps.size());
    Runner runner(eng.jobs);
    for (std::size_t i = 0; i < apps.size(); ++i) {
        runner.add(apps[i]->name(), appCostHint(*apps[i]), [&, i] {
            results[i] = runCharacterizations(*apps[i], procs, exps,
                                              cfg, eng.sim);
        });
    }
    runner.run();

    std::printf("Ablation 1: replacement hints with %llu KB caches "
                "(remote overhead bytes per reference), %d procs\n\n",
                static_cast<unsigned long long>(small >> 10), procs);
    Table t1({"Code", "Ovhd/ref (hints)", "Ovhd/ref (none)", "ratio"});
    for (std::size_t i = 0; i < apps.size(); ++i) {
        const RunStats& with = results[i][0];
        const RunStats& without = results[i][1];
        double a = double(with.mem.remoteOverhead) /
                   double(with.mem.accesses());
        double b = double(without.mem.remoteOverhead) /
                   double(without.mem.accesses());
        t1.row({apps[i]->name(), fmt("%.4f", a), fmt("%.4f", b),
                fmt("%.2f", a > 0 ? b / a : 0.0)});
    }
    t1.print();

    std::printf("\nAblation 2: data placement (fraction of data "
                "traffic that is local), %d procs\n\n",
                procs);
    Table t2({"Code", "Local% (placed)", "Local% (interleaved)",
              "RemoteData/ref placed", "interleaved"});
    for (std::size_t i = 0; i < apps.size(); ++i) {
        const RunStats& placed = results[i][2];
        const RunStats& inter = results[i][3];
        auto localPct = [](const RunStats& r) {
            double data = double(r.mem.localData + r.mem.remoteData());
            return data > 0 ? 100.0 * double(r.mem.localData) / data
                            : 0.0;
        };
        t2.row({apps[i]->name(), fmt("%.1f", localPct(placed)),
                fmt("%.1f", localPct(inter)),
                fmt("%.3f", double(placed.mem.remoteData()) /
                                double(placed.mem.accesses())),
                fmt("%.3f", double(inter.mem.remoteData()) /
                                double(inter.mem.accesses()))});
    }
    t2.print();
    return 0;
}
