/**
 * @file
 * Ablation benches for two design points the paper's machine model
 * takes as given:
 *
 *  1. Replacement hints -- the paper assumes processors notify the
 *     home when they drop shared copies so sharer lists stay exact.
 *     Disabling them trades hint packets for spurious invalidations.
 *  2. Data placement -- each program distributes its data per the
 *     paper's guidelines (blocks at owners, subgrids local, bands
 *     local). Ignoring placement and interleaving all lines across
 *     nodes shows how much of the "local data" traffic placement buys.
 *
 * Usage: ablation_protocol [--procs 16] [--scale 0.5] [--app <name>]
 */
#include <cstdio>

#include "harness/experiment.h"
#include "harness/report.h"

using namespace splash;
using namespace splash::harness;

namespace {

RunStats
runConfigured(App& app, int nprocs, const AppConfig& cfg, bool hints,
              bool placement, std::uint64_t cache_bytes)
{
    rt::Env env({rt::Mode::Sim, nprocs});
    sim::MachineConfig mc;
    mc.nprocs = nprocs;
    mc.cache.size = cache_bytes;
    mc.replacementHints = hints;
    sim::InterleavedHome interleaved(nprocs, mc.cache.lineSize);
    sim::MemSystem mem(mc, placement
                               ? static_cast<sim::HomeResolver*>(
                                     &env.heap())
                               : &interleaved);
    env.attachMemSystem(&mem);
    RunStats out;
    out.valid = app.run(env, cfg).valid;
    for (int p = 0; p < nprocs; ++p)
        out.exec += env.stats(p);
    out.mem = mem.total();
    out.elapsed = env.elapsed();
    return out;
}

} // namespace

int
main(int argc, char** argv)
{
    Options opt(argc, argv);
    int procs = static_cast<int>(opt.getI("procs", 16));
    AppConfig cfg;
    cfg.scale = opt.getD("scale", opt.has("quick") ? 0.25 : 0.5);
    std::string only = opt.getS("app", "");

    std::uint64_t small = std::uint64_t(opt.getI("cachekb", 16)) << 10;
    std::printf("Ablation 1: replacement hints with %llu KB caches "
                "(remote overhead bytes per reference), %d procs\n\n",
                static_cast<unsigned long long>(small >> 10), procs);
    Table t1({"Code", "Ovhd/ref (hints)", "Ovhd/ref (none)", "ratio"});
    for (App* app : suite()) {
        if (!only.empty() && findApp(only) != app)
            continue;
        RunStats with = runConfigured(*app, procs, cfg, true, true,
                                      small);
        RunStats without = runConfigured(*app, procs, cfg, false, true,
                                         small);
        double a = double(with.mem.remoteOverhead) /
                   double(with.mem.accesses());
        double b = double(without.mem.remoteOverhead) /
                   double(without.mem.accesses());
        t1.row({app->name(), fmt("%.4f", a), fmt("%.4f", b),
                fmt("%.2f", a > 0 ? b / a : 0.0)});
    }
    t1.print();

    std::printf("\nAblation 2: data placement (fraction of data "
                "traffic that is local), %d procs\n\n",
                procs);
    Table t2({"Code", "Local% (placed)", "Local% (interleaved)",
              "RemoteData/ref placed", "interleaved"});
    for (App* app : suite()) {
        if (!only.empty() && findApp(only) != app)
            continue;
        RunStats placed =
            runConfigured(*app, procs, cfg, true, true, 1u << 20);
        RunStats inter =
            runConfigured(*app, procs, cfg, true, false, 1u << 20);
        auto localPct = [](const RunStats& r) {
            double data = double(r.mem.localData + r.mem.remoteData());
            return data > 0 ? 100.0 * double(r.mem.localData) / data
                            : 0.0;
        };
        t2.row({app->name(), fmt("%.1f", localPct(placed)),
                fmt("%.1f", localPct(inter)),
                fmt("%.3f", double(placed.mem.remoteData()) /
                                double(placed.mem.accesses())),
                fmt("%.3f", double(inter.mem.remoteData()) /
                                double(inter.mem.accesses()))});
    }
    t2.print();
    return 0;
}
