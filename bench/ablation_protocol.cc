/**
 * @file
 * Ablation benches for two design points the paper's machine model
 * takes as given:
 *
 *  1. Replacement hints -- the paper assumes processors notify the
 *     home when they drop shared copies so sharer lists stay exact.
 *     Disabling them trades hint packets for spurious invalidations.
 *  2. Data placement -- each program distributes its data per the
 *     paper's guidelines (blocks at owners, subgrids local, bands
 *     local). Ignoring placement and interleaving all lines across
 *     nodes shows how much of the "local data" traffic placement buys.
 *
 *  3. Coherence protocol -- the paper's machine keeps caches coherent
 *     with an invalidation-based protocol.  Replaying the same stream
 *     under the whole protocol zoo (MSI, MESI, MOESI, update-based
 *     Dragon) separates what the program does from what the protocol
 *     makes of it: upgrades MSI pays for MESI's silent E->M, the
 *     sharing writebacks MOESI's Owned state avoids, the
 *     invalidations Dragon never sends.
 *
 * Engine: all configurations (small-cache hints on/off, 1 MB
 * placed/interleaved, 1 MB under each protocol) are broadcast
 * replicas of ONE execution per application -- the ablation
 * differences come from the identical reference stream by
 * construction.  Applications are scheduled across host cores
 * (--jobs); output bytes are identical in every mode.  --csv prints
 * the protocol-zoo rows as CSV (results/ablation.csv).
 *
 * Usage: ablation_protocol [--procs 16] [--scale 0.5] [--app <name>]
 *                          [--csv] [--jobs N] [--replicas MODE]
 */
#include <cstdio>
#include <vector>

#include "harness/cli.h"
#include "harness/runner.h"

using namespace splash;
using namespace splash::harness;

int
main(int argc, char** argv)
{
    Options opt(argc, argv);
    EngineOpts eng;
    if (!parseEngineOpts(opt, &eng))
        return eng.listRequested ? 0 : 2;
    int procs = static_cast<int>(opt.getI("procs", 16));
    AppConfig cfg;
    cfg.scale = opt.getD("scale", opt.has("quick") ? 0.25 : 0.5);
    std::string only = opt.getS("app", "");
    bool csv = opt.has("csv");

    std::uint64_t small = std::uint64_t(opt.getI("cachekb", 16)) << 10;
    std::vector<App*> apps;
    for (App* app : suite())
        if (only.empty() || findApp(only) == app)
            apps.push_back(app);

    // Replica order: [0] small+hints, [1] small no hints,
    // [2] 1 MB placed (under --protocol, default MESI),
    // [3] 1 MB interleaved, [4..6] 1 MB placed under the three
    // protocols other than [2]'s -- the zoo reuses [2] for the base
    // protocol rather than replaying it twice.
    std::vector<MemExperiment> exps(4);
    exps[0].cache.size = small;
    exps[0].protocol = eng.sim.protocol;
    exps[1].cache.size = small;
    exps[1].hints = false;
    exps[1].protocol = eng.sim.protocol;
    exps[2].protocol = eng.sim.protocol;
    exps[3].placed = false;
    exps[3].protocol = eng.sim.protocol;
    std::vector<std::size_t> zooIdx(sim::kNumProtocols);
    for (int k = 0; k < sim::kNumProtocols; ++k) {
        auto proto = static_cast<sim::ProtocolKind>(k);
        if (proto == eng.sim.protocol) {
            zooIdx[k] = 2;
            continue;
        }
        MemExperiment e;
        e.protocol = proto;
        zooIdx[k] = exps.size();
        exps.push_back(e);
    }

    std::vector<std::vector<RunStats>> results(apps.size());
    Runner runner(eng.jobs);
    for (std::size_t i = 0; i < apps.size(); ++i) {
        runner.add(apps[i]->name(), appCostHint(*apps[i]), [&, i] {
            results[i] = runCharacterizations(*apps[i], procs, exps,
                                              cfg, eng.sim);
        });
    }
    runner.run();

    // Protocol-zoo metrics, all per 1000 references of the identical
    // stream; six decimals so goldens can pin rows exactly.
    auto per1000 = [](const RunStats& r, std::uint64_t v) {
        double acc = double(r.mem.accesses());
        return acc > 0 ? 1000.0 * double(v) / acc : 0.0;
    };
    auto perRef = [](const RunStats& r, double v) {
        double acc = double(r.mem.accesses());
        return acc > 0 ? v / acc : 0.0;
    };

    if (csv) {
        std::printf("app,protocol,miss_per_1000,upgrade_per_1000,"
                    "inval_per_1000,update_per_1000,remote_per_ref,"
                    "traffic_per_ref\n");
        for (std::size_t i = 0; i < apps.size(); ++i) {
            for (int k = 0; k < sim::kNumProtocols; ++k) {
                const RunStats& r = results[i][zooIdx[k]];
                std::printf(
                    "%s,%s,%.6f,%.6f,%.6f,%.6f,%.6f,%.6f\n",
                    apps[i]->name().c_str(),
                    sim::protocolName(
                        static_cast<sim::ProtocolKind>(k)),
                    per1000(r, r.mem.totalMisses()),
                    per1000(r, r.mem.upgrades),
                    per1000(r, r.mem.invalidations),
                    per1000(r, r.mem.updates),
                    perRef(r, double(r.mem.remoteData())),
                    perRef(r, double(r.mem.totalTraffic())));
            }
        }
        return 0;
    }

    std::printf("Ablation 1: replacement hints with %llu KB caches "
                "(remote overhead bytes per reference), %d procs\n\n",
                static_cast<unsigned long long>(small >> 10), procs);
    Table t1({"Code", "Ovhd/ref (hints)", "Ovhd/ref (none)", "ratio"});
    for (std::size_t i = 0; i < apps.size(); ++i) {
        const RunStats& with = results[i][0];
        const RunStats& without = results[i][1];
        double a = double(with.mem.remoteOverhead) /
                   double(with.mem.accesses());
        double b = double(without.mem.remoteOverhead) /
                   double(without.mem.accesses());
        t1.row({apps[i]->name(), fmt("%.4f", a), fmt("%.4f", b),
                fmt("%.2f", a > 0 ? b / a : 0.0)});
    }
    t1.print();

    std::printf("\nAblation 2: data placement (fraction of data "
                "traffic that is local), %d procs\n\n",
                procs);
    Table t2({"Code", "Local% (placed)", "Local% (interleaved)",
              "RemoteData/ref placed", "interleaved"});
    for (std::size_t i = 0; i < apps.size(); ++i) {
        const RunStats& placed = results[i][2];
        const RunStats& inter = results[i][3];
        auto localPct = [](const RunStats& r) {
            double data = double(r.mem.localData + r.mem.remoteData());
            return data > 0 ? 100.0 * double(r.mem.localData) / data
                            : 0.0;
        };
        t2.row({apps[i]->name(), fmt("%.1f", localPct(placed)),
                fmt("%.1f", localPct(inter)),
                fmt("%.3f", double(placed.mem.remoteData()) /
                                double(placed.mem.accesses())),
                fmt("%.3f", double(inter.mem.remoteData()) /
                                double(inter.mem.accesses()))});
    }
    t2.print();

    std::printf("\nAblation 3: coherence protocol with 1 MB caches "
                "(per 1000 references of the same stream), %d procs\n\n",
                procs);
    Table t3({"Code", "Proto", "Miss/1000", "Upgr/1000", "Inval/1000",
              "Upd/1000", "RemData/ref", "Traffic/ref"});
    for (std::size_t i = 0; i < apps.size(); ++i) {
        for (int k = 0; k < sim::kNumProtocols; ++k) {
            const RunStats& r = results[i][zooIdx[k]];
            t3.row({k == 0 ? apps[i]->name() : std::string(),
                    sim::protocol(static_cast<sim::ProtocolKind>(k))
                        .display,
                    fmt("%.3f", per1000(r, r.mem.totalMisses())),
                    fmt("%.3f", per1000(r, r.mem.upgrades)),
                    fmt("%.3f", per1000(r, r.mem.invalidations)),
                    fmt("%.3f", per1000(r, r.mem.updates)),
                    fmt("%.3f", perRef(r, double(r.mem.remoteData()))),
                    fmt("%.3f",
                        perRef(r, double(r.mem.totalTraffic())))});
        }
    }
    t3.print();
    return 0;
}
