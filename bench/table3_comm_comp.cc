/**
 * @file
 * Table 3: growth rate of the communication-to-computation ratio with
 * processor count and data-set size.
 *
 * Inherent communication is approximated by true-sharing traffic (as
 * in the paper); the ratio divides by FLOPS (or instructions for the
 * integer codes).  The measured ratio is reported at (P, DS), (4P,
 * DS), and (P, 4xDS), with growth factors to compare against the
 * paper's analytic expressions -- e.g. sqrt(P) / sqrt(DS) for Ocean,
 * ~(P-1)/P flattening for FFT and Radix, sqrt(P/DS) for Barnes.
 *
 * Engine: each of an application's three ratio points is an
 * independent runner job (--jobs); output bytes are identical for
 * every jobs value.
 *
 * Usage: table3_comm_comp [--procs 8] [--scale 1.0] [--jobs N]
 */
#include <cstdio>
#include <string>
#include <vector>

#include "harness/cli.h"
#include "harness/runner.h"

using namespace splash;
using namespace splash::harness;

namespace {

struct Ratio
{
    double trueShare = 0;  ///< repeated-communication proxy
    double withCold = 0;   ///< + remote cold: single-read
                           ///< producer-consumer communication (LU)
};

Ratio
ratioAt(App& app, int procs, double scale, const SimOpts& simOpts)
{
    sim::CacheConfig cache;  // 1 MB: capacity effects minimized
    AppConfig cfg;
    cfg.scale = scale;
    RunStats r = runWithMemSystem(app, procs, cache, cfg, simOpts);
    double den = trafficDenominator(app, r.exec);
    Ratio out;
    if (den > 0) {
        out.trueShare = double(r.mem.trueSharedData) / den;
        out.withCold = double(r.mem.trueSharedData +
                              r.mem.remoteColdData) /
                       den;
    }
    return out;
}

const char*
paperGrowth(const std::string& name)
{
    if (name == "Barnes")
        return "~sqrt(P)/sqrt(DS) (input dependent)";
    if (name == "Cholesky")
        return "~sqrt(P)/sqrt(DS) approx";
    if (name == "FFT")
        return "(P-1)/P (flattens with P)";
    if (name == "FMM")
        return "~sqrt(P)/sqrt(DS) approx";
    if (name == "LU")
        return "sqrt(P)/sqrt(DS)";
    if (name == "Ocean")
        return "sqrt(P)/sqrt(DS)";
    if (name == "Radiosity")
        return "unpredictable";
    if (name == "Radix")
        return "(P-1)/P (flattens with P)";
    if (name == "Raytrace")
        return "unpredictable";
    if (name == "Volrend")
        return "unpredictable";
    if (name == "Water-Nsq")
        return "~P/DS";
    return "~sqrt(P)/DS";  // Water-Sp
}

} // namespace

int
main(int argc, char** argv)
{
    Options opt(argc, argv);
    EngineOpts eng;
    if (!parseEngineOpts(opt, &eng))
        return eng.listRequested ? 0 : 2;
    int procs = static_cast<int>(opt.getI("procs", 8));
    double base = opt.getD("scale", opt.has("quick") ? 0.25 : 1.0);

    std::vector<App*> apps;
    for (App* app : suite())
        apps.push_back(app);

    // Three points per application: (P, DS), (4P, DS), (P, 4xDS).
    std::vector<std::vector<Ratio>> ratios(apps.size(),
                                           std::vector<Ratio>(3));
    Runner runner(eng.jobs);
    for (std::size_t i = 0; i < apps.size(); ++i) {
        struct Point
        {
            const char* tag;
            int procs;
            double scale;
        };
        const Point points[3] = {
            {"base", procs, base},
            {"4P", procs * 4, base},
            {"4xDS", procs, base * 4.0},
        };
        for (int v = 0; v < 3; ++v) {
            const Point& pt = points[v];
            runner.add(apps[i]->name() + "/" + pt.tag,
                       appCostHint(*apps[i]) * pt.scale * pt.procs,
                       [&, i, v, pt] {
                           ratios[i][v] = ratioAt(*apps[i], pt.procs,
                                                  pt.scale, eng.sim);
                       });
        }
    }
    runner.run();

    std::printf("Table 3: communication-to-computation ratio "
                "(true-sharing bytes per FLOP or instr) and its "
                "growth; base P=%d, scale %.3g\n\n",
                procs, base);
    Table t({"Code", "C/C", "+cold", "C/C @4P", "x(4P)", "C/C @4xDS",
             "x(4DS)", "paper growth"});
    for (std::size_t i = 0; i < apps.size(); ++i) {
        const Ratio& r0 = ratios[i][0];
        const Ratio& rp = ratios[i][1];
        const Ratio& rd = ratios[i][2];
        // LU communicates producer-to-consumer exactly once per block,
        // which the Dubois scheme classifies as (remote) cold; use the
        // cold-inclusive ratio for growth when true sharing is absent.
        bool use_cold = r0.trueShare < 1e-9;
        auto pick = [&](const Ratio& r) {
            return use_cold ? r.withCold : r.trueShare;
        };
        auto safe = [](double a, double b) {
            return b > 0 ? a / b : 0.0;
        };
        t.row({apps[i]->name(), fmt("%.5f", r0.trueShare),
               fmt("%.5f", r0.withCold), fmt("%.5f", pick(rp)),
               fmt("%.2f", safe(pick(rp), pick(r0))),
               fmt("%.5f", pick(rd)),
               fmt("%.2f", safe(pick(rd), pick(r0))),
               paperGrowth(apps[i]->name())});
    }
    t.print();
    std::printf("\n(x(4P) > 1: communication grows with processors; "
                "x(4DS) < 1: it shrinks with data-set size)\n");
    return 0;
}
