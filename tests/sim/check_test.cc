// Tests for the coherence invariant checker and the fault-injection
// harness that certifies it: clean simulator states must be silent,
// every seeded protocol corruption must be detected with the expected
// rule, the wired-in sampled checker must abort the run when a live
// violation appears, and enabling the checker must not perturb any
// statistic of a real characterization.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "harness/experiment.h"
#include "sim/check.h"
#include "sim/faultinject.h"
#include "sim/memsys.h"

using namespace splash;
using namespace splash::sim;

namespace {

struct Access
{
    ProcId p;
    Addr a;
    AccessType t;
};

std::vector<Access>
randomStream(int nprocs, int n, std::uint64_t lines, std::uint64_t seed)
{
    std::vector<Access> out;
    out.reserve(n);
    std::uint64_t x = seed;
    for (int i = 0; i < n; ++i) {
        x = x * 6364136223846793005ull + 1442695040888963407ull;
        Access acc;
        acc.p = static_cast<ProcId>((x >> 60) % nprocs);
        acc.a = 0x400000 + ((x >> 30) % lines) * 64 + ((x >> 20) % 8) * 8;
        acc.t = ((x >> 13) & 3) == 0 ? AccessType::Write
                                     : AccessType::Read;
        out.push_back(acc);
    }
    return out;
}

/** Drive @p mem to a realistic mid-run protocol state. */
void
warmUp(MemSystem& mem, int nprocs, std::uint64_t seed)
{
    for (const auto& acc : randomStream(nprocs, 30000, 400, seed))
        mem.access(acc.p, acc.a, 8, acc.t);
}

MachineConfig
smallMachine(int nprocs, bool hints,
             ProtocolKind proto = ProtocolKind::MESI)
{
    MachineConfig mc;
    mc.nprocs = nprocs;
    mc.cache.size = 16 << 10;  // small cache: forces replacements
    mc.replacementHints = hints;
    mc.protocol = proto;
    return mc;
}

/** The rule each fault kind must trip (its primary signature). */
const char*
expectedRule(FaultKind k)
{
    switch (k) {
      case FaultKind::DroppedInval:   return "sharer-missing";
      case FaultKind::StaleSharer:    return "sharer-stale";
      case FaultKind::DoubleModified: return "multiple-modified";
      case FaultKind::LostHint:       return "sharer-stale";
      case FaultKind::DirtyDesync:    return "dirty-owner";
      case FaultKind::TrafficSkew:    return "traffic-conservation";
      case FaultKind::IllegalState:   return "illegal-state";
      default:                        return "?";
    }
}

/** IllegalState has no target under protocols whose legal set is the
 *  full state alphabet. */
bool
usesFullAlphabet(ProtocolKind k)
{
    const Protocol& p = protocol(k);
    for (int s = 1; s < kNumLineStates; ++s)
        if (!stateIn(p.legalStates, static_cast<LineState>(s)))
            return false;
    return true;
}

bool
hasRule(const std::vector<Violation>& v, const std::string& rule)
{
    for (const auto& viol : v)
        if (viol.rule == rule)
            return true;
    return false;
}

} // namespace

// A legitimately reached protocol state -- including replacements,
// upgrades, update broadcasts, and the lazy E->M fast path -- must be
// silent under the full sweep, for every registered protocol, with
// hints on and off.
TEST(CoherenceChecker, CleanStatesAreSilent)
{
    for (int pi = 0; pi < kNumProtocols; ++pi) {
        auto proto = static_cast<ProtocolKind>(pi);
        for (bool hints : {true, false}) {
            for (std::uint64_t seed : {1u, 77u, 4096u}) {
                MemSystem mem(smallMachine(8, hints, proto));
                warmUp(mem, 8, seed);
                std::vector<Violation> v;
                EXPECT_EQ(CoherenceChecker(mem).checkAll(&v), 0u)
                    << protocolName(proto) << " hints=" << hints
                    << " seed=" << seed << "\n" << formatViolations(v);
            }
        }
    }
}

// Detection matrix: every fault kind, under every protocol, across
// several seeds (each seed picks a different deterministic
// (line, proc) target), must trip the checker -- and trip the rule
// that corresponds to the corruption.  The only legal ineligibilities
// here are IllegalState under a full-alphabet protocol and the
// bus-only kinds, which gate on the interconnect (these machines are
// directory-mode; bus detection is covered by bus_test.cc).
TEST(CoherenceChecker, DetectsEverySeededFault)
{
    for (int pi = 0; pi < kNumProtocols; ++pi) {
        auto proto = static_cast<ProtocolKind>(pi);
        for (int ki = 0; ki < kNumFaultKinds; ++ki) {
            auto kind = static_cast<FaultKind>(ki);
            for (std::uint64_t seed : {0u, 1u, 13u, 1234u}) {
                MemSystem mem(smallMachine(8, /*hints=*/true, proto));
                warmUp(mem, 8, 42);
                ASSERT_EQ(CoherenceChecker(mem).checkAll(), 0u)
                    << protocolName(proto);

                std::string what = FaultInjector(mem).inject(kind, seed);
                if (faultKindIsBus(kind)) {
                    EXPECT_TRUE(what.empty())
                        << protocolName(proto)
                        << ": bus fault kind must be ineligible on a "
                           "directory machine";
                    continue;
                }
                if (kind == FaultKind::IllegalState &&
                    usesFullAlphabet(proto)) {
                    EXPECT_TRUE(what.empty())
                        << protocolName(proto)
                        << ": full-alphabet protocol has no illegal "
                           "state to seed";
                    continue;
                }
                ASSERT_FALSE(what.empty())
                    << protocolName(proto) << " " << faultKindName(kind)
                    << " seed " << seed
                    << ": no eligible target in a warmed-up state";

                std::vector<Violation> v;
                std::size_t n = CoherenceChecker(mem).checkAll(&v);
                EXPECT_GT(n, 0u)
                    << protocolName(proto) << " " << faultKindName(kind)
                    << " seed " << seed << ": checker missed " << what;
                EXPECT_TRUE(hasRule(v, expectedRule(kind)))
                    << protocolName(proto) << " " << faultKindName(kind)
                    << " seed " << seed << ": expected rule '"
                    << expectedRule(kind) << "' absent from:\n"
                    << formatViolations(v);
            }
        }
    }
}

// Hint faults are only faults when the sharer vector is contractually
// exact; with hints off the injector must report no eligible target
// rather than seed a legal state.
TEST(CoherenceChecker, HintFaultsIneligibleWithoutHints)
{
    MemSystem mem(smallMachine(8, /*hints=*/false));
    warmUp(mem, 8, 42);
    EXPECT_EQ(FaultInjector(mem).inject(FaultKind::StaleSharer, 0), "");
    EXPECT_EQ(FaultInjector(mem).inject(FaultKind::LostHint, 0), "");
    // A stale bit is legal without hints (superset semantics): seeding
    // the same mutation by hand must NOT trip the checker.
    EXPECT_EQ(CoherenceChecker(mem).checkAll(), 0u);
}

// Per-line mode: the cheap debug-path pass must fire on the corrupted
// line and stay silent on untouched lines.
TEST(CoherenceChecker, CheckLineLocalizesTheFault)
{
    MemSystem mem(smallMachine(8, /*hints=*/true));
    warmUp(mem, 8, 42);

    std::string what =
        FaultInjector(mem).inject(FaultKind::DoubleModified, 3);
    ASSERT_FALSE(what.empty());
    // Recover the target line from the full sweep.
    std::vector<Violation> v;
    ASSERT_GT(CoherenceChecker(mem).checkAll(&v), 0u);
    Addr bad = 0;
    for (const auto& viol : v)
        if (viol.rule == "multiple-modified")
            bad = viol.line;
    ASSERT_NE(bad, 0u);

    CoherenceChecker chk(mem);
    EXPECT_GT(chk.checkLine(bad), 0u);
    EXPECT_EQ(chk.checkLine(bad + 64), 0u) << "fault leaked to neighbor";
}

// The wired-in sampled path: with --check 1 a live violation must
// abort the run at the next slow-path transaction, loudly.
TEST(CoherenceCheckerDeathTest, SampledCheckerAbortsOnCorruption)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_DEATH(
        {
            MemSystem mem(smallMachine(8, /*hints=*/true));
            mem.setCheckPeriod(1);
            warmUp(mem, 8, 42);
            // Traffic skew can never be repaired by later traffic, so
            // the very next sampled sweep must catch it.
            FaultInjector(mem).inject(FaultKind::TrafficSkew, 0);
            warmUp(mem, 8, 43);
        },
        "coherence invariant violated");
}

// Observation only: a real characterization with the checker at its
// most aggressive sampling must stay silent and produce statistics
// identical to the checker-off run.
TEST(CoherenceChecker, CheckerDoesNotPerturbCharacterization)
{
    using namespace splash::harness;
    App* app = findApp("fft");
    ASSERT_NE(app, nullptr);
    AppConfig cfg;
    cfg.scale = 0.25;
    const int procs = 8;
    sim::CacheConfig cache;

    SimOpts off;
    RunStats plain = runWithMemSystem(*app, procs, cache, cfg, off);

    SimOpts checked;
    checked.checkPeriod = 1;  // full sweep every slow-path transaction
    RunStats audited = runWithMemSystem(*app, procs, cache, cfg, checked);

    EXPECT_TRUE(plain.valid);
    EXPECT_TRUE(audited.valid);
    EXPECT_EQ(plain.elapsed, audited.elapsed);
    EXPECT_EQ(plain.mem.reads, audited.mem.reads);
    EXPECT_EQ(plain.mem.writes, audited.mem.writes);
    for (int m = 0; m < kNumMissTypes; ++m)
        EXPECT_EQ(plain.mem.misses[m], audited.mem.misses[m]);
    EXPECT_EQ(plain.mem.upgrades, audited.mem.upgrades);
    EXPECT_EQ(plain.mem.remoteSharedData, audited.mem.remoteSharedData);
    EXPECT_EQ(plain.mem.remoteColdData, audited.mem.remoteColdData);
    EXPECT_EQ(plain.mem.remoteCapacityData,
              audited.mem.remoteCapacityData);
    EXPECT_EQ(plain.mem.remoteWriteback, audited.mem.remoteWriteback);
    EXPECT_EQ(plain.mem.remoteOverhead, audited.mem.remoteOverhead);
    EXPECT_EQ(plain.mem.localData, audited.mem.localData);
    EXPECT_EQ(plain.mem.trueSharedData, audited.mem.trueSharedData);
}
