// Cross-validation of MemSystem against an independently written
// reference model of the same protocol (unbounded maps instead of tag
// arrays for the infinite-cache case; straightforward per-line state
// machine). Any divergence in hit/miss decisions, state transitions,
// or invalidation sets is a bug in one of the two implementations.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "sim/memsys.h"

using namespace splash;
using namespace splash::sim;

namespace {

/** Reference MESI model with infinite caches. */
class RefModel
{
  public:
    explicit RefModel(int nprocs) : caches_(nprocs) {}

    enum class St { I, S, E, M };

    /** Returns true on a miss (line not valid in p's cache). */
    bool
    access(int p, Addr line, bool write)
    {
        St st = stateOf(p, line);
        if (!write) {
            if (st != St::I)
                return false;
            // Read miss: downgrade any M/E owner; join sharers.
            for (std::size_t q = 0; q < caches_.size(); ++q) {
                auto it = caches_[q].find(line);
                if (it != caches_[q].end() && it->second != St::I)
                    it->second = St::S;
            }
            bool others = anyValid(line);
            caches_[p][line] = others ? St::S : St::E;
            if (others)
                demoteAll(line);
            return true;
        }
        // Write.
        if (st == St::M)
            return false;
        if (st == St::E) {
            caches_[p][line] = St::M;
            return false;
        }
        // S upgrade or I miss: invalidate all others.
        bool miss = st == St::I;
        for (std::size_t q = 0; q < caches_.size(); ++q) {
            if (static_cast<int>(q) == p)
                continue;
            auto it = caches_[q].find(line);
            if (it != caches_[q].end())
                it->second = St::I;
        }
        caches_[p][line] = St::M;
        return miss;
    }

    St
    stateOf(int p, Addr line) const
    {
        auto it = caches_[p].find(line);
        return it == caches_[p].end() ? St::I : it->second;
    }

  private:
    bool
    anyValid(Addr line) const
    {
        for (const auto& c : caches_) {
            auto it = c.find(line);
            if (it != c.end() && it->second != St::I)
                return true;
        }
        return false;
    }

    void
    demoteAll(Addr line)
    {
        for (auto& c : caches_) {
            auto it = c.find(line);
            if (it != c.end() && it->second != St::I)
                it->second = St::S;
        }
    }

    std::vector<std::map<Addr, St>> caches_;
};

LineState
toLineState(RefModel::St s)
{
    switch (s) {
      case RefModel::St::I:
        return LineState::Invalid;
      case RefModel::St::S:
        return LineState::Shared;
      case RefModel::St::E:
        return LineState::Exclusive;
      default:
        return LineState::Modified;
    }
}

} // namespace

class ReferenceFuzz : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(ReferenceFuzz, MemSystemMatchesReferenceModel)
{
    const int nprocs = 6;
    // Caches big enough that nothing is ever replaced: the reference
    // model has infinite caches.
    MachineConfig mc;
    mc.nprocs = nprocs;
    mc.cache.size = 1u << 22;
    mc.cache.assoc = 0;  // fully associative
    MemSystem mem(mc);
    RefModel ref(nprocs);

    std::uint64_t x = GetParam();
    std::uint64_t prev_misses = 0;
    for (int i = 0; i < 40000; ++i) {
        x = x * 6364136223846793005ull + 1442695040888963407ull;
        int p = static_cast<int>((x >> 60) % nprocs);
        Addr line = 0x400000 + ((x >> 33) % 700) * 64;
        bool write = ((x >> 10) & 3) == 0;
        bool ref_miss = ref.access(p, line, write);
        mem.access(p, line, 8,
                   write ? AccessType::Write : AccessType::Read);
        std::uint64_t misses = mem.total().totalMisses();
        ASSERT_EQ(misses - prev_misses, ref_miss ? 1u : 0u)
            << "access " << i << " p" << p << (write ? " W " : " R ")
            << std::hex << line;
        prev_misses = misses;
        // States agree for every processor on the touched line.
        for (int q = 0; q < nprocs; ++q) {
            ASSERT_EQ(mem.lineState(q, line),
                      toLineState(ref.stateOf(q, line)))
                << "access " << i << " state of p" << q;
        }
    }
    EXPECT_TRUE(mem.checkCoherenceInvariants());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReferenceFuzz,
                         ::testing::Values(1ull, 42ull, 9999ull,
                                           123456789ull));
