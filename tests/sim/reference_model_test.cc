// Cross-validation of MemSystem against an independently written
// reference model of the same protocol (unbounded maps instead of tag
// arrays for the infinite-cache case; straightforward per-line state
// machine). Any divergence in hit/miss decisions, state transitions,
// or invalidation sets is a bug in one of the two implementations.
//
// The same seeded streams also cross-validate the two reference
// delivery shapes (direct call-per-access versus the batched ring
// drained at scheduling boundaries) and the parallel sweep replay
// pipeline against the serial online sweep: all must be state- and
// statistics-exact.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "rt/env.h"
#include "sim/memsys.h"
#include "sim/sweep.h"

using namespace splash;
using namespace splash::sim;

namespace {

/** Reference MESI model with infinite caches. */
class RefModel
{
  public:
    explicit RefModel(int nprocs) : caches_(nprocs) {}

    enum class St { I, S, E, M };

    /** Returns true on a miss (line not valid in p's cache). */
    bool
    access(int p, Addr line, bool write)
    {
        St st = stateOf(p, line);
        if (!write) {
            if (st != St::I)
                return false;
            // Read miss: downgrade any M/E owner; join sharers.
            for (std::size_t q = 0; q < caches_.size(); ++q) {
                auto it = caches_[q].find(line);
                if (it != caches_[q].end() && it->second != St::I)
                    it->second = St::S;
            }
            bool others = anyValid(line);
            caches_[p][line] = others ? St::S : St::E;
            if (others)
                demoteAll(line);
            return true;
        }
        // Write.
        if (st == St::M)
            return false;
        if (st == St::E) {
            caches_[p][line] = St::M;
            return false;
        }
        // S upgrade or I miss: invalidate all others.
        bool miss = st == St::I;
        for (std::size_t q = 0; q < caches_.size(); ++q) {
            if (static_cast<int>(q) == p)
                continue;
            auto it = caches_[q].find(line);
            if (it != caches_[q].end())
                it->second = St::I;
        }
        caches_[p][line] = St::M;
        return miss;
    }

    St
    stateOf(int p, Addr line) const
    {
        auto it = caches_[p].find(line);
        return it == caches_[p].end() ? St::I : it->second;
    }

  private:
    bool
    anyValid(Addr line) const
    {
        for (const auto& c : caches_) {
            auto it = c.find(line);
            if (it != c.end() && it->second != St::I)
                return true;
        }
        return false;
    }

    void
    demoteAll(Addr line)
    {
        for (auto& c : caches_) {
            auto it = c.find(line);
            if (it != c.end() && it->second != St::I)
                it->second = St::S;
        }
    }

    std::vector<std::map<Addr, St>> caches_;
};

LineState
toLineState(RefModel::St s)
{
    switch (s) {
      case RefModel::St::I:
        return LineState::Invalid;
      case RefModel::St::S:
        return LineState::Shared;
      case RefModel::St::E:
        return LineState::Exclusive;
      default:
        return LineState::Modified;
    }
}

} // namespace

class ReferenceFuzz : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(ReferenceFuzz, MemSystemMatchesReferenceModel)
{
    const int nprocs = 6;
    // Caches big enough that nothing is ever replaced: the reference
    // model has infinite caches.
    MachineConfig mc;
    mc.nprocs = nprocs;
    mc.cache.size = 1u << 22;
    mc.cache.assoc = 0;  // fully associative
    MemSystem mem(mc);
    RefModel ref(nprocs);

    std::uint64_t x = GetParam();
    std::uint64_t prev_misses = 0;
    for (int i = 0; i < 40000; ++i) {
        x = x * 6364136223846793005ull + 1442695040888963407ull;
        int p = static_cast<int>((x >> 60) % nprocs);
        Addr line = 0x400000 + ((x >> 33) % 700) * 64;
        bool write = ((x >> 10) & 3) == 0;
        bool ref_miss = ref.access(p, line, write);
        mem.access(p, line, 8,
                   write ? AccessType::Write : AccessType::Read);
        std::uint64_t misses = mem.total().totalMisses();
        ASSERT_EQ(misses - prev_misses, ref_miss ? 1u : 0u)
            << "access " << i << " p" << p << (write ? " W " : " R ")
            << std::hex << line;
        prev_misses = misses;
        // States agree for every processor on the touched line.
        for (int q = 0; q < nprocs; ++q) {
            ASSERT_EQ(mem.lineState(q, line),
                      toLineState(ref.stateOf(q, line)))
                << "access " << i << " state of p" << q;
        }
    }
    EXPECT_TRUE(mem.checkCoherenceInvariants());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReferenceFuzz,
                         ::testing::Values(1ull, 42ull, 9999ull,
                                           123456789ull));

namespace {

/** One step of the per-processor fuzz stream: a synthetic address and
 *  read/write choice.  ProcCtx::read/write never dereference, so
 *  fabricated addresses give identical streams across Env instances. */
struct FuzzStep
{
    Addr addr;
    bool write;
};

FuzzStep
fuzzStep(std::uint64_t& x)
{
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    FuzzStep s;
    s.addr = 0x400000 + ((x >> 33) % 700) * 64 + ((x >> 21) % 7) * 8;
    s.write = ((x >> 10) & 3) == 0;
    return s;
}

/** Run the seeded fuzz stream as a real team program: each processor
 *  issues its own deterministic subsequence, interleaved by the
 *  scheduler.  Returns per-proc MemStats; @p touched collects every
 *  line referenced so callers can compare final states. */
std::vector<MemStats>
fuzzMemRun(std::uint64_t seed, rt::Delivery delivery,
           std::set<Addr>* touched, MemSystem** memOut,
           std::unique_ptr<MemSystem>& memHold)
{
    const int nprocs = 6;
    rt::Env env({rt::Mode::Sim, nprocs, /*quantum=*/97,
                 rt::BackendKind::Fiber, delivery});
    MachineConfig mc;
    mc.nprocs = nprocs;
    mc.cache.size = 1u << 22;
    mc.cache.assoc = 0;
    memHold = std::make_unique<MemSystem>(mc);
    env.attachMemSystem(memHold.get());
    env.run([&](rt::ProcCtx& ctx) {
        std::uint64_t x = seed * 1000003ull + std::uint64_t(ctx.id());
        for (int i = 0; i < 6000; ++i) {
            FuzzStep s = fuzzStep(x);
            const void* a = reinterpret_cast<const void*>(s.addr);
            if (s.write)
                ctx.write(a, 8);
            else
                ctx.read(a, 8);
        }
    });
    if (touched) {
        std::uint64_t x;
        for (int p = 0; p < nprocs; ++p) {
            x = seed * 1000003ull + std::uint64_t(p);
            for (int i = 0; i < 6000; ++i)
                touched->insert(fuzzStep(x).addr & ~Addr(63));
        }
    }
    *memOut = memHold.get();
    std::vector<MemStats> out;
    for (int p = 0; p < nprocs; ++p)
        out.push_back(memHold->procStats(p));
    return out;
}

void
expectSameStats(const MemStats& a, const MemStats& b, int p)
{
    EXPECT_EQ(a.reads, b.reads) << "P" << p;
    EXPECT_EQ(a.writes, b.writes) << "P" << p;
    for (int m = 0; m < kNumMissTypes; ++m)
        EXPECT_EQ(a.misses[m], b.misses[m]) << "P" << p << " type " << m;
    EXPECT_EQ(a.upgrades, b.upgrades) << "P" << p;
    EXPECT_EQ(a.remoteSharedData, b.remoteSharedData) << "P" << p;
    EXPECT_EQ(a.remoteColdData, b.remoteColdData) << "P" << p;
    EXPECT_EQ(a.remoteCapacityData, b.remoteCapacityData) << "P" << p;
    EXPECT_EQ(a.remoteWriteback, b.remoteWriteback) << "P" << p;
    EXPECT_EQ(a.remoteOverhead, b.remoteOverhead) << "P" << p;
    EXPECT_EQ(a.localData, b.localData) << "P" << p;
    EXPECT_EQ(a.trueSharedData, b.trueSharedData) << "P" << p;
}

} // namespace

/** Batched delivery must be state- and stat-exact versus direct on the
 *  same scheduled fuzz streams: per-proc counters, traffic bytes, and
 *  the final MESI state of every touched line. */
TEST_P(ReferenceFuzz, BatchedDeliveryStateAndStatExact)
{
    std::set<Addr> touched;
    MemSystem* memD = nullptr;
    MemSystem* memB = nullptr;
    std::unique_ptr<MemSystem> holdD, holdB;
    auto direct = fuzzMemRun(GetParam(), rt::Delivery::Direct, &touched,
                             &memD, holdD);
    auto batched = fuzzMemRun(GetParam(), rt::Delivery::Batched, nullptr,
                              &memB, holdB);
    ASSERT_EQ(direct.size(), batched.size());
    for (std::size_t p = 0; p < direct.size(); ++p)
        expectSameStats(direct[p], batched[p], int(p));
    for (Addr line : touched)
        for (int q = 0; q < 6; ++q)
            ASSERT_EQ(memD->lineState(q, line), memB->lineState(q, line))
                << "p" << q << " line " << std::hex << line;
    EXPECT_TRUE(memD->checkCoherenceInvariants());
    EXPECT_TRUE(memB->checkCoherenceInvariants());
}

/** The parallel sweep replay must reproduce the serial online sweep
 *  exactly at every operating point, for any worker count and chunk
 *  size -- including tiny chunks that force many flush barriers. */
TEST_P(ReferenceFuzz, ParallelSweepStatExact)
{
    const int nprocs = 6;
    SweepConfig sc;
    sc.nprocs = nprocs;
    CacheSweep serial(sc);
    std::uint64_t x = GetParam();
    std::vector<FuzzStep> steps;
    std::vector<int> procs;
    for (int i = 0; i < 40000; ++i) {
        steps.push_back(fuzzStep(x));
        procs.push_back(static_cast<int>((x >> 60) % nprocs));
    }
    for (std::size_t i = 0; i < steps.size(); ++i)
        serial.access(procs[i], steps[i].addr, 8,
                      steps[i].write ? AccessType::Write
                                     : AccessType::Read);
    for (int threads : {1, 2, 4}) {
        CacheSweep sweep(sc);
        {
            ParallelSweep ps(sweep, threads, /*chunkRecords=*/512);
            for (std::size_t i = 0; i < steps.size(); ++i) {
                AccessRec r;
                r.addr = steps[i].addr;
                r.size = 8;
                r.proc = static_cast<std::int16_t>(procs[i]);
                r.type = steps[i].write ? AccessType::Write
                                        : AccessType::Read;
                ps.access(r);
            }
        }  // destructor flushes
        EXPECT_EQ(serial.accesses(), sweep.accesses()) << threads;
        for (std::uint64_t size : sc.sizes)
            for (int assoc : {1, 2, 4, 0})
                EXPECT_EQ(serial.misses(size, assoc),
                          sweep.misses(size, assoc))
                    << threads << " workers, " << size << "B " << assoc
                    << "-way";
    }
}
