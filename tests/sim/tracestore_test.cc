// Tests for the record-once trace store: codec round-trip + fuzz
// (varint/zigzag, the LZ block compressor, CRC-32), writer/reader
// round-trips with chunk-spanning records and stream-ordered events,
// rejection of truncated/corrupted/stale files (including a
// whole-file byte-flip fuzz pass), store identity checks, and
// app-level record -> replay equality for a live characterization.
#include <gtest/gtest.h>

#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <random>
#include <string>
#include <vector>

#include "harness/experiment.h"
#include "rt/shared_heap.h"
#include "sim/tracestore.h"

using namespace splash;
using namespace splash::sim;
using namespace splash::sim::tracecodec;

namespace {

std::string
tempDir()
{
    static int n = 0;
    std::string d = ::testing::TempDir() + "tracestore_" +
                    std::to_string(::getpid()) + "_" +
                    std::to_string(n++);
    EXPECT_EQ(::mkdir(d.c_str(), 0777), 0);
    return d;
}

std::vector<std::uint8_t>
slurp(const std::string& path)
{
    std::ifstream f(path, std::ios::binary);
    EXPECT_TRUE(f.good()) << path;
    return {std::istreambuf_iterator<char>(f),
            std::istreambuf_iterator<char>()};
}

void
spit(const std::string& path, const std::vector<std::uint8_t>& bytes)
{
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    f.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

/** Sink that journals every delivery in order, for exact comparison
 *  against what a writer was fed. */
struct Journal final : RefSink
{
    std::vector<AccessRec> recs;
    struct Ev
    {
        std::uint64_t pos;
        char kind;  // 's'ync, 'r'eset, 'p'lace, 'b'arrier
        SyncRec sync;
        PlaceRec place;
    };
    std::vector<Ev> evs;

    void access(const AccessRec& r) override { recs.push_back(r); }
    void
    sync(const SyncRec& r) override
    {
        evs.push_back({recs.size(), 's', r, {}});
    }
    void resetStats() override { evs.push_back({recs.size(), 'r', {}, {}}); }
    void
    place(const PlaceRec& r) override
    {
        evs.push_back({recs.size(), 'p', {}, r});
    }
    void
    streamBarrier() override
    {
        evs.push_back({recs.size(), 'b', {}, {}});
    }
};

TraceMeta
testMeta(int nprocs = 4)
{
    TraceMeta m;
    m.app = "synthetic";
    m.nprocs = nprocs;
    m.scale = 0.5;
    m.n = 64;
    m.iters = 3;
    m.aux = 7;
    m.seed = 42;
    m.quantum = 250;
    return m;
}

bool
sameRec(const AccessRec& a, const AccessRec& b)
{
    return a.addr == b.addr && a.ltime == b.ltime && a.size == b.size &&
           a.proc == b.proc && a.type == b.type && a.flags == b.flags;
}

/** A deterministic pseudo-random stream with realistic structure:
 *  mostly per-proc strided runs, occasional far jumps, mixed sizes,
 *  monotone per-proc logical clocks. */
std::vector<AccessRec>
randomStream(int nprocs, int n, std::uint64_t seed)
{
    std::mt19937_64 rng(seed);
    std::vector<Addr> cursor(nprocs);
    std::vector<Tick> clock(nprocs);
    for (int p = 0; p < nprocs; ++p) {
        cursor[p] = 0x100000000ull + std::uint64_t(p) * 4096;
        clock[p] = rng() % 100;
    }
    std::vector<AccessRec> out;
    out.reserve(n);
    int p = 0;
    for (int i = 0; i < n; ++i) {
        if (rng() % 7 == 0)
            p = static_cast<int>(rng() % nprocs);
        AccessRec r;
        if (rng() % 31 == 0)
            cursor[p] = 0x100000000ull + rng() % (1u << 20);
        else
            cursor[p] += 4 + 8 * (rng() % 3);
        clock[p] += 1 + rng() % 5;
        r.addr = cursor[p];
        r.ltime = clock[p];
        r.size = 1 << (rng() % 4);
        r.proc = static_cast<std::int16_t>(p);
        r.type = rng() % 3 ? AccessType::Read : AccessType::Write;
        r.flags = rng() % 13 == 0 ? AccessRec::kAtomic : 0;
        out.push_back(r);
    }
    return out;
}

/** Record @p recs (plus synthetic events) and return the trace path. */
std::string
writeTrace(const std::string& dir, const TraceMeta& m,
           const std::vector<AccessRec>& recs, std::size_t chunkRecords,
           Journal* fed = nullptr)
{
    const std::string path = tracestore::pathFor(dir, m);
    TraceWriter w(path, m, chunkRecords);
    std::mt19937_64 rng(99);
    for (std::size_t i = 0; i < recs.size(); ++i) {
        if (i == recs.size() / 3) {
            w.resetStats();
            if (fed)
                fed->resetStats();
        }
        if (rng() % 17 == 0) {
            SyncRec s;
            s.obj = static_cast<std::uint32_t>(rng() % 5);
            s.proc = recs[i].proc;
            s.ltime = recs[i].ltime + 1;
            s.op = rng() % 2 ? SyncOp::Release : SyncOp::Acquire;
            s.prim = static_cast<SyncPrim>(rng() % 3);
            w.sync(s);
            if (fed)
                fed->sync(s);
        }
        if (rng() % 41 == 0) {
            PlaceRec pl;
            pl.addr = 0x100000000ull + (rng() % 16) * 65536;
            pl.bytes = 4096;
            pl.home = static_cast<ProcId>(rng() % m.nprocs);
            // Mirror the live Env: quiesce, then mutate.
            w.streamBarrier();
            w.place(pl);
            if (fed) {
                fed->streamBarrier();
                fed->place(pl);
            }
        }
        w.access(recs[i]);
        if (fed)
            fed->access(recs[i]);
    }
    ExecProfile e;
    e.valid = true;
    e.elapsed = 123456;
    for (int p = 0; p < m.nprocs; ++p) {
        ExecProfile::Row row{};
        for (int f = 0; f < ExecProfile::kFields; ++f)
            row[f] = std::uint64_t(p) * 100 + f;
        e.procs.push_back(row);
    }
    std::string err;
    EXPECT_TRUE(w.finalize(e, &err)) << err;
    return path;
}

// ---------------------------------------------------------------------
// Codec units.

TEST(Varint, BoundaryRoundTrip)
{
    const std::uint64_t cases[] = {0,
                                   1,
                                   127,
                                   128,
                                   129,
                                   16383,
                                   16384,
                                   (1ull << 32) - 1,
                                   1ull << 32,
                                   ~0ull - 1,
                                   ~0ull};
    for (std::uint64_t v : cases) {
        std::vector<std::uint8_t> buf;
        putVarint(buf, v);
        ASSERT_LE(buf.size(), 10u);
        const std::uint8_t* p = buf.data();
        std::uint64_t got = 0;
        ASSERT_TRUE(getVarint(&p, buf.data() + buf.size(), &got));
        EXPECT_EQ(got, v);
        EXPECT_EQ(p, buf.data() + buf.size());
    }
}

TEST(Varint, TruncatedDecodeFails)
{
    std::vector<std::uint8_t> buf;
    putVarint(buf, ~0ull);
    for (std::size_t cut = 0; cut < buf.size(); ++cut) {
        const std::uint8_t* p = buf.data();
        std::uint64_t got;
        EXPECT_FALSE(getVarint(&p, buf.data() + cut, &got))
            << "decode succeeded on a " << cut << "-byte prefix";
    }
    // A run of continuation bytes never terminating within 10 bytes is
    // corrupt, not an infinite loop.
    std::vector<std::uint8_t> runaway(64, 0x80);
    const std::uint8_t* p = runaway.data();
    std::uint64_t got;
    EXPECT_FALSE(getVarint(&p, runaway.data() + runaway.size(), &got));
}

TEST(Varint, ZigzagRoundTrip)
{
    const std::int64_t cases[] = {0,  1,  -1, 2, -2, 4096, -4097,
                                  INT64_MAX, INT64_MIN};
    for (std::int64_t v : cases)
        EXPECT_EQ(unzigzag(zigzag(v)), v);
    // Zigzag keeps small magnitudes small (the size argument).
    EXPECT_LT(zigzag(-3), 8u);
}

TEST(Varint, FuzzRoundTrip)
{
    std::mt19937_64 rng(7);
    std::vector<std::uint8_t> buf;
    std::vector<std::uint64_t> vals;
    for (int i = 0; i < 10000; ++i) {
        // Mix magnitudes so every encoded length occurs.
        std::uint64_t v = rng() >> (rng() % 64);
        vals.push_back(v);
        putVarint(buf, v);
    }
    const std::uint8_t* p = buf.data();
    const std::uint8_t* end = buf.data() + buf.size();
    for (std::uint64_t want : vals) {
        std::uint64_t got = 0;
        ASSERT_TRUE(getVarint(&p, end, &got));
        ASSERT_EQ(got, want);
    }
    EXPECT_EQ(p, end);
}

TEST(Crc32, KnownVectorAndSensitivity)
{
    // The canonical IEEE 802.3 check value.
    EXPECT_EQ(crc32("123456789", 9), 0xcbf43926u);
    std::vector<std::uint8_t> data(257);
    for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<std::uint8_t>(i * 7);
    const std::uint32_t base = crc32(data.data(), data.size());
    for (std::size_t i = 0; i < data.size(); i += 13) {
        data[i] ^= 0x40;
        EXPECT_NE(crc32(data.data(), data.size()), base)
            << "flip at " << i << " undetected";
        data[i] ^= 0x40;
    }
}

TEST(Lz, RoundTripShapes)
{
    std::mt19937_64 rng(11);
    std::vector<std::vector<std::uint8_t>> shapes;
    shapes.push_back({});                                // empty
    shapes.push_back({1, 2, 3});                         // < min match
    shapes.push_back(std::vector<std::uint8_t>(100000, 0x5a));  // run
    {
        std::vector<std::uint8_t> random(50000);
        for (auto& b : random)
            b = static_cast<std::uint8_t>(rng());
        shapes.push_back(random);  // incompressible
    }
    {
        std::vector<std::uint8_t> period;  // short period, overlap copy
        for (int i = 0; i < 9999; ++i)
            period.push_back(static_cast<std::uint8_t>(i % 3));
        shapes.push_back(period);
    }
    {
        std::vector<std::uint8_t> far;  // matches at > 64 KB distance
        for (int i = 0; i < 200000; ++i)
            far.push_back(static_cast<std::uint8_t>((i / 7000) % 251));
        shapes.push_back(far);
    }
    for (const auto& in : shapes) {
        std::vector<std::uint8_t> comp;
        lzCompress(in.data(), in.size(), comp);
        std::vector<std::uint8_t> out(in.size());
        ASSERT_TRUE(lzDecompress(comp.data(), comp.size(), out.data(),
                                 out.size()));
        EXPECT_EQ(out, in);
    }
    // The constant run must collapse to almost nothing.
    std::vector<std::uint8_t> comp;
    lzCompress(shapes[2].data(), shapes[2].size(), comp);
    EXPECT_LT(comp.size(), shapes[2].size() / 100);
}

TEST(Lz, FuzzRoundTripAndCorruptDecode)
{
    std::mt19937_64 rng(13);
    for (int iter = 0; iter < 200; ++iter) {
        // Blend literal noise and repeated slices for match coverage.
        std::vector<std::uint8_t> in;
        const int segs = 1 + static_cast<int>(rng() % 8);
        for (int s = 0; s < segs; ++s) {
            if (!in.empty() && rng() % 2) {
                std::size_t start = rng() % in.size();
                std::size_t len =
                    std::min<std::size_t>(rng() % 512, in.size() - start);
                std::vector<std::uint8_t> slice(in.begin() + start,
                                                in.begin() + start + len);
                in.insert(in.end(), slice.begin(), slice.end());
            } else {
                for (std::uint64_t i = rng() % 512; i > 0; --i)
                    in.push_back(static_cast<std::uint8_t>(rng()));
            }
        }
        std::vector<std::uint8_t> comp;
        lzCompress(in.data(), in.size(), comp);
        std::vector<std::uint8_t> out(in.size());
        ASSERT_TRUE(lzDecompress(comp.data(), comp.size(), out.data(),
                                 out.size()));
        ASSERT_EQ(out, in);
        // Corrupting any single byte must never crash or scribble
        // outside the output buffer; a false return is acceptable and
        // a true return must still fill exactly outN bytes.
        if (!comp.empty()) {
            std::vector<std::uint8_t> bad = comp;
            std::size_t at = rng() % bad.size();
            bad[at] ^= static_cast<std::uint8_t>(1 + rng() % 255);
            std::vector<std::uint8_t> scratch(in.size());
            (void)lzDecompress(bad.data(), bad.size(), scratch.data(),
                               scratch.size());
        }
        // Truncations must fail cleanly.
        if (comp.size() > 1) {
            std::vector<std::uint8_t> scratch(in.size());
            EXPECT_FALSE(lzDecompress(comp.data(), comp.size() / 2,
                                      scratch.data(), scratch.size()));
        }
    }
}

// ---------------------------------------------------------------------
// Writer/reader round-trip.

TEST(TraceStore, RoundTripChunkSpanning)
{
    const std::string dir = tempDir();
    const TraceMeta m = testMeta(4);
    const auto recs = randomStream(m.nprocs, 5000, 3);
    Journal fed;
    // 64-record chunks force ~80 chunk crossings with live per-proc
    // delta state.
    const std::string path = writeTrace(dir, m, recs, 64, &fed);

    std::string err;
    auto rd = TraceReader::open(path, &err);
    ASSERT_NE(rd, nullptr) << err;
    EXPECT_EQ(rd->meta(), m);
    EXPECT_EQ(rd->records(), recs.size());
    EXPECT_TRUE(rd->exec().valid);
    EXPECT_EQ(rd->exec().elapsed, 123456u);
    ASSERT_EQ(rd->exec().procs.size(), 4u);
    EXPECT_EQ(rd->exec().procs[2][5], 205u);

    Journal got;
    ASSERT_TRUE(rd->replay(&got, &err)) << err;
    ASSERT_EQ(got.recs.size(), fed.recs.size());
    for (std::size_t i = 0; i < fed.recs.size(); ++i)
        ASSERT_TRUE(sameRec(got.recs[i], fed.recs[i])) << "record " << i;
    ASSERT_EQ(got.evs.size(), fed.evs.size());
    for (std::size_t i = 0; i < fed.evs.size(); ++i) {
        ASSERT_EQ(got.evs[i].kind, fed.evs[i].kind) << "event " << i;
        ASSERT_EQ(got.evs[i].pos, fed.evs[i].pos) << "event " << i;
        if (fed.evs[i].kind == 's') {
            EXPECT_EQ(got.evs[i].sync.obj, fed.evs[i].sync.obj);
            EXPECT_EQ(got.evs[i].sync.proc, fed.evs[i].sync.proc);
            EXPECT_EQ(got.evs[i].sync.ltime, fed.evs[i].sync.ltime);
            EXPECT_EQ(got.evs[i].sync.op, fed.evs[i].sync.op);
            EXPECT_EQ(got.evs[i].sync.prim, fed.evs[i].sync.prim);
        } else if (fed.evs[i].kind == 'p') {
            EXPECT_EQ(got.evs[i].place.addr, fed.evs[i].place.addr);
            EXPECT_EQ(got.evs[i].place.bytes, fed.evs[i].place.bytes);
            EXPECT_EQ(got.evs[i].place.home, fed.evs[i].place.home);
        }
    }
}

TEST(TraceStore, RoundTripFuzzGeometries)
{
    std::mt19937_64 rng(17);
    for (int iter = 0; iter < 8; ++iter) {
        const std::string dir = tempDir();
        TraceMeta m = testMeta(1 + static_cast<int>(rng() % 8));
        m.seed = static_cast<unsigned>(iter);
        const int n = 1 + static_cast<int>(rng() % 3000);
        const std::size_t chunk = 1 + rng() % 200;
        const auto recs = randomStream(m.nprocs, n, iter * 31 + 5);
        Journal fed;
        const std::string path = writeTrace(dir, m, recs, chunk, &fed);
        std::string err;
        auto rd = TraceReader::open(path, &err);
        ASSERT_NE(rd, nullptr) << err;
        Journal got;
        ASSERT_TRUE(rd->replay(&got, &err)) << err;
        ASSERT_EQ(got.recs.size(), fed.recs.size())
            << "iter " << iter << " chunk " << chunk;
        for (std::size_t i = 0; i < fed.recs.size(); ++i)
            ASSERT_TRUE(sameRec(got.recs[i], fed.recs[i]))
                << "iter " << iter << " record " << i;
    }
}

/** Regression: a chunk whose ltime column spills escape varints must
 *  not leak scratch bytes into the NEXT chunk's address column.  The
 *  stream interleaves two far-apart strided cursors per processor (an
 *  aperiodic switch pattern), which makes the page-keyed predictor
 *  encoding win the per-chunk trial, while >4 distinct clock strides
 *  force ltime escapes in every chunk. */
TEST(TraceStore, RoundTripPredictorModeAcrossChunks)
{
    const std::string dir = tempDir();
    const TraceMeta m = testMeta(4);
    std::mt19937_64 rng(23);
    std::vector<AccessRec> recs;
    // Each of 256 "molecules" lives on its own page and has a fixed
    // partner page chosen by a permutation: visiting molecules in
    // random order makes the last-address deltas an aperiodic jumble
    // of large varints, while "partner follows molecule" is exactly
    // what the page-keyed table predicts.
    constexpr int kMol = 256;
    std::array<int, kMol> perm{};
    for (int i = 0; i < kMol; ++i)
        perm[i] = (i * 167 + 13) % kMol;
    std::vector<std::array<Addr, kMol>> off(4);
    std::vector<Tick> clock(4, 0);
    for (int i = 0; i < 2000; ++i) {
        const int p = static_cast<int>(rng() % 4);
        const int mol = static_cast<int>(rng() % kMol);
        const Addr base = 0x100000000ull + std::uint64_t(p) * (1ull << 32);
        off[p][mol] += (rng() % 4 == 0) ? 8 : 0;
        const Addr pages[2] = {
            base + std::uint64_t(mol) * 4096 + off[p][mol],
            base + (1ull << 28) + std::uint64_t(perm[mol]) * 4096 +
                off[p][mol]};
        for (const Addr a : pages) {
            // Mostly unit strides with a rare large one: >4 distinct
            // deltas per chunk (so the dictionary must escape) but a
            // spill small enough that the predictor encoding still
            // wins its size trial.
            clock[p] += rng() % 50 == 0 ? 2 + rng() % 99 : 1;
            AccessRec r;
            r.addr = a;
            r.ltime = clock[p];
            r.size = 8;
            r.proc = static_cast<std::int16_t>(p);
            r.type = AccessType::Read;
            r.flags = 0;
            recs.push_back(r);
        }
    }
    Journal fed;
    const std::string path = writeTrace(dir, m, recs, 512, &fed);
    std::string err;
    auto rd = TraceReader::open(path, &err);
    ASSERT_NE(rd, nullptr) << err;
    Journal got;
    ASSERT_TRUE(rd->replay(&got, &err)) << err;
    ASSERT_EQ(got.recs.size(), fed.recs.size());
    for (std::size_t i = 0; i < fed.recs.size(); ++i)
        ASSERT_TRUE(sameRec(got.recs[i], fed.recs[i])) << "record " << i;
}

TEST(TraceStore, ReplayPlacementMatchesSharedHeap)
{
    // ReplayPlacement must reproduce SharedHeap's span semantics
    // exactly, including the line-interleaved fallback.
    rt::SharedHeap heap(8);
    ReplayPlacement rp;
    rp.reset(8);
    void* a = heap.alloc(4096);
    void* b = heap.alloc(4096);
    heap.setHome(a, 4096, 3);
    heap.setHome(b, 1000, 5);
    const Addr simA = heap.toSim(reinterpret_cast<Addr>(a));
    const Addr simB = heap.toSim(reinterpret_cast<Addr>(b));
    rp.apply(simA, 4096, 3);
    rp.apply(simB, 1000, 5);
    for (Addr off = 0; off < 8192; off += 64)
        EXPECT_EQ(rp.homeOf(simA + off), heap.homeOf(simA + off))
            << "offset " << off;
    // Far outside every span: interleaved fallback.
    for (Addr addr = simA + (1 << 24); addr < simA + (1 << 24) + 4096;
         addr += 64)
        EXPECT_EQ(rp.homeOf(addr), heap.homeOf(addr));
}

// ---------------------------------------------------------------------
// Rejection: truncated, corrupted, stale, mismatched.

TEST(TraceStore, RejectsMissingAndNonRegular)
{
    std::string err;
    EXPECT_EQ(TraceReader::open("/nonexistent/trace.s2t", &err),
              nullptr);
    EXPECT_NE(err.find("cannot open"), std::string::npos) << err;
    EXPECT_EQ(TraceReader::open("/tmp", &err), nullptr);
    EXPECT_NE(err.find("regular file"), std::string::npos) << err;
}

TEST(TraceStore, RejectsTruncation)
{
    const std::string dir = tempDir();
    const TraceMeta m = testMeta(2);
    const std::string path =
        writeTrace(dir, m, randomStream(2, 600, 9), 100);
    const auto whole = slurp(path);
    ASSERT_GT(whole.size(), 200u);
    // Every prefix must be rejected -- header-short, mid-chunk, and
    // footer-short truncations alike.
    for (std::size_t keep : {std::size_t(0), std::size_t(17),
                             std::size_t(127), std::size_t(128),
                             whole.size() / 2, whole.size() - 5}) {
        const std::string t = path + ".trunc";
        spit(t, {whole.begin(), whole.begin() + keep});
        std::string err;
        EXPECT_EQ(TraceReader::open(t, &err), nullptr)
            << "accepted a " << keep << "-byte prefix";
        EXPECT_FALSE(err.empty());
    }
}

TEST(TraceStore, RejectsStaleFormatVersion)
{
    const std::string dir = tempDir();
    const TraceMeta m = testMeta(2);
    const std::string path =
        writeTrace(dir, m, randomStream(2, 100, 21), 64);
    auto bytes = slurp(path);
    // Bump the version field (offset 8) and re-seal the header CRC
    // (offset 124, over the first 124 bytes) -- a structurally valid
    // file from "the future" must still be rejected, with a message
    // telling the user to re-record.
    bytes[8] = 99;
    const std::uint32_t crc = crc32(bytes.data(), 124);
    std::memcpy(bytes.data() + 124, &crc, 4);
    spit(path, bytes);
    std::string err;
    EXPECT_EQ(TraceReader::open(path, &err), nullptr);
    EXPECT_NE(err.find("version"), std::string::npos) << err;
    EXPECT_NE(err.find("re-record"), std::string::npos) << err;
}

TEST(TraceStore, RejectsUnfinalizedRecording)
{
    const std::string dir = tempDir();
    const TraceMeta m = testMeta(2);
    const std::string path =
        writeTrace(dir, m, randomStream(2, 100, 22), 64);
    auto bytes = slurp(path);
    bytes[112] = 0;  // finalized flag
    const std::uint32_t crc = crc32(bytes.data(), 124);
    std::memcpy(bytes.data() + 124, &crc, 4);
    spit(path, bytes);
    std::string err;
    EXPECT_EQ(TraceReader::open(path, &err), nullptr);
    EXPECT_NE(err.find("finalized"), std::string::npos) << err;
}

TEST(TraceStore, AbortedWriterLeavesNoFile)
{
    const std::string dir = tempDir();
    const TraceMeta m = testMeta(2);
    const std::string path = tracestore::pathFor(dir, m);
    {
        TraceWriter w(path, m, 16);
        for (const AccessRec& r : randomStream(2, 100, 23))
            w.access(r);
        // Destroyed without finalize(): a crashed recording.
    }
    std::string err;
    EXPECT_EQ(TraceReader::open(path, &err), nullptr);
    EXPECT_FALSE(tracestore::haveTrace(dir, m));
}

TEST(TraceStore, ByteFlipFuzzEveryPosition)
{
    const std::string dir = tempDir();
    TraceMeta m = testMeta(3);
    // Small but complete: several chunks, events, a footer.
    const std::string path =
        writeTrace(dir, m, randomStream(3, 400, 33), 64);
    const auto whole = slurp(path);
    const std::string t = path + ".flip";
    int accepted = 0;
    for (std::size_t at = 0; at < whole.size(); ++at) {
        auto bad = whole;
        bad[at] ^= 0x2d;
        spit(t, bad);
        std::string err;
        auto rd = TraceReader::open(t, &err);
        if (rd == nullptr)
            continue;  // rejected at open: good
        Journal sink;
        if (!rd->replay(&sink, &err))
            continue;  // rejected during decode: good
        ++accepted;
        ADD_FAILURE() << "byte flip at offset " << at
                      << " produced an accepted trace";
    }
    EXPECT_EQ(accepted, 0);
}

TEST(TraceStore, StoreIdentityAndMismatchDiagnostics)
{
    const std::string dir = tempDir();
    const TraceMeta m = testMeta(4);
    writeTrace(dir, m, randomStream(4, 200, 44), 64);
    EXPECT_TRUE(tracestore::haveTrace(dir, m));

    // A different identity hashes to a different store file.
    TraceMeta other = m;
    other.scale = 0.25;
    EXPECT_NE(tracestore::pathFor(dir, other), tracestore::pathFor(dir, m));
    std::string err;
    EXPECT_EQ(tracestore::openFor(dir, other, &err), nullptr);
    EXPECT_NE(err.find("--record"), std::string::npos) << err;

    // Same file forced (single-file path), wrong identity: the pinned
    // header must reject app and P mismatches with both identities in
    // the message.
    const std::string file = tracestore::pathFor(dir, m);
    TraceMeta wrongApp = m;
    wrongApp.app = "fft";
    EXPECT_EQ(tracestore::openFor(file, wrongApp, &err), nullptr);
    EXPECT_NE(err.find("synthetic"), std::string::npos) << err;
    EXPECT_NE(err.find("fft"), std::string::npos) << err;
    TraceMeta wrongP = m;
    wrongP.nprocs = 8;
    EXPECT_EQ(tracestore::openFor(file, wrongP, &err), nullptr);
    EXPECT_NE(err.find("P=8"), std::string::npos) << err;

    // Exact identity through the same file succeeds.
    EXPECT_NE(tracestore::openFor(file, m, &err), nullptr) << err;
}

// ---------------------------------------------------------------------
// App-level: record -> replay equality for a real characterization.

TEST(TraceStore, RecordThenReplayCharacterizationIsIdentical)
{
    using namespace splash::harness;
    App* app = findApp("fft");
    ASSERT_NE(app, nullptr);
    const int procs = 4;
    AppConfig cfg;
    cfg.scale = 0.25;

    std::vector<MemExperiment> exps(2);
    exps[0].cache.lineSize = 32;
    // exps[1] is the default machine.

    const std::string dir = tempDir();
    SimOpts live;
    live.race = sim::RaceGranularity::Word;
    live.record = dir;
    auto recorded = runCharacterizations(*app, procs, exps, cfg, live);

    SimOpts replayed = live;
    replayed.record.clear();
    replayed.replay = dir;
    auto got = runCharacterizations(*app, procs, exps, cfg, replayed);

    ASSERT_EQ(got.size(), recorded.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].valid, recorded[i].valid);
        EXPECT_EQ(got[i].elapsed, recorded[i].elapsed);
        EXPECT_EQ(got[i].exec.reads, recorded[i].exec.reads);
        EXPECT_EQ(got[i].exec.writes, recorded[i].exec.writes);
        EXPECT_EQ(got[i].exec.flops, recorded[i].exec.flops);
        EXPECT_EQ(got[i].exec.barrierWait, recorded[i].exec.barrierWait);
        ASSERT_EQ(got[i].perProc.size(), recorded[i].perProc.size());
        for (std::size_t p = 0; p < got[i].perProc.size(); ++p) {
            EXPECT_EQ(got[i].perProc[p].lockWait,
                      recorded[i].perProc[p].lockWait);
            EXPECT_EQ(got[i].perProc[p].startTime,
                      recorded[i].perProc[p].startTime);
            EXPECT_EQ(got[i].perProc[p].finishTime,
                      recorded[i].perProc[p].finishTime);
        }
        EXPECT_EQ(got[i].mem.reads, recorded[i].mem.reads);
        EXPECT_EQ(got[i].mem.writes, recorded[i].mem.writes);
        for (int mt = 0; mt < sim::kNumMissTypes; ++mt)
            EXPECT_EQ(got[i].mem.misses[mt], recorded[i].mem.misses[mt])
                << "exp " << i << " miss type " << mt;
        EXPECT_EQ(got[i].mem.upgrades, recorded[i].mem.upgrades);
        EXPECT_EQ(got[i].mem.remoteSharedData,
                  recorded[i].mem.remoteSharedData);
        EXPECT_EQ(got[i].mem.remoteWriteback,
                  recorded[i].mem.remoteWriteback);
        EXPECT_EQ(got[i].mem.localData, recorded[i].mem.localData);
        ASSERT_TRUE(got[i].raceChecked);
        EXPECT_EQ(got[i].race.clean(), recorded[i].race.clean());
        EXPECT_EQ(got[i].race.census.barrierArrivals,
                  recorded[i].race.census.barrierArrivals);
        EXPECT_EQ(got[i].race.census.lockAcquires,
                  recorded[i].race.census.lockAcquires);
    }

    // Record-once: a second recording run reuses the stored trace
    // (same results, no re-write).
    auto again = runCharacterizations(*app, procs, exps, cfg, live);
    EXPECT_EQ(again[0].mem.reads, recorded[0].mem.reads);

    // The compact target the suite bench pins globally, sanity-checked
    // here on one app: well under a byte per reference.
    std::string err;
    auto rd = tracestore::openFor(
        dir, traceMetaFor(*app, procs, cfg, live), &err);
    ASSERT_NE(rd, nullptr) << err;
    const double bitsPerRef =
        8.0 * double(rd->fileBytes()) / double(rd->records());
    EXPECT_LT(bitsPerRef, 16.0);
    EXPECT_GT(rd->records(), 100000u);
}

} // namespace
