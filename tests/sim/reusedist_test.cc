// Tests for the reuse-distance analytical fast path: histogram bucket
// geometry, hand-computable predictions on synthetic streams, the
// bit-for-bit fully-associative differential against the exact Mattson
// sweep, profile serialization, and the broadcast-replay profiler
// replica.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "sim/grid.h"
#include "sim/replay.h"
#include "sim/reusedist.h"
#include "sim/sweep.h"

using namespace splash;
using namespace splash::sim;

namespace {

constexpr int kLine = 64;

AccessRec
rec(ProcId p, Addr a, AccessType t)
{
    AccessRec r;
    r.addr = a;
    r.size = 4;
    r.proc = static_cast<std::int16_t>(p);
    r.type = t;
    return r;
}

/** Feed the same line-aligned stream to a profiler. */
void
feed(ReuseDistProfiler& prof, const std::vector<AccessRec>& recs)
{
    for (const AccessRec& r : recs)
        prof.access(r);
}

std::vector<AccessRec>
randomStream(int nprocs, int n, std::uint64_t lines, std::uint64_t seed,
             bool privateLines)
{
    std::vector<AccessRec> out;
    out.reserve(n);
    std::uint64_t x = seed;
    for (int i = 0; i < n; ++i) {
        x = x * 6364136223846793005ull + 1442695040888963407ull;
        const ProcId p = static_cast<ProcId>((x >> 33) % nprocs);
        std::uint64_t line = (x >> 13) % lines;
        if (privateLines)
            line += std::uint64_t(p) * lines;
        out.push_back(rec(p, line * kLine, (x >> 7) & 1
                                               ? AccessType::Write
                                               : AccessType::Read));
    }
    return out;
}

TraceMeta
testMeta()
{
    TraceMeta m;
    m.app = "rdtest";
    m.nprocs = 2;
    m.scale = 1.0;
    m.n = 64;
    m.iters = 3;
    m.aux = 7;
    m.seed = 42;
    m.quantum = 250;
    return m;
}

// ----------------------------------------------------------------------
// Bucket geometry.

TEST(RdBucket, ExactBinsBelowThreshold)
{
    for (std::uint64_t b = 1; b <= rdbucket::kExact; ++b) {
        const int i = rdbucket::bucketOf(b);
        EXPECT_EQ(i, static_cast<int>(b) - 1);
        EXPECT_EQ(rdbucket::bucketMin(i), b);
        EXPECT_EQ(rdbucket::bucketMax(i), b);
    }
}

TEST(RdBucket, Log2BucketsAboveThreshold)
{
    // (256, 512] is the first log2 bucket; every boundary is a power
    // of two, so power-of-two capacities never split a bucket.
    EXPECT_EQ(rdbucket::bucketOf(257), rdbucket::bucketOf(512));
    EXPECT_NE(rdbucket::bucketOf(512), rdbucket::bucketOf(513));
    EXPECT_EQ(rdbucket::bucketOf(513), rdbucket::bucketOf(1024));
    const int i = rdbucket::bucketOf(257);
    EXPECT_EQ(rdbucket::bucketMin(i), 257u);
    EXPECT_EQ(rdbucket::bucketMax(i), 512u);
    const int j = rdbucket::bucketOf(513);
    EXPECT_EQ(rdbucket::bucketMin(j), 513u);
    EXPECT_EQ(rdbucket::bucketMax(j), 1024u);
}

TEST(RdBucket, CoversFullRange)
{
    // The top bucket holds the largest representable capacities.
    const std::uint64_t top = ~std::uint64_t{0};
    const int i = rdbucket::bucketOf(top);
    EXPECT_LT(i, rdbucket::kBuckets);
    EXPECT_GE(rdbucket::bucketMax(i), top);
    // Every bucket index round-trips through its min and max.
    for (int k = 0; k < rdbucket::kBuckets; ++k) {
        EXPECT_EQ(rdbucket::bucketOf(rdbucket::bucketMin(k)), k);
        EXPECT_EQ(rdbucket::bucketOf(rdbucket::bucketMax(k)), k);
    }
}

// ----------------------------------------------------------------------
// Hand-computable predictions.

TEST(ReuseDistModel, PureStreamingMissesEverywhere)
{
    // Every reference touches a new line: all cold, miss rate 1 at
    // every capacity and associativity.
    ReuseDistProfiler prof(1, kLine);
    for (std::uint64_t i = 0; i < 1000; ++i)
        prof.access(rec(0, i * kLine, AccessType::Read));
    const ReuseDistProfile p = prof.profile();
    EXPECT_EQ(p.accesses(), 1000u);
    EXPECT_EQ(p.coldOrStale(), 1000u);
    for (std::uint64_t size : fig3Sizes())
        for (int assoc : fig3ReportAssocs())
            EXPECT_DOUBLE_EQ(p.missRate(size, assoc), 1.0)
                << size << "/" << assoc;
}

TEST(ReuseDistModel, PerfectLoopReuse)
{
    // One processor loops over L=4 lines N times: 4 cold misses, then
    // every reuse at stack distance 3.
    constexpr std::uint64_t N = 500, L = 4;
    ReuseDistProfiler prof(1, kLine);
    for (std::uint64_t it = 0; it < N; ++it)
        for (std::uint64_t l = 0; l < L; ++l)
            prof.access(rec(0, l * kLine, AccessType::Read));
    const ReuseDistProfile p = prof.profile();
    EXPECT_EQ(p.accesses(), N * L);
    EXPECT_EQ(p.coldOrStale(), L);
    // Fully associative: fits from 4 lines up -> only the cold
    // misses; a 2-line cache misses every reference.
    EXPECT_EQ(p.faMisses(4 * kLine), L);
    EXPECT_EQ(p.faMisses(1u << 20), L);
    EXPECT_EQ(p.faMisses(2 * kLine), N * L);
    // Direct-mapped 8-line cache (S=8 sets): a reuse at distance 3
    // misses when any of the 3 intervening lines lands in its set,
    // P = 1 - (7/8)^3 = 169/512.
    const double pmiss = 169.0 / 512.0;
    const double want =
        (double(L) + double(N * L - L) * pmiss) / double(N * L);
    EXPECT_NEAR(p.missRate(8 * kLine, 1), want, 1e-12);
}

TEST(ReuseDistModel, ProducerConsumerInvalidation)
{
    // P0 writes a line, P1 reads it, N times: after the cold pair,
    // every P0 write is a distance-0 hit and every P1 read is
    // coherence-stale.  Misses = N + 1 at EVERY operating point --
    // capacity and associativity cannot help communication.
    constexpr std::uint64_t N = 300;
    ReuseDistProfiler prof(2, kLine);
    for (std::uint64_t i = 0; i < N; ++i) {
        prof.access(rec(0, 0, AccessType::Write));
        prof.access(rec(1, 0, AccessType::Read));
    }
    const ReuseDistProfile p = prof.profile();
    EXPECT_EQ(p.accesses(), 2 * N);
    EXPECT_EQ(p.procs[0].cold, 1u);
    EXPECT_EQ(p.procs[0].stale, 0u);
    EXPECT_EQ(p.procs[1].cold, 1u);
    EXPECT_EQ(p.procs[1].stale, N - 1);
    EXPECT_GT(p.staleFraction(), 0.9);
    for (std::uint64_t size : fig3Sizes())
        for (int assoc : fig3ReportAssocs())
            EXPECT_NEAR(p.missRate(size, assoc),
                        double(N + 1) / double(2 * N), 1e-12)
                << size << "/" << assoc;
}

// ----------------------------------------------------------------------
// Differential: fully-associative predictions are bit-identical to the
// exact Mattson sweep at every power-of-two capacity -- on sharing
// streams too, because profiler and sweep share StackDistance and
// VersionCoherence.

void
expectFaBitIdentical(const std::vector<AccessRec>& recs, int nprocs)
{
    SweepConfig sc;
    sc.nprocs = nprocs;
    sc.lineSize = kLine;
    CacheSweep sweep(sc);
    ReuseDistProfiler prof(nprocs, kLine);
    for (const AccessRec& r : recs) {
        sweep.access(r.proc, r.addr, r.size, r.type);
        prof.access(r);
    }
    const ReuseDistProfile p = prof.profile();
    ASSERT_EQ(p.accesses(), sweep.accesses());
    for (std::uint64_t size : fig3Sizes()) {
        EXPECT_EQ(p.faMisses(size), sweep.misses(size, 0)) << size;
        EXPECT_DOUBLE_EQ(p.missRate(size, 0), sweep.missRate(size, 0))
            << size;
    }
}

TEST(ReuseDistDifferential, FaMatchesExactSweepPrivateStreams)
{
    // Invalidation-free: each processor owns its lines.
    for (std::uint64_t seed : {1ull, 7ull, 99ull})
        expectFaBitIdentical(randomStream(4, 20000, 300, seed, true),
                             4);
}

TEST(ReuseDistDifferential, FaMatchesExactSweepSharedStreams)
{
    // Heavy sharing: all processors hit one small line pool, so
    // cross-processor invalidations dominate.
    for (std::uint64_t seed : {3ull, 1234ull, 777ull})
        expectFaBitIdentical(randomStream(8, 30000, 150, seed, false),
                             8);
}

TEST(ReuseDistDifferential, FaMatchesAfterResetStats)
{
    // resetStats is the measurement boundary in both engines: zeroed
    // counters, warm stacks and coherence state.
    auto recs = randomStream(4, 20000, 200, 55, false);
    SweepConfig sc;
    sc.nprocs = 4;
    sc.lineSize = kLine;
    CacheSweep sweep(sc);
    ReuseDistProfiler prof(4, kLine);
    for (std::size_t i = 0; i < recs.size(); ++i) {
        if (i == recs.size() / 2) {
            sweep.resetStats();
            prof.resetStats();
        }
        sweep.access(recs[i].proc, recs[i].addr, recs[i].size,
                     recs[i].type);
        prof.access(recs[i]);
    }
    const ReuseDistProfile p = prof.profile();
    ASSERT_EQ(p.accesses(), sweep.accesses());
    for (std::uint64_t size : fig3Sizes())
        EXPECT_EQ(p.faMisses(size), sweep.misses(size, 0)) << size;
}

TEST(ReuseDistDifferential, UnalignedAccessesSplitLikeSweep)
{
    // Line-spanning references count once per touched line in both
    // engines.
    SweepConfig sc;
    sc.nprocs = 1;
    sc.lineSize = kLine;
    CacheSweep sweep(sc);
    ReuseDistProfiler prof(1, kLine);
    AccessRec r = rec(0, kLine - 2, AccessType::Read);
    r.size = 8;  // spans two lines
    sweep.access(r.proc, r.addr, r.size, r.type);
    prof.access(r);
    EXPECT_EQ(prof.profile().accesses(), 2u);
    EXPECT_EQ(prof.profile().accesses(), sweep.accesses());
}

// ----------------------------------------------------------------------
// Serialization.

TEST(ReuseDistProfileIO, SaveLoadRoundTrip)
{
    ReuseDistProfiler prof(2, kLine);
    feed(prof, randomStream(2, 5000, 100, 11, false));
    ReuseDistProfile p = prof.profile();
    p.exec.valid = true;
    p.exec.elapsed = 12345;
    p.exec.procs.push_back({1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12});

    const std::string path = "rdprof_roundtrip.rdp";
    const TraceMeta m = testMeta();
    std::string err;
    ASSERT_TRUE(p.save(path, m, &err)) << err;
    ReuseDistProfile q;
    ASSERT_TRUE(ReuseDistProfile::load(path, m, kLine, &q, &err))
        << err;
    EXPECT_TRUE(p == q);
    EXPECT_EQ(q.exec.elapsed, 12345u);
    ASSERT_EQ(q.exec.procs.size(), 1u);
    EXPECT_EQ(q.exec.procs[0][11], 12u);
    std::remove(path.c_str());
}

TEST(ReuseDistProfileIO, RejectsIdentityMismatch)
{
    ReuseDistProfiler prof(2, kLine);
    feed(prof, randomStream(2, 1000, 50, 5, false));
    const std::string path = "rdprof_identity.rdp";
    std::string err;
    ASSERT_TRUE(prof.profile().save(path, testMeta(), &err)) << err;
    TraceMeta other = testMeta();
    other.seed = 43;
    ReuseDistProfile q;
    EXPECT_FALSE(
        ReuseDistProfile::load(path, other, kLine, &q, &err));
    EXPECT_NE(err.find("identity"), std::string::npos) << err;
    // Line-size mismatch is its own rejection.
    EXPECT_FALSE(
        ReuseDistProfile::load(path, testMeta(), 128, &q, &err));
    std::remove(path.c_str());
}

TEST(ReuseDistProfileIO, RejectsCorruption)
{
    ReuseDistProfiler prof(1, kLine);
    feed(prof, randomStream(1, 1000, 50, 9, true));
    const std::string path = "rdprof_corrupt.rdp";
    std::string err;
    ASSERT_TRUE(prof.profile().save(path, testMeta(), &err)) << err;
    // Flip one byte in the middle of the file.
    {
        std::fstream f(path, std::ios::in | std::ios::out |
                                 std::ios::binary);
        f.seekp(200);
        char c = 0;
        f.seekg(200);
        f.get(c);
        f.seekp(200);
        f.put(static_cast<char>(c ^ 0x5a));
    }
    ReuseDistProfile q;
    EXPECT_FALSE(
        ReuseDistProfile::load(path, testMeta(), kLine, &q, &err));
    EXPECT_FALSE(ReuseDistProfile::load("no_such_file.rdp",
                                        testMeta(), kLine, &q, &err));
    std::remove(path.c_str());
}

// ----------------------------------------------------------------------
// Broadcast-replay profiler replica.

TEST(ReuseDistBroadcast, ReplicaMatchesDirectProfiler)
{
    auto recs = randomStream(4, 20000, 200, 21, false);
    ReuseDistProfiler direct(4, kLine);
    feed(direct, recs);
    for (bool threaded : {false, true}) {
        ReplicaSpec spec;
        spec.machine.nprocs = 4;
        spec.machine.cache.lineSize = kLine;
        spec.rdProfile = true;
        BroadcastReplay cast({spec}, threaded);
        ASSERT_TRUE(cast.isRdReplica(0));
        for (const AccessRec& r : recs)
            cast.access(r);
        cast.flush();
        EXPECT_TRUE(cast.rdReplica(0).profile() == direct.profile())
            << (threaded ? "threaded" : "inline");
    }
}

} // namespace
