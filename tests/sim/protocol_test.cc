// Tests for the table-driven protocol layer: descriptor sanity of
// every registered protocol, cross-protocol differential invariants
// over identical reference streams (what each protocol may and may not
// change), and a golden regression pinning the committed FFT
// protocol-ablation rows.
#include <gtest/gtest.h>

#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "harness/experiment.h"
#include "sim/protocol.h"

using namespace splash;
using namespace splash::sim;

namespace {

/** All registered kinds, zoo order. */
std::vector<ProtocolKind>
zoo()
{
    std::vector<ProtocolKind> v;
    for (int k = 0; k < kNumProtocols; ++k)
        v.push_back(static_cast<ProtocolKind>(k));
    return v;
}

/** One characterization per protocol from ONE broadcast execution. */
std::vector<harness::RunStats>
runZoo(const std::string& appName, int procs, double scale)
{
    using namespace splash::harness;
    App* app = findApp(appName);
    EXPECT_NE(app, nullptr) << appName;
    AppConfig cfg;
    cfg.scale = scale;
    std::vector<MemExperiment> exps;
    for (ProtocolKind k : zoo()) {
        MemExperiment e;
        e.protocol = k;
        exps.push_back(e);
    }
    return runCharacterizations(*app, procs, exps, cfg);
}

} // namespace

// Every registered descriptor must be internally consistent: names
// round-trip through the parser, state masks nest correctly, the
// silent-write promotion stays inside the legal alphabet, and every
// reachable table cell installs a legal state.
TEST(Protocol, DescriptorSanity)
{
    for (ProtocolKind k : zoo()) {
        const Protocol& p = protocol(k);
        EXPECT_EQ(p.kind, k);
        ASSERT_STRNE(p.name, "");
        EXPECT_STREQ(p.name, protocolName(k));
        ProtocolKind back;
        ASSERT_TRUE(parseProtocol(p.name, &back)) << p.name;
        EXPECT_EQ(back, k);

        // Invalid is never legal to "hold"; Shared always is.
        EXPECT_FALSE(stateIn(p.legalStates, LineState::Invalid));
        EXPECT_TRUE(stateIn(p.legalStates, LineState::Shared));
        // Owners are legal holders; silent hits are legal holders.
        EXPECT_EQ(p.ownerStates & ~p.legalStates, 0) << p.name;
        EXPECT_EQ(p.silentHit[0] & ~p.legalStates, 0) << p.name;
        EXPECT_EQ(p.silentHit[1] & ~p.legalStates, 0) << p.name;
        // Every silent write hit must leave the line in an owner state
        // (the next write must also be silent, and eviction must write
        // back) -- this is the dedup contract between Cache and
        // MemSystem.
        for (int s = 0; s < kNumLineStates; ++s) {
            auto st = static_cast<LineState>(s);
            if (!stateIn(p.legalStates, st))
                continue;
            LineState next = p.silentWriteNext[s];
            EXPECT_TRUE(stateIn(p.legalStates, next)) << p.name;
            if (stateIn(p.silentHit[1], st))
                EXPECT_TRUE(stateIn(p.ownerStates, next))
                    << p.name << " state " << s;
        }
        EXPECT_EQ(p.hasExclusive,
                  stateIn(p.legalStates, LineState::Exclusive))
            << p.name;

        for (int e = 0; e < kNumProtoEvents; ++e) {
            for (int g = 0; g < kNumDirGroups; ++g) {
                const Transition& t = p.at(
                    static_cast<ProtoEvent>(e), static_cast<DirGroup>(g));
                if (!t.valid)
                    continue;
                EXPECT_TRUE(stateIn(p.legalStates, t.reqState))
                    << p.name << " cell " << e << "," << g;
                EXPECT_TRUE(stateIn(p.legalStates, t.reqStateAlone))
                    << p.name << " cell " << e << "," << g;
                // Only a dirty entry has an owner to supply or retag.
                if (t.supply == Supply::Owner)
                    EXPECT_EQ(g, static_cast<int>(DirGroup::Dirty))
                        << p.name;
            }
        }
        // Misses on an uncached line are reachable under any protocol.
        EXPECT_TRUE(p.at(ProtoEvent::ReadMiss, DirGroup::Uncached).valid);
        EXPECT_TRUE(
            p.at(ProtoEvent::WriteMiss, DirGroup::Uncached).valid);
    }
}

// Differential invariants across the zoo on the same reference stream.
// The protocol may change coherence actions and traffic, but never the
// stream itself; and specific protocol pairs have provable orderings:
//
//  - MSI, MESI, and MOESI invalidate identically, so their miss
//    decompositions are identical; MESI's clean-exclusive state only
//    removes upgrade transactions (E->M is silent), so its upgrade
//    count is bounded by MSI's and their invalidation counts match.
//  - MOESI never performs MESI's sharing writeback, so it moves no
//    more writeback traffic than MESI.
//  - Dragon never invalidates (updates instead), so its invalidation
//    count is exactly zero and only Dragon sends updates.
TEST(Protocol, DifferentialInvariantsAcrossZoo)
{
    const int kMsi = 0, kMesi = 1, kMoesi = 2, kDragon = 3;
    for (const char* name : {"fft", "radix"}) {
        auto r = runZoo(name, 8, 0.25);
        ASSERT_EQ(r.size(), std::size_t(kNumProtocols)) << name;

        const MemStats& msi = r[kMsi].mem;
        const MemStats& mesi = r[kMesi].mem;
        const MemStats& moesi = r[kMoesi].mem;
        const MemStats& dragon = r[kDragon].mem;

        for (const harness::RunStats& run : r) {
            EXPECT_TRUE(run.valid) << name;
            EXPECT_EQ(run.mem.reads, msi.reads) << name;
            EXPECT_EQ(run.mem.writes, msi.writes) << name;
        }

        for (int m = 0; m < kNumMissTypes; ++m) {
            EXPECT_EQ(mesi.misses[m], msi.misses[m]) << name;
            EXPECT_EQ(moesi.misses[m], msi.misses[m]) << name;
        }
        EXPECT_LE(mesi.upgrades, msi.upgrades) << name;
        EXPECT_EQ(mesi.invalidations, msi.invalidations) << name;
        EXPECT_EQ(moesi.upgrades, mesi.upgrades) << name;
        EXPECT_LE(moesi.remoteWriteback, mesi.remoteWriteback) << name;

        EXPECT_EQ(dragon.invalidations, 0u)
            << name << ": an update-based protocol must never "
                       "invalidate";
        EXPECT_EQ(msi.updates, 0u) << name;
        EXPECT_EQ(mesi.updates, 0u) << name;
        EXPECT_EQ(moesi.updates, 0u) << name;
    }

    // FFT's transpose writes to lines other processors still cache:
    // Dragon must turn that write sharing into update traffic.
    auto fft = runZoo("fft", 8, 0.25);
    EXPECT_GT(fft[kDragon].mem.updates, 0u);
}

// Golden regression: the committed FFT protocol-ablation rows
// (results/ablation.csv, generated by `ablation_protocol --csv` at its
// default operating point) must reproduce exactly.
#ifdef SPLASH2_SOURCE_DIR
TEST(Protocol, ReproducesCommittedAblationFftRows)
{
    using namespace splash::harness;
    std::string path =
        std::string(SPLASH2_SOURCE_DIR) + "/results/ablation.csv";
    std::ifstream in(path);
    ASSERT_TRUE(in.good()) << path;
    std::map<std::string, std::vector<double>> committed;
    std::string line;
    std::getline(in, line);  // header
    while (std::getline(in, line)) {
        std::istringstream ss(line);
        std::string app, proto, cell;
        std::getline(ss, app, ',');
        if (app != "FFT")
            continue;
        std::getline(ss, proto, ',');
        std::vector<double> vals;
        while (std::getline(ss, cell, ','))
            vals.push_back(std::stod(cell));
        committed[proto] = vals;
    }
    ASSERT_EQ(committed.size(), std::size_t(kNumProtocols));

    App* app = findApp("fft");
    ASSERT_NE(app, nullptr);
    AppConfig cfg;
    cfg.scale = 0.5;  // the bench's default operating point
    const int procs = 16;
    std::vector<MemExperiment> exps;
    for (ProtocolKind k : zoo()) {
        MemExperiment e;  // 1 MB placed, the zoo replica config
        e.protocol = k;
        exps.push_back(e);
    }
    auto got = runCharacterizations(*app, procs, exps, cfg);
    ASSERT_EQ(got.size(), exps.size());

    for (std::size_t i = 0; i < got.size(); ++i) {
        auto it = committed.find(protocolName(zoo()[i]));
        ASSERT_NE(it, committed.end()) << protocolName(zoo()[i]);
        const auto& want = it->second;
        ASSERT_EQ(want.size(), 6u);
        const MemStats& m = got[i].mem;
        double acc = double(m.accesses());
        ASSERT_GT(acc, 0);
        EXPECT_NEAR(1000.0 * double(m.totalMisses()) / acc, want[0],
                    5e-7);
        EXPECT_NEAR(1000.0 * double(m.upgrades) / acc, want[1], 5e-7);
        EXPECT_NEAR(1000.0 * double(m.invalidations) / acc, want[2],
                    5e-7);
        EXPECT_NEAR(1000.0 * double(m.updates) / acc, want[3], 5e-7);
        EXPECT_NEAR(double(m.remoteData()) / acc, want[4], 5e-7);
        EXPECT_NEAR(double(m.totalTraffic()) / acc, want[5], 5e-7);
    }
}
#endif
