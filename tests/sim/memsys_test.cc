// Unit and property tests for the directory-based Illinois (MESI)
// memory-system simulator.
#include <gtest/gtest.h>

#include <cstdint>

#include "sim/memsys.h"

using namespace splash;
using namespace splash::sim;

namespace {

/** All lines homed at a fixed node, for precise traffic accounting. */
class FixedHome : public HomeResolver
{
  public:
    explicit FixedHome(ProcId h) : h_(h) {}
    ProcId homeOf(Addr) const override { return h_; }

  private:
    ProcId h_;
};

MachineConfig
machine(int nprocs, std::uint64_t cache_size = 1u << 20, int assoc = 4,
        int line = 64)
{
    MachineConfig mc;
    mc.nprocs = nprocs;
    mc.cache.size = cache_size;
    mc.cache.assoc = assoc;
    mc.cache.lineSize = line;
    return mc;
}

constexpr Addr kA = 0x10000;

} // namespace

TEST(MemSystem, ColdReadInstallsExclusive)
{
    MemSystem m(machine(4));
    m.access(0, kA, 8, AccessType::Read);
    EXPECT_EQ(m.lineState(0, kA), LineState::Exclusive);
    EXPECT_EQ(m.procStats(0).misses[int(MissType::Cold)], 1u);
    EXPECT_TRUE(m.checkCoherenceInvariants());
}

TEST(MemSystem, SecondReaderDowngradesExclusiveToShared)
{
    MemSystem m(machine(4));
    m.access(0, kA, 8, AccessType::Read);
    m.access(1, kA, 8, AccessType::Read);
    EXPECT_EQ(m.lineState(0, kA), LineState::Shared);
    EXPECT_EQ(m.lineState(1, kA), LineState::Shared);
    EXPECT_TRUE(m.checkCoherenceInvariants());
}

TEST(MemSystem, WriteToExclusiveIsSilentUpgrade)
{
    FixedHome home(0);
    MemSystem m(machine(4), &home);
    m.access(0, kA, 8, AccessType::Read);
    auto before = m.procStats(0).totalTraffic();
    m.access(0, kA, 8, AccessType::Write);
    EXPECT_EQ(m.lineState(0, kA), LineState::Modified);
    EXPECT_EQ(m.procStats(0).totalTraffic(), before);  // no traffic
    EXPECT_EQ(m.procStats(0).upgrades, 0u);            // silent
    EXPECT_TRUE(m.checkCoherenceInvariants());
}

TEST(MemSystem, WriteToSharedInvalidatesOtherSharers)
{
    MemSystem m(machine(4));
    m.access(0, kA, 8, AccessType::Read);
    m.access(1, kA, 8, AccessType::Read);
    m.access(2, kA, 8, AccessType::Read);
    m.access(1, kA, 8, AccessType::Write);
    EXPECT_EQ(m.lineState(1, kA), LineState::Modified);
    EXPECT_EQ(m.lineState(0, kA), LineState::Invalid);
    EXPECT_EQ(m.lineState(2, kA), LineState::Invalid);
    EXPECT_EQ(m.procStats(1).upgrades, 1u);
    const DirEntry* d = m.dirEntry(kA);
    ASSERT_NE(d, nullptr);
    EXPECT_TRUE(d->dirty);
    EXPECT_EQ(d->owner, 1);
    EXPECT_EQ(d->numSharers(), 1);
    EXPECT_TRUE(m.checkCoherenceInvariants());
}

TEST(MemSystem, DirtyReadMissIsServedCacheToCache)
{
    FixedHome home(3);
    MemSystem m(machine(4), &home);
    m.access(0, kA, 8, AccessType::Write);  // P0: cold write miss -> M
    m.access(1, kA, 8, AccessType::Read);   // P1 reads dirty line
    EXPECT_EQ(m.lineState(0, kA), LineState::Shared);
    EXPECT_EQ(m.lineState(1, kA), LineState::Shared);
    // P1's *first* reference is cold even though it was communicated
    // (the paper's "remote cold" category).
    EXPECT_EQ(m.procStats(1).misses[int(MissType::Cold)], 1u);
    const DirEntry* d = m.dirEntry(kA);
    ASSERT_NE(d, nullptr);
    EXPECT_FALSE(d->dirty);  // Illinois: memory updated on dirty read
    EXPECT_TRUE(m.checkCoherenceInvariants());
}

TEST(MemSystem, TrafficAccountingOfRemoteCleanRead)
{
    // Home = node 1; P0 read-misses a clean line: one 8 B request, one
    // 64 B data transfer + 8 B header. All remote cold data.
    FixedHome home(1);
    MemSystem m(machine(4), &home);
    m.access(0, kA, 8, AccessType::Read);
    const MemStats& s = m.procStats(0);
    EXPECT_EQ(s.remoteColdData, 64u);
    EXPECT_EQ(s.remoteOverhead, 16u);  // request + data header
    EXPECT_EQ(s.localData, 0u);
    EXPECT_EQ(s.remoteWriteback, 0u);
}

TEST(MemSystem, TrafficAccountingOfLocalRead)
{
    FixedHome home(0);
    MemSystem m(machine(4), &home);
    m.access(0, kA, 8, AccessType::Read);
    const MemStats& s = m.procStats(0);
    EXPECT_EQ(s.localData, 64u);
    EXPECT_EQ(s.remoteOverhead, 0u);
    EXPECT_EQ(s.remoteData(), 0u);
}

TEST(MemSystem, UpgradeTrafficCountsInvalidationsAndAcks)
{
    FixedHome home(0);
    MemSystem m(machine(4), &home);
    m.access(1, kA, 8, AccessType::Read);
    m.access(2, kA, 8, AccessType::Read);
    m.access(3, kA, 8, AccessType::Read);
    auto base = m.procStats(1).remoteOverhead;
    m.access(1, kA, 8, AccessType::Write);  // upgrade, 2 other sharers
    // Request (p->home, remote) + 2 invalidations (home->q, remote)
    // + 2 acks (q->p, remote) = 5 packets * 8 B.
    EXPECT_EQ(m.procStats(1).remoteOverhead - base, 40u);
}

TEST(MemSystem, ModifiedEvictionWritesBack)
{
    // Direct-mapped 2-line cache; two lines in the same set.
    FixedHome home(1);
    MemSystem m(machine(2, 128, 1, 64), &home);
    m.access(0, 0x0, 8, AccessType::Write);
    m.access(0, 0x80, 8, AccessType::Write);  // same set -> evicts 0x0
    EXPECT_EQ(m.lineState(0, 0x0), LineState::Invalid);
    EXPECT_EQ(m.procStats(0).remoteWriteback, 64u);
    const DirEntry* d = m.dirEntry(0x0);
    EXPECT_EQ(d, nullptr);  // fully dropped from the directory
    // Re-miss classifies as capacity.
    m.access(0, 0x0, 8, AccessType::Read);
    EXPECT_EQ(m.procStats(0).misses[int(MissType::Capacity)], 1u);
}

TEST(MemSystem, ReplacementHintKeepsSharerListExact)
{
    FixedHome home(1);
    MemSystem m(machine(2, 128, 1, 64), &home);
    m.access(0, 0x0, 8, AccessType::Read);    // S/E copy
    auto oh = m.procStats(0).remoteOverhead;
    m.access(0, 0x80, 8, AccessType::Read);   // evicts 0x0, sends hint
    EXPECT_GE(m.procStats(0).remoteOverhead - oh, 8u);  // hint packet
    EXPECT_EQ(m.dirEntry(0x0), nullptr);
    // A later write by P1 must not send any invalidation to P0.
    m.access(1, 0x0, 8, AccessType::Write);
    EXPECT_TRUE(m.checkCoherenceInvariants());
}

TEST(MemSystem, FalseSharingDetectedAcrossWordOffsets)
{
    MemSystem m(machine(2));
    m.access(0, kA + 0, 8, AccessType::Read);   // P0 uses word 0
    m.access(1, kA + 56, 8, AccessType::Write); // P1 writes word 7
    m.access(0, kA + 0, 8, AccessType::Read);   // P0 re-reads word 0
    EXPECT_EQ(m.procStats(0).misses[int(MissType::FalseSharing)], 1u);
    EXPECT_EQ(m.procStats(0).misses[int(MissType::TrueSharing)], 0u);
}

TEST(MemSystem, TrueSharedDataTracksOnlyTrueSharing)
{
    MemSystem m(machine(2));
    m.access(1, kA, 8, AccessType::Read);   // warm P1 (cold miss)
    m.access(0, kA, 8, AccessType::Write);  // invalidates P1
    m.access(1, kA, 8, AccessType::Read);   // true sharing, 64 B
    EXPECT_EQ(m.procStats(1).misses[int(MissType::TrueSharing)], 1u);
    EXPECT_EQ(m.total().trueSharedData, 64u);
    m.access(1, kA + 56, 8, AccessType::Write);  // upgrade, no data
    m.access(0, kA, 8, AccessType::Read);        // false sharing
    EXPECT_EQ(m.procStats(0).misses[int(MissType::FalseSharing)], 1u);
    EXPECT_EQ(m.total().trueSharedData, 64u);    // unchanged
}

TEST(MemSystem, LineSpanningAccessTouchesBothLines)
{
    MemSystem m(machine(2));
    m.access(0, kA + 60, 8, AccessType::Read);  // straddles two lines
    EXPECT_NE(m.lineState(0, kA), LineState::Invalid);
    EXPECT_NE(m.lineState(0, kA + 64), LineState::Invalid);
    EXPECT_EQ(m.procStats(0).reads, 1u);
    EXPECT_EQ(m.procStats(0).misses[int(MissType::Cold)], 2u);
}

TEST(MemSystem, ResetStatsPreservesCacheState)
{
    MemSystem m(machine(2));
    m.access(0, kA, 8, AccessType::Read);
    m.resetStats();
    EXPECT_EQ(m.total().accesses(), 0u);
    m.access(0, kA, 8, AccessType::Read);  // still cached: hit
    EXPECT_EQ(m.total().totalMisses(), 0u);
}

// ---------------------------------------------------------------------
// Property tests: random access streams keep the protocol coherent and
// traffic categories consistent.
// ---------------------------------------------------------------------

class MemSystemRandom
    : public ::testing::TestWithParam<std::tuple<int, int, int>>
{};

TEST_P(MemSystemRandom, InvariantsHoldUnderRandomTraffic)
{
    auto [nprocs, cache_kb, line] = GetParam();
    MemSystem m(machine(nprocs, std::uint64_t(cache_kb) * 1024, 2, line));
    std::uint64_t x = 99991;
    for (int i = 0; i < 30000; ++i) {
        x = x * 6364136223846793005ull + 1442695040888963407ull;
        ProcId p = static_cast<ProcId>((x >> 60) % nprocs);
        Addr a = 0x100000 + ((x >> 33) % 4096) * 8;
        AccessType t = ((x >> 11) & 3) == 0 ? AccessType::Write
                                            : AccessType::Read;
        m.access(p, a, 8, t);
    }
    EXPECT_TRUE(m.checkCoherenceInvariants());

    // Conservation: every miss moved exactly one line of data somewhere.
    MemStats t = m.total();
    std::uint64_t data_moved = t.remoteSharedData + t.remoteColdData +
                               t.remoteCapacityData + t.localData +
                               t.remoteWriteback;
    EXPECT_GE(data_moved, t.totalMisses() * std::uint64_t(line));
    EXPECT_EQ(t.accesses(), 30000u);
}

INSTANTIATE_TEST_SUITE_P(
    Streams, MemSystemRandom,
    ::testing::Combine(::testing::Values(1, 2, 7, 16),
                       ::testing::Values(1, 8),
                       ::testing::Values(16, 64)));

// ---------------------------------------------------------------------
// Replacement-hint ablation (protocol option).
// ---------------------------------------------------------------------

TEST(MemSystemNoHints, SilentReplacementLeavesStaleSharer)
{
    MachineConfig mc = machine(2, 128, 1, 64);
    mc.replacementHints = false;
    FixedHome home(1);
    MemSystem m(mc, &home);
    m.access(0, 0x0, 8, AccessType::Read);   // S/E copy
    m.access(0, 0x80, 8, AccessType::Read);  // silently evicts 0x0
    const DirEntry* d = m.dirEntry(0x0);
    ASSERT_NE(d, nullptr);
    EXPECT_TRUE(d->isSharer(0));  // stale bit remains
    EXPECT_TRUE(m.checkCoherenceInvariants());  // superset allowed
    // P1's write pays a spurious invalidation + ack (16 B extra; the
    // request and data are local because P1 is the home).
    auto oh = m.procStats(1).remoteOverhead;
    m.access(1, 0x0, 8, AccessType::Write);
    EXPECT_EQ(m.procStats(1).remoteOverhead - oh, 16u);
    EXPECT_TRUE(m.checkCoherenceInvariants());
}

TEST(MemSystemNoHints, HintsReduceInvalidationTraffic)
{
    // Workload: P0 streams through lines (evicting constantly), P1
    // later writes them all. With hints, P1 sends no invalidations.
    auto overhead = [](bool hints) {
        MachineConfig mc = machine(2, 1024, 1, 64);
        mc.replacementHints = hints;
        FixedHome home(0);
        MemSystem m(mc, &home);
        for (int i = 0; i < 64; ++i)
            m.access(0, Addr(i) * 64, 8, AccessType::Read);
        m.resetStats();
        for (int i = 0; i < 48; ++i)  // lines P0 already evicted
            m.access(1, Addr(i) * 64, 8, AccessType::Write);
        return m.total().remoteOverhead;
    };
    EXPECT_GT(overhead(false), overhead(true));
}

TEST(MemSystemNoHints, RandomTrafficStaysCoherent)
{
    MachineConfig mc = machine(4, 2048, 2, 64);
    mc.replacementHints = false;
    MemSystem m(mc);
    std::uint64_t x = 777;
    for (int i = 0; i < 30000; ++i) {
        x = x * 6364136223846793005ull + 1442695040888963407ull;
        ProcId p = static_cast<ProcId>((x >> 60) % 4);
        Addr a = 0x100000 + ((x >> 33) % 512) * 8;
        AccessType t = ((x >> 11) & 3) == 0 ? AccessType::Write
                                            : AccessType::Read;
        m.access(p, a, 8, t);
    }
    EXPECT_TRUE(m.checkCoherenceInvariants());
}

// ----------------------------------------------------------------------
// The write-hit fast path promotes E->M silently in the cache without
// touching the directory; the stale (clean) directory entry must be
// reconciled lazily at the next directory consult.

TEST(MemSystemLazyDirty, SilentUpgradeThenRemoteReadReconciles)
{
    FixedHome home(3);
    MemSystem m(machine(4), &home);
    m.access(0, kA, 8, AccessType::Read);   // P0: cold read -> E
    m.access(0, kA, 8, AccessType::Write);  // fast path: E -> M, dir stale
    EXPECT_EQ(m.lineState(0, kA), LineState::Modified);
    auto wb = m.procStats(1).remoteWriteback;
    m.access(1, kA, 8, AccessType::Read);   // consult reconciles dirty bit
    // Illinois: dirty read is served cache-to-cache with a sharing
    // writeback updating memory; both copies end Shared.
    EXPECT_EQ(m.lineState(0, kA), LineState::Shared);
    EXPECT_EQ(m.lineState(1, kA), LineState::Shared);
    EXPECT_EQ(m.procStats(1).remoteWriteback - wb, 64u);
    const DirEntry* d = m.dirEntry(kA);
    ASSERT_NE(d, nullptr);
    EXPECT_FALSE(d->dirty);
    EXPECT_TRUE(m.checkCoherenceInvariants());
}

TEST(MemSystemLazyDirty, SilentUpgradeThenRemoteWriteReconciles)
{
    MemSystem m(machine(4));
    m.access(0, kA, 8, AccessType::Read);   // E
    m.access(0, kA, 8, AccessType::Write);  // silent E -> M
    m.access(1, kA, 8, AccessType::Write);  // write miss: reconcile,
                                            // fetch dirty data, invalidate
    EXPECT_EQ(m.lineState(0, kA), LineState::Invalid);
    EXPECT_EQ(m.lineState(1, kA), LineState::Modified);
    const DirEntry* d = m.dirEntry(kA);
    ASSERT_NE(d, nullptr);
    EXPECT_TRUE(d->dirty);
    EXPECT_EQ(d->owner, 1);
    EXPECT_TRUE(m.checkCoherenceInvariants());
}

TEST(MemSystemLazyDirty, SilentUpgradeThenEvictionWritesBack)
{
    // Direct-mapped 1 KB cache: lines 1024 B apart collide.  The
    // eviction path trusts the cache's Modified state, not the stale
    // directory bit, so the silent upgrade must still write back.
    FixedHome home(1);
    MemSystem m(machine(2, 1024, 1), &home);
    m.access(0, kA, 8, AccessType::Read);        // E
    m.access(0, kA, 8, AccessType::Write);       // silent E -> M
    m.access(0, kA + 1024, 8, AccessType::Read); // evicts kA
    EXPECT_EQ(m.lineState(0, kA), LineState::Invalid);
    EXPECT_EQ(m.procStats(0).remoteWriteback, 64u);
    EXPECT_EQ(m.dirEntry(kA), nullptr);  // empty entry erased
    EXPECT_TRUE(m.checkCoherenceInvariants());
}
